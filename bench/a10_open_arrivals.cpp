// Ablation A10: open arrivals -- response time vs offered load.
//
// The paper's batch experiment answers "who clears 16 simultaneous jobs
// fastest"; the open-system question the cited SIGMETRICS literature asks
// is "who keeps responses low under a sustained stream". This bench runs a
// Poisson arrival stream of the matmul mix through the static, hybrid and
// adaptive space-sharing policies at increasing load.
#include <iostream>

#include "core/open_arrivals.h"
#include "core/report.h"
#include "core/sweep_runner.h"
#include "figure_common.h"

namespace {

using namespace tmc;

core::OpenArrivalConfig make_config(sched::PolicyKind kind,
                                    double arrivals_per_second,
                                    std::uint64_t seed) {
  core::OpenArrivalConfig config;
  config.machine.topology = net::TopologyKind::kMesh;
  config.machine.policy.kind = kind;
  config.machine.policy.partition_size = 4;
  config.machine.max_sim_time = sim::SimTime::seconds(3000);
  config.mix = workload::default_batch(workload::App::kMatMul,
                                       sched::SoftwareArch::kAdaptive);
  config.arrivals_per_second = arrivals_per_second;
  config.warmup_jobs = 16;
  config.measured_jobs = 96;
  config.seed = seed;
  return config;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace tmc;
  const auto options =
      bench::parse_ablation_options(argc, argv, /*fault_flags=*/true);
  bench::ObsSession obs(options.obs);
  std::cout << "Ablation A10: open Poisson arrivals, matmul mix (75% small / "
               "25% large),\nmean response over 96 measured jobs (16 warm-up) "
               "x 3 seeds; partition size 4.\n";

  core::SweepRunner runner(options.threads);
  core::Table table({"arrivals/s", "offered load", "static (s)", "hybrid (s)",
                     "adaptive (s)"});
  // The observed run is the first cell's replication 0 (static policy at
  // the lightest load); sibling replications detach inside the harness.
  bool first_cell = true;
  for (const double rate : {2.0, 4.0, 6.0, 8.0, 10.0, 12.0}) {
    double load = 0.0;
    std::string cells[3];
    const sched::PolicyKind kinds[] = {sched::PolicyKind::kStatic,
                                       sched::PolicyKind::kHybrid,
                                       sched::PolicyKind::kAdaptiveStatic};
    for (int k = 0; k < 3; ++k) {
      // The three seeded replications of one stream run in parallel;
      // a nullopt replication means the stream outran the policy.
      auto config = make_config(kinds[k], rate, /*seed=*/1);
      config.machine.faults = options.faults;
      obs.attach(config.machine, first_cell);
      first_cell = false;
      const auto replications =
          core::run_open_arrival_replications(config, 3, runner);
      sim::OnlineStats over_seeds;
      bool saturated = false;
      for (const auto& run : replications) {
        if (run) {
          over_seeds.add(run->response_all.mean());
          load = run->offered_load;
        } else {
          saturated = true;
        }
      }
      cells[k] = saturated ? "unstable" : core::fmt_seconds(over_seeds.mean());
      std::cout << "." << std::flush;
    }
    table.add_row({core::fmt_ratio(rate), core::fmt_ratio(load), cells[0],
                   cells[1], cells[2]});
  }
  std::cout << "\n";
  table.print(std::cout);
  std::cout << "\nExpected shape: the policies agree at light load "
               "(responses ~ a lone job's\nspan) and the ordering FLIPS "
               "toward saturation: static's run-to-completion\nqueueing "
               "grows fastest, hybrid's rotation lets short jobs through, "
               "and adaptive\nspace-sharing (which sizes partitions to the "
               "instantaneous backlog) wins --\nthe batch experiment and "
               "the open system crown different policies.\n";
  return obs.flush(std::cerr);
}
