// Ablation A11: packetizing the store-and-forward transport.
//
// The paper's mailbox package forwards whole messages, so a B-matrix parcel
// occupies each hop for its full transfer time and each intermediate node
// must buffer all of it. Splitting messages into packets that pipeline
// across hops (virtual-cut-through style, still buffered per hop) is the
// cheap software improvement between the paper's transport and the wormhole
// hardware of A2. This bench sweeps the packet size on the
// communication-heavy matmul batch.
#include <iostream>
#include <vector>

#include "core/experiment.h"
#include "core/report.h"
#include "core/sweep_runner.h"
#include "figure_common.h"

namespace {

using namespace tmc;

double run_point(sched::PolicyKind kind, net::TopologyKind topo,
                 std::size_t packet_bytes, bench::ObsSession& obs,
                 bool representative) {
  auto config = core::figure_point(workload::App::kMatMul,
                                   sched::SoftwareArch::kAdaptive, kind, 16,
                                   topo);
  config.machine.network.packet_bytes = packet_bytes;
  obs.attach(config.machine, representative);
  return core::run_experiment(config).mean_response_s;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace tmc;
  const auto options = bench::parse_ablation_options(argc, argv);
  bench::ObsSession obs(options.obs);
  std::cout << "Ablation A11: store-and-forward packet-size sweep\n"
               "(matmul batch, adaptive architecture, one 16-node "
               "partition; 0 = whole messages)\n";

  const std::vector<std::size_t> packets = {0, 1024, 4096, 16384};
  // Column order within each row: static 16L, TS 16L, static 16M, TS 16M.
  struct Cell {
    sched::PolicyKind kind;
    net::TopologyKind topo;
  };
  constexpr Cell kCells[] = {
      {sched::PolicyKind::kStatic, net::TopologyKind::kLinear},
      {sched::PolicyKind::kTimeSharing, net::TopologyKind::kLinear},
      {sched::PolicyKind::kStatic, net::TopologyKind::kMesh},
      {sched::PolicyKind::kTimeSharing, net::TopologyKind::kMesh}};

  core::SweepRunner runner(options.threads);
  std::size_t dots = 0;
  const auto mrts = runner.map(
      packets.size() * 4,
      [&](std::size_t i) {
        const auto& cell = kCells[i % 4];
        // The observed run is the TS 16L cell at the smallest real packet
        // size (the configuration the ablation is about).
        return run_point(cell.kind, cell.topo, packets[i / 4], obs,
                         /*representative=*/i == 4 + 1);
      },
      [&](std::size_t done, std::size_t) {
        for (; dots < done; ++dots) std::cout << "." << std::flush;
      });

  core::Table table({"packet (B)", "static 16L (s)", "TS 16L (s)",
                     "static 16M (s)", "TS 16M (s)"});
  for (std::size_t i = 0; i < packets.size(); ++i) {
    const std::size_t pkt = packets[i];
    table.add_row({pkt == 0 ? "whole" : std::to_string(pkt),
                   core::fmt_seconds(mrts[i * 4]),
                   core::fmt_seconds(mrts[i * 4 + 1]),
                   core::fmt_seconds(mrts[i * 4 + 2]),
                   core::fmt_seconds(mrts[i * 4 + 3])});
  }
  std::cout << "\n";
  table.print(std::cout);
  std::cout << "\nExpected shape: packetisation helps most where hop counts "
               "are long (16L) by\npipelining transfers and shrinking "
               "per-hop buffers -- a software-only step\ntoward the wormhole "
               "numbers of bench A2.\n";
  return obs.flush(std::cerr);
}
