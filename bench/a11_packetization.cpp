// Ablation A11: packetizing the store-and-forward transport.
//
// The paper's mailbox package forwards whole messages, so a B-matrix parcel
// occupies each hop for its full transfer time and each intermediate node
// must buffer all of it. Splitting messages into packets that pipeline
// across hops (virtual-cut-through style, still buffered per hop) is the
// cheap software improvement between the paper's transport and the wormhole
// hardware of A2. This bench sweeps the packet size on the
// communication-heavy matmul batch.
#include <iostream>

#include "core/experiment.h"
#include "core/report.h"

namespace {

using namespace tmc;

double run_point(sched::PolicyKind kind, net::TopologyKind topo,
                 std::size_t packet_bytes) {
  auto config = core::figure_point(workload::App::kMatMul,
                                   sched::SoftwareArch::kAdaptive, kind, 16,
                                   topo);
  config.machine.network.packet_bytes = packet_bytes;
  return core::run_experiment(config).mean_response_s;
}

}  // namespace

int main() {
  using namespace tmc;
  std::cout << "Ablation A11: store-and-forward packet-size sweep\n"
               "(matmul batch, adaptive architecture, one 16-node "
               "partition; 0 = whole messages)\n";

  core::Table table({"packet (B)", "static 16L (s)", "TS 16L (s)",
                     "static 16M (s)", "TS 16M (s)"});
  for (const std::size_t pkt : {std::size_t{0}, std::size_t{1024},
                                std::size_t{4096}, std::size_t{16384}}) {
    table.add_row(
        {pkt == 0 ? "whole" : std::to_string(pkt),
         core::fmt_seconds(run_point(sched::PolicyKind::kStatic,
                                     net::TopologyKind::kLinear, pkt)),
         core::fmt_seconds(run_point(sched::PolicyKind::kTimeSharing,
                                     net::TopologyKind::kLinear, pkt)),
         core::fmt_seconds(run_point(sched::PolicyKind::kStatic,
                                     net::TopologyKind::kMesh, pkt)),
         core::fmt_seconds(run_point(sched::PolicyKind::kTimeSharing,
                                     net::TopologyKind::kMesh, pkt))});
    std::cout << "." << std::flush;
  }
  std::cout << "\n";
  table.print(std::cout);
  std::cout << "\nExpected shape: packetisation helps most where hop counts "
               "are long (16L) by\npipelining transfers and shrinking "
               "per-hop buffers -- a software-only step\ntoward the wormhole "
               "numbers of bench A2.\n";
  return 0;
}
