// Ablation A12: scheduling policy under failures.
//
// The paper compares its policies on perfectly reliable hardware; a real
// multicomputer crashes. This bench serves a sustained two-class stream
// through the static, hybrid and adaptive policies while sweeping the
// per-node MTBF from "reliable" down to one failure per node-minute
// (exponential repair, heartbeat detection, per-job restart budgets), and
// reports goodput, losses and the response statistics of the jobs that
// survived. The headline is the ordering inversion: the policy ranking on
// reliable hardware does not survive short MTBFs, because a crash's blast
// radius (how many co-resident jobs one dead node kills) differs by policy.
//
// All fault randomness is seeded per machine (fixed --fault-seed), so the
// table is bit-identical at any --threads, and is a ctest golden.
#include <iostream>
#include <string>
#include <vector>

#include "core/report.h"
#include "core/serve.h"
#include "core/sweep_runner.h"
#include "figure_common.h"

namespace {

using namespace tmc;

/// Two-class mix: short interactive jobs and heavier batch work, enough to
/// make the policies disagree without the full 3-class serving mix.
std::vector<workload::JobClass> mix() {
  workload::JobClass small;
  small.name = "small";
  small.weight = 0.75;
  small.service.kind = workload::ServiceModel::Kind::kExponential;
  small.service.mean_s = 0.08;
  workload::JobClass large;
  large.name = "large";
  large.weight = 0.25;
  large.service.kind = workload::ServiceModel::Kind::kWeibull;
  large.service.mean_s = 0.5;
  large.service.shape = 0.7;
  return {small, large};
}

struct Point {
  const char* policy;
  sched::PolicyKind kind;
  double mtbf_s;  // per-node mean time between failures; 0 = reliable
};

}  // namespace

int main(int argc, char** argv) {
  const auto options =
      bench::parse_ablation_options(argc, argv, /*fault_flags=*/true);
  std::cout << "Ablation A12: scheduling policies under node failures\n"
               "(16-node mesh, partition size 4, 3000 jobs at 25/s, "
               "exponential repair mttr=2s,\nheartbeat 0.25s, restart budget "
               "3; losses excluded from response stats)\n";

  const struct {
    const char* name;
    sched::PolicyKind kind;
  } policies[] = {{"static", sched::PolicyKind::kStatic},
                  {"hybrid", sched::PolicyKind::kHybrid},
                  {"adaptive", sched::PolicyKind::kAdaptiveStatic}};
  const double mtbfs[] = {0.0, 1000.0, 250.0, 60.0};

  std::vector<Point> points;
  for (const auto& policy : policies) {
    for (const double mtbf : mtbfs) {
      points.push_back({policy.name, policy.kind, mtbf});
    }
  }

  core::SweepRunner runner(options.threads);
  std::size_t dots = 0;
  struct Cell {
    core::ServeResult result;
  };
  const auto cells = runner.map(
      points.size(),
      [&](std::size_t i) {
        const Point& pt = points[i];
        core::ServeConfig config;
        config.machine.topology = net::TopologyKind::kMesh;
        config.machine.policy.kind = pt.kind;
        config.machine.policy.partition_size = 4;
        // Base the fault knobs on the CLI config so --fault-mttr and
        // friends tune the sweep, but the node rate is the swept variable
        // and the seed stays fixed per machine for golden stability.
        config.machine.faults = options.faults;
        config.machine.faults.node_rate = pt.mtbf_s > 0.0 ? 1.0 / pt.mtbf_s
                                                          : 0.0;
        config.process.rate_per_s = 25.0;
        config.classes = mix();
        config.total_jobs = 3'000;
        config.warmup_jobs = 300;
        config.seed = 1;
        return Cell{core::run_sustained(config)};
      },
      [&](std::size_t done, std::size_t) {
        for (; dots < done; ++dots) std::cout << "." << std::flush;
      });
  std::cout << "\n";

  core::Table table({"policy", "mtbf/node (s)", "admitted", "ok", "lost",
                     "shed", "restarts", "crashes", "mrt (s)", "p99 (s)"});
  for (std::size_t i = 0; i < points.size(); ++i) {
    const Point& pt = points[i];
    const core::ServeResult& r = cells[i].result;
    table.add_row(
        {pt.policy, pt.mtbf_s > 0.0 ? core::fmt_ratio(pt.mtbf_s) : "inf",
         std::to_string(r.admitted),
         std::to_string(r.completed - r.jobs_lost),
         std::to_string(r.jobs_lost), std::to_string(r.shed),
         std::to_string(r.machine.faults.job_restarts),
         std::to_string(r.machine.faults.crashes),
         core::fmt_seconds(r.response_s.mean()),
         core::fmt_seconds(r.response_q.p99.value())});
  }
  table.print(std::cout);
  std::cout << "\nExpected shape: on reliable hardware the response ordering "
               "matches A10; as MTBF\nshrinks the ranking INVERTS -- policies "
               "that co-locate more jobs per node pay a\nlarger blast radius "
               "per crash (more restarts and losses), while fixed partitions\n"
               "contain each failure, so the reliable-hardware winner is not "
               "the faulty-hardware\nwinner.\n";
  return 0;
}
