// Ablation A13: when does work stealing pay?
//
// The paper's two software architectures trade decomposition grain against
// placement: fixed (16 processes regardless of partition) against adaptive
// (one process per processor). The stealing architecture is a third point:
// fixed placement, but the work inside each process is migratable and idle
// workers buy tasklets over the network at the simulated steal price
// (request + handler + grant payload, all through the real links).
//
// This bench pins both sides of the bargain:
//
//  * WIN -- imbalanced work. A skewed sort divide tree concentrates the
//    quadratic leaf sorts on the low ranks; a heavy-tailed serving mix with
//    straggler fork/join jobs does the same continuously. The fixed and
//    adaptive architectures eat the imbalance; thieves drain it.
//  * LOSE -- balanced work on thin networks. The matmul batch is already
//    even, so stealing buys nothing and pays the polling, the per-tasklet
//    result traffic and the handler preemptions -- visible on small ring
//    partitions where every protocol byte contends with the broadcast.
//
// All strategy randomness is seeded per job (fixed --steal-seed), so every
// table is bit-identical at any --threads, and a ctest golden.
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "core/report.h"
#include "core/serve.h"
#include "core/sweep_runner.h"
#include "figure_common.h"

namespace {

using namespace tmc;

constexpr double kSortSkew = 0.35;    // divide keeps 85% of each segment
constexpr double kServeSkew = 0.6;    // rank 0 straggler share in serving

struct BatchPoint {
  const char* regime;
  workload::App app;
  double sort_skew;
  int partition;
  net::TopologyKind topology;
  sched::SoftwareArch arch;
  sched::PolicyKind policy;
};

core::ExperimentConfig batch_config(const BatchPoint& pt,
                                    const sched::stealing::StealParams& steal) {
  auto config =
      core::figure_point(pt.app, pt.arch, pt.policy, pt.partition, pt.topology);
  config.batch.small_count = 3;
  config.batch.large_count = 1;
  if (pt.app == workload::App::kMatMul) {
    // Tiny matrices on purpose: at 12^2/24^2 the per-tasklet result
    // messages and steal handler preemptions are the same order as the
    // compute, so the protocol's price is visible instead of amortised.
    config.batch.small_size = 12;
    config.batch.large_size = 24;
  } else {
    config.batch.small_size = 3000;
    config.batch.large_size = 7000;
  }
  config.batch.sort_skew = pt.sort_skew;
  if (pt.arch == sched::SoftwareArch::kStealing) {
    config.machine.stealing = steal;
  }
  return config;
}

std::vector<workload::JobClass> serve_mix(sched::SoftwareArch arch) {
  workload::JobClass small;
  small.name = "small";
  small.weight = 0.7;
  small.service.kind = workload::ServiceModel::Kind::kExponential;
  small.service.mean_s = 0.08;
  small.arch = arch;
  workload::JobClass heavy;
  heavy.name = "heavy";
  heavy.weight = 0.3;
  heavy.service.kind = workload::ServiceModel::Kind::kWeibull;
  heavy.service.mean_s = 0.4;
  heavy.service.shape = 0.7;
  heavy.arch = arch;
  heavy.skew = kServeSkew;  // built-in straggler: rank 0 carries the job
  return {small, heavy};
}

core::ServeConfig serve_config(sched::SoftwareArch arch,
                               const sched::stealing::StealParams& steal,
                               const fault::FaultConfig& faults) {
  core::ServeConfig config;
  config.machine.topology = net::TopologyKind::kMesh;
  config.machine.policy.kind = sched::PolicyKind::kStatic;
  config.machine.policy.partition_size = 4;
  config.machine.faults = faults;
  if (arch == sched::SoftwareArch::kStealing) {
    config.machine.stealing = steal;
  }
  config.process.rate_per_s = 20.0;
  config.classes = serve_mix(arch);
  config.total_jobs = 1'200;
  config.warmup_jobs = 120;
  config.seed = 1;
  return config;
}

std::string fmt_count(std::uint64_t v) { return std::to_string(v); }

}  // namespace

int main(int argc, char** argv) {
  auto options = bench::parse_ablation_options(argc, argv,
                                               /*fault_flags=*/true,
                                               /*steal_flags=*/true);
  // Stealing on by default; an explicit --steal-rate (including 0) wins.
  bool rate_given = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--steal-rate", 12) == 0) rate_given = true;
  }
  if (!rate_given) options.stealing.steal_rate = 10'000.0;

  std::cout << "Ablation A13: the work-stealing architecture, priced by the "
               "network\n(16 nodes; batch: 3+1 jobs; serving: 1200 jobs at "
               "20/s on 4M static; steal rate "
            << options.stealing.steal_rate << "/s)\n";

  // --- section 1: architecture head-to-head, win and lose regimes --------
  const struct {
    const char* name;
    sched::SoftwareArch arch;
  } archs[] = {{"fixed", sched::SoftwareArch::kFixed},
               {"adaptive", sched::SoftwareArch::kAdaptive},
               {"stealing", sched::SoftwareArch::kStealing}};
  const struct {
    const char* name;
    workload::App app;
    double sort_skew;
    int partition;
    net::TopologyKind topology;
  } regimes[] = {
      {"skewed sort 8M", workload::App::kSort, kSortSkew, 8,
       net::TopologyKind::kMesh},
      {"tiny matmul 4R", workload::App::kMatMul, 0.0, 4,
       net::TopologyKind::kRing},
  };

  std::vector<BatchPoint> points;
  for (const auto& regime : regimes) {
    for (const auto& arch : archs) {
      for (const auto policy :
           {sched::PolicyKind::kStatic, sched::PolicyKind::kHybrid}) {
        points.push_back({regime.name, regime.app, regime.sort_skew,
                          regime.partition, regime.topology, arch.arch,
                          policy});
      }
    }
  }

  core::SweepRunner runner(options.threads);
  std::size_t dots = 0;
  const auto progress = [&](std::size_t done, std::size_t) {
    for (; dots < done; ++dots) std::cout << "." << std::flush;
  };

  struct BatchCell {
    double mrt_s = 0.0;
    std::uint64_t grants = 0;
    std::uint64_t migrated = 0;
  };
  const auto batch_cells = runner.map(
      points.size(),
      [&](std::size_t i) {
        const auto result =
            core::run_experiment(batch_config(points[i], options.stealing));
        BatchCell cell;
        cell.mrt_s = result.mean_response_s;
        cell.grants = result.primary.machine.steals.grants;
        cell.migrated = result.primary.machine.steals.tasks_migrated;
        return cell;
      },
      progress);
  std::cout << "\n";

  core::banner(std::cout, "A13.1 -- architectures, win and lose regimes");
  {
    core::Table table({"regime", "arch", "policy", "MRT (s)", "steal grants",
                       "tasks migrated"});
    for (std::size_t i = 0; i < points.size(); ++i) {
      const auto& pt = points[i];
      table.add_row({pt.regime, archs[(i / 2) % 3].name,
                     pt.policy == sched::PolicyKind::kStatic ? "static"
                                                             : "hybrid",
                     core::fmt_seconds(batch_cells[i].mrt_s),
                     fmt_count(batch_cells[i].grants),
                     fmt_count(batch_cells[i].migrated)});
    }
    table.print(std::cout);
  }

  // --- section 2: steal strategy sweep on the win regime ------------------
  struct Strategy {
    sched::stealing::VictimPolicy victim;
    sched::stealing::Granularity granularity;
  };
  std::vector<Strategy> strategies;
  for (const auto victim : {sched::stealing::VictimPolicy::kRandom,
                            sched::stealing::VictimPolicy::kNearest,
                            sched::stealing::VictimPolicy::kLastVictim}) {
    for (const auto granularity : {sched::stealing::Granularity::kSingleTask,
                                   sched::stealing::Granularity::kHalfDeque}) {
      strategies.push_back({victim, granularity});
    }
  }
  dots = 0;
  const auto strategy_cells = runner.map(
      strategies.size(),
      [&](std::size_t i) {
        BatchPoint pt{"skewed sort 8M", workload::App::kSort,   kSortSkew, 8,
                      net::TopologyKind::kMesh,
                      sched::SoftwareArch::kStealing,
                      sched::PolicyKind::kStatic};
        sched::stealing::StealParams steal = options.stealing;
        steal.victim = strategies[i].victim;
        steal.granularity = strategies[i].granularity;
        const auto result = core::run_experiment(batch_config(pt, steal));
        BatchCell cell;
        cell.mrt_s = result.mean_response_s;
        cell.grants = result.primary.machine.steals.grants;
        cell.migrated = result.primary.machine.steals.tasks_migrated;
        return cell;
      },
      progress);
  std::cout << "\n";

  core::banner(std::cout, "A13.2 -- steal strategies (skewed sort, 8M static)");
  {
    core::Table table(
        {"victim", "granularity", "MRT (s)", "grants", "tasks migrated"});
    for (std::size_t i = 0; i < strategies.size(); ++i) {
      table.add_row(
          {std::string(sched::stealing::to_string(strategies[i].victim)),
           std::string(sched::stealing::to_string(strategies[i].granularity)),
           core::fmt_seconds(strategy_cells[i].mrt_s),
           fmt_count(strategy_cells[i].grants),
           fmt_count(strategy_cells[i].migrated)});
    }
    table.print(std::cout);
  }

  // --- section 3: sustained serving with a straggler class ----------------
  dots = 0;
  const auto serve_cells = runner.map(
      3,
      [&](std::size_t i) {
        return core::run_sustained(
            serve_config(archs[i].arch, options.stealing, options.faults));
      },
      progress);
  std::cout << "\n";

  core::banner(std::cout,
               "A13.3 -- serving a heavy-tailed straggler mix (open arrivals)");
  {
    core::Table table({"arch", "admitted", "ok", "mrt (s)", "p99 (s)",
                       "steal grants"});
    for (std::size_t i = 0; i < 3; ++i) {
      const core::ServeResult& r = serve_cells[i];
      table.add_row({archs[i].name, fmt_count(r.admitted),
                     fmt_count(r.completed - r.jobs_lost),
                     core::fmt_seconds(r.response_s.mean()),
                     core::fmt_seconds(r.response_q.p99.value()),
                     fmt_count(r.machine.steals.grants)});
    }
    table.print(std::cout);
  }

  // --- section 4: stealing under faults -----------------------------------
  // Fixed per-machine fault seed: the table is a golden like A12's, and a
  // steal aimed at a crashed node rides the same retry/abort machinery as
  // any application message.
  dots = 0;
  const auto faulty_cells = runner.map(
      2,
      [&](std::size_t i) {
        const auto arch = i == 0 ? sched::SoftwareArch::kFixed
                                 : sched::SoftwareArch::kStealing;
        fault::FaultConfig faults = options.faults;
        faults.node_rate = 1.0 / 250.0;
        return core::run_sustained(
            serve_config(arch, options.stealing, faults));
      },
      progress);
  std::cout << "\n";

  core::banner(std::cout, "A13.4 -- the same mix on faulty nodes (mtbf 250s)");
  {
    core::Table table({"arch", "ok", "lost", "restarts", "crashes", "mrt (s)",
                       "steal grants"});
    const char* names[] = {"fixed", "stealing"};
    for (std::size_t i = 0; i < 2; ++i) {
      const core::ServeResult& r = faulty_cells[i];
      table.add_row({names[i], fmt_count(r.completed - r.jobs_lost),
                     fmt_count(r.jobs_lost),
                     fmt_count(r.machine.faults.job_restarts),
                     fmt_count(r.machine.faults.crashes),
                     core::fmt_seconds(r.response_s.mean()),
                     fmt_count(r.machine.steals.grants)});
    }
    table.print(std::cout);
  }

  std::cout << "\nExpected shape: A13.1 -- stealing beats fixed AND adaptive "
               "on the skewed sort\n(thieves drain the big leaves) and loses "
               "on the tiny ring matmul (protocol\noverhead with nothing "
               "to rebalance). A13.2 -- half-deque grants need fewer\n"
               "round-trips than single-task; nearest victims pay fewer hops "
               "but re-hit the same\nneighbour. A13.3 -- the straggler class "
               "drags fixed/adaptive p99; stealing\nflattens it. A13.4 -- "
               "crashes hit both equally; steals aimed at dead nodes ride\n"
               "the normal retry/abort path, so stealing keeps its edge "
               "without losing more jobs.\n";
  return 0;
}
