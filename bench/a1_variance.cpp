// Ablation A1: service-demand variance.
//
// The paper notes (section 5.2) that its batches have too little variance
// in service demand to show time-sharing in a good light, and cites the
// companion technical report [2,3] for the flip: with high variance,
// time-sharing beats static space-sharing (short jobs stop being stuck
// behind long ones). This bench reproduces that study with the synthetic
// fork/join workload: a batch of 16 jobs whose total demand has a fixed
// mean and a swept coefficient of variation.
#include <iostream>
#include <memory>
#include <vector>

#include "core/machine.h"
#include "core/report.h"
#include "core/sweep_runner.h"
#include "figure_common.h"
#include "sim/rng.h"
#include "workload/synthetic.h"

namespace {

using namespace tmc;

double run_policy(sched::PolicyKind kind, int partition, double cv,
                  std::uint64_t seed, bench::ObsSession& obs,
                  bool representative) {
  core::MachineConfig cfg;
  cfg.topology = net::TopologyKind::kMesh;
  cfg.policy.kind = kind;
  cfg.policy.partition_size = partition;
  obs.attach(cfg, representative);

  workload::SyntheticParams params;
  params.mean_demand = sim::SimTime::seconds(4);
  params.cv = cv;
  params.arch = sched::SoftwareArch::kAdaptive;

  sim::Rng rng(seed);
  auto specs = workload::make_synthetic_batch(params, 16, rng);

  core::Multicomputer machine(cfg);
  std::vector<std::unique_ptr<sched::Job>> jobs;
  sched::JobId id = 1;
  for (auto& spec : specs) {
    jobs.push_back(std::make_unique<sched::Job>(id++, std::move(spec)));
    machine.submit(*jobs.back());
  }
  machine.run_to_completion();
  double total = 0;
  for (const auto& job : jobs) total += job->response_time().to_seconds();
  return total / static_cast<double>(jobs.size());
}

}  // namespace

int main(int argc, char** argv) {
  const auto options = bench::parse_ablation_options(argc, argv);
  bench::ObsSession obs(options.obs);
  std::cout << "Ablation A1: mean response vs service-demand variance\n"
               "(synthetic fork/join batch of 16 jobs, mean demand 4 s, "
               "mesh,\n5 seeded replications per point; static FCFS vs "
               "time-sharing)\n";

  // Every (policy, partition, cv, seed) point is an independent simulation;
  // flatten the grid and farm it, then fold results back in grid order so
  // the tables are identical at any thread count.
  struct Point {
    sched::PolicyKind kind;
    int partition;
    double cv;
    std::uint64_t seed;
  };
  constexpr int kPartitions[] = {4, 16};
  constexpr double kCvs[] = {0.0, 0.5, 1.0, 2.0, 4.0, 8.0};
  constexpr std::uint64_t kSeeds = 5;
  std::vector<Point> points;
  for (const int partition : kPartitions) {
    const auto ts_kind = partition == 16 ? sched::PolicyKind::kTimeSharing
                                         : sched::PolicyKind::kHybrid;
    for (const double cv : kCvs) {
      for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
        points.push_back({sched::PolicyKind::kStatic, partition, cv, seed});
        points.push_back({ts_kind, partition, cv, seed});
      }
    }
  }

  core::SweepRunner runner(options.threads);
  std::size_t dots = 0;
  const auto mrts = runner.map(
      points.size(),
      [&](std::size_t i) {
        const auto& pt = points[i];
        // The observed run is the last grid point (highest-variance
        // time-sharing, the configuration the study is about).
        return run_policy(pt.kind, pt.partition, pt.cv, pt.seed, obs,
                          /*representative=*/i == points.size() - 1);
      },
      [&](std::size_t done, std::size_t) {
        for (; dots < done; ++dots) std::cout << "." << std::flush;
      });
  std::cout << "\n";

  std::size_t next = 0;
  for (const int partition : kPartitions) {
    std::cout << "\n-- partition size " << partition << " --\n";
    core::Table table({"cv", "static MRT (s)", "+/-", "TS MRT (s)", "+/-",
                       "TS/static"});
    for (const double cv : kCvs) {
      sim::OnlineStats stat_static, stat_ts;
      for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
        stat_static.add(mrts[next++]);
        stat_ts.add(mrts[next++]);
      }
      table.add_row({core::fmt_ratio(cv),
                     core::fmt_seconds(stat_static.mean()),
                     core::fmt_seconds(stat_static.ci_half_width()),
                     core::fmt_seconds(stat_ts.mean()),
                     core::fmt_seconds(stat_ts.ci_half_width()),
                     core::fmt_ratio(stat_ts.mean() / stat_static.mean())});
    }
    table.print(std::cout);
  }
  std::cout << "\nExpected shape ([2,3]): TS/static ratio falls as cv grows; "
               "time-sharing wins\n(ratio < 1) once variance is high -- the "
               "paper's low-variance batches sit on the left.\n";
  return obs.flush(std::cerr);
}
