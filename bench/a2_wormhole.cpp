// Ablation A2: wormhole routing.
//
// Section 5.2 of the paper predicts that wormhole routing, by eliminating
// store-and-forward buffering at intermediate processors, would both reduce
// buffer demand and flatten the policies' sensitivity to topology. This
// bench runs the communication-heavy matmul batch (fixed architecture,
// pure time-sharing on one 16-node partition) under both transports and
// reports the topology spread.
#include <iostream>
#include <vector>

#include "core/experiment.h"
#include "core/report.h"
#include "core/sweep_runner.h"
#include "figure_common.h"

namespace {

using namespace tmc;

double run_point(net::TopologyKind topology, bool wormhole,
                 const fault::FaultConfig& faults, bench::ObsSession& obs,
                 bool representative) {
  auto config =
      core::figure_point(workload::App::kMatMul, sched::SoftwareArch::kFixed,
                         sched::PolicyKind::kTimeSharing, 16, topology);
  config.machine.wormhole = wormhole;
  config.machine.faults = faults;
  obs.attach(config.machine, representative);
  return core::run_experiment(config).mean_response_s;
}

}  // namespace

int main(int argc, char** argv) {
  const auto options =
      bench::parse_ablation_options(argc, argv, /*fault_flags=*/true);
  bench::ObsSession obs(options.obs);
  std::cout << "Ablation A2: store-and-forward vs wormhole routing\n"
               "(matmul batch, fixed architecture, pure time-sharing on one "
               "16-node partition)\n";

  const std::vector<net::TopologyKind> topologies = {
      net::TopologyKind::kLinear, net::TopologyKind::kRing,
      net::TopologyKind::kMesh};
  core::SweepRunner runner(options.threads);
  std::size_t dots = 0;
  const auto mrts = runner.map(
      topologies.size() * 2,
      [&](std::size_t i) {
        // The observed run is the wormhole mesh (the ablation's headline
        // configuration): the last sweep point.
        return run_point(topologies[i / 2], /*wormhole=*/i % 2 == 1,
                         options.faults, obs,
                         /*representative=*/i == topologies.size() * 2 - 1);
      },
      [&](std::size_t done, std::size_t) {
        for (; dots < done; ++dots) std::cout << "." << std::flush;
      });

  core::Table table(
      {"topology", "store-fwd MRT (s)", "wormhole MRT (s)", "speedup"});
  double sf_min = 1e300, sf_max = 0, wh_min = 1e300, wh_max = 0;
  for (std::size_t i = 0; i < topologies.size(); ++i) {
    const double sf = mrts[i * 2];
    const double wh = mrts[i * 2 + 1];
    sf_min = std::min(sf_min, sf);
    sf_max = std::max(sf_max, sf);
    wh_min = std::min(wh_min, wh);
    wh_max = std::max(wh_max, wh);
    table.add_row({topology_name(topologies[i]), core::fmt_seconds(sf),
                   core::fmt_seconds(wh), core::fmt_ratio(sf / wh)});
  }
  std::cout << "\n";
  table.print(std::cout);
  std::cout << "\nTopology spread (worst/best MRT): store-and-forward "
            << core::fmt_ratio(sf_max / sf_min) << ", wormhole "
            << core::fmt_ratio(wh_max / wh_min)
            << "\nExpected shape: wormhole is faster everywhere and its "
               "spread is much closer to 1\n(the paper's predicted loss of "
               "topology sensitivity).\n";
  return obs.flush(std::cerr);
}
