// Ablation A2: wormhole routing.
//
// Section 5.2 of the paper predicts that wormhole routing, by eliminating
// store-and-forward buffering at intermediate processors, would both reduce
// buffer demand and flatten the policies' sensitivity to topology. This
// bench runs the communication-heavy matmul batch (fixed architecture,
// pure time-sharing on one 16-node partition) under both transports and
// reports the topology spread.
#include <iostream>

#include "core/experiment.h"
#include "core/report.h"

namespace {

using namespace tmc;

double run_point(net::TopologyKind topology, bool wormhole) {
  auto config =
      core::figure_point(workload::App::kMatMul, sched::SoftwareArch::kFixed,
                         sched::PolicyKind::kTimeSharing, 16, topology);
  config.machine.wormhole = wormhole;
  return core::run_experiment(config).mean_response_s;
}

}  // namespace

int main() {
  std::cout << "Ablation A2: store-and-forward vs wormhole routing\n"
               "(matmul batch, fixed architecture, pure time-sharing on one "
               "16-node partition)\n";

  core::Table table(
      {"topology", "store-fwd MRT (s)", "wormhole MRT (s)", "speedup"});
  double sf_min = 1e300, sf_max = 0, wh_min = 1e300, wh_max = 0;
  for (const auto topology :
       {net::TopologyKind::kLinear, net::TopologyKind::kRing,
        net::TopologyKind::kMesh}) {
    const double sf = run_point(topology, false);
    const double wh = run_point(topology, true);
    sf_min = std::min(sf_min, sf);
    sf_max = std::max(sf_max, sf);
    wh_min = std::min(wh_min, wh);
    wh_max = std::max(wh_max, wh);
    table.add_row({topology_name(topology), core::fmt_seconds(sf),
                   core::fmt_seconds(wh), core::fmt_ratio(sf / wh)});
    std::cout << "." << std::flush;
  }
  std::cout << "\n";
  table.print(std::cout);
  std::cout << "\nTopology spread (worst/best MRT): store-and-forward "
            << core::fmt_ratio(sf_max / sf_min) << ", wormhole "
            << core::fmt_ratio(wh_max / wh_min)
            << "\nExpected shape: wormhole is faster everywhere and its "
               "spread is much closer to 1\n(the paper's predicted loss of "
               "topology sensitivity).\n";
  return 0;
}
