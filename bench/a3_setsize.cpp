// Ablation A3: the hybrid policy's set size.
//
// Section 2.3 calls the number of jobs mapped to one partition "a tuning
// parameter". The paper runs with the whole batch dealt out (set size
// effectively unbounded); this bench sweeps the bound. Set size 1
// degenerates to static space-sharing with time-sliced processes; large set
// sizes approach the paper's hybrid.
#include <iostream>

#include "core/experiment.h"
#include "core/report.h"

int main() {
  using namespace tmc;
  std::cout << "Ablation A3: hybrid set-size sweep\n"
               "(matmul batch, adaptive architecture, partition size 4, "
               "mesh)\n";

  core::Table table({"set size", "MRT (s)", "small (s)", "large (s)",
                     "peak MPL"});
  for (const int set_size : {1, 2, 4, 8, 16}) {
    auto config =
        core::figure_point(workload::App::kMatMul,
                           sched::SoftwareArch::kAdaptive,
                           sched::PolicyKind::kHybrid, 4,
                           net::TopologyKind::kMesh);
    config.machine.policy.set_size = set_size;
    const auto run =
        core::run_batch(config, workload::BatchOrder::kInterleaved);
    // Peak MPL equals min(set size, jobs per partition) by construction;
    // report the configured bound alongside the measured response.
    table.add_row({std::to_string(set_size),
                   core::fmt_seconds(run.mean_response_s()),
                   core::fmt_seconds(run.response_small.mean()),
                   core::fmt_seconds(run.response_large.mean()),
                   std::to_string(std::min(set_size, 4))});
    std::cout << "." << std::flush;
  }
  std::cout << "\n";
  table.print(std::cout);
  std::cout << "\nExpected shape: small set sizes behave like space sharing "
               "(low contention,\nqueueing waits); large set sizes trade "
               "wait for memory/link contention. For this\nlow-variance "
               "batch, small set sizes win -- consistent with static "
               "beating TS.\n";
  return 0;
}
