// Ablation A3: the hybrid policy's set size.
//
// Section 2.3 calls the number of jobs mapped to one partition "a tuning
// parameter". The paper runs with the whole batch dealt out (set size
// effectively unbounded); this bench sweeps the bound. Set size 1
// degenerates to static space-sharing with time-sliced processes; large set
// sizes approach the paper's hybrid.
#include <iostream>
#include <vector>

#include "core/experiment.h"
#include "core/report.h"
#include "core/sweep_runner.h"
#include "figure_common.h"

int main(int argc, char** argv) {
  using namespace tmc;
  const auto options = bench::parse_ablation_options(argc, argv);
  bench::ObsSession obs(options.obs);
  std::cout << "Ablation A3: hybrid set-size sweep\n"
               "(matmul batch, adaptive architecture, partition size 4, "
               "mesh)\n";

  const std::vector<int> set_sizes = {1, 2, 4, 8, 16};
  core::SweepRunner runner(options.threads);
  std::size_t dots = 0;
  const auto runs = runner.map(
      set_sizes.size(),
      [&](std::size_t i) {
        auto config =
            core::figure_point(workload::App::kMatMul,
                               sched::SoftwareArch::kAdaptive,
                               sched::PolicyKind::kHybrid, 4,
                               net::TopologyKind::kMesh);
        config.machine.policy.set_size = set_sizes[i];
        // The observed run is the largest set size (the paper's hybrid).
        obs.attach(config.machine, /*representative=*/i == set_sizes.size() - 1);
        return core::run_batch(config, workload::BatchOrder::kInterleaved);
      },
      [&](std::size_t done, std::size_t) {
        for (; dots < done; ++dots) std::cout << "." << std::flush;
      });

  core::Table table({"set size", "MRT (s)", "small (s)", "large (s)",
                     "peak MPL"});
  for (std::size_t i = 0; i < set_sizes.size(); ++i) {
    const auto& run = runs[i];
    // Peak MPL equals min(set size, jobs per partition) by construction;
    // report the configured bound alongside the measured response.
    table.add_row({std::to_string(set_sizes[i]),
                   core::fmt_seconds(run.mean_response_s()),
                   core::fmt_seconds(run.response_small.mean()),
                   core::fmt_seconds(run.response_large.mean()),
                   std::to_string(std::min(set_sizes[i], 4))});
  }
  std::cout << "\n";
  table.print(std::cout);
  std::cout << "\nExpected shape: small set sizes behave like space sharing "
               "(low contention,\nqueueing waits); large set sizes trade "
               "wait for memory/link contention. For this\nlow-variance "
               "batch, small set sizes win -- consistent with static "
               "beating TS.\n";
  return obs.flush(std::cerr);
}
