// Ablation A4: the RR-job basic quantum q.
//
// The paper does not report its q; this bench shows the trade-off the
// choice embodies. Small quanta approximate processor sharing but multiply
// context switches; large quanta amortise switching but make the policy
// behave like run-to-completion within each round.
#include <iostream>
#include <vector>

#include "core/experiment.h"
#include "core/report.h"
#include "core/sweep_runner.h"
#include "figure_common.h"

int main(int argc, char** argv) {
  using namespace tmc;
  const auto options = bench::parse_ablation_options(argc, argv);
  bench::ObsSession obs(options.obs);
  std::cout << "Ablation A4: basic quantum sweep (pure time-sharing, matmul "
               "batch,\nfixed architecture, 16-node mesh)\n";

  const std::vector<int> quanta_ms = {5, 10, 20, 50, 100, 200, 500};
  core::SweepRunner runner(options.threads);
  std::size_t dots = 0;
  const auto runs = runner.map(
      quanta_ms.size(),
      [&](std::size_t i) {
        auto config =
            core::figure_point(workload::App::kMatMul,
                               sched::SoftwareArch::kFixed,
                               sched::PolicyKind::kTimeSharing, 16,
                               net::TopologyKind::kMesh);
        config.machine.policy.basic_quantum =
            sim::SimTime::milliseconds(quanta_ms[i]);
        // The observed run is the smallest quantum (most context switching).
        obs.attach(config.machine, /*representative=*/i == 0);
        return core::run_batch(config, workload::BatchOrder::kInterleaved);
      },
      [&](std::size_t done, std::size_t) {
        for (; dots < done; ++dots) std::cout << "." << std::flush;
      });

  core::Table table({"q (ms)", "MRT (s)", "ctx switches", "quantum expiries",
                     "cpu util"});
  for (std::size_t i = 0; i < quanta_ms.size(); ++i) {
    const auto& run = runs[i];
    table.add_row({std::to_string(quanta_ms[i]),
                   core::fmt_seconds(run.mean_response_s()),
                   std::to_string(run.machine.context_switches),
                   std::to_string(run.machine.quantum_expiries),
                   core::fmt_ratio(run.machine.avg_cpu_utilization)});
  }
  std::cout << "\n";
  table.print(std::cout);
  std::cout << "\nExpected shape: context switches fall roughly as 1/q, and the "
               "response curve\nhas an interior optimum: tiny quanta multiply "
               "switching and gang-turn overheads,\nlarge quanta stretch the "
               "rotation latency every synchronisation must ride.\n";
  return obs.flush(std::cerr);
}
