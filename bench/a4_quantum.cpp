// Ablation A4: the RR-job basic quantum q.
//
// The paper does not report its q; this bench shows the trade-off the
// choice embodies. Small quanta approximate processor sharing but multiply
// context switches; large quanta amortise switching but make the policy
// behave like run-to-completion within each round.
#include <iostream>

#include "core/experiment.h"
#include "core/report.h"

int main() {
  using namespace tmc;
  std::cout << "Ablation A4: basic quantum sweep (pure time-sharing, matmul "
               "batch,\nfixed architecture, 16-node mesh)\n";

  core::Table table({"q (ms)", "MRT (s)", "ctx switches", "quantum expiries",
                     "cpu util"});
  for (const int q_ms : {5, 10, 20, 50, 100, 200, 500}) {
    auto config =
        core::figure_point(workload::App::kMatMul,
                           sched::SoftwareArch::kFixed,
                           sched::PolicyKind::kTimeSharing, 16,
                           net::TopologyKind::kMesh);
    config.machine.policy.basic_quantum = sim::SimTime::milliseconds(q_ms);
    const auto run =
        core::run_batch(config, workload::BatchOrder::kInterleaved);
    table.add_row({std::to_string(q_ms),
                   core::fmt_seconds(run.mean_response_s()),
                   std::to_string(run.machine.context_switches),
                   std::to_string(run.machine.quantum_expiries),
                   core::fmt_ratio(run.machine.avg_cpu_utilization)});
    std::cout << "." << std::flush;
  }
  std::cout << "\n";
  table.print(std::cout);
  std::cout << "\nExpected shape: context switches fall roughly as 1/q, and the "
               "response curve\nhas an interior optimum: tiny quanta multiply "
               "switching and gang-turn overheads,\nlarge quanta stretch the "
               "rotation latency every synchronisation must ride.\n";
  return 0;
}
