// Ablation A5: node memory size.
//
// The paper's job sizes were chosen so that multiprogramming level 16 just
// fits in 4 MB per node, and it attributes much of time-sharing's loss to
// memory contention (blocked mailbox allocations at loaded nodes). This
// bench sweeps the node memory: below the paper's size contention should
// bite hard (blocked allocation time grows); above it the effect saturates.
#include <iostream>
#include <optional>
#include <vector>

#include "core/experiment.h"
#include "core/report.h"
#include "core/sweep_runner.h"
#include "figure_common.h"

int main(int argc, char** argv) {
  using namespace tmc;
  const auto options = bench::parse_ablation_options(argc, argv);
  bench::ObsSession obs(options.obs);
  std::cout << "Ablation A5: node memory sweep (pure time-sharing, matmul "
               "batch,\nfixed architecture, 16-node mesh)\n";

  const std::vector<std::size_t> mem_kb = {512, 1024, 2048, 4096, 8192, 16384};
  core::SweepRunner runner(options.threads);
  std::size_t dots = 0;
  const auto runs = runner.map(
      mem_kb.size(),
      [&](std::size_t i) -> std::optional<core::RunResult> {
        auto config =
            core::figure_point(workload::App::kMatMul,
                               sched::SoftwareArch::kFixed,
                               sched::PolicyKind::kTimeSharing, 16,
                               net::TopologyKind::kMesh);
        config.machine.memory_per_node = mem_kb[i] * 1024;
        config.machine.max_sim_time = sim::SimTime::seconds(120);
        // The observed run is the paper's 4 MB configuration.
        obs.attach(config.machine, /*representative=*/mem_kb[i] == 4096);
        try {
          return core::run_batch(config, workload::BatchOrder::kInterleaved);
        } catch (const std::runtime_error&) {
          // Below the batch's working set the machine wedges on memory: every
          // node's allocator queue stalls -- a real buffer deadlock, reported
          // as such (the paper's sizes were picked to avoid exactly this).
          return std::nullopt;
        }
      },
      [&](std::size_t done, std::size_t) {
        for (; dots < done; ++dots) std::cout << "." << std::flush;
      });

  core::Table table({"mem/node (KB)", "MRT (s)", "peak node mem (KB)",
                     "blocked allocs", "blocked time (s)"});
  for (std::size_t i = 0; i < mem_kb.size(); ++i) {
    const std::string kb = std::to_string(mem_kb[i]);
    if (const auto& run = runs[i]) {
      table.add_row(
          {kb, core::fmt_seconds(run->mean_response_s()),
           std::to_string(run->machine.peak_node_memory / 1024),
           std::to_string(run->machine.mem_blocked_requests),
           core::fmt_seconds(run->machine.mem_block_time.to_seconds())});
    } else {
      table.add_row({kb, "deadlock", "-", "-", "-"});
    }
  }
  std::cout << "\n";
  table.print(std::cout);
  std::cout << "\nExpected shape: below the working set, blocked allocations "
               "and response time\nclimb steeply; beyond it, extra memory "
               "buys nothing (blocked time ~ 0).\n";
  return obs.flush(std::cerr);
}
