// Ablation A6: the static policy's ordering sensitivity.
//
// The paper reports static results as the average of the best (small jobs
// first) and worst (large jobs first) orderings. This bench shows the
// spread being averaged over -- how much FCFS order matters at each
// partition size.
#include <iostream>

#include "core/experiment.h"
#include "core/report.h"

int main() {
  using namespace tmc;
  std::cout << "Ablation A6: static-policy ordering spread (matmul batch, "
               "adaptive architecture, mesh)\n";

  core::Table table({"partitions", "best SJF (s)", "interleaved (s)",
                     "worst LJF (s)", "worst/best", "paper avg (s)"});
  for (const int p : {1, 2, 4, 8, 16}) {
    const auto config =
        core::figure_point(workload::App::kMatMul,
                           sched::SoftwareArch::kAdaptive,
                           sched::PolicyKind::kStatic, p,
                           net::TopologyKind::kMesh);
    const auto best =
        core::run_batch(config, workload::BatchOrder::kSmallestFirst);
    const auto mid =
        core::run_batch(config, workload::BatchOrder::kInterleaved);
    const auto worst =
        core::run_batch(config, workload::BatchOrder::kLargestFirst);
    table.add_row(
        {std::to_string(16 / p) + " x " + std::to_string(p),
         core::fmt_seconds(best.mean_response_s()),
         core::fmt_seconds(mid.mean_response_s()),
         core::fmt_seconds(worst.mean_response_s()),
         core::fmt_ratio(worst.mean_response_s() / best.mean_response_s()),
         core::fmt_seconds(0.5 * (best.mean_response_s() +
                                  worst.mean_response_s()))});
    std::cout << "." << std::flush;
  }
  std::cout << "\n";
  table.print(std::cout);
  std::cout << "\nExpected shape: the spread is widest with few partitions "
               "(deep FCFS queues);\nwith 16 single-CPU partitions ordering "
               "barely matters.\n";
  return 0;
}
