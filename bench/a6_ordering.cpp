// Ablation A6: the static policy's ordering sensitivity.
//
// The paper reports static results as the average of the best (small jobs
// first) and worst (large jobs first) orderings. This bench shows the
// spread being averaged over -- how much FCFS order matters at each
// partition size.
#include <iostream>
#include <vector>

#include "core/experiment.h"
#include "core/report.h"
#include "core/sweep_runner.h"
#include "figure_common.h"

int main(int argc, char** argv) {
  using namespace tmc;
  const auto options = bench::parse_ablation_options(argc, argv);
  bench::ObsSession obs(options.obs);
  std::cout << "Ablation A6: static-policy ordering spread (matmul batch, "
               "adaptive architecture, mesh)\n";

  const std::vector<int> partitions = {1, 2, 4, 8, 16};
  constexpr workload::BatchOrder kOrders[] = {
      workload::BatchOrder::kSmallestFirst, workload::BatchOrder::kInterleaved,
      workload::BatchOrder::kLargestFirst};
  core::SweepRunner runner(options.threads);
  std::size_t dots = 0;
  const auto runs = runner.map(
      partitions.size() * 3,
      [&](std::size_t i) {
        auto config =
            core::figure_point(workload::App::kMatMul,
                               sched::SoftwareArch::kAdaptive,
                               sched::PolicyKind::kStatic, partitions[i / 3],
                               net::TopologyKind::kMesh);
        // The observed run is the last point (worst-case ordering at p=16).
        obs.attach(config.machine,
                   /*representative=*/i == partitions.size() * 3 - 1);
        return core::run_batch(config, kOrders[i % 3]);
      },
      [&](std::size_t done, std::size_t) {
        for (; dots < done; ++dots) std::cout << "." << std::flush;
      });

  core::Table table({"partitions", "best SJF (s)", "interleaved (s)",
                     "worst LJF (s)", "worst/best", "paper avg (s)"});
  for (std::size_t i = 0; i < partitions.size(); ++i) {
    const int p = partitions[i];
    const auto& best = runs[i * 3];
    const auto& mid = runs[i * 3 + 1];
    const auto& worst = runs[i * 3 + 2];
    table.add_row(
        {std::to_string(16 / p) + " x " + std::to_string(p),
         core::fmt_seconds(best.mean_response_s()),
         core::fmt_seconds(mid.mean_response_s()),
         core::fmt_seconds(worst.mean_response_s()),
         core::fmt_ratio(worst.mean_response_s() / best.mean_response_s()),
         core::fmt_seconds(0.5 * (best.mean_response_s() +
                                  worst.mean_response_s()))});
  }
  std::cout << "\n";
  table.print(std::cout);
  std::cout << "\nExpected shape: the spread is widest with few partitions "
               "(deep FCFS queues);\nwith 16 single-CPU partitions ordering "
               "barely matters.\n";
  return obs.flush(std::cerr);
}
