// Ablation A7: which implementation details make time-sharing lose?
//
// The paper's hybrid/TS policy gang-rotates jobs (its set of jobs "share
// the processors in the partition in a round-robin fashion") and the rest
// of its stack follows: a descheduled job's mailbox daemons stop, so its
// in-flight messages freeze, and every job's rank-0 lands on the same
// processor. This bench removes those mechanisms one at a time and shows
// that an idealised time-sharing policy -- uncoordinated process-level
// sharing with rotated placement -- would actually *beat* static
// space-sharing on this machine by overlapping one job's communication
// stalls with another's compute. The paper's conclusion is about its
// implementation (as it says: implementation exposes overheads that
// simulation studies neglect); this table maps the boundary.
#include <iostream>
#include <vector>

#include "core/experiment.h"
#include "core/report.h"
#include "core/sweep_runner.h"
#include "figure_common.h"

namespace {

using namespace tmc;

double ts_point(bool gang, bool rotate, bench::ObsSession& obs,
                bool representative) {
  auto config =
      core::figure_point(workload::App::kMatMul, sched::SoftwareArch::kAdaptive,
                         sched::PolicyKind::kTimeSharing, 16,
                         net::TopologyKind::kMesh);
  config.machine.policy.gang_scheduling = gang;
  config.machine.partition_sched.rotate_placement = rotate;
  obs.attach(config.machine, representative);
  return core::run_experiment(config).mean_response_s;
}

}  // namespace

int main(int argc, char** argv) {
  const auto options = bench::parse_ablation_options(argc, argv);
  bench::ObsSession obs(options.obs);

  // Point 0 is the static yardstick; 1-4 are the TS variants in table order.
  // The observed run is the paper-faithful variant (gang, stacked rank-0).
  core::SweepRunner runner(options.threads);
  const auto mrts = runner.map(5, [&obs](std::size_t i) {
    switch (i) {
      case 0:
        return core::run_experiment(
                   core::figure_point(workload::App::kMatMul,
                                      sched::SoftwareArch::kAdaptive,
                                      sched::PolicyKind::kStatic, 16,
                                      net::TopologyKind::kMesh))
            .mean_response_s;
      case 1: return ts_point(true, false, obs, /*representative=*/true);
      case 2: return ts_point(true, true, obs, /*representative=*/false);
      case 3: return ts_point(false, false, obs, /*representative=*/false);
      default: return ts_point(false, true, obs, /*representative=*/false);
    }
  });

  std::cout << "Ablation A7: de-constructing the time-sharing penalty\n"
               "(matmul batch, adaptive architecture, pure TS on one 16-node "
               "mesh; static = "
            << core::fmt_seconds(mrts[0]) << " s)\n";

  core::Table table({"TS variant", "MRT (s)"});
  table.add_row({"paper: gang rotation, stacked rank-0 (default)",
                 core::fmt_seconds(mrts[1])});
  table.add_row({"gang rotation, rotated placement",
                 core::fmt_seconds(mrts[2])});
  table.add_row({"uncoordinated sharing, stacked rank-0",
                 core::fmt_seconds(mrts[3])});
  table.add_row({"uncoordinated sharing, rotated placement",
                 core::fmt_seconds(mrts[4])});
  table.print(std::cout);

  std::cout << "\nExpected shape: the paper-faithful variant is the worst; "
               "dropping gang\ncoordination (so jobs overlap each other's "
               "stalls) recovers most of the loss,\nand can push "
               "time-sharing below the static policy's mean response.\n";
  return obs.flush(std::cerr);
}
