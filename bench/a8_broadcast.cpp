// Ablation A8: the matmul distribution algorithm.
//
// The paper's matrix multiplication ships B plus an A-band to every worker
// point-to-point from the coordinator (chosen deliberately for low
// inter-worker communication). On store-and-forward links that serialises
// ~T copies of B on the coordinator's few links and is the main reason a
// single job cannot use a 16-node partition efficiently -- which inflates
// the static policy's response at large partitions. A binomial
// distribution tree (workers forward bundles to their subtrees) is the
// textbook fix; this bench quantifies how much of the static policy's
// large-partition pain is the algorithm rather than the scheduler.
#include <iostream>

#include "core/experiment.h"
#include "core/report.h"

namespace {

using namespace tmc;

core::ExperimentConfig config_for(sched::PolicyKind kind, int partition,
                                  workload::MatMulParams::Broadcast bcast) {
  auto config =
      core::figure_point(workload::App::kMatMul,
                         sched::SoftwareArch::kAdaptive, kind, partition,
                         net::TopologyKind::kMesh);
  config.batch.matmul_broadcast = bcast;
  return config;
}

}  // namespace

int main() {
  using namespace tmc;
  using Broadcast = workload::MatMulParams::Broadcast;
  std::cout << "Ablation A8: point-to-point vs binomial-tree work "
               "distribution\n(matmul batch, adaptive architecture, mesh "
               "partitions)\n";

  core::Table table({"partition", "algorithm", "static MRT (s)",
                     "TS MRT (s)", "TS/static"});
  for (const int p : {4, 8, 16}) {
    for (const auto bcast : {Broadcast::kPointToPoint, Broadcast::kTree}) {
      const auto ts_kind = p == 16 ? sched::PolicyKind::kTimeSharing
                                   : sched::PolicyKind::kHybrid;
      const double st =
          core::run_experiment(config_for(sched::PolicyKind::kStatic, p, bcast))
              .mean_response_s;
      const double ts =
          core::run_experiment(config_for(ts_kind, p, bcast)).mean_response_s;
      table.add_row({std::to_string(p),
                     bcast == Broadcast::kTree ? "tree" : "point-to-point",
                     core::fmt_seconds(st), core::fmt_seconds(ts),
                     core::fmt_ratio(ts / st)});
      std::cout << "." << std::flush;
    }
  }
  std::cout << "\n";
  table.print(std::cout);
  std::cout << "\nExpected shape: the tree cuts the static policy's response "
               "hardest at large\npartitions (log-depth instead of linear "
               "broadcast), widening static's margin\nover time-sharing -- "
               "the paper's algorithm choice was the scheduler's handicap.\n";
  return 0;
}
