// Ablation A8: the matmul distribution algorithm.
//
// The paper's matrix multiplication ships B plus an A-band to every worker
// point-to-point from the coordinator (chosen deliberately for low
// inter-worker communication). On store-and-forward links that serialises
// ~T copies of B on the coordinator's few links and is the main reason a
// single job cannot use a 16-node partition efficiently -- which inflates
// the static policy's response at large partitions. A binomial
// distribution tree (workers forward bundles to their subtrees) is the
// textbook fix; this bench quantifies how much of the static policy's
// large-partition pain is the algorithm rather than the scheduler.
#include <iostream>
#include <vector>

#include "core/experiment.h"
#include "core/report.h"
#include "core/sweep_runner.h"
#include "figure_common.h"

namespace {

using namespace tmc;

core::ExperimentConfig config_for(sched::PolicyKind kind, int partition,
                                  workload::MatMulParams::Broadcast bcast) {
  auto config =
      core::figure_point(workload::App::kMatMul,
                         sched::SoftwareArch::kAdaptive, kind, partition,
                         net::TopologyKind::kMesh);
  config.batch.matmul_broadcast = bcast;
  return config;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace tmc;
  using Broadcast = workload::MatMulParams::Broadcast;
  const auto options =
      bench::parse_ablation_options(argc, argv, /*fault_flags=*/true);
  bench::ObsSession obs(options.obs);
  std::cout << "Ablation A8: point-to-point vs binomial-tree work "
               "distribution\n(matmul batch, adaptive architecture, mesh "
               "partitions)\n";

  struct Point {
    int partition;
    Broadcast bcast;
    sched::PolicyKind kind;
  };
  std::vector<Point> points;
  for (const int p : {4, 8, 16}) {
    for (const auto bcast : {Broadcast::kPointToPoint, Broadcast::kTree}) {
      const auto ts_kind = p == 16 ? sched::PolicyKind::kTimeSharing
                                   : sched::PolicyKind::kHybrid;
      points.push_back({p, bcast, sched::PolicyKind::kStatic});
      points.push_back({p, bcast, ts_kind});
    }
  }

  core::SweepRunner runner(options.threads);
  std::size_t dots = 0;
  const auto mrts = runner.map(
      points.size(),
      [&](std::size_t i) {
        const auto& pt = points[i];
        auto config = config_for(pt.kind, pt.partition, pt.bcast);
        config.machine.faults = options.faults;
        obs.attach(config.machine, /*representative=*/i == 0);
        return core::run_experiment(config).mean_response_s;
      },
      [&](std::size_t done, std::size_t) {
        for (; dots < done; ++dots) std::cout << "." << std::flush;
      });

  core::Table table({"partition", "algorithm", "static MRT (s)",
                     "TS MRT (s)", "TS/static"});
  for (std::size_t i = 0; i < points.size(); i += 2) {
    const double st = mrts[i];
    const double ts = mrts[i + 1];
    table.add_row({std::to_string(points[i].partition),
                   points[i].bcast == Broadcast::kTree ? "tree"
                                                       : "point-to-point",
                   core::fmt_seconds(st), core::fmt_seconds(ts),
                   core::fmt_ratio(ts / st)});
  }
  std::cout << "\n";
  table.print(std::cout);
  std::cout << "\nExpected shape: the tree cuts the static policy's response "
               "hardest at large\npartitions (log-depth instead of linear "
               "broadcast), widening static's margin\nover time-sharing -- "
               "the paper's algorithm choice was the scheduler's handicap.\n";
  return obs.flush(std::cerr);
}
