// Ablation A9: adaptive space-sharing vs the paper's policies.
//
// The paper's taxonomy (section 2.1) names semi-static/dynamic space
// sharing but evaluates only fixed equal partitions. This bench adds the
// classic adaptive policy ([5, 10] in the paper's references): partition
// size = machine / jobs-in-system, buddy-allocated at dispatch. For a batch
// arriving at once, adaptivity must pick its way between the fixed sizes;
// the interesting question is whether it lands near the best fixed choice
// without being told the load.
#include <iostream>
#include <vector>

#include "core/experiment.h"
#include "core/report.h"
#include "core/sweep_runner.h"
#include "figure_common.h"

namespace {

using namespace tmc;

core::ExperimentConfig adaptive_config(workload::App app,
                                       sched::SoftwareArch arch) {
  auto config = core::figure_point(app, arch,
                                   sched::PolicyKind::kAdaptiveStatic, 16,
                                   net::TopologyKind::kMesh);
  return config;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace tmc;
  const auto options = bench::parse_ablation_options(argc, argv);
  bench::ObsSession obs(options.obs);
  std::cout << "Ablation A9: adaptive space-sharing (buddy-allocated, "
               "equipartition target)\nvs fixed static partitions and the "
               "hybrid policy; mesh, 16-job batch.\n";

  const std::vector<int> partitions = {1, 2, 4, 8, 16};
  core::SweepRunner runner(options.threads);
  for (const auto app : {workload::App::kMatMul, workload::App::kSort}) {
    const auto arch = sched::SoftwareArch::kAdaptive;
    core::banner(std::cout, std::string(workload::to_string(app)) +
                                " / adaptive software architecture");
    // Points 0-4: static per partition size; 5: hybrid; 6: adaptive-static.
    std::size_t dots = 0;
    const auto mrts = runner.map(
        partitions.size() + 2,
        [&](std::size_t i) {
          if (i < partitions.size()) {
            return core::run_experiment(
                       core::figure_point(app, arch, sched::PolicyKind::kStatic,
                                          partitions[i],
                                          net::TopologyKind::kMesh))
                .mean_response_s;
          }
          if (i == partitions.size()) {
            return core::run_experiment(
                       core::figure_point(app, arch, sched::PolicyKind::kHybrid,
                                          4, net::TopologyKind::kMesh))
                .mean_response_s;
          }
          // The observed run is the matmul adaptive-static point (the
          // policy this ablation introduces).
          auto config = adaptive_config(app, arch);
          obs.attach(config.machine,
                     /*representative=*/app == workload::App::kMatMul);
          return core::run_experiment(config).mean_response_s;
        },
        [&](std::size_t done, std::size_t) {
          for (; dots < done; ++dots) std::cout << "." << std::flush;
        });

    core::Table table({"policy", "MRT (s)"});
    for (std::size_t i = 0; i < partitions.size(); ++i) {
      table.add_row({"static p=" + std::to_string(partitions[i]),
                     core::fmt_seconds(mrts[i])});
    }
    table.add_row(
        {"hybrid p=4", core::fmt_seconds(mrts[partitions.size()])});
    table.add_row({"adaptive-static (buddy)",
                   core::fmt_seconds(mrts[partitions.size() + 1])});
    std::cout << "\n";
    table.print(std::cout);
  }

  std::cout
      << "\nExpected shape: for matmul, adaptive space-sharing lands between "
         "the fixed\nsizes without being told the load (early dispatches "
         "take large blocks, the\nbacklogged tail degrades toward small "
         "ones). For sort it backfires: once the\nqueue is deep it hands "
         "out 1-2 CPU blocks, and an adaptive-width selection sort\non one "
         "CPU is quadratic in the whole array -- allocation policy and "
         "algorithmic\nscalability interact, which is why the adaptive "
         "family needs workload speedup\nknowledge ([10] Rosti et al.).\n";
  return obs.flush(std::cerr);
}
