// Ablation A9: adaptive space-sharing vs the paper's policies.
//
// The paper's taxonomy (section 2.1) names semi-static/dynamic space
// sharing but evaluates only fixed equal partitions. This bench adds the
// classic adaptive policy ([5, 10] in the paper's references): partition
// size = machine / jobs-in-system, buddy-allocated at dispatch. For a batch
// arriving at once, adaptivity must pick its way between the fixed sizes;
// the interesting question is whether it lands near the best fixed choice
// without being told the load.
#include <iostream>

#include "core/experiment.h"
#include "core/report.h"

namespace {

using namespace tmc;

core::ExperimentConfig adaptive_config(workload::App app,
                                       sched::SoftwareArch arch) {
  auto config = core::figure_point(app, arch,
                                   sched::PolicyKind::kAdaptiveStatic, 16,
                                   net::TopologyKind::kMesh);
  return config;
}

}  // namespace

int main() {
  using namespace tmc;
  std::cout << "Ablation A9: adaptive space-sharing (buddy-allocated, "
               "equipartition target)\nvs fixed static partitions and the "
               "hybrid policy; mesh, 16-job batch.\n";

  for (const auto app : {workload::App::kMatMul, workload::App::kSort}) {
    const auto arch = sched::SoftwareArch::kAdaptive;
    core::banner(std::cout, std::string(workload::to_string(app)) +
                                " / adaptive software architecture");
    core::Table table({"policy", "MRT (s)"});
    for (const int p : {1, 2, 4, 8, 16}) {
      const auto result = core::run_experiment(core::figure_point(
          app, arch, sched::PolicyKind::kStatic, p, net::TopologyKind::kMesh));
      table.add_row({"static p=" + std::to_string(p),
                     core::fmt_seconds(result.mean_response_s)});
      std::cout << "." << std::flush;
    }
    const auto hybrid = core::run_experiment(core::figure_point(
        app, arch, sched::PolicyKind::kHybrid, 4, net::TopologyKind::kMesh));
    table.add_row({"hybrid p=4", core::fmt_seconds(hybrid.mean_response_s)});
    const auto adaptive = core::run_experiment(adaptive_config(app, arch));
    table.add_row({"adaptive-static (buddy)",
                   core::fmt_seconds(adaptive.mean_response_s)});
    std::cout << "\n";
    table.print(std::cout);
  }

  std::cout
      << "\nExpected shape: for matmul, adaptive space-sharing lands between "
         "the fixed\nsizes without being told the load (early dispatches "
         "take large blocks, the\nbacklogged tail degrades toward small "
         "ones). For sort it backfires: once the\nqueue is deep it hands "
         "out 1-2 CPU blocks, and an adaptive-width selection sort\non one "
         "CPU is quadratic in the whole array -- allocation policy and "
         "algorithmic\nscalability interact, which is why the adaptive "
         "family needs workload speedup\nknowledge ([10] Rosti et al.).\n";
  return 0;
}
