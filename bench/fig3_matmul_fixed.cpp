// Reproduces Figure 3: mean response time of the matrix-multiplication
// batch under the FIXED software architecture (16 processes per job),
// static space-sharing vs time-sharing/hybrid, over partition size and
// per-partition topology.
#include <iostream>

#include "figure_common.h"

int main(int argc, char** argv) {
  using namespace tmc;
  const auto options = bench::parse_figure_options(argc, argv);
  bench::ObsSession obs(options.obs);
  std::cout << "Figure 3: matmul, fixed architecture (12x50^2 + 4x100^2, "
               "16 processes/job)\n";
  const auto rows = bench::run_figure_sweep(workload::App::kMatMul,
                                            sched::SoftwareArch::kFixed,
                                            options, std::cout, &obs);
  bench::print_figure(std::cout,
                      "Figure 3 -- matmul / fixed software architecture",
                      rows, options.csv);
  std::cout << "\nPaper shape: static < hybrid << pure TS at every partition "
               "size;\ngap grows to the right (fewer, larger partitions); "
               "linear worst for TS.\n";
  return obs.flush(std::cerr);
}
