// Reproduces Figure 4: the matrix-multiplication batch under the ADAPTIVE
// software architecture (process count = partition size, discovered at
// dispatch).
#include <iostream>

#include "figure_common.h"

int main(int argc, char** argv) {
  using namespace tmc;
  const auto options = bench::parse_figure_options(argc, argv);
  bench::ObsSession obs(options.obs);
  std::cout << "Figure 4: matmul, adaptive architecture (12x50^2 + 4x100^2, "
               "processes = partition size)\n";
  const auto rows = bench::run_figure_sweep(workload::App::kMatMul,
                                            sched::SoftwareArch::kAdaptive,
                                            options, std::cout, &obs);
  bench::print_figure(std::cout,
                      "Figure 4 -- matmul / adaptive software architecture",
                      rows, options.csv);
  std::cout << "\nPaper shape: as Figure 3, but adaptive beats fixed (fewer "
               "processes => fewer\nself-sends and buffers); at one "
               "partition the two architectures coincide.\n";
  return obs.flush(std::cerr);
}
