// Reproduces Figure 5: the sorting batch (divide-and-conquer, selection-sort
// workers) under the FIXED software architecture.
#include <iostream>

#include "figure_common.h"

int main(int argc, char** argv) {
  using namespace tmc;
  const auto options = bench::parse_figure_options(argc, argv);
  bench::ObsSession obs(options.obs);
  std::cout << "Figure 5: sort, fixed architecture (12x6000 + 4x14000 "
               "elements, 16 processes/job)\n";
  const auto rows = bench::run_figure_sweep(workload::App::kSort,
                                            sched::SoftwareArch::kFixed,
                                            options, std::cout, &obs);
  bench::print_figure(std::cout,
                      "Figure 5 -- sort / fixed software architecture", rows,
                      options.csv);
  std::cout << "\nPaper shape: static <= TS as in the matmul figures; the "
               "fixed architecture is\nfast in absolute terms because 16 "
               "small chunks sidestep selection sort's O(n^2).\n";
  return obs.flush(std::cerr);
}
