// Reproduces Figure 6: the sorting batch under the ADAPTIVE software
// architecture. Section 5.3's headline: unlike matmul, sort prefers the
// FIXED architecture -- selection sort is O(n^2), so 16 small chunks are
// much cheaper than p large ones.
#include <iostream>

#include "figure_common.h"

int main(int argc, char** argv) {
  using namespace tmc;
  const auto options = bench::parse_figure_options(argc, argv);
  bench::ObsSession obs(options.obs);
  std::cout << "Figure 6: sort, adaptive architecture (12x6000 + 4x14000 "
               "elements, processes = partition size)\n";
  const auto rows = bench::run_figure_sweep(workload::App::kSort,
                                            sched::SoftwareArch::kAdaptive,
                                            options, std::cout, &obs);
  bench::print_figure(std::cout,
                      "Figure 6 -- sort / adaptive software architecture",
                      rows, options.csv);
  std::cout << "\nPaper shape: response times far above Figure 5 at small "
               "partition sizes\n(adaptive makes chunks large and selection "
               "sort quadratic); static still beats TS.\n";
  return obs.flush(std::cerr);
}
