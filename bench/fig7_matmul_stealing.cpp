// Figure 7 (extension): the matrix-multiplication batch under the
// WORK-STEALING software architecture. Like figure 3's fixed runs, every
// job keeps 16 processes; unlike them, each process's band decomposes into
// migratable row tasklets and idle workers steal through the network, so
// the steal price is topology- and contention-dependent. --steal-rate 0
// degenerates byte-identically to figure 3 (the engine is never built and
// the jobs run their fallback fixed scripts).
#include <cstring>
#include <iostream>

#include "figure_common.h"

int main(int argc, char** argv) {
  using namespace tmc;
  auto options = bench::parse_figure_options(argc, argv, /*steal_flags=*/true);
  // Stealing on by default (a 10 kHz idle poll); an explicit --steal-rate
  // (including 0) wins.
  bool rate_given = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--steal-rate", 12) == 0) rate_given = true;
  }
  if (!rate_given) options.stealing.steal_rate = 10'000.0;

  bench::ObsSession obs(options.obs);
  std::cout << "Figure 7: matmul, work-stealing architecture (12x50^2 + "
               "4x100^2, 16 processes/job,\nsteal rate "
            << options.stealing.steal_rate << "/s, victim "
            << sched::stealing::to_string(options.stealing.victim)
            << ", granularity "
            << sched::stealing::to_string(options.stealing.granularity)
            << ")\n";
  const auto rows = bench::run_figure_sweep(workload::App::kMatMul,
                                            sched::SoftwareArch::kStealing,
                                            options, std::cout, &obs);
  bench::print_figure(
      std::cout, "Figure 7 -- matmul / work-stealing software architecture",
      rows, options.csv);
  std::cout << "\nExpected shape: close to figure 3 on balanced matmul (the "
               "initial deal is already\neven, so steals are rare); the "
               "protocol's polling and per-tasklet result traffic\nshow up "
               "as a small overhead on the thin-bisection topologies.\n";
  return obs.flush(std::cerr);
}
