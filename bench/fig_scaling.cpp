// Scaling study: does simulator throughput survive 16 -> 1024 nodes?
//
// The paper's machine has 16 Transputers; the simulator's data structures
// were originally sized for that. This bench grows the machine (16-node
// mesh partitions, statically scheduled, with the batch scaled in
// proportion so per-node load is constant) and reports, per machine size:
//
//   - events fired and wall-clock events/sec. Algorithmic routing and the
//     SoA hot state make the per-event cost O(1) in machine size
//     *algorithmically*; what remains is the memory hierarchy (the pending
//     set is ~1 event per busy node, so heap ops comb O(log N), and the
//     O(N) machine state stops fitting in cache), which shows up as a
//     gentle decline, not a blow-up,
//   - machine heap bytes per node (construction RSS delta; roughly flat
//     when per-node state is O(1)),
//   - routing storage: the closed-form Router holds no per-pair state,
//     vs the O(N^2) BFS table the simulation used to materialise.
//
// --json=PATH writes a Google-Benchmark-shaped report (items_per_second =
// events/sec, plus bytes_per_node et al. as counters) so tools/perf_gate.py
// can gate it against BENCH_scaling.json exactly like the microbenches.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <limits>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "core/experiment.h"
#include "core/machine.h"
#include "core/report.h"
#include "figure_common.h"
#include "net/router.h"
#include "net/routing.h"
#include "net/topology.h"
#include "obs/hub.h"
#include "workload/batch.h"

#if defined(__GLIBC__)
#include <malloc.h>
#endif

namespace {

using namespace tmc;

/// /proc/self/status field in bytes (Linux); 0 where unavailable.
std::size_t proc_status_bytes(const char* key) {
#if defined(__linux__)
  std::ifstream status("/proc/self/status");
  std::string line;
  while (std::getline(status, line)) {
    if (line.rfind(key, 0) != 0) continue;
    std::size_t kb = 0;
    std::sscanf(line.c_str() + std::strlen(key), ":%zu", &kb);
    return kb * 1024;
  }
#else
  (void)key;
#endif
  return 0;
}

/// Live heap bytes (glibc); falls back to resident-set size elsewhere.
/// Heap accounting is the right probe for the bytes-per-node trend: RSS
/// deltas go quiet once the allocator starts reusing pages freed by the
/// previous (smaller) machine.
std::size_t live_heap_bytes() {
#if defined(__GLIBC__)
  return mallinfo2().uordblks;
#else
  return proc_status_bytes("VmRSS");
#endif
}

struct SizePoint {
  int nodes = 0;
  std::uint64_t events = 0;
  std::size_t peak_pending = 0;
  double wall_s = 0.0;
  double events_per_s = 0.0;
  double mean_response_s = 0.0;
  double makespan_s = 0.0;
  std::size_t machine_bytes = 0;        // construction RSS delta
  std::size_t topology_bytes = 0;       // CSR adjacency + link table
  std::size_t table_routing_bytes = 0;  // what the BFS table would hold
};

core::ExperimentConfig scaled_config(int nodes) {
  auto config = core::figure_point(
      workload::App::kMatMul, sched::SoftwareArch::kAdaptive,
      sched::PolicyKind::kStatic, /*partition_size=*/16,
      net::TopologyKind::kMesh);
  config.machine.processors = nodes;
  // Constant per-node load: the paper's 12+4 batch per 16 nodes.
  config.batch.small_count = 12 * nodes / 16;
  config.batch.large_count = 4 * nodes / 16;
  return config;
}

SizePoint run_size(int nodes, int reps, bench::ObsSession* obs,
                   bool observed) {
  SizePoint point;
  point.nodes = nodes;
  const auto config = scaled_config(nodes);

  {
    // Construction-memory probe: live-heap delta across building the
    // machine. The absolute value includes allocator rounding; the trend is
    // what matters: bytes per node must stay flat, not grow with N.
    const std::size_t before = live_heap_bytes();
    core::Multicomputer machine(config.machine);
    point.machine_bytes = live_heap_bytes() - before;
    point.topology_bytes = machine.topology().storage_bytes();
    // The O(N^2) cost the algorithmic router avoids: materialise the BFS
    // table for the same wiring and measure it.
    point.table_routing_bytes =
        net::RoutingTable(machine.topology()).storage_bytes();
  }

  // Best-of-reps wall time: the short points (a 64-node run is ~10 ms) are
  // at the mercy of scheduler noise, which only ever slows a run down, so
  // the minimum is the stable statistic to gate on. Everything else about
  // the run is deterministic across repetitions.
  point.wall_s = std::numeric_limits<double>::infinity();
  for (int rep = 0; rep < reps; ++rep) {
    // The observed rep carries the recording overhead; with the default
    // reps the best-of minimum still comes from an uninstrumented rep.
    auto rep_config = config;
    if (obs != nullptr) {
      obs->attach(rep_config.machine, observed && rep == 0);
    }
    const auto start = std::chrono::steady_clock::now();
    const auto run =
        core::run_batch(rep_config, workload::BatchOrder::kInterleaved);
    const std::chrono::duration<double> wall =
        std::chrono::steady_clock::now() - start;
    point.wall_s = std::min(point.wall_s, wall.count());
    point.events = run.machine.events;
    point.peak_pending = run.machine.peak_pending_events;
    point.mean_response_s = run.mean_response_s();
    point.makespan_s = run.makespan_s;
  }
  point.events_per_s =
      point.wall_s > 0 ? static_cast<double>(point.events) / point.wall_s : 0;
  return point;
}

void write_json(const std::string& path, const std::vector<SizePoint>& points) {
  std::ofstream out(path);
  out << "{\n  \"context\": {\"executable\": \"fig_scaling\"},\n"
      << "  \"benchmarks\": [\n";
  for (std::size_t i = 0; i < points.size(); ++i) {
    const auto& p = points[i];
    out << "    {\"name\": \"BM_Scaling/" << p.nodes << "\", "
        << "\"run_type\": \"iteration\", \"iterations\": 1, "
        << "\"real_time\": " << p.wall_s << ", \"time_unit\": \"s\", "
        << "\"items_per_second\": " << p.events_per_s << ", "
        << "\"events\": " << p.events << ", "
        << "\"bytes_per_node\": "
        << static_cast<double>(p.machine_bytes) / p.nodes << ", "
        << "\"topology_bytes\": " << p.topology_bytes << ", "
        << "\"table_routing_bytes\": " << p.table_routing_bytes << ", "
        << "\"algorithmic_routing_bytes\": 0}"
        << (i + 1 < points.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
}

[[noreturn]] void usage(int code) {
  std::cout << "usage: fig_scaling [--sizes N,N,...] [--reps R] [--json PATH]\n"
               "  --sizes  machine sizes to run (default 16,64,256,1024;\n"
               "           each must be a multiple of 16)\n"
               "  --reps   repetitions per size, best wall time kept\n"
               "           (default 5; short runs are noise-prone)\n"
               "  --json   write a Google-Benchmark-format report for\n"
               "           tools/perf_gate.py\n"
            << obs::cli_help()
            << "  (observability records the first rep of the largest\n"
               "   size; best-of wall times still come from the\n"
               "   uninstrumented reps when --reps > 1)\n";
  std::exit(code);
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<int> sizes = {16, 64, 256, 1024};
  int reps = 5;
  std::string json_path;
  obs::Options obs_options;
  for (int i = 1; i < argc; ++i) {
    std::string obs_error;
    if (obs::parse_cli_flag(argc, argv, i, obs_options, obs_error)) {
      if (!obs_error.empty()) {
        std::cerr << "fig_scaling: " << obs_error << "\n";
        return 2;
      }
      continue;
    }
    fault::FaultConfig rejected_faults;
    bool fault_seen = false;
    if (fault::parse_cli_flag(argc, argv, i, rejected_faults, fault_seen,
                              obs_error) ||
        fault_seen) {
      std::cerr << "fig_scaling: fault-injection flags only apply to benches "
                   "wired for them (fig3-6, a2, a8, a10, a12_faults, "
                   "serve_sustained)\n";
      return 2;
    }
    const std::string arg = argv[i];
    auto value = [&](const std::string& prefix) -> std::optional<std::string> {
      if (arg.rfind(prefix + "=", 0) == 0) return arg.substr(prefix.size() + 1);
      if (arg == prefix && i + 1 < argc) return std::string(argv[++i]);
      return std::nullopt;
    };
    if (arg == "--help" || arg == "-h") usage(0);
    if (const auto v = value("--sizes")) {
      sizes.clear();
      std::stringstream ss(*v);
      for (std::string tok; std::getline(ss, tok, ',');) {
        const int n = std::atoi(tok.c_str());
        if (n < 16 || n % 16 != 0) {
          std::cerr << "fig_scaling: bad size '" << tok
                    << "' (want a multiple of 16)\n";
          return 2;
        }
        sizes.push_back(n);
      }
      continue;
    }
    if (const auto v = value("--reps")) {
      reps = std::atoi(v->c_str());
      if (reps < 1) {
        std::cerr << "fig_scaling: bad --reps '" << *v << "'\n";
        return 2;
      }
      continue;
    }
    if (const auto v = value("--json")) {
      json_path = *v;
      continue;
    }
    std::cerr << "fig_scaling: unknown flag '" << arg << "'\n";
    usage(2);
  }
  if (!obs_options.slo.empty()) {
    std::cerr << "fig_scaling: --slo only applies to the serving harness "
                 "(serve_sustained)\n";
    return 2;
  }

  std::cout << "Scaling study: static policy, 16-node mesh partitions, "
               "matmul batch scaled\nwith the machine (12+4 jobs per 16 "
               "nodes -- constant per-node load).\n\n";

  bench::ObsSession obs_session(obs_options);
  // Observe the first occurrence of the largest size (the point whose
  // timeline is worth looking at; also the most expensive to re-run).
  const auto observed = static_cast<std::size_t>(
      std::max_element(sizes.begin(), sizes.end()) - sizes.begin());
  std::vector<SizePoint> points;
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    const int n = sizes[i];
    std::cout << "running " << n << " nodes..." << std::flush;
    points.push_back(run_size(n, reps, &obs_session, i == observed));
    std::cout << " " << points.back().events << " events in "
              << core::fmt_seconds(points.back().wall_s) << " s\n";
  }

  core::Table table({"nodes", "events", "peak pend", "wall (s)", "events/s",
                     "MRT (s)", "KB/node", "route KB (table)",
                     "route KB (algo)"});
  for (const auto& p : points) {
    table.add_row({std::to_string(p.nodes), std::to_string(p.events),
                   std::to_string(p.peak_pending),
                   core::fmt_seconds(p.wall_s),
                   std::to_string(static_cast<std::uint64_t>(p.events_per_s)),
                   core::fmt_seconds(p.mean_response_s),
                   std::to_string(p.machine_bytes / 1024 /
                                  static_cast<std::size_t>(p.nodes)),
                   std::to_string(p.table_routing_bytes / 1024),
                   std::to_string(0)});
  }
  std::cout << "\n";
  table.print(std::cout);

  const std::size_t peak = proc_status_bytes("VmHWM");
  if (peak > 0) {
    std::cout << "\npeak RSS: " << peak / (1024 * 1024) << " MB\n";
  }
  std::cout
      << "\nExpected shape: events scale exactly linearly with N (per-node "
         "load is\nconstant), peak pending events is ~1 per busy node, and "
         "KB/node stays flat.\nevents/s declines gently with N -- the "
         "per-event cost is O(1) in machine\nsize algorithmically, but the "
         "O(N) working set outgrows cache and heap ops\ncomb O(log "
         "pending) -- while the BFS table's O(N^2) routing storage (the\n"
         "`route KB (table)` column, which the algorithmic router replaces "
         "with zero\nbytes) is why 1024 nodes were previously out of "
         "reach.\n";

  if (!json_path.empty()) {
    write_json(json_path, points);
    std::cout << "\nwrote " << json_path << "\n";
  }
  return obs_session.flush(std::cerr);
}
