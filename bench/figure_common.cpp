#include "figure_common.h"

#include <cstdlib>
#include <cstring>
#include <iostream>

#include "core/report.h"
#include "core/sweep_runner.h"

namespace tmc::bench {

namespace {

[[noreturn]] void usage(const char* argv0, bool figure_flags, bool obs_flags,
                        bool fault_flags, bool steal_flags, int exit_code) {
  auto& os = exit_code == 0 ? std::cout : std::cerr;
  os << "usage: " << argv0 << " [--threads N]";
  if (figure_flags) os << " [--csv] [--with-16h] [--quick]";
  if (obs_flags) os << " [--metrics[=PATH]] [--timeline=PATH]";
  if (fault_flags) os << " [--fault-rate R]";
  if (steal_flags) os << " [--steal-rate R]";
  os << " [--help]\n"
     << "  --threads N  farm sweep points over N worker threads\n"
     << "               (0 = hardware thread count; output is identical\n"
     << "               at any thread count). Default 1.\n";
  if (figure_flags) {
    os << "  --csv        also emit the table as CSV\n"
       << "  --with-16h   include the 16-node hypercube the real machine\n"
       << "               could not wire\n"
       << "  --quick      reduced problem (smaller batch and job sizes,\n"
       << "               partition sizes 1/4/16) for regression tests\n";
  }
  if (obs_flags) os << obs::cli_help();
  if (fault_flags) os << fault::cli_help();
  if (steal_flags) os << sched::stealing::cli_help();
  std::exit(exit_code);
}

int parse_thread_value(const char* argv0, bool figure_flags, bool obs_flags,
                       bool fault_flags, bool steal_flags, const char* value) {
  if (value == nullptr) {
    usage(argv0, figure_flags, obs_flags, fault_flags, steal_flags, 2);
  }
  char* end = nullptr;
  const long parsed = std::strtol(value, &end, 10);
  if (end == value || *end != '\0' || parsed < 0 || parsed > 4096) {
    std::cerr << argv0 << ": --threads expects an integer in [0, 4096], got '"
              << value << "'\n";
    std::exit(2);
  }
  return static_cast<int>(parsed);
}

/// Shared strict parser: `figure_flags` enables --csv/--with-16h,
/// `obs_flags` the shared observability flags, `fault_flags` the --fault-*
/// family (parsed either way so unsupporting benches reject them with a
/// targeted message rather than "unknown option").
FigureOptions parse_options(int argc, char** argv, bool figure_flags,
                            bool obs_flags, bool fault_flags,
                            bool steal_flags) {
  FigureOptions options;
  bool faults_seen = false;
  bool steal_seen = false;
  for (int i = 1; i < argc; ++i) {
    std::string obs_error;
    if (obs_flags &&
        obs::parse_cli_flag(argc, argv, i, options.obs, obs_error)) {
      if (!obs_error.empty()) {
        std::cerr << argv[0] << ": " << obs_error << "\n";
        std::exit(2);
      }
      continue;
    }
    std::string fault_error;
    if (fault::parse_cli_flag(argc, argv, i, options.faults, faults_seen,
                              fault_error)) {
      if (!fault_error.empty()) {
        std::cerr << argv[0] << ": " << fault_error << "\n";
        std::exit(2);
      }
      continue;
    }
    std::string steal_error;
    if (sched::stealing::parse_cli_flag(argc, argv, i, options.stealing,
                                        steal_seen, steal_error)) {
      if (!steal_error.empty()) {
        std::cerr << argv[0] << ": " << steal_error << "\n";
        std::exit(2);
      }
      continue;
    }
    if (figure_flags && std::strcmp(argv[i], "--csv") == 0) {
      options.csv = true;
    } else if (figure_flags && std::strcmp(argv[i], "--with-16h") == 0) {
      options.with_16h = true;
    } else if (figure_flags && std::strcmp(argv[i], "--quick") == 0) {
      options.quick = true;
      options.partition_sizes = {1, 4, 16};
    } else if (std::strcmp(argv[i], "--threads") == 0) {
      options.threads = parse_thread_value(
          argv[0], figure_flags, obs_flags, fault_flags, steal_flags,
          i + 1 < argc ? argv[i + 1] : nullptr);
      ++i;
    } else if (std::strcmp(argv[i], "--help") == 0 ||
               std::strcmp(argv[i], "-h") == 0) {
      usage(argv[0], figure_flags, obs_flags, fault_flags, steal_flags, 0);
    } else {
      std::cerr << argv[0] << ": unknown option '" << argv[i] << "'\n";
      usage(argv[0], figure_flags, obs_flags, fault_flags, steal_flags, 2);
    }
  }
  if (!options.obs.slo.empty()) {
    std::cerr << argv[0] << ": --slo only applies to the serving harness "
                            "(serve_sustained)\n";
    std::exit(2);
  }
  if (faults_seen && !fault_flags) {
    std::cerr << argv[0] << ": fault-injection flags only apply to benches "
                            "wired for them (fig3-6, a2, a8, a10, a12_faults, "
                            "serve_sustained)\n";
    std::exit(2);
  }
  if (steal_seen && !steal_flags) {
    std::cerr << argv[0] << ": work-stealing flags only apply to benches "
                            "wired for the stealing architecture "
                            "(fig7_matmul_stealing, a13_stealing, "
                            "serve_sustained)\n";
    std::exit(2);
  }
  return options;
}

constexpr net::TopologyKind kAllTopologies[] = {
    net::TopologyKind::kLinear, net::TopologyKind::kRing,
    net::TopologyKind::kMesh, net::TopologyKind::kHypercube};

}  // namespace

FigureOptions parse_figure_options(int argc, char** argv, bool steal_flags) {
  return parse_options(argc, argv, /*figure_flags=*/true, /*obs_flags=*/true,
                       /*fault_flags=*/true, steal_flags);
}

int parse_threads_only(int argc, char** argv) {
  return parse_options(argc, argv, /*figure_flags=*/false, /*obs_flags=*/false,
                       /*fault_flags=*/false, /*steal_flags=*/false)
      .threads;
}

AblationOptions parse_ablation_options(int argc, char** argv, bool fault_flags,
                                       bool steal_flags) {
  const FigureOptions parsed =
      parse_options(argc, argv, /*figure_flags=*/false, /*obs_flags=*/true,
                    fault_flags, steal_flags);
  return AblationOptions{parsed.threads, parsed.obs, parsed.faults,
                         parsed.stealing};
}

std::vector<FigureRow> run_figure_sweep(workload::App app,
                                        sched::SoftwareArch arch,
                                        const FigureOptions& options,
                                        std::ostream& progress,
                                        ObsSession* obs) {
  struct Point {
    int partition;
    net::TopologyKind topology;
  };
  std::vector<Point> points;
  for (const int p : options.partition_sizes) {
    for (const auto topology : kAllTopologies) {
      if (p == 16 && topology == net::TopologyKind::kHypercube &&
          !options.with_16h) {
        continue;
      }
      // With one processor per partition there are no links; the topology
      // letter is meaningless, so emit a single "1" row.
      if (p == 1 && topology != net::TopologyKind::kLinear) continue;
      points.push_back({p, topology});
    }
  }

  // Quick mode shrinks the batch and the per-job problem, keeping the
  // figure's qualitative shape while cutting the run to a few percent.
  const auto apply_quick = [&](core::ExperimentConfig& config) {
    if (!options.quick) return;
    config.batch.small_count = 3;
    config.batch.large_count = 1;
    if (app == workload::App::kMatMul) {
      config.batch.small_size = 30;
      config.batch.large_size = 60;
    } else {
      config.batch.small_size = 3000;
      config.batch.large_size = 7000;
    }
  };

  core::SweepRunner runner(options.threads);
  std::size_t dots = 0;
  auto rows = runner.map(
      points.size(),
      [&](std::size_t i) {
        const auto [p, topology] = points[i];
        FigureRow row;
        row.label =
            p == 1 ? "1" : std::to_string(p) + net::topology_letter(topology);

        auto static_config = core::figure_point(
            app, arch, sched::PolicyKind::kStatic, p, topology);
        apply_quick(static_config);
        static_config.machine.faults = options.faults;
        static_config.machine.stealing = options.stealing;
        // Representative run for --metrics/--timeline: the last sweep point
        // (largest partition, last topology) -- p=1 machines have no links,
        // so the first point would leave the link instruments empty.
        if (obs != nullptr) {
          obs->attach(static_config.machine, i + 1 == points.size());
        }
        const auto static_result = core::run_experiment(static_config);
        row.static_mrt = static_result.mean_response_s;
        row.static_best = static_result.primary.mean_response_s();
        row.static_worst = static_result.worst->mean_response_s();

        // The paper's "TS" line: pure time-sharing at p=16, hybrid below.
        const auto ts_policy = p == 16 ? sched::PolicyKind::kTimeSharing
                                       : sched::PolicyKind::kHybrid;
        auto ts_config = core::figure_point(app, arch, ts_policy, p, topology);
        apply_quick(ts_config);
        ts_config.machine.faults = options.faults;
        ts_config.machine.stealing = options.stealing;
        const auto ts_result = core::run_experiment(ts_config);
        row.ts_mrt = ts_result.mean_response_s;
        return row;
      },
      [&](std::size_t done, std::size_t) {
        for (; dots < done; ++dots) progress << "." << std::flush;
      });
  progress << "\n";
  return rows;
}

void print_figure(std::ostream& os, const std::string& title,
                  const std::vector<FigureRow>& rows, bool csv) {
  core::banner(os, title);
  core::Table table({"config", "static MRT (s)", "TS/hybrid MRT (s)",
                     "TS/static", "static best (s)", "static worst (s)"});
  for (const auto& row : rows) {
    table.add_row({row.label, core::fmt_seconds(row.static_mrt),
                   core::fmt_seconds(row.ts_mrt),
                   core::fmt_ratio(row.ts_mrt / row.static_mrt),
                   core::fmt_seconds(row.static_best),
                   core::fmt_seconds(row.static_worst)});
  }
  table.print(os);
  if (csv) {
    os << "\n";
    table.csv(os);
  }
}

}  // namespace tmc::bench
