#include "figure_common.h"

#include <cstring>
#include <iostream>

#include "core/report.h"

namespace tmc::bench {

FigureOptions parse_figure_options(int argc, char** argv) {
  FigureOptions options;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--csv") == 0) options.csv = true;
    if (std::strcmp(argv[i], "--with-16h") == 0) options.with_16h = true;
  }
  return options;
}

namespace {

constexpr net::TopologyKind kAllTopologies[] = {
    net::TopologyKind::kLinear, net::TopologyKind::kRing,
    net::TopologyKind::kMesh, net::TopologyKind::kHypercube};

}  // namespace

std::vector<FigureRow> run_figure_sweep(workload::App app,
                                        sched::SoftwareArch arch,
                                        const FigureOptions& options,
                                        std::ostream& progress) {
  std::vector<FigureRow> rows;
  for (const int p : options.partition_sizes) {
    for (const auto topology : kAllTopologies) {
      if (p == 16 && topology == net::TopologyKind::kHypercube &&
          !options.with_16h) {
        continue;
      }
      // With one processor per partition there are no links; the topology
      // letter is meaningless, so emit a single "1" row.
      if (p == 1 && topology != net::TopologyKind::kLinear) continue;

      FigureRow row;
      row.label = p == 1 ? "1" : std::to_string(p) + net::topology_letter(topology);

      const auto static_result = core::run_experiment(core::figure_point(
          app, arch, sched::PolicyKind::kStatic, p, topology));
      row.static_mrt = static_result.mean_response_s;
      row.static_best = static_result.primary.mean_response_s();
      row.static_worst = static_result.worst->mean_response_s();

      // The paper's "TS" line: pure time-sharing at p=16, hybrid below.
      const auto ts_policy = p == 16 ? sched::PolicyKind::kTimeSharing
                                     : sched::PolicyKind::kHybrid;
      const auto ts_result = core::run_experiment(
          core::figure_point(app, arch, ts_policy, p, topology));
      row.ts_mrt = ts_result.mean_response_s;

      progress << "." << std::flush;
      rows.push_back(row);
    }
  }
  progress << "\n";
  return rows;
}

void print_figure(std::ostream& os, const std::string& title,
                  const std::vector<FigureRow>& rows, bool csv) {
  core::banner(os, title);
  core::Table table({"config", "static MRT (s)", "TS/hybrid MRT (s)",
                     "TS/static", "static best (s)", "static worst (s)"});
  for (const auto& row : rows) {
    table.add_row({row.label, core::fmt_seconds(row.static_mrt),
                   core::fmt_seconds(row.ts_mrt),
                   core::fmt_ratio(row.ts_mrt / row.static_mrt),
                   core::fmt_seconds(row.static_best),
                   core::fmt_seconds(row.static_worst)});
  }
  table.print(os);
  if (csv) {
    os << "\n";
    table.csv(os);
  }
}

}  // namespace tmc::bench
