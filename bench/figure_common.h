// tmcsim -- shared driver for the paper's figure benches.
//
// Each of figures 3-6 plots mean response time against partition size
// (1, 2, 4, 8, 16) with the per-partition topology letter (L/R/M/H), one
// line for the static policy and one for time-sharing (the pure TS policy
// at partition size 16; the hybrid policy below it -- paper section 5.2).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "core/experiment.h"

namespace tmc::bench {

struct FigureOptions {
  /// The real machine could not wire a 16-node hypercube (one Transputer
  /// serves the host link); follow the paper and skip 16H by default.
  bool with_16h = false;
  /// Also emit CSV after the table.
  bool csv = false;
  /// Worker threads for the sweep (0 = hardware thread count). The table is
  /// bit-identical at any thread count; only wall-clock changes.
  int threads = 1;
  /// Partition sizes to sweep.
  std::vector<int> partition_sizes{1, 2, 4, 8, 16};
};

/// Parses --csv / --with-16h / --threads N (used by every figure bench
/// binary). Unknown flags or bad values print a usage message and exit
/// with code 2; --help exits 0.
[[nodiscard]] FigureOptions parse_figure_options(int argc, char** argv);

/// Parser for the ablation benches, which take only --threads N (same
/// validation and exit conventions as parse_figure_options).
[[nodiscard]] int parse_threads_only(int argc, char** argv);

struct FigureRow {
  std::string label;        // e.g. "8L"
  double static_mrt = 0.0;  // seconds
  double ts_mrt = 0.0;      // hybrid below p=16, pure TS at p=16
  double static_best = 0.0;
  double static_worst = 0.0;
};

/// Runs the full sweep for one application/architecture combination,
/// farming the independent figure points across options.threads.
[[nodiscard]] std::vector<FigureRow> run_figure_sweep(
    workload::App app, sched::SoftwareArch arch, const FigureOptions& options,
    std::ostream& progress);

/// Prints the sweep in the paper's row layout.
void print_figure(std::ostream& os, const std::string& title,
                  const std::vector<FigureRow>& rows, bool csv);

}  // namespace tmc::bench
