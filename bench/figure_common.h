// tmcsim -- shared driver for the paper's figure benches.
//
// Each of figures 3-6 plots mean response time against partition size
// (1, 2, 4, 8, 16) with the per-partition topology letter (L/R/M/H), one
// line for the static policy and one for time-sharing (the pure TS policy
// at partition size 16; the hybrid policy below it -- paper section 5.2).
#pragma once

#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "core/experiment.h"
#include "fault/fault.h"
#include "obs/hub.h"
#include "sched/stealing/stealing.h"

namespace tmc::bench {

struct FigureOptions {
  /// The real machine could not wire a 16-node hypercube (one Transputer
  /// serves the host link); follow the paper and skip 16H by default.
  bool with_16h = false;
  /// Also emit CSV after the table.
  bool csv = false;
  /// Reduced problem: smaller batch (3+1 jobs), smaller job sizes, and the
  /// {1, 4, 16} partition column only. The shape conclusions survive; the
  /// golden-figure ctest rows use this to cover fig3-6 cheaply.
  bool quick = false;
  /// Worker threads for the sweep (0 = hardware thread count). The table is
  /// bit-identical at any thread count; only wall-clock changes.
  int threads = 1;
  /// Partition sizes to sweep.
  std::vector<int> partition_sizes{1, 2, 4, 8, 16};
  /// Shared observability flags (--metrics / --timeline / --sample-interval).
  obs::Options obs;
  /// Fault-injection knobs (--fault-rate etc.; all zero = reliable machine,
  /// byte-identical to a run without the flags).
  fault::FaultConfig faults{};
  /// Work-stealing knobs (--steal-rate etc.; rate zero = no engine, the
  /// kStealing fallback scripts reproduce the fixed goldens byte for byte).
  sched::stealing::StealParams stealing{};
};

/// Parses --csv / --with-16h / --quick / --threads N plus the shared
/// observability flags (used by every figure bench binary). Unknown flags or
/// bad values print a usage message and exit with code 2; --help exits 0.
/// `steal_flags` admits the --steal-* family; benches that leave it false
/// reject those flags with a targeted diagnostic (mirrors --fault-*).
[[nodiscard]] FigureOptions parse_figure_options(int argc, char** argv,
                                                 bool steal_flags = false);

/// Parser for the ablation benches, which take only --threads N (same
/// validation and exit conventions as parse_figure_options).
[[nodiscard]] int parse_threads_only(int argc, char** argv);

/// Options for the observability-enabled ablation benches (a2, a8, a10):
/// --threads N plus the shared observability flags.
struct AblationOptions {
  int threads = 1;
  obs::Options obs;
  fault::FaultConfig faults{};
  sched::stealing::StealParams stealing{};
};
/// `fault_flags` admits the --fault-* family and `steal_flags` the
/// --steal-* family; benches that leave one false reject its flags with a
/// targeted diagnostic (exit 2), matching --slo.
[[nodiscard]] AblationOptions parse_ablation_options(int argc, char** argv,
                                                     bool fault_flags = false,
                                                     bool steal_flags = false);

/// Owns the optional hub for one bench invocation. A sweep runs many
/// simulations (often in parallel); exactly one -- the representative point
/// the caller designates -- is observed, because the hub's instruments are
/// single-threaded.
class ObsSession {
 public:
  explicit ObsSession(const obs::Options& options) {
    if (options.any()) hub_.emplace(options);
  }

  /// Attaches the hub to `machine` when this is the representative run and
  /// observability was requested; a no-op otherwise.
  void attach(core::MachineConfig& machine, bool representative) {
    if (hub_ && representative) machine.obs = &*hub_;
  }

  /// Writes the requested outputs. Returns the process exit code to use
  /// (1 if an output file could not be written, else 0).
  [[nodiscard]] int flush(std::ostream& diag) {
    return hub_ && !hub_->write_outputs(diag) ? 1 : 0;
  }

 private:
  std::optional<obs::Hub> hub_;
};

struct FigureRow {
  std::string label;        // e.g. "8L"
  double static_mrt = 0.0;  // seconds
  double ts_mrt = 0.0;      // hybrid below p=16, pure TS at p=16
  double static_best = 0.0;
  double static_worst = 0.0;
};

/// Runs the full sweep for one application/architecture combination,
/// farming the independent figure points across options.threads. When `obs`
/// is given, the first sweep point's static primary-order run is observed.
[[nodiscard]] std::vector<FigureRow> run_figure_sweep(
    workload::App app, sched::SoftwareArch arch, const FigureOptions& options,
    std::ostream& progress, ObsSession* obs = nullptr);

/// Prints the sweep in the paper's row layout.
void print_figure(std::ostream& os, const std::string& title,
                  const std::vector<FigureRow>& rows, bool csv);

}  // namespace tmc::bench
