// Simulator-kernel microbenchmarks (google-benchmark).
//
// These measure the engine itself -- event queue throughput, allocator
// costs, routing-table construction, RNG, and a full miniature batch -- so
// regressions in simulator performance are visible independently of the
// modelled results.
#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "core/experiment.h"
#include "mem/mmu.h"
#include "net/network.h"
#include "net/routing.h"
#include "obs/job_trace.h"
#include "obs/metrics.h"
#include "sim/rng.h"
#include "sim/simulation.h"

namespace {

using namespace tmc;

void BM_EventQueueScheduleAndPop(benchmark::State& state) {
  const auto batch = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::EventQueue queue;
    for (int i = 0; i < batch; ++i) {
      queue.schedule(sim::SimTime::nanoseconds((i * 7919) % 1000), [] {});
    }
    while (!queue.empty()) {
      benchmark::DoNotOptimize(queue.pop());
    }
  }
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_EventQueueScheduleAndPop)->Arg(256)->Arg(4096);

void BM_EventQueueScheduleAndCancel(benchmark::State& state) {
  const auto batch = static_cast<int>(state.range(0));
  std::vector<sim::EventId> ids(static_cast<std::size_t>(batch));
  for (auto _ : state) {
    sim::EventQueue queue;
    for (int i = 0; i < batch; ++i) {
      ids[static_cast<std::size_t>(i)] =
          queue.schedule(sim::SimTime::nanoseconds((i * 7919) % 1000), [] {});
    }
    // Cancel in reverse so the free list exercises slot reuse patterns.
    for (int i = batch; i-- > 0;) {
      benchmark::DoNotOptimize(queue.cancel(ids[static_cast<std::size_t>(i)]));
    }
  }
  state.SetItemsProcessed(state.iterations() * batch * 2);
}
BENCHMARK(BM_EventQueueScheduleAndCancel)->Arg(256)->Arg(4096);

void BM_EventQueueHoldModel(benchmark::State& state) {
  // The classic "hold" workload: a full queue in steady state, each pop
  // immediately rescheduled at a later pseudo-random time. This is the
  // shape of a running simulation (timers, link frees, quantum expiries).
  const auto population = static_cast<int>(state.range(0));
  sim::EventQueue queue;
  for (int i = 0; i < population; ++i) {
    queue.schedule(sim::SimTime::nanoseconds((i * 7919) % 4096), [] {});
  }
  std::uint64_t hash = 12345;
  for (auto _ : state) {
    auto fired = queue.pop();
    hash = hash * 6364136223846793005ULL + 1442695040888963407ULL;
    const auto delay = static_cast<std::int64_t>(hash >> 52) + 1;
    queue.schedule(fired.time + sim::SimTime::nanoseconds(delay),
                   std::move(fired.callback));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EventQueueHoldModel)->Arg(64)->Arg(1024)->Arg(16384);

void BM_SimulationEventChain(benchmark::State& state) {
  const auto depth = static_cast<std::uint64_t>(state.range(0));
  for (auto _ : state) {
    sim::Simulation sim;
    std::uint64_t remaining = depth;
    sim::UniqueFunction<void()> step;
    std::function<void()> chain = [&] {
      if (--remaining > 0) {
        sim.schedule(sim::SimTime::nanoseconds(1), [&] { chain(); });
      }
    };
    sim.schedule(sim::SimTime::nanoseconds(1), [&] { chain(); });
    sim.run();
    benchmark::DoNotOptimize(sim.now());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(depth));
}
BENCHMARK(BM_SimulationEventChain)->Arg(10000);

void BM_SimulationEventChainNullObs(benchmark::State& state) {
  // The event chain above with the observability hooks a fully instrumented
  // component pays when NO hub is attached: null-handle counter bumps plus
  // the schedulers' job-tracer pointer guard, each a single predictable
  // branch. Three bumps and one tracer check per event bounds the real
  // density -- the wiring feeds gauges/distributions through end-of-run
  // probes and the sampler, so hot event paths only ever carry bump-style
  // counter hooks (net.parks, mem.alloc_waits), at most one each, and the
  // per-job lifecycle sites (admit, gang turn, completion) are one
  // `if (job_tracer_)` apiece. perf_gate.py pairs this against
  // BM_SimulationEventChain (--pair, 3% tolerance) so "zero overhead when
  // disabled" stays an enforced property, not a slogan.
  const auto depth = static_cast<std::uint64_t>(state.range(0));
  // volatile loads keep the handles opaque: the compiler must emit the
  // null checks instead of folding the whole hook away, which is exactly
  // the code a disabled instrumented component executes.
  static obs::Counter* volatile null_counter = nullptr;
  static obs::JobTracer* volatile null_tracer = nullptr;
  obs::Counter* parks = null_counter;
  obs::Counter* waits = null_counter;
  obs::Counter* switches = null_counter;
  obs::JobTracer* tracer = null_tracer;
  for (auto _ : state) {
    sim::Simulation sim;
    std::uint64_t remaining = depth;
    std::function<void()> chain = [&] {
      obs::bump(parks);
      obs::bump(waits);
      obs::bump(switches);
      if (tracer != nullptr) tracer->run_begin(remaining, sim.now());
      if (--remaining > 0) {
        sim.schedule(sim::SimTime::nanoseconds(1), [&] { chain(); });
      }
    };
    sim.schedule(sim::SimTime::nanoseconds(1), [&] { chain(); });
    sim.run();
    benchmark::DoNotOptimize(sim.now());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(depth));
}
BENCHMARK(BM_SimulationEventChainNullObs)->Arg(10000);

void BM_SimulationEventChainNullFault(benchmark::State& state) {
  // The event chain with the fault-plane hooks a reliable machine pays:
  // every hot path the fault subsystem touches (message injection, link
  // traversal, delivery liveness) guards on one FaultPlane pointer that is
  // null when FaultConfig::enabled() is false, so the disabled cost is
  // three predictable not-taken branches per event -- the densest any real
  // event gets. perf_gate.py pairs this against BM_SimulationEventChain
  // (--pair, 3% tolerance) so fault injection stays free when off.
  const auto depth = static_cast<std::uint64_t>(state.range(0));
  // volatile load keeps the handle opaque: the compiler must emit the null
  // checks instead of folding them away, exactly like a component whose
  // fault_ member was never set.
  static net::FaultPlane* volatile null_fault = nullptr;
  net::FaultPlane* fault = null_fault;
  std::uint64_t guards = 0;
  for (auto _ : state) {
    sim::Simulation sim;
    std::uint64_t remaining = depth;
    std::function<void()> chain = [&] {
      if (fault != nullptr && !fault->node_alive(0)) ++guards;    // injection
      if (fault != nullptr && !fault->link_usable(0)) ++guards;   // traversal
      if (fault != nullptr && !fault->node_alive(1)) ++guards;    // delivery
      if (--remaining > 0) {
        sim.schedule(sim::SimTime::nanoseconds(1), [&] { chain(); });
      }
    };
    sim.schedule(sim::SimTime::nanoseconds(1), [&] { chain(); });
    sim.run();
    benchmark::DoNotOptimize(sim.now());
    benchmark::DoNotOptimize(guards);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(depth));
}
BENCHMARK(BM_SimulationEventChainNullFault)->Arg(10000);

void BM_UniqueFunctionInlineRoundTrip(benchmark::State& state) {
  // A 32-byte capture fits the small-buffer storage: construct, move (the
  // schedule/pop path), call, destroy -- no allocation anywhere.
  struct Payload {
    std::uint64_t a = 1, b = 2, c = 3, d = 4;
  } payload;
  static_assert(
      sim::UniqueFunction<std::uint64_t()>::stores_inline<Payload>());
  for (auto _ : state) {
    sim::UniqueFunction<std::uint64_t()> fn = [payload] {
      return payload.a + payload.d;
    };
    sim::UniqueFunction<std::uint64_t()> moved = std::move(fn);
    benchmark::DoNotOptimize(moved());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_UniqueFunctionInlineRoundTrip);

void BM_UniqueFunctionHeapRoundTrip(benchmark::State& state) {
  // The same round trip with a capture past kInlineSize: falls back to one
  // heap block. The gap between this and the inline case is what the SBO
  // saves per event.
  struct BigPayload {
    std::uint64_t words[9] = {1, 2, 3, 4, 5, 6, 7, 8, 9};
  } payload;
  for (auto _ : state) {
    sim::UniqueFunction<std::uint64_t()> fn = [payload] {
      return payload.words[0] + payload.words[8];
    };
    sim::UniqueFunction<std::uint64_t()> moved = std::move(fn);
    benchmark::DoNotOptimize(moved());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_UniqueFunctionHeapRoundTrip);

void BM_MmuAllocFree(benchmark::State& state) {
  sim::Simulation sim;
  mem::Mmu mmu(sim, 4 << 20);
  for (auto _ : state) {
    auto a = mmu.try_alloc(4096);
    auto b = mmu.try_alloc(512);
    auto c = mmu.try_alloc(65536);
    benchmark::DoNotOptimize(c);
  }
  state.SetItemsProcessed(state.iterations() * 3);
}
BENCHMARK(BM_MmuAllocFree);

void BM_MmuFragmentedAlloc(benchmark::State& state) {
  sim::Simulation sim;
  mem::Mmu mmu(sim, 4 << 20);
  // Build a fragmented free list: allocate many, free every other one.
  std::vector<mem::Block> held;
  std::vector<mem::Block> pinned;
  for (int i = 0; i < 256; ++i) {
    auto block = mmu.try_alloc(8192);
    if (!block) break;
    (i % 2 == 0 ? held : pinned).push_back(std::move(*block));
  }
  held.clear();  // punch holes
  for (auto _ : state) {
    auto block = mmu.try_alloc(8192);
    benchmark::DoNotOptimize(block);
  }
}
BENCHMARK(BM_MmuFragmentedAlloc);

void BM_RoutingTableConstruction(benchmark::State& state) {
  const auto topo = net::Topology::hypercube(16);
  for (auto _ : state) {
    net::RoutingTable table(topo);
    benchmark::DoNotOptimize(table.distance(0, 15));
  }
}
BENCHMARK(BM_RoutingTableConstruction);

void BM_RngNext(benchmark::State& state) {
  sim::Rng rng(42);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.next());
  }
}
BENCHMARK(BM_RngNext);

void BM_RngHyperexponential(benchmark::State& state) {
  sim::Rng rng(42);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.hyperexponential(1.0, 4.0));
  }
}
BENCHMARK(BM_RngHyperexponential);

void BM_TinyBatchEndToEnd(benchmark::State& state) {
  auto config = core::figure_point(
      workload::App::kMatMul, sched::SoftwareArch::kAdaptive,
      sched::PolicyKind::kHybrid, 4, net::TopologyKind::kMesh);
  config.batch.small_size = 12;
  config.batch.large_size = 20;
  for (auto _ : state) {
    const auto run =
        core::run_batch(config, workload::BatchOrder::kInterleaved);
    benchmark::DoNotOptimize(run.mean_response_s());
  }
}
BENCHMARK(BM_TinyBatchEndToEnd)->Unit(benchmark::kMillisecond);

void BM_FullFigurePoint(benchmark::State& state) {
  // One full-size figure point (the unit of work behind figures 3-6).
  const auto config = core::figure_point(
      workload::App::kMatMul, sched::SoftwareArch::kAdaptive,
      sched::PolicyKind::kHybrid, 4, net::TopologyKind::kMesh);
  for (auto _ : state) {
    const auto run =
        core::run_batch(config, workload::BatchOrder::kInterleaved);
    benchmark::DoNotOptimize(run.mean_response_s());
  }
}
BENCHMARK(BM_FullFigurePoint)->Unit(benchmark::kMillisecond);

void BM_SimulationEventChainNullSteal(benchmark::State& state) {
  // The event chain with the steal hook a non-stealing machine pays:
  // CommSystem::finish_delivery guards on one std::function that is empty
  // when no stealing engine was built, so the disabled cost is a single
  // predictable not-taken branch per delivery. perf_gate.py pairs this
  // against BM_SimulationEventChain (--pair, 3% tolerance) so the stealing
  // subsystem stays free for every fixed/adaptive run.
  const auto depth = static_cast<std::uint64_t>(state.range(0));
  // volatile flag keeps the emptiness opaque: the compiler must emit the
  // check instead of folding the hook away, exactly like a CommSystem
  // whose set_steal_hook was never called.
  static volatile bool hook_installed = false;
  std::function<bool(int)> hook;
  if (hook_installed) hook = [](int) { return false; };
  std::uint64_t consumed = 0;
  for (auto _ : state) {
    sim::Simulation sim;
    std::uint64_t remaining = depth;
    std::function<void()> chain = [&] {
      if (hook != nullptr && hook(static_cast<int>(remaining))) ++consumed;
      if (--remaining > 0) {
        sim.schedule(sim::SimTime::nanoseconds(1), [&] { chain(); });
      }
    };
    sim.schedule(sim::SimTime::nanoseconds(1), [&] { chain(); });
    sim.run();
    benchmark::DoNotOptimize(sim.now());
    benchmark::DoNotOptimize(consumed);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(depth));
}
BENCHMARK(BM_SimulationEventChainNullSteal)->Arg(10000);

void BM_StealProtocol(benchmark::State& state) {
  // The full steal protocol under load: a skewed sort batch on an 8-node
  // mesh where the thieves do real work -- request, grant, migration
  // payload and result return all traverse the simulated network. Items
  // are steal requests resolved per second of wall clock, the throughput
  // of the protocol machinery itself (deque ops, victim selection, flow
  // bookkeeping, reply injection).
  auto config = core::figure_point(
      workload::App::kSort, sched::SoftwareArch::kStealing,
      sched::PolicyKind::kStatic, 8, net::TopologyKind::kMesh);
  config.batch.small_size = 256;
  config.batch.large_size = 512;
  config.batch.sort_skew = 0.3;
  config.machine.stealing.steal_rate = 10'000.0;
  std::uint64_t requests = 0;
  for (auto _ : state) {
    const auto run =
        core::run_batch(config, workload::BatchOrder::kInterleaved);
    requests += run.machine.steals.requests;
    benchmark::DoNotOptimize(run.mean_response_s());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(requests));
}
BENCHMARK(BM_StealProtocol)->Unit(benchmark::kMillisecond);

}  // namespace
