// Wormhole-engine microbenchmarks (google-benchmark).
//
// The wormhole transport sits on the event hot path of every
// communication-heavy experiment (bench A2 and the paper's section-5.2
// projection). These benches measure it in isolation -- raw send->deliver
// throughput on the paper's topologies -- and end-to-end as the full A2
// wormhole figure point, reporting simulator events per second so the CI
// perf gate can compare runs against BENCH_kernel.json.
#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "core/experiment.h"
#include "mem/mmu.h"
#include "net/network.h"
#include "net/topology.h"
#include "sim/simulation.h"

namespace {

using namespace tmc;

/// A tiny harness: one simulation, one wormhole network over `topo`, ample
/// memory everywhere, deliveries released on arrival.
struct WormholeRig {
  explicit WormholeRig(net::Topology t) : topo(std::move(t)) {
    params.header_bytes = 16;
    for (int i = 0; i < topo.node_count(); ++i) {
      mmus.push_back(std::make_unique<mem::Mmu>(sim, 64 << 20));
      mmu_ptrs.push_back(mmus.back().get());
    }
    net = std::make_unique<net::WormholeNetwork>(sim, topo, mmu_ptrs, params);
    net->set_delivery_handler(
        [](const net::Message&, mem::Block buffer) { buffer.release(); });
  }

  void send(net::NodeId src, net::NodeId dst, std::size_t bytes,
            std::uint64_t id) {
    net::Message msg;
    msg.id = id;
    msg.src_node = src;
    msg.dst_node = dst;
    msg.bytes = bytes;
    auto block = mmus[static_cast<std::size_t>(src)]->try_alloc(bytes);
    net->send(msg, std::move(*block));
  }

  sim::Simulation sim;
  net::Topology topo;
  net::NetworkParams params;
  std::vector<std::unique_ptr<mem::Mmu>> mmus;
  std::vector<mem::Mmu*> mmu_ptrs;
  std::unique_ptr<net::WormholeNetwork> net;
};

/// All-to-one fan-in on a 16-node topology: the matmul result-gather
/// pattern, and the worst case for path-occupancy bookkeeping.
void wormhole_fan_in(benchmark::State& state, net::Topology topo) {
  WormholeRig rig(std::move(topo));
  const int n = rig.topo.node_count();
  std::uint64_t id = 1;
  std::uint64_t messages = 0;
  for (auto _ : state) {
    for (int src = 1; src < n; ++src) {
      rig.send(src, 0, 512, id++);
    }
    rig.sim.run();
    messages += static_cast<std::uint64_t>(n - 1);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(messages));
  state.counters["events/s"] = benchmark::Counter(
      static_cast<double>(rig.sim.fired_events()),
      benchmark::Counter::kIsRate);
}

void BM_WormholeFanInRing16(benchmark::State& state) {
  wormhole_fan_in(state, net::Topology::ring(16));
}
BENCHMARK(BM_WormholeFanInRing16);

void BM_WormholeFanInMesh16(benchmark::State& state) {
  wormhole_fan_in(state, net::Topology::mesh(16));
}
BENCHMARK(BM_WormholeFanInMesh16);

void BM_WormholeFanInHypercube16(benchmark::State& state) {
  wormhole_fan_in(state, net::Topology::hypercube(16));
}
BENCHMARK(BM_WormholeFanInHypercube16);

/// One-to-all broadcast fan-out from node 0 (the matmul work-scatter).
void BM_WormholeBroadcastLinear16(benchmark::State& state) {
  WormholeRig rig(net::Topology::linear(16));
  const int n = rig.topo.node_count();
  std::uint64_t id = 1;
  std::uint64_t messages = 0;
  for (auto _ : state) {
    for (int dst = 1; dst < n; ++dst) {
      rig.send(0, dst, 2048, id++);
    }
    rig.sim.run();
    messages += static_cast<std::uint64_t>(n - 1);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(messages));
}
BENCHMARK(BM_WormholeBroadcastLinear16);

/// The full A2 wormhole figure point (matmul batch, fixed architecture,
/// pure time-sharing on one 16-node partition). Items processed = simulator
/// events fired, so items_per_second is the events/sec number tracked in
/// BENCH_kernel.json and enforced by the CI perf gate.
void a2_wormhole_point(benchmark::State& state, net::TopologyKind topology) {
  auto config =
      core::figure_point(workload::App::kMatMul, sched::SoftwareArch::kFixed,
                         sched::PolicyKind::kTimeSharing, 16, topology);
  config.machine.wormhole = true;
  std::uint64_t events = 0;
  for (auto _ : state) {
    const auto run =
        core::run_batch(config, workload::BatchOrder::kInterleaved);
    benchmark::DoNotOptimize(run.mean_response_s());
    events += run.machine.events;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(events));
}

void BM_A2WormholePointLinear(benchmark::State& state) {
  a2_wormhole_point(state, net::TopologyKind::kLinear);
}
BENCHMARK(BM_A2WormholePointLinear)->Unit(benchmark::kMillisecond);

void BM_A2WormholePointMesh(benchmark::State& state) {
  a2_wormhole_point(state, net::TopologyKind::kMesh);
}
BENCHMARK(BM_A2WormholePointMesh)->Unit(benchmark::kMillisecond);

}  // namespace
