// Sustained serving: millions of jobs through the open-arrival loop.
//
// The figure benches answer the paper's closed-batch question; this bench
// runs the production-shaped one: a long-lived multi-tenant stream --
// interactive / batch / analytics classes with exponential, heavy-tailed
// Weibull and truncated-Pareto service demands -- served for a configured
// number of jobs under each policy, with O(1)-memory streaming statistics
// (P-squared percentiles, weighted reservoirs, windowed completion rates)
// and an admission gate bounding the backlog. The table on stdout is
// deterministic (bit-identical at any --threads); wall-clock throughput
// and resident-memory checkpoints go to stderr and, with --json, into a
// Google-Benchmark-shaped report that CI gates against BENCH_serving.json.
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "core/report.h"
#include "core/serve.h"
#include "core/sweep_runner.h"
#include "figure_common.h"

namespace {

using namespace tmc;

struct ServeOptions {
  std::uint64_t jobs = 1'000'000;
  std::uint64_t warmup = 10'000;
  bool jobs_set = false;
  bool warmup_set = false;
  bool quick = false;
  double rate = 25.0;
  std::string process = "poisson";
  std::string policy = "all";
  int threads = 1;
  std::size_t backlog = 10'000;
  double window_s = 10.0;
  std::uint64_t seed = 1;
  std::string json_path;
  bool rss_check = false;
  obs::Options obs;
  fault::FaultConfig faults;
  sched::stealing::StealParams stealing;
};

[[noreturn]] void usage(int code) {
  std::ostream& os = code == 0 ? std::cout : std::cerr;
  os << "usage: serve_sustained [options]\n"
        "  --jobs N        arrivals to serve (default 1000000)\n"
        "  --warmup N      arrivals excluded from stats (default 10000,\n"
        "                  clamped to jobs/10)\n"
        "  --quick         golden-test preset: jobs 4000, warmup 400\n"
        "                  (explicit --jobs/--warmup still win)\n"
        "  --rate R        mean arrivals per simulated second (default 25)\n"
        "  --process KIND  poisson | mmpp | diurnal (default poisson)\n"
        "  --policy NAME   static | hybrid | adaptive | all (default all)\n"
        "  --threads N     farm the per-policy runs over N workers\n"
        "  --backlog N     admission backlog bound, 0 = unbounded "
        "(default 10000)\n"
        "  --window S      completion-rate window, simulated seconds "
        "(default 10)\n"
        "  --seed N        stream seed (default 1)\n"
        "  --json PATH     write a Google-Benchmark-shaped report\n"
        "  --rss-check     fail (exit 1) unless resident memory is flat\n"
        "                  from 25% of the run to the end (needs --threads 1)\n"
     << obs::cli_help() << fault::cli_help() << sched::stealing::cli_help();
  std::exit(code);
}

ServeOptions parse(int argc, char** argv) {
  ServeOptions opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&](const char* flag) -> const char* {
      if (arg != flag) return nullptr;
      if (i + 1 >= argc) {
        std::cerr << "serve_sustained: " << flag << " needs a value\n";
        usage(2);
      }
      return argv[++i];
    };
    std::string obs_error;
    if (arg == "--help" || arg == "-h") usage(0);
    if (const char* v = value("--jobs")) {
      opt.jobs = std::strtoull(v, nullptr, 10);
      opt.jobs_set = true;
    } else if (const char* v2 = value("--warmup")) {
      opt.warmup = std::strtoull(v2, nullptr, 10);
      opt.warmup_set = true;
    } else if (arg == "--quick") {
      opt.quick = true;
    } else if (const char* v3 = value("--rate")) {
      opt.rate = std::strtod(v3, nullptr);
    } else if (const char* v4 = value("--process")) {
      opt.process = v4;
    } else if (const char* v5 = value("--policy")) {
      opt.policy = v5;
    } else if (const char* v6 = value("--threads")) {
      opt.threads = std::atoi(v6);
    } else if (const char* v7 = value("--backlog")) {
      opt.backlog = std::strtoull(v7, nullptr, 10);
    } else if (const char* v8 = value("--window")) {
      opt.window_s = std::strtod(v8, nullptr);
    } else if (const char* v9 = value("--seed")) {
      opt.seed = std::strtoull(v9, nullptr, 10);
    } else if (const char* v10 = value("--json")) {
      opt.json_path = v10;
    } else if (arg == "--rss-check") {
      opt.rss_check = true;
    } else if (obs::parse_cli_flag(argc, argv, i, opt.obs, obs_error)) {
      if (!obs_error.empty()) {
        std::cerr << "serve_sustained: " << obs_error << "\n";
        usage(2);
      }
    } else if (bool seen = false; fault::parse_cli_flag(
                   argc, argv, i, opt.faults, seen, obs_error)) {
      if (!obs_error.empty()) {
        std::cerr << "serve_sustained: " << obs_error << "\n";
        usage(2);
      }
    } else if (bool sseen = false; sched::stealing::parse_cli_flag(
                   argc, argv, i, opt.stealing, sseen, obs_error)) {
      if (!obs_error.empty()) {
        std::cerr << "serve_sustained: " << obs_error << "\n";
        usage(2);
      }
    } else {
      std::cerr << "serve_sustained: unknown flag '" << arg << "'\n";
      usage(2);
    }
  }
  if (opt.quick) {
    if (!opt.jobs_set) opt.jobs = 4'000;
    if (!opt.warmup_set) opt.warmup = 400;
  }
  if (opt.jobs == 0 || opt.rate <= 0.0 || opt.window_s <= 0.0 ||
      opt.threads < 0) {
    std::cerr << "serve_sustained: invalid option value\n";
    usage(2);
  }
  opt.warmup = std::min(opt.warmup, opt.jobs / 10);
  if (opt.process != "poisson" && opt.process != "mmpp" &&
      opt.process != "diurnal") {
    std::cerr << "serve_sustained: unknown process '" << opt.process << "'\n";
    usage(2);
  }
  if (opt.policy != "static" && opt.policy != "hybrid" &&
      opt.policy != "adaptive" && opt.policy != "all") {
    std::cerr << "serve_sustained: unknown policy '" << opt.policy << "'\n";
    usage(2);
  }
  if (opt.rss_check && opt.threads != 1) {
    std::cerr << "serve_sustained: --rss-check needs --threads 1 (resident "
                 "memory is per-process)\n";
    usage(2);
  }
  return opt;
}

/// The 3-class tenant mix: latency-sensitive interactive traffic, a
/// heavy-tailed batch tier (Weibull shape < 1), and rare long analytics
/// jobs with a truncated Pareto tail.
std::vector<workload::JobClass> tenant_mix() {
  workload::JobClass interactive;
  interactive.name = "interactive";
  interactive.weight = 0.6;
  interactive.service.kind = workload::ServiceModel::Kind::kExponential;
  interactive.service.mean_s = 0.08;
  workload::JobClass batch;
  batch.name = "batch";
  batch.weight = 0.3;
  batch.service.kind = workload::ServiceModel::Kind::kWeibull;
  batch.service.mean_s = 0.5;
  batch.service.shape = 0.6;
  workload::JobClass analytics;
  analytics.name = "analytics";
  analytics.weight = 0.1;
  analytics.service.kind = workload::ServiceModel::Kind::kPareto;
  analytics.service.mean_s = 2.0;
  analytics.service.shape = 1.6;
  analytics.service.cap_s = 30.0;
  return {interactive, batch, analytics};
}

workload::ArrivalProcess make_process(const ServeOptions& opt) {
  workload::ArrivalProcess process;
  process.rate_per_s = opt.rate;
  if (opt.process == "mmpp") {
    process.kind = workload::ArrivalProcess::Kind::kMmpp;
    process.burst_rate_per_s = 2.0 * opt.rate;
    process.base_sojourn_s = 120.0;
    process.burst_sojourn_s = 20.0;
  } else if (opt.process == "diurnal") {
    process.kind = workload::ArrivalProcess::Kind::kDiurnal;
    process.period_s = 3600.0;
    process.amplitude = 0.5;
  }
  return process;
}

/// Current resident set from /proc/self/statm, in MB (0 if unreadable).
double rss_mb() {
  std::ifstream statm("/proc/self/statm");
  long total_pages = 0;
  long resident_pages = 0;
  if (!(statm >> total_pages >> resident_pages)) return 0.0;
  return static_cast<double>(resident_pages) *
         static_cast<double>(sysconf(_SC_PAGESIZE)) / 1e6;
}

struct PolicyRun {
  std::string name;
  core::ServeResult result;
  double wall_s = 0.0;
  double rss_quarter_mb = 0.0;  // resident set at 25% of completions
  double rss_end_mb = 0.0;
};

std::string fmt_count(std::uint64_t n) { return std::to_string(n); }

}  // namespace

int main(int argc, char** argv) {
  const ServeOptions opt = parse(argc, argv);
  // SLO targets must name tenant classes of the mix being served.
  for (const obs::SloTarget& target : opt.obs.slo) {
    bool known = false;
    for (const workload::JobClass& cls : tenant_mix()) {
      if (cls.name == target.job_class) {
        known = true;
        break;
      }
    }
    if (!known) {
      std::cerr << "serve_sustained: --slo names unknown class '"
                << target.job_class
                << "' (classes: interactive, batch, analytics)\n";
      usage(2);
    }
  }
  bench::ObsSession obs(opt.obs);

  struct PolicyChoice {
    const char* name;
    sched::PolicyKind kind;
  };
  std::vector<PolicyChoice> policies;
  if (opt.policy == "all" || opt.policy == "static") {
    policies.push_back({"static", sched::PolicyKind::kStatic});
  }
  if (opt.policy == "all" || opt.policy == "hybrid") {
    policies.push_back({"hybrid", sched::PolicyKind::kHybrid});
  }
  if (opt.policy == "all" || opt.policy == "adaptive") {
    policies.push_back({"adaptive", sched::PolicyKind::kAdaptiveStatic});
  }

  std::cout << "Sustained serving: " << opt.process << " arrivals at "
            << core::fmt_ratio(opt.rate) << "/s, 3-class tenant mix "
            << "(interactive/batch/analytics),\n"
            << opt.jobs << " jobs (" << opt.warmup
            << " warm-up), backlog bound " << opt.backlog << ", seed "
            << opt.seed << ", partition size 4.\n";

  core::SweepRunner runner(opt.threads);
  std::vector<PolicyRun> runs(policies.size());
  bool first = true;
  std::vector<core::ServeConfig> configs(policies.size());
  for (std::size_t i = 0; i < policies.size(); ++i) {
    core::ServeConfig& config = configs[i];
    config.machine.topology = net::TopologyKind::kMesh;
    config.machine.policy.kind = policies[i].kind;
    config.machine.policy.partition_size = 4;
    config.process = make_process(opt);
    config.classes = tenant_mix();
    if (opt.stealing.enabled()) {
      // A steal rate moves the heavy-tailed analytics stragglers -- the
      // jobs with work worth rebalancing -- onto the stealing
      // architecture; interactive/batch keep the adaptive scripts.
      for (workload::JobClass& cls : config.classes) {
        if (cls.name == "analytics") {
          cls.arch = sched::SoftwareArch::kStealing;
        }
      }
    }
    config.total_jobs = opt.jobs;
    config.warmup_jobs = opt.warmup;
    config.max_backlog = opt.backlog;
    config.window_s = opt.window_s;
    config.seed = opt.seed;
    config.slo_targets = opt.obs.slo;
    config.machine.faults = opt.faults;
    config.machine.stealing = opt.stealing;
    // RSS checkpoints: 20 per run, read by the wall-clock side only (the
    // deterministic table never sees them).
    config.checkpoint_every = std::max<std::uint64_t>(opt.jobs / 20, 1);
    obs.attach(config.machine, first);
    first = false;
  }
  const auto outcomes = runner.map(
      policies.size(), [&](std::size_t i) -> PolicyRun {
        PolicyRun run;
        run.name = policies[i].name;
        core::ServeConfig config = configs[i];
        const std::uint64_t quarter_at = config.total_jobs / 4;
        config.checkpoint = [&run,
                             quarter_at](const core::ServeCheckpoint& at) {
          const double mb = rss_mb();
          if (run.rss_quarter_mb == 0.0 && at.completed >= quarter_at) {
            run.rss_quarter_mb = mb;
          }
          run.rss_end_mb = mb;
        };
        const auto t0 = std::chrono::steady_clock::now();
        run.result = core::run_sustained(config);
        run.wall_s = std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - t0)
                         .count();
        return run;
      });
  for (std::size_t i = 0; i < outcomes.size(); ++i) runs[i] = outcomes[i];

  // --- deterministic report (stdout) ------------------------------------
  core::Table table({"policy", "class", "offered", "shed", "mrt (s)", "p50",
                     "p95", "p99", "stretch p50", "p95", "p99"});
  for (const PolicyRun& run : runs) {
    for (const auto& cls : run.result.classes) {
      table.add_row({run.name, cls.name, fmt_count(cls.offered),
                     fmt_count(cls.shed), core::fmt_seconds(cls.response_s.mean()),
                     core::fmt_seconds(cls.response_q.p50.value()),
                     core::fmt_seconds(cls.response_q.p95.value()),
                     core::fmt_seconds(cls.response_q.p99.value()),
                     core::fmt_ratio(cls.stretch_q.p50.value()),
                     core::fmt_ratio(cls.stretch_q.p95.value()),
                     core::fmt_ratio(cls.stretch_q.p99.value())});
    }
    table.add_row({run.name, "all", fmt_count(run.result.offered),
                   fmt_count(run.result.shed),
                   core::fmt_seconds(run.result.response_s.mean()),
                   core::fmt_seconds(run.result.response_q.p50.value()),
                   core::fmt_seconds(run.result.response_q.p95.value()),
                   core::fmt_seconds(run.result.response_q.p99.value()),
                   core::fmt_ratio(run.result.stretch.mean()), "-", "-"});
  }
  std::cout << "\n";
  table.print(std::cout);

  // --- per-class SLO attainment block (only when targets were given) ----
  if (!opt.obs.slo.empty()) {
    core::Table slo_table({"policy", "class", "target (s)", "objective %",
                           "attainment %", "burn", "met", "measured"});
    for (const PolicyRun& run : runs) {
      const obs::SloTracker& slo = run.result.slo;
      for (std::size_t t = 0; t < slo.size(); ++t) {
        const auto& cls = slo.classes()[t];
        slo_table.add_row(
            {run.name, cls.target.job_class,
             core::fmt_seconds(cls.target.target_s),
             core::fmt_ratio(cls.target.objective * 100.0),
             core::fmt_ratio(run.result.slo.attainment(t) * 100.0),
             core::fmt_ratio(run.result.slo.budget_burn(t)),
             fmt_count(cls.met), fmt_count(cls.completed)});
      }
    }
    std::cout << "\nSLO attainment (measured completions; burn = miss rate "
                 "over allowed miss rate):\n\n";
    slo_table.print(std::cout);
  }

  // --- fault episode block (only with fault injection on) ---------------
  if (opt.faults.enabled()) {
    core::Table fault_table({"policy", "crashes", "repairs", "mtbf (s)",
                             "mttr (s)", "retries", "msgs lost", "restarts",
                             "jobs lost"});
    for (const PolicyRun& run : runs) {
      const fault::FaultStats& f = run.result.machine.faults;
      fault_table.add_row(
          {run.name, fmt_count(f.crashes), fmt_count(f.repairs),
           core::fmt_seconds(f.mtbf_observed_s),
           core::fmt_seconds(f.mttr_observed_s), fmt_count(f.retries),
           fmt_count(f.messages_lost), fmt_count(f.job_restarts),
           fmt_count(run.result.jobs_lost)});
    }
    std::cout << "\nFault episodes (jobs lost = restart budget exhausted; "
                 "losses are excluded\nfrom the response statistics above):\n\n";
    fault_table.print(std::cout);
  }

  core::Table volume({"policy", "completed", "sim jobs/s", "peak live jobs",
                      "horizon (s)"});
  for (const PolicyRun& run : runs) {
    volume.add_row({run.name, fmt_count(run.result.completed),
                    core::fmt_ratio(run.result.window_rate.mean()),
                    fmt_count(run.result.peak_live_jobs),
                    core::fmt_seconds(run.result.horizon_s)});
  }
  std::cout << "\n";
  volume.print(std::cout);
  std::cout << "\nExpected shape: interactive p99 separates the policies "
               "(static queues whole\njobs behind heavy analytics work; "
               "time-shared and adaptive partitions let\nshort jobs through), "
               "while per-class stretch shows who pays for it.\n";

  // --- wall-clock / memory side (stderr + JSON) -------------------------
  bool rss_ok = true;
  for (const PolicyRun& run : runs) {
    const double jobs_per_s =
        run.wall_s > 0.0
            ? static_cast<double>(run.result.completed) / run.wall_s
            : 0.0;
    std::cerr << "serve_sustained/" << run.name << ": "
              << static_cast<std::uint64_t>(jobs_per_s)
              << " jobs/s wall-clock, rss " << run.rss_quarter_mb << " MB @25% -> "
              << run.rss_end_mb << " MB @end\n";
    if (opt.rss_check && run.rss_quarter_mb > 0.0) {
      // Flat = the second three-quarters of the run added at most 10% or
      // 8 MB (allocator slack), whichever is larger.
      const double allowed =
          run.rss_quarter_mb + std::max(8.0, 0.10 * run.rss_quarter_mb);
      if (run.rss_end_mb > allowed) {
        std::cerr << "serve_sustained: RSS NOT FLAT for " << run.name << " ("
                  << run.rss_quarter_mb << " MB @25% -> " << run.rss_end_mb
                  << " MB @end, allowed " << allowed << " MB)\n";
        rss_ok = false;
      }
    }
  }

  if (!opt.json_path.empty()) {
    std::ofstream json(opt.json_path);
    json << "{\n  \"benchmarks\": [\n";
    for (std::size_t i = 0; i < runs.size(); ++i) {
      const PolicyRun& run = runs[i];
      const double jobs_per_s =
          run.wall_s > 0.0
              ? static_cast<double>(run.result.completed) / run.wall_s
              : 0.0;
      json << "    {\"name\": \"serve_sustained/" << run.name << "/"
           << opt.jobs << "\", \"run_type\": \"iteration\", "
           << "\"items_per_second\": " << jobs_per_s << ", "
           << "\"jobs\": " << run.result.completed << ", "
           << "\"shed\": " << run.result.shed << ", "
           << "\"peak_live_jobs\": " << run.result.peak_live_jobs << ", "
           << "\"rss_quarter_mb\": " << run.rss_quarter_mb << ", "
           << "\"rss_end_mb\": " << run.rss_end_mb << "}"
           << (i + 1 < runs.size() ? "," : "") << "\n";
    }
    json << "  ]\n}\n";
    if (!json) {
      std::cerr << "serve_sustained: cannot write " << opt.json_path << "\n";
      return 1;
    }
    std::cerr << "wrote " << opt.json_path << "\n";
  }

  const int obs_rc = obs.flush(std::cerr);
  if (!rss_ok) return 1;
  return obs_rc;
}
