file(REMOVE_RECURSE
  "CMakeFiles/a10_open_arrivals.dir/a10_open_arrivals.cpp.o"
  "CMakeFiles/a10_open_arrivals.dir/a10_open_arrivals.cpp.o.d"
  "a10_open_arrivals"
  "a10_open_arrivals.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/a10_open_arrivals.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
