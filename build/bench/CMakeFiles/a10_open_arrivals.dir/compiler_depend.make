# Empty compiler generated dependencies file for a10_open_arrivals.
# This may be replaced when dependencies are built.
