file(REMOVE_RECURSE
  "CMakeFiles/a11_packetization.dir/a11_packetization.cpp.o"
  "CMakeFiles/a11_packetization.dir/a11_packetization.cpp.o.d"
  "a11_packetization"
  "a11_packetization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/a11_packetization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
