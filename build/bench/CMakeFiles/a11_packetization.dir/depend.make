# Empty dependencies file for a11_packetization.
# This may be replaced when dependencies are built.
