file(REMOVE_RECURSE
  "CMakeFiles/a1_variance.dir/a1_variance.cpp.o"
  "CMakeFiles/a1_variance.dir/a1_variance.cpp.o.d"
  "a1_variance"
  "a1_variance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/a1_variance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
