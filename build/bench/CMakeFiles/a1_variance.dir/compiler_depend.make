# Empty compiler generated dependencies file for a1_variance.
# This may be replaced when dependencies are built.
