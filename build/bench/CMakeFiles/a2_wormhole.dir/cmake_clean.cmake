file(REMOVE_RECURSE
  "CMakeFiles/a2_wormhole.dir/a2_wormhole.cpp.o"
  "CMakeFiles/a2_wormhole.dir/a2_wormhole.cpp.o.d"
  "a2_wormhole"
  "a2_wormhole.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/a2_wormhole.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
