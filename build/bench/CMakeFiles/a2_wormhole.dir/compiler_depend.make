# Empty compiler generated dependencies file for a2_wormhole.
# This may be replaced when dependencies are built.
