file(REMOVE_RECURSE
  "CMakeFiles/a3_setsize.dir/a3_setsize.cpp.o"
  "CMakeFiles/a3_setsize.dir/a3_setsize.cpp.o.d"
  "a3_setsize"
  "a3_setsize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/a3_setsize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
