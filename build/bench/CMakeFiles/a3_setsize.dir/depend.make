# Empty dependencies file for a3_setsize.
# This may be replaced when dependencies are built.
