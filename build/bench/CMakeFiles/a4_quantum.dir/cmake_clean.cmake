file(REMOVE_RECURSE
  "CMakeFiles/a4_quantum.dir/a4_quantum.cpp.o"
  "CMakeFiles/a4_quantum.dir/a4_quantum.cpp.o.d"
  "a4_quantum"
  "a4_quantum.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/a4_quantum.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
