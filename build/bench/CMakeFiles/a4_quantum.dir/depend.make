# Empty dependencies file for a4_quantum.
# This may be replaced when dependencies are built.
