file(REMOVE_RECURSE
  "CMakeFiles/a5_memory.dir/a5_memory.cpp.o"
  "CMakeFiles/a5_memory.dir/a5_memory.cpp.o.d"
  "a5_memory"
  "a5_memory.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/a5_memory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
