# Empty dependencies file for a5_memory.
# This may be replaced when dependencies are built.
