file(REMOVE_RECURSE
  "CMakeFiles/a6_ordering.dir/a6_ordering.cpp.o"
  "CMakeFiles/a6_ordering.dir/a6_ordering.cpp.o.d"
  "a6_ordering"
  "a6_ordering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/a6_ordering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
