# Empty compiler generated dependencies file for a6_ordering.
# This may be replaced when dependencies are built.
