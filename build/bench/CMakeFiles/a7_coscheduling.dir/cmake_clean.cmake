file(REMOVE_RECURSE
  "CMakeFiles/a7_coscheduling.dir/a7_coscheduling.cpp.o"
  "CMakeFiles/a7_coscheduling.dir/a7_coscheduling.cpp.o.d"
  "a7_coscheduling"
  "a7_coscheduling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/a7_coscheduling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
