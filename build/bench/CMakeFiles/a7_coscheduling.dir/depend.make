# Empty dependencies file for a7_coscheduling.
# This may be replaced when dependencies are built.
