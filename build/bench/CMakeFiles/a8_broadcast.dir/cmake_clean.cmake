file(REMOVE_RECURSE
  "CMakeFiles/a8_broadcast.dir/a8_broadcast.cpp.o"
  "CMakeFiles/a8_broadcast.dir/a8_broadcast.cpp.o.d"
  "a8_broadcast"
  "a8_broadcast.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/a8_broadcast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
