# Empty compiler generated dependencies file for a8_broadcast.
# This may be replaced when dependencies are built.
