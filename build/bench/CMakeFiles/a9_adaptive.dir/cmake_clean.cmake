file(REMOVE_RECURSE
  "CMakeFiles/a9_adaptive.dir/a9_adaptive.cpp.o"
  "CMakeFiles/a9_adaptive.dir/a9_adaptive.cpp.o.d"
  "a9_adaptive"
  "a9_adaptive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/a9_adaptive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
