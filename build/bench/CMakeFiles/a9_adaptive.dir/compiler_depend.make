# Empty compiler generated dependencies file for a9_adaptive.
# This may be replaced when dependencies are built.
