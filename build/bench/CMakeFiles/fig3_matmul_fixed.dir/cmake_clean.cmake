file(REMOVE_RECURSE
  "CMakeFiles/fig3_matmul_fixed.dir/fig3_matmul_fixed.cpp.o"
  "CMakeFiles/fig3_matmul_fixed.dir/fig3_matmul_fixed.cpp.o.d"
  "fig3_matmul_fixed"
  "fig3_matmul_fixed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_matmul_fixed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
