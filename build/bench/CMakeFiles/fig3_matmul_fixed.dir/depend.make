# Empty dependencies file for fig3_matmul_fixed.
# This may be replaced when dependencies are built.
