file(REMOVE_RECURSE
  "CMakeFiles/fig4_matmul_adaptive.dir/fig4_matmul_adaptive.cpp.o"
  "CMakeFiles/fig4_matmul_adaptive.dir/fig4_matmul_adaptive.cpp.o.d"
  "fig4_matmul_adaptive"
  "fig4_matmul_adaptive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_matmul_adaptive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
