# Empty dependencies file for fig4_matmul_adaptive.
# This may be replaced when dependencies are built.
