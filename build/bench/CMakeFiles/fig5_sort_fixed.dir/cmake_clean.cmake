file(REMOVE_RECURSE
  "CMakeFiles/fig5_sort_fixed.dir/fig5_sort_fixed.cpp.o"
  "CMakeFiles/fig5_sort_fixed.dir/fig5_sort_fixed.cpp.o.d"
  "fig5_sort_fixed"
  "fig5_sort_fixed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_sort_fixed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
