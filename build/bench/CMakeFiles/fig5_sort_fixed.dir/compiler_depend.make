# Empty compiler generated dependencies file for fig5_sort_fixed.
# This may be replaced when dependencies are built.
