# Empty dependencies file for fig6_sort_adaptive.
# This may be replaced when dependencies are built.
