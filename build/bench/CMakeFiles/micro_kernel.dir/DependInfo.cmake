
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/micro_kernel.cpp" "bench/CMakeFiles/micro_kernel.dir/micro_kernel.cpp.o" "gcc" "bench/CMakeFiles/micro_kernel.dir/micro_kernel.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/tmc_core.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/tmc_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/tmc_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/node/CMakeFiles/tmc_node.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/tmc_net.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/tmc_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/tmc_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
