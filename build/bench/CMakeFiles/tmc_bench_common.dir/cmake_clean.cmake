file(REMOVE_RECURSE
  "CMakeFiles/tmc_bench_common.dir/figure_common.cpp.o"
  "CMakeFiles/tmc_bench_common.dir/figure_common.cpp.o.d"
  "libtmc_bench_common.a"
  "libtmc_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tmc_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
