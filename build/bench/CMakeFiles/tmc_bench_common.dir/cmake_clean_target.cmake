file(REMOVE_RECURSE
  "libtmc_bench_common.a"
)
