# Empty dependencies file for tmc_bench_common.
# This may be replaced when dependencies are built.
