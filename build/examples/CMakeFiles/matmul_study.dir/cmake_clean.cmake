file(REMOVE_RECURSE
  "CMakeFiles/matmul_study.dir/matmul_study.cpp.o"
  "CMakeFiles/matmul_study.dir/matmul_study.cpp.o.d"
  "matmul_study"
  "matmul_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/matmul_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
