# Empty dependencies file for matmul_study.
# This may be replaced when dependencies are built.
