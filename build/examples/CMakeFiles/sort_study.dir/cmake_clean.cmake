file(REMOVE_RECURSE
  "CMakeFiles/sort_study.dir/sort_study.cpp.o"
  "CMakeFiles/sort_study.dir/sort_study.cpp.o.d"
  "sort_study"
  "sort_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sort_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
