# Empty dependencies file for sort_study.
# This may be replaced when dependencies are built.
