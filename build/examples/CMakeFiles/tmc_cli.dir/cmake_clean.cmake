file(REMOVE_RECURSE
  "CMakeFiles/tmc_cli.dir/tmc_cli.cpp.o"
  "CMakeFiles/tmc_cli.dir/tmc_cli.cpp.o.d"
  "tmc_cli"
  "tmc_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tmc_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
