# Empty dependencies file for tmc_cli.
# This may be replaced when dependencies are built.
