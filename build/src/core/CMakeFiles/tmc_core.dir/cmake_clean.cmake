file(REMOVE_RECURSE
  "CMakeFiles/tmc_core.dir/experiment.cpp.o"
  "CMakeFiles/tmc_core.dir/experiment.cpp.o.d"
  "CMakeFiles/tmc_core.dir/machine.cpp.o"
  "CMakeFiles/tmc_core.dir/machine.cpp.o.d"
  "CMakeFiles/tmc_core.dir/open_arrivals.cpp.o"
  "CMakeFiles/tmc_core.dir/open_arrivals.cpp.o.d"
  "CMakeFiles/tmc_core.dir/report.cpp.o"
  "CMakeFiles/tmc_core.dir/report.cpp.o.d"
  "libtmc_core.a"
  "libtmc_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tmc_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
