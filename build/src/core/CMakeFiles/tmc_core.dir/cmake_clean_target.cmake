file(REMOVE_RECURSE
  "libtmc_core.a"
)
