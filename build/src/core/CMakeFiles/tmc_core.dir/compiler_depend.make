# Empty compiler generated dependencies file for tmc_core.
# This may be replaced when dependencies are built.
