file(REMOVE_RECURSE
  "CMakeFiles/tmc_mem.dir/mmu.cpp.o"
  "CMakeFiles/tmc_mem.dir/mmu.cpp.o.d"
  "libtmc_mem.a"
  "libtmc_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tmc_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
