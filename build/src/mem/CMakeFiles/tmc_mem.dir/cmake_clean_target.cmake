file(REMOVE_RECURSE
  "libtmc_mem.a"
)
