# Empty compiler generated dependencies file for tmc_mem.
# This may be replaced when dependencies are built.
