file(REMOVE_RECURSE
  "CMakeFiles/tmc_net.dir/network.cpp.o"
  "CMakeFiles/tmc_net.dir/network.cpp.o.d"
  "CMakeFiles/tmc_net.dir/routing.cpp.o"
  "CMakeFiles/tmc_net.dir/routing.cpp.o.d"
  "CMakeFiles/tmc_net.dir/topology.cpp.o"
  "CMakeFiles/tmc_net.dir/topology.cpp.o.d"
  "libtmc_net.a"
  "libtmc_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tmc_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
