file(REMOVE_RECURSE
  "libtmc_net.a"
)
