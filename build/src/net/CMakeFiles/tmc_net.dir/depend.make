# Empty dependencies file for tmc_net.
# This may be replaced when dependencies are built.
