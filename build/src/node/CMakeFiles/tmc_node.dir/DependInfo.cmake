
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/node/comm.cpp" "src/node/CMakeFiles/tmc_node.dir/comm.cpp.o" "gcc" "src/node/CMakeFiles/tmc_node.dir/comm.cpp.o.d"
  "/root/repo/src/node/transputer.cpp" "src/node/CMakeFiles/tmc_node.dir/transputer.cpp.o" "gcc" "src/node/CMakeFiles/tmc_node.dir/transputer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/tmc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/tmc_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/tmc_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
