file(REMOVE_RECURSE
  "CMakeFiles/tmc_node.dir/comm.cpp.o"
  "CMakeFiles/tmc_node.dir/comm.cpp.o.d"
  "CMakeFiles/tmc_node.dir/transputer.cpp.o"
  "CMakeFiles/tmc_node.dir/transputer.cpp.o.d"
  "libtmc_node.a"
  "libtmc_node.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tmc_node.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
