file(REMOVE_RECURSE
  "libtmc_node.a"
)
