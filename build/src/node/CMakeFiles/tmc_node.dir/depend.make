# Empty dependencies file for tmc_node.
# This may be replaced when dependencies are built.
