file(REMOVE_RECURSE
  "CMakeFiles/tmc_sched.dir/adaptive_scheduler.cpp.o"
  "CMakeFiles/tmc_sched.dir/adaptive_scheduler.cpp.o.d"
  "CMakeFiles/tmc_sched.dir/buddy.cpp.o"
  "CMakeFiles/tmc_sched.dir/buddy.cpp.o.d"
  "CMakeFiles/tmc_sched.dir/partition_scheduler.cpp.o"
  "CMakeFiles/tmc_sched.dir/partition_scheduler.cpp.o.d"
  "CMakeFiles/tmc_sched.dir/super_scheduler.cpp.o"
  "CMakeFiles/tmc_sched.dir/super_scheduler.cpp.o.d"
  "libtmc_sched.a"
  "libtmc_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tmc_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
