file(REMOVE_RECURSE
  "libtmc_sched.a"
)
