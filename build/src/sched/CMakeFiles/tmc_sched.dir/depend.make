# Empty dependencies file for tmc_sched.
# This may be replaced when dependencies are built.
