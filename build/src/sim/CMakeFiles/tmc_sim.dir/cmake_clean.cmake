file(REMOVE_RECURSE
  "CMakeFiles/tmc_sim.dir/event_queue.cpp.o"
  "CMakeFiles/tmc_sim.dir/event_queue.cpp.o.d"
  "CMakeFiles/tmc_sim.dir/rng.cpp.o"
  "CMakeFiles/tmc_sim.dir/rng.cpp.o.d"
  "CMakeFiles/tmc_sim.dir/simulation.cpp.o"
  "CMakeFiles/tmc_sim.dir/simulation.cpp.o.d"
  "CMakeFiles/tmc_sim.dir/stats.cpp.o"
  "CMakeFiles/tmc_sim.dir/stats.cpp.o.d"
  "CMakeFiles/tmc_sim.dir/trace.cpp.o"
  "CMakeFiles/tmc_sim.dir/trace.cpp.o.d"
  "libtmc_sim.a"
  "libtmc_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tmc_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
