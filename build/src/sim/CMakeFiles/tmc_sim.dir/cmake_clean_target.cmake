file(REMOVE_RECURSE
  "libtmc_sim.a"
)
