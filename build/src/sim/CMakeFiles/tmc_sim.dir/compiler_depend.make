# Empty compiler generated dependencies file for tmc_sim.
# This may be replaced when dependencies are built.
