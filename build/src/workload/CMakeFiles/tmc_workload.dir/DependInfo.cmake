
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/batch.cpp" "src/workload/CMakeFiles/tmc_workload.dir/batch.cpp.o" "gcc" "src/workload/CMakeFiles/tmc_workload.dir/batch.cpp.o.d"
  "/root/repo/src/workload/matmul.cpp" "src/workload/CMakeFiles/tmc_workload.dir/matmul.cpp.o" "gcc" "src/workload/CMakeFiles/tmc_workload.dir/matmul.cpp.o.d"
  "/root/repo/src/workload/random_workload.cpp" "src/workload/CMakeFiles/tmc_workload.dir/random_workload.cpp.o" "gcc" "src/workload/CMakeFiles/tmc_workload.dir/random_workload.cpp.o.d"
  "/root/repo/src/workload/sort.cpp" "src/workload/CMakeFiles/tmc_workload.dir/sort.cpp.o" "gcc" "src/workload/CMakeFiles/tmc_workload.dir/sort.cpp.o.d"
  "/root/repo/src/workload/synthetic.cpp" "src/workload/CMakeFiles/tmc_workload.dir/synthetic.cpp.o" "gcc" "src/workload/CMakeFiles/tmc_workload.dir/synthetic.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sched/CMakeFiles/tmc_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/node/CMakeFiles/tmc_node.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/tmc_net.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/tmc_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/tmc_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
