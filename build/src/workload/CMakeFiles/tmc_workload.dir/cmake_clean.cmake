file(REMOVE_RECURSE
  "CMakeFiles/tmc_workload.dir/batch.cpp.o"
  "CMakeFiles/tmc_workload.dir/batch.cpp.o.d"
  "CMakeFiles/tmc_workload.dir/matmul.cpp.o"
  "CMakeFiles/tmc_workload.dir/matmul.cpp.o.d"
  "CMakeFiles/tmc_workload.dir/random_workload.cpp.o"
  "CMakeFiles/tmc_workload.dir/random_workload.cpp.o.d"
  "CMakeFiles/tmc_workload.dir/sort.cpp.o"
  "CMakeFiles/tmc_workload.dir/sort.cpp.o.d"
  "CMakeFiles/tmc_workload.dir/synthetic.cpp.o"
  "CMakeFiles/tmc_workload.dir/synthetic.cpp.o.d"
  "libtmc_workload.a"
  "libtmc_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tmc_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
