file(REMOVE_RECURSE
  "libtmc_workload.a"
)
