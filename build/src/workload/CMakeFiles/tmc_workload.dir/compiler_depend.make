# Empty compiler generated dependencies file for tmc_workload.
# This may be replaced when dependencies are built.
