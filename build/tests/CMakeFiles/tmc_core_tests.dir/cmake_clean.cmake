file(REMOVE_RECURSE
  "CMakeFiles/tmc_core_tests.dir/core/test_experiment.cpp.o"
  "CMakeFiles/tmc_core_tests.dir/core/test_experiment.cpp.o.d"
  "CMakeFiles/tmc_core_tests.dir/core/test_invariants.cpp.o"
  "CMakeFiles/tmc_core_tests.dir/core/test_invariants.cpp.o.d"
  "CMakeFiles/tmc_core_tests.dir/core/test_machine.cpp.o"
  "CMakeFiles/tmc_core_tests.dir/core/test_machine.cpp.o.d"
  "CMakeFiles/tmc_core_tests.dir/core/test_open_arrivals.cpp.o"
  "CMakeFiles/tmc_core_tests.dir/core/test_open_arrivals.cpp.o.d"
  "CMakeFiles/tmc_core_tests.dir/core/test_random_workloads.cpp.o"
  "CMakeFiles/tmc_core_tests.dir/core/test_random_workloads.cpp.o.d"
  "CMakeFiles/tmc_core_tests.dir/core/test_report.cpp.o"
  "CMakeFiles/tmc_core_tests.dir/core/test_report.cpp.o.d"
  "tmc_core_tests"
  "tmc_core_tests.pdb"
  "tmc_core_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tmc_core_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
