# Empty dependencies file for tmc_core_tests.
# This may be replaced when dependencies are built.
