file(REMOVE_RECURSE
  "CMakeFiles/tmc_mem_tests.dir/mem/test_mmu.cpp.o"
  "CMakeFiles/tmc_mem_tests.dir/mem/test_mmu.cpp.o.d"
  "tmc_mem_tests"
  "tmc_mem_tests.pdb"
  "tmc_mem_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tmc_mem_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
