# Empty compiler generated dependencies file for tmc_mem_tests.
# This may be replaced when dependencies are built.
