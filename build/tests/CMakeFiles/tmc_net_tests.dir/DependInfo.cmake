
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/net/test_fragmentation.cpp" "tests/CMakeFiles/tmc_net_tests.dir/net/test_fragmentation.cpp.o" "gcc" "tests/CMakeFiles/tmc_net_tests.dir/net/test_fragmentation.cpp.o.d"
  "/root/repo/tests/net/test_link.cpp" "tests/CMakeFiles/tmc_net_tests.dir/net/test_link.cpp.o" "gcc" "tests/CMakeFiles/tmc_net_tests.dir/net/test_link.cpp.o.d"
  "/root/repo/tests/net/test_network.cpp" "tests/CMakeFiles/tmc_net_tests.dir/net/test_network.cpp.o" "gcc" "tests/CMakeFiles/tmc_net_tests.dir/net/test_network.cpp.o.d"
  "/root/repo/tests/net/test_progress_gate.cpp" "tests/CMakeFiles/tmc_net_tests.dir/net/test_progress_gate.cpp.o" "gcc" "tests/CMakeFiles/tmc_net_tests.dir/net/test_progress_gate.cpp.o.d"
  "/root/repo/tests/net/test_routing.cpp" "tests/CMakeFiles/tmc_net_tests.dir/net/test_routing.cpp.o" "gcc" "tests/CMakeFiles/tmc_net_tests.dir/net/test_routing.cpp.o.d"
  "/root/repo/tests/net/test_topology.cpp" "tests/CMakeFiles/tmc_net_tests.dir/net/test_topology.cpp.o" "gcc" "tests/CMakeFiles/tmc_net_tests.dir/net/test_topology.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/tmc_core.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/tmc_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/tmc_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/node/CMakeFiles/tmc_node.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/tmc_net.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/tmc_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/tmc_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
