file(REMOVE_RECURSE
  "CMakeFiles/tmc_net_tests.dir/net/test_fragmentation.cpp.o"
  "CMakeFiles/tmc_net_tests.dir/net/test_fragmentation.cpp.o.d"
  "CMakeFiles/tmc_net_tests.dir/net/test_link.cpp.o"
  "CMakeFiles/tmc_net_tests.dir/net/test_link.cpp.o.d"
  "CMakeFiles/tmc_net_tests.dir/net/test_network.cpp.o"
  "CMakeFiles/tmc_net_tests.dir/net/test_network.cpp.o.d"
  "CMakeFiles/tmc_net_tests.dir/net/test_progress_gate.cpp.o"
  "CMakeFiles/tmc_net_tests.dir/net/test_progress_gate.cpp.o.d"
  "CMakeFiles/tmc_net_tests.dir/net/test_routing.cpp.o"
  "CMakeFiles/tmc_net_tests.dir/net/test_routing.cpp.o.d"
  "CMakeFiles/tmc_net_tests.dir/net/test_topology.cpp.o"
  "CMakeFiles/tmc_net_tests.dir/net/test_topology.cpp.o.d"
  "tmc_net_tests"
  "tmc_net_tests.pdb"
  "tmc_net_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tmc_net_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
