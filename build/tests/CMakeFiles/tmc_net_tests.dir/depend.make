# Empty dependencies file for tmc_net_tests.
# This may be replaced when dependencies are built.
