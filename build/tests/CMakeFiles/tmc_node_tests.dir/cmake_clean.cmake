file(REMOVE_RECURSE
  "CMakeFiles/tmc_node_tests.dir/node/test_comm.cpp.o"
  "CMakeFiles/tmc_node_tests.dir/node/test_comm.cpp.o.d"
  "CMakeFiles/tmc_node_tests.dir/node/test_gang.cpp.o"
  "CMakeFiles/tmc_node_tests.dir/node/test_gang.cpp.o.d"
  "CMakeFiles/tmc_node_tests.dir/node/test_mailbox.cpp.o"
  "CMakeFiles/tmc_node_tests.dir/node/test_mailbox.cpp.o.d"
  "CMakeFiles/tmc_node_tests.dir/node/test_program.cpp.o"
  "CMakeFiles/tmc_node_tests.dir/node/test_program.cpp.o.d"
  "CMakeFiles/tmc_node_tests.dir/node/test_service_domain.cpp.o"
  "CMakeFiles/tmc_node_tests.dir/node/test_service_domain.cpp.o.d"
  "CMakeFiles/tmc_node_tests.dir/node/test_transputer.cpp.o"
  "CMakeFiles/tmc_node_tests.dir/node/test_transputer.cpp.o.d"
  "tmc_node_tests"
  "tmc_node_tests.pdb"
  "tmc_node_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tmc_node_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
