# Empty compiler generated dependencies file for tmc_node_tests.
# This may be replaced when dependencies are built.
