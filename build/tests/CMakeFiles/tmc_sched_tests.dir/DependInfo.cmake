
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/sched/test_adaptive_scheduler.cpp" "tests/CMakeFiles/tmc_sched_tests.dir/sched/test_adaptive_scheduler.cpp.o" "gcc" "tests/CMakeFiles/tmc_sched_tests.dir/sched/test_adaptive_scheduler.cpp.o.d"
  "/root/repo/tests/sched/test_buddy.cpp" "tests/CMakeFiles/tmc_sched_tests.dir/sched/test_buddy.cpp.o" "gcc" "tests/CMakeFiles/tmc_sched_tests.dir/sched/test_buddy.cpp.o.d"
  "/root/repo/tests/sched/test_gang_rotation.cpp" "tests/CMakeFiles/tmc_sched_tests.dir/sched/test_gang_rotation.cpp.o" "gcc" "tests/CMakeFiles/tmc_sched_tests.dir/sched/test_gang_rotation.cpp.o.d"
  "/root/repo/tests/sched/test_partition.cpp" "tests/CMakeFiles/tmc_sched_tests.dir/sched/test_partition.cpp.o" "gcc" "tests/CMakeFiles/tmc_sched_tests.dir/sched/test_partition.cpp.o.d"
  "/root/repo/tests/sched/test_partition_scheduler.cpp" "tests/CMakeFiles/tmc_sched_tests.dir/sched/test_partition_scheduler.cpp.o" "gcc" "tests/CMakeFiles/tmc_sched_tests.dir/sched/test_partition_scheduler.cpp.o.d"
  "/root/repo/tests/sched/test_policy.cpp" "tests/CMakeFiles/tmc_sched_tests.dir/sched/test_policy.cpp.o" "gcc" "tests/CMakeFiles/tmc_sched_tests.dir/sched/test_policy.cpp.o.d"
  "/root/repo/tests/sched/test_super_scheduler.cpp" "tests/CMakeFiles/tmc_sched_tests.dir/sched/test_super_scheduler.cpp.o" "gcc" "tests/CMakeFiles/tmc_sched_tests.dir/sched/test_super_scheduler.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/tmc_core.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/tmc_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/tmc_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/node/CMakeFiles/tmc_node.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/tmc_net.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/tmc_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/tmc_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
