file(REMOVE_RECURSE
  "CMakeFiles/tmc_sched_tests.dir/sched/test_adaptive_scheduler.cpp.o"
  "CMakeFiles/tmc_sched_tests.dir/sched/test_adaptive_scheduler.cpp.o.d"
  "CMakeFiles/tmc_sched_tests.dir/sched/test_buddy.cpp.o"
  "CMakeFiles/tmc_sched_tests.dir/sched/test_buddy.cpp.o.d"
  "CMakeFiles/tmc_sched_tests.dir/sched/test_gang_rotation.cpp.o"
  "CMakeFiles/tmc_sched_tests.dir/sched/test_gang_rotation.cpp.o.d"
  "CMakeFiles/tmc_sched_tests.dir/sched/test_partition.cpp.o"
  "CMakeFiles/tmc_sched_tests.dir/sched/test_partition.cpp.o.d"
  "CMakeFiles/tmc_sched_tests.dir/sched/test_partition_scheduler.cpp.o"
  "CMakeFiles/tmc_sched_tests.dir/sched/test_partition_scheduler.cpp.o.d"
  "CMakeFiles/tmc_sched_tests.dir/sched/test_policy.cpp.o"
  "CMakeFiles/tmc_sched_tests.dir/sched/test_policy.cpp.o.d"
  "CMakeFiles/tmc_sched_tests.dir/sched/test_super_scheduler.cpp.o"
  "CMakeFiles/tmc_sched_tests.dir/sched/test_super_scheduler.cpp.o.d"
  "tmc_sched_tests"
  "tmc_sched_tests.pdb"
  "tmc_sched_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tmc_sched_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
