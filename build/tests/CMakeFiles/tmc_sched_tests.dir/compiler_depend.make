# Empty compiler generated dependencies file for tmc_sched_tests.
# This may be replaced when dependencies are built.
