file(REMOVE_RECURSE
  "CMakeFiles/tmc_sim_tests.dir/sim/test_event_queue.cpp.o"
  "CMakeFiles/tmc_sim_tests.dir/sim/test_event_queue.cpp.o.d"
  "CMakeFiles/tmc_sim_tests.dir/sim/test_rng.cpp.o"
  "CMakeFiles/tmc_sim_tests.dir/sim/test_rng.cpp.o.d"
  "CMakeFiles/tmc_sim_tests.dir/sim/test_simulation.cpp.o"
  "CMakeFiles/tmc_sim_tests.dir/sim/test_simulation.cpp.o.d"
  "CMakeFiles/tmc_sim_tests.dir/sim/test_stats.cpp.o"
  "CMakeFiles/tmc_sim_tests.dir/sim/test_stats.cpp.o.d"
  "CMakeFiles/tmc_sim_tests.dir/sim/test_time.cpp.o"
  "CMakeFiles/tmc_sim_tests.dir/sim/test_time.cpp.o.d"
  "CMakeFiles/tmc_sim_tests.dir/sim/test_unique_function.cpp.o"
  "CMakeFiles/tmc_sim_tests.dir/sim/test_unique_function.cpp.o.d"
  "tmc_sim_tests"
  "tmc_sim_tests.pdb"
  "tmc_sim_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tmc_sim_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
