# Empty dependencies file for tmc_sim_tests.
# This may be replaced when dependencies are built.
