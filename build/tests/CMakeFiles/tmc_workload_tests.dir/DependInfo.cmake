
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/workload/test_batch.cpp" "tests/CMakeFiles/tmc_workload_tests.dir/workload/test_batch.cpp.o" "gcc" "tests/CMakeFiles/tmc_workload_tests.dir/workload/test_batch.cpp.o.d"
  "/root/repo/tests/workload/test_matmul.cpp" "tests/CMakeFiles/tmc_workload_tests.dir/workload/test_matmul.cpp.o" "gcc" "tests/CMakeFiles/tmc_workload_tests.dir/workload/test_matmul.cpp.o.d"
  "/root/repo/tests/workload/test_sort.cpp" "tests/CMakeFiles/tmc_workload_tests.dir/workload/test_sort.cpp.o" "gcc" "tests/CMakeFiles/tmc_workload_tests.dir/workload/test_sort.cpp.o.d"
  "/root/repo/tests/workload/test_synthetic.cpp" "tests/CMakeFiles/tmc_workload_tests.dir/workload/test_synthetic.cpp.o" "gcc" "tests/CMakeFiles/tmc_workload_tests.dir/workload/test_synthetic.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/tmc_core.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/tmc_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/tmc_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/node/CMakeFiles/tmc_node.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/tmc_net.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/tmc_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/tmc_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
