file(REMOVE_RECURSE
  "CMakeFiles/tmc_workload_tests.dir/workload/test_batch.cpp.o"
  "CMakeFiles/tmc_workload_tests.dir/workload/test_batch.cpp.o.d"
  "CMakeFiles/tmc_workload_tests.dir/workload/test_matmul.cpp.o"
  "CMakeFiles/tmc_workload_tests.dir/workload/test_matmul.cpp.o.d"
  "CMakeFiles/tmc_workload_tests.dir/workload/test_sort.cpp.o"
  "CMakeFiles/tmc_workload_tests.dir/workload/test_sort.cpp.o.d"
  "CMakeFiles/tmc_workload_tests.dir/workload/test_synthetic.cpp.o"
  "CMakeFiles/tmc_workload_tests.dir/workload/test_synthetic.cpp.o.d"
  "tmc_workload_tests"
  "tmc_workload_tests.pdb"
  "tmc_workload_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tmc_workload_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
