# Empty compiler generated dependencies file for tmc_workload_tests.
# This may be replaced when dependencies are built.
