# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/tmc_sim_tests[1]_include.cmake")
include("/root/repo/build/tests/tmc_mem_tests[1]_include.cmake")
include("/root/repo/build/tests/tmc_net_tests[1]_include.cmake")
include("/root/repo/build/tests/tmc_node_tests[1]_include.cmake")
include("/root/repo/build/tests/tmc_sched_tests[1]_include.cmake")
include("/root/repo/build/tests/tmc_workload_tests[1]_include.cmake")
include("/root/repo/build/tests/tmc_core_tests[1]_include.cmake")
