// Building your own workload: a software pipeline.
//
// The paper studies fork/join (matmul) and divide-and-conquer (sort). This
// example shows the third classic structure -- a pipeline -- written against
// the public API: each stage receives a block, processes it, and passes it
// on; `stages` adapts to the allocated partition. It then compares the
// scheduling policies on a batch of pipelines, exercising exactly the same
// machinery as the paper's workloads.

#include <iostream>

#include "core/machine.h"
#include "core/report.h"
#include "workload/costs.h"

namespace {

using namespace tmc;

/// A `stages`-deep pipeline pushing `blocks` blocks of `block_bytes` each;
/// every stage spends `per_block` CPU per block.
sched::JobSpec make_pipeline_job(int blocks, std::size_t block_bytes,
                                 sim::SimTime per_block) {
  sched::JobSpec spec;
  spec.app = "pipeline";
  spec.problem_size = static_cast<std::size_t>(blocks);
  spec.arch = sched::SoftwareArch::kAdaptive;
  spec.demand_estimate = per_block * blocks;
  spec.builder = [blocks, block_bytes, per_block](const sched::Job& job,
                                                  int partition_size) {
    const int stages = std::max(partition_size, 1);
    std::vector<node::Program> programs(static_cast<std::size_t>(stages));
    constexpr int kTag = 1;
    for (int stage = 0; stage < stages; ++stage) {
      auto& prog = programs[static_cast<std::size_t>(stage)];
      prog.alloc(workload::Costs{}.process_overhead_bytes + 2 * block_bytes);
      for (int b = 0; b < blocks; ++b) {
        if (stage > 0) prog.receive(kTag);
        prog.compute(per_block);
        if (stage + 1 < stages) {
          prog.send(sched::endpoint_of(job.id(), stage + 1), kTag,
                    block_bytes);
        }
      }
      prog.exit();
    }
    return programs;
  };
  return spec;
}

}  // namespace

int main() {
  using namespace tmc;
  std::cout << "Custom workload: 16 pipelines (24 blocks x 32 KB, 30 ms per "
               "stage per block)\non a 16-node machine, partition size 4, "
               "ring per partition.\n\n";

  core::Table table({"policy", "MRT (s)", "makespan (s)", "cpu util"});
  for (const auto kind :
       {sched::PolicyKind::kStatic, sched::PolicyKind::kHybrid}) {
    core::MachineConfig cfg;
    cfg.topology = net::TopologyKind::kRing;
    cfg.policy.kind = kind;
    cfg.policy.partition_size = 4;
    core::Multicomputer machine(cfg);

    std::vector<std::unique_ptr<sched::Job>> jobs;
    for (sched::JobId id = 1; id <= 16; ++id) {
      jobs.push_back(std::make_unique<sched::Job>(
          id, make_pipeline_job(/*blocks=*/24, /*block_bytes=*/32 * 1024,
                                sim::SimTime::milliseconds(30))));
      machine.submit(*jobs.back());
    }
    machine.run_to_completion();

    sim::OnlineStats responses;
    double makespan = 0;
    for (const auto& job : jobs) {
      responses.add(job->response_time().to_seconds());
      makespan = std::max(makespan, job->completion_time().to_seconds());
    }
    table.add_row({std::string(sched::to_string(kind)),
                   core::fmt_seconds(responses.mean()),
                   core::fmt_seconds(makespan),
                   core::fmt_ratio(machine.stats().avg_cpu_utilization)});
  }
  table.print(std::cout);

  std::cout << "\nPipelines synchronise at every block, so gang-rotated "
               "time-sharing pays a\nrotation latency per handoff -- an even "
               "harsher workload for it than fork/join.\n";
  return 0;
}
