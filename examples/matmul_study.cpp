// Matmul policy study: one slice of the paper's Figures 3/4 with per-class
// breakdowns, plus the machine-level counters that explain the result.
//
// Usage: matmul_study [partition_size] (default 8)

#include <cstdlib>
#include <iostream>

#include "core/experiment.h"
#include "core/report.h"

int main(int argc, char** argv) {
  using namespace tmc;
  const int partition = argc > 1 ? std::atoi(argv[1]) : 8;
  if (partition <= 0 || 16 % partition != 0) {
    std::cerr << "partition size must divide 16\n";
    return 1;
  }

  std::cout << "Matmul batch (12 x 60^2 + 4 x 120^2 doubles) on a 16-node "
               "machine,\npartition size "
            << partition << ", per-partition mesh.\n\n";

  for (const auto arch :
       {sched::SoftwareArch::kFixed, sched::SoftwareArch::kAdaptive}) {
    core::banner(std::cout, std::string("software architecture: ") +
                                std::string(sched::to_string(arch)));
    core::Table table({"policy", "MRT (s)", "small (s)", "large (s)",
                       "cpu util", "msgs", "self-sends", "mem blocked",
                       "peak mem (KB)"});
    for (const auto policy :
         {sched::PolicyKind::kStatic, sched::PolicyKind::kHybrid}) {
      const auto effective = partition == 16 &&
                                     policy == sched::PolicyKind::kHybrid
                                 ? sched::PolicyKind::kTimeSharing
                                 : policy;
      const auto result = core::run_experiment(core::figure_point(
          workload::App::kMatMul, arch, effective, partition,
          net::TopologyKind::kMesh));
      const auto& run = result.primary;
      table.add_row(
          {std::string(sched::to_string(effective)),
           core::fmt_seconds(result.mean_response_s),
           core::fmt_seconds(run.response_small.mean()),
           core::fmt_seconds(run.response_large.mean()),
           core::fmt_ratio(run.machine.avg_cpu_utilization),
           std::to_string(run.machine.messages),
           std::to_string(run.machine.self_sends),
           std::to_string(run.machine.mem_blocked_requests),
           std::to_string(run.machine.peak_node_memory / 1024)});
    }
    table.print(std::cout);
  }

  std::cout
      << "\nWhat to look for (paper section 5.2):\n"
         "  * static beats the time-shared policy in mean response;\n"
         "  * the fixed architecture sends more (self-sends > 0 when 16\n"
         "    processes share fewer processors) and is slower than adaptive;\n"
         "  * under time-sharing the peak node memory approaches the 4 MB\n"
         "    limit and allocations start blocking.\n";
  return 0;
}
