// tmcsim quickstart: run the paper's headline comparison on one
// configuration and print the result.
//
// Builds a 16-node Transputer machine wired as four 4-node meshes, runs the
// matrix-multiplication batch (12 small + 4 large jobs) under the static
// space-sharing policy and under the hybrid time-sharing policy, and prints
// mean response times -- one point of the paper's Figure 4.

#include <iostream>

#include "core/experiment.h"
#include "core/report.h"

int main() {
  using namespace tmc;

  std::cout << "tmcsim quickstart: matmul batch, adaptive architecture, "
               "partition size 4, mesh\n\n";

  core::Table table({"policy", "mean response (s)", "small (s)", "large (s)",
                     "makespan (s)", "cpu util"});

  for (const auto policy :
       {sched::PolicyKind::kStatic, sched::PolicyKind::kHybrid}) {
    auto config = core::figure_point(
        workload::App::kMatMul, sched::SoftwareArch::kAdaptive, policy,
        /*partition_size=*/4, net::TopologyKind::kMesh);
    const auto result = core::run_experiment(config);
    const auto& run = result.primary;
    table.add_row({std::string(sched::to_string(policy)),
                   core::fmt_seconds(result.mean_response_s),
                   core::fmt_seconds(run.response_small.mean()),
                   core::fmt_seconds(run.response_large.mean()),
                   core::fmt_seconds(run.makespan_s),
                   core::fmt_ratio(run.machine.avg_cpu_utilization)});
  }
  table.print(std::cout);

  std::cout << "\nStatic space-sharing should beat time-sharing here (paper "
               "section 5.2):\nthe batch's service-demand variance is low, "
               "and multiprogramming adds\nmemory and link contention.\n";
  return 0;
}
