// Sort architecture study: section 5.3's headline effect.
//
// Selection sort is O(n^2), so splitting an array into 16 chunks costs
// ~1/16 of the work of sorting it whole: the FIXED architecture (always 16
// processes) dramatically outperforms the ADAPTIVE one on small partitions,
// the opposite of the matmul result. This example quantifies that across
// partition sizes.

#include <iostream>

#include "core/experiment.h"
#include "core/report.h"

int main() {
  using namespace tmc;
  std::cout << "Sort batch (12 x 6000 + 4 x 14000 elements, selection-sort "
               "workers)\nstatic policy, per-partition mesh.\n\n";

  core::Table table({"partition", "fixed MRT (s)", "adaptive MRT (s)",
                     "adaptive/fixed"});
  for (const int p : {1, 2, 4, 8, 16}) {
    const auto fixed = core::run_experiment(
        core::figure_point(workload::App::kSort, sched::SoftwareArch::kFixed,
                           sched::PolicyKind::kStatic, p,
                           net::TopologyKind::kMesh));
    const auto adaptive = core::run_experiment(core::figure_point(
        workload::App::kSort, sched::SoftwareArch::kAdaptive,
        sched::PolicyKind::kStatic, p, net::TopologyKind::kMesh));
    table.add_row({std::to_string(p),
                   core::fmt_seconds(fixed.mean_response_s),
                   core::fmt_seconds(adaptive.mean_response_s),
                   core::fmt_ratio(adaptive.mean_response_s /
                                   fixed.mean_response_s)});
  }
  table.print(std::cout);

  std::cout
      << "\nAt one processor per partition the adaptive architecture runs "
         "each job as a\nsingle serial selection sort -- quadratic in the "
         "array size -- while the fixed\narchitecture still splits into 16 "
         "chunks (communicating through self-sends on\nthe same node!) and "
         "wins by an order of magnitude. At 16 processors the two\n"
         "architectures coincide. This is why the paper concludes the fixed\n"
         "architecture suits divide-and-conquer workloads with superlinear "
         "kernels.\n";
  return 0;
}
