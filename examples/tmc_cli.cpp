// tmc_cli: run any single experiment from the command line.
//
//   tmc_cli [--app matmul|sort] [--arch fixed|adaptive|stealing]
//           [--policy static|ts|hybrid|adaptive] [--partition N]
//           [--topology linear|ring|mesh|hypercube|torus|tree] [--quantum MS]
//           [--memory MB] [--packet BYTES] [--wormhole] [--rotate-placement]
//           [--no-gang] [--set-size N] [--order interleaved|sjf|ljf]
//           [--csv] [--jobs] [--threads N]
//           [--metrics[=PATH]] [--timeline=PATH] [--sample-interval MS]
//           [--steal-rate R] [--steal-victim V] [--steal-granularity G]
//           [--steal-chunk C] [--steal-chunks N] [--steal-seed N]
//
// --arch stealing runs the work-stealing architecture (DESIGN.md §11); the
// --steal-* knobs require it and the rate defaults to 10000/s there
// (--steal-rate 0 builds no engine and falls back to the fixed scripts).
//
// --metrics dumps the structured metrics registry at end of run (stderr by
// default; PATH ending in .csv selects CSV, anything else JSON).
// --timeline writes a Chrome trace_event JSON (load in Perfetto / Chrome
// about:tracing) with one track per node, link and partition.
//
// --threads N farms the static policy's independent best/worst-order runs
// across N worker threads (0 = hardware thread count); results are
// identical at any thread count.
//
// Examples:
//   tmc_cli --app sort --arch fixed --policy static --partition 8 --topology ring
//   tmc_cli --policy ts --topology linear --wormhole --jobs

#include <cstdlib>
#include <cstring>
#include <iostream>
#include <optional>
#include <string>

#include "core/experiment.h"
#include "core/report.h"
#include "core/sweep_runner.h"
#include "obs/hub.h"
#include "sched/stealing/stealing.h"

namespace {

using namespace tmc;

[[noreturn]] void usage(const char* msg) {
  std::cerr << "tmc_cli: " << msg
            << "\nrun with the options listed at the top of examples/tmc_cli.cpp\n"
            << "observability flags:\n"
            << obs::cli_help() << "work-stealing flags (--arch stealing):\n"
            << sched::stealing::cli_help();
  std::exit(2);
}

const char* next_value(int argc, char** argv, int& i) {
  if (i + 1 >= argc) usage("missing value after option");
  return argv[++i];
}

}  // namespace

int main(int argc, char** argv) {
  using namespace tmc;

  workload::App app = workload::App::kMatMul;
  sched::SoftwareArch arch = sched::SoftwareArch::kAdaptive;
  sched::PolicyKind policy = sched::PolicyKind::kStatic;
  int partition = 4;
  net::TopologyKind topology = net::TopologyKind::kMesh;
  auto order = workload::BatchOrder::kInterleaved;
  bool explicit_order = false;
  bool csv = false;
  bool show_jobs = false;
  int threads = 1;

  core::ExperimentConfig config;
  obs::Options obs_options;
  bool steal_seen = false;
  bool steal_rate_seen = false;

  for (int i = 1; i < argc; ++i) {
    std::string obs_error;
    if (obs::parse_cli_flag(argc, argv, i, obs_options, obs_error)) {
      if (!obs_error.empty()) usage(obs_error.c_str());
      continue;
    }
    if (bool seen = false; sched::stealing::parse_cli_flag(
            argc, argv, i, config.machine.stealing, seen, obs_error)) {
      if (!obs_error.empty()) usage(obs_error.c_str());
      steal_seen = true;
      if (std::strncmp(argv[i], "--steal-rate", 12) == 0 ||
          (i > 0 && std::strncmp(argv[i - 1], "--steal-rate", 12) == 0)) {
        steal_rate_seen = true;
      }
      continue;
    }
    const std::string opt = argv[i];
    if (opt == "--app") {
      const std::string v = next_value(argc, argv, i);
      if (v == "matmul") app = workload::App::kMatMul;
      else if (v == "sort") app = workload::App::kSort;
      else usage("unknown app");
    } else if (opt == "--arch") {
      const std::string v = next_value(argc, argv, i);
      if (v == "fixed") arch = sched::SoftwareArch::kFixed;
      else if (v == "adaptive") arch = sched::SoftwareArch::kAdaptive;
      else if (v == "stealing") arch = sched::SoftwareArch::kStealing;
      else usage("unknown arch");
    } else if (opt == "--policy") {
      const std::string v = next_value(argc, argv, i);
      if (v == "static") policy = sched::PolicyKind::kStatic;
      else if (v == "ts") policy = sched::PolicyKind::kTimeSharing;
      else if (v == "hybrid") policy = sched::PolicyKind::kHybrid;
      else if (v == "adaptive") policy = sched::PolicyKind::kAdaptiveStatic;
      else usage("unknown policy");
    } else if (opt == "--partition") {
      partition = std::atoi(next_value(argc, argv, i));
    } else if (opt == "--topology") {
      const std::string v = next_value(argc, argv, i);
      if (v == "linear") topology = net::TopologyKind::kLinear;
      else if (v == "ring") topology = net::TopologyKind::kRing;
      else if (v == "mesh") topology = net::TopologyKind::kMesh;
      else if (v == "hypercube") topology = net::TopologyKind::kHypercube;
      else if (v == "torus") topology = net::TopologyKind::kTorus;
      else if (v == "tree") topology = net::TopologyKind::kTree;
      else usage("unknown topology");
    } else if (opt == "--quantum") {
      config.machine.policy.basic_quantum =
          sim::SimTime::milliseconds(std::atoi(next_value(argc, argv, i)));
    } else if (opt == "--memory") {
      config.machine.memory_per_node =
          static_cast<std::size_t>(std::atoi(next_value(argc, argv, i))) << 20;
    } else if (opt == "--packet") {
      config.machine.network.packet_bytes =
          static_cast<std::size_t>(std::atol(next_value(argc, argv, i)));
    } else if (opt == "--set-size") {
      config.machine.policy.set_size = std::atoi(next_value(argc, argv, i));
    } else if (opt == "--wormhole") {
      config.machine.wormhole = true;
    } else if (opt == "--rotate-placement") {
      config.machine.partition_sched.rotate_placement = true;
    } else if (opt == "--no-gang") {
      config.machine.policy.gang_scheduling = false;
    } else if (opt == "--order") {
      const std::string v = next_value(argc, argv, i);
      explicit_order = true;
      if (v == "interleaved") order = workload::BatchOrder::kInterleaved;
      else if (v == "sjf") order = workload::BatchOrder::kSmallestFirst;
      else if (v == "ljf") order = workload::BatchOrder::kLargestFirst;
      else usage("unknown order");
    } else if (opt == "--threads") {
      const std::string v = next_value(argc, argv, i);
      char* end = nullptr;
      const long parsed = std::strtol(v.c_str(), &end, 10);
      if (end == v.c_str() || *end != '\0' || parsed < 0 || parsed > 4096) {
        usage("--threads expects an integer in [0, 4096]");
      }
      threads = static_cast<int>(parsed);
    } else if (opt == "--csv") {
      csv = true;
    } else if (opt == "--jobs") {
      show_jobs = true;
    } else if (opt == "--help" || opt == "-h") {
      usage("usage");
    } else {
      usage(("unknown option " + opt).c_str());
    }
  }

  if (steal_seen && arch != sched::SoftwareArch::kStealing) {
    usage("--steal-* flags require --arch stealing");
  }
  if (arch == sched::SoftwareArch::kStealing && !steal_rate_seen) {
    config.machine.stealing.steal_rate = 10000.0;
  }

  // Fill in the workload/policy selection on top of the tuned knobs.
  {
    auto base = core::figure_point(app, arch, policy, partition, topology);
    config.batch = base.batch;
    config.name = base.name;
    config.machine.topology = topology;
    config.machine.policy.kind = policy;
    config.machine.policy.partition_size = partition;
  }

  std::optional<obs::Hub> hub;
  if (obs_options.any()) {
    hub.emplace(obs_options);
    config.machine.obs = &*hub;
  }

  if (explicit_order) {
    const auto run = core::run_batch(config, order);
    std::cout << config.name << " order=" << workload::to_string(order)
              << "\nmean response: " << core::fmt_seconds(run.mean_response_s())
              << " s (small " << core::fmt_seconds(run.response_small.mean())
              << ", large " << core::fmt_seconds(run.response_large.mean())
              << "), makespan " << core::fmt_seconds(run.makespan_s) << " s\n";
    if (show_jobs) {
      core::Table table({"job", "class", "wait (s)", "response (s)"});
      for (const auto& job : run.jobs) {
        table.add_row({std::to_string(job.id), job.large ? "large" : "small",
                       core::fmt_seconds(job.wait_s),
                       core::fmt_seconds(job.response_s)});
      }
      table.print(std::cout);
    }
    return hub && !hub->write_outputs(std::cerr) ? 1 : 0;
  }

  core::SweepRunner runner(threads);
  const auto result = core::run_experiment(config, &runner);
  core::Table table({"experiment", "MRT (s)", "small (s)", "large (s)",
                     "cpu util", "peak mem (KB)", "mem blocked"});
  const auto& run = result.primary;
  table.add_row({config.name, core::fmt_seconds(result.mean_response_s),
                 core::fmt_seconds(run.response_small.mean()),
                 core::fmt_seconds(run.response_large.mean()),
                 core::fmt_ratio(run.machine.avg_cpu_utilization),
                 std::to_string(run.machine.peak_node_memory / 1024),
                 std::to_string(run.machine.mem_blocked_requests)});
  table.print(std::cout);
  if (csv) table.csv(std::cout);
  if (show_jobs) {
    core::Table jobs({"job", "class", "wait (s)", "response (s)"});
    for (const auto& job : run.jobs) {
      jobs.add_row({std::to_string(job.id), job.large ? "large" : "small",
                    core::fmt_seconds(job.wait_s),
                    core::fmt_seconds(job.response_s)});
    }
    jobs.print(std::cout);
  }
  return hub && !hub->write_outputs(std::cerr) ? 1 : 0;
}
