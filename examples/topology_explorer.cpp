// Topology explorer: properties of the four interconnects the paper's C004
// switches can wire, and how much each policy cares about the choice.

#include <iostream>

#include "core/experiment.h"
#include "core/report.h"
#include "net/routing.h"

namespace {

using namespace tmc;

double mean_distance(const net::Topology& topo) {
  const net::RoutingTable routing(topo);
  const int n = topo.node_count();
  if (n <= 1) return 0.0;
  long total = 0;
  for (net::NodeId u = 0; u < n; ++u) {
    for (net::NodeId v = 0; v < n; ++v) total += routing.distance(u, v);
  }
  return static_cast<double>(total) / (static_cast<double>(n) * (n - 1));
}

}  // namespace

int main() {
  using namespace tmc;
  core::banner(std::cout, "16-node topology properties");
  core::Table props({"topology", "links", "diameter", "mean distance",
                     "max degree", "transputer-feasible"});
  for (const auto kind :
       {net::TopologyKind::kLinear, net::TopologyKind::kRing,
        net::TopologyKind::kMesh, net::TopologyKind::kHypercube}) {
    const auto topo = net::Topology::make(kind, 16);
    props.add_row({std::string(net::topology_name(kind)),
                   std::to_string(topo.link_count()),
                   std::to_string(topo.diameter()),
                   core::fmt_ratio(mean_distance(topo)),
                   std::to_string(topo.max_degree()),
                   topo.transputer_feasible() ? "yes" : "yes*"});
  }
  props.print(std::cout);
  std::cout << "(* feasible in the simulator; the real machine loses one "
               "link to the host,\n   so a 16-node hypercube could not be "
               "wired -- paper section 3.1)\n";

  core::banner(std::cout,
               "policy sensitivity to topology (matmul batch, one 16-node "
               "partition)");
  core::Table sens({"topology", "static MRT (s)", "pure TS MRT (s)"});
  double s_min = 1e300, s_max = 0, t_min = 1e300, t_max = 0;
  for (const auto kind : {net::TopologyKind::kLinear, net::TopologyKind::kRing,
                          net::TopologyKind::kMesh}) {
    const auto st = core::run_experiment(
        core::figure_point(workload::App::kMatMul,
                           sched::SoftwareArch::kAdaptive,
                           sched::PolicyKind::kStatic, 16, kind));
    const auto ts = core::run_experiment(
        core::figure_point(workload::App::kMatMul,
                           sched::SoftwareArch::kAdaptive,
                           sched::PolicyKind::kTimeSharing, 16, kind));
    s_min = std::min(s_min, st.mean_response_s);
    s_max = std::max(s_max, st.mean_response_s);
    t_min = std::min(t_min, ts.mean_response_s);
    t_max = std::max(t_max, ts.mean_response_s);
    sens.add_row({std::string(net::topology_name(kind)),
                  core::fmt_seconds(st.mean_response_s),
                  core::fmt_seconds(ts.mean_response_s)});
  }
  sens.print(std::cout);
  std::cout << "\nworst/best spread: static " << core::fmt_ratio(s_max / s_min)
            << ", time-sharing " << core::fmt_ratio(t_max / t_min)
            << "\nTime-sharing is the more topology-sensitive policy (paper "
               "5.2): its multi-\nprogrammed traffic rides the long-diameter "
               "store-and-forward paths far more often.\n";
  return 0;
}
