// Observability demo: watch the machine run two small jobs three ways.
//
// 1. Legacy line trace -- CPU dispatches, process exits, network sends and
//    parking, memory blocking -- printed to stdout, handy when debugging
//    policies or workloads.
// 2. Metrics registry -- every instrument family (kernel self-profile,
//    per-node CPU/memory, links, partitions, comm) dumped as JSON.
// 3. Timeline -- per-node CPU spans, sampled queue depths, and the same
//    trace lines as instant annotations, exported as Chrome trace_event
//    JSON. Open trace_demo_timeline.json in Perfetto (ui.perfetto.dev) or
//    chrome://tracing to browse the run visually.

#include <iostream>

#include "core/machine.h"
#include "obs/hub.h"
#include "workload/matmul.h"

int main() {
  using namespace tmc;

  obs::Options obs_options;
  obs_options.metrics = true;
  obs_options.metrics_path = "trace_demo_metrics.json";
  obs_options.timeline_path = "trace_demo_timeline.json";
  obs_options.sample_interval = sim::SimTime::milliseconds(5);
  obs::Hub hub(obs_options);

  core::MachineConfig cfg;
  cfg.processors = 4;
  cfg.topology = net::TopologyKind::kRing;
  cfg.policy.kind = sched::PolicyKind::kTimeSharing;
  cfg.policy.basic_quantum = sim::SimTime::milliseconds(20);
  cfg.obs = &hub;
  core::Multicomputer machine(cfg);

  int lines = 0;
  machine.enable_tracing(
      static_cast<unsigned>(sim::TraceCategory::kAll),
      [&lines](std::string_view line) {
        if (lines < 60) std::cout << line << "\n";
        if (++lines == 60) std::cout << "... (trace truncated)\n";
      });

  workload::MatMulParams mm;
  mm.n = 24;
  mm.arch = sched::SoftwareArch::kAdaptive;
  sched::Job a(1, workload::make_matmul_job(mm, false));
  sched::Job b(2, workload::make_matmul_job(mm, false));
  machine.submit(a);
  machine.submit(b);
  machine.run_to_completion();

  std::cout << "\njob 1 response: " << a.response_time().to_seconds()
            << " s, job 2 response: " << b.response_time().to_seconds()
            << " s, " << lines << " trace events\n";

  // A few headline numbers straight from the registry, then the full dumps.
  for (const auto& view : hub.registry().snapshot()) {
    if (view.name == "kernel.events_fired" ||
        view.name == "node0.cpu.utilization" ||
        view.name == "comm.sends") {
      std::cout << view.name << " = " << view.value << "\n";
    }
  }
  if (!hub.write_outputs(std::cerr)) return 1;
  std::cout << "\nwrote " << obs_options.metrics_path << " and "
            << obs_options.timeline_path
            << " (load the timeline in ui.perfetto.dev)\n";
  return 0;
}
