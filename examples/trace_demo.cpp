// Tracing demo: watch the machine run one small job.
//
// Enables the component trace (CPU dispatches, process exits, network sends
// and parking, memory blocking) and prints the first lines of a two-job
// time-shared run -- handy when debugging policies or workloads.

#include <iostream>

#include "core/machine.h"
#include "workload/matmul.h"

int main() {
  using namespace tmc;

  core::MachineConfig cfg;
  cfg.processors = 4;
  cfg.topology = net::TopologyKind::kRing;
  cfg.policy.kind = sched::PolicyKind::kTimeSharing;
  cfg.policy.basic_quantum = sim::SimTime::milliseconds(20);
  core::Multicomputer machine(cfg);

  int lines = 0;
  machine.enable_tracing(
      static_cast<unsigned>(sim::TraceCategory::kAll),
      [&lines](std::string_view line) {
        if (lines < 60) std::cout << line << "\n";
        if (++lines == 60) std::cout << "... (trace truncated)\n";
      });

  workload::MatMulParams mm;
  mm.n = 24;
  mm.arch = sched::SoftwareArch::kAdaptive;
  sched::Job a(1, workload::make_matmul_job(mm, false));
  sched::Job b(2, workload::make_matmul_job(mm, false));
  machine.submit(a);
  machine.submit(b);
  machine.run_to_completion();

  std::cout << "\njob 1 response: " << a.response_time().to_seconds()
            << " s, job 2 response: " << b.response_time().to_seconds()
            << " s, " << lines << " trace events\n";
  return 0;
}
