#include "core/experiment.h"

#include <memory>
#include <stdexcept>

#include "core/sweep_runner.h"

namespace tmc::core {

RunResult run_batch(const ExperimentConfig& config,
                    workload::BatchOrder order) {
  Multicomputer machine(config.machine);
  auto specs = workload::make_batch(config.batch, order);

  std::vector<std::unique_ptr<sched::Job>> jobs;
  jobs.reserve(specs.size());
  sched::JobId next_id = 1;
  for (auto& spec : specs) {
    jobs.push_back(std::make_unique<sched::Job>(next_id++, std::move(spec)));
  }
  // The whole batch arrives together at t = 0 (paper section 5.1).
  for (auto& job : jobs) machine.submit(*job);
  machine.run_to_completion();

  RunResult result;
  result.order = order;
  for (const auto& job : jobs) {
    if (!job->completed()) {
      throw std::logic_error("job did not complete");
    }
    JobOutcome outcome;
    outcome.id = job->id();
    outcome.large = job->spec().large;
    outcome.response_s = job->response_time().to_seconds();
    outcome.wait_s = job->wait_time().to_seconds();
    outcome.cpu_s = job->consumed_cpu().to_seconds();
    result.jobs.push_back(outcome);
    result.response_all.add(outcome.response_s);
    (outcome.large ? result.response_large : result.response_small)
        .add(outcome.response_s);
    result.makespan_s =
        std::max(result.makespan_s, job->completion_time().to_seconds());
  }
  result.machine = machine.stats();
  return result;
}

ExperimentResult run_experiment(const ExperimentConfig& config,
                                SweepRunner* runner) {
  ExperimentResult result;
  result.config = config;
  if (config.machine.policy.space_shared()) {
    // The hub's instruments are single-threaded and sized for one machine:
    // only the primary (smallest-first) order is the observed run; the
    // worst-order companion runs unobserved.
    ExperimentConfig worst_config = config;
    worst_config.machine.obs = nullptr;
    if (runner != nullptr && runner->thread_count() > 1) {
      constexpr workload::BatchOrder kOrders[] = {
          workload::BatchOrder::kSmallestFirst,
          workload::BatchOrder::kLargestFirst};
      auto runs = runner->map(2, [&](std::size_t i) {
        return run_batch(i == 0 ? config : worst_config, kOrders[i]);
      });
      result.primary = std::move(runs[0]);
      result.worst = std::move(runs[1]);
    } else {
      result.primary = run_batch(config, workload::BatchOrder::kSmallestFirst);
      result.worst =
          run_batch(worst_config, workload::BatchOrder::kLargestFirst);
    }
    result.mean_response_s = 0.5 * (result.primary.mean_response_s() +
                                    result.worst->mean_response_s());
  } else {
    result.primary = run_batch(config, workload::BatchOrder::kInterleaved);
    result.mean_response_s = result.primary.mean_response_s();
  }
  return result;
}

ExperimentConfig figure_point(workload::App app, sched::SoftwareArch arch,
                              sched::PolicyKind policy, int partition_size,
                              net::TopologyKind topology) {
  ExperimentConfig config;
  config.machine.topology = topology;
  config.machine.policy.kind = policy;
  config.machine.policy.partition_size = partition_size;
  config.batch = workload::default_batch(app, arch);
  config.name = std::string(workload::to_string(app)) + "/" +
                std::string(sched::to_string(arch)) + "/" +
                std::string(sched::to_string(policy)) + "/" +
                config.machine.label();
  return config;
}

}  // namespace tmc::core
