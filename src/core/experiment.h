// tmcsim -- the experiment harness.
//
// Runs one batch (12 small + 4 large jobs) through a configured machine and
// policy, and reports the paper's metric: mean response time over the batch.
// For the static policy it follows the paper's measurement rule (section
// 5.1): the reported value is the average of the best ordering (small jobs
// first) and the worst (large jobs first).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "core/machine.h"
#include "sim/stats.h"
#include "workload/batch.h"

namespace tmc::core {

class SweepRunner;

struct ExperimentConfig {
  MachineConfig machine{};
  workload::BatchParams batch{};
  std::string name;  // optional label for reports
};

/// Per-job outcome of one run.
struct JobOutcome {
  sched::JobId id = 0;
  bool large = false;
  double response_s = 0.0;
  double wait_s = 0.0;
  double cpu_s = 0.0;
};

/// One batch execution.
struct RunResult {
  workload::BatchOrder order = workload::BatchOrder::kInterleaved;
  std::vector<JobOutcome> jobs;
  sim::OnlineStats response_all;    // seconds
  sim::OnlineStats response_small;
  sim::OnlineStats response_large;
  double makespan_s = 0.0;
  MachineStats machine;

  [[nodiscard]] double mean_response_s() const { return response_all.mean(); }
};

/// The figure-level result: what one point of the paper's plots reports.
struct ExperimentResult {
  ExperimentConfig config;
  /// Mean response time following the paper's rule (static: avg of
  /// best/worst orders; time-sharing: the interleaved run).
  double mean_response_s = 0.0;
  RunResult primary;                 // interleaved (TS) / best order (static)
  std::optional<RunResult> worst;    // static only
};

/// Runs the batch once in the given submission order.
[[nodiscard]] RunResult run_batch(const ExperimentConfig& config,
                                  workload::BatchOrder order);

/// Runs the experiment under the paper's measurement rule. With a runner,
/// the static policy's best/worst-order runs are farmed across its threads
/// (each order is an independent simulation; results are identical either
/// way).
[[nodiscard]] ExperimentResult run_experiment(const ExperimentConfig& config,
                                              SweepRunner* runner = nullptr);

/// Convenience: a fully-populated config for one point of figures 3-6.
[[nodiscard]] ExperimentConfig figure_point(workload::App app,
                                            sched::SoftwareArch arch,
                                            sched::PolicyKind policy,
                                            int partition_size,
                                            net::TopologyKind topology);

}  // namespace tmc::core
