#include "core/machine.h"

#include <stdexcept>

namespace tmc::core {

std::string MachineConfig::label() const {
  return std::to_string(policy.partition_size) +
         net::topology_letter(topology);
}

namespace {

sched::PolicyConfig normalize_policy(const MachineConfig& cfg) {
  sched::PolicyConfig policy = cfg.policy;
  if (policy.kind == sched::PolicyKind::kTimeSharing ||
      policy.kind == sched::PolicyKind::kAdaptiveStatic) {
    // One machine-wide network: pure TS multiprograms the whole machine;
    // adaptive space-sharing carves buddy blocks out of it.
    policy.partition_size = cfg.processors;
  }
  if (policy.partition_size <= 0 ||
      cfg.processors % policy.partition_size != 0) {
    throw std::invalid_argument("partition size must divide machine size");
  }
  return policy;
}

}  // namespace

Multicomputer::Multicomputer(MachineConfig config)
    : cfg_(std::move(config)),
      topo_(net::Topology::tiled(
          cfg_.topology, normalize_policy(cfg_).partition_size,
          cfg_.processors / normalize_policy(cfg_).partition_size)) {
  cfg_.policy = normalize_policy(cfg_);

  mmus_.reserve(static_cast<std::size_t>(cfg_.processors));
  cpus_.reserve(static_cast<std::size_t>(cfg_.processors));
  std::vector<mem::Mmu*> mmu_ptrs;
  std::vector<node::Transputer*> cpu_ptrs;
  for (int i = 0; i < cfg_.processors; ++i) {
    mmus_.push_back(std::make_unique<mem::Mmu>(
        sim_, cfg_.memory_per_node, cfg_.mmu_service, cfg_.mmu_discipline));
    cpus_.push_back(
        std::make_unique<node::Transputer>(sim_, i, *mmus_.back(), cfg_.cpu));
    mmu_ptrs.push_back(mmus_.back().get());
    cpu_ptrs.push_back(cpus_.back().get());
  }

  if (cfg_.wormhole) {
    network_ = std::make_unique<net::WormholeNetwork>(sim_, topo_, mmu_ptrs,
                                                      cfg_.network);
  } else {
    network_ = std::make_unique<net::StoreForwardNetwork>(
        sim_, topo_, mmu_ptrs, cfg_.network);
  }
  comm_ = std::make_unique<node::CommSystem>(sim_, *network_, cpu_ptrs,
                                             cfg_.comm);

  if (cfg_.policy.kind == sched::PolicyKind::kAdaptiveStatic) {
    scheduler_ = std::make_unique<sched::AdaptiveScheduler>(
        sim_, cpu_ptrs, *comm_, cfg_.policy, cfg_.partition_sched);
    return;
  }
  std::vector<sched::PartitionScheduler*> ps_ptrs;
  for (auto& part :
       sched::equal_partitions(cfg_.processors, cfg_.policy.partition_size)) {
    partition_scheds_.push_back(std::make_unique<sched::PartitionScheduler>(
        sim_, std::move(part), cpu_ptrs, *comm_, cfg_.policy,
        cfg_.partition_sched));
    ps_ptrs.push_back(partition_scheds_.back().get());
  }
  scheduler_ =
      std::make_unique<sched::SuperScheduler>(sim_, ps_ptrs, cfg_.policy);
}

void Multicomputer::enable_tracing(unsigned mask, sim::Tracer::Sink sink) {
  tracer_.enable(mask, std::move(sink));
  network_->set_tracer(&tracer_);
  for (int i = 0; i < cfg_.processors; ++i) {
    cpus_[static_cast<std::size_t>(i)]->set_tracer(&tracer_);
    mmus_[static_cast<std::size_t>(i)]->set_tracer(&tracer_,
                                                   "mmu" + std::to_string(i));
  }
}

Multicomputer::~Multicomputer() {
  // If the machine is torn down with work in flight (e.g. after a modelled
  // deadlock), pending events and blocked allocation requests still own
  // Blocks referencing the MMUs. Drain both sets -- each discard round can
  // release memory and enqueue new grants, so iterate to a fixed point --
  // before member destruction begins.
  bool again = true;
  while (again) {
    again = sim_.discard_pending() > 0;
    for (auto& mmu : mmus_) {
      again = mmu->discard_pending() > 0 || again;
    }
  }
}

std::uint64_t Multicomputer::run_to_completion() {
  // Step (rather than run_until) so the clock stops at the last event:
  // utilisations are then measured over the actual makespan, not the
  // watchdog horizon.
  std::uint64_t fired = 0;
  while (sim_.step_until(cfg_.max_sim_time)) {
    ++fired;
  }
  if (!scheduler_->all_done()) {
    const char* why = sim_.idle() ? "modelled deadlock" : "watchdog expired";
    throw std::runtime_error(
        std::string("simulation ended with unfinished jobs (") + why +
        "): " + std::to_string(scheduler_->completed()) + "/" +
        std::to_string(scheduler_->submitted()) + " complete");
  }
  return fired;
}

MachineStats Multicomputer::stats() {
  MachineStats s;
  s.events = sim_.fired_events();
  s.messages = comm_->sends();
  s.self_sends = comm_->self_sends();
  s.total_hops = network_->total_hops();
  for (const auto& cpu : cpus_) {
    s.avg_cpu_utilization += cpu->utilization();
    s.context_switches += cpu->context_switches();
    s.high_preemptions += cpu->high_preemptions();
    s.quantum_expiries += cpu->quantum_expiries();
  }
  s.avg_cpu_utilization /= static_cast<double>(cpus_.size());
  for (const auto& mmu : mmus_) {
    s.peak_node_memory = std::max(s.peak_node_memory, mmu->high_watermark());
    s.mem_blocked_requests += mmu->blocked_count();
    s.mem_block_time += mmu->total_block_time();
  }
  if (const auto* sf =
          dynamic_cast<const net::StoreForwardNetwork*>(network_.get())) {
    s.max_link_utilization = sf->max_link_utilization(sim_.now());
  }
  return s;
}

}  // namespace tmc::core
