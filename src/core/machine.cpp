#include "core/machine.h"

#include <stdexcept>
#include <string>

#include "obs/hub.h"
#include "obs/job_trace.h"

namespace tmc::core {

std::string MachineConfig::label() const {
  return std::to_string(policy.partition_size) +
         net::topology_letter(topology);
}

namespace {

sched::PolicyConfig normalize_policy(const MachineConfig& cfg) {
  sched::PolicyConfig policy = cfg.policy;
  if (policy.kind == sched::PolicyKind::kTimeSharing ||
      policy.kind == sched::PolicyKind::kAdaptiveStatic) {
    // One machine-wide network: pure TS multiprograms the whole machine;
    // adaptive space-sharing carves buddy blocks out of it.
    policy.partition_size = cfg.processors;
  }
  if (policy.partition_size <= 0 ||
      cfg.processors % policy.partition_size != 0) {
    throw std::invalid_argument("partition size must divide machine size");
  }
  return policy;
}

}  // namespace

Multicomputer::Multicomputer(MachineConfig config)
    : cfg_(std::move(config)),
      topo_(net::Topology::tiled(
          cfg_.topology, normalize_policy(cfg_).partition_size,
          cfg_.processors / normalize_policy(cfg_).partition_size)) {
  cfg_.policy = normalize_policy(cfg_);

  mmus_.reserve(static_cast<std::size_t>(cfg_.processors));
  cpus_.reserve(static_cast<std::size_t>(cfg_.processors));
  std::vector<mem::Mmu*> mmu_ptrs;
  std::vector<node::Transputer*> cpu_ptrs;
  for (int i = 0; i < cfg_.processors; ++i) {
    mem::Mmu& mmu = mmus_.emplace_back(sim_, cfg_.memory_per_node,
                                       cfg_.mmu_service, cfg_.mmu_discipline);
    node::Transputer& cpu = cpus_.emplace_back(sim_, i, mmu, cfg_.cpu);
    mmu_ptrs.push_back(&mmu);
    cpu_ptrs.push_back(&cpu);
  }

  if (cfg_.wormhole) {
    network_ = std::make_unique<net::WormholeNetwork>(sim_, topo_, mmu_ptrs,
                                                      cfg_.network);
  } else {
    network_ = std::make_unique<net::StoreForwardNetwork>(
        sim_, topo_, mmu_ptrs, cfg_.network);
  }
  comm_ = std::make_unique<node::CommSystem>(sim_, *network_, cpu_ptrs,
                                             cfg_.comm);

  if (cfg_.stealing.enabled()) {
    steal_engine_ = std::make_unique<sched::stealing::Engine>(
        sim_, *comm_, network_->routing(), cpu_ptrs, cfg_.stealing);
  }

  if (cfg_.policy.kind == sched::PolicyKind::kAdaptiveStatic) {
    scheduler_ = std::make_unique<sched::AdaptiveScheduler>(
        sim_, cpu_ptrs, *comm_, cfg_.policy, cfg_.partition_sched);
  } else {
    std::vector<sched::PartitionScheduler*> ps_ptrs;
    for (auto& part : sched::equal_partitions(cfg_.processors,
                                              cfg_.policy.partition_size)) {
      partition_scheds_.push_back(std::make_unique<sched::PartitionScheduler>(
          sim_, std::move(part), cpu_ptrs, *comm_, cfg_.policy,
          cfg_.partition_sched));
      ps_ptrs.push_back(partition_scheds_.back().get());
    }
    scheduler_ =
        std::make_unique<sched::SuperScheduler>(sim_, ps_ptrs, cfg_.policy);
  }

  if (cfg_.faults.enabled()) {
    fault_mgr_ =
        std::make_unique<fault::FaultManager>(sim_, topo_, cfg_.faults);
    network_->set_fault_plane(fault_mgr_.get());
    comm_->enable_faults(
        fault_mgr_.get(), cfg_.faults.retry_budget,
        sim::SimTime::nanoseconds(
            static_cast<std::int64_t>(cfg_.faults.retry_backoff_s * 1e9)),
        [fm = fault_mgr_.get()] { return fm->jitter(); },
        [this](sched::JobId job) {
          // Deferred one event: the retry budget can exhaust deep inside a
          // delivery stack, and the abort tears that very stack's objects
          // down. on_job_comm_failure tolerates an already-gone job.
          sim_.schedule(sim::SimTime::zero(), [this, job] {
            scheduler_->on_job_comm_failure(job);
          });
        });
    scheduler_->enable_fault_mode(cfg_.faults.restart_budget);
    fault::FaultCallbacks cb;
    cb.node_crash = [this](net::NodeId n) {
      cpus_[static_cast<std::size_t>(n)].crash();
    };
    cb.node_repair = [this](net::NodeId n) {
      cpus_[static_cast<std::size_t>(n)].restore();
      network_->kick();  // traffic stalled behind the dead router moves again
    };
    cb.node_detected = [this](net::NodeId n, bool down) {
      if (down) {
        scheduler_->on_node_down(n);
      } else {
        scheduler_->on_node_up(n);
      }
    };
    cb.link_changed = [this](net::LinkId, bool up) {
      if (up) network_->kick();
    };
    fault_mgr_->set_callbacks(std::move(cb));
    fault_mgr_->start();
  }

  if (cfg_.obs != nullptr) wire_observability();
}

void Multicomputer::wire_observability() {
  obs::Hub& hub = *cfg_.obs;
  obs::Registry& reg = hub.registry();
  hub.set_label(cfg_.label() + " " + cfg_.policy.label() +
                (cfg_.wormhole ? " wormhole" : " store-forward"));

  // --- event-kernel self-profile ----------------------------------------
  reg.probe("kernel.events_fired",
            [this] { return static_cast<double>(sim_.fired_events()); });
  reg.probe("kernel.events_scheduled",
            [this] { return static_cast<double>(sim_.scheduled_events()); });
  reg.probe("kernel.pending_peak", [this] {
    return static_cast<double>(sim_.peak_pending_events());
  });
  reg.probe("kernel.end_time_s", [this] { return sim_.now().to_seconds(); });

  // --- scheduling hierarchy ---------------------------------------------
  reg.probe("sched.submitted",
            [this] { return static_cast<double>(scheduler_->submitted()); });
  reg.probe("sched.completed",
            [this] { return static_cast<double>(scheduler_->completed()); });
  reg.probe("sched.backlog",
            [this] { return static_cast<double>(scheduler_->queued_jobs()); });
  for (std::size_t p = 0; p < partition_scheds_.size(); ++p) {
    sched::PartitionScheduler* ps = partition_scheds_[p].get();
    const std::string prefix = "partition" + std::to_string(p);
    reg.probe(prefix + ".active_jobs",
              [ps] { return static_cast<double>(ps->active_jobs()); });
    reg.probe(prefix + ".peak_mpl", [ps] {
      return static_cast<double>(ps->peak_multiprogramming());
    });
    reg.probe(prefix + ".jobs_completed",
              [ps] { return static_cast<double>(ps->jobs_completed()); });
    reg.probe(prefix + ".gang_switches",
              [ps] { return static_cast<double>(ps->gang_switches()); });
  }

  // --- fault subsystem ----------------------------------------------------
  if (fault_mgr_ != nullptr) {
    fault::FaultManager* fm = fault_mgr_.get();
    reg.probe("fault.crashes",
              [fm] { return static_cast<double>(fm->stats().crashes); });
    reg.probe("fault.repairs",
              [fm] { return static_cast<double>(fm->stats().repairs); });
    reg.probe("fault.link_downs",
              [fm] { return static_cast<double>(fm->stats().link_downs); });
    reg.probe("fault.drops",
              [fm] { return static_cast<double>(fm->stats().drops); });
    reg.probe("fault.alive_nodes",
              [fm] { return static_cast<double>(fm->alive_nodes()); });
    reg.probe("fault.mtbf_observed_s",
              [fm] { return fm->stats().mtbf_observed_s; });
    reg.probe("fault.mttr_observed_s",
              [fm] { return fm->stats().mttr_observed_s; });
    reg.probe("fault.retries",
              [this] { return static_cast<double>(comm_->retries()); });
    reg.probe("fault.messages_lost",
              [this] { return static_cast<double>(comm_->messages_lost()); });
    reg.probe("fault.job_restarts", [this] {
      return static_cast<double>(scheduler_->job_restarts());
    });
    reg.probe("fault.jobs_failed", [this] {
      return static_cast<double>(scheduler_->jobs_failed());
    });
  }

  // --- work-stealing runtime ----------------------------------------------
  if (steal_engine_ != nullptr) {
    sched::stealing::Engine* eng = steal_engine_.get();
    reg.probe("steal.requests",
              [eng] { return static_cast<double>(eng->stats().requests); });
    reg.probe("steal.grants",
              [eng] { return static_cast<double>(eng->stats().grants); });
    reg.probe("steal.denials",
              [eng] { return static_cast<double>(eng->stats().denials); });
    reg.probe("steal.tasks_migrated", [eng] {
      return static_cast<double>(eng->stats().tasks_migrated);
    });
    reg.probe("steal.bytes_migrated", [eng] {
      return static_cast<double>(eng->stats().bytes_migrated);
    });
  }

  // --- communication system ---------------------------------------------
  reg.probe("comm.sends",
            [this] { return static_cast<double>(comm_->sends()); });
  reg.probe("comm.self_sends",
            [this] { return static_cast<double>(comm_->self_sends()); });
  reg.probe("comm.deliveries",
            [this] { return static_cast<double>(comm_->deliveries()); });
  reg.probe("comm.mailbox_pending", [this] {
    return static_cast<double>(comm_->pending_mailbox_messages());
  });
  reg.probe("comm.mailbox_bytes", [this] {
    return static_cast<double>(comm_->pending_mailbox_bytes());
  });

  // --- network ----------------------------------------------------------
  reg.probe("net.messages",
            [this] { return static_cast<double>(network_->messages_sent()); });
  reg.probe("net.delivered", [this] {
    return static_cast<double>(network_->messages_delivered());
  });
  reg.probe("net.bytes",
            [this] { return static_cast<double>(network_->bytes_sent()); });
  reg.probe("net.hops",
            [this] { return static_cast<double>(network_->total_hops()); });
  network_->set_metrics(reg.counter("net.parks"));
  if (const auto* wh =
          dynamic_cast<const net::WormholeNetwork*>(network_.get())) {
    reg.probe("net.worm_peak", [wh] {
      return static_cast<double>(wh->peak_worms_in_flight());
    });
    reg.probe("net.worm_pool_capacity", [wh] {
      return static_cast<double>(wh->worm_pool_capacity());
    });
    reg.probe("net.worm_pool_growths", [wh] {
      return static_cast<double>(wh->worm_pool_growths());
    });
  }

  // --- per-node CPU and memory ------------------------------------------
  for (int i = 0; i < cfg_.processors; ++i) {
    node::Transputer* cpu = &cpus_[static_cast<std::size_t>(i)];
    mem::Mmu* mmu = &mmus_[static_cast<std::size_t>(i)];
    const std::string prefix = "node" + std::to_string(i);
    reg.probe(prefix + ".cpu.utilization",
              [cpu] { return cpu->utilization(); });
    reg.probe(prefix + ".cpu.busy_s",
              [cpu] { return cpu->busy_time().to_seconds(); });
    reg.probe(prefix + ".cpu.context_switches",
              [cpu] { return static_cast<double>(cpu->context_switches()); });
    reg.probe(prefix + ".cpu.quantum_expiries",
              [cpu] { return static_cast<double>(cpu->quantum_expiries()); });
    reg.probe(prefix + ".cpu.high_preemptions",
              [cpu] { return static_cast<double>(cpu->high_preemptions()); });
    reg.probe(prefix + ".mem.free_bytes",
              [mmu] { return static_cast<double>(mmu->bytes_free()); });
    reg.probe(prefix + ".mem.peak_bytes",
              [mmu] { return static_cast<double>(mmu->high_watermark()); });
    reg.probe(prefix + ".mem.allocs",
              [mmu] { return static_cast<double>(mmu->alloc_count()); });
    reg.probe(prefix + ".mem.block_time_s",
              [mmu] { return mmu->total_block_time().to_seconds(); });
    mmu->set_metrics(
        reg.counter(prefix + ".mem.alloc_waits"),
        reg.distribution(prefix + ".mem.grant_wait_s", 0.0, 1.0, 50));
  }

  // --- per-link traffic --------------------------------------------------
  for (int l = 0; l < network_->link_count(); ++l) {
    const net::Link* lk = &network_->link(l);
    const std::string prefix = "link" + std::to_string(l);
    reg.probe(prefix + ".transfers",
              [lk] { return static_cast<double>(lk->transfers()); });
    reg.probe(prefix + ".bytes",
              [lk] { return static_cast<double>(lk->bytes_carried()); });
    reg.probe(prefix + ".queueing_s",
              [lk] { return lk->queueing_time().to_seconds(); });
    reg.probe(prefix + ".utilization",
              [lk, this] { return lk->utilization(sim_.now()); });
  }

  // --- timeline tracks and sampled channels ------------------------------
  // `tl` is the recording timeline (null unless --timeline was given);
  // `names` is the hub's track registry, used for track/name registration
  // even when only the JSONL metrics stream is active, so the stream can
  // label its channels without buffering a single record.
  obs::Timeline* tl = hub.timeline();
  if (tl == nullptr && hub.metrics_stream() == nullptr) return;
  obs::Timeline* names = &hub.track_registry();
  obs::Sampler& sampler = hub.sampler();
  sampler.configure(tl, hub.options().sample_interval);
  if (hub.metrics_stream() != nullptr) {
    sampler.set_stream(hub.metrics_stream(), names);
  }

  const obs::NameId n_ready = names->intern("ready");
  const obs::NameId n_free = names->intern("free_bytes");
  const obs::NameId n_util = names->intern("utilization");
  const obs::NameId n_jobs = names->intern("active_jobs");
  const obs::NameId n_pending = names->intern("pending_events");
  const obs::NameId n_mailbox = names->intern("mailbox_pending");

  obs::TrackId node_track_base = 0;
  for (int i = 0; i < cfg_.processors; ++i) {
    node::Transputer* cpu = &cpus_[static_cast<std::size_t>(i)];
    mem::Mmu* mmu = &mmus_[static_cast<std::size_t>(i)];
    const obs::TrackId track =
        names->add_track(obs::TrackKind::kNode, "node" + std::to_string(i));
    if (i == 0) node_track_base = track;
    cpu->set_timeline(tl, track);
    sampler.add_channel(
        [cpu] { return static_cast<double>(cpu->ready_count()); }, track,
        n_ready);
    sampler.add_channel(
        [mmu] { return static_cast<double>(mmu->bytes_free()); }, track,
        n_free);
  }

  obs::TrackId link_base = 0;
  for (int l = 0; l < network_->link_count(); ++l) {
    const net::Topology::LinkEnds ends = topo_.link_ends(l);
    const obs::TrackId track = names->add_track(
        obs::TrackKind::kLink, "link" + std::to_string(l) + " " +
                                   std::to_string(ends.from) + "->" +
                                   std::to_string(ends.to));
    if (l == 0) link_base = track;
    const net::Link* lk = &network_->link(l);
    sampler.add_channel([lk, this] { return lk->utilization(sim_.now()); },
                        track, n_util);
  }
  const obs::TrackId net_track =
      names->add_track(obs::TrackKind::kGlobal, "network");
  network_->set_timeline(tl, link_base, net_track);

  for (std::size_t p = 0; p < partition_scheds_.size(); ++p) {
    sched::PartitionScheduler* ps = partition_scheds_[p].get();
    const obs::TrackId track = names->add_track(
        obs::TrackKind::kPartition, "partition" + std::to_string(p));
    ps->set_timeline(tl, track);
    sampler.add_channel(
        [ps] { return static_cast<double>(ps->active_jobs()); }, track,
        n_jobs);
  }

  const obs::TrackId machine_track =
      names->add_track(obs::TrackKind::kGlobal, "machine");
  sampler.add_channel(
      [this] { return static_cast<double>(sim_.pending_events()); },
      machine_track, n_pending);
  sampler.add_channel(
      [this] {
        return static_cast<double>(comm_->pending_mailbox_messages());
      },
      machine_track, n_mailbox);

  trace_track_ = names->add_track(obs::TrackKind::kGlobal, "trace");

  if (fault_mgr_ != nullptr) {
    const obs::TrackId fault_track =
        names->add_track(obs::TrackKind::kGlobal, "faults");
    fault_mgr_->set_timeline(tl, fault_track);
  }

  // --- per-job lifecycle spans and cross-node flow arrows -----------------
  // Only when the timeline is *recording*: job spans and flow events are
  // per-event data, far too voluminous for the registry/stream-only paths,
  // and the JSONL stream has no use for them.
  if (tl != nullptr) {
    job_tracer_ = std::make_unique<obs::JobTracer>(*tl, cfg_.job_class_names);
    scheduler_->set_job_tracer(job_tracer_.get());
    comm_->set_timeline(tl, node_track_base);
    if (steal_engine_ != nullptr) {
      steal_engine_->set_timeline(tl, node_track_base);
      steal_engine_->set_job_tracer(job_tracer_.get());
    }
  }
}

void Multicomputer::submit(sched::Job& job) {
  if (steal_engine_ != nullptr &&
      job.spec().arch == sched::SoftwareArch::kStealing &&
      job.spec().tasklet_builder) {
    steal_engine_->adopt(job);
  }
  scheduler_->submit(job);
}

void Multicomputer::enable_tracing(unsigned mask, sim::Tracer::Sink sink) {
  tracer_.enable(mask, std::move(sink));
  // With a timeline attached, the same trace lines also land as annotation
  // instants on the "trace" track, so Perfetto shows them in context.
  if (cfg_.obs != nullptr && cfg_.obs->timeline() != nullptr) {
    obs::Timeline* tl = cfg_.obs->timeline();
    tracer_.enable_structured(
        mask, [tl, track = trace_track_](sim::SimTime now,
                                         sim::TraceCategory cat,
                                         std::string_view component,
                                         std::string_view message) {
          std::string text;
          text.reserve(component.size() + message.size() + 16);
          text += '[';
          text += sim::trace_category_name(cat);
          text += "] ";
          text += component;
          text += ": ";
          text += message;
          tl->annotate(track, now, std::move(text));
        });
  }
  network_->set_tracer(&tracer_);
  for (int i = 0; i < cfg_.processors; ++i) {
    cpus_[static_cast<std::size_t>(i)].set_tracer(&tracer_);
    mmus_[static_cast<std::size_t>(i)].set_tracer(&tracer_,
                                                  "mmu" + std::to_string(i));
  }
}

Multicomputer::~Multicomputer() {
  // Freeze any probes still pointing at components before those components
  // go away (covers runs abandoned without reaching run_to_completion's own
  // finish_run call; freezing twice is harmless).
  if (cfg_.obs != nullptr) cfg_.obs->finish_run(sim_.now());
  // If the machine is torn down with work in flight (e.g. after a modelled
  // deadlock), pending events and blocked allocation requests still own
  // Blocks referencing the MMUs. Drain both sets -- each discard round can
  // release memory and enqueue new grants, so iterate to a fixed point --
  // before member destruction begins.
  bool again = true;
  while (again) {
    again = sim_.discard_pending() > 0;
    for (auto& mmu : mmus_) {
      again = mmu.discard_pending() > 0 || again;
    }
  }
}

std::uint64_t Multicomputer::run_to_completion() {
  // Step (rather than run_until) so the clock stops at the last event:
  // utilisations are then measured over the actual makespan, not the
  // watchdog horizon.
  std::uint64_t fired = 0;
  obs::Sampler* sampler =
      cfg_.obs != nullptr && cfg_.obs->sampler().active()
          ? &cfg_.obs->sampler()
          : nullptr;
  // The fault processes rearm themselves forever, so a faulty machine never
  // goes idle on its own: once every job is complete and only fault-process
  // bookkeeping remains in the queue, the run is over. Stale resend events
  // (if any) outnumber the fault bookkeeping and drain first, keeping the
  // stop instant deterministic.
  const auto fault_only_left = [this] {
    return fault_mgr_ != nullptr && scheduler_->all_done() &&
           sim_.pending_events() <= fault_mgr_->pending_events();
  };
  if (sampler != nullptr) {
    // Same loop with sample instants interleaved: the sampler records every
    // channel at each interval tick strictly before the next event fires,
    // and never schedules events itself, so the event sequence -- and with
    // it every golden table -- is identical to the unsampled loop below.
    while (!sim_.idle() && sim_.next_event_time() <= cfg_.max_sim_time) {
      if (fault_only_left()) break;
      sampler->advance_to(sim_.next_event_time());
      if (!sim_.step()) break;
      ++fired;
    }
  } else {
    while (!fault_only_left() && sim_.step_until(cfg_.max_sim_time)) {
      ++fired;
    }
  }
  if (cfg_.obs != nullptr) cfg_.obs->finish_run(sim_.now());
  if (!scheduler_->all_done()) {
    const char* why = sim_.idle() ? "modelled deadlock" : "watchdog expired";
    std::string detail =
        std::string("simulation ended with unfinished jobs (") + why +
        "): " + std::to_string(scheduler_->completed()) + "/" +
        std::to_string(scheduler_->submitted()) + " complete, " +
        std::to_string(scheduler_->queued_jobs()) + " queued, t=" +
        std::to_string(sim_.now().to_seconds()) + "s, " +
        std::to_string(sim_.pending_events()) + " pending events, " +
        std::to_string(network_->parked_messages()) + " parked messages";
    std::uint64_t mem_waiters = 0;
    for (const auto& mmu : mmus_) mem_waiters += mmu.pending_requests();
    detail += ", " + std::to_string(mem_waiters) + " memory waiters";
    if (fault_mgr_ != nullptr) {
      detail += ", " + std::to_string(fault_mgr_->alive_nodes()) + "/" +
                std::to_string(fault_mgr_->node_count()) + " nodes alive";
    }
    throw std::runtime_error(detail);
  }
  return fired;
}

MachineStats Multicomputer::stats() {
  MachineStats s;
  s.events = sim_.fired_events();
  s.peak_pending_events = sim_.peak_pending_events();
  s.messages = comm_->sends();
  s.self_sends = comm_->self_sends();
  s.total_hops = network_->total_hops();
  for (const auto& cpu : cpus_) {
    s.avg_cpu_utilization += cpu.utilization();
    s.context_switches += cpu.context_switches();
    s.high_preemptions += cpu.high_preemptions();
    s.quantum_expiries += cpu.quantum_expiries();
  }
  s.avg_cpu_utilization /= static_cast<double>(cpus_.size());
  for (const auto& mmu : mmus_) {
    s.peak_node_memory = std::max(s.peak_node_memory, mmu.high_watermark());
    s.mem_blocked_requests += mmu.blocked_count();
    s.mem_block_time += mmu.total_block_time();
  }
  if (const auto* sf =
          dynamic_cast<const net::StoreForwardNetwork*>(network_.get())) {
    s.max_link_utilization = sf->max_link_utilization(sim_.now());
  }
  if (fault_mgr_ != nullptr) {
    s.faults = fault_mgr_->stats();
    s.faults.retries = comm_->retries();
    s.faults.messages_lost = comm_->messages_lost();
    s.faults.job_restarts = scheduler_->job_restarts();
    s.faults.jobs_failed = scheduler_->jobs_failed();
  }
  if (steal_engine_ != nullptr) s.steals = steal_engine_->stats();
  return s;
}

}  // namespace tmc::core
