// tmcsim -- the assembled multicomputer.
//
// Multicomputer wires the full system the paper describes: sixteen T805
// nodes (CPU + 4 MB MMU each), the partition-local interconnect, the
// mailbox communication system, and the three-tier scheduling hierarchy
// configured for one policy. It is the top-level object examples and the
// experiment harness interact with.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/node_array.h"
#include "fault/fault.h"
#include "mem/mmu.h"
#include "net/network.h"
#include "net/topology.h"
#include "node/comm.h"
#include "node/transputer.h"
#include "sched/job.h"
#include "sched/partition.h"
#include "sched/partition_scheduler.h"
#include "sched/policy.h"
#include "sched/adaptive_scheduler.h"
#include "sched/scheduler.h"
#include "sched/stealing/engine.h"
#include "sched/super_scheduler.h"
#include "sim/simulation.h"
#include "sim/trace.h"

namespace tmc::obs {
class Hub;
class JobTracer;
}

namespace tmc::core {

struct MachineConfig {
  /// Total processors P. The paper's system has 16 (one more T805 serves as
  /// the host link and is not schedulable).
  int processors = 16;
  /// Topology wired *within each partition*; partitions are disjoint
  /// networks (paper figure labels like "8L" = two 8-node linear arrays).
  net::TopologyKind topology = net::TopologyKind::kMesh;
  std::size_t memory_per_node = std::size_t{4} << 20;  // 4 MB
  sim::SimTime mmu_service = sim::SimTime::microseconds(2);
  mem::MmuDiscipline mmu_discipline = mem::MmuDiscipline::kFirstFit;
  /// Watchdog for run_to_completion(): self-perpetuating activity (e.g. a
  /// gang rotation whose jobs can never allocate memory) would otherwise
  /// keep the event loop alive forever. Generous: every modelled batch
  /// finishes in well under a minute of simulated time.
  sim::SimTime max_sim_time = sim::SimTime::seconds(600);
  /// Store-and-forward (the T805's switching) or the wormhole extension.
  bool wormhole = false;

  net::NetworkParams network{};
  node::Transputer::Params cpu{};
  node::CommSystem::Params comm{};
  sched::PartitionScheduler::Params partition_sched{};
  sched::PolicyConfig policy{};
  /// Fault-injection processes (all rates zero = perfectly reliable
  /// hardware; the fault subsystem is then not even instantiated and every
  /// hook is one untaken null-pointer branch).
  fault::FaultConfig faults{};
  /// Work-stealing runtime (steal_rate zero = no engine is instantiated;
  /// kStealing jobs then run their fallback fixed-architecture scripts
  /// byte-identically).
  sched::stealing::StealParams stealing{};

  /// Optional observability hub (owned by the caller -- tmc_cli or a bench
  /// harness). When set, the constructor registers metric probes and
  /// timeline tracks for every component and run_to_completion() drives the
  /// hub's interval sampler. Null (the default) is fully inert: components
  /// keep null handles and every recording site is one untaken branch.
  obs::Hub* obs = nullptr;

  /// Tenant class names for the per-job timeline tracks (one kJob track per
  /// class; empty = a single "jobs" track). The serving harness fills this
  /// from its class mix; closed batches leave it empty. Only read when a
  /// timeline is recording.
  std::vector<std::string> job_class_names;

  /// Figure label of this configuration, e.g. "8L".
  [[nodiscard]] std::string label() const;
};

/// Aggregate machine counters collected after a run.
struct MachineStats {
  std::uint64_t events = 0;
  /// High-water mark of the kernel's pending-event set (scaling studies:
  /// grows with machine size, and heap operations cost O(log) of it).
  std::size_t peak_pending_events = 0;
  std::uint64_t messages = 0;
  std::uint64_t self_sends = 0;
  std::uint64_t total_hops = 0;
  double avg_cpu_utilization = 0.0;
  double max_link_utilization = 0.0;
  std::size_t peak_node_memory = 0;      // max high watermark over nodes
  std::uint64_t mem_blocked_requests = 0;
  sim::SimTime mem_block_time;           // summed over nodes
  std::uint64_t context_switches = 0;
  std::uint64_t high_preemptions = 0;
  std::uint64_t quantum_expiries = 0;
  /// Fault subsystem counters (all zero on reliable runs), merged from the
  /// fault manager (crashes, repairs, MTBF/MTTR), the comm system (retries,
  /// lost messages) and the scheduler (restarts, failed jobs).
  fault::FaultStats faults{};
  /// Steal-protocol counters (all zero without an engine).
  sched::stealing::StealStats steals{};
};

class Multicomputer {
 public:
  explicit Multicomputer(MachineConfig config);
  ~Multicomputer();
  Multicomputer(const Multicomputer&) = delete;
  Multicomputer& operator=(const Multicomputer&) = delete;

  [[nodiscard]] const MachineConfig& config() const { return cfg_; }
  [[nodiscard]] sim::Simulation& sim() { return sim_; }
  [[nodiscard]] sched::Scheduler& scheduler() { return *scheduler_; }
  /// The adaptive space-sharing scheduler, or nullptr under the paper's
  /// fixed-partition policies.
  [[nodiscard]] sched::AdaptiveScheduler* adaptive_scheduler() {
    return dynamic_cast<sched::AdaptiveScheduler*>(scheduler_.get());
  }
  [[nodiscard]] node::CommSystem& comm() { return *comm_; }
  [[nodiscard]] net::Network& network() { return *network_; }
  /// The fault manager, or nullptr on a reliable (fault-free) machine.
  [[nodiscard]] fault::FaultManager* fault_manager() {
    return fault_mgr_.get();
  }
  [[nodiscard]] const net::Topology& topology() const { return topo_; }
  [[nodiscard]] node::Transputer& cpu(net::NodeId node) {
    return cpus_[static_cast<std::size_t>(node)];
  }
  [[nodiscard]] mem::Mmu& mmu(net::NodeId node) {
    return mmus_[static_cast<std::size_t>(node)];
  }
  [[nodiscard]] int partition_count() const {
    return static_cast<int>(partition_scheds_.size());
  }
  [[nodiscard]] sched::PartitionScheduler& partition_scheduler(int i) {
    return *partition_scheds_[static_cast<std::size_t>(i)];
  }

  /// Submits a job now (arrival = current simulated time). A kStealing job
  /// with a decomposer is adopted by the steal engine first (when one
  /// exists) so its program builder becomes the tasklet-driven one.
  void submit(sched::Job& job);

  /// The work-stealing engine, or nullptr when stealing is disabled.
  [[nodiscard]] sched::stealing::Engine* steal_engine() {
    return steal_engine_.get();
  }

  /// Routes component traces (CPU dispatches, process exits, network sends
  /// and parks, memory blocking) matching `mask` to `sink`.
  void enable_tracing(unsigned mask, sim::Tracer::Sink sink);
  void disable_tracing() { tracer_.disable(); }

  /// Runs the event loop until quiescent; throws if jobs remain unfinished
  /// (deadlock in the modelled system). Returns events fired.
  std::uint64_t run_to_completion();

  [[nodiscard]] MachineStats stats();

 private:
  void wire_observability();

  MachineConfig cfg_;
  sim::Simulation sim_;
  sim::Tracer tracer_;
  net::Topology topo_;
  /// Per-node components, placement-constructed back to back (Mmu and
  /// Transputer are non-movable; see core/node_array.h).
  NodeArray<mem::Mmu> mmus_;
  NodeArray<node::Transputer> cpus_;
  std::unique_ptr<net::Network> network_;
  std::unique_ptr<node::CommSystem> comm_;
  std::vector<std::unique_ptr<sched::PartitionScheduler>> partition_scheds_;
  std::unique_ptr<sched::Scheduler> scheduler_;
  /// Created only when cfg_.faults.enabled(); drives the failure/repair
  /// processes and answers the transport's liveness queries.
  std::unique_ptr<fault::FaultManager> fault_mgr_;
  /// Created only when cfg_.stealing.enabled(); owns the steal protocol.
  std::unique_ptr<sched::stealing::Engine> steal_engine_;
  /// Per-job lifecycle tracer, created only when a timeline is recording
  /// (see wire_observability); the schedulers hold a pointer to it.
  std::unique_ptr<obs::JobTracer> job_tracer_;
  /// Timeline track receiving legacy trace lines as annotations (valid only
  /// while cfg_.obs has a timeline; see enable_tracing).
  std::uint32_t trace_track_ = 0;
};

}  // namespace tmc::core
