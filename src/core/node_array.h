// tmcsim -- contiguous arena for per-node components.
//
// Mmu and Transputer are non-movable (they hand out references and hold
// back-references to each other), so the machine historically kept them in
// vector<unique_ptr<T>>: N separate heap objects, N pointer hops on every
// per-node loop. NodeArray placement-constructs them back to back in one
// allocation sized once up front -- the 1024-node machine's per-node state
// becomes a single cache-friendly block, and indexing loses the double
// indirection. Capacity is fixed at reserve() time precisely because the
// elements are non-movable: growing would require relocation, so exceeding
// the reservation is a programming error (asserted).
#pragma once

#include <cassert>
#include <cstddef>
#include <memory>
#include <new>
#include <utility>

namespace tmc::core {

template <typename T>
class NodeArray {
 public:
  NodeArray() = default;
  explicit NodeArray(std::size_t capacity) { reserve(capacity); }
  ~NodeArray() { reset(); }

  NodeArray(const NodeArray&) = delete;
  NodeArray& operator=(const NodeArray&) = delete;
  NodeArray(NodeArray&& other) noexcept
      : data_(std::exchange(other.data_, nullptr)),
        size_(std::exchange(other.size_, 0)),
        capacity_(std::exchange(other.capacity_, 0)) {}
  NodeArray& operator=(NodeArray&& other) noexcept {
    if (this != &other) {
      reset();
      data_ = std::exchange(other.data_, nullptr);
      size_ = std::exchange(other.size_, 0);
      capacity_ = std::exchange(other.capacity_, 0);
    }
    return *this;
  }

  /// Allocates raw storage for exactly `capacity` elements. Only valid on
  /// an empty array (elements cannot be relocated).
  void reserve(std::size_t capacity) {
    assert(data_ == nullptr && "NodeArray storage is sized once");
    if (capacity == 0) return;
    data_ = std::allocator<T>{}.allocate(capacity);
    capacity_ = capacity;
  }

  template <typename... Args>
  T& emplace_back(Args&&... args) {
    assert(size_ < capacity_ && "NodeArray reservation exceeded");
    T* slot = data_ + size_;
    ::new (static_cast<void*>(slot)) T(std::forward<Args>(args)...);
    ++size_;
    return *slot;
  }

  /// Destroys all elements and releases the storage.
  void reset() {
    for (std::size_t i = size_; i > 0; --i) data_[i - 1].~T();
    if (data_ != nullptr) std::allocator<T>{}.deallocate(data_, capacity_);
    data_ = nullptr;
    size_ = 0;
    capacity_ = 0;
  }

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }

  [[nodiscard]] T& operator[](std::size_t i) {
    assert(i < size_);
    return data_[i];
  }
  [[nodiscard]] const T& operator[](std::size_t i) const {
    assert(i < size_);
    return data_[i];
  }

  [[nodiscard]] T* begin() { return data_; }
  [[nodiscard]] T* end() { return data_ + size_; }
  [[nodiscard]] const T* begin() const { return data_; }
  [[nodiscard]] const T* end() const { return data_ + size_; }

 private:
  T* data_ = nullptr;
  std::size_t size_ = 0;
  std::size_t capacity_ = 0;
};

}  // namespace tmc::core
