#include "core/open_arrivals.h"

#include <memory>
#include <stdexcept>
#include <vector>

#include "core/sweep_runner.h"
#include "workload/arrivals.h"
#include "workload/matmul.h"
#include "workload/sort.h"

namespace tmc::core {
namespace {

/// The A10 mix as a two-class arrival stream. Class order is [large,
/// small] so the stream's cumulative class draw consumes the exact uniform
/// the historical `bernoulli(large_count/total)` did -- the golden table
/// depends on it. Sizes are deterministic per class (kFixed service model),
/// so the service step consumes no randomness, also as before.
std::vector<workload::JobClass> classes_from_mix(
    const workload::BatchParams& mix) {
  workload::JobClass large;
  large.name = "large";
  large.weight = static_cast<double>(mix.large_count);
  workload::JobClass small;
  small.name = "small";
  small.weight = static_cast<double>(mix.small_count);
  return {large, small};
}

/// Builds the job spec of one arrival (class 0 = large).
sched::JobSpec make_mix_job(const workload::BatchParams& mix, bool large) {
  const std::size_t size = large ? mix.large_size : mix.small_size;
  if (mix.app == workload::App::kMatMul) {
    workload::MatMulParams mm;
    mm.n = size;
    mm.arch = mix.arch;
    mm.fixed_processes = mix.fixed_processes;
    mm.broadcast = mix.matmul_broadcast;
    mm.costs = mix.costs;
    return workload::make_matmul_job(mm, large);
  }
  workload::SortParams sp;
  sp.elements = size;
  sp.arch = mix.arch;
  sp.fixed_processes = mix.fixed_processes;
  sp.costs = mix.costs;
  return workload::make_sort_job(sp, large);
}

}  // namespace

OpenArrivalResult run_open_arrivals(const OpenArrivalConfig& config) {
  if (config.arrivals_per_second <= 0.0) {
    throw std::invalid_argument("arrival rate must be positive");
  }
  const int total_jobs = config.warmup_jobs + config.measured_jobs;

  workload::ArrivalProcess process;
  process.kind = workload::ArrivalProcess::Kind::kPoisson;
  process.rate_per_s = config.arrivals_per_second;
  workload::ArrivalStream stream(process, classes_from_mix(config.mix),
                                 config.seed);

  Multicomputer machine(config.machine);

  // Draw the job sequence and arrival instants up front (deterministic).
  std::vector<std::unique_ptr<sched::Job>> jobs;
  std::vector<sim::SimTime> arrivals;
  jobs.reserve(static_cast<std::size_t>(total_jobs));
  double total_demand_s = 0.0;
  for (int i = 0; i < total_jobs; ++i) {
    workload::Arrival arrival;
    if (!stream.next(arrival)) break;  // unreachable: Poisson never ends
    sched::JobSpec spec = make_mix_job(config.mix, arrival.job_class == 0);
    total_demand_s += spec.demand_estimate.to_seconds();
    jobs.push_back(std::make_unique<sched::Job>(
        static_cast<sched::JobId>(i + 1), std::move(spec)));
    arrivals.push_back(sim::SimTime::nanoseconds(
        static_cast<std::int64_t>(arrival.at_s * 1e9)));
  }

  OpenArrivalResult result;
  result.offered_load = config.arrivals_per_second *
                        (total_demand_s / total_jobs) /
                        config.machine.processors;

  // Feed the stream through timed submissions.
  for (int i = 0; i < total_jobs; ++i) {
    sched::Job* job = jobs[static_cast<std::size_t>(i)].get();
    machine.sim().schedule_at(arrivals[static_cast<std::size_t>(i)],
                              [&machine, &result, job] {
                                result.queue_at_arrival.add(static_cast<double>(
                                    machine.scheduler().queued_jobs()));
                                machine.submit(*job);
                              });
  }
  machine.run_to_completion();

  for (int i = config.warmup_jobs; i < total_jobs; ++i) {
    const auto& job = *jobs[static_cast<std::size_t>(i)];
    const double response = job.response_time().to_seconds();
    result.response_all.add(response);
    (job.spec().large ? result.response_large : result.response_small)
        .add(response);
    result.horizon_s =
        std::max(result.horizon_s, job.completion_time().to_seconds());
  }
  result.machine = machine.stats();
  return result;
}

std::vector<std::optional<OpenArrivalResult>> run_open_arrival_replications(
    const OpenArrivalConfig& config, int replications, SweepRunner& runner) {
  return runner.map(
      static_cast<std::size_t>(replications),
      [&config](std::size_t i) -> std::optional<OpenArrivalResult> {
        OpenArrivalConfig point = config;
        point.seed = config.seed + i;
        // Replication 0 is the representative observed run; the hub's
        // instruments are single-threaded, so sibling replications
        // (potentially running concurrently) detach from it.
        if (i != 0) point.machine.obs = nullptr;
        try {
          return run_open_arrivals(point);
        } catch (const std::runtime_error&) {
          return std::nullopt;  // stream outran the policy: unstable
        }
      });
}

}  // namespace tmc::core
