#include "core/open_arrivals.h"

#include <memory>
#include <stdexcept>
#include <vector>

#include "core/sweep_runner.h"
#include "sim/rng.h"
#include "workload/matmul.h"
#include "workload/sort.h"

namespace tmc::core {

OpenArrivalResult run_open_arrivals(const OpenArrivalConfig& config) {
  if (config.arrivals_per_second <= 0.0) {
    throw std::invalid_argument("arrival rate must be positive");
  }
  const int total_jobs = config.warmup_jobs + config.measured_jobs;
  sim::Rng rng(config.seed);

  Multicomputer machine(config.machine);

  // Draw the job sequence and arrival instants up front (deterministic).
  const double large_probability =
      static_cast<double>(config.mix.large_count) /
      static_cast<double>(config.mix.total());
  std::vector<std::unique_ptr<sched::Job>> jobs;
  std::vector<sim::SimTime> arrivals;
  jobs.reserve(static_cast<std::size_t>(total_jobs));
  double clock_s = 0.0;
  double total_demand_s = 0.0;
  for (int i = 0; i < total_jobs; ++i) {
    const bool large = rng.bernoulli(large_probability);
    const std::size_t size =
        large ? config.mix.large_size : config.mix.small_size;
    sched::JobSpec spec;
    if (config.mix.app == workload::App::kMatMul) {
      workload::MatMulParams mm;
      mm.n = size;
      mm.arch = config.mix.arch;
      mm.fixed_processes = config.mix.fixed_processes;
      mm.broadcast = config.mix.matmul_broadcast;
      mm.costs = config.mix.costs;
      spec = workload::make_matmul_job(mm, large);
    } else {
      workload::SortParams sp;
      sp.elements = size;
      sp.arch = config.mix.arch;
      sp.fixed_processes = config.mix.fixed_processes;
      sp.costs = config.mix.costs;
      spec = workload::make_sort_job(sp, large);
    }
    total_demand_s += spec.demand_estimate.to_seconds();
    jobs.push_back(std::make_unique<sched::Job>(
        static_cast<sched::JobId>(i + 1), std::move(spec)));
    clock_s += rng.exponential(1.0 / config.arrivals_per_second);
    arrivals.push_back(
        sim::SimTime::nanoseconds(static_cast<std::int64_t>(clock_s * 1e9)));
  }

  OpenArrivalResult result;
  result.offered_load = config.arrivals_per_second *
                        (total_demand_s / total_jobs) /
                        config.machine.processors;

  // Feed the stream through timed submissions.
  for (int i = 0; i < total_jobs; ++i) {
    sched::Job* job = jobs[static_cast<std::size_t>(i)].get();
    machine.sim().schedule_at(arrivals[static_cast<std::size_t>(i)],
                              [&machine, &result, job] {
                                result.queue_at_arrival.add(static_cast<double>(
                                    machine.scheduler().queued_jobs()));
                                machine.submit(*job);
                              });
  }
  machine.run_to_completion();

  for (int i = config.warmup_jobs; i < total_jobs; ++i) {
    const auto& job = *jobs[static_cast<std::size_t>(i)];
    const double response = job.response_time().to_seconds();
    result.response_all.add(response);
    (job.spec().large ? result.response_large : result.response_small)
        .add(response);
    result.horizon_s =
        std::max(result.horizon_s, job.completion_time().to_seconds());
  }
  result.machine = machine.stats();
  return result;
}

std::vector<std::optional<OpenArrivalResult>> run_open_arrival_replications(
    const OpenArrivalConfig& config, int replications, SweepRunner& runner) {
  return runner.map(
      static_cast<std::size_t>(replications),
      [&config](std::size_t i) -> std::optional<OpenArrivalResult> {
        OpenArrivalConfig point = config;
        point.seed = config.seed + i;
        // Replication 0 is the representative observed run; the hub's
        // instruments are single-threaded, so sibling replications
        // (potentially running concurrently) detach from it.
        if (i != 0) point.machine.obs = nullptr;
        try {
          return run_open_arrivals(point);
        } catch (const std::runtime_error&) {
          return std::nullopt;  // stream outran the policy: unstable
        }
      });
}

}  // namespace tmc::core
