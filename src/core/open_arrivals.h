// tmcsim -- open-arrival experiments (extension; bench A10).
//
// The paper evaluates a closed 16-job batch. The scheduling literature it
// builds on (Majumdar/Eager/Bunt, Leutenegger/Vernon, Setia et al.) works
// with open systems: jobs arrive in a Poisson stream and the metric is
// steady-state mean response versus offered load. This harness runs that
// experiment on the same machine: seeded arrival stream, warm-up window
// excluded, response statistics over the measured window.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "core/machine.h"
#include "sim/stats.h"
#include "workload/batch.h"

namespace tmc::core {

class SweepRunner;

struct OpenArrivalConfig {
  MachineConfig machine{};
  /// Job mix: each arrival is a large job with probability
  /// large_count/total (the batch generator's 4/16 by default).
  workload::BatchParams mix{};
  /// Mean arrival rate (jobs per simulated second), Poisson process.
  double arrivals_per_second = 1.0;
  /// Jobs excluded from statistics while the system fills.
  int warmup_jobs = 16;
  /// Jobs measured after warm-up.
  int measured_jobs = 128;
  std::uint64_t seed = 1;
};

struct OpenArrivalResult {
  sim::OnlineStats response_all;  // seconds, measured window only
  sim::OnlineStats response_small;
  sim::OnlineStats response_large;
  sim::OnlineStats queue_at_arrival;  // jobs waiting when each job arrived
  /// Offered load estimate: arrival rate x mean serial demand / processors.
  double offered_load = 0.0;
  double horizon_s = 0.0;  // completion time of the last measured job
  MachineStats machine;
};

/// Runs the open experiment; throws if the system cannot drain the stream
/// within the machine watchdog (offered load past saturation).
[[nodiscard]] OpenArrivalResult run_open_arrivals(
    const OpenArrivalConfig& config);

/// Runs `replications` copies of the stream with seeds config.seed,
/// config.seed + 1, ... farmed across the runner's threads; results come
/// back in seed order. A replication whose stream outran the policy
/// (saturation: run_open_arrivals threw) is reported as nullopt instead of
/// aborting the whole sweep.
[[nodiscard]] std::vector<std::optional<OpenArrivalResult>>
run_open_arrival_replications(const OpenArrivalConfig& config,
                              int replications, SweepRunner& runner);

}  // namespace tmc::core
