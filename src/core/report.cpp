#include "core/report.h"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace tmc::core {

Table& Table::add_row(std::vector<std::string> cells) {
  if (cells.size() != headers_.size()) {
    throw std::invalid_argument("row width does not match header");
  }
  rows_.push_back(std::move(cells));
  return *this;
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    width[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  const auto line = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << (c == 0 ? "" : "  ") << std::left
         << std::setw(static_cast<int>(width[c])) << cells[c];
    }
    os << "\n";
  };
  line(headers_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < width.size(); ++c) {
    total += width[c] + (c == 0 ? 0 : 2);
  }
  os << std::string(total, '-') << "\n";
  for (const auto& row : rows_) line(row);
}

void Table::csv(std::ostream& os) const {
  const auto line = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << (c == 0 ? "" : ",") << cells[c];
    }
    os << "\n";
  };
  line(headers_);
  for (const auto& row : rows_) line(row);
}

std::string fmt_seconds(double s) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(3) << s;
  return os.str();
}

std::string fmt_ratio(double r) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(2) << r;
  return os.str();
}

void banner(std::ostream& os, const std::string& title) {
  os << "\n=== " << title << " ===\n";
}

}  // namespace tmc::core
