// tmcsim -- plain-text and CSV reporting for the bench harness.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace tmc::core {

/// Minimal fixed-width table: headers + string rows, printed aligned, with
/// CSV export for plotting.
class Table {
 public:
  explicit Table(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  Table& add_row(std::vector<std::string> cells);

  void print(std::ostream& os) const;
  void csv(std::ostream& os) const;

  [[nodiscard]] std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats seconds with 3 decimals ("12.345").
[[nodiscard]] std::string fmt_seconds(double s);
/// Formats a ratio/utilisation with 2 decimals.
[[nodiscard]] std::string fmt_ratio(double r);

/// Prints a banner line for a bench section.
void banner(std::ostream& os, const std::string& title);

}  // namespace tmc::core
