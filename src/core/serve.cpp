#include "core/serve.h"

#include <cassert>
#include <memory>
#include <stdexcept>

#include "sched/admission.h"

namespace tmc::core {
namespace {

/// Per-job-slot bookkeeping, recycled with the job id.
struct SlotMeta {
  int job_class = 0;
  bool measured = false;
};

}  // namespace

ServeResult run_sustained(const ServeConfig& config) {
  if (config.classes.empty()) {
    throw std::invalid_argument("serving needs at least one job class");
  }
  if (config.total_jobs == 0) {
    throw std::invalid_argument("total_jobs must be positive");
  }
  if (config.window_s <= 0.0) {
    throw std::invalid_argument("window_s must be positive");
  }

  // The default watchdog is sized for minute-long closed batches; a
  // million-job stream runs for total/rate simulated seconds. Give the run
  // generous headroom past its expected horizon instead of making every
  // caller do the arithmetic.
  MachineConfig machine_config = config.machine;
  const double mean_rate = config.process.mean_rate_per_s();
  if (mean_rate > 0.0) {
    const double expected_s =
        static_cast<double>(config.total_jobs) / mean_rate;
    const auto required = sim::SimTime::seconds(
        static_cast<std::int64_t>(4.0 * expected_s) + 600);
    if (machine_config.max_sim_time < required) {
      machine_config.max_sim_time = required;
    }
  }

  Multicomputer machine(machine_config);
  workload::ArrivalStream stream(config.process, config.classes, config.seed);
  sched::AdmissionControl admission(config.max_backlog, config.classes.size());

  ServeResult result;
  result.classes.reserve(config.classes.size());
  for (std::size_t i = 0; i < config.classes.size(); ++i) {
    result.classes.emplace_back(
        config.classes[i].name, config.reservoir_capacity,
        config.seed ^ (0x9e3779b97f4a7c15ULL * (i + 1)));
  }
  sim::WindowedRate completions(sim::SimTime::nanoseconds(
      static_cast<std::int64_t>(config.window_s * 1e9)));

  // Live-job arena: slot i holds the job with id i+1. Ids of retired jobs
  // are recycled (free_ids) so the arena -- and the comm system's per-job
  // endpoint windows, which are keyed by id -- stay bounded by the peak
  // number of jobs simultaneously in the system, not by the stream length.
  std::vector<std::unique_ptr<sched::Job>> slots;
  std::vector<SlotMeta> meta;
  std::vector<sched::JobId> free_ids;
  // Jobs completed since the last arrival. Completion fires inside the
  // scheduler's teardown event, so the Job is destroyed at the *next*
  // arrival instead (deferred retirement), never under its own stack.
  std::vector<sched::JobId> retirable;
  std::size_t live = 0;
  std::uint64_t offered = 0;

  machine.scheduler().set_completion_observer([&](sched::Job& job) {
    const auto slot = static_cast<std::size_t>(job.id() - 1);
    ClassServeStats& cls = result.classes[static_cast<std::size_t>(
        meta[slot].job_class)];
    ++cls.completed;
    ++result.completed;
    completions.record(machine.sim().now());
    if (meta[slot].measured) {
      const double response_s = job.response_time().to_seconds();
      const double demand_s = job.spec().demand_estimate.to_seconds();
      const double stretch = response_s / demand_s;
      ++cls.measured;
      ++result.measured;
      cls.response_s.add(response_s);
      cls.stretch.add(stretch);
      cls.response_q.add(response_s);
      cls.stretch_q.add(stretch);
      cls.response_sample.add(response_s);
      result.response_s.add(response_s);
      result.stretch.add(stretch);
      result.response_q.add(response_s);
    }
    retirable.push_back(job.id());
    if (config.checkpoint_every != 0 && config.checkpoint &&
        result.completed % config.checkpoint_every == 0) {
      config.checkpoint({offered, result.completed, admission.shed(), live,
                         machine.sim().now().to_seconds()});
    }
  });

  std::function<void(const workload::Arrival&)> on_arrival;
  auto schedule_next = [&] {
    if (offered >= config.total_jobs) return;
    workload::Arrival arrival;
    if (!stream.next(arrival)) return;  // trace exhausted
    machine.sim().schedule_at(
        sim::SimTime::nanoseconds(
            static_cast<std::int64_t>(arrival.at_s * 1e9)),
        [&on_arrival, arrival] { on_arrival(arrival); });
  };
  on_arrival = [&](const workload::Arrival& arrival) {
    // Retire jobs that completed since the previous arrival.
    for (const sched::JobId id : retirable) {
      const auto slot = static_cast<std::size_t>(id - 1);
      assert(slots[slot] && slots[slot]->completed());
      slots[slot].reset();
      free_ids.push_back(id);
      --live;
    }
    retirable.clear();

    ++offered;
    const bool measured = offered > config.warmup_jobs;
    ++result.classes[arrival.job_class].offered;
    // Admission keys on jobs in the system (queued + running = `live`, and
    // retirement just ran so it is current), not the scheduler's central
    // queue: time-shared policies park arrivals inside partitions, so the
    // central queue can stay empty while memory grows.
    if (admission.admit(live, arrival.job_class)) {
      sched::JobId id;
      if (free_ids.empty()) {
        id = static_cast<sched::JobId>(slots.size() + 1);
        slots.emplace_back();
        meta.emplace_back();
      } else {
        id = free_ids.back();
        free_ids.pop_back();
      }
      const auto slot = static_cast<std::size_t>(id - 1);
      sched::JobSpec spec = workload::make_arrival_job(
          config.classes[arrival.job_class], arrival);
      spec.job_class = static_cast<int>(arrival.job_class);
      slots[slot] = std::make_unique<sched::Job>(id, std::move(spec));
      meta[slot] = {static_cast<int>(arrival.job_class), measured};
      ++live;
      result.peak_live_jobs = std::max(result.peak_live_jobs, live);
      machine.submit(*slots[slot]);
    }
    schedule_next();
  };

  schedule_next();
  machine.run_to_completion();

  completions.finish(machine.sim().now());
  result.window_rate = completions.rates();
  result.horizon_s = machine.sim().now().to_seconds();
  result.offered = admission.offered();
  result.admitted = admission.admitted();
  result.shed = admission.shed();
  for (std::size_t i = 0; i < result.classes.size(); ++i) {
    result.classes[i].shed = admission.shed_in_class(i);
  }
  assert(result.completed == result.admitted);
  result.machine = machine.stats();
  return result;
}

}  // namespace tmc::core
