#include "core/serve.h"

#include <algorithm>
#include <cassert>
#include <memory>
#include <stdexcept>

#include "obs/hub.h"
#include "sched/admission.h"

namespace tmc::core {
namespace {

/// Per-job-slot bookkeeping, recycled with the job id.
struct SlotMeta {
  int job_class = 0;
  bool measured = false;
};

}  // namespace

ServeResult run_sustained(const ServeConfig& config) {
  if (config.classes.empty()) {
    throw std::invalid_argument("serving needs at least one job class");
  }
  if (config.total_jobs == 0) {
    throw std::invalid_argument("total_jobs must be positive");
  }
  if (config.window_s <= 0.0) {
    throw std::invalid_argument("window_s must be positive");
  }

  // The default watchdog is sized for minute-long closed batches; a
  // million-job stream runs for total/rate simulated seconds. Give the run
  // generous headroom past its expected horizon instead of making every
  // caller do the arithmetic.
  MachineConfig machine_config = config.machine;
  machine_config.job_class_names.clear();
  for (const workload::JobClass& cls : config.classes) {
    machine_config.job_class_names.push_back(cls.name);
  }
  const double mean_rate = config.process.mean_rate_per_s();
  if (mean_rate > 0.0) {
    const double expected_s =
        static_cast<double>(config.total_jobs) / mean_rate;
    const auto required = sim::SimTime::seconds(
        static_cast<std::int64_t>(4.0 * expected_s) + 600);
    if (machine_config.max_sim_time < required) {
      machine_config.max_sim_time = required;
    }
  }

  Multicomputer machine(machine_config);
  workload::ArrivalStream stream(config.process, config.classes, config.seed);
  sched::AdmissionControl admission(config.max_backlog, config.classes.size());

  ServeResult result;
  result.classes.reserve(config.classes.size());
  for (std::size_t i = 0; i < config.classes.size(); ++i) {
    result.classes.emplace_back(
        config.classes[i].name, config.reservoir_capacity,
        config.seed ^ (0x9e3779b97f4a7c15ULL * (i + 1)));
  }
  sim::WindowedRate completions(sim::SimTime::nanoseconds(
      static_cast<std::int64_t>(config.window_s * 1e9)));

  // SLO accounting: `slo_of[class]` maps a tenant class to its target index
  // (or -1, untracked). The tracker lives here -- not on the hub -- so the
  // summary is identical for every run of a sweep, instrumented or not.
  obs::SloTracker slo(config.slo_targets);
  std::vector<int> slo_of(config.classes.size(), -1);
  for (std::size_t t = 0; t < config.slo_targets.size(); ++t) {
    bool found = false;
    for (std::size_t c = 0; c < config.classes.size(); ++c) {
      if (config.classes[c].name == config.slo_targets[t].job_class) {
        slo_of[c] = static_cast<int>(t);
        found = true;
        break;
      }
    }
    if (!found) {
      throw std::invalid_argument("slo target names unknown class '" +
                                  config.slo_targets[t].job_class + "'");
    }
  }

  // With a hub attached (and its sampler armed), the SLO state also streams:
  // one kGlobal track per target carrying attainment, budget burn and the
  // streaming p99 stretch. Channels read the tracker, which outlives the
  // run (the sampler drops its readers at finish_run).
  if (obs::Hub* hub = machine_config.obs;
      hub != nullptr && slo.size() > 0 &&
      (hub->timeline() != nullptr || hub->metrics_stream() != nullptr)) {
    obs::Timeline& names = hub->track_registry();
    obs::Sampler& sampler = hub->sampler();
    const obs::NameId n_attainment = names.intern("attainment");
    const obs::NameId n_burn = names.intern("budget_burn");
    const obs::NameId n_stretch = names.intern("stretch_p99");
    for (std::size_t t = 0; t < slo.size(); ++t) {
      const obs::TrackId track = names.add_track(
          obs::TrackKind::kGlobal,
          "slo:" + slo.classes()[t].target.job_class);
      sampler.add_channel([&slo, t] { return slo.attainment(t); }, track,
                          n_attainment);
      sampler.add_channel([&slo, t] { return slo.budget_burn(t); }, track,
                          n_burn);
      sampler.add_channel(
          [&slo, t] { return slo.classes()[t].stretch_q.p99.value(); }, track,
          n_stretch);
    }
  }

  // Live-job arena: slot i holds the job with id i+1. Ids of retired jobs
  // are recycled (free_ids) so the arena -- and the comm system's per-job
  // endpoint windows, which are keyed by id -- stay bounded by the peak
  // number of jobs simultaneously in the system, not by the stream length.
  std::vector<std::unique_ptr<sched::Job>> slots;
  std::vector<SlotMeta> meta;
  std::vector<sched::JobId> free_ids;
  // Jobs completed since the last arrival. Completion fires inside the
  // scheduler's teardown event, so the Job is destroyed at the *next*
  // arrival instead (deferred retirement), never under its own stack.
  std::vector<sched::JobId> retirable;
  std::size_t live = 0;
  std::uint64_t offered = 0;

  machine.scheduler().set_completion_observer([&](sched::Job& job) {
    const auto slot = static_cast<std::size_t>(job.id() - 1);
    ClassServeStats& cls = result.classes[static_cast<std::size_t>(
        meta[slot].job_class)];
    ++cls.completed;
    ++result.completed;
    completions.record(machine.sim().now());
    // A job that burned through its restart budget leaves as a loss: the
    // slot retires normally (completed covers it, keeping the id arena and
    // the completed == admitted invariant intact) but its "response time"
    // describes abandonment, not service, so it never enters the statistics.
    const bool failed = job.failed();
    if (failed) {
      ++cls.lost;
      ++result.jobs_lost;
    }
    if (meta[slot].measured && !failed) {
      const double response_s = job.response_time().to_seconds();
      const double demand_s = job.spec().demand_estimate.to_seconds();
      const double stretch = response_s / demand_s;
      ++cls.measured;
      ++result.measured;
      cls.response_s.add(response_s);
      cls.stretch.add(stretch);
      cls.response_q.add(response_s);
      cls.stretch_q.add(stretch);
      cls.response_sample.add(response_s);
      result.response_s.add(response_s);
      result.stretch.add(stretch);
      result.response_q.add(response_s);
      const int target = slo_of[static_cast<std::size_t>(
          meta[slot].job_class)];
      if (target >= 0) {
        slo.record(static_cast<std::size_t>(target), response_s, stretch);
      }
    }
    retirable.push_back(job.id());
    if (config.checkpoint_every != 0 && config.checkpoint &&
        result.completed % config.checkpoint_every == 0) {
      config.checkpoint({offered, result.completed, admission.shed(), live,
                         machine.sim().now().to_seconds()});
    }
  });

  std::function<void(const workload::Arrival&)> on_arrival;
  auto schedule_next = [&] {
    if (offered >= config.total_jobs) return;
    workload::Arrival arrival;
    if (!stream.next(arrival)) return;  // trace exhausted
    machine.sim().schedule_at(
        sim::SimTime::nanoseconds(
            static_cast<std::int64_t>(arrival.at_s * 1e9)),
        [&on_arrival, arrival] { on_arrival(arrival); });
  };
  on_arrival = [&](const workload::Arrival& arrival) {
    // Retire jobs that completed since the previous arrival.
    for (const sched::JobId id : retirable) {
      const auto slot = static_cast<std::size_t>(id - 1);
      assert(slots[slot] && slots[slot]->completed());
      slots[slot].reset();
      free_ids.push_back(id);
      --live;
    }
    retirable.clear();

    ++offered;
    const bool measured = offered > config.warmup_jobs;
    ++result.classes[arrival.job_class].offered;
    // Admission keys on jobs in the system (queued + running = `live`, and
    // retirement just ran so it is current), not the scheduler's central
    // queue: time-shared policies park arrivals inside partitions, so the
    // central queue can stay empty while memory grows.
    // Under faults, shed against *surviving* capacity: a machine that lost
    // a quarter of its nodes can drain proportionally less backlog, and
    // holding admission at the full-machine bound just converts the episode
    // into an unbounded queue. Fault-free runs never enter this branch, so
    // their admission decisions are bit-identical to before.
    if (fault::FaultManager* fm = machine.fault_manager();
        fm != nullptr && config.max_backlog != 0) {
      const auto alive = static_cast<std::size_t>(fm->alive_nodes());
      const auto total = static_cast<std::size_t>(fm->node_count());
      admission.set_max_backlog(
          std::max<std::size_t>(1, config.max_backlog * alive / total));
    }
    if (admission.admit(live, arrival.job_class)) {
      sched::JobId id;
      if (free_ids.empty()) {
        id = static_cast<sched::JobId>(slots.size() + 1);
        slots.emplace_back();
        meta.emplace_back();
      } else {
        id = free_ids.back();
        free_ids.pop_back();
      }
      const auto slot = static_cast<std::size_t>(id - 1);
      sched::JobSpec spec = workload::make_arrival_job(
          config.classes[arrival.job_class], arrival);
      spec.job_class = static_cast<int>(arrival.job_class);
      slots[slot] = std::make_unique<sched::Job>(id, std::move(spec));
      meta[slot] = {static_cast<int>(arrival.job_class), measured};
      ++live;
      result.peak_live_jobs = std::max(result.peak_live_jobs, live);
      machine.submit(*slots[slot]);
    }
    schedule_next();
  };

  schedule_next();
  machine.run_to_completion();

  completions.finish(machine.sim().now());
  result.window_rate = completions.rates();
  result.horizon_s = machine.sim().now().to_seconds();
  result.offered = admission.offered();
  result.admitted = admission.admitted();
  result.shed = admission.shed();
  for (std::size_t i = 0; i < result.classes.size(); ++i) {
    result.classes[i].shed = admission.shed_in_class(i);
  }
  assert(result.completed == result.admitted);
  // Safe to move now: run_to_completion already dropped the sampler readers
  // pointing at the local tracker (finish_run).
  result.slo = std::move(slo);
  result.machine = machine.stats();
  return result;
}

}  // namespace tmc::core
