// tmcsim -- sustained open-arrival serving (the long-lived traffic mode).
//
// The paper's experiments are closed 16-job batches; the A10 harness opens
// the system but still pre-generates the whole stream and buffers every
// sample. This loop is the production-shaped version: an ArrivalStream
// feeds jobs one event at a time for as long as configured (millions of
// jobs), an admission gate sheds arrivals past a bounded backlog, and all
// statistics are the O(1)-memory streaming estimators of
// sim/streaming_stats.h, so resident memory stays flat no matter how long
// the run. Job ids (and with them the comm system's per-job endpoint
// windows) are recycled, completed Job objects are freed at the next
// arrival, and the one scheduler-side leak (AdaptiveScheduler's retired
// partitions) is reclaimed per completion -- the soak test pins all three.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "core/machine.h"
#include "obs/slo.h"
#include "sim/stats.h"
#include "sim/streaming_stats.h"
#include "workload/arrivals.h"

namespace tmc::core {

/// Progress snapshot handed to the checkpoint callback (soak tests read
/// their allocator counters at these points; monitoring could log them).
struct ServeCheckpoint {
  std::uint64_t offered = 0;    // arrivals generated so far
  std::uint64_t completed = 0;  // jobs finished so far
  std::uint64_t shed = 0;       // arrivals refused by admission
  std::size_t live_jobs = 0;    // Job objects currently allocated
  double now_s = 0.0;           // simulated clock at the checkpoint
};

struct ServeConfig {
  MachineConfig machine{};
  workload::ArrivalProcess process{};
  /// Tenant mix; at least one class. Class order defines report order.
  std::vector<workload::JobClass> classes;
  /// Arrivals to generate (a trace shorter than this ends the run early).
  std::uint64_t total_jobs = 1'000'000;
  /// Leading arrivals excluded from response statistics while the system
  /// reaches steady state.
  std::uint64_t warmup_jobs = 1'000;
  /// Bound on jobs in the system (queued + running) for admission
  /// (0 = admit everything; see sched/admission.h). Essential above
  /// saturation: without it the queue and memory grow without bound.
  std::size_t max_backlog = 10'000;
  /// Per-class weighted reservoir capacity (response-time samples).
  std::size_t reservoir_capacity = 4'096;
  /// Width of the completion-rate windows, simulated seconds.
  double window_s = 10.0;
  std::uint64_t seed = 1;
  /// Invoke `checkpoint` every this many completions (0 = never).
  std::uint64_t checkpoint_every = 0;
  std::function<void(const ServeCheckpoint&)> checkpoint;
  /// Per-class response-time targets (each must name a class in `classes`;
  /// empty = no SLO accounting). Tracked for every run regardless of
  /// instrumentation, so sweep summaries stay identical policy to policy;
  /// with a hub attached the tracker additionally feeds sampler channels
  /// (slo:<class> attainment / budget_burn / stretch_p99).
  std::vector<obs::SloTarget> slo_targets;
};

/// Per-class streaming accounting. Everything here is O(1) memory (the
/// reservoir is fixed capacity) and deterministic from the config seed.
struct ClassServeStats {
  std::string name;
  std::uint64_t offered = 0;
  std::uint64_t shed = 0;
  std::uint64_t completed = 0;
  /// Completions that were fault aborts past their restart budget: the job
  /// left the system without finishing its work. Counted inside
  /// `completed` (the slot is retired either way) but excluded from the
  /// response statistics, which only describe successful work.
  std::uint64_t lost = 0;
  std::uint64_t measured = 0;  // completions contributing to stats below
  sim::OnlineStats response_s;        // mean response time (the paper's MRT)
  sim::OnlineStats stretch;           // response / service demand (fairness)
  sim::QuantileTrio response_q;       // streaming p50/p95/p99 response
  sim::QuantileTrio stretch_q;        // streaming p50/p95/p99 stretch
  sim::ReservoirSample response_sample;  // weighted reservoir of responses

  ClassServeStats(std::string name_, std::size_t reservoir_capacity,
                  std::uint64_t reservoir_seed)
      : name(std::move(name_)),
        response_sample(reservoir_capacity, reservoir_seed) {}
};

struct ServeResult {
  std::vector<ClassServeStats> classes;
  std::uint64_t offered = 0;
  std::uint64_t admitted = 0;
  std::uint64_t shed = 0;
  std::uint64_t completed = 0;
  /// Jobs that exhausted their restart budget under faults (summed over
  /// classes; zero on reliable machines).
  std::uint64_t jobs_lost = 0;
  std::uint64_t measured = 0;
  sim::OnlineStats response_s;   // all measured classes pooled
  sim::OnlineStats stretch;
  sim::QuantileTrio response_q;
  /// Completion throughput per window_s-wide window of simulated time.
  sim::OnlineStats window_rate;
  double horizon_s = 0.0;        // simulated clock when the system drained
  /// High-water mark of allocated Job objects (flat-memory evidence).
  std::size_t peak_live_jobs = 0;
  /// SLO accounting over measured completions (empty unless slo_targets
  /// were configured); one entry per target, in target order.
  obs::SloTracker slo;
  MachineStats machine;
};

/// Serves the configured stream to completion and reports streaming
/// statistics. Deterministic from the config (bit-identical at any host
/// thread count); throws std::runtime_error if the machine cannot drain
/// the admitted jobs within its watchdog.
[[nodiscard]] ServeResult run_sustained(const ServeConfig& config);

}  // namespace tmc::core
