#include "core/sweep_runner.h"

namespace tmc::core {

namespace {
// Set inside pool workers so a nested map() runs its batch inline instead of
// queueing tasks its own (blocked) worker would never pick up.
thread_local bool in_sweep_worker = false;
}  // namespace

int SweepRunner::resolve_threads(int requested) {
  if (requested > 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

SweepRunner::SweepRunner(int threads) : threads_(resolve_threads(threads)) {
  if (threads_ > 1) {
    workers_.reserve(static_cast<std::size_t>(threads_));
    for (int i = 0; i < threads_; ++i) {
      workers_.emplace_back([this] { worker_loop(); });
    }
  }
}

SweepRunner::~SweepRunner() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  work_ready_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void SweepRunner::worker_loop() {
  in_sweep_worker = true;
  for (;;) {
    Task task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_ready_.wait(lock, [&] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping, queue drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

void SweepRunner::run_indexed(std::size_t count,
                              const std::function<void(std::size_t)>& body,
                              const Progress& progress) {
  if (count == 0) return;
  if (workers_.empty() || in_sweep_worker) {
    for (std::size_t i = 0; i < count; ++i) {
      body(i);
      if (progress) progress(i + 1, count);
    }
    return;
  }

  struct BatchState {
    std::mutex mutex;
    std::condition_variable done_cv;
    std::size_t done = 0;
  } state;

  {
    const std::lock_guard<std::mutex> lock(mutex_);
    for (std::size_t i = 0; i < count; ++i) {
      queue_.push_back([&body, &state, i] {
        body(i);
        {
          const std::lock_guard<std::mutex> batch_lock(state.mutex);
          ++state.done;
        }
        state.done_cv.notify_one();
      });
    }
  }
  work_ready_.notify_all();

  std::size_t reported = 0;
  std::unique_lock<std::mutex> lock(state.mutex);
  while (reported < count) {
    state.done_cv.wait(lock, [&] { return state.done > reported; });
    reported = state.done;
    if (progress) {
      lock.unlock();
      progress(reported, count);
      lock.lock();
    }
  }
}

}  // namespace tmc::core
