// tmcsim -- parallel sweep execution.
//
// Every figure and ablation in the paper is a sweep of independent
// deterministic simulations (distinct configs or seeds, each with its own
// RNG and event kernel). SweepRunner farms those points across hardware
// threads through a shared work queue; because the points share no mutable
// state and `map` returns (and reports progress in) submission order, a
// sweep's output is bit-identical at any thread count.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <optional>
#include <thread>
#include <type_traits>
#include <vector>

#include "sim/unique_function.h"

namespace tmc::core {

class SweepRunner {
 public:
  /// `threads` <= 0 selects the hardware thread count; 1 runs every task
  /// inline on the calling thread (no workers are spawned).
  explicit SweepRunner(int threads = 0);
  ~SweepRunner();
  SweepRunner(const SweepRunner&) = delete;
  SweepRunner& operator=(const SweepRunner&) = delete;

  [[nodiscard]] int thread_count() const { return threads_; }

  /// Resolves the `--threads` convention: 0 ("auto") becomes the hardware
  /// thread count, everything else passes through.
  [[nodiscard]] static int resolve_threads(int requested);

  /// Invoked on the calling thread as the batch advances, with the number of
  /// tasks completed so far (monotone, final call sees done == total).
  using Progress = std::function<void(std::size_t done, std::size_t total)>;

  /// Runs `fn(0) .. fn(count-1)` across the pool and returns the results
  /// indexed by submission position. If tasks threw, the lowest-index
  /// exception is rethrown once the whole batch has settled. Calling map
  /// from inside a task runs the nested batch inline (never deadlocks the
  /// pool).
  template <typename Fn>
  auto map(std::size_t count, Fn&& fn, const Progress& progress = nullptr)
      -> std::vector<std::invoke_result_t<Fn&, std::size_t>> {
    using T = std::invoke_result_t<Fn&, std::size_t>;
    static_assert(!std::is_void_v<T>, "map tasks must return a value");
    std::vector<std::optional<T>> slots(count);
    std::vector<std::exception_ptr> errors(count);
    run_indexed(
        count,
        [&](std::size_t i) {
          try {
            slots[i].emplace(fn(i));
          } catch (...) {
            errors[i] = std::current_exception();
          }
        },
        progress);
    for (auto& error : errors) {
      if (error) std::rethrow_exception(error);
    }
    std::vector<T> results;
    results.reserve(count);
    for (auto& slot : slots) results.push_back(std::move(*slot));
    return results;
  }

 private:
  using Task = sim::UniqueFunction<void()>;

  /// Executes body(0..count-1) across the workers (or inline) and blocks
  /// until all have finished. `body` must not throw.
  void run_indexed(std::size_t count,
                   const std::function<void(std::size_t)>& body,
                   const Progress& progress);
  void worker_loop();

  int threads_ = 1;
  std::vector<std::thread> workers_;
  std::mutex mutex_;
  std::condition_variable work_ready_;
  std::deque<Task> queue_;
  bool stopping_ = false;
};

}  // namespace tmc::core
