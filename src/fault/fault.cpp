#include "fault/fault.h"

#include <cmath>
#include <cstdlib>
#include <string_view>

namespace tmc::fault {
namespace {

[[nodiscard]] sim::SimTime from_s(double seconds) {
  return sim::SimTime::nanoseconds(static_cast<std::int64_t>(seconds * 1e9));
}

/// Splits "--flag=value" / "--flag value" style arguments (the obs layer's
/// convention): returns true if `arg` names `flag`, with `value` filled and
/// `has_value` set when the '=' form carried one inline.
bool match_flag(std::string_view arg, std::string_view flag, bool& has_value,
                std::string_view& value) {
  if (arg == flag) {
    has_value = false;
    return true;
  }
  if (arg.size() > flag.size() && arg.substr(0, flag.size()) == flag &&
      arg[flag.size()] == '=') {
    has_value = true;
    value = arg.substr(flag.size() + 1);
    return true;
  }
  return false;
}

bool take_value(std::string_view flag, int argc, char** argv, int& i,
                bool has_inline, std::string_view inline_value,
                std::string& out, std::string& error) {
  if (has_inline) {
    out.assign(inline_value);
    return true;
  }
  if (i + 1 >= argc) {
    error = std::string(flag) + " requires a value";
    return false;
  }
  out = argv[++i];
  return true;
}

bool parse_double(std::string_view flag, const std::string& text, double min,
                  double* dst, std::string& error) {
  char* end = nullptr;
  const double v = std::strtod(text.c_str(), &end);
  if (end == text.c_str() || *end != '\0' || !(v >= min)) {
    error = std::string(flag) + ": expected a number >= " +
            std::to_string(min) + ", got '" + text + "'";
    return false;
  }
  *dst = v;
  return true;
}

bool parse_int(std::string_view flag, const std::string& text, long min,
               long* dst, std::string& error) {
  char* end = nullptr;
  const long v = std::strtol(text.c_str(), &end, 10);
  if (end == text.c_str() || *end != '\0' || v < min) {
    error = std::string(flag) + ": expected an integer >= " +
            std::to_string(min) + ", got '" + text + "'";
    return false;
  }
  *dst = v;
  return true;
}

}  // namespace

bool parse_cli_flag(int argc, char** argv, int& i, FaultConfig& config,
                    bool& seen, std::string& error) {
  const std::string_view arg = argv[i];
  bool has_inline = false;
  std::string_view inline_value;
  std::string text;

  const auto value_of = [&](std::string_view flag) {
    return take_value(flag, argc, argv, i, has_inline, inline_value, text,
                      error);
  };

  if (match_flag(arg, "--fault-rate", has_inline, inline_value)) {
    seen = true;
    if (value_of("--fault-rate")) {
      parse_double("--fault-rate", text, 0.0, &config.node_rate, error);
    }
    return true;
  }
  if (match_flag(arg, "--fault-dist", has_inline, inline_value)) {
    seen = true;
    if (value_of("--fault-dist")) {
      if (text == "poisson") {
        config.node_dist = FaultDist::kPoisson;
      } else if (text == "weibull") {
        config.node_dist = FaultDist::kWeibull;
      } else {
        error = "--fault-dist: expected poisson or weibull, got '" + text +
                "'";
      }
    }
    return true;
  }
  if (match_flag(arg, "--fault-shape", has_inline, inline_value)) {
    seen = true;
    if (value_of("--fault-shape")) {
      parse_double("--fault-shape", text, 0.05, &config.node_weibull_shape,
                   error);
    }
    return true;
  }
  if (match_flag(arg, "--fault-mttr", has_inline, inline_value)) {
    seen = true;
    if (value_of("--fault-mttr")) {
      parse_double("--fault-mttr", text, 0.0, &config.node_mttr_s, error);
      if (error.empty() && config.node_mttr_s <= 0.0) {
        error = "--fault-mttr: repair time must be positive";
      }
    }
    return true;
  }
  if (match_flag(arg, "--fault-link-rate", has_inline, inline_value)) {
    seen = true;
    if (value_of("--fault-link-rate")) {
      parse_double("--fault-link-rate", text, 0.0, &config.link_rate, error);
    }
    return true;
  }
  if (match_flag(arg, "--fault-link-mttr", has_inline, inline_value)) {
    seen = true;
    if (value_of("--fault-link-mttr")) {
      parse_double("--fault-link-mttr", text, 0.0, &config.link_mttr_s,
                   error);
      if (error.empty() && config.link_mttr_s <= 0.0) {
        error = "--fault-link-mttr: repair time must be positive";
      }
    }
    return true;
  }
  if (match_flag(arg, "--fault-drop", has_inline, inline_value)) {
    seen = true;
    if (value_of("--fault-drop")) {
      parse_double("--fault-drop", text, 0.0, &config.drop_prob, error);
      if (error.empty() && config.drop_prob >= 1.0) {
        error = "--fault-drop: probability must be < 1";
      }
    }
    return true;
  }
  if (match_flag(arg, "--heartbeat", has_inline, inline_value)) {
    seen = true;
    if (value_of("--heartbeat")) {
      parse_double("--heartbeat", text, 0.0, &config.heartbeat_s, error);
      if (error.empty() && config.heartbeat_s <= 0.0) {
        error = "--heartbeat: period must be positive";
      }
    }
    return true;
  }
  if (match_flag(arg, "--retry-budget", has_inline, inline_value)) {
    seen = true;
    if (value_of("--retry-budget")) {
      long v = 0;
      if (parse_int("--retry-budget", text, 0, &v, error)) {
        config.retry_budget = static_cast<int>(v);
      }
    }
    return true;
  }
  if (match_flag(arg, "--retry-backoff", has_inline, inline_value)) {
    seen = true;
    if (value_of("--retry-backoff")) {
      parse_double("--retry-backoff", text, 0.0, &config.retry_backoff_s,
                   error);
      if (error.empty() && config.retry_backoff_s <= 0.0) {
        error = "--retry-backoff: backoff must be positive";
      }
    }
    return true;
  }
  if (match_flag(arg, "--fault-restart-budget", has_inline, inline_value)) {
    seen = true;
    if (value_of("--fault-restart-budget")) {
      long v = 0;
      if (parse_int("--fault-restart-budget", text, 0, &v, error)) {
        config.restart_budget = static_cast<int>(v);
      }
    }
    return true;
  }
  if (match_flag(arg, "--fault-seed", has_inline, inline_value)) {
    seen = true;
    if (value_of("--fault-seed")) {
      long v = 0;
      if (parse_int("--fault-seed", text, 0, &v, error)) {
        config.seed = static_cast<std::uint64_t>(v);
      }
    }
    return true;
  }
  return false;
}

const char* cli_help() {
  return "  --fault-rate R          node crashes per node-second (0 = off)\n"
         "  --fault-dist D          node TTF distribution: poisson|weibull\n"
         "  --fault-shape K         Weibull shape for node TTF (default 0.7)\n"
         "  --fault-mttr S          mean node repair time, seconds\n"
         "  --fault-link-rate R     link down episodes per link-second\n"
         "  --fault-link-mttr S     mean link repair time, seconds\n"
         "  --fault-drop P          per-message drop probability\n"
         "  --heartbeat S           failure-detection period, seconds\n"
         "  --retry-budget N        resends per message before giving up\n"
         "  --retry-backoff S       base resend backoff, seconds\n"
         "  --fault-restart-budget N  restarts per job before it fails\n"
         "  --fault-seed N          seed for the fault streams\n";
}

FaultManager::FaultManager(sim::Simulation& sim, const net::Topology& topo,
                           FaultConfig config)
    : sim_(sim), topo_(topo), cfg_(config) {
  sim::Rng root(cfg_.seed);
  node_rng_ = root.split();
  link_rng_ = root.split();
  drop_rng_ = root.split();
  jitter_rng_ = root.split();
  alive_.assign(static_cast<std::size_t>(topo_.node_count()), 1);
  detected_.assign(static_cast<std::size_t>(topo_.node_count()), 1);
  link_ok_.assign(static_cast<std::size_t>(topo_.link_count()), 1);
  alive_count_ = topo_.node_count();
}

void FaultManager::set_timeline(obs::Timeline* timeline, obs::TrackId track) {
  timeline_ = timeline;
  track_ = track;
  if (timeline_ != nullptr) {
    name_node_down_ = timeline_->intern("node-down");
    name_node_up_ = timeline_->intern("node-up");
    name_link_down_ = timeline_->intern("link-down");
    name_link_up_ = timeline_->intern("link-up");
  }
}

void FaultManager::start() {
  // Initial episodes in resource-id order; every later draw happens in
  // event order, so the whole schedule is a pure function of the seed.
  if (cfg_.node_rate > 0.0) {
    for (net::NodeId n = 0; n < topo_.node_count(); ++n) arm_node(n);
    pending_ += static_cast<std::size_t>(topo_.node_count());
    sim_.schedule(from_s(cfg_.heartbeat_s), [this] { heartbeat(); });
    pending_ += 1;
  }
  if (cfg_.link_rate > 0.0) {
    for (net::LinkId l = 0; l < topo_.link_count(); ++l) arm_link(l);
    pending_ += static_cast<std::size_t>(topo_.link_count());
  }
}

bool FaultManager::link_usable(net::LinkId link) const {
  if (link_ok_[static_cast<std::size_t>(link)] == 0) return false;
  // A dead node takes its incident links with it: through-traffic stalls
  // (and is re-kicked on repair) instead of transiting a crashed router.
  const net::Topology::LinkEnds ends = topo_.link_ends(link);
  return node_alive(ends.from) && node_alive(ends.to);
}

bool FaultManager::should_drop(const net::Message& msg) {
  // System traffic (job 0) has no retry owner, so only job messages drop.
  if (cfg_.drop_prob <= 0.0 || msg.job == 0) return false;
  if (!drop_rng_.bernoulli(cfg_.drop_prob)) return false;
  ++stats_.drops;
  return true;
}

double FaultManager::draw_node_ttf() {
  const double mtbf = 1.0 / cfg_.node_rate;
  if (cfg_.node_dist == FaultDist::kWeibull) {
    const double shape = cfg_.node_weibull_shape;
    const double scale = mtbf / std::tgamma(1.0 + 1.0 / shape);
    return node_rng_.weibull(shape, scale);
  }
  return node_rng_.exponential(mtbf);
}

void FaultManager::arm_node(net::NodeId node) {
  const double ttf = draw_node_ttf();
  sim_.schedule(from_s(ttf), [this, node, ttf] {
    sum_ttf_s_ += ttf;
    crash_node(node);
  });
}

void FaultManager::crash_node(net::NodeId node) {
  alive_[static_cast<std::size_t>(node)] = 0;
  --alive_count_;
  ++stats_.crashes;
  if (timeline_ != nullptr) {
    timeline_->instant(track_, name_node_down_, sim_.now(),
                       static_cast<double>(node));
  }
  if (callbacks_.node_crash) callbacks_.node_crash(node);
  const double repair = node_rng_.exponential(cfg_.node_mttr_s);
  sim_.schedule(from_s(repair), [this, node, repair] {
    sum_repair_s_ += repair;
    repair_node(node);
  });
}

void FaultManager::repair_node(net::NodeId node) {
  alive_[static_cast<std::size_t>(node)] = 1;
  ++alive_count_;
  ++stats_.repairs;
  if (timeline_ != nullptr) {
    timeline_->instant(track_, name_node_up_, sim_.now(),
                       static_cast<double>(node));
  }
  if (callbacks_.node_repair) callbacks_.node_repair(node);
  arm_node(node);
}

void FaultManager::arm_link(net::LinkId link) {
  const double ttf = link_rng_.exponential(1.0 / cfg_.link_rate);
  sim_.schedule(from_s(ttf), [this, link] { flip_link(link); });
}

void FaultManager::flip_link(net::LinkId link) {
  char& ok = link_ok_[static_cast<std::size_t>(link)];
  ok = ok == 0 ? 1 : 0;
  double next;
  if (ok == 0) {
    ++stats_.link_downs;
    if (timeline_ != nullptr) {
      timeline_->instant(track_, name_link_down_, sim_.now(),
                         static_cast<double>(link));
    }
    if (callbacks_.link_changed) callbacks_.link_changed(link, false);
    next = link_rng_.exponential(cfg_.link_mttr_s);
  } else {
    ++stats_.link_ups;
    if (timeline_ != nullptr) {
      timeline_->instant(track_, name_link_up_, sim_.now(),
                         static_cast<double>(link));
    }
    if (callbacks_.link_changed) callbacks_.link_changed(link, true);
    next = link_rng_.exponential(1.0 / cfg_.link_rate);
  }
  sim_.schedule(from_s(next), [this, link] { flip_link(link); });
}

void FaultManager::heartbeat() {
  for (net::NodeId n = 0; n < topo_.node_count(); ++n) {
    const auto idx = static_cast<std::size_t>(n);
    if (detected_[idx] == alive_[idx]) continue;
    detected_[idx] = alive_[idx];
    if (callbacks_.node_detected) {
      callbacks_.node_detected(n, alive_[idx] == 0);
    }
  }
  sim_.schedule(from_s(cfg_.heartbeat_s), [this] { heartbeat(); });
}

FaultStats FaultManager::stats() const {
  FaultStats s = stats_;
  if (s.crashes > 0) {
    s.mtbf_observed_s = sum_ttf_s_ / static_cast<double>(s.crashes);
  }
  if (s.repairs > 0) {
    s.mttr_observed_s = sum_repair_s_ / static_cast<double>(s.repairs);
  }
  return s;
}

}  // namespace tmc::fault
