// tmcsim -- deterministic fault injection and recovery.
//
// FaultManager drives every modelled failure through the ordinary event
// queue: seeded Poisson or Weibull time-to-failure node crashes with
// exponential repair, link down/up episodes, and probabilistic message
// drop. All randomness comes from split child streams of one seed, initial
// episodes are armed in resource-id order and every later draw happens in
// event order inside one (sequential, deterministic) machine, so a faulty
// run replays bit-identically at any --threads count -- the sweep runner
// farms whole machines, never events.
//
// The failure model is fail-stop: a crashed node freezes (no new work
// dispatches until repair; the at-most-one charge in flight at the crash
// instant completes), a downed link stalls traffic (messages park and are
// re-kicked on repair), and a message drop surfaces to the comm system's
// retry machinery. Detection is by heartbeat: every heartbeat_s the manager
// compares ground truth against the detected state and reports edges to the
// scheduler, which aborts and requeues the affected jobs under a per-job
// restart budget.
//
// When FaultConfig::enabled() is false no FaultManager is constructed and
// every hook in net/node/sched/core stays a null-pointer branch, keeping
// fault-free output byte-identical to a build without this subsystem.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "net/network.h"
#include "net/topology.h"
#include "obs/timeline.h"
#include "sim/rng.h"
#include "sim/simulation.h"

namespace tmc::fault {

/// Time-to-failure distribution for node crashes.
enum class FaultDist : std::uint8_t {
  kPoisson,  // exponential TTF (memoryless)
  kWeibull,  // shape < 1 gives infant-mortality clustering
};

struct FaultConfig {
  /// Node crash rate, failures per node-second (0 = nodes never crash).
  /// The per-node MTBF is 1/node_rate.
  double node_rate = 0.0;
  FaultDist node_dist = FaultDist::kPoisson;
  /// Weibull shape for node TTF (used when node_dist == kWeibull).
  double node_weibull_shape = 0.7;
  /// Mean node repair time, seconds (exponential).
  double node_mttr_s = 2.0;
  /// Link down rate, episodes per link-second (0 = links never fail).
  double link_rate = 0.0;
  /// Mean link repair time, seconds (exponential).
  double link_mttr_s = 1.0;
  /// Probability an injected message is dropped at the source.
  double drop_prob = 0.0;
  /// Scheduler heartbeat period, seconds: dead/recovered nodes are
  /// detected at the first tick after the state change.
  double heartbeat_s = 0.25;
  /// Resend attempts per message before the delivery is abandoned and the
  /// owning job aborted.
  int retry_budget = 8;
  /// Base resend backoff, seconds; attempt k waits backoff * 2^k, plus a
  /// seeded jitter of up to +100%.
  double retry_backoff_s = 0.005;
  /// Restarts allowed per job before it is failed instead of requeued.
  int restart_budget = 3;
  /// Seed for the fault streams (independent of the workload seed).
  std::uint64_t seed = 42;

  [[nodiscard]] bool enabled() const {
    return node_rate > 0.0 || link_rate > 0.0 || drop_prob > 0.0;
  }
};

/// Counters of the fault plane. FaultManager fills the injection side;
/// Multicomputer::stats() merges the comm retry and scheduler restart
/// counters so reports have one place to look.
struct FaultStats {
  std::uint64_t crashes = 0;
  std::uint64_t repairs = 0;
  std::uint64_t link_downs = 0;
  std::uint64_t link_ups = 0;
  std::uint64_t drops = 0;          // messages dropped at injection
  std::uint64_t retries = 0;        // comm resend attempts
  std::uint64_t messages_lost = 0;  // deliveries abandoned (budget spent)
  std::uint64_t job_restarts = 0;
  std::uint64_t jobs_failed = 0;
  /// Realized means over the injected episodes (0 when none happened).
  double mtbf_observed_s = 0.0;
  double mttr_observed_s = 0.0;
};

/// Edge notifications out of the fault plane, wired by the machine.
struct FaultCallbacks {
  /// Ground-truth transitions (the instant the hardware changes state).
  std::function<void(net::NodeId)> node_crash;
  std::function<void(net::NodeId)> node_repair;
  /// Heartbeat-detected transitions (what the scheduler learns, late).
  std::function<void(net::NodeId, bool down)> node_detected;
  /// Link state changed; `up` episodes should kick parked traffic.
  std::function<void(net::LinkId, bool up)> link_changed;
};

/// Parses one --fault-*/--heartbeat/--retry-budget flag at argv[i],
/// advancing i past a consumed value argument. Returns true if the flag was
/// recognised (whether or not its value parsed; check `error`). Sets `seen`
/// so callers that do not support faults can reject the flags outright.
bool parse_cli_flag(int argc, char** argv, int& i, FaultConfig& config,
                    bool& seen, std::string& error);

/// One-line-per-flag help text for bench --help output.
[[nodiscard]] const char* cli_help();

class FaultManager final : public net::FaultPlane {
 public:
  FaultManager(sim::Simulation& sim, const net::Topology& topo,
               FaultConfig config);

  FaultManager(const FaultManager&) = delete;
  FaultManager& operator=(const FaultManager&) = delete;

  void set_callbacks(FaultCallbacks callbacks) {
    callbacks_ = std::move(callbacks);
  }

  /// Optional timeline track: fault/recover instants land on it
  /// (node-down/node-up/link-down/link-up, value = resource id).
  void set_timeline(obs::Timeline* timeline, obs::TrackId track);

  /// Arms the initial per-node and per-link episodes (in id order) and the
  /// heartbeat. Call once, before the run starts.
  void start();

  // --- net::FaultPlane ---------------------------------------------------
  [[nodiscard]] bool node_alive(net::NodeId node) const override {
    return alive_[static_cast<std::size_t>(node)] != 0;
  }
  [[nodiscard]] bool link_usable(net::LinkId link) const override;
  bool should_drop(const net::Message& msg) override;

  /// Pending fault events (constant while running: one per armed node
  /// chain, one per armed link chain, one heartbeat). The machine's run
  /// loop stops when only these remain and all jobs are done.
  [[nodiscard]] std::size_t pending_events() const { return pending_; }

  [[nodiscard]] int alive_nodes() const { return alive_count_; }
  [[nodiscard]] int node_count() const {
    return static_cast<int>(alive_.size());
  }
  /// Seeded resend jitter in [0, 1), drawn in event order.
  [[nodiscard]] double jitter() { return jitter_rng_.uniform01(); }

  [[nodiscard]] const FaultConfig& config() const { return cfg_; }
  /// Injection-side counters and realized MTBF/MTTR.
  [[nodiscard]] FaultStats stats() const;

 private:
  void arm_node(net::NodeId node);
  void crash_node(net::NodeId node);
  void repair_node(net::NodeId node);
  void arm_link(net::LinkId link);
  void flip_link(net::LinkId link);
  void heartbeat();
  [[nodiscard]] double draw_node_ttf();

  sim::Simulation& sim_;
  const net::Topology& topo_;
  FaultConfig cfg_;
  FaultCallbacks callbacks_;
  sim::Rng node_rng_;
  sim::Rng link_rng_;
  sim::Rng drop_rng_;
  sim::Rng jitter_rng_;
  std::vector<char> alive_;     // ground truth, per node
  std::vector<char> detected_;  // heartbeat view, per node
  std::vector<char> link_ok_;   // ground truth, per link
  int alive_count_ = 0;
  std::size_t pending_ = 0;
  FaultStats stats_;
  double sum_ttf_s_ = 0.0;
  double sum_repair_s_ = 0.0;
  obs::Timeline* timeline_ = nullptr;
  obs::TrackId track_ = 0;
  obs::NameId name_node_down_ = 0;
  obs::NameId name_node_up_ = 0;
  obs::NameId name_link_down_ = 0;
  obs::NameId name_link_up_ = 0;
};

}  // namespace tmc::fault
