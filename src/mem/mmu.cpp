#include "mem/mmu.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>
#include <utility>

#include "obs/metrics.h"

namespace tmc::mem {

void Block::release() {
  if (mmu_ == nullptr) return;
  Mmu* mmu = mmu_;
  mmu_ = nullptr;
  mmu->release_range(offset_, size_);
  mmu->pump();
}

Mmu::Mmu(sim::Simulation& sim, std::size_t capacity, sim::SimTime service_time,
         MmuDiscipline discipline)
    : sim_(sim),
      capacity_(capacity),
      service_time_(service_time),
      discipline_(discipline) {
  if (capacity == 0) throw std::invalid_argument("Mmu capacity must be > 0");
  // Paid at construction so the steady state stays allocation-free: the
  // free list fragments and recoalesces under churn, and the grant pool
  // fills on the first burst of requests.
  free_.reserve(32);
  grants_.reserve(16);
  free_.push_back(FreeRange{0, capacity});
}

std::optional<std::size_t> Mmu::carve(std::size_t bytes) {
  for (auto it = free_.begin(); it != free_.end(); ++it) {
    if (it->size >= bytes) {
      const std::size_t offset = it->offset;
      it->offset += bytes;
      it->size -= bytes;
      if (it->size == 0) free_.erase(it);
      used_ += bytes;
      high_watermark_ = std::max(high_watermark_, used_);
      usage_.update(sim_.now(), static_cast<double>(used_));
      return offset;
    }
  }
  return std::nullopt;
}

void Mmu::release_range(std::size_t offset, std::size_t size) {
  assert(size <= used_);
  used_ -= size;
  usage_.update(sim_.now(), static_cast<double>(used_));
  // Insert sorted by offset and coalesce with neighbours.
  auto it = std::lower_bound(
      free_.begin(), free_.end(), offset,
      [](const FreeRange& r, std::size_t off) { return r.offset < off; });
  it = free_.insert(it, FreeRange{offset, size});
  // Coalesce with successor.
  if (auto next = std::next(it);
      next != free_.end() && it->offset + it->size == next->offset) {
    it->size += next->size;
    free_.erase(next);
  }
  // Coalesce with predecessor.
  if (it != free_.begin()) {
    auto prev = std::prev(it);
    if (prev->offset + prev->size == it->offset) {
      prev->size += it->size;
      free_.erase(it);
    }
  }
}

std::uint32_t Mmu::acquire_grant(std::size_t offset, std::size_t bytes,
                                 Grant on_grant, const void* owner) {
  std::uint32_t slot;
  if (grant_free_ != kFreeListEnd) {
    slot = grant_free_;
    grant_free_ = grants_[slot].next_free;
  } else {
    if (grants_.size() == grants_.capacity()) {
      grants_.reserve(std::max<std::size_t>(16, grants_.size() * 2));
    }
    slot = static_cast<std::uint32_t>(grants_.size());
    grants_.emplace_back();
  }
  GrantSlot& g = grants_[slot];
  g.offset = offset;
  g.bytes = bytes;
  g.on_grant = std::move(on_grant);
  g.owner = owner;
  g.live = true;
  return slot;
}

void Mmu::retire_grant(std::uint32_t slot) {
  GrantSlot& g = grants_[slot];
  g.live = false;
  ++g.generation;
  g.next_free = grant_free_;
  grant_free_ = slot;
}

void Mmu::fire_grant(std::uint32_t slot, std::uint32_t generation) {
  GrantSlot& g = grants_[slot];
  if (!g.live || g.generation != generation) return;  // discarded grant
  const std::size_t offset = g.offset;
  const std::size_t bytes = g.bytes;
  Grant cb = std::move(g.on_grant);
  // Retire before running the callback: it may request again and reuse the
  // slot.
  retire_grant(slot);
  cb(Block(this, offset, bytes));
}

void Mmu::deliver(std::size_t offset, std::size_t bytes, Grant on_grant,
                  const void* owner) {
  ++alloc_count_;
  const std::uint32_t slot =
      acquire_grant(offset, bytes, std::move(on_grant), owner);
  auto fire = [this, slot, generation = grants_[slot].generation] {
    fire_grant(slot, generation);
  };
  if (pump_batching_) {
    pump_batch_.add(std::move(fire));
  } else {
    sim_.schedule(service_time_, std::move(fire));
  }
}

void Mmu::request(std::size_t bytes, Grant on_grant, const void* owner) {
  if (bytes == 0 || bytes > capacity_) {
    throw std::invalid_argument("Mmu request of " + std::to_string(bytes) +
                                " bytes cannot be satisfied (capacity " +
                                std::to_string(capacity_) + ")");
  }
  // kFifo never overtakes an already-blocked request; kFirstFit serves any
  // fitting request immediately (whatever is still queued after the last
  // pump() does not fit anyway).
  if (queue_.empty() || discipline_ == MmuDiscipline::kFirstFit) {
    if (auto offset = carve(bytes)) {
      deliver(*offset, bytes, std::move(on_grant), owner);
      return;
    }
  }
  ++blocked_count_;
  obs::bump(alloc_waits_);
  if (tracer_ != nullptr) {
    TMC_TRACE(*tracer_, sim_.now(), sim::TraceCategory::kMemory, label_,
              "blocked request " << bytes << "B (free " << bytes_free()
                                 << "B, queued " << queue_.size() + 1 << ")");
  }
  queue_.push_back(Pending{bytes, std::move(on_grant), sim_.now(), owner});
}

std::optional<Block> Mmu::try_alloc(std::size_t bytes) {
  if (bytes == 0 || bytes > capacity_) return std::nullopt;
  if (!queue_.empty() && discipline_ == MmuDiscipline::kFifo) {
    return std::nullopt;
  }
  if (auto offset = carve(bytes)) {
    ++alloc_count_;
    return Block(this, *offset, bytes);
  }
  return std::nullopt;
}

void Mmu::pump() {
  // Grants found in one scan all fire at now + service_time; batching them
  // through one bulk insert preserves their relative order (consecutive
  // sequence numbers, oldest request first) while touching the event heap
  // once. No user code runs inside the scan, so the scratch batch cannot be
  // re-entered.
  assert(!pump_batching_ && "pump() re-entered mid-scan");
  pump_batching_ = true;
  if (discipline_ == MmuDiscipline::kFifo) {
    while (!queue_.empty()) {
      auto offset = carve(queue_.front().bytes);
      if (!offset) break;  // head-of-line blocking
      Pending head = std::move(queue_.front());
      queue_.pop_front();
      total_block_time_ += sim_.now() - head.enqueued;
      obs::observe(grant_latency_, (sim_.now() - head.enqueued).to_seconds());
      deliver(*offset, head.bytes, std::move(head.on_grant), head.owner);
    }
  } else {
    // First-fit scan: grant anything that fits, oldest first.
    for (auto it = queue_.begin(); it != queue_.end();) {
      auto offset = carve(it->bytes);
      if (!offset) {
        ++it;
        continue;
      }
      Pending granted = std::move(*it);
      it = queue_.erase(it);
      total_block_time_ += sim_.now() - granted.enqueued;
      obs::observe(grant_latency_,
                   (sim_.now() - granted.enqueued).to_seconds());
      deliver(*offset, granted.bytes, std::move(granted.on_grant),
              granted.owner);
    }
  }
  pump_batching_ = false;
  if (!pump_batch_.empty()) sim_.schedule_batch(service_time_, pump_batch_);
}

std::size_t Mmu::discard_pending() {
  std::size_t n = 0;
  while (!queue_.empty()) {
    Pending head = std::move(queue_.front());
    queue_.pop_front();
    ++n;
    // head.on_grant destroyed here; may release blocks and re-enter pump(),
    // which is safe: the queue entry was already removed.
  }
  // Granted-but-undelivered allocations: their delivery events may have
  // been discarded with the event queue, so drop the parked callbacks too.
  // The arena range stays carved (teardown only). Destroying a callback can
  // release blocks and pump new grants into the pool, so iterate by index
  // and let the caller loop to a fixed point.
  for (std::size_t slot = 0; slot < grants_.size(); ++slot) {
    if (!grants_[slot].live) continue;
    Grant doomed = std::move(grants_[slot].on_grant);
    retire_grant(static_cast<std::uint32_t>(slot));
    ++n;
  }
  return n;
}

std::size_t Mmu::cancel_owner(const void* owner) {
  if (owner == nullptr) return 0;
  std::size_t n = 0;
  // Collect doomed callbacks and destroy them only after the scans: a
  // callback's destructor may release Blocks, which re-enters pump() and
  // would invalidate the iterators below.
  std::vector<Grant> doomed;
  for (auto it = queue_.begin(); it != queue_.end();) {
    if (it->owner == owner) {
      doomed.push_back(std::move(it->on_grant));
      it = queue_.erase(it);
      ++n;
    } else {
      ++it;
    }
  }
  for (std::size_t slot = 0; slot < grants_.size(); ++slot) {
    GrantSlot& g = grants_[slot];
    if (!g.live || g.owner != owner) continue;
    const std::size_t offset = g.offset;
    const std::size_t bytes = g.bytes;
    doomed.push_back(std::move(g.on_grant));
    retire_grant(static_cast<std::uint32_t>(slot));
    release_range(offset, bytes);
    ++n;
  }
  if (n > 0) pump();
  return n;  // `doomed` destructs here; nested pumps are safe now.
}

std::size_t Mmu::largest_free_range() const {
  std::size_t best = 0;
  for (const auto& range : free_) best = std::max(best, range.size);
  return best;
}

}  // namespace tmc::mem
