// tmcsim -- per-node memory management unit.
//
// The paper (section 3.2) implements a software MMU on every Transputer that
// manages the node's 4 MB local store and, in particular, allocates the
// mailbox buffers used by the store-and-forward communication system. A
// message "can suffer a delay if an intermediate processor delays allocation
// of memory for the mailbox" -- memory contention is one of the two system
// overheads the paper's conclusions rest on, so we model the allocator
// structurally: a real first-fit free-list over a fixed arena, with a FIFO
// queue of blocked requests that are granted as memory is released.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "sim/simulation.h"
#include "sim/stats.h"
#include "sim/time.h"
#include "sim/trace.h"
#include "sim/unique_function.h"

namespace tmc::obs {
struct Counter;
class Distribution;
}  // namespace tmc::obs

namespace tmc::mem {

class Mmu;

/// RAII handle to an allocated region. Move-only; releasing (or destroying)
/// the block returns the memory to the MMU and may unblock queued requests.
/// The owning Mmu must outlive all of its Blocks.
class Block {
 public:
  Block() = default;
  Block(Block&& other) noexcept { swap(other); }
  Block& operator=(Block&& other) noexcept {
    if (this != &other) {
      release();
      swap(other);
    }
    return *this;
  }
  Block(const Block&) = delete;
  Block& operator=(const Block&) = delete;
  ~Block() { release(); }

  /// Frees the region (no-op on an empty handle).
  void release();

  [[nodiscard]] bool valid() const { return mmu_ != nullptr; }
  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] std::size_t offset() const { return offset_; }

 private:
  friend class Mmu;
  Block(Mmu* mmu, std::size_t offset, std::size_t size)
      : mmu_(mmu), offset_(offset), size_(size) {}
  void swap(Block& other) noexcept {
    std::swap(mmu_, other.mmu_);
    std::swap(offset_, other.offset_);
    std::swap(size_, other.size_);
  }

  Mmu* mmu_ = nullptr;
  std::size_t offset_ = 0;
  std::size_t size_ = 0;
};

/// Queueing discipline for blocked allocation requests.
enum class MmuDiscipline {
  /// Strict FIFO with head-of-line blocking: if the oldest blocked request
  /// does not fit, younger ones wait behind it. Starvation-free, but under
  /// heavy pressure a large blocked request can wedge the whole node
  /// (store-and-forward buffer deadlock).
  kFifo,
  /// First-fit scan: every release re-scans the whole queue in arrival
  /// order and grants anything that now fits. Small requests (message
  /// consumption, result deposits) keep flowing past a blocked large one --
  /// the behaviour of the era's mailbox allocators, and what lets the
  /// paper's system sustain multiprogramming level 16 at the memory limit
  /// (thrashing gracefully instead of deadlocking).
  kFirstFit,
};

/// First-fit free-list allocator over a fixed-size arena with a queue of
/// blocked allocation requests.
///
/// Requests are granted through the event queue (never synchronously inside
/// `request`), after `service_time` of allocator latency; this keeps grant
/// ordering deterministic and reentrancy-free.
class Mmu {
 public:
  using Grant = sim::UniqueFunction<void(Block)>;

  /// `capacity` bytes of arena; `service_time` is charged per allocation.
  Mmu(sim::Simulation& sim, std::size_t capacity,
      sim::SimTime service_time = sim::SimTime::zero(),
      MmuDiscipline discipline = MmuDiscipline::kFirstFit);

  Mmu(const Mmu&) = delete;
  Mmu& operator=(const Mmu&) = delete;

  /// Requests `bytes` (> 0, <= capacity); `on_grant` receives the Block when
  /// the allocation succeeds (possibly after blocking on memory pressure).
  /// Throws std::invalid_argument if the request can never be satisfied.
  /// `owner` optionally tags the request for cancel_owner (fault mode: a
  /// crashed node must be able to retract a dead process's pending request).
  void request(std::size_t bytes, Grant on_grant, const void* owner = nullptr);

  /// Immediate allocation attempt that never blocks or queues.
  [[nodiscard]] std::optional<Block> try_alloc(std::size_t bytes);

  /// Destroys all queued (blocked) requests and all granted-but-undelivered
  /// allocations without running their callbacks (teardown aid: grant
  /// callbacks may own Blocks of other MMUs). Returns the number discarded.
  std::size_t discard_pending();

  /// Retracts every request tagged with `owner`: queued requests are dropped
  /// and granted-but-undelivered allocations are returned to the arena, all
  /// without running their callbacks. Freed memory is pumped to waiters.
  /// Returns the number retracted. No-op for a null owner.
  std::size_t cancel_owner(const void* owner);

  /// Optional trace sink (category kMemory); owner must outlive us.
  /// `label` names this node in trace lines.
  void set_tracer(const sim::Tracer* tracer, std::string label) {
    tracer_ = tracer;
    label_ = std::move(label);
  }

  /// Optional metric handles (null = off): `alloc_waits` counts requests
  /// that blocked; `grant_latency` observes each blocked request's queueing
  /// delay in seconds. Owner (the obs registry) must outlive us.
  void set_metrics(obs::Counter* alloc_waits,
                   obs::Distribution* grant_latency) {
    alloc_waits_ = alloc_waits;
    grant_latency_ = grant_latency;
  }

  // --- observability ---------------------------------------------------
  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  [[nodiscard]] std::size_t bytes_used() const { return used_; }
  [[nodiscard]] std::size_t bytes_free() const { return capacity_ - used_; }
  [[nodiscard]] std::size_t high_watermark() const { return high_watermark_; }
  [[nodiscard]] std::size_t pending_requests() const { return queue_.size(); }
  [[nodiscard]] std::uint64_t alloc_count() const { return alloc_count_; }
  [[nodiscard]] std::uint64_t blocked_count() const { return blocked_count_; }
  /// Largest single allocation currently possible (contiguity-limited).
  [[nodiscard]] std::size_t largest_free_range() const;
  [[nodiscard]] std::size_t free_range_count() const { return free_.size(); }
  /// Total simulated time requests have spent blocked in the queue.
  [[nodiscard]] sim::SimTime total_block_time() const { return total_block_time_; }
  /// Time-averaged bytes in use.
  [[nodiscard]] double average_bytes_used() const {
    return usage_.average(sim_.now());
  }

 private:
  friend class Block;

  struct FreeRange {
    std::size_t offset;
    std::size_t size;
  };
  struct Pending {
    std::size_t bytes;
    Grant on_grant;
    sim::SimTime enqueued;
    const void* owner = nullptr;
  };
  /// A granted-but-not-yet-delivered allocation parked in the grant pool.
  /// The event scheduled by deliver() captures only {this, slot, generation}
  /// (inline in UniqueFunction's small buffer), so granting never allocates;
  /// the generation tag keeps an event for a discarded grant from touching a
  /// reused slot.
  struct GrantSlot {
    std::size_t offset = 0;
    std::size_t bytes = 0;
    Grant on_grant;
    const void* owner = nullptr;
    std::uint32_t generation = 0;
    std::uint32_t next_free = kFreeListEnd;
    bool live = false;
  };
  static constexpr std::uint32_t kFreeListEnd = 0xffffffffu;

  /// Carves `bytes` from the free list; nullopt if no range fits.
  std::optional<std::size_t> carve(std::size_t bytes);
  void release_range(std::size_t offset, std::size_t size);
  /// Grants queued requests that now fit, per the discipline. Multi-grant
  /// rounds (the first-fit scan a broadcast's buffer releases trigger) are
  /// committed through one EventQueue bulk insert.
  void pump();
  void deliver(std::size_t offset, std::size_t bytes, Grant on_grant,
               const void* owner);
  std::uint32_t acquire_grant(std::size_t offset, std::size_t bytes,
                              Grant on_grant, const void* owner);
  void fire_grant(std::uint32_t slot, std::uint32_t generation);
  void retire_grant(std::uint32_t slot);

  sim::Simulation& sim_;
  std::size_t capacity_;
  sim::SimTime service_time_;
  MmuDiscipline discipline_;
  const sim::Tracer* tracer_ = nullptr;
  std::string label_;
  obs::Counter* alloc_waits_ = nullptr;
  obs::Distribution* grant_latency_ = nullptr;
  std::vector<FreeRange> free_;  // sorted by offset, coalesced
  std::deque<Pending> queue_;
  std::vector<GrantSlot> grants_;
  std::uint32_t grant_free_ = kFreeListEnd;
  /// While pump() scans, deliver() appends grant events here instead of
  /// scheduling them one by one; the scan commits the batch in one insert.
  sim::EventBatch pump_batch_;
  bool pump_batching_ = false;
  std::size_t used_ = 0;
  std::size_t high_watermark_ = 0;
  std::uint64_t alloc_count_ = 0;
  std::uint64_t blocked_count_ = 0;
  sim::SimTime total_block_time_;
  sim::TimeWeighted usage_;
};

}  // namespace tmc::mem
