// tmcsim -- unidirectional communication link.
//
// Each physical Transputer wire is full duplex; we model each direction as an
// independent FIFO server. Transfers are granted in request order (the link
// "busy until" horizon advances per reservation), which is exactly a FIFO
// queue without materialising queue nodes.
#pragma once

#include <cstdint>

#include "sim/stats.h"
#include "sim/time.h"

namespace tmc::net {

class Link {
 public:
  /// Reserves the link for `duration` starting no earlier than `now`.
  /// Returns the transfer's completion time; requests are served FIFO.
  sim::SimTime reserve(sim::SimTime now, sim::SimTime duration,
                       std::size_t bytes) {
    const sim::SimTime start = busy_until_ > now ? busy_until_ : now;
    queueing_ += start - now;
    busy_until_ = start + duration;
    busy_time_ += duration;
    ++transfers_;
    bytes_ += bytes;
    return busy_until_;
  }

  [[nodiscard]] sim::SimTime busy_until() const { return busy_until_; }
  [[nodiscard]] std::uint64_t transfers() const { return transfers_; }
  [[nodiscard]] std::uint64_t bytes_carried() const { return bytes_; }
  /// Total time transfers spent queued behind earlier transfers.
  [[nodiscard]] sim::SimTime queueing_time() const { return queueing_; }
  /// Fraction of [0, now] the link spent transferring. Reserved intervals
  /// are disjoint, so busy time within [0, now] is the total reserved time
  /// minus whatever extends past `now`.
  [[nodiscard]] double utilization(sim::SimTime now) const {
    if (now.is_zero()) return 0.0;
    const sim::SimTime future =
        busy_until_ > now ? busy_until_ - now : sim::SimTime::zero();
    return (busy_time_ - future) / now;
  }

 private:
  sim::SimTime busy_until_;
  sim::SimTime busy_time_;
  sim::SimTime queueing_;
  std::uint64_t transfers_ = 0;
  std::uint64_t bytes_ = 0;
};

}  // namespace tmc::net
