// tmcsim -- network message descriptor.
#pragma once

#include <cstddef>
#include <cstdint>

#include "net/topology.h"

namespace tmc::net {

/// Endpoint identifier: a process id in the scheduling layer. The network
/// itself only routes on node ids; endpoints ride along for final delivery.
/// The canonical encoding packs (job, rank) with the rank in the low bits,
/// so layers that index per-job tables can split an id without consulting
/// the scheduler.
using EndpointId = std::uint64_t;

/// Low bits of an EndpointId holding the within-job rank.
inline constexpr unsigned kEndpointRankBits = 20;

[[nodiscard]] constexpr std::uint64_t endpoint_job(EndpointId id) {
  return id >> kEndpointRankBits;
}
[[nodiscard]] constexpr std::uint64_t endpoint_rank(EndpointId id) {
  return id & ((EndpointId{1} << kEndpointRankBits) - 1);
}

struct Message {
  std::uint64_t id = 0;
  NodeId src_node = kInvalidNode;
  NodeId dst_node = kInvalidNode;
  EndpointId src_endpoint = 0;
  EndpointId dst_endpoint = 0;
  /// Owning job (for coscheduling progress gates); 0 = system traffic.
  std::uint32_t job = 0;
  int tag = 0;
  std::size_t bytes = 0;
  /// Timeline flow id riding along for causal tracing: the send emits a
  /// flow-start under this id, the mailbox deposit the matching finish.
  /// 0 (tracing off) means no flow events are recorded for this message.
  std::uint64_t flow = 0;
  /// Job incarnation at send time (fault mode only; 0 otherwise). A job
  /// abort bumps the comm system's incarnation counter, so deliveries and
  /// queued resends addressed to an earlier life of the job are discarded
  /// instead of reaching its restarted processes.
  std::uint32_t incarnation = 0;
  /// Fault-mode resend attempts already made for this logical message.
  std::uint16_t attempts = 0;
};

}  // namespace tmc::net
