#include "net/network.h"

#include <cassert>
#include <stdexcept>
#include <utility>

namespace tmc::net {
namespace {

sim::SimTime transfer_time(const NetworkParams& p, std::size_t payload_bytes) {
  return p.per_hop_latency +
         p.per_byte * static_cast<std::int64_t>(payload_bytes + p.header_bytes);
}

std::vector<Link> make_links(const Topology& topo) {
  return std::vector<Link>(static_cast<std::size_t>(topo.link_count()));
}

void check_mmus(const Topology& topo, const std::vector<mem::Mmu*>& mmus) {
  if (static_cast<int>(mmus.size()) != topo.node_count()) {
    throw std::invalid_argument("network needs one MMU per node");
  }
}

}  // namespace

StoreForwardNetwork::StoreForwardNetwork(sim::Simulation& sim,
                                         const Topology& topo,
                                         std::vector<mem::Mmu*> mmus,
                                         NetworkParams params)
    : sim_(sim),
      topo_(topo),
      routing_(topo),
      mmus_(std::move(mmus)),
      params_(params),
      links_(make_links(topo)) {
  check_mmus(topo_, mmus_);
}

void StoreForwardNetwork::send(Message msg, mem::Block payload) {
  assert(payload.valid() && "sender must provide the source buffer");
  ++messages_;
  payload_bytes_ += msg.bytes;
  if (tracer_ != nullptr) {
    TMC_TRACE(*tracer_, sim_.now(), sim::TraceCategory::kNetwork, "net",
              "send m" << msg.id << " " << msg.src_node << "->"
                       << msg.dst_node << " " << msg.bytes << "B tag "
                       << msg.tag);
  }
  const std::size_t pkt = params_.packet_bytes;
  if (msg.src_node == msg.dst_node || pkt == 0 || msg.bytes <= pkt) {
    forward(msg, msg.src_node, std::move(payload), msg.bytes, nullptr);
    return;
  }
  // Fragment: packets pipeline across hops independently and reassemble at
  // the destination. The source's whole-message buffer stays pinned until
  // the last packet has left the source node.
  const int packets =
      static_cast<int>((msg.bytes + pkt - 1) / pkt);
  Reassembly& reassembly = reassembly_[msg.id];
  reassembly.msg = msg;
  reassembly.packets_remaining = packets;
  auto hold = std::make_shared<mem::Block>(std::move(payload));
  std::size_t remaining = msg.bytes;
  for (int i = 0; i < packets; ++i) {
    const std::size_t fragment = std::min(pkt, remaining);
    remaining -= fragment;
    forward(msg, msg.src_node, mem::Block{}, fragment, hold);
  }
}

void StoreForwardNetwork::kick() {
  std::vector<Parked> retry;
  retry.swap(parked_);
  for (auto& p : retry) {
    forward(p.msg, p.at, std::move(p.held), p.fragment_bytes,
            std::move(p.source_hold));
  }
}

void StoreForwardNetwork::forward(Message msg, NodeId at, mem::Block held,
                                  std::size_t fragment_bytes,
                                  std::shared_ptr<mem::Block> source_hold) {
  if (at == msg.dst_node) {
    assert(deliver_ && "no delivery handler installed");
    if (fragment_bytes == msg.bytes) {
      ++delivered_;
      deliver_(msg, std::move(held));
    } else {
      arrive_fragment(msg, std::move(held));
    }
    return;
  }
  if (!may_progress(msg)) {
    // The owning job is descheduled: its daemons are not running, so the
    // message waits here, pinning its buffer at this node, until kick().
    if (tracer_ != nullptr) {
      TMC_TRACE(*tracer_, sim_.now(), sim::TraceCategory::kNetwork, "net",
                "park m" << msg.id << " at node " << at << " (job "
                         << msg.job << " descheduled)");
    }
    parked_.push_back(Parked{msg, at, std::move(held), fragment_bytes,
                             std::move(source_hold)});
    return;
  }
  const NodeId next = routing_.next_hop(at, msg.dst_node);
  const auto link_id = topo_.link_between(at, next);
  assert(link_id.has_value());

  // Store-and-forward: the whole unit must be buffered at the next node
  // before it can leave this one. Under memory pressure this request blocks
  // in `next`'s MMU queue -- the delay the paper attributes to intermediate
  // processors delaying mailbox allocation.
  mmus_[static_cast<std::size_t>(next)]->request(
      fragment_bytes + params_.header_bytes,
      [this, msg, next, fragment_bytes, link_id = *link_id,
       held = std::move(held),
       source_hold = std::move(source_hold)](mem::Block next_buf) mutable {
        Link& link = links_[static_cast<std::size_t>(link_id)];
        const sim::SimTime done =
            link.reserve(sim_.now(), transfer_time(params_, fragment_bytes),
                         fragment_bytes + params_.header_bytes);
        sim_.schedule_at(
            done, [this, msg, next, fragment_bytes, held = std::move(held),
                   source_hold = std::move(source_hold),
                   next_buf = std::move(next_buf)]() mutable {
              ++hops_;
              held.release();      // the copy has left this node
              source_hold.reset();  // last packet out frees the source
              if (hop_hook_) hop_hook_(next, msg, fragment_bytes);
              forward(msg, next, std::move(next_buf), fragment_bytes,
                      nullptr);
            });
      });
}

void StoreForwardNetwork::arrive_fragment(const Message& msg,
                                          mem::Block held) {
  const auto it = reassembly_.find(msg.id);
  assert(it != reassembly_.end());
  Reassembly& reassembly = it->second;
  if (!reassembly.alloc_requested) {
    reassembly.alloc_requested = true;
    mmus_[static_cast<std::size_t>(msg.dst_node)]->request(
        msg.bytes + params_.header_bytes,
        [this, id = msg.id](mem::Block big) {
          const auto entry = reassembly_.find(id);
          if (entry == reassembly_.end()) return;  // torn down
          entry->second.buffer = std::move(big);
          entry->second.fragments.clear();  // packets copied in, freed
          try_finish_reassembly(id);
        });
  }
  if (reassembly.buffer.has_value()) {
    held.release();  // copied straight into the message buffer
  } else {
    reassembly.fragments.push_back(std::move(held));
  }
  --reassembly.packets_remaining;
  try_finish_reassembly(msg.id);
}

void StoreForwardNetwork::try_finish_reassembly(std::uint64_t id) {
  const auto it = reassembly_.find(id);
  if (it == reassembly_.end()) return;
  Reassembly& reassembly = it->second;
  if (reassembly.packets_remaining > 0 || !reassembly.buffer.has_value()) {
    return;
  }
  const Message msg = reassembly.msg;
  mem::Block buffer = std::move(*reassembly.buffer);
  reassembly_.erase(it);
  ++delivered_;
  deliver_(msg, std::move(buffer));
}

double StoreForwardNetwork::max_link_utilization(sim::SimTime now) const {
  double best = 0.0;
  for (const auto& link : links_) {
    best = std::max(best, link.utilization(now));
  }
  return best;
}

WormholeNetwork::WormholeNetwork(sim::Simulation& sim, const Topology& topo,
                                 std::vector<mem::Mmu*> mmus,
                                 NetworkParams params)
    : sim_(sim),
      topo_(topo),
      routing_(topo),
      mmus_(std::move(mmus)),
      params_(params),
      links_(make_links(topo)) {
  check_mmus(topo_, mmus_);
}

void WormholeNetwork::send(Message msg, mem::Block payload) {
  assert(payload.valid());
  ++messages_;
  payload_bytes_ += msg.bytes;
  launch(msg, std::move(payload));
}

void WormholeNetwork::kick() {
  std::vector<Pending> retry;
  retry.swap(parked_);
  for (auto& p : retry) {
    launch(p.msg, std::move(p.payload));
  }
}

void WormholeNetwork::launch(Message msg, mem::Block payload) {
  if (msg.src_node == msg.dst_node) {
    ++delivered_;
    deliver_(msg, std::move(payload));
    return;
  }
  if (!may_progress(msg)) {
    parked_.push_back(Pending{msg, std::move(payload)});
    return;
  }
  // Only the destination buffers the message; intermediate nodes hold at
  // most a flit, which we do not charge against their memory.
  mmus_[static_cast<std::size_t>(msg.dst_node)]->request(
      msg.bytes + params_.header_bytes,
      [this, msg, payload = std::move(payload)](mem::Block dst_buf) mutable {
        transmit(msg, std::move(payload), std::move(dst_buf));
      });
}

void WormholeNetwork::transmit(Message msg, mem::Block src, mem::Block dst) {
  const std::vector<NodeId> path = routing_.route(msg.src_node, msg.dst_node);
  const auto path_hops = static_cast<std::int64_t>(path.size()) - 1;
  // Pipelined duration: header worms through each router, payload streams
  // behind it. Single virtual channel: the whole path is held for the
  // duration (circuit-switching approximation of wormhole blocking).
  const sim::SimTime duration =
      params_.per_hop_latency * path_hops +
      params_.per_byte *
          static_cast<std::int64_t>(msg.bytes + params_.header_bytes);

  sim::SimTime start = sim_.now();
  for (std::size_t i = 0; i + 1 < path.size(); ++i) {
    const auto link_id = topo_.link_between(path[i], path[i + 1]);
    assert(link_id.has_value());
    const Link& link = links_[static_cast<std::size_t>(*link_id)];
    start = std::max(start, link.busy_until());
  }
  sim::SimTime done = start + duration;
  for (std::size_t i = 0; i + 1 < path.size(); ++i) {
    const auto link_id = topo_.link_between(path[i], path[i + 1]);
    Link& link = links_[static_cast<std::size_t>(*link_id)];
    // Reserve from the common start so the path is held as one circuit.
    link.reserve(start, duration, msg.bytes + params_.header_bytes);
  }
  hops_ += static_cast<std::uint64_t>(path_hops);

  sim_.schedule_at(done, [this, msg, src = std::move(src),
                          dst = std::move(dst)]() mutable {
    ++delivered_;
    src.release();
    if (hop_hook_) hop_hook_(msg.dst_node, msg, msg.bytes);
    deliver_(msg, std::move(dst));
  });
}

}  // namespace tmc::net
