#include "net/network.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>
#include <utility>

namespace tmc::net {
namespace {

sim::SimTime transfer_time(const NetworkParams& p, std::size_t payload_bytes) {
  return p.per_hop_latency +
         p.per_byte * static_cast<std::int64_t>(payload_bytes + p.header_bytes);
}

std::vector<Link> make_links(const Topology& topo) {
  return std::vector<Link>(static_cast<std::size_t>(topo.link_count()));
}

void check_mmus(const Topology& topo, const std::vector<mem::Mmu*>& mmus) {
  if (static_cast<int>(mmus.size()) != topo.node_count()) {
    throw std::invalid_argument("network needs one MMU per node");
  }
}

}  // namespace

StoreForwardNetwork::StoreForwardNetwork(sim::Simulation& sim,
                                         const Topology& topo,
                                         std::vector<mem::Mmu*> mmus,
                                         NetworkParams params)
    : sim_(sim),
      topo_(topo),
      routing_(topo),
      mmus_(std::move(mmus)),
      params_(params),
      links_(make_links(topo)) {
  check_mmus(topo_, mmus_);
}

void StoreForwardNetwork::send(Message msg, mem::Block payload) {
  // Fault-mode resends carry no staged source buffer (the staging copy is
  // not re-modelled on retransmit); reliable runs always provide one.
  assert((payload.valid() || fault_ != nullptr) &&
         "sender must provide the source buffer");
  if (drop_at_injection(msg)) return;
  ++messages_;
  payload_bytes_ += msg.bytes;
  if (tracer_ != nullptr) {
    TMC_TRACE(*tracer_, sim_.now(), sim::TraceCategory::kNetwork, "net",
              "send m" << msg.id << " " << msg.src_node << "->"
                       << msg.dst_node << " " << msg.bytes << "B tag "
                       << msg.tag);
  }
  const std::size_t pkt = params_.packet_bytes;
  if (msg.src_node == msg.dst_node || pkt == 0 || msg.bytes <= pkt) {
    forward(msg, msg.src_node, std::move(payload), msg.bytes, nullptr);
    return;
  }
  // Fragment: packets pipeline across hops independently and reassemble at
  // the destination. The source's whole-message buffer stays pinned until
  // the last packet has left the source node.
  const int packets =
      static_cast<int>((msg.bytes + pkt - 1) / pkt);
  Reassembly& reassembly = reassembly_[msg.id];
  reassembly.msg = msg;
  reassembly.packets_remaining = packets;
  auto hold = std::make_shared<mem::Block>(std::move(payload));
  std::size_t remaining = msg.bytes;
  for (int i = 0; i < packets; ++i) {
    const std::size_t fragment = std::min(pkt, remaining);
    remaining -= fragment;
    forward(msg, msg.src_node, mem::Block{}, fragment, hold);
  }
}

void StoreForwardNetwork::kick() {
  std::vector<Parked> retry;
  retry.swap(parked_);
  for (auto& p : retry) {
    forward(p.msg, p.at, std::move(p.held), p.fragment_bytes,
            std::move(p.source_hold));
  }
}

void StoreForwardNetwork::forward(Message msg, NodeId at, mem::Block held,
                                  std::size_t fragment_bytes,
                                  std::shared_ptr<mem::Block> source_hold) {
  if (at == msg.dst_node) {
    assert(deliver_ && "no delivery handler installed");
    if (fragment_bytes == msg.bytes) {
      ++delivered_;
      deliver_(msg, std::move(held));
    } else {
      arrive_fragment(msg, std::move(held));
    }
    return;
  }
  if (!may_progress(msg)) {
    // The owning job is descheduled: its daemons are not running, so the
    // message waits here, pinning its buffer at this node, until kick().
    if (tracer_ != nullptr) {
      TMC_TRACE(*tracer_, sim_.now(), sim::TraceCategory::kNetwork, "net",
                "park m" << msg.id << " at node " << at << " (job "
                         << msg.job << " descheduled)");
    }
    record_park(sim_.now(), msg);
    parked_.push_back(Parked{msg, at, std::move(held), fragment_bytes,
                             std::move(source_hold)});
    return;
  }
  // One adjacency scan yields both the next node and the directed link.
  const Topology::Neighbor hop = routing_.next_hop_link(at, msg.dst_node);
  const NodeId next = hop.node;
  if (fault_ != nullptr && !fault_->link_usable(hop.link)) {
    // The next link (or the router behind it) is down: stall here holding
    // this node's buffer until a repair kicks the parked set.
    record_park(sim_.now(), msg);
    parked_.push_back(Parked{msg, at, std::move(held), fragment_bytes,
                             std::move(source_hold)});
    return;
  }

  // Store-and-forward: the whole unit must be buffered at the next node
  // before it can leave this one. Under memory pressure this request blocks
  // in `next`'s MMU queue -- the delay the paper attributes to intermediate
  // processors delaying mailbox allocation.
  mmus_[static_cast<std::size_t>(next)]->request(
      fragment_bytes + params_.header_bytes,
      [this, msg, next, fragment_bytes, link_id = hop.link,
       held = std::move(held),
       source_hold = std::move(source_hold)](mem::Block next_buf) mutable {
        Link& link = links_[static_cast<std::size_t>(link_id)];
        const sim::SimTime xfer = transfer_time(params_, fragment_bytes);
        const sim::SimTime done = link.reserve(
            sim_.now(), xfer, fragment_bytes + params_.header_bytes);
        record_transfer(link_id, done - xfer, xfer, msg);
        sim_.schedule_at(
            done, [this, msg, next, fragment_bytes, held = std::move(held),
                   source_hold = std::move(source_hold),
                   next_buf = std::move(next_buf)]() mutable {
              ++hops_;
              held.release();      // the copy has left this node
              source_hold.reset();  // last packet out frees the source
              if (hop_hook_) hop_hook_(next, msg, fragment_bytes);
              forward(msg, next, std::move(next_buf), fragment_bytes,
                      nullptr);
            });
      });
}

void StoreForwardNetwork::arrive_fragment(const Message& msg,
                                          mem::Block held) {
  const auto it = reassembly_.find(msg.id);
  assert(it != reassembly_.end());
  Reassembly& reassembly = it->second;
  if (!reassembly.alloc_requested) {
    reassembly.alloc_requested = true;
    mmus_[static_cast<std::size_t>(msg.dst_node)]->request(
        msg.bytes + params_.header_bytes,
        [this, id = msg.id](mem::Block big) {
          const auto entry = reassembly_.find(id);
          if (entry == reassembly_.end()) return;  // torn down
          entry->second.buffer = std::move(big);
          entry->second.fragments.clear();  // packets copied in, freed
          try_finish_reassembly(id);
        });
  }
  if (reassembly.buffer.has_value()) {
    held.release();  // copied straight into the message buffer
  } else {
    reassembly.fragments.push_back(std::move(held));
  }
  --reassembly.packets_remaining;
  try_finish_reassembly(msg.id);
}

void StoreForwardNetwork::try_finish_reassembly(std::uint64_t id) {
  const auto it = reassembly_.find(id);
  if (it == reassembly_.end()) return;
  Reassembly& reassembly = it->second;
  if (reassembly.packets_remaining > 0 || !reassembly.buffer.has_value()) {
    return;
  }
  const Message msg = reassembly.msg;
  mem::Block buffer = std::move(*reassembly.buffer);
  reassembly_.erase(it);
  ++delivered_;
  deliver_(msg, std::move(buffer));
}

double StoreForwardNetwork::max_link_utilization(sim::SimTime now) const {
  double best = 0.0;
  for (const auto& link : links_) {
    best = std::max(best, link.utilization(now));
  }
  return best;
}

WormholeNetwork::WormholeNetwork(sim::Simulation& sim, const Topology& topo,
                                 std::vector<mem::Mmu*> mmus,
                                 NetworkParams params)
    : sim_(sim),
      topo_(topo),
      routing_(topo),
      mmus_(std::move(mmus)),
      params_(params),
      links_(make_links(topo)) {
  check_mmus(topo_, mmus_);
  // Per-topology reservation: the in-flight population is bounded by
  // concurrent sends, which scale with node count; four slots per node
  // covers the paper's workloads without regrowth.
  reserve_worms(std::max<std::size_t>(
      64, static_cast<std::size_t>(topo.node_count()) * 4));
}

void WormholeNetwork::reserve_worms(std::size_t capacity) {
  worms_.reserve(capacity);
}

std::uint32_t WormholeNetwork::acquire_worm(const Message& msg,
                                            mem::Block payload) {
  std::uint32_t index;
  if (worm_free_ != kFreeListEnd) {
    index = worm_free_;
    worm_free_ = worms_[index].next_free;
  } else {
    if (worms_.size() == worms_.capacity()) {
      ++pool_growths_;
      reserve_worms(worms_.capacity() * 2);
    }
    index = static_cast<std::uint32_t>(worms_.size());
    worms_.emplace_back();
  }
  Worm& w = worms_[index];
  w.msg = msg;
  w.src = std::move(payload);
  w.hop_count = 0;
  w.live = true;
  ++live_worms_;
  peak_worms_ = std::max(peak_worms_, live_worms_);
  return index;
}

void WormholeNetwork::release_worm(std::uint32_t index) {
  Worm& w = worms_[index];
  w.live = false;
  ++w.generation;
  w.next_free = worm_free_;
  worm_free_ = index;
  --live_worms_;
}

void WormholeNetwork::send(Message msg, mem::Block payload) {
  assert(payload.valid() || fault_ != nullptr);
  if (drop_at_injection(msg)) return;
  ++messages_;
  payload_bytes_ += msg.bytes;
  launch(msg, std::move(payload));
}

void WormholeNetwork::kick() {
  kick_scratch_.clear();
  kick_scratch_.swap(parked_);
  for (auto& p : kick_scratch_) {
    launch(p.msg, std::move(p.payload));
  }
  kick_scratch_.clear();
  // Hand the warmed buffer back: launch() may have re-parked messages into
  // parked_ (then both vectors earn their capacity), but in the common
  // everything-resumes case parked_ is empty and would otherwise be left
  // holding the cold buffer, allocating again on the next suspension.
  if (parked_.empty() && parked_.capacity() < kick_scratch_.capacity()) {
    parked_.swap(kick_scratch_);
  }
}

void WormholeNetwork::launch(Message msg, mem::Block payload) {
  if (msg.src_node == msg.dst_node) {
    ++delivered_;
    deliver_(msg, std::move(payload));
    return;
  }
  if (!may_progress(msg)) {
    record_park(sim_.now(), msg);
    parked_.push_back(Pending{msg, std::move(payload)});
    return;
  }
  if (fault_ != nullptr) {
    // A circuit cannot form across a downed link (or dead router): park
    // until a repair kicks the parked set. Once established, a circuit
    // completes even if a link on it fails mid-flight (the flits already
    // occupy the path) -- the documented approximation.
    routing_.link_path(msg.src_node, msg.dst_node, path_scratch_);
    for (const LinkId id : path_scratch_) {
      if (!fault_->link_usable(id)) {
        record_park(sim_.now(), msg);
        parked_.push_back(Pending{msg, std::move(payload)});
        return;
      }
    }
  }
  // The worm slot is taken before the destination-buffer request so the
  // source payload has a stable home while the message waits on memory
  // pressure; parked messages above hold no slot.
  const std::uint32_t index = acquire_worm(msg, std::move(payload));
  const std::uint32_t generation = worms_[index].generation;
  // Only the destination buffers the message; intermediate nodes hold at
  // most a flit, which we do not charge against their memory.
  mmus_[static_cast<std::size_t>(msg.dst_node)]->request(
      msg.bytes + params_.header_bytes,
      [this, index, generation](mem::Block dst_buf) {
        transmit(index, generation, std::move(dst_buf));
      });
}

void WormholeNetwork::transmit(std::uint32_t index, std::uint32_t generation,
                               mem::Block dst) {
  Worm& w = worms_[index];
  assert(w.live && w.generation == generation);
  w.dst = std::move(dst);
  const Message& msg = w.msg;

  // The route is static for a given wiring: its link ids are recomputed
  // closed-form into a reused scratch vector (no O(N^2) path table).
  routing_.link_path(msg.src_node, msg.dst_node, path_scratch_);
  const std::span<const LinkId> path = path_scratch_;
  const std::size_t hops = path.size();
  sim::SimTime start = sim_.now();
  for (const LinkId id : path) {
    start = std::max(start, links_[static_cast<std::size_t>(id)].busy_until());
  }
  w.hop_count = static_cast<std::uint16_t>(hops);

  // Pipelined duration: header worms through each router, payload streams
  // behind it. Single virtual channel: the whole path is held for the
  // duration (circuit-switching approximation of wormhole blocking).
  const sim::SimTime duration =
      params_.per_hop_latency * static_cast<std::int64_t>(hops) +
      params_.per_byte *
          static_cast<std::int64_t>(msg.bytes + params_.header_bytes);
  const sim::SimTime done = start + duration;
  for (const LinkId id : path) {
    // Reserve from the common start so the path is held as one circuit.
    links_[static_cast<std::size_t>(id)].reserve(
        start, duration, msg.bytes + params_.header_bytes);
    record_transfer(id, start, duration, msg);
  }
  hops_ += static_cast<std::uint64_t>(hops);

  sim_.schedule_at(done, [this, index, generation] {
    complete(index, generation);
  });
}

void WormholeNetwork::complete(std::uint32_t index, std::uint32_t generation) {
  Worm& w = worms_[index];
  assert(w.live && w.generation == generation);
  (void)generation;
  ++delivered_;
  w.src.release();
  const Message msg = w.msg;
  mem::Block dst = std::move(w.dst);
  // Tail flit has left the path: the slot is free before delivery runs, so
  // a send triggered by this delivery can reuse it without growing the pool.
  release_worm(index);
  if (hop_hook_) hop_hook_(msg.dst_node, msg, msg.bytes);
  deliver_(msg, std::move(dst));
}

}  // namespace tmc::net
