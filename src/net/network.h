// tmcsim -- message transport engines.
//
// Two engines share one interface:
//
//  * StoreForwardNetwork -- the paper's transport. A message crosses one
//    link at a time; before each hop the full message must be buffered at
//    the receiving node, so a mailbox buffer is requested from that node's
//    MMU (blocking under memory pressure) and a per-hop software cost is
//    charged to that node's CPU via the hop hook. This couples network load
//    to memory contention exactly as in the paper.
//
//  * WormholeNetwork -- the extension the paper suggests in section 5.2:
//    wormhole routing eliminates intermediate buffering. We approximate a
//    single-virtual-channel wormhole as circuit-style occupancy of every
//    link on the path for the (pipelined) transfer duration, with a buffer
//    allocated only at the destination.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "mem/mmu.h"
#include "net/link.h"
#include "net/message.h"
#include "net/router.h"
#include "net/topology.h"
#include "obs/metrics.h"
#include "obs/timeline.h"
#include "sim/simulation.h"
#include "sim/trace.h"

namespace tmc::net {

/// Timing and framing parameters of the transport.
struct NetworkParams {
  /// Transfer time per payload byte. T805 links run at 20 Mbit/s with an
  /// effective unidirectional payload rate of ~1.74 MB/s => ~575 ns/byte.
  sim::SimTime per_byte = sim::SimTime::nanoseconds(575);
  /// Fixed per-hop latency (link startup + switch transit).
  sim::SimTime per_hop_latency = sim::SimTime::microseconds(5);
  /// Protocol header added to every message buffer.
  std::size_t header_bytes = 16;
  /// Store-and-forward fragmentation: 0 forwards whole messages (the
  /// paper's mailbox package); > 0 splits payloads into packets of this
  /// size that pipeline across hops independently and reassemble at the
  /// destination (bench A11's virtual-cut-through middle ground).
  std::size_t packet_bytes = 0;
};

/// Failure state of the machine as the transport sees it. Implemented by
/// fault::FaultManager; null on every fault-free run, so each query site is
/// one untaken branch. should_drop() may consume seeded randomness (it is
/// called at most once per injected message, at the source).
class FaultPlane {
 public:
  virtual ~FaultPlane() = default;
  [[nodiscard]] virtual bool node_alive(NodeId node) const = 0;
  /// False while the link (or either endpoint node) is down; traffic parks
  /// and is re-kicked on repair.
  [[nodiscard]] virtual bool link_usable(LinkId link) const = 0;
  /// True if this freshly injected message should be lost.
  virtual bool should_drop(const Message& msg) = 0;
};

/// Common interface of the transport engines.
class Network {
 public:
  /// Invoked at the destination node with the message and the buffer that
  /// holds it; the receiver owns the buffer (frees it on consumption).
  using DeliveryHandler =
      std::function<void(const Message&, mem::Block buffer)>;
  /// Invoked at every node a transfer unit (whole message or packet)
  /// arrives at -- intermediate hops and the destination; the node layer
  /// charges CPU time for buffer management. `bytes` is the payload of the
  /// unit that just crossed the link (a fragment for packetised messages).
  using HopHook =
      std::function<void(NodeId node, const Message&, std::size_t bytes)>;

  virtual ~Network() = default;

  /// Gate consulted before each hop begins: a false return parks the
  /// message where it is (its buffer stays held at that node) until kick()
  /// re-enables it. Used by gang scheduling to freeze suspended jobs'
  /// communication -- on the paper's system the mailbox daemons of a
  /// descheduled job stop running, and its partially-forwarded messages
  /// keep occupying intermediate-node memory.
  using ProgressGate = std::function<bool(const Message&)>;

  void set_delivery_handler(DeliveryHandler handler) {
    deliver_ = std::move(handler);
  }
  void set_hop_hook(HopHook hook) { hop_hook_ = std::move(hook); }
  void set_progress_gate(ProgressGate gate) { gate_ = std::move(gate); }
  /// Optional trace sink (category kNetwork); owner must outlive us.
  void set_tracer(const sim::Tracer* tracer) { tracer_ = tracer; }

  /// Optional timeline recorder (null = off): every link occupancy becomes
  /// a span on track `link_track_base + link_id`; message parks (gang gate
  /// closed) become instants on `net_track`.
  void set_timeline(obs::Timeline* timeline, obs::TrackId link_track_base,
                    obs::TrackId net_track) {
    timeline_ = timeline;
    link_base_ = link_track_base;
    net_track_ = net_track;
    if (timeline_ != nullptr) {
      name_xfer_ = timeline_->intern("xfer");
      name_park_ = timeline_->intern("park");
    }
  }

  /// Optional metric handle (null = off) counting park events -- messages
  /// frozen mid-route because their job's gang turn ended.
  void set_metrics(obs::Counter* park_events) { park_events_ = park_events; }

  /// Invoked when a message is lost to a fault (dropped at injection or at
  /// a dead destination); the comm layer owns the retry machinery.
  using LossHook = std::function<void(const Message&)>;

  /// Optional fault plane (null = reliable hardware; must outlive us).
  void set_fault_plane(FaultPlane* plane) { fault_ = plane; }
  [[nodiscard]] FaultPlane* fault_plane() const { return fault_; }
  void set_loss_hook(LossHook hook) { loss_ = std::move(hook); }

  /// Re-attempts every parked message (called when a job's turn begins).
  virtual void kick() {}

  [[nodiscard]] bool may_progress(const Message& msg) const {
    return !gate_ || gate_(msg);
  }

  /// Injects a message. `payload` is the buffer already allocated at the
  /// source node by the sender (self-sends are delivered from this buffer,
  /// passing through the same buffered-mailbox path as remote sends).
  virtual void send(Message msg, mem::Block payload) = 0;

  /// Per-link accessors (both engines own one Link per directed edge).
  [[nodiscard]] virtual const Link& link(LinkId id) const = 0;
  [[nodiscard]] virtual int link_count() const = 0;

  /// The router pricing this network's shortest paths (both engines own
  /// one; distance queries drive e.g. nearest-victim steal selection).
  [[nodiscard]] virtual const Router& routing() const = 0;

  // --- statistics ------------------------------------------------------
  [[nodiscard]] std::uint64_t messages_sent() const { return messages_; }
  [[nodiscard]] std::uint64_t messages_delivered() const { return delivered_; }
  [[nodiscard]] std::uint64_t bytes_sent() const { return payload_bytes_; }
  [[nodiscard]] std::uint64_t total_hops() const { return hops_; }
  [[nodiscard]] std::uint64_t in_flight() const { return messages_ - delivered_; }
  /// Messages currently parked (gate closed or a path link down); the
  /// watchdog diagnostic reads this to name a stalled transport.
  [[nodiscard]] virtual std::size_t parked_messages() const { return 0; }

 protected:
  /// Drops `msg` at injection time if the fault plane says so, reporting
  /// the loss to the comm layer. The payload is released by the caller
  /// returning (RAII).
  [[nodiscard]] bool drop_at_injection(const Message& msg) {
    if (fault_ == nullptr || !fault_->should_drop(msg)) return false;
    if (loss_) loss_(msg);
    return true;
  }
  /// Span for one link occupancy [start, start+dur); no-op with no timeline.
  void record_transfer(LinkId link, sim::SimTime start, sim::SimTime dur,
                       const Message& msg) {
    if (timeline_ == nullptr) return;
    timeline_->span(link_base_ + static_cast<obs::TrackId>(link), name_xfer_,
                    start, dur, static_cast<double>(msg.id));
  }
  /// Park instant + counter bump; no-op when neither consumer is attached.
  void record_park(sim::SimTime at, const Message& msg) {
    obs::bump(park_events_);
    if (timeline_ != nullptr) {
      timeline_->instant(net_track_, name_park_, at,
                         static_cast<double>(msg.id));
    }
  }

  DeliveryHandler deliver_;
  HopHook hop_hook_;
  ProgressGate gate_;
  const sim::Tracer* tracer_ = nullptr;
  obs::Timeline* timeline_ = nullptr;
  obs::TrackId link_base_ = 0;
  obs::TrackId net_track_ = 0;
  obs::NameId name_xfer_ = 0;
  obs::NameId name_park_ = 0;
  obs::Counter* park_events_ = nullptr;
  FaultPlane* fault_ = nullptr;
  LossHook loss_;
  std::uint64_t messages_ = 0;
  std::uint64_t delivered_ = 0;
  std::uint64_t payload_bytes_ = 0;
  std::uint64_t hops_ = 0;
};

/// Store-and-forward engine (the Transputer's switching mode).
class StoreForwardNetwork final : public Network {
 public:
  /// `mmus[i]` is node i's allocator; must outlive the network.
  StoreForwardNetwork(sim::Simulation& sim, const Topology& topo,
                      std::vector<mem::Mmu*> mmus, NetworkParams params = {});

  void send(Message msg, mem::Block payload) override;
  void kick() override;

  [[nodiscard]] const Router& routing() const { return routing_; }
  [[nodiscard]] const Link& link(LinkId id) const override {
    return links_.at(static_cast<std::size_t>(id));
  }
  [[nodiscard]] int link_count() const override {
    return static_cast<int>(links_.size());
  }
  /// Highest utilisation over all links at time `now`.
  [[nodiscard]] double max_link_utilization(sim::SimTime now) const;
  [[nodiscard]] std::size_t parked_messages() const override {
    return parked_.size();
  }

 private:
  struct Parked {
    Message msg;
    NodeId at;
    mem::Block held;
    std::size_t fragment_bytes;  // == msg.bytes for unfragmented messages
    /// Keeps the source's whole-message buffer alive until every packet
    /// has left the source node.
    std::shared_ptr<mem::Block> source_hold;
  };
  /// Destination-side reassembly of a fragmented message.
  struct Reassembly {
    Message msg;
    int packets_remaining = 0;
    bool alloc_requested = false;
    std::optional<mem::Block> buffer;   // full-message buffer (async alloc)
    std::vector<mem::Block> fragments;  // packet buffers pending the alloc
  };

  /// One unit (whole message or packet) is fully buffered at `at`; forward
  /// it one more hop (or hand it to delivery/reassembly).
  void forward(Message msg, NodeId at, mem::Block held,
               std::size_t fragment_bytes,
               std::shared_ptr<mem::Block> source_hold);
  void arrive_fragment(const Message& msg, mem::Block held);
  void try_finish_reassembly(std::uint64_t id);

  sim::Simulation& sim_;
  const Topology& topo_;
  Router routing_;
  std::vector<mem::Mmu*> mmus_;
  NetworkParams params_;
  std::vector<Link> links_;
  std::vector<Parked> parked_;
  std::unordered_map<std::uint64_t, Reassembly> reassembly_;
};

/// Wormhole-routed engine (paper's suggested improvement; bench A2).
///
/// In-flight state lives in a generation-tagged slot pool: each message
/// occupies one Worm slot holding its Message, source payload, destination
/// buffer and the hop count of the path whose channels it occupies (the link
/// ids themselves are static per (src, dst) and are recomputed closed-form
/// into a reused scratch vector at transmit time). The pool is pre-reserved
/// per topology, a
/// worm's slot is released in O(1) when its tail flit leaves the path, and
/// every callback on the advance path captures only {this, slot, generation}
/// -- inline in UniqueFunction's small buffer -- so launching, transmitting
/// and completing a message perform zero heap allocations once warm.
class WormholeNetwork final : public Network {
 public:
  WormholeNetwork(sim::Simulation& sim, const Topology& topo,
                  std::vector<mem::Mmu*> mmus, NetworkParams params = {});

  void send(Message msg, mem::Block payload) override;
  void kick() override;

  [[nodiscard]] const Router& routing() const { return routing_; }
  [[nodiscard]] const Link& link(LinkId id) const override {
    return links_.at(static_cast<std::size_t>(id));
  }
  [[nodiscard]] int link_count() const override {
    return static_cast<int>(links_.size());
  }

  // --- pool observability (tests, perf gates) ---------------------------
  /// Worm slots currently occupied (messages between launch and tail-flit
  /// departure; parked and self-send messages hold no slot).
  [[nodiscard]] std::size_t worms_in_flight() const { return live_worms_; }
  [[nodiscard]] std::size_t peak_worms_in_flight() const { return peak_worms_; }
  /// Slots the pool can hold without regrowing.
  [[nodiscard]] std::size_t worm_pool_capacity() const {
    return worms_.capacity();
  }
  /// Times the pool had to regrow beyond the per-topology reservation.
  [[nodiscard]] std::uint64_t worm_pool_growths() const {
    return pool_growths_;
  }
  [[nodiscard]] std::size_t parked_messages() const override {
    return parked_.size();
  }

 private:
  struct Pending {
    Message msg;
    mem::Block payload;
  };
  /// One in-flight message: circuit-style occupancy of its whole path.
  struct Worm {
    Message msg;
    mem::Block src;  // source payload, released on tail-flit departure
    mem::Block dst;  // destination buffer, handed to delivery
    std::uint32_t generation = 0;
    std::uint32_t next_free = kFreeListEnd;
    std::uint16_t hop_count = 0;
    bool live = false;
  };
  static constexpr std::uint32_t kFreeListEnd = 0xffffffffu;

  /// Grows the pool to `capacity` slots.
  void reserve_worms(std::size_t capacity);
  std::uint32_t acquire_worm(const Message& msg, mem::Block payload);
  /// O(1): bumps the generation and pushes the slot on the free list.
  void release_worm(std::uint32_t index);

  void launch(Message msg, mem::Block payload);
  void transmit(std::uint32_t index, std::uint32_t generation, mem::Block dst);
  void complete(std::uint32_t index, std::uint32_t generation);

  sim::Simulation& sim_;
  const Topology& topo_;
  Router routing_;
  std::vector<mem::Mmu*> mmus_;
  NetworkParams params_;
  std::vector<Link> links_;
  /// Reused by transmit() for the closed-form link path (no allocation warm).
  std::vector<LinkId> path_scratch_;
  std::vector<Worm> worms_;
  std::uint32_t worm_free_ = kFreeListEnd;
  std::size_t live_worms_ = 0;
  std::size_t peak_worms_ = 0;
  std::uint64_t pool_growths_ = 0;
  std::vector<Pending> parked_;
  /// kick() drains parked_ through this scratch so the per-gang-turn retry
  /// reuses capacity instead of allocating a fresh vector.
  std::vector<Pending> kick_scratch_;
};

}  // namespace tmc::net
