#include "net/router.h"

#include <bit>
#include <cassert>
#include <cmath>
#include <cstdlib>

namespace tmc::net {
namespace {

int tree_depth(int v) {
  int k = 0;
  while (v > 0) {
    v = (v - 1) / 2;
    ++k;
  }
  return k;
}

}  // namespace

Router::Router(const Topology& topo, Mode mode)
    : topo_(&topo),
      tile_size_(topo.tile_size()),
      rows_(topo.tile_rows()),
      cols_(topo.tile_cols()) {
  if (mode == Mode::kTable) table_.emplace(topo);
}

int Router::tile_distance(NodeId a, NodeId b) const {
  switch (topo_->kind()) {
    case TopologyKind::kLinear:
      return std::abs(a - b);
    case TopologyKind::kRing: {
      const int d = std::abs(a - b);
      return std::min(d, tile_size_ - d);
    }
    case TopologyKind::kMesh:
      return std::abs(a / cols_ - b / cols_) + std::abs(a % cols_ - b % cols_);
    case TopologyKind::kTorus: {
      const int dr = std::abs(a / cols_ - b / cols_);
      const int dc = std::abs(a % cols_ - b % cols_);
      return std::min(dr, rows_ - dr) + std::min(dc, cols_ - dc);
    }
    case TopologyKind::kHypercube:
      return std::popcount(static_cast<unsigned>(a ^ b));
    case TopologyKind::kTree: {
      int x = a, y = b, d = 0;
      int dx = tree_depth(x), dy = tree_depth(y);
      for (; dx > dy; --dx, ++d) x = (x - 1) / 2;
      for (; dy > dx; --dy, ++d) y = (y - 1) / 2;
      while (x != y) {
        x = (x - 1) / 2;
        y = (y - 1) / 2;
        d += 2;
      }
      return d;
    }
  }
  std::abort();
}

int Router::distance(NodeId src, NodeId dst) const {
  if (table_) return table_->distance(src, dst);
  if (src / tile_size_ != dst / tile_size_) {
    assert(false && "route crosses partition boundary");
    return -1;
  }
  return tile_distance(src % tile_size_, dst % tile_size_);
}

NodeId Router::greedy_step(NodeId x, NodeId target) const {
  const int d = distance(x, target);
  for (const auto& nb : topo_->neighbors(x)) {  // ascending node order
    if (distance(nb.node, target) == d - 1) return nb.node;
  }
  assert(false && "no closer neighbour on a connected tile");
  return kInvalidNode;
}

bool Router::discovered_before(NodeId dst, NodeId a, NodeId b) const {
  // Walk the greedy (lowest-id closer step) shortest paths dst -> a and
  // dst -> b in lockstep. They share every node until the step where they
  // diverge, and BFS discovery order is decided there by plain node order.
  NodeId x = dst;
  for (;;) {
    const NodeId ya = greedy_step(x, a);
    const NodeId yb = greedy_step(x, b);
    if (ya != yb) return ya < yb;
    x = ya;
  }
}

Topology::Neighbor Router::next_hop_link(NodeId src, NodeId dst) const {
  assert(src != dst);
  const int d = distance(src, dst);
  Topology::Neighbor best{kInvalidNode, kInvalidLink};
  for (const auto& nb : topo_->neighbors(src)) {
    if (distance(nb.node, dst) != d - 1) continue;
    if (best.node == kInvalidNode) {
      best = nb;  // lowest-id candidate: the common no-tie case
    } else if (discovered_before(dst, nb.node, best.node)) {
      best = nb;
    }
  }
  assert(best.node != kInvalidNode && "disconnected topology");
  return best;
}

NodeId Router::next_hop(NodeId src, NodeId dst) const {
  if (src == dst) return dst;
  if (table_) return table_->next_hop(src, dst);
  return next_hop_link(src, dst).node;
}

void Router::link_path(NodeId src, NodeId dst, std::vector<LinkId>& out) const {
  out.clear();
  if (table_) {
    const auto span = table_->link_path(src, dst);
    out.assign(span.begin(), span.end());
    return;
  }
  for (NodeId u = src; u != dst;) {
    const auto hop = next_hop_link(u, dst);
    out.push_back(hop.link);
    u = hop.node;
  }
}

std::vector<NodeId> Router::route(NodeId src, NodeId dst) const {
  std::vector<NodeId> path{src};
  for (NodeId u = src; u != dst;) {
    u = next_hop(u, dst);
    path.push_back(u);
  }
  return path;
}

std::size_t Router::storage_bytes() const {
  return table_ ? table_->storage_bytes() : 0;
}

}  // namespace tmc::net
