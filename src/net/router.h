// tmcsim -- algorithmic (closed-form) routing.
//
// RoutingTable materialises all-pairs next-hop/distance/link-path arrays:
// O(N^2) entries plus O(N^2 * diameter) link storage, which is prohibitive
// past a few hundred nodes. Every topology the builders produce is regular,
// so routes never need to be stored: distance has a closed form per kind
// (|delta| on a line, wrap-minimum on a ring, Manhattan on a mesh, popcount
// on a hypercube, per-dimension wrap-minimum on a torus, LCA depth walk on
// a tree), and the next hop is recovered by scanning a node's <= 4
// neighbours for one that is closer to the destination.
//
// When several neighbours are closer (wrap ties, cross-dimension choices)
// the simulation's determinism contract requires the EXACT hop the BFS
// table would have picked -- golden tables depend on it. The BFS in
// RoutingTable processes a FIFO queue and scans ascending-sorted adjacency,
// which makes the parent of u (= next_hop(u, dst)) the closer neighbour v
// whose BFS discovery order from dst is minimal. That order has a local
// characterisation: order(v) ascends with key(v), the lexicographically
// minimal sequence of adjacency ranks over all shortest dst -> v paths, and
// key(v) is realised by the greedy walk from dst that always steps to the
// lowest-numbered neighbour closer to v. Comparing two candidates therefore
// needs no table: walk both greedy paths from dst in lockstep and the first
// divergence (always at a shared node, so plain id order) decides. The
// differential test in tests/net/test_routing_model.cpp checks this
// reproduces RoutingTable bit-for-bit on every kind and size.
//
// Tiled machines (the Multicomputer's standard wiring) decompose as
// tile-local coordinates; cross-tile pairs are unreachable, as in the BFS
// table. The table remains available behind Mode::kTable as the reference
// implementation and as a fallback for any future irregular wiring.
#pragma once

#include <optional>
#include <vector>

#include "net/routing.h"
#include "net/topology.h"

namespace tmc::net {

class Router {
 public:
  enum class Mode {
    kAuto,   // closed-form routing (all current topologies qualify)
    kTable,  // force the BFS reference table (tests, memory comparisons)
  };

  explicit Router(const Topology& topo, Mode mode = Mode::kAuto);

  /// True when routes are computed closed-form (no O(N^2) storage).
  [[nodiscard]] bool algorithmic() const { return !table_.has_value(); }

  /// Hop count of the shortest path (0 when src == dst). Cross-tile pairs
  /// are unreachable and return -1 (asserted against in debug builds).
  [[nodiscard]] int distance(NodeId src, NodeId dst) const;

  /// First hop on a shortest path from `src` toward `dst` -- bit-identical
  /// to the BFS table's choice. Returns `dst` itself when src == dst.
  [[nodiscard]] NodeId next_hop(NodeId src, NodeId dst) const;

  /// First hop and the directed link to it in one adjacency scan (the
  /// store-and-forward per-hop fast path).
  [[nodiscard]] Topology::Neighbor next_hop_link(NodeId src, NodeId dst) const;

  /// Link ids along the shortest path src -> dst, in hop order, written
  /// into `out` (cleared first; empty when src == dst). Callers keep a
  /// scratch vector so the hot path does not allocate.
  void link_path(NodeId src, NodeId dst, std::vector<LinkId>& out) const;

  /// Full node path src, ..., dst (inclusive). Length 1 when src == dst.
  [[nodiscard]] std::vector<NodeId> route(NodeId src, NodeId dst) const;

  [[nodiscard]] int node_count() const { return topo_->node_count(); }

  /// Heap bytes of routing state: 0 when algorithmic, the table's arrays
  /// otherwise (the scaling bench's O(N) vs O(N^2) memory report).
  [[nodiscard]] std::size_t storage_bytes() const;

 private:
  [[nodiscard]] int tile_distance(NodeId a, NodeId b) const;
  /// Greedy step from `x` toward `target`: lowest-numbered closer neighbour.
  [[nodiscard]] NodeId greedy_step(NodeId x, NodeId target) const;
  /// True when candidate `a` precedes `b` in BFS discovery order from `dst`
  /// (both at equal distance from `dst`).
  [[nodiscard]] bool discovered_before(NodeId dst, NodeId a, NodeId b) const;

  const Topology* topo_;
  int tile_size_;
  int rows_;
  int cols_;
  std::optional<RoutingTable> table_;
};

}  // namespace tmc::net
