#include "net/routing.h"

#include <cassert>
#include <deque>

namespace tmc::net {

RoutingTable::RoutingTable(const Topology& topo)
    : n_(topo.node_count()),
      next_hop_(static_cast<std::size_t>(n_) * static_cast<std::size_t>(n_),
                kInvalidNode),
      dist_(static_cast<std::size_t>(n_) * static_cast<std::size_t>(n_), -1) {
  // BFS from each destination over reversed edges would give next hops
  // directly, but the graphs are symmetric, so BFS from each source computing
  // parents and back-walking is equivalent. We BFS from each destination:
  // next_hop(u, dst) = the neighbour of u that first reached u in the BFS
  // tree rooted at dst. Neighbour lists are sorted ascending and the BFS
  // queue is FIFO, so tie-breaks are deterministic for a given wiring.
  std::vector<NodeId> parent(static_cast<std::size_t>(n_));
  for (NodeId dst = 0; dst < n_; ++dst) {
    std::fill(parent.begin(), parent.end(), kInvalidNode);
    dist_[index(dst, dst)] = 0;
    next_hop_[index(dst, dst)] = dst;
    parent[static_cast<std::size_t>(dst)] = dst;
    std::deque<NodeId> frontier{dst};
    while (!frontier.empty()) {
      const NodeId u = frontier.front();
      frontier.pop_front();
      for (const auto& nb : topo.neighbors(u)) {
        auto& p = parent[static_cast<std::size_t>(nb.node)];
        if (p == kInvalidNode) {
          p = u;
          dist_[index(nb.node, dst)] = dist_[index(u, dst)] + 1;
          next_hop_[index(nb.node, dst)] = u;
          frontier.push_back(nb.node);
        }
      }
    }
  }
  // Materialise the per-pair link paths: walk each next-hop chain once and
  // record the traversed link ids back to back, with a prefix-offset table
  // for O(1) span lookup. Total size is the sum of all pair distances.
  const std::size_t pairs = static_cast<std::size_t>(n_) * static_cast<std::size_t>(n_);
  path_off_.resize(pairs + 1, 0);
  std::size_t total = 0;
  for (std::size_t i = 0; i < pairs; ++i) {
    path_off_[i] = static_cast<std::uint32_t>(total);
    if (dist_[i] > 0) total += static_cast<std::size_t>(dist_[i]);
  }
  path_off_[pairs] = static_cast<std::uint32_t>(total);
  path_links_.resize(total);
  for (NodeId src = 0; src < n_; ++src) {
    for (NodeId dst = 0; dst < n_; ++dst) {
      // Unreachable pairs (a tiled machine is a forest of partitions) have
      // no path; their span stays empty.
      if (dist_[index(src, dst)] <= 0) continue;
      LinkId* out = path_links_.data() + path_off_[index(src, dst)];
      for (NodeId u = src; u != dst;) {
        const NodeId next = next_hop_[index(u, dst)];
        const auto link = topo.link_between(u, next);
        assert(link.has_value());
        *out++ = *link;
        u = next;
      }
    }
  }
}

NodeId RoutingTable::next_hop(NodeId src, NodeId dst) const {
  const NodeId hop = next_hop_[index(src, dst)];
  assert(hop != kInvalidNode && "disconnected topology");
  return hop;
}

std::vector<NodeId> RoutingTable::route(NodeId src, NodeId dst) const {
  std::vector<NodeId> path{src};
  NodeId u = src;
  while (u != dst) {
    u = next_hop(u, dst);
    path.push_back(u);
  }
  return path;
}

int RoutingTable::distance(NodeId src, NodeId dst) const {
  const int d = dist_[index(src, dst)];
  assert(d >= 0 && "disconnected topology");
  return d;
}

}  // namespace tmc::net
