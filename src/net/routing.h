// tmcsim -- static shortest-path routing.
//
// The paper's communication package routes point-to-point messages through
// intermediate processors (store-and-forward). Routes are fixed for a given
// wiring, so we precompute an all-pairs next-hop table with breadth-first
// search; ties are broken toward the lowest-numbered neighbour, which makes
// every route deterministic (and, on meshes/hypercubes built by our node
// numbering, coincides with dimension-ordered routing).
#pragma once

#include <vector>

#include "net/topology.h"

namespace tmc::net {

class RoutingTable {
 public:
  explicit RoutingTable(const Topology& topo);

  /// First hop on a shortest path from `src` toward `dst`.
  /// Returns `dst` itself when src == dst.
  [[nodiscard]] NodeId next_hop(NodeId src, NodeId dst) const;

  /// Full node path src, ..., dst (inclusive). Length 1 when src == dst.
  [[nodiscard]] std::vector<NodeId> route(NodeId src, NodeId dst) const;

  /// Hop count of the shortest path (0 when src == dst).
  [[nodiscard]] int distance(NodeId src, NodeId dst) const;

  [[nodiscard]] int node_count() const { return n_; }

 private:
  [[nodiscard]] std::size_t index(NodeId src, NodeId dst) const {
    return static_cast<std::size_t>(src) * static_cast<std::size_t>(n_) +
           static_cast<std::size_t>(dst);
  }

  int n_;
  std::vector<NodeId> next_hop_;  // n x n
  std::vector<int> dist_;        // n x n
};

}  // namespace tmc::net
