// tmcsim -- static shortest-path routing (BFS reference table).
//
// The paper's communication package routes point-to-point messages through
// intermediate processors (store-and-forward). Routes are fixed for a given
// wiring, so this table precomputes all-pairs next-hop with breadth-first
// search: a FIFO queue over ascending-sorted adjacency makes every route
// deterministic for a given wiring. (Note the tie-break is BFS discovery
// order, not simply the lowest-numbered closer neighbour -- ring and torus
// wrap ties differ; see net/router.h for the exact characterisation.)
//
// Storage is O(N^2) entries plus O(N^2 * diameter) link paths, fine at the
// paper's 16 nodes but prohibitive at 1024+. The simulation now routes
// through net::Router, which reproduces this table's choices closed-form;
// the table remains as the differential-test reference and as a fallback
// for irregular wirings.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "net/topology.h"

namespace tmc::net {

class RoutingTable {
 public:
  explicit RoutingTable(const Topology& topo);

  /// First hop on a shortest path from `src` toward `dst`.
  /// Returns `dst` itself when src == dst.
  [[nodiscard]] NodeId next_hop(NodeId src, NodeId dst) const;

  /// Full node path src, ..., dst (inclusive). Length 1 when src == dst.
  [[nodiscard]] std::vector<NodeId> route(NodeId src, NodeId dst) const;

  /// Hop count of the shortest path (0 when src == dst).
  [[nodiscard]] int distance(NodeId src, NodeId dst) const;

  /// Link ids along the shortest path src -> dst, in hop order (empty when
  /// src == dst). Routes are static for a given wiring, so the table is
  /// materialised once here and a transport's per-message path walk becomes
  /// a single lookup instead of a next-hop/link scan per hop.
  [[nodiscard]] std::span<const LinkId> link_path(NodeId src,
                                                  NodeId dst) const {
    const std::size_t i = index(src, dst);
    return {path_links_.data() + path_off_[i],
            path_links_.data() + path_off_[i + 1]};
  }

  [[nodiscard]] int node_count() const { return n_; }

  /// Heap bytes held by the materialised tables (scaling reports).
  [[nodiscard]] std::size_t storage_bytes() const {
    return next_hop_.capacity() * sizeof(next_hop_[0]) +
           dist_.capacity() * sizeof(dist_[0]) +
           path_off_.capacity() * sizeof(path_off_[0]) +
           path_links_.capacity() * sizeof(path_links_[0]);
  }

 private:
  [[nodiscard]] std::size_t index(NodeId src, NodeId dst) const {
    return static_cast<std::size_t>(src) * static_cast<std::size_t>(n_) +
           static_cast<std::size_t>(dst);
  }

  int n_;
  std::vector<NodeId> next_hop_;  // n x n
  std::vector<int> dist_;        // n x n
  std::vector<std::uint32_t> path_off_;  // n x n + 1 offsets into path_links_
  std::vector<LinkId> path_links_;       // concatenated per-pair link paths
};

}  // namespace tmc::net
