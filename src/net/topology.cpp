#include "net/topology.h"

#include <algorithm>
#include <cassert>
#include <deque>
#include <stdexcept>

namespace tmc::net {
namespace {

bool is_power_of_two(int n) { return n > 0 && (n & (n - 1)) == 0; }

void check_size(int n) {
  if (n <= 0) {
    throw std::invalid_argument("topology size must be >= 1, got " +
                                std::to_string(n));
  }
}

void check_hypercube_size(int n) {
  if (!is_power_of_two(n)) {
    throw std::invalid_argument("hypercube size must be a power of two, got " +
                                std::to_string(n));
  }
}

}  // namespace

std::pair<int, int> Topology::mesh_shape(int n) {
  // Largest divisor r <= sqrt(n); n = r * (n/r) with r <= n/r. Matches the
  // historical power-of-two behaviour (8: 2x4, 32: 4x8) and extends to any
  // size (12: 3x4, 100: 10x10, prime p: 1xp).
  int r = 1;
  while ((r + 1) * (r + 1) <= n) ++r;
  for (; r > 1; --r) {
    if (n % r == 0) break;
  }
  return {r, n / r};
}

char topology_letter(TopologyKind kind) {
  switch (kind) {
    case TopologyKind::kLinear: return 'L';
    case TopologyKind::kRing: return 'R';
    case TopologyKind::kMesh: return 'M';
    case TopologyKind::kHypercube: return 'H';
    case TopologyKind::kTorus: return 'T';
    case TopologyKind::kTree: return 'B';
  }
  return '?';
}

std::string topology_name(TopologyKind kind) {
  switch (kind) {
    case TopologyKind::kLinear: return "linear";
    case TopologyKind::kRing: return "ring";
    case TopologyKind::kMesh: return "mesh";
    case TopologyKind::kHypercube: return "hypercube";
    case TopologyKind::kTorus: return "torus";
    case TopologyKind::kTree: return "tree";
  }
  return "?";
}

void Topology::add_wire(NodeId u, NodeId v) {
  assert(u != v);
  links_.push_back(LinkEnds{u, v});
  links_.push_back(LinkEnds{v, u});
}

void Topology::finalize() {
  // CSR build straight from the directed link list: count degrees, prefix
  // sum, scatter, then sort each node's slice by neighbour id so routing
  // tie-breaks stay deterministic.
  adj_off_.assign(static_cast<std::size_t>(n_) + 1, 0);
  for (const auto& ends : links_) {
    ++adj_off_[static_cast<std::size_t>(ends.from) + 1];
  }
  for (std::size_t u = 0; u < static_cast<std::size_t>(n_); ++u) {
    adj_off_[u + 1] += adj_off_[u];
  }
  adj_.resize(links_.size());
  std::vector<std::uint32_t> cursor(adj_off_.begin(), adj_off_.end() - 1);
  for (LinkId id = 0; id < link_count(); ++id) {
    const auto& ends = links_[static_cast<std::size_t>(id)];
    adj_[cursor[static_cast<std::size_t>(ends.from)]++] = Neighbor{ends.to, id};
  }
  for (std::size_t u = 0; u < static_cast<std::size_t>(n_); ++u) {
    std::sort(adj_.begin() + adj_off_[u], adj_.begin() + adj_off_[u + 1],
              [](const Neighbor& a, const Neighbor& b) { return a.node < b.node; });
  }
}

Topology Topology::linear(int n) {
  check_size(n);
  Topology t(TopologyKind::kLinear, n);
  for (NodeId i = 0; i + 1 < n; ++i) t.add_wire(i, i + 1);
  t.cols_ = n;
  t.finalize();
  return t;
}

Topology Topology::ring(int n) {
  check_size(n);
  Topology t(TopologyKind::kRing, n);
  for (NodeId i = 0; i + 1 < n; ++i) t.add_wire(i, i + 1);
  if (n > 2) t.add_wire(n - 1, 0);  // n<=2 would duplicate the single wire
  t.cols_ = n;
  t.finalize();
  return t;
}

Topology Topology::mesh(int n) {
  check_size(n);
  Topology t(TopologyKind::kMesh, n);
  const auto [rows, cols] = mesh_shape(n);
  t.rows_ = rows;
  t.cols_ = cols;
  const auto id = [cols = cols](int r, int c) { return r * cols + c; };
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      if (c + 1 < cols) t.add_wire(id(r, c), id(r, c + 1));
      if (r + 1 < rows) t.add_wire(id(r, c), id(r + 1, c));
    }
  }
  t.finalize();
  return t;
}

Topology Topology::hypercube(int n) {
  check_hypercube_size(n);
  Topology t(TopologyKind::kHypercube, n);
  for (NodeId i = 0; i < n; ++i) {
    for (int bit = 1; bit < n; bit <<= 1) {
      const NodeId j = i ^ bit;
      if (j > i) t.add_wire(i, j);
    }
  }
  t.cols_ = n;
  t.finalize();
  return t;
}

Topology Topology::tiled(TopologyKind kind, int partition_size, int copies) {
  if (copies <= 0) throw std::invalid_argument("copies must be > 0");
  const Topology base = make(kind, partition_size);
  Topology t(kind, partition_size * copies);
  t.tile_size_ = partition_size;
  t.copies_ = copies;
  t.rows_ = base.rows_;
  t.cols_ = base.cols_;
  for (int copy = 0; copy < copies; ++copy) {
    const NodeId offset = copy * partition_size;
    // Each physical wire of the base appears once as (from < to).
    for (LinkId id = 0; id < base.link_count(); ++id) {
      const LinkEnds ends = base.link_ends(id);
      if (ends.from < ends.to) t.add_wire(ends.from + offset, ends.to + offset);
    }
  }
  t.finalize();
  return t;
}

Topology Topology::torus(int n) {
  check_size(n);
  Topology t(TopologyKind::kTorus, n);
  const auto [rows, cols] = mesh_shape(n);
  t.rows_ = rows;
  t.cols_ = cols;
  const auto id = [cols = cols](int r, int c) { return r * cols + c; };
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      if (c + 1 < cols) t.add_wire(id(r, c), id(r, c + 1));
      if (r + 1 < rows) t.add_wire(id(r, c), id(r + 1, c));
    }
    if (cols > 2) t.add_wire(id(r, cols - 1), id(r, 0));
  }
  if (rows > 2) {
    for (int c = 0; c < cols; ++c) t.add_wire(id(rows - 1, c), id(0, c));
  }
  t.finalize();
  return t;
}

Topology Topology::tree(int n) {
  check_size(n);
  Topology t(TopologyKind::kTree, n);
  for (NodeId i = 0; i < n; ++i) {
    const NodeId left = 2 * i + 1;
    const NodeId right = 2 * i + 2;
    if (left < n) t.add_wire(i, left);
    if (right < n) t.add_wire(i, right);
  }
  t.cols_ = n;
  t.finalize();
  return t;
}

Topology Topology::make(TopologyKind kind, int n) {
  switch (kind) {
    case TopologyKind::kLinear: return linear(n);
    case TopologyKind::kRing: return ring(n);
    case TopologyKind::kMesh: return mesh(n);
    case TopologyKind::kHypercube: return hypercube(n);
    case TopologyKind::kTorus: return torus(n);
    case TopologyKind::kTree: return tree(n);
  }
  throw std::invalid_argument("unknown topology kind");
}

std::string Topology::label() const {
  return std::to_string(n_) + topology_letter(kind_);
}

int Topology::max_degree() const {
  int best = 0;
  for (NodeId u = 0; u < n_; ++u) best = std::max(best, degree(u));
  return best;
}

std::optional<LinkId> Topology::link_between(NodeId u, NodeId v) const {
  for (const auto& nb : neighbors(u)) {
    if (nb.node == v) return nb.link;
  }
  return std::nullopt;
}

int Topology::diameter() const {
  int best = 0;
  std::vector<int> dist(static_cast<std::size_t>(n_));
  for (NodeId src = 0; src < n_; ++src) {
    std::fill(dist.begin(), dist.end(), -1);
    dist[static_cast<std::size_t>(src)] = 0;
    std::deque<NodeId> frontier{src};
    while (!frontier.empty()) {
      const NodeId u = frontier.front();
      frontier.pop_front();
      for (const auto& nb : neighbors(u)) {
        if (dist[static_cast<std::size_t>(nb.node)] < 0) {
          dist[static_cast<std::size_t>(nb.node)] = dist[static_cast<std::size_t>(u)] + 1;
          best = std::max(best, dist[static_cast<std::size_t>(nb.node)]);
          frontier.push_back(nb.node);
        }
      }
    }
  }
  return best;
}

}  // namespace tmc::net
