// tmcsim -- interconnection topologies.
//
// The paper's testbed wires sixteen T805s through INMOS C004 link switches
// into four topologies -- linear array, ring, mesh, and hypercube -- at sizes
// 1, 2, 4, 8, 16 (powers of two). Each Transputer has four bidirectional
// links, which bounds the node degree at 4.
//
// Adjacency is stored in CSR form (one offset array plus one flat payload
// array) so a 1024-node machine's hot routing state is two contiguous
// allocations instead of N pointer-chased vectors.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <utility>
#include <vector>

namespace tmc::net {

using NodeId = int;
using LinkId = int;
inline constexpr NodeId kInvalidNode = -1;
inline constexpr LinkId kInvalidLink = -1;

enum class TopologyKind {
  kLinear,
  kRing,
  kMesh,
  kHypercube,
  // Extensions beyond the paper's four (still degree <= 4):
  kTorus,  // 2D mesh with wrap-around links
  kTree,   // complete binary tree
};

/// One-letter label used in the paper's figures (L, R, M, H).
[[nodiscard]] char topology_letter(TopologyKind kind);
[[nodiscard]] std::string topology_name(TopologyKind kind);

/// An undirected interconnect graph expanded into directed links.
///
/// Every physical wire between nodes u and v contributes two unidirectional
/// links (u->v and v->u), matching the full-duplex Transputer links; each
/// direction is an independently contended resource.
class Topology {
 public:
  /// Builders for the paper's four topologies plus extensions. Any `n` >= 1
  /// is accepted except for the hypercube, which needs a power of two; the
  /// paper's testbed stops at 16 nodes, but scaling studies go to 1024+
  /// (the degree-4 Transputer constraint still holds for linear, ring,
  /// mesh, and torus at any size -- check transputer_feasible() for the
  /// hypercube, whose degree is log2 n).
  static Topology linear(int n);
  static Topology ring(int n);
  /// 2D mesh; uses the most-square factoring of n with rows <= cols
  /// (8: 2x4, 12: 3x4, 32: 4x8, prime n degenerates to 1xn).
  static Topology mesh(int n);
  static Topology hypercube(int n);
  /// 2D torus: the mesh plus wrap-around links (skipped along dimensions
  /// of size <= 2, where they would duplicate existing wires).
  static Topology torus(int n);
  /// Complete binary tree rooted at node 0 (children of i: 2i+1, 2i+2).
  static Topology tree(int n);
  static Topology make(TopologyKind kind, int n);

  /// `copies` disjoint instances of a `partition_size`-node topology, with
  /// copy c occupying nodes [c*partition_size, (c+1)*partition_size). This
  /// is the paper's machine configuration: the C004 switches wire each
  /// partition as its own network, and jobs never span partitions.
  static Topology tiled(TopologyKind kind, int partition_size, int copies);

  /// Most-square factoring n = rows * cols with rows <= cols, used by the
  /// mesh and torus builders (and by the algorithmic router).
  [[nodiscard]] static std::pair<int, int> mesh_shape(int n);

  [[nodiscard]] int node_count() const { return n_; }
  [[nodiscard]] int link_count() const { return static_cast<int>(links_.size()); }
  [[nodiscard]] TopologyKind kind() const { return kind_; }
  /// Figure label, e.g. "8R" for an 8-node ring.
  [[nodiscard]] std::string label() const;

  /// Nodes per disjoint tile (== node_count() unless built by tiled()).
  [[nodiscard]] int tile_size() const { return tile_size_; }
  [[nodiscard]] int tile_copies() const { return copies_; }
  /// Mesh/torus tile dimensions (rows <= cols); {1, tile_size} otherwise.
  [[nodiscard]] int tile_rows() const { return rows_; }
  [[nodiscard]] int tile_cols() const { return cols_; }

  struct Neighbor {
    NodeId node;
    LinkId link;  // directed link from the queried node to `node`
  };
  /// Neighbours of `u` in ascending node order (deterministic routing ties).
  [[nodiscard]] std::span<const Neighbor> neighbors(NodeId u) const {
    const auto lo = adj_off_[static_cast<std::size_t>(u)];
    const auto hi = adj_off_[static_cast<std::size_t>(u) + 1];
    return {adj_.data() + lo, adj_.data() + hi};
  }
  [[nodiscard]] int degree(NodeId u) const {
    return static_cast<int>(adj_off_[static_cast<std::size_t>(u) + 1] -
                            adj_off_[static_cast<std::size_t>(u)]);
  }
  [[nodiscard]] int max_degree() const;

  /// Directed link u->v, or nullopt if not adjacent.
  [[nodiscard]] std::optional<LinkId> link_between(NodeId u, NodeId v) const;

  struct LinkEnds {
    NodeId from;
    NodeId to;
  };
  [[nodiscard]] LinkEnds link_ends(LinkId id) const { return links_.at(static_cast<std::size_t>(id)); }

  /// Longest shortest path over all node pairs.
  [[nodiscard]] int diameter() const;

  /// True if every node respects the 4-link Transputer constraint.
  [[nodiscard]] bool transputer_feasible() const { return max_degree() <= 4; }

  /// Heap bytes held by the adjacency + link arrays (scaling reports).
  [[nodiscard]] std::size_t storage_bytes() const {
    return adj_off_.capacity() * sizeof(adj_off_[0]) +
           adj_.capacity() * sizeof(adj_[0]) +
           links_.capacity() * sizeof(links_[0]);
  }

 private:
  Topology(TopologyKind kind, int n) : kind_(kind), n_(n), tile_size_(n) {}
  /// Adds the two directed links of one physical wire.
  void add_wire(NodeId u, NodeId v);
  /// Builds the CSR adjacency from links_; every builder's last step.
  void finalize();

  TopologyKind kind_;
  int n_;
  int tile_size_;
  int copies_ = 1;
  int rows_ = 1;
  int cols_ = 1;
  /// CSR: neighbours of u live in adj_[adj_off_[u] .. adj_off_[u+1]).
  std::vector<std::uint32_t> adj_off_;
  std::vector<Neighbor> adj_;
  std::vector<LinkEnds> links_;
};

}  // namespace tmc::net
