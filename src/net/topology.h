// tmcsim -- interconnection topologies.
//
// The paper's testbed wires sixteen T805s through INMOS C004 link switches
// into four topologies -- linear array, ring, mesh, and hypercube -- at sizes
// 1, 2, 4, 8, 16 (powers of two). Each Transputer has four bidirectional
// links, which bounds the node degree at 4.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace tmc::net {

using NodeId = int;
using LinkId = int;
inline constexpr NodeId kInvalidNode = -1;
inline constexpr LinkId kInvalidLink = -1;

enum class TopologyKind {
  kLinear,
  kRing,
  kMesh,
  kHypercube,
  // Extensions beyond the paper's four (still degree <= 4):
  kTorus,  // 2D mesh with wrap-around links
  kTree,   // complete binary tree
};

/// One-letter label used in the paper's figures (L, R, M, H).
[[nodiscard]] char topology_letter(TopologyKind kind);
[[nodiscard]] std::string topology_name(TopologyKind kind);

/// An undirected interconnect graph expanded into directed links.
///
/// Every physical wire between nodes u and v contributes two unidirectional
/// links (u->v and v->u), matching the full-duplex Transputer links; each
/// direction is an independently contended resource.
class Topology {
 public:
  /// Builders for the paper's four topologies. `n` must be a power of two
  /// in [1, 16] (larger sizes are supported for extension studies as long
  /// as the degree-4 Transputer constraint holds).
  static Topology linear(int n);
  static Topology ring(int n);
  /// 2D mesh; for non-square powers of two uses the most-square factoring
  /// (2: 1x2, 8: 2x4, 32: 4x8, ...).
  static Topology mesh(int n);
  static Topology hypercube(int n);
  /// 2D torus: the mesh plus wrap-around links (skipped along dimensions
  /// of size <= 2, where they would duplicate existing wires).
  static Topology torus(int n);
  /// Complete binary tree rooted at node 0 (children of i: 2i+1, 2i+2).
  static Topology tree(int n);
  static Topology make(TopologyKind kind, int n);

  /// `copies` disjoint instances of a `partition_size`-node topology, with
  /// copy c occupying nodes [c*partition_size, (c+1)*partition_size). This
  /// is the paper's machine configuration: the C004 switches wire each
  /// partition as its own network, and jobs never span partitions.
  static Topology tiled(TopologyKind kind, int partition_size, int copies);

  [[nodiscard]] int node_count() const { return n_; }
  [[nodiscard]] int link_count() const { return static_cast<int>(links_.size()); }
  [[nodiscard]] TopologyKind kind() const { return kind_; }
  /// Figure label, e.g. "8R" for an 8-node ring.
  [[nodiscard]] std::string label() const;

  struct Neighbor {
    NodeId node;
    LinkId link;  // directed link from the queried node to `node`
  };
  /// Neighbours of `u` in ascending node order (deterministic routing ties).
  [[nodiscard]] const std::vector<Neighbor>& neighbors(NodeId u) const;
  [[nodiscard]] int degree(NodeId u) const;
  [[nodiscard]] int max_degree() const;

  /// Directed link u->v, or nullopt if not adjacent.
  [[nodiscard]] std::optional<LinkId> link_between(NodeId u, NodeId v) const;

  struct LinkEnds {
    NodeId from;
    NodeId to;
  };
  [[nodiscard]] LinkEnds link_ends(LinkId id) const { return links_.at(static_cast<std::size_t>(id)); }

  /// Longest shortest path over all node pairs.
  [[nodiscard]] int diameter() const;

  /// True if every node respects the 4-link Transputer constraint.
  [[nodiscard]] bool transputer_feasible() const { return max_degree() <= 4; }

 private:
  Topology(TopologyKind kind, int n) : kind_(kind), n_(n), adj_(static_cast<std::size_t>(n)) {}
  /// Adds the two directed links of one physical wire.
  void add_wire(NodeId u, NodeId v);
  void sort_adjacency();

  TopologyKind kind_;
  int n_;
  std::vector<std::vector<Neighbor>> adj_;
  std::vector<LinkEnds> links_;
};

}  // namespace tmc::net
