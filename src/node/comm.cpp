#include "node/comm.h"

#include <cassert>
#include <stdexcept>
#include <utility>

namespace tmc::node {

CommSystem::CommSystem(sim::Simulation& sim, net::Network& network,
                       std::vector<Transputer*> cpus, Params params)
    : sim_(sim), network_(network), cpus_(std::move(cpus)), params_(params) {
  network_.set_delivery_handler(
      [this](const net::Message& msg, mem::Block buffer) {
        on_delivery(msg, std::move(buffer));
      });
  network_.set_progress_gate([this](const net::Message& msg) {
    return msg.job == 0 || job_active(msg.job);
  });
  network_.set_hop_hook([this](net::NodeId hop, const net::Message& msg,
                               std::size_t bytes) {
    // Transit buffer management + software copy at intermediate nodes; the
    // destination's CPU cost is charged by on_delivery instead.
    if (hop != msg.dst_node) {
      const sim::SimTime cost =
          params_.hop_cpu +
          params_.hop_cpu_per_byte * static_cast<std::int64_t>(bytes);
      cpus_[static_cast<std::size_t>(hop)]->post_service(cost, nullptr);
    }
  });
  for (Transputer* cpu : cpus_) {
    cpu->set_send_dispatcher(
        [this](Process& src, const SendOp& op, mem::Block payload) {
          send_from(src, op, std::move(payload));
        });
  }
}

void CommSystem::register_process(Process& p) {
  assert(p.node() != net::kInvalidNode && "bind process to a node first");
  const auto [it, inserted] = registry_.emplace(p.id(), &p);
  (void)it;
  if (!inserted) {
    throw std::logic_error("endpoint " + std::to_string(p.id()) +
                           " already registered");
  }
}

void CommSystem::unregister_process(net::EndpointId id) {
  registry_.erase(id);
}

Process* CommSystem::find(net::EndpointId id) const {
  const auto it = registry_.find(id);
  return it == registry_.end() ? nullptr : it->second;
}

void CommSystem::set_job_active(JobId job, bool active) {
  if (active) {
    if (suspended_jobs_.erase(job) > 0) network_.kick();
  } else {
    suspended_jobs_.insert(job);
  }
}

void CommSystem::send_from(Process& src, const SendOp& op,
                           mem::Block payload) {
  Process* dst = find(op.dst);
  if (dst == nullptr) {
    throw std::logic_error("send to unregistered endpoint " +
                           std::to_string(op.dst));
  }
  net::Message msg;
  msg.id = next_message_id_++;
  msg.src_node = src.node();
  msg.dst_node = dst->node();
  msg.src_endpoint = src.id();
  msg.dst_endpoint = op.dst;
  msg.job = src.job();
  msg.tag = op.tag;
  msg.bytes = op.bytes;
  ++sends_;
  if (msg.src_node == msg.dst_node) ++self_sends_;
  network_.send(msg, std::move(payload));
}

void CommSystem::on_delivery(const net::Message& msg, mem::Block buffer) {
  Process* dst = find(msg.dst_endpoint);
  if (dst == nullptr) {
    throw std::logic_error("delivery to unregistered endpoint " +
                           std::to_string(msg.dst_endpoint));
  }
  ++deliveries_;
  Transputer* cpu = cpus_[static_cast<std::size_t>(dst->node())];
  cpu->post_service(params_.delivery_cpu,
                    [cpu, dst, msg, buffer = std::move(buffer)]() mutable {
                      cpu->deliver(*dst, msg, std::move(buffer));
                    });
}

}  // namespace tmc::node
