#include "node/comm.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>
#include <utility>

namespace tmc::node {

CommSystem::CommSystem(sim::Simulation& sim, net::Network& network,
                       std::vector<Transputer*> cpus, Params params)
    : sim_(sim), network_(network), cpus_(std::move(cpus)), params_(params) {
  network_.set_delivery_handler(
      [this](const net::Message& msg, mem::Block buffer) {
        on_delivery(msg, std::move(buffer));
      });
  network_.set_progress_gate([this](const net::Message& msg) {
    return msg.job == 0 || job_active(msg.job);
  });
  network_.set_hop_hook([this](net::NodeId hop, const net::Message& msg,
                               std::size_t bytes) {
    // Transit buffer management + software copy at intermediate nodes; the
    // destination's CPU cost is charged by on_delivery instead.
    if (hop != msg.dst_node) {
      const sim::SimTime cost =
          params_.hop_cpu +
          params_.hop_cpu_per_byte * static_cast<std::int64_t>(bytes);
      cpus_[static_cast<std::size_t>(hop)]->post_service(cost, nullptr);
    }
  });
  for (Transputer* cpu : cpus_) {
    cpu->set_send_dispatcher(
        [this](Process& src, const SendOp& op, mem::Block payload) {
          send_from(src, op, std::move(payload));
        });
  }
}

void CommSystem::grow_window(JobWindow& window, std::uint32_t need) {
  const std::uint32_t cap =
      std::max({need, window.cap * 2, std::uint32_t{4}});
  const auto off = static_cast<std::uint32_t>(slots_.size());
  slots_.resize(slots_.size() + cap, nullptr);
  for (std::uint32_t i = 0; i < window.cap; ++i) {
    slots_[off + i] = slots_[window.off + i];
    slots_[window.off + i] = nullptr;  // dead block must not alias processes
  }
  window.off = off;
  window.cap = cap;
}

void CommSystem::register_process(Process& p) {
  assert(p.node() != net::kInvalidNode && "bind process to a node first");
  const auto job = static_cast<std::size_t>(net::endpoint_job(p.id()));
  const auto rank = static_cast<std::uint32_t>(net::endpoint_rank(p.id()));
  if (jobs_.size() <= job) jobs_.resize(job + 1);
  JobWindow& window = jobs_[job];
  if (rank >= window.cap) grow_window(window, rank + 1);
  Process*& slot = slots_[window.off + rank];
  if (slot != nullptr) {
    throw std::logic_error("endpoint " + std::to_string(p.id()) +
                           " already registered");
  }
  slot = &p;
}

void CommSystem::unregister_process(net::EndpointId id) {
  const auto job = static_cast<std::size_t>(net::endpoint_job(id));
  const auto rank = static_cast<std::uint32_t>(net::endpoint_rank(id));
  if (job < jobs_.size() && rank < jobs_[job].cap) {
    slots_[jobs_[job].off + rank] = nullptr;
  }
}

Process* CommSystem::find(net::EndpointId id) const {
  const auto job = static_cast<std::size_t>(net::endpoint_job(id));
  const auto rank = static_cast<std::uint32_t>(net::endpoint_rank(id));
  if (job >= jobs_.size() || rank >= jobs_[job].cap) return nullptr;
  return slots_[jobs_[job].off + rank];
}

void CommSystem::set_job_active(JobId job, bool active) {
  const auto it =
      std::find(suspended_jobs_.begin(), suspended_jobs_.end(), job);
  if (active) {
    if (it != suspended_jobs_.end()) {
      // Membership only -- order is irrelevant, so swap-and-pop.
      *it = suspended_jobs_.back();
      suspended_jobs_.pop_back();
      network_.kick();
    }
  } else if (it == suspended_jobs_.end()) {
    suspended_jobs_.push_back(job);
  }
}

void CommSystem::enable_faults(net::FaultPlane* plane, int retry_budget,
                               sim::SimTime retry_backoff,
                               std::function<double()> jitter,
                               std::function<void(JobId)> on_comm_failure) {
  fault_ = plane;
  retry_budget_ = retry_budget;
  retry_backoff_ = retry_backoff;
  jitter_ = std::move(jitter);
  on_comm_failure_ = std::move(on_comm_failure);
  network_.set_loss_hook(
      [this](const net::Message& msg) { on_loss(msg); });
}

void CommSystem::abort_job(JobId job) {
  if (incarnations_.size() <= job) incarnations_.resize(job + 1, 0);
  ++incarnations_[job];
  // The job may die mid-rotation with its traffic frozen: unfreeze so the
  // now-stale messages drain out of the parked sets and die at delivery
  // instead of pinning transit buffers forever.
  set_job_active(job, true);
  network_.kick();
}

void CommSystem::on_loss(const net::Message& msg) {
  if (stale(msg)) {
    ++stale_discards_;
    return;
  }
  if (static_cast<int>(msg.attempts) >= retry_budget_) {
    ++messages_lost_;
    if (on_comm_failure_) on_comm_failure_(static_cast<JobId>(msg.job));
    return;
  }
  ++retries_;
  net::Message retry = msg;
  retry.attempts = static_cast<std::uint16_t>(msg.attempts + 1);
  // Exponential backoff, jittered from the fault library's seeded stream so
  // replays stay bit-identical: backoff * 2^attempts * (1 + jitter).
  const double scale =
      static_cast<double>(std::uint64_t{1} << std::min<unsigned>(msg.attempts, 20));
  const double spread = jitter_ ? jitter_() : 0.0;
  const sim::SimTime delay = sim::SimTime::nanoseconds(static_cast<std::int64_t>(
      retry_backoff_.to_seconds() * scale * (1.0 + spread) * 1e9));
  sim_.schedule(delay, [this, retry] { resend(retry); });
}

void CommSystem::resend(net::Message msg) {
  if (stale(msg)) {
    ++stale_discards_;
    return;
  }
  if (fault_ != nullptr && !fault_->node_alive(msg.src_node)) {
    // The retransmit daemon died with its node; the job abort that follows
    // the crash owns recovery from here.
    ++messages_lost_;
    return;
  }
  msg.id = next_message_id_++;
  if (timeline_ != nullptr) {
    // A fresh flow id: the lost attempt's flow-start stays unpaired (the
    // tooling counts those as fault-truncated flows).
    msg.flow = msg.id;
    timeline_->flow_start(
        node_track_base_ + static_cast<obs::TrackId>(msg.src_node),
        name_send_, sim_.now(), msg.flow, static_cast<double>(msg.job));
  } else {
    msg.flow = 0;
  }
  // The staging copy is not re-modelled: the retransmit daemon resends from
  // the original transit buffer, so the payload rides as accounting only.
  network_.send(msg, mem::Block{});
}

void CommSystem::inject(Process& src, net::EndpointId dst, int tag,
                        std::size_t bytes) {
  send_from(src, SendOp{dst, tag, bytes}, mem::Block{});
}

void CommSystem::send_from(Process& src, const SendOp& op,
                           mem::Block payload) {
  Process* dst = find(op.dst);
  if (dst == nullptr) {
    if (fault_ != nullptr) {
      // Mid-abort race: force-exiting a process whose charge just completed
      // can fire one last send after its siblings were unregistered.
      ++messages_lost_;
      return;
    }
    throw std::logic_error("send to unregistered endpoint " +
                           std::to_string(op.dst));
  }
  net::Message msg;
  msg.id = next_message_id_++;
  msg.src_node = src.node();
  msg.dst_node = dst->node();
  msg.src_endpoint = src.id();
  msg.dst_endpoint = op.dst;
  msg.job = src.job();
  msg.tag = op.tag;
  msg.bytes = op.bytes;
  if (fault_ != nullptr) {
    msg.incarnation = incarnation(static_cast<JobId>(msg.job));
  }
  if (timeline_ != nullptr) {
    msg.flow = msg.id;
    timeline_->flow_start(
        node_track_base_ + static_cast<obs::TrackId>(msg.src_node),
        name_send_, sim_.now(), msg.flow, static_cast<double>(msg.job));
  }
  ++sends_;
  if (msg.src_node == msg.dst_node) ++self_sends_;
  network_.send(msg, std::move(payload));
}

std::uint32_t CommSystem::acquire_delivery(const net::Message& msg,
                                           mem::Block buffer, Process* dst) {
  std::uint32_t slot;
  if (delivery_free_ != kFreeListEnd) {
    slot = delivery_free_;
    delivery_free_ = delivery_pool_[slot].next_free;
  } else {
    if (delivery_pool_.size() == delivery_pool_.capacity()) {
      delivery_pool_.reserve(
          std::max<std::size_t>(16, delivery_pool_.size() * 2));
    }
    slot = static_cast<std::uint32_t>(delivery_pool_.size());
    delivery_pool_.emplace_back();
  }
  DeliverySlot& d = delivery_pool_[slot];
  d.msg = msg;
  d.buffer = std::move(buffer);
  d.dst = dst;
  d.live = true;
  return slot;
}

void CommSystem::finish_delivery(std::uint32_t slot, std::uint32_t generation) {
  DeliverySlot& d = delivery_pool_[slot];
  assert(d.live && d.generation == generation);
  (void)generation;
  const net::Message msg = d.msg;
  mem::Block buffer = std::move(d.buffer);
  Process* dst = d.dst;
  // Retire before delivering: the deposit can wake the receiver, whose next
  // receive can trigger another delivery that reuses this slot.
  d.live = false;
  ++d.generation;
  d.next_free = delivery_free_;
  delivery_free_ = slot;
  if (fault_ != nullptr) {
    // The job can be aborted (or the node can die) during the deposit CPU
    // charge: re-resolve the endpoint and re-check liveness before touching
    // the cached process pointer.
    if (stale(msg)) {
      ++stale_discards_;
      return;
    }
    if (find(msg.dst_endpoint) != dst ||
        !fault_->node_alive(msg.dst_node)) {
      on_loss(msg);
      return;
    }
  }
  if (timeline_ != nullptr && msg.flow != 0) {
    timeline_->flow_finish(
        node_track_base_ + static_cast<obs::TrackId>(dst->node()),
        name_recv_, sim_.now(), msg.flow, static_cast<double>(msg.job));
  }
  // Steal-protocol messages are consumed at the destination node by the
  // stealing runtime (which replies by injecting a grant/deny) instead of
  // being deposited into a mailbox. They still paid the full transport and
  // deposit costs above, and the fault re-checks already ran: a stale or
  // crater-addressed steal message never reaches the hook.
  if (steal_hook_ != nullptr && steal_hook_(msg)) return;
  cpus_[static_cast<std::size_t>(dst->node())]->deliver(*dst, msg,
                                                        std::move(buffer));
}

void CommSystem::on_delivery(const net::Message& msg, mem::Block buffer) {
  Process* dst = find(msg.dst_endpoint);
  if (fault_ != nullptr) {
    if (stale(msg)) {
      ++stale_discards_;
      return;  // `buffer` releases on return
    }
    if (dst == nullptr || !fault_->node_alive(msg.dst_node)) {
      // Delivered into a crater: the destination died (or its job was torn
      // down) while the message was in flight. Exactly one loss per
      // message fires here, whatever the transport fragmented it into.
      on_loss(msg);
      return;
    }
  } else if (dst == nullptr) {
    throw std::logic_error("delivery to unregistered endpoint " +
                           std::to_string(msg.dst_endpoint));
  }
  ++deliveries_;
  Transputer* cpu = cpus_[static_cast<std::size_t>(dst->node())];
  const std::uint32_t slot = acquire_delivery(msg, std::move(buffer), dst);
  cpu->post_service(
      params_.delivery_cpu,
      [this, slot, generation = delivery_pool_[slot].generation] {
        finish_delivery(slot, generation);
      });
}

}  // namespace tmc::node
