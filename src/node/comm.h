// tmcsim -- the mailbox-based asynchronous communication system.
//
// The paper's software stack (section 3.2) layers a mailbox communication
// package over the Transputer's adjacent-link channels so that any pair of
// processes can exchange messages. CommSystem is that package: it maps
// endpoint ids to processes, frames messages, injects them into the
// transport, charges per-hop and per-delivery CPU costs (as high-priority
// work, which preempts application processes -- a real overhead the paper
// measures), and deposits arrivals into the destination mailbox. Self-sends
// traverse the same buffered path, as the paper notes they must.
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <vector>

#include "mem/mmu.h"
#include "net/network.h"
#include "node/process.h"
#include "node/transputer.h"
#include "obs/timeline.h"
#include "sim/simulation.h"

namespace tmc::node {

struct CommParams {
  /// CPU charged at each intermediate node for store-and-forward buffer
  /// management (comm-daemon work, sharing the CPU at low priority).
  sim::SimTime hop_cpu = sim::SimTime::microseconds(20);
  /// Per-byte CPU charged at each intermediate node: store-and-forward on
  /// the T805 is software -- the forwarding node's processor copies the
  /// message between link buffers and shares its memory bus with the link
  /// DMA engines (~4 MB/s effective). This is a real, load-dependent cost:
  /// it steals cycles from busy nodes, which is precisely why heavy
  /// multiprogramming suffers on long-diameter topologies (paper 5.2).
  sim::SimTime hop_cpu_per_byte = sim::SimTime::nanoseconds(250);
  /// CPU charged at the destination node to deposit into the mailbox.
  sim::SimTime delivery_cpu = sim::SimTime::microseconds(20);
};

class CommSystem {
 public:
  using Params = CommParams;

  /// `cpus[i]` must be node i's Transputer. Installs itself as every CPU's
  /// send dispatcher and as the network's delivery handler / hop hook.
  CommSystem(sim::Simulation& sim, net::Network& network,
             std::vector<Transputer*> cpus, Params params = {});

  CommSystem(const CommSystem&) = delete;
  CommSystem& operator=(const CommSystem&) = delete;

  /// Processes must be registered (after node binding) before any message
  /// addressed to them is sent.
  void register_process(Process& p);
  void unregister_process(net::EndpointId id);
  [[nodiscard]] Process* find(net::EndpointId id) const;

  /// Coscheduling hook: while a job is marked inactive its messages stop
  /// progressing through the network (parking where they are and pinning
  /// their buffers); marking it active again kicks them loose. Called by
  /// the partition schedulers on gang turn boundaries.
  void set_job_active(JobId job, bool active);
  [[nodiscard]] bool job_active(JobId job) const {
    return std::find(suspended_jobs_.begin(), suspended_jobs_.end(), job) ==
           suspended_jobs_.end();
  }

  // --- fault mode ---------------------------------------------------------
  /// Arms delivery timeouts and bounded retry (core layer wiring). The fault
  /// plane answers liveness questions; a message lost to a fault is resent
  /// up to `retry_budget` times with exponential backoff (`retry_backoff`
  /// doubling per attempt, scaled by 1 + jitter() from a seeded stream)
  /// before `on_comm_failure(job)` declares the job's communication broken.
  void enable_faults(net::FaultPlane* plane, int retry_budget,
                     sim::SimTime retry_backoff,
                     std::function<double()> jitter,
                     std::function<void(JobId)> on_comm_failure);

  /// Fault-mode job teardown: bumps the job's incarnation so in-flight
  /// messages and queued resends addressed to its old life die quietly at
  /// delivery, unfreezes its traffic and kicks the parked sets loose.
  void abort_job(JobId job);

  /// Resends attempted after a fault-induced loss.
  [[nodiscard]] std::uint64_t retries() const { return retries_; }
  /// Messages abandoned after exhausting the retry budget (or orphaned by a
  /// dead source).
  [[nodiscard]] std::uint64_t messages_lost() const { return messages_lost_; }
  /// Deliveries/resends discarded because their job was restarted.
  [[nodiscard]] std::uint64_t stale_discards() const { return stale_discards_; }

  /// Optional timeline recorder (null = off): every send stamps its message
  /// with a flow id and records a flow-start on the source node's track;
  /// the mailbox deposit records the matching flow-finish on the
  /// destination's, drawing the send->receive causality arrow in Perfetto.
  /// `node_track_base` is node 0's TrackId (node tracks are contiguous).
  void set_timeline(obs::Timeline* timeline, obs::TrackId node_track_base) {
    timeline_ = timeline;
    node_track_base_ = node_track_base;
    if (timeline_ != nullptr) {
      name_send_ = timeline_->intern("msg-send");
      name_recv_ = timeline_->intern("msg-recv");
    }
  }

  /// Work-stealing runtime hook (core layer wiring): invoked once per
  /// delivered message after the mailbox-deposit CPU charge and the fault
  /// liveness/staleness re-checks, immediately before the mailbox deposit.
  /// Returning true consumes the message (the steal protocol handled it at
  /// the destination node); false deposits it normally. Null (the default)
  /// is one untaken branch per delivery.
  void set_steal_hook(std::function<bool(const net::Message&)> hook) {
    steal_hook_ = std::move(hook);
  }

  /// Sends a message on behalf of `src` without `src` executing a SendOp.
  /// The stealing runtime's grant/deny replies originate at the victim's
  /// endpoint (its node, its incarnation, a real flow-start) but are
  /// produced by the delivery interceptor, not the victim's script; like
  /// fault resends the payload rides as accounting only -- transit and
  /// delivery costs are still charged from `bytes`.
  void inject(Process& src, net::EndpointId dst, int tag, std::size_t bytes);

  [[nodiscard]] std::uint64_t sends() const { return sends_; }
  [[nodiscard]] std::uint64_t self_sends() const { return self_sends_; }
  [[nodiscard]] std::uint64_t deliveries() const { return deliveries_; }
  [[nodiscard]] const Params& params() const { return params_; }

  /// Messages currently waiting in registered processes' mailboxes
  /// (machine-wide mailbox queue depth; sampled by the obs layer).
  [[nodiscard]] std::size_t pending_mailbox_messages() const {
    std::size_t total = 0;
    for (const Process* p : slots_) {
      if (p != nullptr) total += p->mailbox().size();
    }
    return total;
  }
  /// Node memory pinned by those undelivered messages, in bytes.
  [[nodiscard]] std::size_t pending_mailbox_bytes() const {
    std::size_t total = 0;
    for (const Process* p : slots_) {
      if (p != nullptr) total += p->mailbox().buffered_bytes();
    }
    return total;
  }

 private:
  /// A delivered message parked while the destination CPU charges the
  /// mailbox-deposit cost. Pool-indexed (like the wormhole's worm slots) so
  /// the daemon work item captures only {this, slot, generation} inline --
  /// deliveries allocate nothing once the pool is warm.
  struct DeliverySlot {
    net::Message msg;
    mem::Block buffer;
    Process* dst = nullptr;
    std::uint32_t generation = 0;
    std::uint32_t next_free = kFreeListEnd;
    bool live = false;
  };
  static constexpr std::uint32_t kFreeListEnd = 0xffffffffu;

  void send_from(Process& src, const SendOp& op, mem::Block payload);
  void on_delivery(const net::Message& msg, mem::Block buffer);
  std::uint32_t acquire_delivery(const net::Message& msg, mem::Block buffer,
                                 Process* dst);
  void finish_delivery(std::uint32_t slot, std::uint32_t generation);
  [[nodiscard]] std::uint32_t incarnation(JobId job) const {
    return job < incarnations_.size() ? incarnations_[job] : 0;
  }
  [[nodiscard]] bool stale(const net::Message& msg) const {
    return fault_ != nullptr &&
           msg.incarnation != incarnation(static_cast<JobId>(msg.job));
  }
  /// Loss reaction: schedule a backoff resend or declare comm failure.
  void on_loss(const net::Message& msg);
  void resend(net::Message msg);

  sim::Simulation& sim_;
  net::Network& network_;
  std::vector<Transputer*> cpus_;
  Params params_;
  /// Endpoint registry indexed [job][rank] via the canonical EndpointId
  /// encoding. JobIds are assigned densely by the workload generators and
  /// ranks are dense per job, so a per-job {offset, capacity} window into
  /// one flat slot arena resolves every send and delivery without hashing
  /// -- and without a heap vector per job. Windows grow geometrically by
  /// relocating to the arena tail (abandoned blocks are nulled; at 1024
  /// nodes the arena is one contiguous allocation instead of ~70 vectors).
  struct JobWindow {
    std::uint32_t off = 0;
    std::uint32_t cap = 0;
  };
  void grow_window(JobWindow& window, std::uint32_t need);
  std::vector<JobWindow> jobs_;
  std::vector<Process*> slots_;
  /// Jobs whose communication is frozen. At most the machine's total
  /// multiprogramming level entries, toggled on every gang turn: a flat
  /// vector with linear membership checks never allocates once warm, where
  /// a node-based set paid an allocation per suspension.
  std::vector<JobId> suspended_jobs_;
  std::vector<DeliverySlot> delivery_pool_;
  std::uint32_t delivery_free_ = kFreeListEnd;
  net::FaultPlane* fault_ = nullptr;
  int retry_budget_ = 0;
  sim::SimTime retry_backoff_;
  std::function<double()> jitter_;
  std::function<void(JobId)> on_comm_failure_;
  /// Per-job incarnation counters (dense job ids; grown only by abort_job,
  /// absent entries read as incarnation 0).
  std::vector<std::uint32_t> incarnations_;
  std::uint64_t retries_ = 0;
  std::uint64_t messages_lost_ = 0;
  std::uint64_t stale_discards_ = 0;
  std::function<bool(const net::Message&)> steal_hook_;
  obs::Timeline* timeline_ = nullptr;
  obs::TrackId node_track_base_ = 0;
  obs::NameId name_send_ = 0;
  obs::NameId name_recv_ = 0;
  std::uint64_t next_message_id_ = 1;
  std::uint64_t sends_ = 0;
  std::uint64_t self_sends_ = 0;
  std::uint64_t deliveries_ = 0;
};

}  // namespace tmc::node
