// tmcsim -- per-process mailbox.
//
// The paper's communication package gives every process an asynchronous
// mailbox; messages wait in MMU-allocated buffers until the process issues a
// matching receive, so undrained mailboxes hold node memory -- part of the
// memory pressure the paper measures under high multiprogramming levels.
#pragma once

#include <optional>
#include <vector>

#include "mem/mmu.h"
#include "net/message.h"
#include "node/program.h"

namespace tmc::node {

class Mailbox {
 public:
  struct Delivered {
    net::Message message;
    mem::Block buffer;  // freed when the receiver consumes the message
  };

  void deposit(net::Message message, mem::Block buffer) {
    queue_.push_back(Delivered{message, std::move(buffer)});
  }

  /// Removes and returns the oldest message matching `tag` (kAnyTag matches
  /// everything); nullopt if none is waiting.
  std::optional<Delivered> take(int tag) {
    for (auto it = queue_.begin(); it != queue_.end(); ++it) {
      if (tag == kAnyTag || it->message.tag == tag) {
        Delivered d = std::move(*it);
        queue_.erase(it);
        return d;
      }
    }
    return std::nullopt;
  }

  /// True if a message matching `tag` is waiting.
  [[nodiscard]] bool has(int tag) const {
    for (const auto& d : queue_) {
      if (tag == kAnyTag || d.message.tag == tag) return true;
    }
    return false;
  }

  [[nodiscard]] std::size_t size() const { return queue_.size(); }
  [[nodiscard]] bool empty() const { return queue_.empty(); }
  /// Bytes of node memory currently pinned by undelivered messages.
  [[nodiscard]] std::size_t buffered_bytes() const {
    std::size_t total = 0;
    for (const auto& d : queue_) total += d.buffer.size();
    return total;
  }

 private:
  /// Arrival order, oldest first. Mailboxes are shallow (a handful of
  /// in-flight messages), so a vector's shifting erase is cheap -- and unlike
  /// a deque it allocates nothing at construction, which matters because
  /// every Process embeds one.
  std::vector<Delivered> queue_;
};

}  // namespace tmc::node
