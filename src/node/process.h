// tmcsim -- a schedulable process.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "mem/mmu.h"
#include "net/message.h"
#include "node/mailbox.h"
#include "node/program.h"
#include "sim/time.h"

namespace tmc::node {

using JobId = std::uint32_t;
inline constexpr JobId kNoJob = 0xffffffffu;

enum class ProcessState {
  kNew,          // created, not yet made runnable
  kReady,        // in a CPU's low-priority ready queue
  kRunning,      // currently holding the CPU
  kBlockedRecv,  // waiting for a message
  kBlockedMem,   // waiting for an MMU grant
  kSuspended,    // runnable, but its job's gang turn is over
  kDone,         // exited
};

[[nodiscard]] std::string_view to_string(ProcessState s);

/// A process: an op script bound to a node, executed by that node's
/// Transputer under the local scheduling discipline.
///
/// Processes are created by the partition scheduler when a job is dispatched
/// and are never migrated (as in the paper's system). All mutable execution
/// state lives here; the Transputer interprets it.
class Process {
 public:
  Process(net::EndpointId id, JobId job, Program program)
      : id_(id), job_(job), program_(std::move(program)) {}

  Process(const Process&) = delete;
  Process& operator=(const Process&) = delete;

  [[nodiscard]] net::EndpointId id() const { return id_; }
  [[nodiscard]] JobId job() const { return job_; }
  [[nodiscard]] net::NodeId node() const { return node_; }
  [[nodiscard]] ProcessState state() const { return state_; }
  [[nodiscard]] bool done() const { return state_ == ProcessState::kDone; }
  /// False while the owning job's gang turn is over (see
  /// Transputer::suspend/resume); a woken process then parks as kSuspended
  /// instead of entering the ready queue.
  [[nodiscard]] bool gang_active() const { return gang_active_; }
  [[nodiscard]] const Program& program() const { return program_; }
  /// Mutable script access for dynamic-control runtimes (see ControlOp):
  /// callbacks running from `complete_op` append the process's next ops
  /// here. Never reorder or erase ops at or before the current pc.
  [[nodiscard]] Program& mutable_program() { return program_; }
  [[nodiscard]] Mailbox& mailbox() { return mailbox_; }
  [[nodiscard]] const Mailbox& mailbox() const { return mailbox_; }

  /// Per-dispatch CPU quantum. The hardware default is 2 ms; time-sharing
  /// policies override it with the RR-job quantum Q = (P/T) * q.
  [[nodiscard]] sim::SimTime quantum() const { return quantum_; }
  void set_quantum(sim::SimTime q) { quantum_ = q; }

  /// Invoked (by the Transputer) when the process exits.
  void set_on_exit(std::function<void(Process&)> cb) { on_exit_ = std::move(cb); }

  /// Placement; set once by the partition scheduler before the process runs.
  void bind_to_node(net::NodeId node) { node_ = node; }

  // --- accounting -------------------------------------------------------
  [[nodiscard]] sim::SimTime cpu_time() const { return cpu_time_; }
  [[nodiscard]] std::uint64_t dispatches() const { return dispatches_; }
  [[nodiscard]] std::uint64_t preemptions() const { return preemptions_; }
  [[nodiscard]] std::size_t held_bytes() const {
    std::size_t total = 0;
    for (const auto& b : held_) total += b.size();
    return total;
  }

 private:
  friend class Transputer;

  /// Per-op interpreter state.
  enum class OpPhase : std::uint8_t {
    kInit,  // op not yet started
    kCopy,  // paying a CPU copy/compute cost (compute_remaining_ counts down)
  };

  net::EndpointId id_;
  JobId job_;
  net::NodeId node_ = net::kInvalidNode;
  Program program_;
  Mailbox mailbox_;

  // Interpreter registers (owned by the Transputer while running).
  std::size_t pc_ = 0;
  OpPhase phase_ = OpPhase::kInit;
  sim::SimTime compute_remaining_;
  mem::Block send_buffer_;                     // staged outgoing buffer
  std::optional<Mailbox::Delivered> staged_;   // matched incoming message
  std::vector<mem::Block> held_;               // job data allocations
  int pending_recv_tag_ = kAnyTag;             // valid while kBlockedRecv

  ProcessState state_ = ProcessState::kNew;
  bool gang_active_ = true;
  sim::SimTime quantum_ = sim::SimTime::milliseconds(2);
  std::function<void(Process&)> on_exit_;

  // Accounting.
  sim::SimTime cpu_time_;
  std::uint64_t dispatches_ = 0;
  std::uint64_t preemptions_ = 0;
};

}  // namespace tmc::node
