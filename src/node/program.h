// tmcsim -- process programs.
//
// Applications are expressed as per-process op scripts: deterministic
// sequences of compute bursts, message sends/receives, and memory
// allocations. The workload builders (src/workload) emit the exact op lists
// of the paper's matrix-multiplication and sorting programs; the Transputer
// model interprets them under the scheduling policies.
#pragma once

#include <cstddef>
#include <functional>
#include <string>
#include <variant>
#include <vector>

#include "net/message.h"
#include "sim/time.h"

namespace tmc::node {

class Process;

/// Matches any tag in a ReceiveOp.
inline constexpr int kAnyTag = -1;

/// Burn CPU for `cost` (preemptible; spans quanta).
struct ComputeOp {
  sim::SimTime cost;
};

/// Asynchronous mailbox send: allocate a buffer from the local MMU (may
/// block on memory pressure), copy the payload (CPU cost), then hand the
/// message to the network. The sender continues immediately afterwards.
struct SendOp {
  net::EndpointId dst;
  int tag;
  std::size_t bytes;
};

/// Blocking tagged receive: waits until a message with a matching tag is in
/// the process's mailbox, then pays the copy-out cost and frees the buffer.
struct ReceiveOp {
  int tag = kAnyTag;
};

/// Allocates job data from the local MMU (may block). The block is held by
/// the process until it exits -- this is the job's resident working set and
/// the source of the paper's memory contention at high multiprogramming
/// levels.
struct AllocOp {
  std::size_t bytes;
};

/// Terminates the process.
struct ExitOp {};

/// Burns `cost` of CPU (modelling a scheduler-decision code path), then
/// invokes `action` to extend the script. This is the dynamic-control
/// escape hatch used by the work-stealing runtime: the callback inspects
/// runtime state (deques, in-flight steals) and appends the next ops.
///
/// Contract: `action` must leave at least one op after the ControlOp (the
/// interpreter asserts the pc stays in range), and the script must still
/// end in ExitOp. The action never fires on the preemption/abort path --
/// a preempted zero-remaining ControlOp completes via a zero-length
/// recharge at the next dispatch, so actions always run in normal op
/// context and a force-exited process can never execute one.
struct ControlOp {
  sim::SimTime cost;
  std::function<void(Process&)> action;
};

using Op =
    std::variant<ComputeOp, SendOp, ReceiveOp, AllocOp, ControlOp, ExitOp>;

/// A per-process script plus its static description.
struct Program {
  std::vector<Op> ops;

  [[nodiscard]] bool empty() const { return ops.empty(); }
  [[nodiscard]] std::size_t size() const { return ops.size(); }

  /// Builders that know their op count up front reserve it so a script is
  /// laid out in one allocation instead of log2(n) regrowths.
  Program& reserve(std::size_t op_count) {
    ops.reserve(op_count);
    return *this;
  }

  Program& compute(sim::SimTime cost) {
    ops.emplace_back(ComputeOp{cost});
    return *this;
  }
  Program& send(net::EndpointId dst, int tag, std::size_t bytes) {
    ops.emplace_back(SendOp{dst, tag, bytes});
    return *this;
  }
  Program& receive(int tag = kAnyTag) {
    ops.emplace_back(ReceiveOp{tag});
    return *this;
  }
  Program& alloc(std::size_t bytes) {
    ops.emplace_back(AllocOp{bytes});
    return *this;
  }
  Program& exit() {
    ops.emplace_back(ExitOp{});
    return *this;
  }
  Program& control(sim::SimTime cost, std::function<void(Process&)> action) {
    ops.emplace_back(ControlOp{cost, std::move(action)});
    return *this;
  }

  /// Sum of all declared compute costs (static service demand of the
  /// script, excluding communication overheads).
  [[nodiscard]] sim::SimTime total_compute() const {
    sim::SimTime total;
    for (const auto& op : ops) {
      if (const auto* c = std::get_if<ComputeOp>(&op)) total += c->cost;
    }
    return total;
  }
  /// Sum of bytes sent.
  [[nodiscard]] std::size_t total_send_bytes() const {
    std::size_t total = 0;
    for (const auto& op : ops) {
      if (const auto* s = std::get_if<SendOp>(&op)) total += s->bytes;
    }
    return total;
  }
};

}  // namespace tmc::node
