#include "node/transputer.h"

#include <algorithm>
#include <cassert>
#include <variant>

namespace tmc::node {

std::string_view to_string(ProcessState s) {
  switch (s) {
    case ProcessState::kNew: return "new";
    case ProcessState::kReady: return "ready";
    case ProcessState::kRunning: return "running";
    case ProcessState::kBlockedRecv: return "blocked-recv";
    case ProcessState::kBlockedMem: return "blocked-mem";
    case ProcessState::kSuspended: return "suspended";
    case ProcessState::kDone: return "done";
  }
  return "?";
}

Transputer::Transputer(sim::Simulation& sim, net::NodeId node, mem::Mmu& mmu,
                       Params params)
    : sim_(sim), node_(node), mmu_(mmu), params_(params) {}

void Transputer::set_timeline(obs::Timeline* timeline, obs::TrackId track) {
  timeline_ = timeline;
  track_ = track;
  if (timeline_ == nullptr) return;
  name_compute_ = timeline_->intern("compute");
  name_context_ = timeline_->intern("ctx-switch");
  name_high_ = timeline_->intern("high-pri");
  name_daemon_ = timeline_->intern("daemon");
  name_quantum_ = timeline_->intern("quantum-expiry");
}

void Transputer::record_charge(ChargeKind kind, sim::SimTime start,
                               sim::SimTime dur, double value) {
  if (timeline_ == nullptr || dur.is_zero()) return;
  obs::NameId name = name_compute_;
  switch (kind) {
    case ChargeKind::kOp: name = name_compute_; break;
    case ChargeKind::kContext: name = name_context_; break;
    case ChargeKind::kHigh: name = name_high_; break;
    case ChargeKind::kService: name = name_daemon_; break;
    case ChargeKind::kNone: return;
  }
  timeline_->span(track_, name, start, dur, value);
}

void Transputer::make_ready(Process& p, sim::EventBatch* batch) {
  assert(p.node() == node_ && "process bound to a different node");
  assert(p.state_ != ProcessState::kReady &&
         p.state_ != ProcessState::kRunning &&
         p.state_ != ProcessState::kDone);
  if (!p.gang_active_) {
    // Runnable, but its job's gang turn is over: park until resume().
    p.state_ = ProcessState::kSuspended;
    return;
  }
  p.state_ = ProcessState::kReady;
  low_queue_.push_back(&p);
  request_dispatch(batch);
}

void Transputer::suspend(Process& p, sim::EventBatch* batch) {
  p.gang_active_ = false;
  switch (p.state_) {
    case ProcessState::kReady:
      low_queue_.erase_value(&p);
      p.state_ = ProcessState::kSuspended;
      return;
    case ProcessState::kRunning: {
      Process& interrupted = interrupt_low_charge();
      assert(&interrupted == &p);
      interrupted.state_ = ProcessState::kSuspended;
      request_dispatch(batch);
      return;
    }
    default:
      // New, blocked, already suspended, or done: the cleared flag makes
      // any future wake park instead of enqueue.
      return;
  }
}

void Transputer::resume(Process& p, sim::EventBatch* batch) {
  p.gang_active_ = true;
  if (p.state_ == ProcessState::kSuspended) make_ready(p, batch);
}

void Transputer::post_high(sim::SimTime cost, sim::UniqueFunction<void()> done,
                           sim::EventBatch* batch) {
  ++high_items_;
  high_queue_.push_back(HighWork{cost, std::move(done)});
  if (charge_kind_ == ChargeKind::kOp || charge_kind_ == ChargeKind::kContext) {
    preempt_low();
  } else if (charge_kind_ == ChargeKind::kService) {
    interrupt_service();
  }
  request_dispatch(batch);
}

void Transputer::post_service(sim::SimTime cost,
                              sim::UniqueFunction<void()> done) {
  ++service_items_;
  service_queue_.push_back(ServiceWork{cost, std::move(done)});
  request_dispatch();
}

void Transputer::interrupt_service() {
  assert(charge_kind_ == ChargeKind::kService);
  const bool cancelled = sim_.cancel(charge_event_);
  assert(cancelled);
  (void)cancelled;
  charge_event_ = sim::kNoEvent;
  charge_kind_ = ChargeKind::kNone;
  record_charge(ChargeKind::kService, charge_started_,
                sim_.now() - charge_started_, 0.0);
  consume_service(sim_.now() - charge_started_);
}

void Transputer::consume_service(sim::SimTime amount) {
  service_time_done_ += amount;
  while (!amount.is_zero()) {
    assert(!service_queue_.empty());
    ServiceWork& head = service_queue_.front();
    const sim::SimTime used = std::min(head.remaining, amount);
    head.remaining -= used;
    amount -= used;
    if (head.remaining.is_zero()) {
      ServiceWork finished = std::move(service_queue_.front());
      service_queue_.pop_front();
      if (finished.done) finished.done();
    }
  }
}

void Transputer::deliver(Process& receiver, const net::Message& msg,
                         mem::Block buffer) {
  assert(!receiver.done() && "message for an exited process");
  const int tag = msg.tag;
  receiver.mailbox().deposit(msg, std::move(buffer));
  if (receiver.state_ == ProcessState::kBlockedRecv &&
      (receiver.pending_recv_tag_ == kAnyTag ||
       receiver.pending_recv_tag_ == tag)) {
    make_ready(receiver);
  }
}

void Transputer::request_dispatch(sim::EventBatch* batch) {
  if (pump_scheduled_) return;
  pump_scheduled_ = true;
  auto pump = [this] {
    pump_scheduled_ = false;
    dispatch();
  };
  if (batch != nullptr) {
    batch->add(std::move(pump));
  } else {
    sim_.schedule(sim::SimTime::zero(), std::move(pump));
  }
}

void Transputer::crash() { crashed_ = true; }

void Transputer::restore() {
  crashed_ = false;
  request_dispatch();
}

void Transputer::force_exit(Process& p) {
  assert(p.node() == node_ && "process bound to a different node");
  switch (p.state_) {
    case ProcessState::kRunning: {
      Process& interrupted = interrupt_low_charge();
      assert(&interrupted == &p);
      (void)interrupted;
      request_dispatch();
      break;
    }
    case ProcessState::kReady:
      low_queue_.erase_value(&p);
      break;
    case ProcessState::kBlockedMem:
      // Retract the staged-buffer / allocation request parked in the MMU so
      // its callback never fires into a destroyed process.
      mmu_.cancel_owner(&p);
      break;
    default:
      break;  // new, blocked-recv, suspended, done: nothing queued on the CPU
  }
  if (last_ran_ == &p) last_ran_ = nullptr;
  p.state_ = ProcessState::kDone;
  p.held_.clear();
  p.send_buffer_.release();
  if (p.staged_) {
    p.staged_->buffer.release();
    p.staged_.reset();
  }
  // on_exit_ deliberately NOT fired: the scheduler is unwinding the job.
}

void Transputer::dispatch() {
  if (charge_event_ != sim::kNoEvent) return;  // busy
  if (crashed_) {
    set_busy(false);
    return;  // frozen: nothing starts until restore()
  }
  if (!high_queue_.empty()) {
    current_high_ = std::move(high_queue_.front());
    high_queue_.pop_front();
    plan_charge(ChargeKind::kHigh, current_high_.cost);
    return;
  }
  if (current_ == nullptr) {
    // The comm daemon shares the low-priority domain: it runs when it is
    // its turn (one timeslice per application slice) or when no
    // application process is ready, draining as many queued items as fit.
    if (!service_queue_.empty() && (service_turn_ || low_queue_.empty())) {
      sim::SimTime planned;
      for (std::size_t i = 0; i < service_queue_.size(); ++i) {
        planned += service_queue_[i].remaining;
        if (planned >= params_.daemon_slice) {
          planned = params_.daemon_slice;
          break;
        }
      }
      plan_charge(ChargeKind::kService, planned);
      return;
    }
    if (low_queue_.empty()) {
      set_busy(false);
      return;
    }
    current_ = low_queue_.front();
    low_queue_.pop_front();
    current_->state_ = ProcessState::kRunning;
    ++current_->dispatches_;
    if (tracer_ != nullptr) {
      TMC_TRACE(*tracer_, sim_.now(), sim::TraceCategory::kCpu,
                "cpu" + std::to_string(node_),
                "dispatch p" << current_->id() << " quantum "
                             << current_->quantum().to_milliseconds()
                             << "ms ready=" << low_queue_.size());
    }
    quantum_left_ = current_->quantum();
    if (last_ran_ != current_) {
      last_ran_ = current_;
      ++context_switches_;
      plan_charge(ChargeKind::kContext, params_.context_switch);
      return;
    }
  }
  continue_low();
}

void Transputer::continue_low() {
  assert(current_ != nullptr);
  Process& p = *current_;
  if (crashed_) {
    // The in-flight charge just drained on a crashed CPU: park the process
    // (kReady keeps its op state intact for a restart-free repair) and
    // freeze.
    requeue(p);
    current_ = nullptr;
    set_busy(false);
    return;
  }
  // High-priority work enqueued during op side effects takes the CPU first.
  if (!high_queue_.empty()) {
    requeue(p);
    current_ = nullptr;
    dispatch();
    return;
  }
  assert(p.pc_ < p.program_.ops.size() && "script must end with ExitOp");
  const Op& op = p.program_.ops[p.pc_];

  if (const auto* compute = std::get_if<ComputeOp>(&op)) {
    if (p.phase_ == Process::OpPhase::kInit) {
      p.compute_remaining_ = compute->cost;
      p.phase_ = Process::OpPhase::kCopy;
    }
    plan_charge(ChargeKind::kOp,
                std::min(p.compute_remaining_, quantum_left_));
    return;
  }

  if (const auto* send = std::get_if<SendOp>(&op)) {
    if (p.phase_ == Process::OpPhase::kInit) {
      // Stage the outgoing mailbox buffer from the local MMU; the process
      // blocks if node memory is exhausted.
      p.state_ = ProcessState::kBlockedMem;
      current_ = nullptr;
      const std::size_t bytes = std::max<std::size_t>(1, send->bytes);
      mmu_.request(
          bytes,
          [this, &p, payload_bytes = send->bytes](mem::Block block) {
            p.send_buffer_ = std::move(block);
            p.phase_ = Process::OpPhase::kCopy;
            p.compute_remaining_ =
                params_.send_setup +
                params_.copy_per_byte *
                    static_cast<std::int64_t>(payload_bytes);
            make_ready(p);
          },
          &p);
      dispatch();
      return;
    }
    plan_charge(ChargeKind::kOp,
                std::min(p.compute_remaining_, quantum_left_));
    return;
  }

  if (const auto* recv = std::get_if<ReceiveOp>(&op)) {
    if (p.phase_ == Process::OpPhase::kInit) {
      auto delivered = p.mailbox().take(recv->tag);
      if (!delivered) {
        p.state_ = ProcessState::kBlockedRecv;
        p.pending_recv_tag_ = recv->tag;
        current_ = nullptr;
        dispatch();
        return;
      }
      p.phase_ = Process::OpPhase::kCopy;
      p.compute_remaining_ =
          params_.recv_setup +
          params_.copy_per_byte *
              static_cast<std::int64_t>(delivered->message.bytes);
      p.staged_ = std::move(delivered);
    }
    plan_charge(ChargeKind::kOp,
                std::min(p.compute_remaining_, quantum_left_));
    return;
  }

  if (const auto* ctl = std::get_if<ControlOp>(&op)) {
    // Charged like a compute burst (preemptible, spans quanta); the action
    // itself runs in complete_op once the cost is fully paid.
    if (p.phase_ == Process::OpPhase::kInit) {
      p.compute_remaining_ = ctl->cost;
      p.phase_ = Process::OpPhase::kCopy;
    }
    plan_charge(ChargeKind::kOp,
                std::min(p.compute_remaining_, quantum_left_));
    return;
  }

  if (const auto* alloc = std::get_if<AllocOp>(&op)) {
    p.state_ = ProcessState::kBlockedMem;
    current_ = nullptr;
    mmu_.request(
        alloc->bytes,
        [this, &p](mem::Block block) {
          p.held_.push_back(std::move(block));
          p.phase_ = Process::OpPhase::kInit;
          ++p.pc_;
          make_ready(p);
        },
        &p);
    dispatch();
    return;
  }

  assert(std::holds_alternative<ExitOp>(op));
  if (tracer_ != nullptr) {
    TMC_TRACE(*tracer_, sim_.now(), sim::TraceCategory::kProcess,
              "cpu" + std::to_string(node_),
              "exit p" << p.id() << " cpu_time "
                       << p.cpu_time().to_milliseconds() << "ms");
  }
  p.state_ = ProcessState::kDone;
  p.held_.clear();  // releases job data; may unblock queued MMU requests
  current_ = nullptr;
  last_ran_ = nullptr;  // p may be destroyed by on_exit_
  if (p.on_exit_) p.on_exit_(p);
  dispatch();
}

void Transputer::plan_charge(ChargeKind kind, sim::SimTime amount) {
  assert(charge_event_ == sim::kNoEvent);
  assert(!amount.is_negative());
  charge_kind_ = kind;
  charge_started_ = sim_.now();
  charge_amount_ = amount;
  set_busy(true);
  charge_event_ = sim_.schedule(amount, [this] { on_charge_done(); });
}

void Transputer::on_charge_done() {
  charge_event_ = sim::kNoEvent;
  const ChargeKind kind = charge_kind_;
  charge_kind_ = ChargeKind::kNone;
  const sim::SimTime amount = charge_amount_;
  if (timeline_ != nullptr) {
    record_charge(kind, charge_started_, amount,
                  kind == ChargeKind::kOp || kind == ChargeKind::kContext
                      ? static_cast<double>(current_->id())
                      : 0.0);
  }

  switch (kind) {
    case ChargeKind::kHigh: {
      auto done = std::move(current_high_.done);
      if (done) done();
      dispatch();
      return;
    }
    case ChargeKind::kContext:
      continue_low();
      return;
    case ChargeKind::kService: {
      consume_service(amount);
      service_turn_ = false;  // applications get the next slice
      dispatch();
      return;
    }
    case ChargeKind::kOp: {
      Process& p = *current_;
      service_turn_ = true;  // the daemon may take a slice at the next gap
      p.cpu_time_ += amount;
      p.compute_remaining_ -= amount;
      quantum_left_ -= amount;
      if (p.compute_remaining_.is_zero()) complete_op(p);
      // A process whose next op is Exit terminates now rather than riding
      // the ready queue for another round: termination is part of the same
      // instruction stream as the final burst.
      if (std::holds_alternative<ExitOp>(p.program_.ops[p.pc_])) {
        continue_low();
        return;
      }
      if (quantum_left_.is_zero()) {
        ++quantum_expiries_;
        if (timeline_ != nullptr) {
          timeline_->instant(track_, name_quantum_, sim_.now(),
                             static_cast<double>(p.id()));
        }
        if (!low_queue_.empty() || !high_queue_.empty() ||
            !service_queue_.empty()) {
          // The T805 puts the expired process at the back of the ready queue.
          requeue(p);
          current_ = nullptr;
          dispatch();
          return;
        }
        quantum_left_ = p.quantum();  // alone on the CPU: keep running
      }
      continue_low();
      return;
    }
    case ChargeKind::kNone:
      assert(false && "charge completion with no charge in flight");
      return;
  }
}

Process& Transputer::interrupt_low_charge() {
  assert(charge_kind_ == ChargeKind::kOp ||
         charge_kind_ == ChargeKind::kContext);
  const bool cancelled = sim_.cancel(charge_event_);
  assert(cancelled);
  (void)cancelled;
  charge_event_ = sim::kNoEvent;
  const ChargeKind kind = charge_kind_;
  charge_kind_ = ChargeKind::kNone;

  Process& p = *current_;
  ++p.preemptions_;
  record_charge(kind, charge_started_, sim_.now() - charge_started_,
                static_cast<double>(p.id()));
  if (kind == ChargeKind::kOp) {
    const sim::SimTime elapsed = sim_.now() - charge_started_;
    p.cpu_time_ += elapsed;
    p.compute_remaining_ -= elapsed;
    // The unfinished quantum is lost (T805 semantics); no need to track it.
    // A ControlOp is never completed here: its action must not run on the
    // interrupt path (a force_exit-driven abort would otherwise execute
    // application logic mid-teardown). A zero-remaining ControlOp instead
    // completes via a zero-length recharge at its next dispatch.
    if (p.compute_remaining_.is_zero() &&
        !std::holds_alternative<ControlOp>(p.program_.ops[p.pc_])) {
      complete_op(p);
    }
  } else {
    // The interrupted context switch must be paid again later.
    last_ran_ = nullptr;
  }
  current_ = nullptr;
  return p;
}

void Transputer::preempt_low() {
  ++high_preemptions_;
  Process& p = interrupt_low_charge();
  requeue(p);
}

void Transputer::complete_op(Process& p) {
  const Op& op = p.program_.ops[p.pc_];
  if (const auto* send = std::get_if<SendOp>(&op)) {
    assert(send_dispatcher_ && "no send dispatcher installed");
    send_dispatcher_(p, *send, std::move(p.send_buffer_));
  } else if (std::holds_alternative<ReceiveOp>(op)) {
    assert(p.staged_.has_value());
    p.staged_->buffer.release();
    p.staged_.reset();
  } else if (const auto* ctl = std::get_if<ControlOp>(&op)) {
    // Copy the callback first: it appends ops, which may reallocate the
    // vector and invalidate `op`/`ctl`. Advance past the ControlOp before
    // invoking so the action sees a consistent pc and may append the next
    // ops (including an immediate ExitOp).
    auto action = ctl->action;
    p.phase_ = Process::OpPhase::kInit;
    ++p.pc_;
    if (action) action(p);
    assert(p.pc_ < p.program_.ops.size() &&
           "ControlOp action must leave a next op (script ends with ExitOp)");
    return;
  }
  p.phase_ = Process::OpPhase::kInit;
  ++p.pc_;
}

void Transputer::requeue(Process& p) {
  assert(p.state_ != ProcessState::kDone);
  p.state_ = ProcessState::kReady;
  low_queue_.push_back(&p);
}

}  // namespace tmc::node
