// tmcsim -- the T805 processor model.
//
// The T805 schedules processes in hardware with two priority levels
// (paper section 3.1):
//
//  * High-priority processes run to completion (or until they block) and
//    preempt low-priority work immediately. The preempted low-priority
//    process loses the unfinished part of its quantum and rejoins the back
//    of the ready queue. We use the high queue for the communication
//    system's buffer management and mailbox work, as the paper's
//    implementation does.
//
//  * Low-priority processes time-share round-robin. The hardware quantum is
//    about 2 ms; the time-sharing policies override a process's quantum with
//    the RR-job value Q = (P/T) * q.
//
// The Transputer also interprets the op scripts (node/program.h): compute
// bursts are preemptible CPU charges; sends stage a buffer from the local
// MMU, pay a copy cost and hand off to the network; receives block on the
// mailbox; allocations block on the MMU.
#pragma once

#include <cstdint>
#include <functional>

#include "mem/mmu.h"
#include "node/process.h"
#include "node/program.h"
#include "obs/timeline.h"
#include "sim/ring_queue.h"
#include "sim/simulation.h"
#include "sim/stats.h"
#include "sim/trace.h"
#include "sim/unique_function.h"

namespace tmc::node {

struct TransputerParams {
  /// Cost of switching the CPU between two different low-pri processes.
  sim::SimTime context_switch = sim::SimTime::microseconds(10);
  /// Software overhead to initiate a mailbox send / finalise a receive.
  sim::SimTime send_setup = sim::SimTime::microseconds(50);
  sim::SimTime recv_setup = sim::SimTime::microseconds(50);
  /// On-node memory copy cost per byte (~25 MB/s on the T805).
  sim::SimTime copy_per_byte = sim::SimTime::nanoseconds(40);
  /// CPU slice granted to the comm daemon per turn (the hardware
  /// timeslice); it drains as many queued work items as fit.
  sim::SimTime daemon_slice = sim::SimTime::milliseconds(2);
};

class Transputer {
 public:
  using Params = TransputerParams;

  /// Installed by the communication system: takes the sending process, the
  /// send op, and the staged source buffer, and injects the message.
  using SendDispatcher =
      std::function<void(Process&, const SendOp&, mem::Block)>;

  Transputer(sim::Simulation& sim, net::NodeId node, mem::Mmu& mmu,
             Params params = {});
  Transputer(const Transputer&) = delete;
  Transputer& operator=(const Transputer&) = delete;

  void set_send_dispatcher(SendDispatcher dispatcher) {
    send_dispatcher_ = std::move(dispatcher);
  }

  /// Optional trace sink (category kCpu / kProcess); owner must outlive us.
  void set_tracer(const sim::Tracer* tracer) { tracer_ = tracer; }

  /// Optional timeline recorder (null = off): every completed or interrupted
  /// CPU charge becomes a span on `track` (compute spans carry the process
  /// id as their value), and quantum expirations become instants.
  void set_timeline(obs::Timeline* timeline, obs::TrackId track);

  [[nodiscard]] net::NodeId node() const { return node_; }
  [[nodiscard]] mem::Mmu& mmu() { return mmu_; }
  [[nodiscard]] const Params& params() const { return params_; }

  // --- scheduler interface ----------------------------------------------
  // The entry points below take an optional `batch`: when non-null, the
  // zero-delay dispatch pump they would schedule is appended to it instead,
  // so a partition-wide fan-out (gang dispatch, job admission) commits all
  // its pumps through one Simulation::schedule_batch bulk insert. The
  // pump_scheduled_ dedup still applies, so each CPU contributes at most
  // one pump per batch.

  /// Makes a (new or unblocked) process runnable on this CPU.
  void make_ready(Process& p, sim::EventBatch* batch = nullptr);

  /// Enqueues high-priority work costing `cost` CPU; `done` runs when it
  /// completes. Preempts any running low-priority process immediately.
  void post_high(sim::SimTime cost, sim::UniqueFunction<void()> done,
                 sim::EventBatch* batch = nullptr);

  /// Enqueues system-daemon work (mailbox management, store-and-forward
  /// copying). The daemon is a LOW-priority software process, as in the
  /// paper's implementation: it time-shares the CPU fairly with application
  /// processes instead of preempting them, so heavy message traffic slows
  /// the node's computation and vice versa -- the contention the paper
  /// attributes to its communication system.
  void post_service(sim::SimTime cost, sim::UniqueFunction<void()> done);

  /// Deposits a delivered message into `receiver`'s mailbox and wakes it if
  /// it is blocked on a matching receive. (Called from high-priority work.)
  void deliver(Process& receiver, const net::Message& msg, mem::Block buffer);

  // --- gang scheduling (partition scheduler interface) --------------------
  /// Takes `p` out of circulation for the rest of its job's rotation: a
  /// ready process parks as kSuspended, a running one is preempted off the
  /// CPU, and a blocked one will park instead of waking. Idempotent.
  void suspend(Process& p, sim::EventBatch* batch = nullptr);
  /// Puts `p` back in circulation (enqueues it if it was parked ready).
  void resume(Process& p, sim::EventBatch* batch = nullptr);

  // --- fault injection ----------------------------------------------------
  /// Fail-stop freeze: the CPU stops starting new work. The at-most-one
  /// in-flight charge completes and its side effects apply (the hardware's
  /// pipeline drains); the current process then parks on the ready queue.
  /// Queued work stays queued until restore(). Idempotent.
  void crash();
  /// Clears the crash; dispatching resumes with whatever is still queued.
  void restore();
  /// Scheduler-initiated teardown of `p` (job abort after a failure):
  /// removes the process from every CPU structure -- ready queue, in-flight
  /// charge, blocked MMU request -- releases its buffers and marks it done
  /// WITHOUT firing its exit handler (the scheduler is unwinding the job
  /// itself and must not see a completion).
  void force_exit(Process& p);
  [[nodiscard]] bool crashed() const { return crashed_; }

  // --- observability ------------------------------------------------------
  [[nodiscard]] std::size_t ready_count() const { return low_queue_.size(); }
  [[nodiscard]] bool busy() const { return charge_event_ != sim::kNoEvent; }
  [[nodiscard]] double utilization() const {
    return busy_tracker_.utilization(sim_.now());
  }
  [[nodiscard]] sim::SimTime busy_time() const {
    return busy_tracker_.busy_time(sim_.now());
  }
  [[nodiscard]] std::uint64_t context_switches() const { return context_switches_; }
  [[nodiscard]] std::uint64_t quantum_expiries() const { return quantum_expiries_; }
  [[nodiscard]] std::uint64_t high_preemptions() const { return high_preemptions_; }
  [[nodiscard]] std::uint64_t high_items() const { return high_items_; }
  [[nodiscard]] std::uint64_t service_items() const { return service_items_; }
  [[nodiscard]] sim::SimTime service_time() const { return service_time_done_; }

 private:
  enum class ChargeKind : std::uint8_t {
    kNone,
    kContext,
    kOp,
    kHigh,
    kService,
  };

  struct HighWork {
    sim::SimTime cost;
    sim::UniqueFunction<void()> done;
  };
  struct ServiceWork {
    sim::SimTime remaining;
    sim::UniqueFunction<void()> done;
  };

  /// Schedules a zero-delay dispatch pump. External entry points (make_ready,
  /// post_high) never run the interpreter inline: this keeps op side effects
  /// (which can re-enter the same CPU, e.g. a self-send's delivery) from
  /// nesting inside an in-flight interpreter step. With `batch` non-null the
  /// pump is appended there for a caller-side bulk insert instead.
  void request_dispatch(sim::EventBatch* batch = nullptr);
  /// Picks the next work item if the CPU is idle.
  void dispatch();
  /// Interprets ops of `current_` until a charge is planned, the process
  /// blocks, or it exits.
  void continue_low();
  /// Schedules the end-of-charge event.
  void plan_charge(ChargeKind kind, sim::SimTime amount);
  void on_charge_done();
  /// Cancels an in-flight daemon charge, accounting the elapsed work.
  void interrupt_service();
  /// Applies `amount` of completed daemon CPU to the queue head(s),
  /// firing completions as items finish.
  void consume_service(sim::SimTime amount);
  /// Cancels the in-flight low charge and applies the elapsed work to the
  /// current process; leaves current_ cleared and the process off-queue in
  /// kRunning state for the caller to place (requeue or suspend).
  Process& interrupt_low_charge();
  /// Applies `elapsed` of an interrupted op charge, then requeues current_.
  void preempt_low();
  /// Completes the side effects of the op at current_->pc_ and advances.
  void complete_op(Process& p);
  /// Moves p out of the running state into the back of the ready queue.
  void requeue(Process& p);
  void set_busy(bool b) { busy_tracker_.set_busy(sim_.now(), b); }
  /// Records the charge that occupied [start, start+dur) as a span.
  void record_charge(ChargeKind kind, sim::SimTime start, sim::SimTime dur,
                     double value);

  sim::Simulation& sim_;
  net::NodeId node_;
  mem::Mmu& mmu_;
  Params params_;
  SendDispatcher send_dispatcher_;
  const sim::Tracer* tracer_ = nullptr;
  obs::Timeline* timeline_ = nullptr;
  obs::TrackId track_ = 0;
  // Pre-interned span/instant names (set_timeline), so recording never
  // hashes a string.
  obs::NameId name_compute_ = 0;
  obs::NameId name_context_ = 0;
  obs::NameId name_high_ = 0;
  obs::NameId name_daemon_ = 0;
  obs::NameId name_quantum_ = 0;

  // Ring-buffer FIFOs: these queues churn on every dispatch, and a deque
  // would pay a block allocation every few dozen pushes forever.
  sim::RingQueue<HighWork> high_queue_;
  sim::RingQueue<Process*> low_queue_;
  sim::RingQueue<ServiceWork> service_queue_;
  /// Alternates the low-priority domain between the comm daemon and the
  /// application processes so neither starves the other.
  bool service_turn_ = false;
  Process* current_ = nullptr;      // low process holding the CPU
  Process* last_ran_ = nullptr;     // for context-switch accounting
  sim::SimTime quantum_left_;
  HighWork current_high_;

  sim::EventId charge_event_ = sim::kNoEvent;
  bool pump_scheduled_ = false;
  bool crashed_ = false;
  ChargeKind charge_kind_ = ChargeKind::kNone;
  sim::SimTime charge_started_;
  sim::SimTime charge_amount_;

  sim::BusyTracker busy_tracker_;
  std::uint64_t service_items_ = 0;
  sim::SimTime service_time_done_;
  std::uint64_t context_switches_ = 0;
  std::uint64_t quantum_expiries_ = 0;
  std::uint64_t high_preemptions_ = 0;
  std::uint64_t high_items_ = 0;
};

}  // namespace tmc::node
