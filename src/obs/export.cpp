#include "obs/export.h"

#include <array>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <ostream>
#include <string>

namespace tmc::obs {
namespace {

/// JSON string escape (quotes, backslashes, control characters).
std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// %.12g keeps 12 significant digits -- plenty for metrics -- and non-finite
/// values (not representable in JSON) clamp to 0.
std::string json_number(double v) {
  if (!std::isfinite(v)) return "0";
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.12g", v);
  return buf;
}

/// Microsecond timestamp from nanoseconds, keeping sub-us fractions.
std::string trace_ts(std::int64_t ns) {
  char buf[48];
  if (ns % 1000 == 0) {
    std::snprintf(buf, sizeof buf, "%" PRId64, ns / 1000);
  } else {
    std::snprintf(buf, sizeof buf, "%.3f", static_cast<double>(ns) / 1000.0);
  }
  return buf;
}

struct KindInfo {
  int pid;
  const char* process_name;
};

KindInfo kind_info(TrackKind kind) {
  switch (kind) {
    case TrackKind::kNode:
      return {1, "nodes"};
    case TrackKind::kLink:
      return {2, "links"};
    case TrackKind::kPartition:
      return {3, "partitions"};
    case TrackKind::kGlobal:
      return {4, "machine"};
    case TrackKind::kJob:
      return {5, "jobs"};
  }
  return {4, "machine"};
}

const char* kind_name(Registry::Kind kind) {
  switch (kind) {
    case Registry::Kind::kCounter:
      return "counter";
    case Registry::Kind::kGauge:
      return "gauge";
    case Registry::Kind::kDistribution:
      return "distribution";
    case Registry::Kind::kProbe:
      return "probe";
  }
  return "counter";
}

}  // namespace

void ChromeTraceWriter::sep() {
  if (!first_) os_ << ",\n";
  first_ = false;
}

void ChromeTraceWriter::begin(const Timeline& timeline) {
  os_ << "{\"traceEvents\":[";
  // Metadata: name each process (track kind) and thread (track).
  std::array<bool, 5> kind_seen{};
  const auto& tracks = timeline.tracks();
  for (std::size_t i = 0; i < tracks.size(); ++i) {
    const KindInfo info = kind_info(tracks[i].kind);
    const auto kind_index = static_cast<std::size_t>(info.pid - 1);
    if (!kind_seen[kind_index]) {
      kind_seen[kind_index] = true;
      sep();
      os_ << "{\"ph\":\"M\",\"pid\":" << info.pid
          << ",\"name\":\"process_name\",\"args\":{\"name\":\""
          << info.process_name << "\"}}";
    }
    sep();
    os_ << "{\"ph\":\"M\",\"pid\":" << info.pid << ",\"tid\":" << i + 1
        << ",\"name\":\"thread_name\",\"args\":{\"name\":\""
        << json_escape(tracks[i].name) << "\"}}";
  }
}

void ChromeTraceWriter::write_records(
    const Timeline& timeline, const std::vector<TimelineRecord>& records) {
  const auto& tracks = timeline.tracks();
  for (const TimelineRecord& r : records) {
    const Timeline::Track& track = tracks[r.track];
    const KindInfo info = kind_info(track.kind);
    const std::string name = json_escape(timeline.name(r.name));
    sep();
    switch (r.kind) {
      case RecordKind::kSpan:
        os_ << "{\"ph\":\"X\",\"pid\":" << info.pid
            << ",\"tid\":" << r.track + 1 << ",\"ts\":" << trace_ts(r.start_ns)
            << ",\"dur\":" << trace_ts(r.dur_ns) << ",\"name\":\"" << name
            << "\",\"args\":{\"value\":" << json_number(r.value) << "}}";
        break;
      case RecordKind::kInstant:
        os_ << "{\"ph\":\"i\",\"s\":\"t\",\"pid\":" << info.pid
            << ",\"tid\":" << r.track + 1 << ",\"ts\":" << trace_ts(r.start_ns)
            << ",\"name\":\"" << name
            << "\",\"args\":{\"value\":" << json_number(r.value) << "}}";
        break;
      case RecordKind::kSample:
        // Counter events group by (pid, name); qualify with the track name
        // so each (track, channel) pair gets its own counter track.
        os_ << "{\"ph\":\"C\",\"pid\":" << info.pid
            << ",\"ts\":" << trace_ts(r.start_ns) << ",\"name\":\""
            << json_escape(track.name) << ":" << name << "\",\"args\":{\""
            << name << "\":" << json_number(r.value) << "}}";
        break;
      case RecordKind::kAsyncBegin:
      case RecordKind::kAsyncEnd:
        // Async spans keyed by (cat, id): same-id begin/end pairs nest as a
        // stack, so concurrent jobs share one class track without merging.
        os_ << "{\"ph\":\"" << (r.kind == RecordKind::kAsyncBegin ? 'b' : 'e')
            << "\",\"cat\":\"job\",\"id\":" << r.id
            << ",\"pid\":" << info.pid << ",\"tid\":" << r.track + 1
            << ",\"ts\":" << trace_ts(r.start_ns) << ",\"name\":\"" << name
            << "\",\"args\":{\"value\":" << json_number(r.value) << "}}";
        break;
      case RecordKind::kFlowStart:
        os_ << "{\"ph\":\"s\",\"cat\":\"flow\",\"id\":" << r.id
            << ",\"pid\":" << info.pid << ",\"tid\":" << r.track + 1
            << ",\"ts\":" << trace_ts(r.start_ns) << ",\"name\":\"" << name
            << "\",\"args\":{\"value\":" << json_number(r.value) << "}}";
        break;
      case RecordKind::kFlowFinish:
        // "bp":"e" binds the arrow head to the enclosing slice so Perfetto
        // draws it into the receive span rather than the next event.
        os_ << "{\"ph\":\"f\",\"bp\":\"e\",\"cat\":\"flow\",\"id\":" << r.id
            << ",\"pid\":" << info.pid << ",\"tid\":" << r.track + 1
            << ",\"ts\":" << trace_ts(r.start_ns) << ",\"name\":\"" << name
            << "\",\"args\":{\"value\":" << json_number(r.value) << "}}";
        break;
    }
  }
}

void ChromeTraceWriter::end(const Timeline& timeline) {
  const auto& tracks = timeline.tracks();
  for (const Timeline::Annotation& a : timeline.annotations()) {
    const KindInfo info = kind_info(tracks[a.track].kind);
    sep();
    os_ << "{\"ph\":\"i\",\"s\":\"t\",\"pid\":" << info.pid
        << ",\"tid\":" << a.track + 1 << ",\"ts\":" << trace_ts(a.at_ns)
        << ",\"name\":\"" << json_escape(a.text) << "\"}";
  }
  os_ << "],\"displayTimeUnit\":\"ms\"}\n";
}

void write_chrome_trace(const Timeline& timeline, std::ostream& os) {
  ChromeTraceWriter writer(os);
  writer.begin(timeline);
  writer.write_records(timeline, timeline.records());
  writer.end(timeline);
}

void MetricsStreamWriter::begin(const std::vector<std::string>& channels) {
  os_ << "{\"schema\":\"tmc-metrics-stream-v1\",\"label\":\""
      << json_escape(label_) << "\",\"channels\":[";
  for (std::size_t i = 0; i < channels.size(); ++i) {
    if (i != 0) os_ << ",";
    os_ << "\"" << json_escape(channels[i]) << "\"";
  }
  os_ << "]}\n";
}

void MetricsStreamWriter::tick(double t_s, const std::vector<double>& values) {
  os_ << "{\"t_s\":" << json_number(t_s) << ",\"v\":[";
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i != 0) os_ << ",";
    os_ << json_number(values[i]);
  }
  os_ << "]}\n";
  ++ticks_;
}

void write_metrics_json(const Registry& registry, std::ostream& os,
                        std::string_view label, sim::SimTime end) {
  os << "{\"schema\":\"tmc-metrics-v1\",\"label\":\"" << json_escape(label)
     << "\",\"end_time_s\":" << json_number(end.to_seconds())
     << ",\"metrics\":[";
  bool first = true;
  for (const Registry::View& v : registry.snapshot()) {
    if (!first) os << ",\n";
    first = false;
    os << "{\"name\":\"" << json_escape(v.name) << "\",\"kind\":\""
       << kind_name(v.kind) << "\"";
    if (v.kind == Registry::Kind::kDistribution) {
      const sim::OnlineStats& s = v.distribution->stats();
      os << ",\"count\":" << s.count() << ",\"mean\":" << json_number(s.mean())
         << ",\"stddev\":" << json_number(s.stddev())
         << ",\"min\":" << json_number(s.min())
         << ",\"max\":" << json_number(s.max());
      if (const auto& h = v.distribution->histogram()) {
        os << ",\"histogram\":{\"lo\":" << json_number(h->lo())
           << ",\"hi\":" << json_number(h->hi())
           << ",\"underflow\":" << h->underflow()
           << ",\"overflow\":" << h->overflow() << ",\"bins\":[";
        for (std::size_t i = 0; i < h->bin_count_size(); ++i) {
          if (i != 0) os << ",";
          os << h->bin_count(i);
        }
        os << "]}";
      }
    } else if (v.kind == Registry::Kind::kCounter) {
      os << ",\"value\":" << v.count;
    } else {
      os << ",\"value\":" << json_number(v.value);
    }
    os << "}";
  }
  os << "]}\n";
}

void write_metrics_csv(const Registry& registry, std::ostream& os) {
  os << "name,kind,count,value,mean,stddev,min,max\n";
  for (const Registry::View& v : registry.snapshot()) {
    os << v.name << "," << kind_name(v.kind) << ",";
    if (v.kind == Registry::Kind::kDistribution) {
      const sim::OnlineStats& s = v.distribution->stats();
      os << s.count() << ",," << json_number(s.mean()) << ","
         << json_number(s.stddev()) << "," << json_number(s.min()) << ","
         << json_number(s.max());
    } else if (v.kind == Registry::Kind::kCounter) {
      os << v.count << "," << v.count << ",,,,";
    } else {
      os << "," << json_number(v.value) << ",,,,";
    }
    os << "\n";
  }
}

}  // namespace tmc::obs
