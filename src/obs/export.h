// tmcsim -- exporters for the observability layer.
//
// Three output formats, all dependency-free:
//  * Chrome trace_event JSON from a Timeline -- loadable in Perfetto or
//    chrome://tracing; one trace "process" per track kind (nodes, links,
//    partitions) and one named thread per track.
//  * Metrics JSON from a Registry -- `{"schema":"tmc-metrics-v1", ...}`,
//    validated in CI by tools/check_obs_json.py.
//  * Metrics CSV (one instrument per row) for spreadsheet/pandas use.
#pragma once

#include <iosfwd>
#include <string_view>

#include "obs/metrics.h"
#include "obs/timeline.h"
#include "sim/time.h"

namespace tmc::obs {

/// Writes `{"traceEvents":[...]}` Chrome trace JSON. Timestamps are emitted
/// in microseconds (the format's unit) with sub-microsecond fractions kept.
void write_chrome_trace(const Timeline& timeline, std::ostream& os);

/// Writes the registry as a metrics JSON document. `label` identifies the
/// run (experiment name / policy); `end` is the simulated makespan.
void write_metrics_json(const Registry& registry, std::ostream& os,
                        std::string_view label, sim::SimTime end);

/// Writes the registry as CSV: name,kind,count,value,mean,stddev,min,max.
void write_metrics_csv(const Registry& registry, std::ostream& os);

}  // namespace tmc::obs
