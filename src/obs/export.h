// tmcsim -- exporters for the observability layer.
//
// Output formats, all dependency-free:
//  * Chrome trace_event JSON from a Timeline -- loadable in Perfetto or
//    chrome://tracing; one trace "process" per track kind (nodes, links,
//    partitions) and one named thread per track. ChromeTraceWriter is the
//    incremental form: the buffered write_chrome_trace and the hub's
//    chunked streaming sink both drive it, which is what makes their
//    outputs byte-identical by construction.
//  * Metrics JSON from a Registry -- `{"schema":"tmc-metrics-v1", ...}`,
//    validated in CI by tools/check_obs_json.py.
//  * Metrics CSV (one instrument per row) for spreadsheet/pandas use.
//  * MetricsStreamWriter -- JSONL ("tmc-metrics-stream-v1"): one line per
//    sampler tick, written as the run progresses with O(1) memory; the
//    sustained-serving mode's replacement for buffering sample records.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "obs/metrics.h"
#include "obs/timeline.h"
#include "sim/time.h"

namespace tmc::obs {

/// Incremental Chrome trace_event JSON writer: begin() emits the preamble
/// (process/thread metadata for every track registered so far), then any
/// number of write_records() batches, then end() appends the annotations
/// and closes the document. Every track must be registered before begin()
/// -- true for the machine, which wires observability before running.
class ChromeTraceWriter {
 public:
  explicit ChromeTraceWriter(std::ostream& os) : os_(os) {}

  void begin(const Timeline& timeline);
  void write_records(const Timeline& timeline,
                     const std::vector<TimelineRecord>& records);
  void end(const Timeline& timeline);

 private:
  void sep();

  std::ostream& os_;
  bool first_ = true;
};

/// Writes `{"traceEvents":[...]}` Chrome trace JSON. Timestamps are emitted
/// in microseconds (the format's unit) with sub-microsecond fractions kept.
void write_chrome_trace(const Timeline& timeline, std::ostream& os);

/// JSONL metrics stream: a header line
///   {"schema":"tmc-metrics-stream-v1","label":...,"channels":[...]}
/// then one `{"t_s":...,"v":[...]}` line per sampler tick (v parallel to
/// channels). Each line is flushed as written -- nothing is buffered, so a
/// million-job run costs the same memory as a sixteen-job one.
class MetricsStreamWriter {
 public:
  explicit MetricsStreamWriter(std::ostream& os) : os_(os) {}

  /// Run label for the header line; must be set before the first tick.
  void set_label(std::string label) { label_ = std::move(label); }

  void begin(const std::vector<std::string>& channels);
  void tick(double t_s, const std::vector<double>& values);

  [[nodiscard]] std::uint64_t ticks() const { return ticks_; }

 private:
  std::ostream& os_;
  std::string label_ = "tmcsim";
  std::uint64_t ticks_ = 0;
};

/// Writes the registry as a metrics JSON document. `label` identifies the
/// run (experiment name / policy); `end` is the simulated makespan.
void write_metrics_json(const Registry& registry, std::ostream& os,
                        std::string_view label, sim::SimTime end);

/// Writes the registry as CSV: name,kind,count,value,mean,stddev,min,max.
void write_metrics_csv(const Registry& registry, std::ostream& os);

}  // namespace tmc::obs
