#include "obs/hub.h"

#include <cerrno>
#include <cstdlib>
#include <fstream>
#include <ostream>
#include <string_view>

namespace tmc::obs {
namespace {

/// Splits "--flag=value" at the first '='; returns true when `arg` names
/// `flag` (with or without a value).
bool match_flag(std::string_view arg, std::string_view flag, bool& has_value,
                std::string_view& value) {
  if (arg.substr(0, flag.size()) != flag) return false;
  if (arg.size() == flag.size()) {
    has_value = false;
    return true;
  }
  if (arg[flag.size()] != '=') return false;
  has_value = true;
  value = arg.substr(flag.size() + 1);
  return true;
}

}  // namespace

bool parse_cli_flag(int argc, char** argv, int& i, Options& options,
                    std::string& error) {
  const std::string_view arg = argv[i];
  bool has_value = false;
  std::string_view value;

  if (match_flag(arg, "--metrics", has_value, value)) {
    options.metrics = true;
    if (has_value) options.metrics_path = value;
    return true;
  }
  if (match_flag(arg, "--timeline", has_value, value)) {
    if (!has_value) {
      if (i + 1 >= argc) {
        error = "--timeline requires a path";
        return true;
      }
      value = argv[++i];
    }
    if (value.empty()) {
      error = "--timeline requires a non-empty path";
      return true;
    }
    options.timeline_path = value;
    return true;
  }
  if (match_flag(arg, "--timeline-chunk", has_value, value)) {
    if (!has_value) {
      if (i + 1 >= argc) {
        error = "--timeline-chunk requires a record count";
        return true;
      }
      value = argv[++i];
    }
    errno = 0;
    char* end = nullptr;
    const std::string text(value);
    const unsigned long long n = std::strtoull(text.c_str(), &end, 10);
    if (errno != 0 || end == text.c_str() || *end != '\0' || n == 0 ||
        n > 1ULL << 30) {
      error = "--timeline-chunk wants a positive record count, got '" + text +
              "'";
      return true;
    }
    options.timeline_chunk = static_cast<std::size_t>(n);
    return true;
  }
  if (match_flag(arg, "--metrics-stream", has_value, value)) {
    if (!has_value) {
      if (i + 1 >= argc) {
        error = "--metrics-stream requires a path";
        return true;
      }
      value = argv[++i];
    }
    if (value.empty()) {
      error = "--metrics-stream requires a non-empty path";
      return true;
    }
    options.metrics_stream_path = value;
    return true;
  }
  if (match_flag(arg, "--slo", has_value, value)) {
    if (!has_value) {
      if (i + 1 >= argc) {
        error = "--slo requires class=latency targets";
        return true;
      }
      value = argv[++i];
    }
    parse_slo_spec(value, options.slo, error);
    return true;
  }
  if (match_flag(arg, "--sample-interval", has_value, value)) {
    if (!has_value) {
      if (i + 1 >= argc) {
        error = "--sample-interval requires a value in milliseconds";
        return true;
      }
      value = argv[++i];
    }
    errno = 0;
    char* end = nullptr;
    const std::string text(value);
    const double ms = std::strtod(text.c_str(), &end);
    if (errno != 0 || end == text.c_str() || *end != '\0' || ms <= 0.0 ||
        ms > 1e9) {
      error = "--sample-interval wants a positive millisecond count, got '" +
              text + "'";
      return true;
    }
    options.sample_interval =
        sim::SimTime::microseconds(static_cast<std::int64_t>(ms * 1000.0));
    return true;
  }
  return false;
}

std::string cli_help() {
  return "  --metrics[=PATH]      dump the metrics registry at end of run\n"
         "                        (stderr by default; *.csv selects CSV)\n"
         "  --timeline=PATH       record a Chrome trace_event timeline\n"
         "                        (open in Perfetto / chrome://tracing)\n"
         "  --timeline-chunk N    stream the timeline to disk every N\n"
         "                        records instead of buffering the run\n"
         "  --metrics-stream=PATH JSONL sampler stream (one line per tick,\n"
         "                        O(1) memory; works without --timeline)\n"
         "  --sample-interval MS  counter-sampling period for --timeline\n"
         "                        and --metrics-stream (default 100)\n"
         "  --slo CLASS=LAT[@PCT][,...]\n"
         "                        per-class response-time targets for the\n"
         "                        serving harness (ns/us/ms/s suffixes;\n"
         "                        objective percent defaults to 99), e.g.\n"
         "                        --slo interactive=50ms,batch=2s@95\n";
}

Hub::Hub(Options options) : options_(std::move(options)) {
  if (!options_.metrics_stream_path.empty()) {
    metrics_stream_out_.open(options_.metrics_stream_path);
    if (!metrics_stream_out_) {
      metrics_stream_failed_ = true;
    } else {
      metrics_stream_writer_.emplace(metrics_stream_out_);
      metrics_stream_writer_->set_label(label_);
    }
  }
  if (!options_.timeline_path.empty() && options_.timeline_chunk > 0) {
    timeline_.set_flush(
        [this](const std::vector<TimelineRecord>& records) {
          stream_timeline_chunk(records);
        },
        options_.timeline_chunk);
  }
}

bool Hub::ensure_timeline_writer() {
  if (timeline_open_failed_) return false;
  if (timeline_writer_) return true;
  timeline_stream_out_.open(options_.timeline_path);
  if (!timeline_stream_out_) {
    timeline_open_failed_ = true;
    return false;
  }
  // All tracks are registered before the run starts (the machine wires
  // observability during construction), so the preamble written here is
  // identical to what the buffered exporter would emit.
  timeline_writer_.emplace(timeline_stream_out_);
  timeline_writer_->begin(timeline_);
  return true;
}

void Hub::stream_timeline_chunk(const std::vector<TimelineRecord>& records) {
  // On open failure the chunk is dropped (the buffer must still be cleared
  // to keep memory flat); write_outputs reports the error at end of run.
  if (!ensure_timeline_writer()) return;
  timeline_writer_->write_records(timeline_, records);
}

bool Hub::write_outputs(std::ostream& diag) {
  bool ok = true;

  if (options_.metrics) {
    const bool csv = options_.metrics_path.size() > 4 &&
                     options_.metrics_path.substr(
                         options_.metrics_path.size() - 4) == ".csv";
    if (options_.metrics_path.empty()) {
      write_metrics_json(registry_, diag, label_, end_time_);
    } else {
      std::ofstream out(options_.metrics_path);
      if (!out) {
        diag << "obs: cannot open metrics path " << options_.metrics_path
             << "\n";
        ok = false;
      } else {
        if (csv) {
          write_metrics_csv(registry_, out);
        } else {
          write_metrics_json(registry_, out, label_, end_time_);
        }
        diag << "obs: wrote " << registry_.size() << " metrics to "
             << options_.metrics_path << (csv ? " (csv)\n" : " (json)\n");
      }
    }
  }

  if (!options_.timeline_path.empty()) {
    if (options_.timeline_chunk > 0) {
      // Chunked mode: most records were already drained during the run;
      // write the tail, then the annotations and the closing bracket.
      if (!ensure_timeline_writer()) {
        diag << "obs: cannot open timeline path " << options_.timeline_path
             << "\n";
        ok = false;
      } else {
        timeline_writer_->write_records(timeline_, timeline_.records());
        timeline_writer_->end(timeline_);
        timeline_stream_out_.flush();
        if (!timeline_stream_out_) {
          diag << "obs: error writing timeline path " << options_.timeline_path
               << "\n";
          ok = false;
        } else {
          diag << "obs: streamed "
               << timeline_.flushed_records() + timeline_.records().size()
               << " timeline records (" << timeline_.tracks().size()
               << " tracks, chunk " << options_.timeline_chunk << ") to "
               << options_.timeline_path << "\n";
        }
      }
    } else {
      std::ofstream out(options_.timeline_path);
      if (!out) {
        diag << "obs: cannot open timeline path " << options_.timeline_path
             << "\n";
        ok = false;
      } else {
        write_chrome_trace(timeline_, out);
        diag << "obs: wrote " << timeline_.records().size()
             << " timeline records (" << timeline_.tracks().size()
             << " tracks) to " << options_.timeline_path << "\n";
      }
    }
  }

  if (!options_.metrics_stream_path.empty()) {
    if (metrics_stream_failed_) {
      diag << "obs: cannot open metrics stream path "
           << options_.metrics_stream_path << "\n";
      ok = false;
    } else {
      metrics_stream_out_.flush();
      if (!metrics_stream_out_) {
        diag << "obs: error writing metrics stream path "
             << options_.metrics_stream_path << "\n";
        ok = false;
      } else {
        diag << "obs: streamed " << metrics_stream_writer_->ticks()
             << " metric samples to " << options_.metrics_stream_path << "\n";
      }
    }
  }

  return ok;
}

}  // namespace tmc::obs
