#include "obs/hub.h"

#include <cerrno>
#include <cstdlib>
#include <fstream>
#include <ostream>
#include <string_view>

namespace tmc::obs {
namespace {

/// Splits "--flag=value" at the first '='; returns true when `arg` names
/// `flag` (with or without a value).
bool match_flag(std::string_view arg, std::string_view flag, bool& has_value,
                std::string_view& value) {
  if (arg.substr(0, flag.size()) != flag) return false;
  if (arg.size() == flag.size()) {
    has_value = false;
    return true;
  }
  if (arg[flag.size()] != '=') return false;
  has_value = true;
  value = arg.substr(flag.size() + 1);
  return true;
}

}  // namespace

bool parse_cli_flag(int argc, char** argv, int& i, Options& options,
                    std::string& error) {
  const std::string_view arg = argv[i];
  bool has_value = false;
  std::string_view value;

  if (match_flag(arg, "--metrics", has_value, value)) {
    options.metrics = true;
    if (has_value) options.metrics_path = value;
    return true;
  }
  if (match_flag(arg, "--timeline", has_value, value)) {
    if (!has_value) {
      if (i + 1 >= argc) {
        error = "--timeline requires a path";
        return true;
      }
      value = argv[++i];
    }
    if (value.empty()) {
      error = "--timeline requires a non-empty path";
      return true;
    }
    options.timeline_path = value;
    return true;
  }
  if (match_flag(arg, "--sample-interval", has_value, value)) {
    if (!has_value) {
      if (i + 1 >= argc) {
        error = "--sample-interval requires a value in milliseconds";
        return true;
      }
      value = argv[++i];
    }
    errno = 0;
    char* end = nullptr;
    const std::string text(value);
    const double ms = std::strtod(text.c_str(), &end);
    if (errno != 0 || end == text.c_str() || *end != '\0' || ms <= 0.0 ||
        ms > 1e9) {
      error = "--sample-interval wants a positive millisecond count, got '" +
              text + "'";
      return true;
    }
    options.sample_interval =
        sim::SimTime::microseconds(static_cast<std::int64_t>(ms * 1000.0));
    return true;
  }
  return false;
}

std::string cli_help() {
  return "  --metrics[=PATH]      dump the metrics registry at end of run\n"
         "                        (stderr by default; *.csv selects CSV)\n"
         "  --timeline=PATH       record a Chrome trace_event timeline\n"
         "                        (open in Perfetto / chrome://tracing)\n"
         "  --sample-interval MS  counter-sampling period for --timeline\n"
         "                        (default 100, fractional ok)\n";
}

bool Hub::write_outputs(std::ostream& diag) {
  bool ok = true;

  if (options_.metrics) {
    const bool csv = options_.metrics_path.size() > 4 &&
                     options_.metrics_path.substr(
                         options_.metrics_path.size() - 4) == ".csv";
    if (options_.metrics_path.empty()) {
      write_metrics_json(registry_, diag, label_, end_time_);
    } else {
      std::ofstream out(options_.metrics_path);
      if (!out) {
        diag << "obs: cannot open metrics path " << options_.metrics_path
             << "\n";
        ok = false;
      } else {
        if (csv) {
          write_metrics_csv(registry_, out);
        } else {
          write_metrics_json(registry_, out, label_, end_time_);
        }
        diag << "obs: wrote " << registry_.size() << " metrics to "
             << options_.metrics_path << (csv ? " (csv)\n" : " (json)\n");
      }
    }
  }

  if (!options_.timeline_path.empty()) {
    std::ofstream out(options_.timeline_path);
    if (!out) {
      diag << "obs: cannot open timeline path " << options_.timeline_path
           << "\n";
      ok = false;
    } else {
      write_chrome_trace(timeline_, out);
      diag << "obs: wrote " << timeline_.records().size()
           << " timeline records (" << timeline_.tracks().size()
           << " tracks) to " << options_.timeline_path << "\n";
    }
  }

  return ok;
}

}  // namespace tmc::obs
