// tmcsim -- observability hub: one attachable bundle per observed run.
//
// A Hub owns the metrics Registry, the Timeline recorder, and the interval
// Sampler for a single simulation. Experiment drivers attach it through
// core::MachineConfig::obs (a non-owning pointer); when a sweep runs many
// simulations in parallel, the hub is attached to exactly one designated
// "representative" run (the primary scheduling order / replication 0) so the
// single-threaded instruments are never shared across workers.
//
// The CLI surface (`--metrics[=path]`, `--timeline=path`,
// `--timeline-chunk N`, `--metrics-stream=path`, `--sample-interval MS`) is
// parsed here so tmc_cli and every bench agree on flag semantics.
//
// Two sinks exist for long-lived (sustained-serving) runs where buffering
// every record would grow without bound:
//  * `--timeline-chunk N` drains the timeline to the trace file every N
//    records; the output is byte-identical to the buffered `--timeline`
//    path because both drive the same ChromeTraceWriter.
//  * `--metrics-stream=path` writes one JSONL line per sampler tick
//    ("tmc-metrics-stream-v1") with O(1) memory and works with or without
//    a timeline file.
#pragma once

#include <cstddef>
#include <fstream>
#include <iosfwd>
#include <optional>
#include <string>
#include <utility>

#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/sampler.h"
#include "obs/slo.h"
#include "obs/timeline.h"
#include "sim/time.h"

namespace tmc::obs {

struct Options {
  bool metrics = false;         // dump the registry at end of run
  std::string metrics_path;     // empty => stderr; *.csv => CSV, else JSON
  std::string timeline_path;    // empty => timeline recording off
  std::size_t timeline_chunk = 0;  // 0 => buffer; N => drain every N records
  std::string metrics_stream_path;  // empty => JSONL sampler stream off
  sim::SimTime sample_interval = sim::SimTime::milliseconds(100);
  /// Per-class latency targets (--slo). Consumed by serving-mode harnesses;
  /// single-experiment drivers that take the shared flags ignore it.
  std::vector<SloTarget> slo;

  [[nodiscard]] bool any() const {
    return metrics || !timeline_path.empty() || !metrics_stream_path.empty();
  }
};

/// Consumes one observability flag starting at argv[i], advancing `i` past
/// any value it takes. Returns true if the flag was recognised; on a
/// malformed value, fills `error` and still returns true (callers bail out).
bool parse_cli_flag(int argc, char** argv, int& i, Options& options,
                    std::string& error);

/// Usage text for the shared flags, one per line, indented two spaces.
[[nodiscard]] std::string cli_help();

class Hub {
 public:
  explicit Hub(Options options);
  Hub(const Hub&) = delete;
  Hub& operator=(const Hub&) = delete;

  [[nodiscard]] Registry& registry() { return registry_; }
  [[nodiscard]] Sampler& sampler() { return sampler_; }
  [[nodiscard]] const Options& options() const { return options_; }

  /// The timeline recorder, or nullptr when no --timeline path was given --
  /// components wired with a null Timeline* skip recording entirely.
  [[nodiscard]] Timeline* timeline() {
    return options_.timeline_path.empty() ? nullptr : &timeline_;
  }

  /// Track/name registry for label resolution. Always valid -- the machine
  /// registers tracks here even when timeline *recording* is off, so the
  /// metrics stream can name its channels without buffering any records.
  [[nodiscard]] Timeline& track_registry() { return timeline_; }

  /// The JSONL metrics stream writer, or nullptr when no
  /// --metrics-stream path was given (or the file failed to open).
  [[nodiscard]] MetricsStreamWriter* metrics_stream() {
    return metrics_stream_writer_ ? &*metrics_stream_writer_ : nullptr;
  }

  /// Identifies the run in the metrics dump (experiment/policy label).
  void set_label(std::string label) {
    label_ = std::move(label);
    if (metrics_stream_writer_) metrics_stream_writer_->set_label(label_);
  }

  /// Called by the machine when its run completes: final sample, then
  /// freeze probes so exports outlive the machine.
  void finish_run(sim::SimTime end) {
    sampler_.finish(end);
    registry_.freeze_probes();
    end_time_ = end;
  }

  /// Writes the requested outputs (metrics dump and/or timeline JSON).
  /// Diagnostics (file errors, "wrote N records" notes) go to `diag`.
  /// Returns false if any output file could not be written.
  bool write_outputs(std::ostream& diag);

 private:
  /// Drains one chunk of timeline records to the trace file, lazily opening
  /// the file and writing the preamble on the first call.
  void stream_timeline_chunk(const std::vector<TimelineRecord>& records);
  bool ensure_timeline_writer();

  Options options_;
  Registry registry_;
  Timeline timeline_;
  Sampler sampler_;
  std::string label_ = "tmcsim";
  sim::SimTime end_time_;
  std::ofstream timeline_stream_out_;
  std::optional<ChromeTraceWriter> timeline_writer_;
  bool timeline_open_failed_ = false;
  std::ofstream metrics_stream_out_;
  std::optional<MetricsStreamWriter> metrics_stream_writer_;
  bool metrics_stream_failed_ = false;
};

}  // namespace tmc::obs
