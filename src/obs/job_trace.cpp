#include "obs/job_trace.h"

namespace tmc::obs {

JobTracer::JobTracer(Timeline& timeline,
                     const std::vector<std::string>& class_names)
    : timeline_(timeline) {
  if (class_names.empty()) {
    class_tracks_.push_back(timeline_.add_track(TrackKind::kJob, "jobs"));
  } else {
    class_tracks_.reserve(class_names.size());
    for (const std::string& name : class_names) {
      class_tracks_.push_back(
          timeline_.add_track(TrackKind::kJob, "class:" + name));
    }
  }
  name_job_ = timeline_.intern("job");
  name_wait_ = timeline_.intern("wait");
  name_dispatch_ = timeline_.intern("dispatch");
  name_run_ = timeline_.intern("run");
  name_rotation_ = timeline_.intern("rotation");
  name_retry_ = timeline_.intern("retry");
  name_steal_ = timeline_.intern("steal");
}

JobTracer::Slot& JobTracer::slot_for(std::uint64_t id) {
  const auto index = static_cast<std::size_t>(id - 1);
  if (index >= slots_.size()) slots_.resize(index + 1);
  return slots_[index];
}

void JobTracer::close_phase(Slot& slot, std::uint64_t id, sim::SimTime t) {
  // The steal overlay nests inside the phase span: close it first so the
  // per-id async stack pops in order, and let the caller reopen it inside
  // the next phase (reopen_steal).
  if (slot.steal_open) {
    timeline_.async_end(slot.track, name_steal_, t, id);
    slot.steal_open = false;
  }
  switch (slot.phase) {
    case Phase::kIdle:
      return;
    case Phase::kWait:
      timeline_.async_end(slot.track, name_wait_, t, id);
      break;
    case Phase::kDispatch:
      timeline_.async_end(slot.track, name_dispatch_, t, id);
      break;
    case Phase::kRun:
      timeline_.async_end(slot.track, name_run_, t, id);
      break;
    case Phase::kRotation:
      timeline_.async_end(slot.track, name_rotation_, t, id);
      break;
    case Phase::kRetry:
      timeline_.async_end(slot.track, name_retry_, t, id);
      break;
  }
  slot.phase = Phase::kIdle;
}

void JobTracer::arrival(std::uint64_t id, int job_class, sim::SimTime t) {
  Slot& slot = slot_for(id);
  auto index = static_cast<std::size_t>(job_class < 0 ? 0 : job_class);
  if (index >= class_tracks_.size()) index = class_tracks_.size() - 1;
  slot.track = class_tracks_[index];
  slot.phase = Phase::kWait;
  slot.live = true;
  timeline_.async_begin(slot.track, name_job_, t, id,
                        static_cast<double>(job_class));
  timeline_.async_begin(slot.track, name_wait_, t, id);
}

void JobTracer::reopen_steal(Slot& slot, std::uint64_t id, sim::SimTime t) {
  if (slot.steal_depth > 0 && !slot.steal_open) {
    timeline_.async_begin(slot.track, name_steal_, t, id);
    slot.steal_open = true;
  }
}

void JobTracer::dispatch(std::uint64_t id, sim::SimTime t) {
  Slot& slot = slot_for(id);
  if (!slot.live) return;
  close_phase(slot, id, t);
  slot.phase = Phase::kDispatch;
  timeline_.async_begin(slot.track, name_dispatch_, t, id);
  reopen_steal(slot, id, t);
}

void JobTracer::run_begin(std::uint64_t id, sim::SimTime t) {
  Slot& slot = slot_for(id);
  if (!slot.live) return;
  close_phase(slot, id, t);
  slot.phase = Phase::kRun;
  timeline_.async_begin(slot.track, name_run_, t, id);
  reopen_steal(slot, id, t);
}

void JobTracer::run_end(std::uint64_t id, sim::SimTime t) {
  Slot& slot = slot_for(id);
  if (!slot.live) return;
  close_phase(slot, id, t);
  slot.phase = Phase::kRotation;
  timeline_.async_begin(slot.track, name_rotation_, t, id);
  reopen_steal(slot, id, t);
}

void JobTracer::abort(std::uint64_t id, sim::SimTime t) {
  Slot& slot = slot_for(id);
  if (!slot.live) return;
  close_phase(slot, id, t);
  slot.phase = Phase::kRetry;
  timeline_.async_begin(slot.track, name_retry_, t, id);
  // The abort force-exited every process, thieves included: any protocol
  // still notionally in flight dies with the old life, so the overlay does
  // not reopen. A restarted life starts stealing from scratch.
  slot.steal_depth = 0;
}

void JobTracer::completion(std::uint64_t id, sim::SimTime t) {
  Slot& slot = slot_for(id);
  if (!slot.live) return;
  close_phase(slot, id, t);
  timeline_.async_end(slot.track, name_job_, t, id);
  slot = Slot{};  // recycled ids start a fresh span group
}

void JobTracer::steal_begin(std::uint64_t id, sim::SimTime t) {
  Slot& slot = slot_for(id);
  if (!slot.live) return;
  if (++slot.steal_depth == 1) {
    timeline_.async_begin(slot.track, name_steal_, t, id);
    slot.steal_open = true;
  }
}

void JobTracer::steal_end(std::uint64_t id, sim::SimTime t) {
  Slot& slot = slot_for(id);
  if (!slot.live || slot.steal_depth == 0) return;
  if (--slot.steal_depth == 0 && slot.steal_open) {
    timeline_.async_end(slot.track, name_steal_, t, id);
    slot.steal_open = false;
  }
}

}  // namespace tmc::obs
