// tmcsim -- per-job lifecycle tracer.
//
// Records each job's path through the system (arrival -> queue wait ->
// gang dispatch -> service turns -> rotation gaps -> completion) as async
// span records on one timeline track per job class. Async begin/end pairs
// share the job id, so concurrent jobs of one class render as separately
// nested rows in Perfetto instead of merging into one slice stack.
//
// The span vocabulary forms an exact decomposition of response time:
//
//   job      arrival .. completion             (response time)
//   wait     arrival .. admission              (super-scheduler queue)
//   dispatch admission .. first service turn   (placement / gang parking)
//   run      each gang turn (or the whole execution under space-sharing)
//   rotation each descheduled gap between gang turns
//
// wait + dispatch + sum(run) + sum(rotation) == job, which is what
// tools/obs_report.py folds into the per-class breakdown table.
//
// Ownership mirrors every other obs hook: the machine creates a JobTracer
// only when a timeline is recording, and the schedulers hold a null pointer
// otherwise, so each emission site is one predictable branch when disabled.
// Job ids are recycled by the sustained-serving arena; per-id state is slot
// indexed and reset at arrival, so a recycled id simply opens a new,
// temporally disjoint async span group.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/timeline.h"
#include "sim/time.h"

namespace tmc::obs {

class JobTracer {
 public:
  /// One kJob track per class name ("class:<name>"); an empty vector gets a
  /// single "jobs" track (closed batches have no tenant classes).
  JobTracer(Timeline& timeline, const std::vector<std::string>& class_names);

  /// Job entered the system; `job_class` indexes the constructor's class
  /// list (out-of-range clamps to the last track).
  void arrival(std::uint64_t id, int job_class, sim::SimTime t);
  /// Super scheduler handed the job to a partition (mark_dispatch).
  void dispatch(std::uint64_t id, sim::SimTime t);
  /// A service turn starts: gang turn begins, or (space-sharing) the
  /// processes are placed and runnable.
  void run_begin(std::uint64_t id, sim::SimTime t);
  /// The gang turn ended with the job still incomplete: a rotation gap opens.
  void run_end(std::uint64_t id, sim::SimTime t);
  /// A failure tore the job down mid-flight: closes the open phase and opens
  /// a retry span that lasts until the job is re-admitted (dispatch) or
  /// permanently failed (completion). Part of the response-time
  /// decomposition, so wait + dispatch + run + rotation + retry == job
  /// still holds through fault episodes.
  void abort(std::uint64_t id, sim::SimTime t);
  /// Last process exited; closes whatever phase span is open, then the job.
  void completion(std::uint64_t id, sim::SimTime t);

  /// Work-stealing overlay: a thief of this job entered the steal protocol
  /// (victim selection to reply absorbed). Concurrent thieves nest by
  /// depth-counting -- one "steal" span is open while any thief is mid-
  /// protocol. The span is an *overlay inside* the run/rotation phases, not
  /// a phase of its own: the response-time decomposition stays exact and
  /// tools/obs_report.py reports the column separately (only when
  /// non-zero). Phase transitions close and reopen the span so the per-id
  /// async stack stays properly nested.
  void steal_begin(std::uint64_t id, sim::SimTime t);
  void steal_end(std::uint64_t id, sim::SimTime t);

 private:
  enum class Phase : std::uint8_t {
    kIdle,      // no span group open for this id
    kWait,
    kDispatch,
    kRun,
    kRotation,
    kRetry,     // fault-aborted, waiting for restart or final failure
  };
  struct Slot {
    Phase phase = Phase::kIdle;
    TrackId track = 0;
    bool live = false;  // between arrival and completion
    /// Steal overlay: thieves currently mid-protocol, and whether the
    /// "steal" span is open on the timeline (closed across phase
    /// boundaries to keep the async stack nested, reopened after).
    std::uint32_t steal_depth = 0;
    bool steal_open = false;
  };

  /// Closes the currently open phase span (if any) at `t`, closing an open
  /// steal overlay span first (stack discipline).
  void close_phase(Slot& slot, std::uint64_t id, sim::SimTime t);
  /// Reopens the steal overlay inside a freshly opened phase span.
  void reopen_steal(Slot& slot, std::uint64_t id, sim::SimTime t);
  Slot& slot_for(std::uint64_t id);

  Timeline& timeline_;
  std::vector<TrackId> class_tracks_;
  std::vector<Slot> slots_;  // indexed by job id - 1 (ids are dense, >= 1)
  NameId name_job_ = 0;
  NameId name_wait_ = 0;
  NameId name_dispatch_ = 0;
  NameId name_run_ = 0;
  NameId name_rotation_ = 0;
  NameId name_retry_ = 0;
  NameId name_steal_ = 0;
};

}  // namespace tmc::obs
