#include "obs/metrics.h"

#include <stdexcept>
#include <utility>

namespace tmc::obs {

std::pair<Registry::Entry*, bool> Registry::entry_for(const std::string& name,
                                                      Kind kind) {
  auto [it, inserted] = by_name_.try_emplace(name, entries_.size());
  if (!inserted) {
    Entry& existing = entries_[it->second];
    if (existing.kind != kind) {
      throw std::logic_error("obs::Registry: instrument '" + name +
                             "' re-registered with a different kind");
    }
    return {&existing, false};
  }
  entries_.push_back(Entry{name, kind, 0});
  return {&entries_.back(), true};
}

Counter* Registry::counter(const std::string& name) {
  auto [entry, created] = entry_for(name, Kind::kCounter);
  if (created) {
    entry->index = counters_.size();
    counters_.emplace_back();
  }
  return &counters_[entry->index];
}

Gauge* Registry::gauge(const std::string& name) {
  auto [entry, created] = entry_for(name, Kind::kGauge);
  if (created) {
    entry->index = gauges_.size();
    gauges_.emplace_back();
  }
  return &gauges_[entry->index];
}

Distribution* Registry::distribution(const std::string& name) {
  auto [entry, created] = entry_for(name, Kind::kDistribution);
  if (created) {
    entry->index = distributions_.size();
    distributions_.emplace_back();
  }
  return &distributions_[entry->index];
}

Distribution* Registry::distribution(const std::string& name, double lo,
                                     double hi, std::size_t bins) {
  auto [entry, created] = entry_for(name, Kind::kDistribution);
  if (created) {
    entry->index = distributions_.size();
    distributions_.emplace_back(lo, hi, bins);
  }
  return &distributions_[entry->index];
}

void Registry::probe(const std::string& name, Probe fn) {
  auto [entry, created] = entry_for(name, Kind::kProbe);
  if (created) {
    entry->index = probes_.size();
    probes_.emplace_back();
  }
  ProbeSlot& slot = probes_[entry->index];
  slot.fn = std::move(fn);
  slot.frozen = false;
}

void Registry::freeze_probes() {
  for (ProbeSlot& slot : probes_) {
    if (slot.frozen) continue;
    if (slot.fn) slot.value = slot.fn();
    slot.frozen = true;
    slot.fn = nullptr;
  }
}

std::vector<Registry::View> Registry::snapshot() const {
  std::vector<View> out;
  out.reserve(entries_.size());
  for (const Entry& entry : entries_) {
    View view;
    view.name = entry.name;
    view.kind = entry.kind;
    switch (entry.kind) {
      case Kind::kCounter:
        view.count = counters_[entry.index].value;
        view.value = static_cast<double>(view.count);
        break;
      case Kind::kGauge:
        view.value = gauges_[entry.index].value;
        break;
      case Kind::kDistribution:
        view.distribution = &distributions_[entry.index];
        break;
      case Kind::kProbe: {
        const ProbeSlot& slot = probes_[entry.index];
        view.value = slot.frozen ? slot.value : (slot.fn ? slot.fn() : 0.0);
        break;
      }
    }
    out.push_back(view);
  }
  return out;
}

}  // namespace tmc::obs
