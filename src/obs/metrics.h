// tmcsim -- structured metrics registry (the tmc::obs subsystem).
//
// The registry holds named instruments and hands out stable handles:
// components grab a Counter* / Gauge* / Distribution* once (at construction
// or wiring time) and touch plain memory afterwards -- no hashing, no map
// lookup, no allocation on the hot path. When observability is off no hub is
// attached, every handle is null, and the guarded helpers below compile to a
// single predictable branch -- the golden-figure tables must be byte-identical
// with and without metrics (the "observation must not perturb simulation"
// contract; see DESIGN.md "Observability").
//
// Two instrument flavours cover the stack:
//
//  * Handles (counter / gauge / distribution): for events the simulator did
//    not previously count -- incremented inline by the owning component.
//  * Probes: named closures over state a component already tracks (busy
//    time, free bytes, queue depths). Probes cost nothing during the run;
//    they are evaluated by the interval sampler and frozen into plain gauge
//    values when the run ends, so exports never dereference dead components.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "sim/stats.h"

namespace tmc::obs {

/// Monotonic event count. Plain memory: one add per event.
struct Counter {
  std::uint64_t value = 0;

  void inc(std::uint64_t n = 1) { value += n; }
};

/// Last-written level (free bytes, occupancy).
struct Gauge {
  double value = 0.0;

  void set(double v) { value = v; }
};

/// Streaming distribution: OnlineStats always, plus an optional fixed-bin
/// histogram when quantiles matter (grant latency, response times).
class Distribution {
 public:
  Distribution() = default;
  Distribution(double lo, double hi, std::size_t bins)
      : histogram_(std::in_place, lo, hi, bins) {}

  void add(double x) {
    stats_.add(x);
    if (histogram_) histogram_->add(x);
  }

  [[nodiscard]] const sim::OnlineStats& stats() const { return stats_; }
  [[nodiscard]] const std::optional<sim::Histogram>& histogram() const {
    return histogram_;
  }

 private:
  sim::OnlineStats stats_;
  std::optional<sim::Histogram> histogram_;
};

// Null-safe helpers: the idiomatic hot-path form for instrumented components
// holding possibly-null handles.
inline void bump(Counter* c, std::uint64_t n = 1) {
  if (c != nullptr) c->value += n;
}
inline void set(Gauge* g, double v) {
  if (g != nullptr) g->value = v;
}
inline void observe(Distribution* d, double x) {
  if (d != nullptr) d->add(x);
}

/// Named instrument registry. Registration (name -> handle) hashes once;
/// handles stay valid for the registry's lifetime (deque-backed storage).
/// Single-simulation scope: one Registry belongs to one machine run and is
/// not thread-safe -- parallel sweeps attach a registry to one designated
/// run (see core::run_experiment).
class Registry {
 public:
  using Probe = std::function<double()>;

  enum class Kind { kCounter, kGauge, kDistribution, kProbe };

  /// Get-or-create by name. Re-registering an existing name returns the
  /// original handle; throws std::logic_error if the kinds disagree.
  Counter* counter(const std::string& name);
  Gauge* gauge(const std::string& name);
  Distribution* distribution(const std::string& name);
  Distribution* distribution(const std::string& name, double lo, double hi,
                             std::size_t bins);
  /// Registers a polled gauge over externally-owned state. The closure must
  /// stay callable until freeze_probes().
  void probe(const std::string& name, Probe fn);

  /// Evaluates every live probe into a stored value and drops the closures.
  /// Idempotent. Call when the observed run ends, before the components the
  /// probes read from are destroyed.
  void freeze_probes();

  /// One registered instrument, in registration order.
  struct View {
    std::string_view name;
    Kind kind = Kind::kCounter;
    std::uint64_t count = 0;          // counter value
    double value = 0.0;               // gauge / probe value
    const Distribution* distribution = nullptr;
  };
  /// Snapshot of every instrument in registration order. Unfrozen probes are
  /// evaluated in place.
  [[nodiscard]] std::vector<View> snapshot() const;

  [[nodiscard]] std::size_t size() const { return entries_.size(); }

 private:
  struct Entry {
    std::string name;
    Kind kind;
    std::size_t index;  // into the kind's storage deque
  };
  struct ProbeSlot {
    Probe fn;
    double value = 0.0;
    bool frozen = false;
  };

  /// Returns the entry for `name` plus whether it was just created; throws
  /// on a kind mismatch with an earlier registration.
  std::pair<Entry*, bool> entry_for(const std::string& name, Kind kind);

  std::vector<Entry> entries_;  // registration order (export order)
  std::unordered_map<std::string, std::size_t> by_name_;
  std::deque<Counter> counters_;
  std::deque<Gauge> gauges_;
  std::deque<Distribution> distributions_;
  std::deque<ProbeSlot> probes_;
};

}  // namespace tmc::obs
