// tmcsim -- interval sampler for counter tracks.
//
// Emits periodic kSample records (queue depths, free bytes, utilization) onto
// the timeline without ever touching the event queue: the machine's run loop
// calls advance_to(next_event_time) before firing each event, so sample
// instants are interleaved with -- but never inserted among -- simulation
// events. Event count, ordering, and the final clock are provably unchanged,
// which is what keeps golden tables byte-identical under `--timeline`.
#pragma once

#include <functional>
#include <vector>

#include "obs/timeline.h"
#include "sim/time.h"

namespace tmc::obs {

class Sampler {
 public:
  using Reader = std::function<double()>;

  /// Arms the sampler. A null timeline or non-positive interval leaves it
  /// inactive (advance_to becomes a single branch).
  void configure(Timeline* timeline, sim::SimTime interval) {
    timeline_ = timeline;
    interval_ = interval;
    next_ = sim::SimTime::zero();
  }

  /// Adds a sampled channel: `read` is polled at each sample instant and the
  /// value recorded on `track` under `name`. The closure must stay valid
  /// until finish().
  void add_channel(Reader read, TrackId track, NameId name) {
    channels_.push_back(Channel{std::move(read), track, name});
  }

  [[nodiscard]] bool active() const {
    return timeline_ != nullptr && interval_ > sim::SimTime::zero() &&
           !channels_.empty();
  }

  /// Records every channel at each interval multiple in [next_, horizon).
  /// Strictly-below keeps the sample that coincides with an event instant on
  /// the pre-event side of the next advance_to call.
  void advance_to(sim::SimTime horizon) {
    if (!active()) return;
    while (next_ < horizon) {
      record_all(next_);
      next_ += interval_;
    }
  }

  /// Takes one final sample at `at` (end of run) and drops the channel
  /// closures so later calls never dereference destroyed components.
  void finish(sim::SimTime at) {
    if (active()) record_all(at);
    channels_.clear();
  }

 private:
  struct Channel {
    Reader read;
    TrackId track;
    NameId name;
  };

  void record_all(sim::SimTime at) {
    for (const Channel& c : channels_) {
      timeline_->sample(c.track, c.name, at, c.read());
    }
  }

  Timeline* timeline_ = nullptr;
  sim::SimTime interval_;
  sim::SimTime next_;
  std::vector<Channel> channels_;
};

}  // namespace tmc::obs
