// tmcsim -- interval sampler for counter tracks.
//
// Emits periodic kSample records (queue depths, free bytes, utilization) onto
// the timeline without ever touching the event queue: the machine's run loop
// calls advance_to(next_event_time) before firing each event, so sample
// instants are interleaved with -- but never inserted among -- simulation
// events. Event count, ordering, and the final clock are provably unchanged,
// which is what keeps golden tables byte-identical under `--timeline`.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "obs/export.h"
#include "obs/timeline.h"
#include "sim/time.h"

namespace tmc::obs {

class Sampler {
 public:
  using Reader = std::function<double()>;

  /// Arms the sampler. `timeline` may be null when only a metrics stream is
  /// requested (set_stream); with neither sink nor a positive interval the
  /// sampler stays inactive (advance_to becomes a single branch).
  void configure(Timeline* timeline, sim::SimTime interval) {
    timeline_ = timeline;
    interval_ = interval;
    next_ = sim::SimTime::zero();
  }

  /// Additionally (or instead) emits one JSONL line per sample instant.
  /// `names` resolves track/channel labels for the stream header -- it is
  /// the hub's track registry, which may or may not also be the recording
  /// timeline. The header is written lazily at the first tick so every
  /// channel is registered by then.
  void set_stream(MetricsStreamWriter* stream, const Timeline* names) {
    stream_ = stream;
    stream_names_ = names;
  }

  /// Adds a sampled channel: `read` is polled at each sample instant and the
  /// value recorded on `track` under `name`. The closure must stay valid
  /// until finish().
  void add_channel(Reader read, TrackId track, NameId name) {
    channels_.push_back(Channel{std::move(read), track, name});
  }

  [[nodiscard]] bool active() const {
    return (timeline_ != nullptr || stream_ != nullptr) &&
           interval_ > sim::SimTime::zero() && !channels_.empty();
  }

  /// Records every channel at each interval multiple in [next_, horizon).
  /// Strictly-below keeps the sample that coincides with an event instant on
  /// the pre-event side of the next advance_to call.
  void advance_to(sim::SimTime horizon) {
    if (!active()) return;
    while (next_ < horizon) {
      record_all(next_);
      next_ += interval_;
    }
  }

  /// Takes one final sample at `at` (end of run) and drops the channel
  /// closures so later calls never dereference destroyed components.
  void finish(sim::SimTime at) {
    if (active()) record_all(at);
    channels_.clear();
  }

 private:
  struct Channel {
    Reader read;
    TrackId track;
    NameId name;
  };

  void record_all(sim::SimTime at) {
    if (stream_ != nullptr && !stream_header_written_) {
      std::vector<std::string> labels;
      labels.reserve(channels_.size());
      for (const Channel& c : channels_) {
        labels.push_back(std::string(stream_names_->tracks()[c.track].name) +
                         ":" + std::string(stream_names_->name(c.name)));
      }
      stream_->begin(labels);
      stream_header_written_ = true;
    }
    scratch_.clear();
    for (const Channel& c : channels_) {
      const double v = c.read();
      if (timeline_ != nullptr) timeline_->sample(c.track, c.name, at, v);
      if (stream_ != nullptr) scratch_.push_back(v);
    }
    if (stream_ != nullptr) stream_->tick(at.to_seconds(), scratch_);
  }

  Timeline* timeline_ = nullptr;
  sim::SimTime interval_;
  sim::SimTime next_;
  std::vector<Channel> channels_;
  MetricsStreamWriter* stream_ = nullptr;
  const Timeline* stream_names_ = nullptr;
  bool stream_header_written_ = false;
  std::vector<double> scratch_;
};

}  // namespace tmc::obs
