#include "obs/slo.h"

#include <cerrno>
#include <cstdlib>
#include <iterator>
#include <utility>

namespace tmc::obs {
namespace {

/// Parses a latency literal ("50ms", "2s", "750us", "0.05") into seconds.
bool parse_latency(std::string_view text, double& out_s) {
  double scale = 1.0;
  if (text.size() >= 2 && text.substr(text.size() - 2) == "ns") {
    scale = 1e-9;
    text.remove_suffix(2);
  } else if (text.size() >= 2 && text.substr(text.size() - 2) == "us") {
    scale = 1e-6;
    text.remove_suffix(2);
  } else if (text.size() >= 2 && text.substr(text.size() - 2) == "ms") {
    scale = 1e-3;
    text.remove_suffix(2);
  } else if (!text.empty() && text.back() == 's') {
    text.remove_suffix(1);
  }
  if (text.empty()) return false;
  const std::string digits(text);
  errno = 0;
  char* end = nullptr;
  const double value = std::strtod(digits.c_str(), &end);
  if (errno != 0 || end != digits.c_str() + digits.size() || value <= 0.0) {
    return false;
  }
  out_s = value * scale;
  return true;
}

bool parse_entry(std::string_view entry, SloTarget& target,
                 std::string& error) {
  const std::size_t eq = entry.find('=');
  if (eq == std::string_view::npos || eq == 0) {
    error = "--slo entry '" + std::string(entry) +
            "' wants class=latency (e.g. interactive=50ms)";
    return false;
  }
  target.job_class = std::string(entry.substr(0, eq));
  std::string_view value = entry.substr(eq + 1);

  const std::size_t at = value.find('@');
  if (at != std::string_view::npos) {
    const std::string pct_text(value.substr(at + 1));
    errno = 0;
    char* end = nullptr;
    const double pct = std::strtod(pct_text.c_str(), &end);
    if (errno != 0 || end != pct_text.c_str() + pct_text.size() ||
        pct <= 0.0 || pct >= 100.0) {
      error = "--slo objective '" + pct_text +
              "' wants a percentage in (0, 100), e.g. @99.9";
      return false;
    }
    target.objective = pct / 100.0;
    value = value.substr(0, at);
  }

  if (!parse_latency(value, target.target_s)) {
    error = "--slo latency '" + std::string(value) +
            "' wants a positive duration (ns/us/ms/s suffix; bare = seconds)";
    return false;
  }
  return true;
}

}  // namespace

bool parse_slo_spec(std::string_view spec, std::vector<SloTarget>& out,
                    std::string& error) {
  if (spec.empty()) {
    error = "--slo wants class=latency[,class=latency...]";
    return false;
  }
  std::vector<SloTarget> targets;
  std::size_t start = 0;
  while (start <= spec.size()) {
    std::size_t comma = spec.find(',', start);
    if (comma == std::string_view::npos) comma = spec.size();
    SloTarget target;
    if (!parse_entry(spec.substr(start, comma - start), target, error)) {
      return false;
    }
    for (const SloTarget& existing : targets) {
      if (existing.job_class == target.job_class) {
        error = "--slo lists class '" + target.job_class + "' twice";
        return false;
      }
    }
    targets.push_back(std::move(target));
    start = comma + 1;
  }
  out.insert(out.end(), std::make_move_iterator(targets.begin()),
             std::make_move_iterator(targets.end()));
  return true;
}

SloTracker::SloTracker(std::vector<SloTarget> targets) {
  classes_.reserve(targets.size());
  for (SloTarget& target : targets) {
    ClassState state;
    state.target = std::move(target);
    classes_.push_back(std::move(state));
  }
}

int SloTracker::index_of(std::string_view job_class) const {
  for (std::size_t i = 0; i < classes_.size(); ++i) {
    if (classes_[i].target.job_class == job_class) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

}  // namespace tmc::obs
