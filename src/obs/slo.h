// tmcsim -- per-class service-level-objective tracking.
//
// A sustained serving run declares latency targets per tenant class
// ("interactive answers within 50 ms, 99% of the time") and this tracker
// streams how the run is doing against them: attainment (fraction of
// completions meeting the target), error-budget burn (miss rate over the
// allowed miss rate -- >1 means the objective is being violated), and P²
// stretch/slowdown quantiles (response / service demand, the fairness
// metric of the dynamic-scheduling literature). Everything is O(1) memory
// per class and deterministic, so the serving golden tables can pin the
// summary block byte-exactly.
//
// The tracker is independent of the Hub: core::run_sustained owns one per
// run whenever targets are configured (the summary must be identical for
// every policy in a sweep, instrumented or not) and additionally registers
// sampler channels over it when a hub is attached.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "sim/streaming_stats.h"

namespace tmc::obs {

struct SloTarget {
  std::string job_class;    // tenant class name, e.g. "interactive"
  double target_s = 0.0;    // response-time target in seconds
  double objective = 0.99;  // required attainment fraction, in (0, 1)
};

/// Parses a --slo spec: comma-separated `class=latency[@percent]` entries,
/// latency with an optional ns/us/ms/s suffix (bare numbers are seconds)
/// and the objective as a percentage (default 99). Examples:
/// "interactive=50ms,batch=2s", "interactive=50ms@99.9".
/// On failure fills `error` and returns false.
bool parse_slo_spec(std::string_view spec, std::vector<SloTarget>& out,
                    std::string& error);

class SloTracker {
 public:
  struct ClassState {
    SloTarget target;
    std::uint64_t completed = 0;
    std::uint64_t met = 0;
    sim::QuantileTrio stretch_q;  // streaming p50/p95/p99 slowdown
  };

  SloTracker() = default;  // no targets: size() == 0, nothing tracked
  explicit SloTracker(std::vector<SloTarget> targets);

  /// Index of the state tracking `job_class`, or -1 when untracked.
  [[nodiscard]] int index_of(std::string_view job_class) const;

  /// Accounts one measured completion against target `index`.
  void record(std::size_t index, double response_s, double stretch) {
    ClassState& cls = classes_[index];
    ++cls.completed;
    if (response_s <= cls.target.target_s) ++cls.met;
    cls.stretch_q.add(stretch);
  }

  /// Fraction of completions within target (1 until the first completion).
  [[nodiscard]] double attainment(std::size_t index) const {
    const ClassState& cls = classes_[index];
    if (cls.completed == 0) return 1.0;
    return static_cast<double>(cls.met) / static_cast<double>(cls.completed);
  }

  /// Error-budget burn: observed miss rate over the allowed miss rate
  /// (1 - objective). Below 1 the class is within budget; above 1 the
  /// objective is being violated at that multiple.
  [[nodiscard]] double budget_burn(std::size_t index) const {
    const ClassState& cls = classes_[index];
    const double allowed = 1.0 - cls.target.objective;
    return (1.0 - attainment(index)) / allowed;
  }

  [[nodiscard]] const std::vector<ClassState>& classes() const {
    return classes_;
  }
  [[nodiscard]] std::size_t size() const { return classes_.size(); }

 private:
  std::vector<ClassState> classes_;
};

}  // namespace tmc::obs
