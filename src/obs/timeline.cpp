#include "obs/timeline.h"

#include <utility>

namespace tmc::obs {

TrackId Timeline::add_track(TrackKind kind, std::string name) {
  tracks_.push_back(Track{std::move(name), kind});
  return static_cast<TrackId>(tracks_.size() - 1);
}

NameId Timeline::intern(std::string_view name) {
  auto it = name_ids_.find(std::string(name));
  if (it != name_ids_.end()) return it->second;
  const NameId id = static_cast<NameId>(names_.size());
  names_.emplace_back(name);
  name_ids_.emplace(names_.back(), id);
  return id;
}

}  // namespace tmc::obs
