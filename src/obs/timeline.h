// tmcsim -- binary timeline recorder.
//
// Upgrades the line-based sim::Tracer into fixed-size binary records that
// exporters can turn into Chrome trace_event JSON (Perfetto-loadable).
// Components record against pre-registered tracks (one per node, link, and
// partition) using interned name ids, so a record is a 32-byte append with
// no formatting or allocation beyond vector growth.
//
// Ownership mirrors the metrics registry: the machine wires components with
// a Timeline* only when a timeline export was requested; a null pointer (the
// default) means every recording site is one predictable branch.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "sim/time.h"

namespace tmc::obs {

enum class TrackKind : std::uint8_t {
  kNode,
  kLink,
  kPartition,
  kGlobal,
  kJob,  // one track per job class; concurrent jobs nest as async spans
};

using TrackId = std::uint32_t;
using NameId = std::uint32_t;

enum class RecordKind : std::uint8_t {
  kSpan,        // [start, start+dur): CPU charge, link transfer
  kInstant,     // point event: gang switch, quantum expiry
  kSample,      // counter-track value at `start` (sampler output)
  kAsyncBegin,  // open an id-keyed span on a job track (Chrome ph "b")
  kAsyncEnd,    // close the innermost open span for that id (ph "e")
  kFlowStart,   // flow arrow tail: message leaves a node (ph "s")
  kFlowFinish,  // flow arrow head: message arrives (ph "f")
};

struct TimelineRecord {
  std::int64_t start_ns = 0;
  std::int64_t dur_ns = 0;
  TrackId track = 0;
  NameId name = 0;
  RecordKind kind = RecordKind::kInstant;
  double value = 0.0;  // sample value; span/instant auxiliary arg (e.g. pid)
  std::uint64_t id = 0;  // async span group / flow pairing id
};

class Timeline {
 public:
  struct Track {
    std::string name;
    TrackKind kind = TrackKind::kGlobal;
  };

  TrackId add_track(TrackKind kind, std::string name);
  /// Interns `name`; repeated calls with the same string return the same id.
  NameId intern(std::string_view name);

  void span(TrackId track, NameId name, sim::SimTime start,
            sim::SimTime duration, double value = 0.0) {
    records_.push_back(
        {start.ns(), duration.ns(), track, name, RecordKind::kSpan, value});
    maybe_flush();
  }
  void instant(TrackId track, NameId name, sim::SimTime at,
               double value = 0.0) {
    records_.push_back(
        {at.ns(), 0, track, name, RecordKind::kInstant, value});
    maybe_flush();
  }
  void sample(TrackId track, NameId name, sim::SimTime at, double value) {
    records_.push_back(
        {at.ns(), 0, track, name, RecordKind::kSample, value});
    maybe_flush();
  }

  /// Async (id-keyed) spans: begin/end pairs with the same id on the same
  /// track nest like a per-id stack, so many concurrent jobs can share one
  /// class track and still render as separate nested rows in Perfetto.
  void async_begin(TrackId track, NameId name, sim::SimTime at,
                   std::uint64_t id, double value = 0.0) {
    records_.push_back(
        {at.ns(), 0, track, name, RecordKind::kAsyncBegin, value, id});
    maybe_flush();
  }
  void async_end(TrackId track, NameId name, sim::SimTime at,
                 std::uint64_t id, double value = 0.0) {
    records_.push_back(
        {at.ns(), 0, track, name, RecordKind::kAsyncEnd, value, id});
    maybe_flush();
  }

  /// Flow arrows: a start on the sending track and a finish with the same
  /// id on the receiving track draw a causality arrow across tracks.
  void flow_start(TrackId track, NameId name, sim::SimTime at,
                  std::uint64_t id, double value = 0.0) {
    records_.push_back(
        {at.ns(), 0, track, name, RecordKind::kFlowStart, value, id});
    maybe_flush();
  }
  void flow_finish(TrackId track, NameId name, sim::SimTime at,
                   std::uint64_t id, double value = 0.0) {
    records_.push_back(
        {at.ns(), 0, track, name, RecordKind::kFlowFinish, value, id});
    maybe_flush();
  }

  /// Arms chunked draining: whenever at least `chunk_records` records have
  /// accumulated, `flush` is invoked with the batch and the buffer is
  /// cleared. Records are appended in event order, so draining preserves
  /// the exact sequence the buffered path would have written. Annotations
  /// are not drained -- they are per-run prose, bounded, and the trace
  /// format wants them after the records anyway.
  using FlushFn = std::function<void(const std::vector<TimelineRecord>&)>;
  void set_flush(FlushFn flush, std::size_t chunk_records) {
    flush_ = std::move(flush);
    chunk_records_ = chunk_records == 0 ? 1 : chunk_records;
  }

  /// Total records handed to the flush callback so far.
  [[nodiscard]] std::uint64_t flushed_records() const {
    return flushed_records_;
  }

  /// Freeform text instant: legacy trace lines routed through the recorder.
  /// Stored out of band because the text is per-event prose -- interning it
  /// would grow the name table without bound.
  struct Annotation {
    std::int64_t at_ns = 0;
    TrackId track = 0;
    std::string text;
  };
  void annotate(TrackId track, sim::SimTime at, std::string text) {
    annotations_.push_back(Annotation{at.ns(), track, std::move(text)});
  }

  [[nodiscard]] const std::vector<Track>& tracks() const { return tracks_; }
  [[nodiscard]] std::string_view name(NameId id) const { return names_[id]; }
  [[nodiscard]] const std::vector<TimelineRecord>& records() const {
    return records_;
  }
  [[nodiscard]] const std::vector<Annotation>& annotations() const {
    return annotations_;
  }

 private:
  void maybe_flush() {
    if (flush_ && records_.size() >= chunk_records_) {
      flushed_records_ += records_.size();
      flush_(records_);
      records_.clear();
    }
  }

  std::vector<Track> tracks_;
  std::vector<std::string> names_;
  std::unordered_map<std::string, NameId> name_ids_;
  std::vector<TimelineRecord> records_;
  std::vector<Annotation> annotations_;
  FlushFn flush_;
  std::size_t chunk_records_ = 0;
  std::uint64_t flushed_records_ = 0;
};

}  // namespace tmc::obs
