#include "sched/adaptive_scheduler.h"

#include <algorithm>
#include <bit>
#include <cassert>

namespace tmc::sched {

AdaptiveScheduler::AdaptiveScheduler(sim::Simulation& sim,
                                     std::vector<node::Transputer*> cpus,
                                     node::CommSystem& comm,
                                     PolicyConfig policy,
                                     PartitionSchedParams params)
    : sim_(sim),
      cpus_(std::move(cpus)),
      comm_(comm),
      policy_(policy),
      params_(params),
      buddy_(static_cast<int>(cpus_.size())) {}

void AdaptiveScheduler::submit(Job& job) {
  job.mark_arrival(sim_.now());
  if (job_tracer_ != nullptr) {
    job_tracer_->arrival(job.id(), job.spec().job_class, sim_.now());
  }
  ++submitted_;
  queue_.push_back(&job);
  pump();
}

int AdaptiveScheduler::target_size() const {
  const int in_system =
      static_cast<int>(queue_.size()) + static_cast<int>(running_.size());
  const int share = buddy_.total() / std::max(in_system, 1);
  const int floored = std::max(share, policy_.adaptive_min_partition);
  return static_cast<int>(
      std::bit_floor(static_cast<unsigned>(std::max(floored, 1))));
}

void AdaptiveScheduler::pump() {
  while (!queue_.empty()) {
    auto block = buddy_.allocate_at_most(target_size());
    if (!block) return;  // machine full: wait for a departure
    if (dead_count_ > 0 && !block_usable(*block)) {
      // The buddy handed back capacity spanning a dead node: park it in
      // quarantine (returned on repair) and try the rest of the pool.
      quarantined_.push_back(*block);
      continue;
    }
    Job* job = queue_.front();
    queue_.pop_front();

    Partition partition;
    partition.id = partition_seq_++;
    for (int i = 0; i < block->size; ++i) {
      partition.nodes.push_back(block->base + i);
    }
    // Within its allocation the job runs exactly as under the static
    // policy: exclusive use, run to completion.
    PolicyConfig local = policy_;
    local.kind = PolicyKind::kStatic;
    local.partition_size = block->size;
    auto scheduler = std::make_unique<PartitionScheduler>(
        sim_, std::move(partition), cpus_, comm_, local, params_);
    scheduler->set_completion_handler(
        [this](PartitionScheduler&, Job& done) { on_job_complete(done); });
    scheduler->set_job_tracer(job_tracer_);

    alloc_sizes_.add(static_cast<double>(block->size));
    Running& entry = running_[job->id()];
    entry.block = *block;
    entry.scheduler = std::move(scheduler);
    entry.scheduler->admit(*job);
  }
}

void AdaptiveScheduler::on_job_complete(Job& job) {
  const auto it = running_.find(job.id());
  assert(it != running_.end());
  release_block(it->second.block);
  // Reclaim schedulers retired by *earlier* completions. Safe here:
  // teardown only runs as its own deferred event with this handler in tail
  // position, so a previously retired scheduler has no pending events and
  // no frame on the stack. Keeping only the current one bounds memory over
  // sustained runs (it used to grow by one scheduler per completed job).
  retired_.clear();
  retired_.push_back(std::move(it->second.scheduler));
  running_.erase(it);
  ++completed_;
  if (observer_) observer_(job);
  pump();
}

void AdaptiveScheduler::enable_fault_mode(int restart_budget) {
  restart_budget_ = restart_budget;
  dead_nodes_.assign(cpus_.size(), 0);
}

bool AdaptiveScheduler::block_usable(const ProcessorBlock& block) const {
  for (int i = 0; i < block.size; ++i) {
    if (dead_nodes_[static_cast<std::size_t>(block.base + i)] != 0) {
      return false;
    }
  }
  return true;
}

void AdaptiveScheduler::release_block(const ProcessorBlock& block) {
  if (dead_count_ == 0 || block_usable(block)) {
    buddy_.free(block);
  } else {
    quarantined_.push_back(block);
  }
}

void AdaptiveScheduler::handle_aborted(Job& job) {
  if (job.restarts() < restart_budget_) {
    job.count_restart();
    ++job_restarts_;
    // Restart ahead of new arrivals: the job already waited its turn once.
    queue_.push_front(&job);
    return;
  }
  ++jobs_failed_;
  job.mark_failed();
  job.mark_completion(sim_.now());
  if (job_tracer_ != nullptr) job_tracer_->completion(job.id(), sim_.now());
  ++completed_;
  if (observer_) observer_(job);
}

void AdaptiveScheduler::abort_running(JobId id) {
  const auto it = running_.find(id);
  assert(it != running_.end());
  Job* job = it->second.scheduler->find_resident(id);
  if (job == nullptr) {
    // The job's last process already exited; its deferred teardown owns the
    // cleanup (and release_block keeps its dead-spanning block quarantined).
    return;
  }
  it->second.scheduler->abort_job(*job);
  release_block(it->second.block);
  // Retire rather than destroy: on_job_complete reclaims retired schedulers
  // at a point where no frame of theirs can be on the stack.
  retired_.push_back(std::move(it->second.scheduler));
  running_.erase(it);
  handle_aborted(*job);
}

void AdaptiveScheduler::on_node_down(net::NodeId node) {
  if (dead_nodes_.empty()) return;
  char& flag = dead_nodes_[static_cast<std::size_t>(node)];
  if (flag != 0) return;
  flag = 1;
  ++dead_count_;
  // Buddy blocks are disjoint so at most one running job spans this node,
  // but running_ is an unordered_map: collect and sort for a deterministic
  // replay regardless.
  affected_.clear();
  for (const auto& [id, entry] : running_) {
    const ProcessorBlock& b = entry.block;
    if (node >= b.base && node < b.base + b.size) affected_.push_back(id);
  }
  std::sort(affected_.begin(), affected_.end());
  for (const JobId id : affected_) abort_running(id);
  pump();
}

void AdaptiveScheduler::on_node_up(net::NodeId node) {
  if (dead_nodes_.empty()) return;
  char& flag = dead_nodes_[static_cast<std::size_t>(node)];
  if (flag == 0) return;
  flag = 0;
  --dead_count_;
  // Return quarantined blocks whose nodes have all recovered.
  for (auto it = quarantined_.begin(); it != quarantined_.end();) {
    if (block_usable(*it)) {
      buddy_.free(*it);
      it = quarantined_.erase(it);
    } else {
      ++it;
    }
  }
  pump();
}

void AdaptiveScheduler::on_job_comm_failure(JobId job) {
  if (running_.find(job) == running_.end()) return;
  abort_running(job);
  pump();
}

}  // namespace tmc::sched
