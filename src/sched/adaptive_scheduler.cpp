#include "sched/adaptive_scheduler.h"

#include <algorithm>
#include <bit>
#include <cassert>

namespace tmc::sched {

AdaptiveScheduler::AdaptiveScheduler(sim::Simulation& sim,
                                     std::vector<node::Transputer*> cpus,
                                     node::CommSystem& comm,
                                     PolicyConfig policy,
                                     PartitionSchedParams params)
    : sim_(sim),
      cpus_(std::move(cpus)),
      comm_(comm),
      policy_(policy),
      params_(params),
      buddy_(static_cast<int>(cpus_.size())) {}

void AdaptiveScheduler::submit(Job& job) {
  job.mark_arrival(sim_.now());
  if (job_tracer_ != nullptr) {
    job_tracer_->arrival(job.id(), job.spec().job_class, sim_.now());
  }
  ++submitted_;
  queue_.push_back(&job);
  pump();
}

int AdaptiveScheduler::target_size() const {
  const int in_system =
      static_cast<int>(queue_.size()) + static_cast<int>(running_.size());
  const int share = buddy_.total() / std::max(in_system, 1);
  const int floored = std::max(share, policy_.adaptive_min_partition);
  return static_cast<int>(
      std::bit_floor(static_cast<unsigned>(std::max(floored, 1))));
}

void AdaptiveScheduler::pump() {
  while (!queue_.empty()) {
    auto block = buddy_.allocate_at_most(target_size());
    if (!block) return;  // machine full: wait for a departure
    Job* job = queue_.front();
    queue_.pop_front();

    Partition partition;
    partition.id = partition_seq_++;
    for (int i = 0; i < block->size; ++i) {
      partition.nodes.push_back(block->base + i);
    }
    // Within its allocation the job runs exactly as under the static
    // policy: exclusive use, run to completion.
    PolicyConfig local = policy_;
    local.kind = PolicyKind::kStatic;
    local.partition_size = block->size;
    auto scheduler = std::make_unique<PartitionScheduler>(
        sim_, std::move(partition), cpus_, comm_, local, params_);
    scheduler->set_completion_handler(
        [this](PartitionScheduler&, Job& done) { on_job_complete(done); });
    scheduler->set_job_tracer(job_tracer_);

    alloc_sizes_.add(static_cast<double>(block->size));
    Running& entry = running_[job->id()];
    entry.block = *block;
    entry.scheduler = std::move(scheduler);
    entry.scheduler->admit(*job);
  }
}

void AdaptiveScheduler::on_job_complete(Job& job) {
  const auto it = running_.find(job.id());
  assert(it != running_.end());
  buddy_.free(it->second.block);
  // Reclaim schedulers retired by *earlier* completions. Safe here:
  // teardown only runs as its own deferred event with this handler in tail
  // position, so a previously retired scheduler has no pending events and
  // no frame on the stack. Keeping only the current one bounds memory over
  // sustained runs (it used to grow by one scheduler per completed job).
  retired_.clear();
  retired_.push_back(std::move(it->second.scheduler));
  running_.erase(it);
  ++completed_;
  if (observer_) observer_(job);
  pump();
}

}  // namespace tmc::sched
