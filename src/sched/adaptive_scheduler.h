// tmcsim -- adaptive space-sharing (extension; bench A9).
//
// The paper's taxonomy (section 2.1) divides space-sharing into static,
// semi-static and dynamic families but implements only the static one.
// This scheduler implements the classic *adaptive* variant studied by the
// works the paper cites ([5] Dussa et al., [10] Rosti et al.): partitions
// are sized at dispatch time to the current load -- target = P / jobs in
// system, rounded to a power of two -- and carved from a buddy allocator,
// so a lightly loaded machine gives each job many processors while a
// backlogged one degrades toward one processor per job. Jobs still run to
// completion (no repartitioning of running jobs).
#pragma once

#include <deque>
#include <memory>
#include <unordered_map>
#include <vector>

#include "node/comm.h"
#include "node/transputer.h"
#include "sched/buddy.h"
#include "sched/partition_scheduler.h"
#include "sched/policy.h"
#include "sched/scheduler.h"
#include "sim/simulation.h"
#include "sim/stats.h"

namespace tmc::sched {

class AdaptiveScheduler final : public Scheduler {
 public:
  AdaptiveScheduler(sim::Simulation& sim, std::vector<node::Transputer*> cpus,
                    node::CommSystem& comm, PolicyConfig policy,
                    PartitionSchedParams params = {});

  void submit(Job& job) override;
  [[nodiscard]] std::size_t queued_jobs() const override {
    return queue_.size();
  }
  [[nodiscard]] std::uint64_t submitted() const override { return submitted_; }
  [[nodiscard]] std::uint64_t completed() const override { return completed_; }

  [[nodiscard]] const BuddyAllocator& buddy() const { return buddy_; }
  [[nodiscard]] int running_jobs() const {
    return static_cast<int>(running_.size());
  }
  /// Distribution of granted partition sizes.
  [[nodiscard]] const sim::OnlineStats& allocation_sizes() const {
    return alloc_sizes_;
  }

  // --- fault mode ---------------------------------------------------------
  /// A dead node kills the job running on its buddy block; the block sits
  /// in quarantine (capacity the allocator cannot hand out) until every one
  /// of its nodes recovers.
  void enable_fault_mode(int restart_budget) override;
  void on_node_down(net::NodeId node) override;
  void on_node_up(net::NodeId node) override;
  void on_job_comm_failure(JobId job) override;

 private:
  struct Running {
    std::unique_ptr<PartitionScheduler> scheduler;
    ProcessorBlock block;
  };

  /// Equipartition target for the next dispatch.
  [[nodiscard]] int target_size() const;
  void pump();
  void on_job_complete(Job& job);
  [[nodiscard]] bool block_usable(const ProcessorBlock& block) const;
  /// Frees `block` to the buddy pool, or quarantines it while it spans a
  /// dead node.
  void release_block(const ProcessorBlock& block);
  /// Aborts the running job `id` (no-op if its completion is already in
  /// flight) and requeues or fails it.
  void abort_running(JobId id);
  /// Requeues (under budget) or permanently fails a fault-aborted job.
  void handle_aborted(Job& job);

  sim::Simulation& sim_;
  std::vector<node::Transputer*> cpus_;
  node::CommSystem& comm_;
  PolicyConfig policy_;
  PartitionSchedParams params_;
  BuddyAllocator buddy_;

  std::deque<Job*> queue_;
  std::unordered_map<JobId, Running> running_;
  /// Completed jobs' partition schedulers; destroying one inside its own
  /// completion callback would be use-after-free, so they retire here.
  std::vector<std::unique_ptr<PartitionScheduler>> retired_;
  int partition_seq_ = 0;
  std::uint64_t submitted_ = 0;
  std::uint64_t completed_ = 0;
  sim::OnlineStats alloc_sizes_;
  int restart_budget_ = 0;
  /// Per-node dead flags (empty = fault mode off) and the live dead count.
  std::vector<char> dead_nodes_;
  int dead_count_ = 0;
  /// Buddy blocks withheld from the pool because they span a dead node.
  std::vector<ProcessorBlock> quarantined_;
  /// Scratch: job ids hit by a node death, sorted for deterministic replay
  /// (running_ is an unordered_map).
  std::vector<JobId> affected_;
};

}  // namespace tmc::sched
