// tmcsim -- admission control for open-arrival serving.
//
// A closed batch never needs admission: every job is submitted up front
// and the system drains. An open stream served for millions of jobs does:
// if the offered load exceeds what the policy can sustain, the backlog --
// and with it memory and every response time -- grows without bound. The
// serving harness therefore sheds arrivals beyond a configured backlog,
// the standard bounded-queue discipline of production admission gates.
// Shedding is accounted per tenant class so the report can show who was
// turned away, not just how many.
#pragma once

#include <cstdint>
#include <vector>

namespace tmc::sched {

/// Bounded-backlog admission gate. Stateless apart from its counters: the
/// caller presents the scheduler's current queue depth at each arrival.
class AdmissionControl {
 public:
  /// `max_backlog` = most jobs allowed to be waiting (queued, not yet
  /// dispatched) when a new arrival is admitted; 0 = admit everything.
  explicit AdmissionControl(std::size_t max_backlog, std::size_t classes = 1)
      : max_backlog_(max_backlog), shed_by_class_(classes, 0) {}

  /// Decides one arrival of class `job_class` with `queued` jobs waiting.
  [[nodiscard]] bool admit(std::size_t queued, std::size_t job_class = 0) {
    ++offered_;
    if (max_backlog_ != 0 && queued >= max_backlog_) {
      ++shed_;
      shed_by_class_[job_class] += 1;
      return false;
    }
    ++admitted_;
    return true;
  }

  /// Retunes the backlog bound mid-run. The serving harness shrinks it in
  /// proportion to surviving capacity during fault episodes so admission
  /// tracks what the degraded machine can actually drain.
  void set_max_backlog(std::size_t max_backlog) { max_backlog_ = max_backlog; }

  [[nodiscard]] std::size_t max_backlog() const { return max_backlog_; }
  [[nodiscard]] std::uint64_t offered() const { return offered_; }
  [[nodiscard]] std::uint64_t admitted() const { return admitted_; }
  [[nodiscard]] std::uint64_t shed() const { return shed_; }
  [[nodiscard]] std::uint64_t shed_in_class(std::size_t job_class) const {
    return shed_by_class_[job_class];
  }

 private:
  std::size_t max_backlog_;
  std::uint64_t offered_ = 0;
  std::uint64_t admitted_ = 0;
  std::uint64_t shed_ = 0;
  std::vector<std::uint64_t> shed_by_class_;
};

}  // namespace tmc::sched
