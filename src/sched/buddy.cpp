#include "sched/buddy.h"

#include <bit>
#include <cassert>
#include <stdexcept>

namespace tmc::sched {

int BuddyAllocator::order_of(int size) {
  return std::countr_zero(static_cast<unsigned>(size));
}

BuddyAllocator::BuddyAllocator(int processors) : total_(processors) {
  if (processors <= 0 ||
      !std::has_single_bit(static_cast<unsigned>(processors))) {
    throw std::invalid_argument("buddy pool size must be a power of two");
  }
  max_order_ = order_of(processors);
  free_.resize(static_cast<std::size_t>(max_order_) + 1);
  free_[static_cast<std::size_t>(max_order_)].insert(0);
}

std::optional<ProcessorBlock> BuddyAllocator::allocate(int size) {
  if (size <= 0 || size > total_ ||
      !std::has_single_bit(static_cast<unsigned>(size))) {
    return std::nullopt;
  }
  const int want = order_of(size);
  // Find the smallest free block large enough.
  int from = want;
  while (from <= max_order_ &&
         free_[static_cast<std::size_t>(from)].empty()) {
    ++from;
  }
  if (from > max_order_) return std::nullopt;
  // Take the lowest-address block and split down to the wanted order.
  net::NodeId base = *free_[static_cast<std::size_t>(from)].begin();
  free_[static_cast<std::size_t>(from)].erase(base);
  for (int k = from; k > want; --k) {
    // Keep the lower half, free the upper half.
    const net::NodeId upper = base + (1 << (k - 1));
    free_[static_cast<std::size_t>(k - 1)].insert(upper);
  }
  const ProcessorBlock block{base, size};
  live_.insert(block);
  allocated_ += size;
  ++allocations_;
  return block;
}

std::optional<ProcessorBlock> BuddyAllocator::allocate_at_most(int max_size) {
  int size = std::min(max_size, total_);
  if (size <= 0) return std::nullopt;
  size = static_cast<int>(std::bit_floor(static_cast<unsigned>(size)));
  for (; size >= 1; size /= 2) {
    if (auto block = allocate(size)) return block;
  }
  return std::nullopt;
}

void BuddyAllocator::free(ProcessorBlock block) {
  const auto it = live_.find(block);
  if (it == live_.end()) {
    throw std::invalid_argument("freeing a block that is not allocated");
  }
  live_.erase(it);
  allocated_ -= block.size;

  int order = order_of(block.size);
  net::NodeId base = block.base;
  // Eager coalescing with the buddy at each order.
  while (order < max_order_) {
    const net::NodeId buddy = base ^ (1 << order);
    auto& bucket = free_[static_cast<std::size_t>(order)];
    const auto buddy_it = bucket.find(buddy);
    if (buddy_it == bucket.end()) break;
    bucket.erase(buddy_it);
    base = std::min(base, buddy);
    ++order;
  }
  free_[static_cast<std::size_t>(order)].insert(base);
}

int BuddyAllocator::largest_free_block() const {
  for (int k = max_order_; k >= 0; --k) {
    if (!free_[static_cast<std::size_t>(k)].empty()) return 1 << k;
  }
  return 0;
}

}  // namespace tmc::sched
