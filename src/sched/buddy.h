// tmcsim -- buddy processor allocator.
//
// The paper's static policy fixes the partition size for the whole run; its
// taxonomy (section 2.1, after [7,8,11]) also names semi-static and dynamic
// space-sharing, and its Intel iPSC example allocates power-of-two node
// blocks per job. This is that allocator: a classic buddy system over 2^k
// processors, used by the adaptive space-sharing policy (bench A9) to size
// partitions to the current load.
#pragma once

#include <cstdint>
#include <optional>
#include <set>
#include <vector>

#include "net/topology.h"

namespace tmc::sched {

/// A contiguous block of processors [base, base + size), size a power of 2,
/// aligned to its size (buddy invariant).
struct ProcessorBlock {
  net::NodeId base = 0;
  int size = 0;

  friend bool operator==(const ProcessorBlock&,
                         const ProcessorBlock&) = default;
};

inline bool operator<(const ProcessorBlock& a, const ProcessorBlock& b) {
  return a.base != b.base ? a.base < b.base : a.size < b.size;
}

class BuddyAllocator {
 public:
  /// `processors` must be a power of two.
  explicit BuddyAllocator(int processors);

  /// Allocates an aligned block of exactly `size` (a power of two <= total),
  /// splitting larger free blocks as needed. Lowest-address block first
  /// (deterministic). Returns nullopt if no block of that size can be made.
  std::optional<ProcessorBlock> allocate(int size);

  /// Allocates the largest available block with size <= `max_size`
  /// (adaptive policies degrade gracefully under fragmentation).
  std::optional<ProcessorBlock> allocate_at_most(int max_size);

  /// Returns a block obtained from allocate(); buddies coalesce eagerly.
  void free(ProcessorBlock block);

  [[nodiscard]] int total() const { return total_; }
  [[nodiscard]] int allocated() const { return allocated_; }
  [[nodiscard]] int free_processors() const { return total_ - allocated_; }
  /// Size of the largest block allocate() could currently satisfy.
  [[nodiscard]] int largest_free_block() const;
  [[nodiscard]] std::uint64_t allocations() const { return allocations_; }
  /// True if [base, base+size) is currently allocated (for assertions).
  [[nodiscard]] bool is_allocated(const ProcessorBlock& block) const {
    return live_.contains(block);
  }

 private:
  [[nodiscard]] static int order_of(int size);

  int total_;
  int max_order_;
  /// free_[k] = bases of free blocks of size 2^k, kept sorted.
  std::vector<std::set<net::NodeId>> free_;
  std::set<ProcessorBlock> live_;
  int allocated_ = 0;
  std::uint64_t allocations_ = 0;
};

}  // namespace tmc::sched
