// tmcsim -- jobs.
//
// A job is a parallel program submitted to the system: a builder that emits
// one op script per process (the number of processes depends on the software
// architecture), plus the bookkeeping the schedulers and the experiment
// harness need (arrival/dispatch/completion instants, size class).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "node/process.h"
#include "node/program.h"
#include "sched/stealing/work.h"
#include "sim/time.h"

namespace tmc::sched {

using node::JobId;

/// Endpoint id of process `rank` of job `job`. Stable encoding used by the
/// workload builders to address sibling processes in their scripts.
[[nodiscard]] constexpr net::EndpointId endpoint_of(JobId job, int rank) {
  return (static_cast<net::EndpointId>(job) << net::kEndpointRankBits) |
         static_cast<net::EndpointId>(rank);
}

/// The software architectures of section 4.3, plus the work-stealing third
/// architecture: like kFixed the process count is set at compile time, but
/// work is decomposed into migratable tasklets and idle workers steal over
/// the real (simulated) network instead of idling.
enum class SoftwareArch {
  kFixed,     // process count fixed at compile time (16 in the paper)
  kAdaptive,  // process count = processors allocated, discovered at run time
  kStealing,  // fixed processes + tasklet deques + network-priced stealing
};

[[nodiscard]] std::string_view to_string(SoftwareArch arch);

class Job;

/// Builds the per-process programs of a job once the partition size is known
/// (the paper's run-time "number of processors allocated" call). Element i
/// of the result is the script of rank i; rank 0 is the coordinator.
using ProgramBuilder =
    std::function<std::vector<node::Program>(const Job&, int partition_size)>;

namespace stealing {
struct StealParams;
/// Decomposes a kStealing job into per-worker tasklet deques once the
/// partition size is known. Installed by the workload builders; invoked by
/// the stealing Engine when it adopts the job at submission.
using TaskletBuilder =
    std::function<JobWork(const Job&, int partition_size, const StealParams&)>;
}  // namespace stealing

/// Static description of a job, fixed at submission.
struct JobSpec {
  std::string app;          // "matmul", "sort", "synthetic", ...
  std::size_t problem_size = 0;
  bool large = false;       // size class within the batch (12 small + 4 large)
  SoftwareArch arch = SoftwareArch::kFixed;
  /// Tenant class index in multi-class serving mixes (workload::arrivals);
  /// the serving harness keys its per-class accounting on this. Closed
  /// batches leave it 0.
  int job_class = 0;
  /// Service-demand estimate used only for the static policy's best/worst
  /// orderings (smaller estimate = "small job").
  sim::SimTime demand_estimate;
  ProgramBuilder builder;
  /// Tasklet decomposition for the work-stealing architecture; empty for
  /// kFixed/kAdaptive. For kStealing jobs `builder` stays the fixed-
  /// architecture script, so a machine without a stealing engine (steal
  /// rate 0) degenerates byte-identically to the fixed architecture.
  stealing::TaskletBuilder tasklet_builder;
};

/// A job instance moving through the system.
class Job {
 public:
  Job(JobId id, JobSpec spec) : id_(id), spec_(std::move(spec)) {}
  Job(const Job&) = delete;
  Job& operator=(const Job&) = delete;

  [[nodiscard]] JobId id() const { return id_; }
  [[nodiscard]] const JobSpec& spec() const { return spec_; }

  /// Replaces the program builder in place. Used by the stealing Engine to
  /// adopt a kStealing job at submission: the spec's fallback builder (the
  /// fixed-architecture script) is swapped for the engine's tasklet-driven
  /// build. Re-dispatches after a fault restart then rebuild through the
  /// engine too.
  void set_builder(ProgramBuilder b) { spec_.builder = std::move(b); }

  // --- lifecycle (written by the schedulers) ----------------------------
  void mark_arrival(sim::SimTime t) { arrival_ = t; }
  void mark_dispatch(sim::SimTime t) {
    dispatch_ = t;
    dispatched_ = true;
  }
  void mark_completion(sim::SimTime t) {
    completion_ = t;
    completed_ = true;
  }

  [[nodiscard]] sim::SimTime arrival() const { return arrival_; }
  [[nodiscard]] sim::SimTime dispatch_time() const { return dispatch_; }
  [[nodiscard]] sim::SimTime completion_time() const { return completion_; }
  [[nodiscard]] bool dispatched() const { return dispatched_; }
  [[nodiscard]] bool completed() const { return completed_; }

  /// Response time = queueing wait + execution (the paper's metric).
  [[nodiscard]] sim::SimTime response_time() const {
    return completion_ - arrival_;
  }
  [[nodiscard]] sim::SimTime wait_time() const { return dispatch_ - arrival_; }

  // --- processes (owned while the job runs) -----------------------------
  [[nodiscard]] std::vector<std::unique_ptr<node::Process>>& processes() {
    return processes_;
  }
  [[nodiscard]] const std::vector<std::unique_ptr<node::Process>>& processes()
      const {
    return processes_;
  }
  [[nodiscard]] int process_count() const {
    return static_cast<int>(processes_.size());
  }

  /// CPU consumed so far by the live processes.
  [[nodiscard]] sim::SimTime total_cpu_time() const {
    sim::SimTime total;
    for (const auto& p : processes_) total += p->cpu_time();
    return total;
  }

  /// Snapshot taken at teardown, before the processes are destroyed.
  /// Accumulates: a job restarted after a failure keeps the CPU its first
  /// life burned (work the machine really spent), and the single snapshot of
  /// a fault-free job starts from zero either way.
  void record_cpu(sim::SimTime t) { consumed_cpu_ += t; }
  [[nodiscard]] sim::SimTime consumed_cpu() const { return consumed_cpu_; }

  // --- fault bookkeeping -------------------------------------------------
  /// Fault-triggered restarts so far (schedulers check against the budget).
  [[nodiscard]] int restarts() const { return restarts_; }
  void count_restart() { ++restarts_; }
  /// Marks the job as abandoned after exhausting its restart budget. Failed
  /// jobs still get mark_completion so completion accounting stays closed.
  void mark_failed() { failed_ = true; }
  [[nodiscard]] bool failed() const { return failed_; }

 private:
  JobId id_;
  JobSpec spec_;
  sim::SimTime arrival_;
  sim::SimTime dispatch_;
  sim::SimTime completion_;
  bool dispatched_ = false;
  bool completed_ = false;
  bool failed_ = false;
  int restarts_ = 0;
  sim::SimTime consumed_cpu_;
  std::vector<std::unique_ptr<node::Process>> processes_;
};

}  // namespace tmc::sched
