// tmcsim -- processor partitions.
#pragma once

#include <stdexcept>
#include <vector>

#include "net/topology.h"

namespace tmc::sched {

/// A contiguous set of processors allocated as a unit.
struct Partition {
  int id = 0;
  std::vector<net::NodeId> nodes;

  [[nodiscard]] int size() const { return static_cast<int>(nodes.size()); }
  /// Node a given process rank maps to (round-robin over the partition).
  [[nodiscard]] net::NodeId node_for_rank(int rank) const {
    return nodes[static_cast<std::size_t>(rank) % nodes.size()];
  }
};

/// Cuts P processors into P/p equal partitions of consecutive nodes
/// (the paper's equal partitioning; node numbering follows the wiring, so
/// consecutive nodes are close in every topology we build).
[[nodiscard]] inline std::vector<Partition> equal_partitions(int total,
                                                             int size) {
  if (size <= 0 || total % size != 0) {
    throw std::invalid_argument("partition size must divide machine size");
  }
  std::vector<Partition> parts;
  parts.reserve(static_cast<std::size_t>(total / size));
  for (int base = 0, id = 0; base < total; base += size, ++id) {
    Partition part;
    part.id = id;
    for (int i = 0; i < size; ++i) part.nodes.push_back(base + i);
    parts.push_back(std::move(part));
  }
  return parts;
}

}  // namespace tmc::sched
