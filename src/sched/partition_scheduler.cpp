#include "sched/partition_scheduler.h"
#include <algorithm>

#include <cassert>
#include <stdexcept>
#include <utility>

namespace tmc::sched {

std::string_view to_string(SoftwareArch arch) {
  switch (arch) {
    case SoftwareArch::kFixed: return "fixed";
    case SoftwareArch::kAdaptive: return "adaptive";
    case SoftwareArch::kStealing: return "stealing";
  }
  return "?";
}

std::string_view to_string(PolicyKind kind) {
  switch (kind) {
    case PolicyKind::kStatic: return "static";
    case PolicyKind::kTimeSharing: return "time-sharing";
    case PolicyKind::kHybrid: return "hybrid";
    case PolicyKind::kAdaptiveStatic: return "adaptive-static";
  }
  return "?";
}

PartitionScheduler::PartitionScheduler(sim::Simulation& sim,
                                       Partition partition,
                                       std::vector<node::Transputer*> cpus,
                                       node::CommSystem& comm,
                                       PolicyConfig policy, Params params)
    : sim_(sim),
      partition_(std::move(partition)),
      cpus_(std::move(cpus)),
      comm_(comm),
      policy_(policy),
      params_(params) {}

void PartitionScheduler::admit(Job& job) {
  job.mark_dispatch(sim_.now());
  ++active_;
  peak_mpl_ = std::max(peak_mpl_, active_);
  if (timeline_ != nullptr) {
    timeline_->instant(track_, name_admit_, sim_.now(),
                       static_cast<double>(job.id()));
  }
  if (job_tracer_ != nullptr) job_tracer_->dispatch(job.id(), sim_.now());

  auto programs = job.spec().builder(job, partition_.size());
  if (programs.empty()) {
    throw std::logic_error("job " + std::to_string(job.id()) +
                           " built no processes");
  }
  const int procs = static_cast<int>(programs.size());
  live_processes_.emplace_back(&job, procs);

  const sim::SimTime quantum =
      policy_.time_shared()
          ? policy_.rr_job_quantum(partition_.size(), procs)
          : policy_.min_quantum;  // hardware timeslice under space-sharing

  const int rotation = params_.rotate_placement ? placement_rotation_++ : 0;
  job.processes().reserve(static_cast<std::size_t>(procs));
  for (int rank = 0; rank < procs; ++rank) {
    auto process = std::make_unique<node::Process>(
        endpoint_of(job.id(), rank), job.id(), std::move(programs[static_cast<std::size_t>(rank)]));
    const net::NodeId node = partition_.node_for_rank(rank + rotation);
    process->bind_to_node(node);
    process->set_quantum(quantum);
    process->set_on_exit([this, &job](node::Process&) { on_process_exit(job); });
    comm_.register_process(*process);
    job.processes().push_back(std::move(process));
  }
  // Placement: notify each local scheduler. The scheduler software itself
  // costs CPU, charged as high-priority work on the target node. This is
  // the O(partition)-pumps-at-one-instant fan-out (the matmul broadcast's
  // admission): each touched CPU contributes one dispatch pump to the
  // scratch batch, committed below as a single bulk insert.
  const bool gang = gang_mode();
  for (auto& process : job.processes()) {
    node::Transputer* cpu = cpus_[static_cast<std::size_t>(process->node())];
    if (!params_.dispatch_overhead.is_zero()) {
      cpu->post_high(params_.dispatch_overhead, nullptr, &dispatch_batch_);
    }
    // Under gang rotation a job is admitted parked; its first turn (or the
    // sole-job fast path below) resumes it.
    if (gang) cpu->suspend(*process, &dispatch_batch_);
    cpu->make_ready(*process, &dispatch_batch_);
  }
  sim_.schedule_batch(sim::SimTime::zero(), dispatch_batch_);
  // Space-sharing runs the job from placement to completion: its single
  // service span opens here. Gang mode opens one per turn instead.
  if (!gang && job_tracer_ != nullptr) {
    job_tracer_->run_begin(job.id(), sim_.now());
  }
  if (gang) {
    gang_ring_.push_back(&job);
    if (gang_current_ == nullptr) {
      gang_index_ = gang_ring_.size() - 1;
      gang_start_turn(job, /*charge_switch=*/false);
    } else if (gang_timer_ == sim::kNoEvent && gang_ring_.size() > 1) {
      // The running job was alone (no rotation armed); give it one more
      // quantum from now, then rotate.
      gang_timer_ = sim_.schedule(policy_.basic_quantum,
                                  [this] { gang_end_turn(); });
    }
  }
}

void PartitionScheduler::gang_set_active(Job& job, bool active) {
  // Freeze/thaw the job's in-flight communication along with its processes.
  comm_.set_job_active(job.id(), active);
  // Gang fan-out: every partition CPU wakes (or parks) at this instant, so
  // the per-CPU dispatch pumps are accumulated and committed in one bulk
  // insert rather than one heap push each.
  for (auto& process : job.processes()) {
    node::Transputer* cpu = cpus_[static_cast<std::size_t>(process->node())];
    if (active) {
      cpu->resume(*process, &dispatch_batch_);
    } else {
      cpu->suspend(*process, &dispatch_batch_);
    }
  }
  sim_.schedule_batch(sim::SimTime::zero(), dispatch_batch_);
}

void PartitionScheduler::gang_start_turn(Job& job, bool charge_switch) {
  gang_current_ = &job;
  if (job_tracer_ != nullptr) job_tracer_->run_begin(job.id(), sim_.now());
  if (charge_switch) {
    ++gang_switches_;
    if (timeline_ != nullptr) {
      timeline_->instant(track_, name_gang_, sim_.now(),
                         static_cast<double>(job.id()));
    }
    if (!params_.gang_switch_overhead.is_zero()) {
      for (const net::NodeId node : partition_.nodes) {
        cpus_[static_cast<std::size_t>(node)]->post_high(
            params_.gang_switch_overhead, nullptr, &dispatch_batch_);
      }
      sim_.schedule_batch(sim::SimTime::zero(), dispatch_batch_);
    }
  }
  gang_set_active(job, true);
  gang_timer_ = gang_ring_.size() > 1
                    ? sim_.schedule(policy_.basic_quantum,
                                    [this] { gang_end_turn(); })
                    : sim::kNoEvent;
}

void PartitionScheduler::gang_end_turn() {
  gang_timer_ = sim::kNoEvent;
  if (gang_current_ != nullptr) {
    gang_set_active(*gang_current_, false);
    if (job_tracer_ != nullptr) {
      job_tracer_->run_end(gang_current_->id(), sim_.now());
    }
  }
  gang_current_ = nullptr;
  if (gang_ring_.empty()) return;
  gang_index_ = (gang_index_ + 1) % gang_ring_.size();
  gang_start_turn(*gang_ring_[gang_index_], /*charge_switch=*/true);
}

void PartitionScheduler::gang_leave(Job& job) {
  const auto it = std::find(gang_ring_.begin(), gang_ring_.end(), &job);
  if (it == gang_ring_.end()) return;
  const auto pos = static_cast<std::size_t>(it - gang_ring_.begin());
  gang_ring_.erase(it);
  if (pos < gang_index_) {
    --gang_index_;
  } else if (gang_index_ >= gang_ring_.size()) {
    gang_index_ = 0;
  }
  if (gang_current_ == &job) {
    gang_current_ = nullptr;
    if (gang_timer_ != sim::kNoEvent) {
      sim_.cancel(gang_timer_);
      gang_timer_ = sim::kNoEvent;
    }
    if (!gang_ring_.empty()) {
      gang_start_turn(*gang_ring_[gang_index_], /*charge_switch=*/true);
    }
  }
}

void PartitionScheduler::on_process_exit(Job& job) {
  auto it = live_processes_.begin();
  while (it != live_processes_.end() && it->first != &job) ++it;
  assert(it != live_processes_.end());
  if (--it->second > 0) return;
  live_processes_.erase(it);
  job.mark_completion(sim_.now());
  // Teardown is deferred one event: the exiting process's stack frame (and
  // its on_exit std::function) must unwind before the Process is destroyed.
  sim_.schedule(sim::SimTime::zero(), [this, &job] { teardown(job); });
}

void PartitionScheduler::teardown(Job& job) {
  gang_leave(job);
  job.record_cpu(job.total_cpu_time());
  for (auto& process : job.processes()) {
    assert(process->done());
    assert(process->mailbox().empty() && "job exited with undrained mailbox");
    comm_.unregister_process(process->id());
  }
  job.processes().clear();
  --active_;
  ++completed_;
  if (timeline_ != nullptr) {
    timeline_->instant(track_, name_complete_, sim_.now(),
                       static_cast<double>(job.id()));
  }
  if (job_tracer_ != nullptr) job_tracer_->completion(job.id(), sim_.now());
  if (on_complete_) on_complete_(*this, job);
}

void PartitionScheduler::abort_job(Job& job) {
  auto it = live_processes_.begin();
  while (it != live_processes_.end() && it->first != &job) ++it;
  assert(it != live_processes_.end() && "aborting a non-resident job");
  live_processes_.erase(it);
  gang_leave(job);
  job.record_cpu(job.total_cpu_time());
  for (auto& process : job.processes()) {
    cpus_[static_cast<std::size_t>(process->node())]->force_exit(*process);
    comm_.unregister_process(process->id());
  }
  job.processes().clear();
  // Bump the incarnation last: force-exiting a mid-charge process can fire
  // one final send, which must carry the dying incarnation so it is
  // discarded at delivery rather than reaching a restarted life.
  comm_.abort_job(job.id());
  --active_;
  if (job_tracer_ != nullptr) job_tracer_->abort(job.id(), sim_.now());
  // No completion instant or handler: the job did not finish here.
}

void PartitionScheduler::abort_all(std::vector<Job*>& doomed) {
  while (!live_processes_.empty()) {
    Job& job = *live_processes_.back().first;
    abort_job(job);
    doomed.push_back(&job);
  }
}

Job* PartitionScheduler::find_resident(JobId id) const {
  for (const auto& entry : live_processes_) {
    if (entry.first->id() == id) return entry.first;
  }
  return nullptr;
}

}  // namespace tmc::sched
