// tmcsim -- per-partition scheduler (middle tier of the paper's hierarchy).
//
// The partition scheduler owns the processors of one partition. When the
// super scheduler hands it a job it instantiates the job's processes (the
// adaptive architecture's builder sees the partition size here -- the
// "processors allocated" run-time call), assigns the RR-job quantum under
// the time-sharing policies, places processes round-robin over the
// partition's CPUs, and notifies the local schedulers (the Transputers'
// ready queues). It tears the job down when the last process exits.
#pragma once

#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "node/comm.h"
#include "node/transputer.h"
#include "obs/job_trace.h"
#include "obs/timeline.h"
#include "sched/job.h"
#include "sched/partition.h"
#include "sched/policy.h"
#include "sim/simulation.h"

namespace tmc::sched {

struct PartitionSchedParams {
  /// High-priority CPU charged on each node a process is placed on,
  /// modelling the partition/local scheduler software overhead.
  sim::SimTime dispatch_overhead = sim::SimTime::microseconds(100);
  /// Software cost of a gang switch, charged on every partition CPU when
  /// the rotation advances (partition scheduler messages to the local
  /// schedulers plus ready-queue surgery on a 25 MHz CPU).
  sim::SimTime gang_switch_overhead = sim::SimTime::microseconds(500);
  /// The paper's system maps rank i of every job to partition processor i,
  /// so under time-sharing all coordinators (rank 0) stack on the same node
  /// -- which is why the job sizes had to be restricted to just fit MPL 16
  /// in 4 MB, and a major source of the memory and link contention the
  /// paper measures. Set true to rotate each job's placement instead (the
  /// smarter-placement extension studied by bench A7).
  bool rotate_placement = false;
};

class PartitionScheduler {
 public:
  using CompletionHandler = std::function<void(PartitionScheduler&, Job&)>;
  using Params = PartitionSchedParams;

  /// `cpus[i]` must be node i's Transputer (machine-wide indexing).
  PartitionScheduler(sim::Simulation& sim, Partition partition,
                     std::vector<node::Transputer*> cpus,
                     node::CommSystem& comm, PolicyConfig policy,
                     Params params = {});

  PartitionScheduler(const PartitionScheduler&) = delete;
  PartitionScheduler& operator=(const PartitionScheduler&) = delete;

  void set_completion_handler(CompletionHandler handler) {
    on_complete_ = std::move(handler);
  }

  /// Optional timeline recorder (null = off): job admissions, completions
  /// and gang switches become instants on `track` (value = job id).
  void set_timeline(obs::Timeline* timeline, obs::TrackId track) {
    timeline_ = timeline;
    track_ = track;
    if (timeline_ != nullptr) {
      name_admit_ = timeline_->intern("admit");
      name_complete_ = timeline_->intern("job-complete");
      name_gang_ = timeline_->intern("gang-switch");
    }
  }

  /// Optional per-job lifecycle tracer (null = off): admissions open the
  /// dispatch span, gang turns open/close run and rotation spans, teardown
  /// closes the job. Shares the machine-wide tracer installed through
  /// Scheduler::set_job_tracer.
  void set_job_tracer(obs::JobTracer* tracer) { job_tracer_ = tracer; }

  /// Accepts a job for immediate execution in this partition. Under the
  /// time-sharing policies several jobs may be active at once.
  void admit(Job& job);

  // --- fault path ---------------------------------------------------------
  /// Tears `job` down without a completion: force-exits its processes off
  /// the CPUs, retracts its in-flight communication (incarnation bump) and
  /// releases its slot. The job must be resident; what happens to it next
  /// (requeue or permanent failure) is the caller's decision.
  void abort_job(Job& job);
  /// Aborts every resident job (the partition lost a node), appending them
  /// to `doomed` for the caller to requeue or fail.
  void abort_all(std::vector<Job*>& doomed);
  /// Resident job lookup (nullptr if the job does not run here).
  [[nodiscard]] Job* find_resident(JobId id) const;

  [[nodiscard]] const Partition& partition() const { return partition_; }
  [[nodiscard]] int active_jobs() const { return active_; }
  [[nodiscard]] int peak_multiprogramming() const { return peak_mpl_; }
  [[nodiscard]] std::uint64_t jobs_completed() const { return completed_; }

  /// Job whose gang turn is running (nullptr when idle or not gang-mode).
  [[nodiscard]] const Job* gang_current() const { return gang_current_; }
  [[nodiscard]] std::uint64_t gang_switches() const { return gang_switches_; }

 private:
  void on_process_exit(Job& job);
  void teardown(Job& job);

  // --- gang rotation (time-shared policies) ------------------------------
  [[nodiscard]] bool gang_mode() const {
    return policy_.time_shared() && policy_.gang_scheduling;
  }
  void gang_start_turn(Job& job, bool charge_switch);
  void gang_end_turn();
  void gang_set_active(Job& job, bool active);
  void gang_leave(Job& job);

  sim::Simulation& sim_;
  Partition partition_;
  std::vector<node::Transputer*> cpus_;
  node::CommSystem& comm_;
  PolicyConfig policy_;
  Params params_;
  CompletionHandler on_complete_;
  obs::Timeline* timeline_ = nullptr;
  obs::JobTracer* job_tracer_ = nullptr;
  obs::TrackId track_ = 0;
  obs::NameId name_admit_ = 0;
  obs::NameId name_complete_ = 0;
  obs::NameId name_gang_ = 0;

  /// Outstanding process count per resident job. A partition hosts at most
  /// set_size jobs, so a flat array beats hashing (and never allocates once
  /// its capacity covers the multiprogramming level).
  std::vector<std::pair<Job*, int>> live_processes_;
  /// Scratch for the admission/gang fan-outs: per-CPU dispatch pumps are
  /// accumulated here and committed with one Simulation::schedule_batch
  /// call. Reused across fan-outs, so it stops allocating once warm.
  sim::EventBatch dispatch_batch_;
  /// Round-robin ring of resident jobs and the current turn.
  std::vector<Job*> gang_ring_;
  std::size_t gang_index_ = 0;
  Job* gang_current_ = nullptr;
  sim::EventId gang_timer_ = sim::kNoEvent;
  std::uint64_t gang_switches_ = 0;
  /// Rotates each admitted job's rank-0 placement across the partition so
  /// coordinators of multiprogrammed jobs do not pile onto one node.
  int placement_rotation_ = 0;
  int active_ = 0;
  int peak_mpl_ = 0;
  std::uint64_t completed_ = 0;
};

}  // namespace tmc::sched
