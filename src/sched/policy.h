// tmcsim -- scheduling policy configuration (paper section 2).
#pragma once

#include <climits>
#include <stdexcept>
#include <string>
#include <string_view>

#include "sim/time.h"

namespace tmc::sched {

enum class PolicyKind {
  /// Static space-sharing: equal partitions, one job per partition,
  /// run-to-completion, global FCFS queue.
  kStatic,
  /// Pure time-sharing: the whole machine is one partition and every job is
  /// dispatched into it (multiprogramming level = batch size). RR-job
  /// quanta. (A special case of kHybrid with one partition -- see 5.1.)
  kTimeSharing,
  /// Hybrid: equal partitions, jobs dealt equitably among them, RR-job
  /// time-sharing within each partition.
  kHybrid,
  /// Adaptive space-sharing (extension; paper section 2.1's taxonomy):
  /// partition size chosen per dispatch as P / jobs-in-system (power of
  /// two, buddy-allocated); run-to-completion within the allocation.
  kAdaptiveStatic,
};

[[nodiscard]] std::string_view to_string(PolicyKind kind);

struct PolicyConfig {
  PolicyKind kind = PolicyKind::kStatic;

  /// Partition size p; the machine of P processors is cut into P/p equal
  /// partitions (paper section 5.1). Must divide P. For kTimeSharing this
  /// is forced to P.
  int partition_size = 16;

  /// Basic quantum q of the RR-job discipline. A job with T processes on a
  /// p-processor partition gets per-process quantum Q = (p/T) * q, which
  /// equalises processing power across jobs (Leutenegger & Vernon).
  sim::SimTime basic_quantum = sim::SimTime::milliseconds(50);

  /// Quanta never drop below the hardware timeslice of the T805.
  sim::SimTime min_quantum = sim::SimTime::milliseconds(2);

  /// Hybrid set size: maximum jobs multiprogrammed per partition. The paper
  /// dispatches the whole batch (set size effectively unbounded); bench A3
  /// sweeps this tuning parameter.
  int set_size = INT_MAX;

  /// Coordinated (gang) rotation among the jobs of a partition -- the
  /// paper's policy: "the set of jobs mapped to a partition share the
  /// processors in the partition in a round-robin fashion", with the
  /// per-process quantum Q = (P/T) q making every job's turn last exactly
  /// q. False = uncoordinated per-process time-slicing (the ablation of
  /// bench A7: overlapping jobs' communication stalls, which the real
  /// policy could not do).
  bool gang_scheduling = true;

  /// Smallest partition the adaptive space-sharing policy will grant.
  int adaptive_min_partition = 1;

  /// Per-process quantum for a job of `processes` ranks on a partition of
  /// `partition` CPUs.
  [[nodiscard]] sim::SimTime rr_job_quantum(int partition,
                                            int processes) const {
    if (processes <= 0) throw std::invalid_argument("job with no processes");
    const sim::SimTime q = sim::SimTime::nanoseconds(
        basic_quantum.ns() * partition / processes);
    return q < min_quantum ? min_quantum : q;
  }

  [[nodiscard]] bool time_shared() const {
    return kind == PolicyKind::kTimeSharing || kind == PolicyKind::kHybrid;
  }
  /// Run-to-completion space sharing (order-sensitive; the paper's
  /// best/worst averaging rule applies).
  [[nodiscard]] bool space_shared() const { return !time_shared(); }

  [[nodiscard]] std::string label() const {
    return std::string(to_string(kind)) + "/p" +
           std::to_string(partition_size);
  }
};

}  // namespace tmc::sched
