// tmcsim -- top-level scheduler interface.
//
// The experiment harness talks to the system scheduler through this
// interface; SuperScheduler implements the paper's three policies over
// fixed equal partitions, AdaptiveScheduler the buddy-allocated adaptive
// space-sharing extension.
#pragma once

#include <cstdint>
#include <functional>

#include "sched/job.h"

namespace tmc::obs {
class JobTracer;
}

namespace tmc::sched {

class Scheduler {
 public:
  virtual ~Scheduler() = default;

  /// Submits a job (arrival instant = now); dispatch follows the policy.
  virtual void submit(Job& job) = 0;

  [[nodiscard]] virtual std::size_t queued_jobs() const = 0;
  [[nodiscard]] virtual std::uint64_t submitted() const = 0;
  [[nodiscard]] virtual std::uint64_t completed() const = 0;

  [[nodiscard]] bool all_done() const {
    return queued_jobs() == 0 && completed() == submitted();
  }

  /// Observer invoked after each job completes (for the harness).
  void set_completion_observer(std::function<void(Job&)> observer) {
    observer_ = std::move(observer);
  }

  /// Optional per-job lifecycle tracer (null = off). The machine installs
  /// one only when a timeline is recording; implementations forward it to
  /// their partition schedulers, which emit the phase spans.
  virtual void set_job_tracer(obs::JobTracer* tracer) { job_tracer_ = tracer; }

 protected:
  std::function<void(Job&)> observer_;
  obs::JobTracer* job_tracer_ = nullptr;
};

}  // namespace tmc::sched
