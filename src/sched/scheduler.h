// tmcsim -- top-level scheduler interface.
//
// The experiment harness talks to the system scheduler through this
// interface; SuperScheduler implements the paper's three policies over
// fixed equal partitions, AdaptiveScheduler the buddy-allocated adaptive
// space-sharing extension.
#pragma once

#include <cstdint>
#include <functional>

#include "sched/job.h"

namespace tmc::sched {

class Scheduler {
 public:
  virtual ~Scheduler() = default;

  /// Submits a job (arrival instant = now); dispatch follows the policy.
  virtual void submit(Job& job) = 0;

  [[nodiscard]] virtual std::size_t queued_jobs() const = 0;
  [[nodiscard]] virtual std::uint64_t submitted() const = 0;
  [[nodiscard]] virtual std::uint64_t completed() const = 0;

  [[nodiscard]] bool all_done() const {
    return queued_jobs() == 0 && completed() == submitted();
  }

  /// Observer invoked after each job completes (for the harness).
  void set_completion_observer(std::function<void(Job&)> observer) {
    observer_ = std::move(observer);
  }

 protected:
  std::function<void(Job&)> observer_;
};

}  // namespace tmc::sched
