// tmcsim -- top-level scheduler interface.
//
// The experiment harness talks to the system scheduler through this
// interface; SuperScheduler implements the paper's three policies over
// fixed equal partitions, AdaptiveScheduler the buddy-allocated adaptive
// space-sharing extension.
#pragma once

#include <cstdint>
#include <functional>

#include "sched/job.h"

namespace tmc::obs {
class JobTracer;
}

namespace tmc::sched {

class Scheduler {
 public:
  virtual ~Scheduler() = default;

  /// Submits a job (arrival instant = now); dispatch follows the policy.
  virtual void submit(Job& job) = 0;

  [[nodiscard]] virtual std::size_t queued_jobs() const = 0;
  [[nodiscard]] virtual std::uint64_t submitted() const = 0;
  [[nodiscard]] virtual std::uint64_t completed() const = 0;

  [[nodiscard]] bool all_done() const {
    return queued_jobs() == 0 && completed() == submitted();
  }

  /// Observer invoked after each job completes (for the harness).
  void set_completion_observer(std::function<void(Job&)> observer) {
    observer_ = std::move(observer);
  }

  /// Optional per-job lifecycle tracer (null = off). The machine installs
  /// one only when a timeline is recording; implementations forward it to
  /// their partition schedulers, which emit the phase spans.
  virtual void set_job_tracer(obs::JobTracer* tracer) { job_tracer_ = tracer; }

  // --- fault mode ---------------------------------------------------------
  // All no-ops by default so fault-free runs (and schedulers that predate
  // the fault layer) are untouched. The machine wires these to the fault
  // manager's heartbeat detector and the comm system's retry machinery.

  /// Arms failure-aware scheduling: a job torn down by a failure is
  /// restarted from its queue up to `restart_budget` times before being
  /// declared failed (failed jobs still count as completed for all_done).
  virtual void enable_fault_mode(int restart_budget) { (void)restart_budget; }
  /// A heartbeat round detected `node` as newly dead / newly repaired.
  virtual void on_node_down(net::NodeId node) { (void)node; }
  virtual void on_node_up(net::NodeId node) { (void)node; }
  /// The comm layer exhausted a message's retry budget for this job.
  virtual void on_job_comm_failure(JobId job) { (void)job; }

  /// Jobs whose restart budget ran out (they count as completed).
  [[nodiscard]] std::uint64_t jobs_failed() const { return jobs_failed_; }
  /// Fault-triggered restarts performed across all jobs.
  [[nodiscard]] std::uint64_t job_restarts() const { return job_restarts_; }

 protected:
  std::function<void(Job&)> observer_;
  obs::JobTracer* job_tracer_ = nullptr;
  std::uint64_t jobs_failed_ = 0;
  std::uint64_t job_restarts_ = 0;
};

}  // namespace tmc::sched
