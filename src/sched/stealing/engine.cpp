#include "sched/stealing/engine.h"

#include <algorithm>
#include <cassert>
#include <limits>

#include "obs/job_trace.h"

namespace tmc::sched::stealing {

namespace {

/// splitmix64 finalizer: decorrelates the per-job seeds from dense job ids.
[[nodiscard]] std::uint64_t mix_seed(std::uint64_t seed, std::uint64_t job) {
  std::uint64_t z = seed + 0x9e3779b97f4a7c15ULL * (job + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

Engine::Engine(sim::Simulation& sim, node::CommSystem& comm,
               const net::Router& router,
               std::vector<node::Transputer*> cpus, StealParams params)
    : sim_(sim),
      comm_(comm),
      router_(router),
      cpus_(std::move(cpus)),
      params_(params) {
  comm_.set_steal_hook(
      [this](const net::Message& msg) { return on_message(msg); });
}

void Engine::set_timeline(obs::Timeline* timeline,
                          obs::TrackId node_track_base) {
  timeline_ = timeline;
  node_track_base_ = node_track_base;
  if (timeline_ != nullptr) {
    name_req_ = timeline_->intern("steal-req");
    name_grant_ = timeline_->intern("steal-grant");
    name_deny_ = timeline_->intern("steal-deny");
  }
}

void Engine::adopt(Job& job) {
  assert(job.spec().arch == SoftwareArch::kStealing);
  assert(job.spec().tasklet_builder && "kStealing job without a decomposer");
  job.set_builder([this](const Job& j, int partition_size) {
    return build_programs(j, partition_size);
  });
}

std::vector<node::Program> Engine::build_programs(const Job& job,
                                                  int partition_size) {
  JobWork work = job.spec().tasklet_builder(job, partition_size, params_);
  const std::size_t procs = work.workers.size();
  assert(procs >= 1 && "decomposer produced no workers");

  // A fresh runtime per (re-)admission: a fault restart rebuilds cleanly,
  // and the new epoch makes any deferred reply of the previous life a
  // no-op.
  Runtime rt;
  rt.workers.resize(procs);
  for (std::size_t i = 0; i < procs; ++i) {
    rt.workers[i].deque = std::move(work.workers[i].deque);
  }
  rt.rng = sim::Rng(mix_seed(params_.seed, job.id()));
  rt.finish_cost = work.finish_cost;
  rt.active = static_cast<int>(procs);
  rt.epoch = next_epoch_++;
  runtimes_[job.id()] = std::move(rt);

  const JobId id = job.id();
  auto step = [this](node::Process& p) { control_step(p); };
  std::vector<node::Program> programs(procs);
  for (std::size_t r = 0; r < procs; ++r) {
    node::Program& prog = programs[r];
    const WorkerWork& w = work.workers[r];
    if (w.alloc_bytes > 0) prog.alloc(w.alloc_bytes);
    if (r == 0) {
      if (!work.init_cost.is_zero()) prog.compute(work.init_cost);
      for (std::size_t dst = 1; dst < procs; ++dst) {
        prog.send(endpoint_of(id, static_cast<int>(dst)), kTagStealInit,
                  work.workers[dst].init_bytes);
      }
    } else {
      prog.receive(kTagStealInit);
    }
    prog.control(params_.control_cpu, step);
  }
  return programs;
}

void Engine::control_step(node::Process& p) {
  const auto it = runtimes_.find(p.job());
  if (it == runtimes_.end()) {
    // Unreachable by the termination invariant (a live control step implies
    // a worker that has not wound down, which keeps the runtime alive);
    // kept as a defensive exit so the action contract holds regardless.
    p.mutable_program().exit();
    return;
  }
  append_next(it->second, p, static_cast<int>(net::endpoint_rank(p.id())));
}

void Engine::absorb_reply(node::Process& p) {
  const auto it = runtimes_.find(p.job());
  if (it == runtimes_.end()) {
    p.mutable_program().exit();
    return;
  }
  Runtime& rt = it->second;
  const int rank = static_cast<int>(net::endpoint_rank(p.id()));
  Worker& w = rt.workers[static_cast<std::size_t>(rank)];
  if (!w.in_flight.empty()) {
    // Grant: the migrated tasklets join the back of the thief's deque (it
    // is empty -- the thief only steals when out of local work).
    rt.in_flight_tasks -= w.in_flight.size();
    for (Tasklet& t : w.in_flight) w.deque.push_back(t);
    w.in_flight.clear();
    w.denials = 0;
  } else {
    w.last_victim = -1;
    ++w.denials;
  }
  if (job_tracer_ != nullptr) job_tracer_->steal_end(p.job(), sim_.now());
  append_next(rt, p, rank);
}

void Engine::append_next(Runtime& rt, node::Process& p, int rank) {
  Worker& w = rt.workers[static_cast<std::size_t>(rank)];
  node::Program& prog = p.mutable_program();
  const JobId job = p.job();

  if (!w.deque.empty()) {
    const Tasklet t = w.deque.back();
    w.deque.pop_back();
    const bool ship_result = rank != 0 && t.result_bytes > 0;
    if (ship_result) ++rt.remote_results;
    prog.compute(t.cost);
    if (ship_result) {
      prog.send(endpoint_of(job, 0), kTagStealResult, t.result_bytes);
    }
    prog.control(params_.control_cpu,
                 [this](node::Process& q) { control_step(q); });
    return;
  }

  if (params_.enabled() && rt.workers.size() > 1 && work_available(rt)) {
    const int victim = pick_victim(rt, p, rank);
    w.last_victim = victim;
    if (w.denials > 0) {
      // Escalating poll interval: 1/rate after the first deny, doubling per
      // consecutive deny, capped at 64x.
      const std::int64_t mult = std::int64_t{1}
                                << std::min(w.denials - 1, 6);
      prog.compute(params_.poll_interval() * mult);
    }
    if (timeline_ != nullptr) {
      w.open_flow = next_steal_flow_++;
      timeline_->flow_start(
          node_track_base_ + static_cast<obs::TrackId>(p.node()), name_req_,
          sim_.now(), w.open_flow, static_cast<double>(job));
    }
    if (job_tracer_ != nullptr) job_tracer_->steal_begin(job, sim_.now());
    prog.send(endpoint_of(job, victim), kTagStealReq, params_.request_bytes);
    prog.receive(kTagStealReply);
    prog.control(params_.control_cpu,
                 [this](node::Process& q) { absorb_reply(q); });
    return;
  }

  wind_down(rt, p, rank);
}

void Engine::wind_down(Runtime& rt, node::Process& p, int rank) {
  Worker& w = rt.workers[static_cast<std::size_t>(rank)];
  assert(!w.wound_down);
  w.wound_down = true;
  --rt.active;
  node::Program& prog = p.mutable_program();
  if (rank == 0) {
    // Every tasklet has been popped (that is what let rank 0 get here), so
    // remote_results is final: absorb exactly that many result messages,
    // pay the final merge, exit.
    for (std::uint64_t i = 0; i < rt.remote_results; ++i) {
      prog.receive(kTagStealResult);
    }
    if (!rt.finish_cost.is_zero()) prog.compute(rt.finish_cost);
  }
  prog.exit();
  if (rt.active == 0) runtimes_.erase(p.job());
}

int Engine::pick_victim(Runtime& rt, const node::Process& p, int rank) {
  const int procs = static_cast<int>(rt.workers.size());
  const JobId job = p.job();
  if (params_.victim == VictimPolicy::kNearest) {
    int best = -1;
    int best_distance = std::numeric_limits<int>::max();
    for (int v = 0; v < procs; ++v) {
      if (v == rank) continue;
      const node::Process* vp = comm_.find(endpoint_of(job, v));
      if (vp == nullptr) continue;  // fault teardown race
      const int d = router_.distance(p.node(), vp->node());
      if (d < best_distance) {
        best_distance = d;
        best = v;
      }
    }
    if (best >= 0) return best;
  } else if (params_.victim == VictimPolicy::kLastVictim) {
    const int last = rt.workers[static_cast<std::size_t>(rank)].last_victim;
    if (last >= 0 && last != rank && last < procs) return last;
  }
  const auto draw = static_cast<int>(
      rt.rng.uniform(static_cast<std::uint64_t>(procs - 1)));
  return draw >= rank ? draw + 1 : draw;
}

bool Engine::on_message(const net::Message& msg) {
  if (msg.tag != kTagStealReq) return false;
  ++stats_.requests;
  const auto job = static_cast<node::JobId>(msg.job);
  node::Process* victim = comm_.find(msg.dst_endpoint);
  const auto it = runtimes_.find(job);
  std::size_t granted = 0;
  std::size_t bytes = 0;
  std::uint64_t epoch = 0;
  if (it != runtimes_.end()) {
    Runtime& rt = it->second;
    epoch = rt.epoch;
    const auto victim_rank =
        static_cast<std::size_t>(net::endpoint_rank(msg.dst_endpoint));
    const auto thief_rank =
        static_cast<std::size_t>(net::endpoint_rank(msg.src_endpoint));
    if (victim_rank < rt.workers.size() && thief_rank < rt.workers.size()) {
      Worker& v = rt.workers[victim_rank];
      Worker& t = rt.workers[thief_rank];
      if (!v.deque.empty()) {
        granted = params_.granularity == Granularity::kHalfDeque
                      ? (v.deque.size() + 1) / 2
                      : std::size_t{1};
        for (std::size_t i = 0; i < granted; ++i) {
          bytes += v.deque[i].migrate_bytes;
          t.in_flight.push_back(v.deque[i]);
        }
        v.deque.erase(v.deque.begin(),
                      v.deque.begin() + static_cast<std::ptrdiff_t>(granted));
        rt.in_flight_tasks += granted;
        stats_.tasks_migrated += granted;
        stats_.bytes_migrated += bytes;
      }
      if (timeline_ != nullptr && t.open_flow != 0 && victim != nullptr) {
        timeline_->flow_finish(
            node_track_base_ + static_cast<obs::TrackId>(victim->node()),
            granted > 0 ? name_grant_ : name_deny_, sim_.now(), t.open_flow,
            static_cast<double>(granted));
        t.open_flow = 0;
      }
    }
  }
  if (granted > 0) {
    ++stats_.grants;
  } else {
    ++stats_.denials;
  }
  if (victim == nullptr) {
    // Fault teardown race: the endpoint vanished during the deposit charge
    // yet the message survived the comm re-checks. The thief's job is being
    // torn down with it; no reply is owed.
    return true;
  }
  // The victim's node pays the handler cost as high-priority (interrupting)
  // work, then the reply is injected from the victim's endpoint. The epoch
  // check makes a reply deferred across a job abort/restart a no-op.
  const bool check_epoch = it != runtimes_.end();
  const net::EndpointId victim_ep = msg.dst_endpoint;
  const net::EndpointId thief_ep = msg.src_endpoint;
  const std::size_t reply_bytes = params_.reply_header_bytes + bytes;
  cpus_[static_cast<std::size_t>(victim->node())]->post_high(
      params_.handler_cpu,
      [this, job, epoch, check_epoch, victim_ep, thief_ep, reply_bytes] {
        if (check_epoch) {
          const auto rit = runtimes_.find(job);
          if (rit == runtimes_.end() || rit->second.epoch != epoch) return;
        }
        node::Process* src = comm_.find(victim_ep);
        if (src == nullptr) return;
        comm_.inject(*src, thief_ep, kTagStealReply, reply_bytes);
      });
  return true;
}

}  // namespace tmc::sched::stealing
