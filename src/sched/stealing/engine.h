// tmcsim -- the work-stealing runtime engine.
//
// One Engine per machine (created only when MachineConfig.stealing is
// enabled). At submission the machine hands it every kStealing job
// (adopt()); the engine swaps the job's program builder for its own, which
// invokes the workload's TaskletBuilder and emits per-rank scripts that
// alternate compute bursts with ControlOp steps. Each control step pops the
// worker's deque (owner end: back), or -- when the deque is empty and work
// remains elsewhere -- sends a real steal-request message to a victim and
// blocks on the reply. The victim's node intercepts the request at mailbox
// delivery (CommSystem steal hook), pays a high-priority handler charge,
// pops the front of the victim's deque (single task or half, per
// granularity) and injects a grant carrying the migrate bytes, or a deny.
//
// Determinism: victim selection draws from a per-job xoshiro stream seeded
// from (params.seed, job id), consumed in simulation event order; the sweep
// runner farms whole machines to threads, so every machine replays its own
// event order and tables stay bit-identical at any --threads.
//
// Termination: a tasklet can never spawn new tasklets, so "every deque
// empty and no grant in flight" is a stable property. A worker observing it
// winds down (rank > 0 exits; rank 0 absorbs the exactly-counted remote
// results, pays the finish cost, and exits). Any outstanding request
// implies a thief still blocked on its reply -- so the per-job runtime is
// alive whenever protocol traffic is in flight, and the interceptor can
// always answer.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "net/router.h"
#include "node/comm.h"
#include "node/transputer.h"
#include "obs/timeline.h"
#include "sched/job.h"
#include "sched/stealing/stealing.h"
#include "sched/stealing/work.h"
#include "sim/rng.h"
#include "sim/simulation.h"

namespace tmc::obs {
class JobTracer;
}

namespace tmc::sched::stealing {

class Engine {
 public:
  /// Installs itself as `comm`'s steal hook. `cpus[i]` must be node i's
  /// Transputer (handler charges); `router` prices nearest-victim
  /// selection.
  Engine(sim::Simulation& sim, node::CommSystem& comm,
         const net::Router& router, std::vector<node::Transputer*> cpus,
         StealParams params);

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Adopts a kStealing job at submission: swaps its program builder for
  /// the engine's tasklet-driven build (the spec's fallback builder -- the
  /// fixed-architecture script -- is what runs on machines without an
  /// engine). Re-admission after a fault restart rebuilds through the same
  /// path with a fresh runtime epoch.
  void adopt(Job& job);

  /// Steal request->grant flow arrows on the node tracks (null = off).
  void set_timeline(obs::Timeline* timeline, obs::TrackId node_track_base);
  /// Per-job "steal" overlay spans (null = off).
  void set_job_tracer(obs::JobTracer* tracer) { job_tracer_ = tracer; }

  [[nodiscard]] const StealStats& stats() const { return stats_; }
  [[nodiscard]] const StealParams& params() const { return params_; }

 private:
  struct Worker {
    std::vector<Tasklet> deque;      // back = owner pop, front = steal
    std::vector<Tasklet> in_flight;  // granted, riding a reply to this rank
    std::uint64_t open_flow = 0;     // flow id of the outstanding request
    int last_victim = -1;            // last successful victim (kLastVictim)
    int denials = 0;                 // consecutive denials (backoff)
    bool wound_down = false;
  };
  struct Runtime {
    std::vector<Worker> workers;
    sim::Rng rng;
    sim::SimTime finish_cost;
    /// Result messages rank 0 must absorb: one per tasklet popped by a
    /// non-zero rank with result bytes. Final once every deque is empty.
    std::uint64_t remote_results = 0;
    std::size_t in_flight_tasks = 0;
    int active = 0;  // workers not yet wound down
    /// Distinguishes this runtime from earlier lives of a recycled or
    /// restarted job id; deferred handler callbacks compare it before
    /// injecting a reply.
    std::uint64_t epoch = 0;
  };

  std::vector<node::Program> build_programs(const Job& job,
                                            int partition_size);
  /// The ControlOp actions: decide the worker's next ops.
  void control_step(node::Process& p);
  void absorb_reply(node::Process& p);
  void append_next(Runtime& rt, node::Process& p, int rank);
  void wind_down(Runtime& rt, node::Process& p, int rank);
  int pick_victim(Runtime& rt, const node::Process& p, int rank);
  /// CommSystem delivery hook; consumes kTagStealReq messages.
  bool on_message(const net::Message& msg);

  [[nodiscard]] bool work_available(const Runtime& rt) const {
    if (rt.in_flight_tasks > 0) return true;
    for (const Worker& w : rt.workers) {
      if (!w.deque.empty()) return true;
    }
    return false;
  }

  sim::Simulation& sim_;
  node::CommSystem& comm_;
  const net::Router& router_;
  std::vector<node::Transputer*> cpus_;
  StealParams params_;
  std::unordered_map<node::JobId, Runtime> runtimes_;
  std::uint64_t next_epoch_ = 1;
  StealStats stats_;
  obs::Timeline* timeline_ = nullptr;
  obs::TrackId node_track_base_ = 0;
  obs::NameId name_req_ = 0;
  obs::NameId name_grant_ = 0;
  obs::NameId name_deny_ = 0;
  /// Steal flow ids live far above message ids (which start at 1 and count
  /// deliveries): 2^50 is exact in the JSON doubles and leaves no overlap.
  std::uint64_t next_steal_flow_ = std::uint64_t{1} << 50;
  obs::JobTracer* job_tracer_ = nullptr;
};

}  // namespace tmc::sched::stealing
