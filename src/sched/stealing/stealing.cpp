#include "sched/stealing/stealing.h"

#include <algorithm>
#include <cstdlib>

namespace tmc::sched::stealing {

std::string_view to_string(VictimPolicy policy) {
  switch (policy) {
    case VictimPolicy::kRandom: return "random";
    case VictimPolicy::kNearest: return "nearest";
    case VictimPolicy::kLastVictim: return "last";
  }
  return "?";
}

std::string_view to_string(Granularity granularity) {
  switch (granularity) {
    case Granularity::kSingleTask: return "task";
    case Granularity::kHalfDeque: return "half";
  }
  return "?";
}

std::string_view to_string(Chunking chunking) {
  switch (chunking) {
    case Chunking::kStatic: return "static";
    case Chunking::kGuided: return "guided";
    case Chunking::kFactoring: return "factoring";
  }
  return "?";
}

std::vector<std::size_t> chunk_sizes(std::size_t total, int workers,
                                     Chunking chunking,
                                     int chunks_per_worker) {
  std::vector<std::size_t> sizes;
  if (total == 0) return sizes;
  const auto w = static_cast<std::size_t>(std::max(1, workers));
  switch (chunking) {
    case Chunking::kStatic: {
      const std::size_t want =
          w * static_cast<std::size_t>(std::max(1, chunks_per_worker));
      const std::size_t count = std::min(total, want);
      sizes.reserve(count);
      // Largest-remainder split: first (total % count) chunks get the extra
      // unit, mirroring the fixed builders' rows_of() convention.
      for (std::size_t i = 0; i < count; ++i) {
        sizes.push_back(total / count + (i < total % count ? 1 : 0));
      }
      return sizes;
    }
    case Chunking::kGuided: {
      std::size_t remaining = total;
      while (remaining > 0) {
        const std::size_t chunk = std::max<std::size_t>(
            1, (remaining + w - 1) / w);
        sizes.push_back(chunk);
        remaining -= chunk;
      }
      return sizes;
    }
    case Chunking::kFactoring: {
      std::size_t remaining = total;
      while (remaining > 0) {
        // One batch of `workers` chunks, each ceil(R / 2W) of the remainder
        // at batch start (Hummel et al.'s factoring with alpha = 2).
        const std::size_t chunk = std::max<std::size_t>(
            1, (remaining + 2 * w - 1) / (2 * w));
        for (std::size_t i = 0; i < w && remaining > 0; ++i) {
          const std::size_t take = std::min(chunk, remaining);
          sizes.push_back(take);
          remaining -= take;
        }
      }
      return sizes;
    }
  }
  return sizes;
}

namespace {

bool match_flag(std::string_view arg, std::string_view flag, bool& has_value,
                std::string_view& value) {
  if (arg == flag) {
    has_value = false;
    return true;
  }
  if (arg.size() > flag.size() && arg.substr(0, flag.size()) == flag &&
      arg[flag.size()] == '=') {
    has_value = true;
    value = arg.substr(flag.size() + 1);
    return true;
  }
  return false;
}

bool take_value(std::string_view flag, int argc, char** argv, int& i,
                bool has_inline, std::string_view inline_value,
                std::string& out, std::string& error) {
  if (has_inline) {
    out.assign(inline_value);
    return true;
  }
  if (i + 1 >= argc) {
    error = std::string(flag) + " requires a value";
    return false;
  }
  out = argv[++i];
  return true;
}

bool parse_double(std::string_view flag, const std::string& text, double min,
                  double* dst, std::string& error) {
  char* end = nullptr;
  const double v = std::strtod(text.c_str(), &end);
  if (end == text.c_str() || *end != '\0' || !(v >= min)) {
    error = std::string(flag) + ": expected a number >= " +
            std::to_string(min) + ", got '" + text + "'";
    return false;
  }
  *dst = v;
  return true;
}

bool parse_int(std::string_view flag, const std::string& text, long min,
               long* dst, std::string& error) {
  char* end = nullptr;
  const long v = std::strtol(text.c_str(), &end, 10);
  if (end == text.c_str() || *end != '\0' || v < min) {
    error = std::string(flag) + ": expected an integer >= " +
            std::to_string(min) + ", got '" + text + "'";
    return false;
  }
  *dst = v;
  return true;
}

}  // namespace

bool parse_cli_flag(int argc, char** argv, int& i, StealParams& params,
                    bool& seen, std::string& error) {
  const std::string_view arg = argv[i];
  bool has_inline = false;
  std::string_view inline_value;
  std::string text;

  const auto value_of = [&](std::string_view flag) {
    return take_value(flag, argc, argv, i, has_inline, inline_value, text,
                      error);
  };

  if (match_flag(arg, "--steal-rate", has_inline, inline_value)) {
    seen = true;
    if (value_of("--steal-rate")) {
      parse_double("--steal-rate", text, 0.0, &params.steal_rate, error);
    }
    return true;
  }
  if (match_flag(arg, "--steal-victim", has_inline, inline_value)) {
    seen = true;
    if (value_of("--steal-victim")) {
      if (text == "random") {
        params.victim = VictimPolicy::kRandom;
      } else if (text == "nearest") {
        params.victim = VictimPolicy::kNearest;
      } else if (text == "last") {
        params.victim = VictimPolicy::kLastVictim;
      } else {
        error = "--steal-victim: expected random, nearest or last, got '" +
                text + "'";
      }
    }
    return true;
  }
  if (match_flag(arg, "--steal-granularity", has_inline, inline_value)) {
    seen = true;
    if (value_of("--steal-granularity")) {
      if (text == "task") {
        params.granularity = Granularity::kSingleTask;
      } else if (text == "half") {
        params.granularity = Granularity::kHalfDeque;
      } else {
        error = "--steal-granularity: expected task or half, got '" + text +
                "'";
      }
    }
    return true;
  }
  if (match_flag(arg, "--steal-chunk", has_inline, inline_value)) {
    seen = true;
    if (value_of("--steal-chunk")) {
      if (text == "static") {
        params.chunking = Chunking::kStatic;
      } else if (text == "guided") {
        params.chunking = Chunking::kGuided;
      } else if (text == "factoring") {
        params.chunking = Chunking::kFactoring;
      } else {
        error = "--steal-chunk: expected static, guided or factoring, got '" +
                text + "'";
      }
    }
    return true;
  }
  if (match_flag(arg, "--steal-chunks", has_inline, inline_value)) {
    seen = true;
    if (value_of("--steal-chunks")) {
      long v = 0;
      if (parse_int("--steal-chunks", text, 1, &v, error)) {
        params.chunks_per_worker = static_cast<int>(v);
      }
    }
    return true;
  }
  if (match_flag(arg, "--steal-seed", has_inline, inline_value)) {
    seen = true;
    if (value_of("--steal-seed")) {
      long v = 0;
      if (parse_int("--steal-seed", text, 0, &v, error)) {
        params.seed = static_cast<std::uint64_t>(v);
      }
    }
    return true;
  }
  return false;
}

const char* cli_help() {
  return "  --steal-rate R         idle-worker steal attempts per second "
         "(0 = stealing off)\n"
         "  --steal-victim V       victim selection: random | nearest | "
         "last\n"
         "  --steal-granularity G  per-grant migration: task | half "
         "(half the victim's deque)\n"
         "  --steal-chunk C        decomposition schedule: static | guided "
         "| factoring\n"
         "  --steal-chunks N       chunks per worker under --steal-chunk "
         "static (default 8)\n"
         "  --steal-seed S         seed of the victim-selection streams\n";
}

}  // namespace tmc::sched::stealing
