// tmcsim -- work-stealing architecture: parameters, chunking, CLI flags.
//
// The third software architecture (SoftwareArch::kStealing) keeps the fixed
// architecture's compile-time process count but decomposes each process's
// work into migratable tasklets. An idle worker sends a real steal-request
// message to a victim; the victim's node intercepts it at delivery, pays a
// handler CPU charge, and replies with a grant (tasklets migrate, their
// payload bytes traversing the network) or a deny. Steal cost is therefore
// topology-, contention- and distance-dependent -- and a steal aimed at a
// crashed node rides the existing fault machinery (retry, backoff, job
// abort) like any other message.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "sim/time.h"

namespace tmc::sched::stealing {

/// Message tags of the steal protocol. Far above every workload tag (the
/// applications use small tags; sort peaks around 2000+rank) so protocol
/// traffic can never alias an application receive.
inline constexpr int kTagStealInit = 0x5EA10000;    // initial work parcel
inline constexpr int kTagStealReq = 0x5EA10001;     // thief -> victim
inline constexpr int kTagStealReply = 0x5EA10002;   // victim -> thief
inline constexpr int kTagStealResult = 0x5EA10003;  // worker -> rank 0

/// How a thief picks its victim.
enum class VictimPolicy {
  kRandom,      // seeded-uniform over the other workers
  kNearest,     // smallest router distance from the thief's node (tie: rank)
  kLastVictim,  // last successful victim, falling back to seeded-random
};

/// How much a grant migrates.
enum class Granularity {
  kSingleTask,  // one tasklet from the front of the victim's deque
  kHalfDeque,   // ceil(half) of the victim's deque
};

/// Self-scheduling chunk-size schedule used by the workload decompositions.
enum class Chunking {
  kStatic,     // equal chunks, workers * chunks_per_worker of them
  kGuided,     // guided self-scheduling: chunk = ceil(remaining / workers)
  kFactoring,  // factoring: batches of `workers` chunks, ceil(R / 2W) each
};

[[nodiscard]] std::string_view to_string(VictimPolicy policy);
[[nodiscard]] std::string_view to_string(Granularity granularity);
[[nodiscard]] std::string_view to_string(Chunking chunking);

struct StealParams {
  /// Steal-attempt rate of an idle worker, attempts per second: after a
  /// deny the thief waits 1/rate (escalating with consecutive denials,
  /// capped at 64x) before retrying. 0 disables stealing entirely -- the
  /// machine then never instantiates the engine and kStealing degenerates
  /// byte-identically to the fixed architecture.
  double steal_rate = 0.0;
  VictimPolicy victim = VictimPolicy::kRandom;
  Granularity granularity = Granularity::kSingleTask;
  Chunking chunking = Chunking::kStatic;
  /// Decomposition target: chunks per worker under kStatic, and the floor
  /// of the chunk count under the adaptive schedules.
  int chunks_per_worker = 8;
  /// Steal-request message size (a descriptor, not a payload).
  std::size_t request_bytes = 64;
  /// Grant/deny reply framing; granted tasklets add their migrate bytes.
  std::size_t reply_header_bytes = 32;
  /// CPU the victim's node pays to serve an intercepted request (deque
  /// inspection + reply construction), charged as high-priority work that
  /// preempts the victim's application process.
  sim::SimTime handler_cpu = sim::SimTime::microseconds(25);
  /// CPU each control step of the stealing runtime costs the worker (pop
  /// decision, termination check, victim selection).
  sim::SimTime control_cpu = sim::SimTime::microseconds(5);
  /// Seed of the per-job victim-selection streams (independent of the
  /// workload and fault seeds).
  std::uint64_t seed = 1905;

  [[nodiscard]] bool enabled() const { return steal_rate > 0.0; }
  /// Base retry interval after a denied steal (1 / steal_rate).
  [[nodiscard]] sim::SimTime poll_interval() const {
    return sim::SimTime::nanoseconds(
        static_cast<std::int64_t>(1e9 / steal_rate));
  }
};

/// Counters of the steal protocol, merged into MachineStats.
struct StealStats {
  std::uint64_t requests = 0;        // steal requests intercepted
  std::uint64_t grants = 0;
  std::uint64_t denials = 0;
  std::uint64_t tasks_migrated = 0;
  std::uint64_t bytes_migrated = 0;  // migrate payload riding on grants
};

/// Splits `total` work units into chunk sizes under the given schedule.
/// Every returned size is >= 1 and the sizes sum to `total` exactly;
/// deterministic in its arguments. kStatic yields workers*chunks_per_worker
/// near-equal chunks (fewer when total is small); the self-scheduling
/// schedules (guided/factoring) yield decreasing sizes.
[[nodiscard]] std::vector<std::size_t> chunk_sizes(std::size_t total,
                                                   int workers,
                                                   Chunking chunking,
                                                   int chunks_per_worker);

/// Parses one --steal-* flag at argv[i], advancing i past a consumed value
/// argument. Returns true if the flag was recognised (whether or not its
/// value parsed; check `error`). Sets `seen` so benches that do not wire
/// the stealing architecture can reject the flags outright (mirrors the
/// --fault-* contract).
bool parse_cli_flag(int argc, char** argv, int& i, StealParams& params,
                    bool& seen, std::string& error);

/// One-line-per-flag help text for bench --help output.
[[nodiscard]] const char* cli_help();

}  // namespace tmc::sched::stealing
