// tmcsim -- tasklet decomposition for the work-stealing architecture.
//
// A kStealing job is decomposed, once the partition size is known, into one
// tasklet deque per worker rank. Owners pop from the back (LIFO, cache-warm
// work first); thieves are granted from the front (FIFO, the oldest -- and
// for divide-and-conquer decompositions the largest -- work migrates). The
// decomposition is pure data: the stealing Engine turns it into op scripts
// and drives the steal protocol over the simulated network.
#pragma once

#include <cstddef>
#include <vector>

#include "sim/time.h"

namespace tmc::sched::stealing {

/// One unit of migratable work.
struct Tasklet {
  /// CPU cost of executing the tasklet on whichever worker runs it.
  sim::SimTime cost;
  /// Payload bytes shipped to a thief when this tasklet migrates (operands
  /// plus descriptor); priced through the wormhole network like any send.
  std::size_t migrate_bytes = 0;
  /// Result bytes the executing worker ships to rank 0 on completion
  /// (rank 0 running its own tasklets keeps results local).
  std::size_t result_bytes = 0;
};

/// Per-rank initial state of a decomposed job.
struct WorkerWork {
  /// Initial deque; back = next tasklet the owner pops.
  std::vector<Tasklet> deque;
  /// Resident working set allocated before any tasklet runs.
  std::size_t alloc_bytes = 0;
  /// Bytes of the initial work parcel rank 0 ships to this rank before the
  /// stealing loop starts (ranks > 0; ignored for rank 0).
  std::size_t init_bytes = 0;
};

/// A job's full decomposition. Element i of `workers` is rank i; rank 0 is
/// the coordinator that distributes initial parcels and merges results.
struct JobWork {
  std::vector<WorkerWork> workers;
  /// Rank-0 setup compute before distributing the initial parcels.
  sim::SimTime init_cost;
  /// Rank-0 final merge/reduce compute after every result has arrived.
  sim::SimTime finish_cost;

  [[nodiscard]] std::size_t total_tasklets() const {
    std::size_t n = 0;
    for (const auto& w : workers) n += w.deque.size();
    return n;
  }
};

}  // namespace tmc::sched::stealing
