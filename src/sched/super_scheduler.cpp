#include "sched/super_scheduler.h"

#include <cassert>
#include <limits>

namespace tmc::sched {

SuperScheduler::SuperScheduler(sim::Simulation& sim,
                               std::vector<PartitionScheduler*> partitions,
                               PolicyConfig policy)
    : sim_(sim), partitions_(std::move(partitions)), policy_(policy) {
  assert(!partitions_.empty());
  for (PartitionScheduler* ps : partitions_) {
    ps->set_completion_handler(
        [this](PartitionScheduler&, Job& job) { on_job_complete(job); });
  }
}

void SuperScheduler::submit(Job& job) {
  job.mark_arrival(sim_.now());
  if (job_tracer_ != nullptr) {
    job_tracer_->arrival(job.id(), job.spec().job_class, sim_.now());
  }
  ++submitted_;
  queue_.push_back(&job);
  pump();
}

void SuperScheduler::set_job_tracer(obs::JobTracer* tracer) {
  job_tracer_ = tracer;
  for (PartitionScheduler* ps : partitions_) {
    ps->set_job_tracer(tracer);
  }
}

PartitionScheduler* SuperScheduler::pick_partition() const {
  if (policy_.kind == PolicyKind::kStatic) {
    // One job per partition, run to completion.
    for (PartitionScheduler* ps : partitions_) {
      if (ps->active_jobs() == 0) return ps;
    }
    return nullptr;
  }
  // Time-sharing/hybrid: deal to the least-loaded partition (lowest id on
  // ties), bounded by the set size. For a batch arriving together this is
  // exactly the paper's equitable round-robin distribution.
  PartitionScheduler* best = nullptr;
  int best_load = std::numeric_limits<int>::max();
  for (PartitionScheduler* ps : partitions_) {
    if (ps->active_jobs() < best_load) {
      best_load = ps->active_jobs();
      best = ps;
    }
  }
  if (best == nullptr || best_load >= policy_.set_size) return nullptr;
  return best;
}

void SuperScheduler::pump() {
  while (!queue_.empty()) {
    PartitionScheduler* target = pick_partition();
    if (target == nullptr) return;
    Job* job = queue_.front();
    queue_.pop_front();
    target->admit(*job);
  }
}

void SuperScheduler::on_job_complete(Job& job) {
  ++completed_;
  if (observer_) observer_(job);
  pump();
}

}  // namespace tmc::sched
