#include "sched/super_scheduler.h"

#include <algorithm>
#include <cassert>
#include <limits>

namespace tmc::sched {

SuperScheduler::SuperScheduler(sim::Simulation& sim,
                               std::vector<PartitionScheduler*> partitions,
                               PolicyConfig policy)
    : sim_(sim), partitions_(std::move(partitions)), policy_(policy) {
  assert(!partitions_.empty());
  for (PartitionScheduler* ps : partitions_) {
    ps->set_completion_handler(
        [this](PartitionScheduler&, Job& job) { on_job_complete(job); });
  }
}

void SuperScheduler::submit(Job& job) {
  job.mark_arrival(sim_.now());
  if (job_tracer_ != nullptr) {
    job_tracer_->arrival(job.id(), job.spec().job_class, sim_.now());
  }
  ++submitted_;
  queue_.push_back(&job);
  pump();
}

void SuperScheduler::set_job_tracer(obs::JobTracer* tracer) {
  job_tracer_ = tracer;
  for (PartitionScheduler* ps : partitions_) {
    ps->set_job_tracer(tracer);
  }
}

PartitionScheduler* SuperScheduler::pick_partition() const {
  if (policy_.kind == PolicyKind::kStatic) {
    // One job per partition, run to completion.
    for (std::size_t i = 0; i < partitions_.size(); ++i) {
      if (degraded(i)) continue;
      if (partitions_[i]->active_jobs() == 0) return partitions_[i];
    }
    return nullptr;
  }
  // Time-sharing/hybrid: deal to the least-loaded partition (lowest id on
  // ties), bounded by the set size. For a batch arriving together this is
  // exactly the paper's equitable round-robin distribution.
  PartitionScheduler* best = nullptr;
  int best_load = std::numeric_limits<int>::max();
  for (std::size_t i = 0; i < partitions_.size(); ++i) {
    if (degraded(i)) continue;
    if (partitions_[i]->active_jobs() < best_load) {
      best_load = partitions_[i]->active_jobs();
      best = partitions_[i];
    }
  }
  if (best == nullptr || best_load >= policy_.set_size) return nullptr;
  return best;
}

void SuperScheduler::enable_fault_mode(int restart_budget) {
  restart_budget_ = restart_budget;
  dead_nodes_.assign(partitions_.size(), 0);
  net::NodeId max_node = -1;
  for (const PartitionScheduler* ps : partitions_) {
    for (const net::NodeId node : ps->partition().nodes) {
      max_node = std::max(max_node, node);
    }
  }
  node_partition_.assign(static_cast<std::size_t>(max_node + 1), -1);
  for (std::size_t i = 0; i < partitions_.size(); ++i) {
    for (const net::NodeId node : partitions_[i]->partition().nodes) {
      node_partition_[static_cast<std::size_t>(node)] = static_cast<int>(i);
    }
  }
}

int SuperScheduler::partition_of(net::NodeId node) const {
  const auto idx = static_cast<std::size_t>(node);
  if (node < 0 || idx >= node_partition_.size()) return -1;
  return node_partition_[idx];
}

void SuperScheduler::handle_aborted(Job& job) {
  if (job.restarts() < restart_budget_) {
    job.count_restart();
    ++job_restarts_;
    // Restart ahead of new arrivals: the job already waited its turn once.
    queue_.push_front(&job);
    return;
  }
  ++jobs_failed_;
  job.mark_failed();
  job.mark_completion(sim_.now());
  if (job_tracer_ != nullptr) job_tracer_->completion(job.id(), sim_.now());
  ++completed_;
  if (observer_) observer_(job);
}

void SuperScheduler::on_node_down(net::NodeId node) {
  const int p = partition_of(node);
  if (p < 0) return;
  ++dead_nodes_[static_cast<std::size_t>(p)];
  // The partition can no longer run gangs to completion: tear down every
  // resident job and decide each one's fate against its restart budget.
  doomed_.clear();
  partitions_[static_cast<std::size_t>(p)]->abort_all(doomed_);
  for (Job* job : doomed_) handle_aborted(*job);
  doomed_.clear();
  pump();  // surviving partitions pick up the requeued work
}

void SuperScheduler::on_node_up(net::NodeId node) {
  const int p = partition_of(node);
  if (p < 0) return;
  if (--dead_nodes_[static_cast<std::size_t>(p)] == 0) {
    pump();  // the partition re-forms and can accept work again
  }
}

void SuperScheduler::on_job_comm_failure(JobId job) {
  for (PartitionScheduler* ps : partitions_) {
    if (Job* resident = ps->find_resident(job)) {
      ps->abort_job(*resident);
      handle_aborted(*resident);
      pump();
      return;
    }
  }
  // Not resident (already torn down by a node death, or queued): nothing to
  // abort; the pending restart owns recovery.
}

void SuperScheduler::pump() {
  while (!queue_.empty()) {
    PartitionScheduler* target = pick_partition();
    if (target == nullptr) return;
    Job* job = queue_.front();
    queue_.pop_front();
    target->admit(*job);
  }
}

void SuperScheduler::on_job_complete(Job& job) {
  ++completed_;
  if (observer_) observer_(job);
  pump();
}

}  // namespace tmc::sched
