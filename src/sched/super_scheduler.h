// tmcsim -- system-wide scheduler (top tier of the paper's hierarchy).
//
// The super scheduler owns the global ready queue. Under the static policy
// it is a FCFS dispatcher: a queued job starts when a partition becomes
// free and runs there exclusively to completion. Under the time-sharing
// policies it deals arriving jobs equitably over the partitions (bounded by
// the hybrid set size) and they multiprogram within each partition.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

#include "sched/job.h"
#include "sched/partition_scheduler.h"
#include "sched/policy.h"
#include "sched/scheduler.h"
#include "sim/simulation.h"

namespace tmc::sched {

class SuperScheduler final : public Scheduler {
 public:
  SuperScheduler(sim::Simulation& sim,
                 std::vector<PartitionScheduler*> partitions,
                 PolicyConfig policy);

  SuperScheduler(const SuperScheduler&) = delete;
  SuperScheduler& operator=(const SuperScheduler&) = delete;

  /// Submits a job (arrival instant = now). Jobs are queued FCFS and
  /// dispatched according to the policy.
  void submit(Job& job) override;

  [[nodiscard]] std::size_t queued_jobs() const override {
    return queue_.size();
  }
  [[nodiscard]] std::uint64_t submitted() const override { return submitted_; }
  [[nodiscard]] std::uint64_t completed() const override { return completed_; }

  /// Forwards the tracer to every partition scheduler (they emit the
  /// dispatch/run/rotation spans; this tier emits arrivals).
  void set_job_tracer(obs::JobTracer* tracer) override;

 private:
  void pump();
  /// Dispatch target per policy, or nullptr if no partition can accept work.
  PartitionScheduler* pick_partition() const;
  void on_job_complete(Job& job);

  sim::Simulation& sim_;
  std::vector<PartitionScheduler*> partitions_;
  PolicyConfig policy_;
  std::deque<Job*> queue_;
  std::uint64_t submitted_ = 0;
  std::uint64_t completed_ = 0;
};

}  // namespace tmc::sched
