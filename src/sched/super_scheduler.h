// tmcsim -- system-wide scheduler (top tier of the paper's hierarchy).
//
// The super scheduler owns the global ready queue. Under the static policy
// it is a FCFS dispatcher: a queued job starts when a partition becomes
// free and runs there exclusively to completion. Under the time-sharing
// policies it deals arriving jobs equitably over the partitions (bounded by
// the hybrid set size) and they multiprogram within each partition.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

#include "sched/job.h"
#include "sched/partition_scheduler.h"
#include "sched/policy.h"
#include "sched/scheduler.h"
#include "sim/simulation.h"

namespace tmc::sched {

class SuperScheduler final : public Scheduler {
 public:
  SuperScheduler(sim::Simulation& sim,
                 std::vector<PartitionScheduler*> partitions,
                 PolicyConfig policy);

  SuperScheduler(const SuperScheduler&) = delete;
  SuperScheduler& operator=(const SuperScheduler&) = delete;

  /// Submits a job (arrival instant = now). Jobs are queued FCFS and
  /// dispatched according to the policy.
  void submit(Job& job) override;

  [[nodiscard]] std::size_t queued_jobs() const override {
    return queue_.size();
  }
  [[nodiscard]] std::uint64_t submitted() const override { return submitted_; }
  [[nodiscard]] std::uint64_t completed() const override { return completed_; }

  /// Forwards the tracer to every partition scheduler (they emit the
  /// dispatch/run/rotation spans; this tier emits arrivals).
  void set_job_tracer(obs::JobTracer* tracer) override;

  // --- fault mode ---------------------------------------------------------
  /// A dead node degrades its whole partition: resident jobs are aborted
  /// and requeued at the head of the FCFS queue (within the restart
  /// budget); no new work is dealt there until every node recovers.
  void enable_fault_mode(int restart_budget) override;
  void on_node_down(net::NodeId node) override;
  void on_node_up(net::NodeId node) override;
  void on_job_comm_failure(JobId job) override;

 private:
  void pump();
  /// Dispatch target per policy, or nullptr if no partition can accept work.
  PartitionScheduler* pick_partition() const;
  void on_job_complete(Job& job);
  /// Requeues (under budget) or permanently fails a fault-aborted job.
  void handle_aborted(Job& job);
  [[nodiscard]] bool degraded(std::size_t i) const {
    return !dead_nodes_.empty() && dead_nodes_[i] > 0;
  }
  /// Partition index hosting `node`, or -1.
  [[nodiscard]] int partition_of(net::NodeId node) const;

  sim::Simulation& sim_;
  std::vector<PartitionScheduler*> partitions_;
  PolicyConfig policy_;
  std::deque<Job*> queue_;
  std::uint64_t submitted_ = 0;
  std::uint64_t completed_ = 0;
  int restart_budget_ = 0;
  /// node id -> partition index (-1 outside any partition); built only when
  /// fault mode is armed, so fault-free runs never touch it.
  std::vector<int> node_partition_;
  /// Currently-dead node count per partition (empty = fault mode off).
  std::vector<int> dead_nodes_;
  std::vector<Job*> doomed_;  // scratch for abort_all
};

}  // namespace tmc::sched
