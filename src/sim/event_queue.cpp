#include "sim/event_queue.h"

#include <algorithm>
#include <cassert>
#include <utility>

namespace tmc::sim {

std::uint32_t EventQueue::acquire_slot(Callback cb) {
  std::uint32_t index;
  if (free_head_ != kFreeListEnd) {
    index = free_head_;
    free_head_ = slots_[index].next_free;
  } else {
    if (slots_.size() == slots_.capacity()) {
      // One queue serves a whole simulation and routinely holds thousands of
      // pending events; sizing the pool up front (and doubling after that)
      // keeps slot relocation off the schedule hot path.
      slots_.reserve(std::max<std::size_t>(kInitialSlots, slots_.size() * 2));
      heap_.reserve(slots_.capacity());
    }
    index = static_cast<std::uint32_t>(slots_.size());
    slots_.emplace_back();
  }
  Slot& slot = slots_[index];
  slot.callback = std::move(cb);
  slot.live = true;
  return index;
}

EventId EventQueue::schedule(SimTime at, Callback cb) {
  const std::uint32_t index = acquire_slot(std::move(cb));
  Slot& slot = slots_[index];
  ++live_;
  if (live_ > peak_live_) peak_live_ = live_;
  if (fifo_eligible(at)) {
    now_fifo_.push_back(Entry{at, ++scheduled_, index, slot.generation});
  } else {
    heap_.push_back(Entry{at, ++scheduled_, index, slot.generation});
    sift_up(heap_.size() - 1);
  }
  return make_id(index, slot.generation);
}

std::size_t EventQueue::schedule_batch(SimTime at, std::span<Callback> cbs,
                                       EventId* ids) {
  const std::size_t k = cbs.size();
  if (k == 0) return 0;
  // Sequence numbers are handed out in span order, so the batch ties-break
  // exactly as k individual schedule() calls would. A same-instant batch
  // (the common case: dispatch fan-out committed at zero delay) appends to
  // the FIFO lane and never touches the heap.
  const bool fast = fifo_eligible(at);
  for (std::size_t i = 0; i < k; ++i) {
    const std::uint32_t index = acquire_slot(std::move(cbs[i]));
    const Slot& slot = slots_[index];
    const Entry entry{at, ++scheduled_, index, slot.generation};
    if (fast) {
      now_fifo_.push_back(entry);
    } else {
      heap_.push_back(entry);
    }
    if (ids != nullptr) ids[i] = make_id(index, slot.generation);
  }
  live_ += k;
  if (live_ > peak_live_) peak_live_ = live_;
  if (fast) return k;
  // The first heap_.size()-k elements still satisfy the heap property, so a
  // small batch sifts each appended entry up (O(k log n)); a batch that
  // rivals the pending set rebuilds bottom-up in O(n). Heap order is the
  // strict total order (time, seq), so pop order is identical either way.
  if (k < heap_.size() / 2) {
    for (std::size_t i = heap_.size() - k; i < heap_.size(); ++i) sift_up(i);
  } else {
    heapify();
  }
  return k;
}

bool EventQueue::cancel(EventId id) {
  const auto low = static_cast<std::uint32_t>(id & 0xffffffffu);
  if (low == 0) return false;  // kNoEvent or malformed
  const std::uint32_t index = low - 1;
  if (index >= slots_.size()) return false;
  Slot& slot = slots_[index];
  if (!slot.live || slot.generation != static_cast<std::uint32_t>(id >> 32)) {
    return false;  // already fired/cancelled, or a stale handle to a reused slot
  }
  // Destroying the callback can release resources whose teardown re-enters
  // schedule() (and may grow slots_); move it out and finish all bookkeeping
  // before the destructor runs at return.
  Callback doomed = std::move(slot.callback);
  retire_slot(index);
  return true;
}

void EventQueue::retire_slot(std::uint32_t index) {
  Slot& slot = slots_[index];
  slot.live = false;
  ++slot.generation;
  slot.next_free = free_head_;
  free_head_ = index;
  --live_;
}

void EventQueue::drop_stale_top() const {
  while (!heap_.empty()) {
    const Entry& top = heap_.front();
    const Slot& slot = slots_[top.slot];
    if (slot.live && slot.generation == top.generation) return;
    pop_top();
  }
}

void EventQueue::drop_stale_fifo() const {
  while (now_head_ < now_fifo_.size()) {
    const Entry& e = now_fifo_[now_head_];
    const Slot& slot = slots_[e.slot];
    if (slot.live && slot.generation == e.generation) return;
    ++now_head_;
  }
  // Fully drained: rewind so the lane's storage is reused, not grown.
  now_fifo_.clear();
  now_head_ = 0;
}

SimTime EventQueue::next_time() const {
  drop_stale_top();
  drop_stale_fifo();
  if (fifo_drained()) {
    assert(!heap_.empty() && "next_time() on empty EventQueue");
    return heap_.front().time;
  }
  const Entry& front = now_fifo_[now_head_];
  if (heap_.empty() || before(front, heap_.front())) return front.time;
  return heap_.front().time;
}

EventQueue::Fired EventQueue::pop_fifo_front() {
  const Entry e = now_fifo_[now_head_++];
  current_ = e.time;
  Fired fired{e.time, make_id(e.slot, e.generation),
              std::move(slots_[e.slot].callback)};
  retire_slot(e.slot);
  return fired;
}

EventQueue::Fired EventQueue::pop() {
  drop_stale_top();
  drop_stale_fifo();
  if (!fifo_drained() &&
      (heap_.empty() || before(now_fifo_[now_head_], heap_.front()))) {
    return pop_fifo_front();
  }
  assert(!heap_.empty() && "pop() on empty EventQueue");
  const Entry top = heap_.front();
  pop_top();
  current_ = top.time;
  Fired fired{top.time, make_id(top.slot, top.generation),
              std::move(slots_[top.slot].callback)};
  retire_slot(top.slot);
  return fired;
}

bool EventQueue::pop_if_at_most(SimTime limit, Fired& out) {
  drop_stale_top();
  drop_stale_fifo();
  if (!fifo_drained() &&
      (heap_.empty() || before(now_fifo_[now_head_], heap_.front()))) {
    if (now_fifo_[now_head_].time > limit) return false;
    out = pop_fifo_front();
    return true;
  }
  if (heap_.empty() || heap_.front().time > limit) return false;
  const Entry top = heap_.front();
  pop_top();
  current_ = top.time;
  out = Fired{top.time, make_id(top.slot, top.generation),
              std::move(slots_[top.slot].callback)};
  retire_slot(top.slot);
  return true;
}

std::size_t EventQueue::discard_all() {
  std::size_t n = 0;
  while (!empty()) {
    Fired fired = pop();
    (void)fired;  // callback destroyed here; may enqueue new events
    ++n;
  }
  return n;
}

void EventQueue::pop_top() const {
  // Bottom-up deletion: sink the root hole to a leaf along the min-child
  // chain (one 4-way min per level, no comparison against a relocated
  // element), then drop the last entry into the hole and sift it up. The
  // last entry is almost always leaf-grade, so the sift-up usually stops
  // immediately -- measurably fewer comparisons than the textbook
  // move-last-to-root-and-sift-down on this workload's shallow heaps.
  const std::size_t n = heap_.size() - 1;
  if (n == 0) {
    heap_.pop_back();
    return;
  }
  std::size_t hole = 0;
  for (;;) {
    const std::size_t first_child = 4 * hole + 1;
    if (first_child >= n) break;
    const std::size_t last_child = std::min(first_child + 4, n);
    std::size_t best = first_child;
    for (std::size_t c = first_child + 1; c < last_child; ++c) {
      if (before(heap_[c], heap_[best])) best = c;
    }
    heap_[hole] = heap_[best];
    hole = best;
  }
  heap_[hole] = heap_[n];
  heap_.pop_back();
  sift_up(hole);
}

void EventQueue::sift_up(std::size_t i) const {
  const Entry entry = heap_[i];
  while (i > 0) {
    const std::size_t parent = (i - 1) / 4;
    if (!before(entry, heap_[parent])) break;
    heap_[i] = heap_[parent];
    i = parent;
  }
  heap_[i] = entry;
}

void EventQueue::heapify() const {
  if (heap_.size() < 2) return;
  // Floyd's bottom-up build over the 4-ary layout: sift down every internal
  // node, last parent first.
  for (std::size_t i = (heap_.size() - 2) / 4 + 1; i-- > 0;) {
    sift_down(i);
  }
}

void EventQueue::sift_down(std::size_t i) const {
  const std::size_t n = heap_.size();
  const Entry entry = heap_[i];
  for (;;) {
    const std::size_t first_child = 4 * i + 1;
    if (first_child >= n) break;
    const std::size_t last_child = std::min(first_child + 4, n);
    std::size_t best = first_child;
    for (std::size_t c = first_child + 1; c < last_child; ++c) {
      if (before(heap_[c], heap_[best])) best = c;
    }
    if (!before(heap_[best], entry)) break;
    heap_[i] = heap_[best];
    i = best;
  }
  heap_[i] = entry;
}

}  // namespace tmc::sim
