#include "sim/event_queue.h"

#include <cassert>
#include <utility>

namespace tmc::sim {

EventId EventQueue::schedule(SimTime at, Callback cb) {
  const EventId id = next_id_++;
  heap_.push(Entry{at, id});
  callbacks_.emplace(id, std::move(cb));
  ++live_;
  return id;
}

bool EventQueue::cancel(EventId id) {
  const auto it = callbacks_.find(id);
  if (it == callbacks_.end()) return false;
  callbacks_.erase(it);
  --live_;
  return true;
}

void EventQueue::skip_cancelled() const {
  while (!heap_.empty() && !callbacks_.contains(heap_.top().id)) {
    heap_.pop();
  }
}

SimTime EventQueue::next_time() const {
  skip_cancelled();
  assert(!heap_.empty() && "next_time() on empty EventQueue");
  return heap_.top().time;
}

EventQueue::Fired EventQueue::pop() {
  skip_cancelled();
  assert(!heap_.empty() && "pop() on empty EventQueue");
  const Entry top = heap_.top();
  heap_.pop();
  auto it = callbacks_.find(top.id);
  Fired fired{top.time, top.id, std::move(it->second)};
  callbacks_.erase(it);
  --live_;
  return fired;
}

std::size_t EventQueue::discard_all() {
  std::size_t n = 0;
  while (!empty()) {
    Fired fired = pop();
    (void)fired;  // callback destroyed here; may enqueue new events
    ++n;
  }
  return n;
}

}  // namespace tmc::sim
