#include "sim/event_queue.h"

#include <algorithm>
#include <cassert>
#include <utility>

namespace tmc::sim {

EventId EventQueue::schedule(SimTime at, Callback cb) {
  std::uint32_t index;
  if (free_head_ != kFreeListEnd) {
    index = free_head_;
    free_head_ = slots_[index].next_free;
  } else {
    if (slots_.size() == slots_.capacity()) {
      // One queue serves a whole simulation and routinely holds thousands of
      // pending events; sizing the pool up front (and doubling after that)
      // keeps slot relocation off the schedule hot path.
      slots_.reserve(std::max<std::size_t>(kInitialSlots, slots_.size() * 2));
      heap_.reserve(slots_.capacity());
    }
    index = static_cast<std::uint32_t>(slots_.size());
    slots_.emplace_back();
  }
  Slot& slot = slots_[index];
  slot.callback = std::move(cb);
  slot.live = true;
  heap_.push_back(Entry{at, ++scheduled_, index, slot.generation});
  sift_up(heap_.size() - 1);
  ++live_;
  return make_id(index, slot.generation);
}

bool EventQueue::cancel(EventId id) {
  const auto low = static_cast<std::uint32_t>(id & 0xffffffffu);
  if (low == 0) return false;  // kNoEvent or malformed
  const std::uint32_t index = low - 1;
  if (index >= slots_.size()) return false;
  Slot& slot = slots_[index];
  if (!slot.live || slot.generation != static_cast<std::uint32_t>(id >> 32)) {
    return false;  // already fired/cancelled, or a stale handle to a reused slot
  }
  // Destroying the callback can release resources whose teardown re-enters
  // schedule() (and may grow slots_); move it out and finish all bookkeeping
  // before the destructor runs at return.
  Callback doomed = std::move(slot.callback);
  retire_slot(index);
  return true;
}

void EventQueue::retire_slot(std::uint32_t index) {
  Slot& slot = slots_[index];
  slot.live = false;
  ++slot.generation;
  slot.next_free = free_head_;
  free_head_ = index;
  --live_;
}

void EventQueue::drop_stale_top() const {
  while (!heap_.empty()) {
    const Entry& top = heap_.front();
    const Slot& slot = slots_[top.slot];
    if (slot.live && slot.generation == top.generation) return;
    pop_top();
  }
}

SimTime EventQueue::next_time() const {
  drop_stale_top();
  assert(!heap_.empty() && "next_time() on empty EventQueue");
  return heap_.front().time;
}

EventQueue::Fired EventQueue::pop() {
  drop_stale_top();
  assert(!heap_.empty() && "pop() on empty EventQueue");
  const Entry top = heap_.front();
  pop_top();
  Fired fired{top.time, make_id(top.slot, top.generation),
              std::move(slots_[top.slot].callback)};
  retire_slot(top.slot);
  return fired;
}

std::size_t EventQueue::discard_all() {
  std::size_t n = 0;
  while (!empty()) {
    Fired fired = pop();
    (void)fired;  // callback destroyed here; may enqueue new events
    ++n;
  }
  return n;
}

void EventQueue::pop_top() const {
  heap_.front() = heap_.back();
  heap_.pop_back();
  if (!heap_.empty()) sift_down(0);
}

void EventQueue::sift_up(std::size_t i) const {
  const Entry entry = heap_[i];
  while (i > 0) {
    const std::size_t parent = (i - 1) / 4;
    if (!before(entry, heap_[parent])) break;
    heap_[i] = heap_[parent];
    i = parent;
  }
  heap_[i] = entry;
}

void EventQueue::sift_down(std::size_t i) const {
  const std::size_t n = heap_.size();
  const Entry entry = heap_[i];
  for (;;) {
    const std::size_t first_child = 4 * i + 1;
    if (first_child >= n) break;
    const std::size_t last_child = std::min(first_child + 4, n);
    std::size_t best = first_child;
    for (std::size_t c = first_child + 1; c < last_child; ++c) {
      if (before(heap_[c], heap_[best])) best = c;
    }
    if (!before(heap_[best], entry)) break;
    heap_[i] = heap_[best];
    i = best;
  }
  heap_[i] = entry;
}

}  // namespace tmc::sim
