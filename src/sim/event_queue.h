// tmcsim -- pending-event set for the discrete-event kernel.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "sim/time.h"
#include "sim/unique_function.h"

namespace tmc::sim {

/// Opaque handle identifying a scheduled event; used to cancel it.
/// Handle 0 is never issued and acts as "no event".
using EventId = std::uint64_t;
inline constexpr EventId kNoEvent = 0;

/// Time-ordered set of pending events.
///
/// Ties are broken by insertion order (FIFO), which makes simulations
/// deterministic: two events scheduled for the same instant fire in the order
/// they were scheduled. Cancellation is O(1) (lazy deletion on pop).
///
/// Implementation: a 4-ary min-heap of (time, sequence) keys over a
/// generation-tagged slot pool that stores the callbacks inline. The hot
/// schedule/pop path touches only the heap array and one pool slot -- no
/// hashing anywhere -- and with UniqueFunction's small-buffer storage a
/// typical event never allocates. A handle encodes (slot, generation);
/// cancel() destroys the callback and retires the slot immediately, leaving
/// the heap entry to be skipped when it surfaces (the generation tag
/// detects staleness even after the slot has been reused).
class EventQueue {
 public:
  using Callback = UniqueFunction<void()>;

  EventQueue() = default;
  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;
  /// Pending callbacks are destroyed without firing, via discard_all(), so
  /// destructors that schedule follow-up events stay well-defined.
  ~EventQueue() { discard_all(); }

  /// Schedules `cb` to fire at absolute time `at`. Returns a handle that can
  /// be passed to `cancel`.
  EventId schedule(SimTime at, Callback cb);

  /// Cancels a pending event. Returns false if the event already fired,
  /// was already cancelled, or the id was never issued.
  bool cancel(EventId id);

  [[nodiscard]] bool empty() const { return live_ == 0; }
  [[nodiscard]] std::size_t size() const { return live_; }

  /// Time of the earliest pending event. Must not be called when empty.
  [[nodiscard]] SimTime next_time() const;

  /// Removes and returns the earliest pending event's callback, along with
  /// its firing time. Must not be called when empty.
  struct Fired {
    SimTime time;
    EventId id;
    Callback callback;
  };
  Fired pop();

  /// Total events ever scheduled (monotone; includes cancelled ones).
  [[nodiscard]] std::uint64_t scheduled_count() const { return scheduled_; }

  /// Destroys all pending events without firing them. Destroying a callback
  /// can release resources that schedule new events; the loop keeps going
  /// until the set is truly empty. Returns the number discarded.
  std::size_t discard_all();

 private:
  struct Entry {
    SimTime time;
    std::uint64_t seq;  // global schedule order: the FIFO tie-break
    std::uint32_t slot;
    std::uint32_t generation;
  };
  struct Slot {
    Callback callback;
    std::uint32_t generation = 0;
    std::uint32_t next_free = kFreeListEnd;
    bool live = false;
  };
  static constexpr std::uint32_t kFreeListEnd = 0xffffffffu;
  /// Slot-pool capacity reserved on first use (~380 KB with the heap array).
  /// One queue serves a whole simulated machine, so this is paid once per
  /// simulation; it covers the pending-set peaks the paper's experiments
  /// reach so the pool never regrows mid-run.
  static constexpr std::size_t kInitialSlots = 4096;

  static constexpr EventId make_id(std::uint32_t slot,
                                   std::uint32_t generation) {
    return (static_cast<EventId>(generation) << 32) |
           static_cast<EventId>(slot + 1);
  }

  // min-heap order: earliest time first, then lowest sequence number.
  [[nodiscard]] static bool before(const Entry& a, const Entry& b) {
    if (a.time != b.time) return a.time < b.time;
    return a.seq < b.seq;
  }

  /// Marks the slot dead, bumps its generation (invalidating outstanding
  /// handles and heap entries), and returns it to the free list.
  void retire_slot(std::uint32_t index);

  // Lazy deletion happens on the read path (next_time is const), so the
  // heap maintenance helpers are const over the mutable heap array.
  void drop_stale_top() const;
  void pop_top() const;
  void sift_up(std::size_t i) const;
  void sift_down(std::size_t i) const;

  mutable std::vector<Entry> heap_;
  std::vector<Slot> slots_;
  std::uint32_t free_head_ = kFreeListEnd;
  std::uint64_t scheduled_ = 0;
  std::size_t live_ = 0;
};

}  // namespace tmc::sim
