// tmcsim -- pending-event set for the discrete-event kernel.
#pragma once

#include <cstdint>
#include <queue>
#include <unordered_map>
#include <vector>

#include "sim/time.h"
#include "sim/unique_function.h"

namespace tmc::sim {

/// Opaque handle identifying a scheduled event; used to cancel it.
/// Handle 0 is never issued and acts as "no event".
using EventId = std::uint64_t;
inline constexpr EventId kNoEvent = 0;

/// Time-ordered set of pending events.
///
/// Ties are broken by insertion order (FIFO), which makes simulations
/// deterministic: two events scheduled for the same instant fire in the order
/// they were scheduled. Cancellation is O(1) (lazy deletion on pop).
class EventQueue {
 public:
  using Callback = UniqueFunction<void()>;

  /// Schedules `cb` to fire at absolute time `at`. Returns a handle that can
  /// be passed to `cancel`.
  EventId schedule(SimTime at, Callback cb);

  /// Cancels a pending event. Returns false if the event already fired,
  /// was already cancelled, or the id was never issued.
  bool cancel(EventId id);

  [[nodiscard]] bool empty() const { return live_ == 0; }
  [[nodiscard]] std::size_t size() const { return live_; }

  /// Time of the earliest pending event. Must not be called when empty.
  [[nodiscard]] SimTime next_time() const;

  /// Removes and returns the earliest pending event's callback, along with
  /// its firing time. Must not be called when empty.
  struct Fired {
    SimTime time;
    EventId id;
    Callback callback;
  };
  Fired pop();

  /// Total events ever scheduled (monotone; includes cancelled ones).
  [[nodiscard]] std::uint64_t scheduled_count() const { return next_id_ - 1; }

  /// Destroys all pending events without firing them. Destroying a callback
  /// can release resources that schedule new events; the loop keeps going
  /// until the set is truly empty. Returns the number discarded.
  std::size_t discard_all();

 private:
  struct Entry {
    SimTime time;
    EventId id;
    // min-heap: earliest time first, then lowest id (insertion order).
    bool operator>(const Entry& rhs) const {
      if (time != rhs.time) return time > rhs.time;
      return id > rhs.id;
    }
  };

  void skip_cancelled() const;

  mutable std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap_;
  std::unordered_map<EventId, Callback> callbacks_;
  EventId next_id_ = 1;
  std::size_t live_ = 0;
};

}  // namespace tmc::sim
