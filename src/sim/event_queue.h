// tmcsim -- pending-event set for the discrete-event kernel.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "sim/time.h"
#include "sim/unique_function.h"

namespace tmc::sim {

/// Opaque handle identifying a scheduled event; used to cancel it.
/// Handle 0 is never issued and acts as "no event".
using EventId = std::uint64_t;
inline constexpr EventId kNoEvent = 0;

/// Time-ordered set of pending events.
///
/// Ties are broken by insertion order (FIFO), which makes simulations
/// deterministic: two events scheduled for the same instant fire in the order
/// they were scheduled. Cancellation is O(1) (lazy deletion on pop).
///
/// Implementation: a 4-ary min-heap of (time, sequence) keys over a
/// generation-tagged slot pool that stores the callbacks inline. The hot
/// schedule/pop path touches only the heap array and one pool slot -- no
/// hashing anywhere -- and with UniqueFunction's small-buffer storage a
/// typical event never allocates. A handle encodes (slot, generation);
/// cancel() destroys the callback and retires the slot immediately, leaving
/// the heap entry to be skipped when it surfaces (the generation tag
/// detects staleness even after the slot has been reused).
///
/// Same-instant fast lane: an event scheduled for exactly the time of the
/// most recently popped event (a zero-delay cascade -- dispatch pumps,
/// bulk-granted memory, gang fan-out) bypasses the heap into a plain FIFO.
/// This is order-exact, not an approximation: every heap entry at that
/// instant was inserted before the clock reached it and so carries a lower
/// sequence number than anything in the lane, and pop() compares the two
/// fronts under the same strict (time, seq) order either way. Roughly a
/// third of all events in the paper's workloads take this O(1) path.
class EventQueue {
 public:
  using Callback = UniqueFunction<void()>;

  EventQueue() = default;
  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;
  /// Pending callbacks are destroyed without firing, via discard_all(), so
  /// destructors that schedule follow-up events stay well-defined.
  ~EventQueue() { discard_all(); }

  /// Schedules `cb` to fire at absolute time `at`. Returns a handle that can
  /// be passed to `cancel`.
  EventId schedule(SimTime at, Callback cb);

  /// Bulk insert: schedules every callback in `cbs` (moving them out) to
  /// fire at the same instant `at`, in span order.
  ///
  /// Contract: the batch is assigned consecutive sequence numbers, so it is
  /// exactly equivalent to calling schedule(at, cb) on each element in
  /// order -- same FIFO tie-break, same pop order, same handles-to-slots
  /// mapping guarantees -- only cheaper. Small batches sift each appended
  /// entry up individually; a batch that rivals the pending set in size
  /// rebuilds the heap bottom-up (Floyd) in O(n) instead. Because the heap
  /// order is the strict total order (time, seq), both restore paths yield
  /// identical pop sequences.
  ///
  /// If `ids` is non-null it must point to `cbs.size()` elements; it
  /// receives the handle of each scheduled event (cancelable as usual).
  /// Returns the number of events scheduled.
  std::size_t schedule_batch(SimTime at, std::span<Callback> cbs,
                             EventId* ids = nullptr);

  /// Cancels a pending event. Returns false if the event already fired,
  /// was already cancelled, or the id was never issued.
  bool cancel(EventId id);

  [[nodiscard]] bool empty() const { return live_ == 0; }
  [[nodiscard]] std::size_t size() const { return live_; }

  /// Time of the earliest pending event. Must not be called when empty.
  [[nodiscard]] SimTime next_time() const;

  /// Removes and returns the earliest pending event's callback, along with
  /// its firing time. Must not be called when empty.
  struct Fired {
    SimTime time;
    EventId id = kNoEvent;
    Callback callback;
  };
  Fired pop();

  /// Fused next_time()+pop(): pops the earliest pending event into `out`
  /// only if its time is <= `limit`. Returns false (leaving `out` untouched)
  /// when the queue is empty or the earliest event lies beyond the limit.
  /// Equivalent to `!empty() && next_time() <= limit` followed by `pop()`,
  /// but walks the stale-entry lazy-deletion pass once instead of twice.
  bool pop_if_at_most(SimTime limit, Fired& out);

  /// Total events ever scheduled (monotone; includes cancelled ones).
  [[nodiscard]] std::uint64_t scheduled_count() const { return scheduled_; }

  /// High-water mark of the pending set (kernel self-profile: heap depth).
  [[nodiscard]] std::size_t peak_size() const { return peak_live_; }

  /// Destroys all pending events without firing them. Destroying a callback
  /// can release resources that schedule new events; the loop keeps going
  /// until the set is truly empty. Returns the number discarded.
  std::size_t discard_all();

 private:
  struct Entry {
    SimTime time;
    std::uint64_t seq;  // global schedule order: the FIFO tie-break
    std::uint32_t slot;
    std::uint32_t generation;
  };
  struct Slot {
    Callback callback;
    std::uint32_t generation = 0;
    std::uint32_t next_free = kFreeListEnd;
    bool live = false;
  };
  static constexpr std::uint32_t kFreeListEnd = 0xffffffffu;
  /// Slot-pool capacity reserved on first use (~380 KB with the heap array).
  /// One queue serves a whole simulated machine, so this is paid once per
  /// simulation; it covers the pending-set peaks the paper's experiments
  /// reach so the pool never regrows mid-run.
  static constexpr std::size_t kInitialSlots = 4096;

  static constexpr EventId make_id(std::uint32_t slot,
                                   std::uint32_t generation) {
    return (static_cast<EventId>(generation) << 32) |
           static_cast<EventId>(slot + 1);
  }

  // min-heap order: earliest time first, then lowest sequence number.
  [[nodiscard]] static bool before(const Entry& a, const Entry& b) {
    if (a.time != b.time) return a.time < b.time;
    return a.seq < b.seq;
  }

  /// Takes a slot from the free list (or grows the pool) and moves `cb`
  /// into it. Shared by schedule() and schedule_batch().
  std::uint32_t acquire_slot(Callback cb);

  /// Marks the slot dead, bumps its generation (invalidating outstanding
  /// handles and heap entries), and returns it to the free list.
  void retire_slot(std::uint32_t index);

  // Lazy deletion happens on the read path (next_time is const), so the
  // heap maintenance helpers are const over the mutable heap array.
  void drop_stale_top() const;
  void pop_top() const;
  void sift_up(std::size_t i) const;
  void sift_down(std::size_t i) const;
  /// Rebuilds the heap property over the whole array (bottom-up).
  void heapify() const;

  /// Skips cancelled entries at the front of the same-instant lane; resets
  /// the lane to offset 0 (keeping capacity) once fully drained.
  void drop_stale_fifo() const;
  [[nodiscard]] bool fifo_drained() const {
    return now_head_ == now_fifo_.size();
  }
  /// True when an event at `at` may ride the same-instant lane: the clock
  /// (time of the last pop) has reached `at`, and the lane holds nothing
  /// from a different instant.
  [[nodiscard]] bool fifo_eligible(SimTime at) const {
    return at == current_ && (fifo_drained() || now_fifo_.back().time == at);
  }
  /// Consumes the front lane entry (already known live) as a Fired record.
  Fired pop_fifo_front();

  mutable std::vector<Entry> heap_;
  /// Same-instant lane: entries at the current instant, consumed from
  /// now_head_, appended at the back. Drains completely before the clock
  /// can advance (its entries are, by construction, among the earliest
  /// pending), so a flat vector with a head cursor suffices.
  mutable std::vector<Entry> now_fifo_;
  mutable std::size_t now_head_ = 0;
  std::vector<Slot> slots_;
  std::uint32_t free_head_ = kFreeListEnd;
  std::uint64_t scheduled_ = 0;
  std::size_t live_ = 0;
  std::size_t peak_live_ = 0;
  /// Time of the most recently popped event; the gate for the fast lane.
  /// Starts at zero: nothing can be scheduled before the epoch, so events
  /// scheduled at t=0 before the first pop ride the lane correctly.
  SimTime current_;
};

/// Accumulates callbacks destined for one instant so a fan-out site (gang
/// dispatch, multi-grant MMU pump, broadcast admission) can insert them with
/// a single EventQueue::schedule_batch() call. Reusable: clear() keeps the
/// capacity, so a scheduler-owned scratch batch stops allocating once warm.
class EventBatch {
 public:
  void add(EventQueue::Callback cb) { callbacks_.push_back(std::move(cb)); }

  [[nodiscard]] bool empty() const { return callbacks_.empty(); }
  [[nodiscard]] std::size_t size() const { return callbacks_.size(); }
  /// Drops the callbacks (destroying any not yet moved out) but keeps the
  /// vector capacity for reuse.
  void clear() { callbacks_.clear(); }

  /// The accumulated callbacks, in add() order; schedule_batch moves the
  /// elements out, after which clear() must be called before reuse.
  [[nodiscard]] std::span<EventQueue::Callback> callbacks() {
    return callbacks_;
  }

 private:
  std::vector<EventQueue::Callback> callbacks_;
};

}  // namespace tmc::sim
