// tmcsim -- flat FIFO for hot scheduler queues.
#pragma once

#include <cassert>
#include <cstddef>
#include <utility>
#include <vector>

namespace tmc::sim {

/// Drop-in FIFO replacement for std::deque on hot paths: a power-of-two
/// ring over one contiguous allocation. std::deque allocates a fresh block
/// every few dozen pushes no matter how steady the queue's depth is; a ring
/// only allocates when the high-water mark grows, so a scheduler queue that
/// warms up once stops touching the allocator for the rest of the run.
///
/// Elements must be default-constructible and movable: pop_front() resets
/// the vacated slot to T{} so resources held by the element (buffers,
/// callbacks) are released at pop time, as they would be with a deque.
template <typename T>
class RingQueue {
 public:
  [[nodiscard]] bool empty() const { return size_ == 0; }
  [[nodiscard]] std::size_t size() const { return size_; }

  void push_back(T value) {
    if (size_ == buf_.size()) grow();
    buf_[wrap(head_ + size_)] = std::move(value);
    ++size_;
  }

  [[nodiscard]] T& front() {
    assert(size_ > 0);
    return buf_[head_];
  }
  [[nodiscard]] const T& front() const {
    assert(size_ > 0);
    return buf_[head_];
  }

  void pop_front() {
    assert(size_ > 0);
    buf_[head_] = T{};
    head_ = wrap(head_ + 1);
    --size_;
  }

  /// Queue-order access: index 0 is the front.
  [[nodiscard]] T& operator[](std::size_t i) {
    assert(i < size_);
    return buf_[wrap(head_ + i)];
  }
  [[nodiscard]] const T& operator[](std::size_t i) const {
    assert(i < size_);
    return buf_[wrap(head_ + i)];
  }

  /// Removes every element equal to `value`, preserving the order of the
  /// rest. O(n); for the rare removal of a parked entry, not the hot path.
  std::size_t erase_value(const T& value) {
    std::size_t kept = 0;
    const std::size_t n = size_;
    for (std::size_t i = 0; i < n; ++i) {
      T& elem = buf_[wrap(head_ + i)];
      if (elem == value) continue;
      if (kept != i) buf_[wrap(head_ + kept)] = std::move(elem);
      ++kept;
    }
    for (std::size_t i = kept; i < n; ++i) buf_[wrap(head_ + i)] = T{};
    const std::size_t removed = n - kept;
    size_ = kept;
    return removed;
  }

 private:
  [[nodiscard]] std::size_t wrap(std::size_t i) const {
    return i & (buf_.size() - 1);
  }

  void grow() {
    const std::size_t cap = buf_.empty() ? 16 : buf_.size() * 2;
    std::vector<T> next(cap);
    for (std::size_t i = 0; i < size_; ++i) {
      next[i] = std::move(buf_[wrap(head_ + i)]);
    }
    buf_ = std::move(next);
    head_ = 0;
  }

  std::vector<T> buf_;
  std::size_t head_ = 0;
  std::size_t size_ = 0;
};

}  // namespace tmc::sim
