#include "sim/rng.h"

#include <cassert>
#include <cmath>
#include <numbers>

namespace tmc::sim {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& word : s_) word = splitmix64(sm);
  // An all-zero state is the one invalid xoshiro state; splitmix64 cannot
  // produce four consecutive zeros, but guard anyway.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::uniform(std::uint64_t bound) {
  assert(bound > 0);
  // Lemire's method with rejection to remove modulo bias.
  std::uint64_t x = next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    const std::uint64_t threshold = -bound % bound;
    while (lo < threshold) {
      x = next();
      m = static_cast<__uint128_t>(x) * bound;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  assert(lo <= hi);
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(uniform(span));
}

double Rng::uniform01() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform_real(double lo, double hi) {
  return lo + (hi - lo) * uniform01();
}

double Rng::exponential(double mean) {
  assert(mean > 0);
  double u = uniform01();
  // Avoid log(0).
  if (u <= 0.0) u = 0x1.0p-53;
  return -mean * std::log(u);
}

double Rng::normal(double mu, double sigma) {
  double u1 = uniform01();
  if (u1 <= 0.0) u1 = 0x1.0p-53;
  const double u2 = uniform01();
  const double r = std::sqrt(-2.0 * std::log(u1));
  return mu + sigma * r * std::cos(2.0 * std::numbers::pi * u2);
}

double Rng::hyperexponential(double mean, double cv) {
  assert(mean > 0 && cv >= 1.0);
  if (cv == 1.0) return exponential(mean);
  // Balanced two-stage H2: branch probability p chosen so that the squared
  // coefficient of variation equals cv^2 with branch means mean/(2p) and
  // mean/(2(1-p)) (Morse's method).
  const double c2 = cv * cv;
  const double p = 0.5 * (1.0 + std::sqrt((c2 - 1.0) / (c2 + 1.0)));
  if (bernoulli(p)) return exponential(mean / (2.0 * p));
  return exponential(mean / (2.0 * (1.0 - p)));
}

double Rng::weibull(double shape, double scale) {
  assert(shape > 0 && scale > 0);
  double u = uniform01();
  if (u <= 0.0) u = 0x1.0p-53;
  return scale * std::pow(-std::log(u), 1.0 / shape);
}

double Rng::pareto(double alpha, double xm) {
  assert(alpha > 0 && xm > 0);
  double u = uniform01();
  if (u <= 0.0) u = 0x1.0p-53;
  return xm / std::pow(u, 1.0 / alpha);
}

bool Rng::bernoulli(double p) { return uniform01() < p; }

Rng Rng::split() {
  Rng child(0);
  std::uint64_t sm = next();
  for (auto& word : child.s_) word = splitmix64(sm);
  if ((child.s_[0] | child.s_[1] | child.s_[2] | child.s_[3]) == 0)
    child.s_[0] = 1;
  return child;
}

}  // namespace tmc::sim
