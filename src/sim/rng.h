// tmcsim -- deterministic pseudo-random number generation.
//
// We implement xoshiro256** directly rather than using <random> engines and
// distributions: the standard distributions are not bit-reproducible across
// standard-library implementations, and reproducibility of every replication
// from its seed is a hard requirement for the experiment harness.
#pragma once

#include <array>
#include <cstdint>

namespace tmc::sim {

/// xoshiro256** 1.0 (Blackman & Vigna), seeded via splitmix64.
/// Satisfies std::uniform_random_bit_generator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return UINT64_MAX; }
  result_type operator()() { return next(); }

  std::uint64_t next();

  /// Uniform integer in [0, bound). `bound` must be > 0. Uses Lemire's
  /// unbiased multiply-shift rejection method.
  std::uint64_t uniform(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double uniform01();

  /// Uniform double in [lo, hi).
  double uniform_real(double lo, double hi);

  /// Exponential with the given mean (> 0).
  double exponential(double mean);

  /// Standard normal via Box-Muller (polar form would cache; we keep it
  /// stateless-per-call for reproducibility of call sequences).
  double normal(double mu, double sigma);

  /// Two-stage hyperexponential with the given mean and coefficient of
  /// variation cv >= 1. Used by the synthetic variance workload (bench A1).
  double hyperexponential(double mean, double cv);

  /// Weibull with the given shape k > 0 and scale lambda > 0 (inverse-CDF;
  /// one uniform draw). Shape < 1 gives the heavy-tailed service times of
  /// the DFRS workloads (workload::arrivals).
  double weibull(double shape, double scale);

  /// Pareto (type I) with tail index alpha > 0 and minimum xm > 0
  /// (inverse-CDF; one uniform draw). Mean is alpha*xm/(alpha-1) for
  /// alpha > 1, infinite otherwise -- callers truncate.
  double pareto(double alpha, double xm);

  /// Bernoulli trial.
  bool bernoulli(double p);

  /// Fisher-Yates shuffle of a range (deterministic given the stream state).
  template <typename It>
  void shuffle(It first, It last) {
    const auto n = static_cast<std::uint64_t>(last - first);
    for (std::uint64_t i = n; i > 1; --i) {
      const auto j = uniform(i);
      using std::swap;
      swap(first[static_cast<std::ptrdiff_t>(i - 1)],
           first[static_cast<std::ptrdiff_t>(j)]);
    }
  }

  /// Derives an independent child stream (for per-replication streams).
  [[nodiscard]] Rng split();

 private:
  std::array<std::uint64_t, 4> s_{};
};

}  // namespace tmc::sim
