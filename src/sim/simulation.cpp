#include "sim/simulation.h"

#include <cassert>
#include <ostream>
#include <utility>

namespace tmc::sim {

std::ostream& operator<<(std::ostream& os, SimTime t) {
  return os << t.to_seconds() << "s";
}

EventId Simulation::schedule(SimTime delay, EventQueue::Callback cb) {
  assert(!delay.is_negative() && "negative delay");
  return queue_.schedule(now_ + delay, std::move(cb));
}

EventId Simulation::schedule_at(SimTime at, EventQueue::Callback cb) {
  assert(at >= now_ && "scheduling into the past");
  return queue_.schedule(at, std::move(cb));
}

std::size_t Simulation::schedule_batch(SimTime delay, EventBatch& batch) {
  assert(!delay.is_negative() && "negative delay");
  const std::size_t n = queue_.schedule_batch(now_ + delay, batch.callbacks());
  batch.clear();
  return n;
}

std::uint64_t Simulation::run(std::uint64_t max_events) {
  std::uint64_t n = 0;
  while (n < max_events && !queue_.empty()) {
    auto fired = queue_.pop();
    assert(fired.time >= now_);
    now_ = fired.time;
    fired.callback();
    ++n;
  }
  fired_ += n;
  return n;
}

std::uint64_t Simulation::run_until(SimTime until) {
  std::uint64_t n = 0;
  EventQueue::Fired fired;
  while (queue_.pop_if_at_most(until, fired)) {
    now_ = fired.time;
    fired.callback();
    ++n;
  }
  if (until > now_) now_ = until;
  fired_ += n;
  return n;
}

bool Simulation::step() {
  if (queue_.empty()) return false;
  auto fired = queue_.pop();
  now_ = fired.time;
  fired.callback();
  ++fired_;
  return true;
}

bool Simulation::step_until(SimTime limit) {
  EventQueue::Fired fired;
  if (!queue_.pop_if_at_most(limit, fired)) return false;
  now_ = fired.time;
  fired.callback();
  ++fired_;
  return true;
}

}  // namespace tmc::sim
