// tmcsim -- discrete-event simulation kernel.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "sim/event_queue.h"
#include "sim/time.h"

namespace tmc::sim {

/// The simulation clock and event loop.
///
/// A Simulation owns the clock and the pending-event set. Model components
/// hold a reference to it and drive themselves by scheduling callbacks.
/// The kernel is strictly sequential and deterministic: events at equal
/// times fire in scheduling order.
class Simulation {
 public:
  Simulation() = default;
  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  /// Current simulated time.
  [[nodiscard]] SimTime now() const { return now_; }

  /// Schedules `cb` after `delay` (>= 0) from now.
  EventId schedule(SimTime delay, EventQueue::Callback cb);

  /// Schedules `cb` at absolute time `at` (>= now()).
  EventId schedule_at(SimTime at, EventQueue::Callback cb);

  /// Commits an accumulated fan-out: every callback in `batch` is scheduled
  /// at now()+delay through one EventQueue::schedule_batch bulk insert
  /// (FIFO-equivalent to scheduling them individually in add() order). The
  /// batch is cleared afterwards, retaining its capacity for reuse.
  /// Returns the number of events scheduled.
  std::size_t schedule_batch(SimTime delay, EventBatch& batch);

  /// Cancels a pending event; returns false if it already fired.
  bool cancel(EventId id) { return queue_.cancel(id); }

  /// Runs until the event set is exhausted or `max_events` fire.
  /// Returns the number of events fired.
  std::uint64_t run(std::uint64_t max_events = UINT64_MAX);

  /// Runs events with time <= `until`, then advances the clock to `until`
  /// (even if no event fired exactly there). Returns events fired.
  std::uint64_t run_until(SimTime until);

  /// Fires exactly one event if any is pending. Returns true if one fired.
  bool step();

  /// Fires exactly one event if one is pending at or before `limit`.
  /// Equivalent to `!idle() && next_event_time() <= limit` followed by
  /// step(), but performs the queue's lazy-deletion scan once instead of
  /// twice -- the shape of a watchdog-bounded run loop.
  bool step_until(SimTime limit);

  /// Destroys all pending events without firing them (teardown aid for
  /// models whose callbacks own resources). Returns the number discarded.
  std::size_t discard_pending() { return queue_.discard_all(); }

  [[nodiscard]] bool idle() const { return queue_.empty(); }
  /// Firing time of the earliest pending event; must not be called idle.
  [[nodiscard]] SimTime next_event_time() const { return queue_.next_time(); }
  [[nodiscard]] std::size_t pending_events() const { return queue_.size(); }
  [[nodiscard]] std::uint64_t fired_events() const { return fired_; }
  /// Total events ever scheduled (monotone; includes cancelled ones).
  [[nodiscard]] std::uint64_t scheduled_events() const {
    return queue_.scheduled_count();
  }
  /// High-water mark of the pending-event set (kernel self-profile).
  [[nodiscard]] std::size_t peak_pending_events() const {
    return queue_.peak_size();
  }

 private:
  EventQueue queue_;
  SimTime now_;
  std::uint64_t fired_ = 0;
};

}  // namespace tmc::sim
