#include "sim/stats.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <sstream>

namespace tmc::sim {

void OnlineStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void OnlineStats::merge(const OnlineStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

void OnlineStats::reset() { *this = OnlineStats{}; }

double OnlineStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double OnlineStats::stddev() const { return std::sqrt(variance()); }

double OnlineStats::cv() const {
  return mean_ == 0.0 ? 0.0 : stddev() / std::abs(mean_);
}

namespace {
// Two-sided Student t critical values for common levels, indexed by
// degrees of freedom 1..30; beyond 30 we use the normal quantile.
double t_critical(std::uint64_t df, double level) {
  static constexpr double t95[] = {
      12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
      2.201,  2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
      2.080,  2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042};
  static constexpr double t90[] = {
      6.314, 2.920, 2.353, 2.132, 2.015, 1.943, 1.895, 1.860, 1.833, 1.812,
      1.796, 1.782, 1.771, 1.761, 1.753, 1.746, 1.740, 1.734, 1.729, 1.725,
      1.721, 1.717, 1.714, 1.711, 1.708, 1.706, 1.703, 1.701, 1.699, 1.697};
  static constexpr double t99[] = {
      63.657, 9.925, 5.841, 4.604, 4.032, 3.707, 3.499, 3.355, 3.250, 3.169,
      3.106,  3.055, 3.012, 2.977, 2.947, 2.921, 2.898, 2.878, 2.861, 2.845,
      2.831,  2.819, 2.807, 2.797, 2.787, 2.779, 2.771, 2.763, 2.756, 2.750};
  const double* table = t95;
  double z = 1.960;
  if (level <= 0.905) {
    table = t90;
    z = 1.645;
  } else if (level >= 0.985) {
    table = t99;
    z = 2.576;
  }
  if (df == 0) return 0.0;
  if (df <= 30) return table[df - 1];
  return z;
}
}  // namespace

double OnlineStats::ci_half_width(double level) const {
  if (n_ < 2) return 0.0;
  const double se = stddev() / std::sqrt(static_cast<double>(n_));
  return t_critical(n_ - 1, level) * se;
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), bins_(bins, 0) {
  assert(hi > lo && bins > 0);
}

void Histogram::add(double x) {
  ++total_;
  std::size_t idx;
  if (x < lo_) {
    ++underflow_;
    idx = 0;
  } else if (x >= hi_) {
    ++overflow_;
    idx = bins_.size() - 1;
  } else {
    idx = static_cast<std::size_t>((x - lo_) / (hi_ - lo_) *
                                   static_cast<double>(bins_.size()));
    idx = std::min(idx, bins_.size() - 1);
  }
  ++bins_[idx];
}

double Histogram::quantile(double q) const {
  assert(q >= 0.0 && q <= 1.0);
  if (total_ == 0) return lo_;
  const double target = q * static_cast<double>(total_);
  double cum = 0.0;
  const double width = (hi_ - lo_) / static_cast<double>(bins_.size());
  for (std::size_t i = 0; i < bins_.size(); ++i) {
    const double next = cum + static_cast<double>(bins_[i]);
    if (next >= target) {
      const double frac =
          bins_[i] == 0 ? 0.0 : (target - cum) / static_cast<double>(bins_[i]);
      return lo_ + (static_cast<double>(i) + frac) * width;
    }
    cum = next;
  }
  return hi_;
}

std::string Histogram::ascii(std::size_t width) const {
  std::ostringstream os;
  const std::uint64_t peak =
      *std::max_element(bins_.begin(), bins_.end());
  const double bin_width = (hi_ - lo_) / static_cast<double>(bins_.size());
  for (std::size_t i = 0; i < bins_.size(); ++i) {
    const double lo = lo_ + static_cast<double>(i) * bin_width;
    os << "[" << lo << ", " << lo + bin_width << ") ";
    const std::size_t bar =
        peak == 0 ? 0
                  : static_cast<std::size_t>(
                        static_cast<double>(bins_[i]) /
                        static_cast<double>(peak) * static_cast<double>(width));
    os << std::string(bar, '#') << " " << bins_[i] << "\n";
  }
  return os.str();
}

void TimeWeighted::update(SimTime now, double value) {
  assert(now >= last_change_);
  integral_ += value_ * (now - last_change_).to_seconds();
  value_ = value;
  peak_ = std::max(peak_, value);
  last_change_ = now;
}

double TimeWeighted::average(SimTime now) const {
  const double span = (now - start_).to_seconds();
  if (span <= 0.0) return value_;
  const double total =
      integral_ + value_ * (now - last_change_).to_seconds();
  return total / span;
}

void BusyTracker::set_busy(SimTime now, bool busy) {
  if (busy == busy_) return;
  if (busy_) accumulated_ += now - since_;
  busy_ = busy;
  since_ = now;
}

SimTime BusyTracker::busy_time(SimTime now) const {
  SimTime t = accumulated_;
  if (busy_) t += now - since_;
  return t;
}

double BusyTracker::utilization(SimTime now) const {
  if (now.is_zero()) return 0.0;
  return busy_time(now) / now;
}

}  // namespace tmc::sim
