// tmcsim -- statistics accumulators for simulation output analysis.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/time.h"

namespace tmc::sim {

/// Streaming mean/variance via Welford's algorithm. O(1) memory.
class OnlineStats {
 public:
  void add(double x);
  void merge(const OnlineStats& other);
  void reset();

  [[nodiscard]] std::uint64_t count() const { return n_; }
  [[nodiscard]] double mean() const { return n_ ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 for n < 2.
  [[nodiscard]] double variance() const;
  [[nodiscard]] double stddev() const;
  /// Coefficient of variation (stddev / mean); 0 if mean == 0.
  [[nodiscard]] double cv() const;
  [[nodiscard]] double min() const { return n_ ? min_ : 0.0; }
  [[nodiscard]] double max() const { return n_ ? max_ : 0.0; }
  [[nodiscard]] double sum() const { return n_ ? mean_ * static_cast<double>(n_) : 0.0; }

  /// Half-width of the confidence interval around the mean, using Student's
  /// t for small samples (two-sided, level in {0.90, 0.95, 0.99}).
  [[nodiscard]] double ci_half_width(double level = 0.95) const;

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Fixed-bin histogram over [lo, hi); out-of-range samples clamp into the
/// first/last bin and are counted separately.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);
  [[nodiscard]] std::uint64_t count() const { return total_; }
  [[nodiscard]] std::uint64_t bin_count(std::size_t i) const { return bins_.at(i); }
  [[nodiscard]] std::size_t bin_count_size() const { return bins_.size(); }
  [[nodiscard]] std::uint64_t underflow() const { return underflow_; }
  [[nodiscard]] std::uint64_t overflow() const { return overflow_; }
  [[nodiscard]] double lo() const { return lo_; }
  [[nodiscard]] double hi() const { return hi_; }
  /// x such that approximately `q` (in [0,1]) of the mass lies below it,
  /// interpolated within the containing bin.
  [[nodiscard]] double quantile(double q) const;
  [[nodiscard]] std::string ascii(std::size_t width = 50) const;

 private:
  double lo_;
  double hi_;
  std::vector<std::uint64_t> bins_;
  std::uint64_t total_ = 0;
  std::uint64_t underflow_ = 0;
  std::uint64_t overflow_ = 0;
};

/// Time-weighted average of a piecewise-constant signal (queue lengths,
/// busy/idle state, memory in use). Integrates value x dt.
class TimeWeighted {
 public:
  /// `start` is the instant observation begins.
  explicit TimeWeighted(SimTime start = SimTime::zero())
      : last_change_(start), start_(start) {}

  /// Records that the signal changed to `value` at time `now`.
  void update(SimTime now, double value);

  /// Time-average over [start, now].
  [[nodiscard]] double average(SimTime now) const;
  [[nodiscard]] double current() const { return value_; }
  [[nodiscard]] double peak() const { return peak_; }

 private:
  SimTime last_change_;
  SimTime start_;
  double value_ = 0.0;
  double integral_ = 0.0;
  double peak_ = 0.0;
};

/// Tracks busy intervals of a single server (CPU, link) for utilisation.
class BusyTracker {
 public:
  void set_busy(SimTime now, bool busy);
  [[nodiscard]] bool busy() const { return busy_; }
  /// Fraction of [0, now] spent busy.
  [[nodiscard]] double utilization(SimTime now) const;
  [[nodiscard]] SimTime busy_time(SimTime now) const;

 private:
  bool busy_ = false;
  SimTime since_;
  SimTime accumulated_;
};

}  // namespace tmc::sim
