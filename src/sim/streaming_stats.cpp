#include "sim/streaming_stats.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace tmc::sim {

P2Quantile::P2Quantile(double q) : q_(q) {
  assert(q > 0.0 && q < 1.0);
  rate_ = {0.0, q_ / 2.0, q_, (1.0 + q_) / 2.0, 1.0};
}

void P2Quantile::add(double x) {
  if (n_ < 5) {
    height_[n_++] = x;
    if (n_ == 5) {
      std::sort(height_.begin(), height_.end());
      for (std::size_t i = 0; i < 5; ++i) {
        pos_[i] = static_cast<std::int64_t>(i) + 1;
        desired_[i] = 1.0 + 4.0 * rate_[i];
      }
    }
    return;
  }

  // Locate the cell containing x and update the extreme markers.
  std::size_t k;
  if (x < height_[0]) {
    height_[0] = x;
    k = 0;
  } else if (x < height_[1]) {
    k = 0;
  } else if (x < height_[2]) {
    k = 1;
  } else if (x < height_[3]) {
    k = 2;
  } else if (x <= height_[4]) {
    k = 3;
  } else {
    height_[4] = x;
    k = 3;
  }
  ++n_;
  for (std::size_t i = k + 1; i < 5; ++i) ++pos_[i];
  for (std::size_t i = 0; i < 5; ++i) desired_[i] += rate_[i];

  // Nudge the three interior markers toward their desired positions with a
  // piecewise-parabolic (PP) height prediction, falling back to linear when
  // the parabola would leave the bracketing heights.
  for (std::size_t i = 1; i <= 3; ++i) {
    const double d = desired_[i] - static_cast<double>(pos_[i]);
    const bool up = d >= 1.0 && pos_[i + 1] - pos_[i] > 1;
    const bool down = d <= -1.0 && pos_[i - 1] - pos_[i] < -1;
    if (!up && !down) continue;
    const double ds = up ? 1.0 : -1.0;
    const double np = static_cast<double>(pos_[i + 1] - pos_[i]);
    const double nm = static_cast<double>(pos_[i - 1] - pos_[i]);
    const double hp = (height_[i + 1] - height_[i]) / np;
    const double hm = (height_[i - 1] - height_[i]) / nm;
    double h =
        height_[i] + ds / (np - nm) * ((ds - nm) * hp + (np - ds) * hm);
    if (h <= height_[i - 1] || h >= height_[i + 1]) {
      // Linear fallback toward the neighbour in the move direction.
      const std::size_t j = up ? i + 1 : i - 1;
      h = height_[i] + ds * (height_[j] - height_[i]) /
                           static_cast<double>(pos_[j] - pos_[i]);
    }
    height_[i] = h;
    pos_[i] += up ? 1 : -1;
  }
}

double P2Quantile::value() const {
  if (n_ == 0) return 0.0;
  if (n_ < 5) {
    std::vector<double> sorted(
        height_.begin(), height_.begin() + static_cast<std::ptrdiff_t>(n_));
    std::sort(sorted.begin(), sorted.end());
    return sorted_quantile(sorted, q_);
  }
  return height_[2];
}

double P2Quantile::min() const {
  if (n_ == 0) return 0.0;
  if (n_ < 5)
    return *std::min_element(
        height_.begin(), height_.begin() + static_cast<std::ptrdiff_t>(n_));
  return height_[0];
}

double P2Quantile::max() const {
  if (n_ == 0) return 0.0;
  if (n_ < 5)
    return *std::max_element(
        height_.begin(), height_.begin() + static_cast<std::ptrdiff_t>(n_));
  return height_[4];
}

ReservoirSample::ReservoirSample(std::size_t capacity, std::uint64_t seed)
    : capacity_(capacity), rng_(seed) {
  assert(capacity > 0);
  heap_.reserve(capacity);
}

void ReservoirSample::add(double value, double weight) {
  assert(weight > 0.0);
  ++seen_;
  // A-Res key: u^(1/w). Computed in log space as exp(log(u)/w) for
  // numerical stability with extreme weights.
  double u = rng_.uniform01();
  if (u <= 0.0) u = 0x1.0p-53;
  const double key = std::exp(std::log(u) / weight);
  const auto by_key = [](const Item& a, const Item& b) {
    return a.key > b.key;  // min-heap on key
  };
  if (heap_.size() < capacity_) {
    heap_.push_back({key, value});
    std::push_heap(heap_.begin(), heap_.end(), by_key);
    return;
  }
  if (key <= heap_.front().key) return;
  std::pop_heap(heap_.begin(), heap_.end(), by_key);
  heap_.back() = {key, value};
  std::push_heap(heap_.begin(), heap_.end(), by_key);
}

std::vector<double> ReservoirSample::sorted_values() const {
  std::vector<double> values;
  values.reserve(heap_.size());
  for (const Item& item : heap_) values.push_back(item.value);
  std::sort(values.begin(), values.end());
  return values;
}

double ReservoirSample::quantile(double q) const {
  return sorted_quantile(sorted_values(), q);
}

double sorted_quantile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  assert(q >= 0.0 && q <= 1.0);
  const double rank = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

WindowedRate::WindowedRate(SimTime width) : width_(width) {
  assert(width > SimTime::zero());
}

void WindowedRate::close_through(std::int64_t window) {
  const double per_second = 1.0 / (static_cast<double>(width_.ns()) * 1e-9);
  while (open_window_ < window) {
    rates_.add(open_amount_ * per_second);
    open_amount_ = 0.0;
    ++open_window_;
  }
}

void WindowedRate::record(SimTime now, double amount) {
  const std::int64_t window = now.ns() / width_.ns();
  assert(window >= open_window_);
  close_through(window);
  open_amount_ += amount;
}

void WindowedRate::finish(SimTime end) {
  const std::int64_t window = end.ns() / width_.ns();
  if (window >= open_window_) close_through(window);
}

}  // namespace tmc::sim
