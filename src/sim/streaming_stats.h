// tmcsim -- O(1)-memory streaming statistics for sustained serving.
//
// The closed-batch experiments buffer every response sample; a sustained
// open-arrival run serving millions of jobs cannot. This header provides
// the estimators the serving harness (core/serve.h) keeps per job class:
//
//  * P2Quantile -- the P-squared algorithm (Jain & Chlamtac, CACM 1985):
//    one quantile tracked with five markers, constant memory, no buffer.
//  * QuantileTrio -- the serving report's p50/p95/p99 as three P2 markers.
//  * ReservoirSample -- weighted reservoir sampling (Efraimidis &
//    Spirtakis A-Res): a fixed-capacity, seed-deterministic sample of the
//    stream usable for exact-style post-hoc quantiles and export.
//  * WindowedRate -- per-window event rates of a simulated-time stream
//    (jobs/sec over fixed windows), with summary stats over the windows.
//
// All estimators are deterministic: identical input sequences (and seeds,
// for the reservoir) produce bit-identical state at any --threads value,
// which the differential tests in tests/sim/test_streaming_stats.cpp and
// the serve_sustained golden table pin.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "sim/rng.h"
#include "sim/stats.h"
#include "sim/time.h"

namespace tmc::sim {

/// Streaming estimate of a single quantile q in (0, 1) via the P-squared
/// algorithm: five markers (min, q/2, q, (1+q)/2, max) whose heights are
/// adjusted with a piecewise-parabolic fit as observations arrive. O(1)
/// memory and O(1) per add; exact until the fifth observation.
class P2Quantile {
 public:
  explicit P2Quantile(double q);

  void add(double x);

  /// Current estimate (exact for count() < 5; the middle marker after).
  [[nodiscard]] double value() const;
  [[nodiscard]] double quantile() const { return q_; }
  [[nodiscard]] std::uint64_t count() const { return n_; }
  /// Lowest / highest observation so far (markers 0 and 4).
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;

 private:
  double q_;
  std::uint64_t n_ = 0;
  std::array<double, 5> height_{};    // marker heights (sorted)
  std::array<std::int64_t, 5> pos_{}; // actual marker positions (1-based)
  std::array<double, 5> desired_{};   // desired positions
  std::array<double, 5> rate_{};      // desired-position increments
};

/// The serving report's three response-time quantiles as P2 estimators.
struct QuantileTrio {
  P2Quantile p50{0.50};
  P2Quantile p95{0.95};
  P2Quantile p99{0.99};

  void add(double x) {
    p50.add(x);
    p95.add(x);
    p99.add(x);
  }
  [[nodiscard]] std::uint64_t count() const { return p50.count(); }
};

/// Weighted reservoir sample (Efraimidis & Spirtakis algorithm A-Res):
/// keeps the `capacity` stream items with the largest keys u^(1/w), so an
/// item's inclusion probability grows with its weight and a weight-1 stream
/// degenerates to classic uniform reservoir sampling. With capacity >= the
/// stream length every item is kept, which makes the reservoir an *exact*
/// sample -- the differential tests use that to cross-check the P2
/// estimates. One uniform draw per add; deterministic from the seed.
class ReservoirSample {
 public:
  ReservoirSample(std::size_t capacity, std::uint64_t seed);

  void add(double value, double weight = 1.0);

  [[nodiscard]] std::size_t size() const { return heap_.size(); }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  [[nodiscard]] std::uint64_t seen() const { return seen_; }

  /// Sample values in ascending order (copies; the heap stays intact).
  [[nodiscard]] std::vector<double> sorted_values() const;

  /// Empirical quantile of the sample with linear interpolation between
  /// order statistics. Returns 0 for an empty reservoir.
  [[nodiscard]] double quantile(double q) const;

 private:
  struct Item {
    double key;
    double value;
  };

  std::size_t capacity_;
  Rng rng_;
  std::vector<Item> heap_;  // min-heap on key: heap_[0] is the evictee
  std::uint64_t seen_ = 0;
};

/// Empirical quantile of an ascending-sorted buffer, interpolated between
/// order statistics (the exact reference the streaming estimators are
/// tested against; also used by ReservoirSample::quantile).
[[nodiscard]] double sorted_quantile(const std::vector<double>& sorted,
                                     double q);

/// Event rate of a simulated-time stream over fixed windows: record(now)
/// counts an event into the window containing `now`; every *completed*
/// window (including empty ones between events) contributes one per-window
/// rate to the summary. O(1) memory -- only the open window is held.
class WindowedRate {
 public:
  explicit WindowedRate(SimTime width);

  void record(SimTime now, double amount = 1.0);
  /// Closes every window ending at or before `end`. Call once when the
  /// stream stops; recording after finish() is undefined.
  void finish(SimTime end);

  /// Per-window rates (events per second), over completed windows only.
  [[nodiscard]] const OnlineStats& rates() const { return rates_; }
  [[nodiscard]] SimTime width() const { return width_; }
  /// Amount accumulated in the currently open window.
  [[nodiscard]] double open_window_amount() const { return open_amount_; }

 private:
  void close_through(std::int64_t window);

  SimTime width_;
  std::int64_t open_window_ = 0;
  double open_amount_ = 0.0;
  OnlineStats rates_;
};

}  // namespace tmc::sim
