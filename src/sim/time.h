// tmcsim -- simulation time.
//
// Simulated time is an integer count of nanoseconds wrapped in a strong type.
// An integer clock keeps every replication bit-for-bit deterministic: two runs
// with the same seed produce identical event orderings on any platform.
#pragma once

#include <compare>
#include <cstdint>
#include <iosfwd>
#include <limits>

namespace tmc::sim {

/// A point in (or duration of) simulated time, in nanoseconds.
///
/// SimTime is used for both instants and durations; the arithmetic provided
/// is the subset that is meaningful for either use. Construction goes through
/// the named factories (`nanoseconds`, `microseconds`, ...) so call sites
/// carry their unit.
class SimTime {
 public:
  constexpr SimTime() = default;

  [[nodiscard]] static constexpr SimTime nanoseconds(std::int64_t ns) {
    return SimTime(ns);
  }
  [[nodiscard]] static constexpr SimTime microseconds(std::int64_t us) {
    return SimTime(us * 1'000);
  }
  [[nodiscard]] static constexpr SimTime milliseconds(std::int64_t ms) {
    return SimTime(ms * 1'000'000);
  }
  [[nodiscard]] static constexpr SimTime seconds(std::int64_t s) {
    return SimTime(s * 1'000'000'000);
  }
  /// Largest representable time; used as an "infinite" deadline.
  [[nodiscard]] static constexpr SimTime max() {
    return SimTime(std::numeric_limits<std::int64_t>::max());
  }
  [[nodiscard]] static constexpr SimTime zero() { return SimTime(0); }

  [[nodiscard]] constexpr std::int64_t ns() const { return ns_; }
  [[nodiscard]] constexpr double to_seconds() const {
    return static_cast<double>(ns_) * 1e-9;
  }
  [[nodiscard]] constexpr double to_milliseconds() const {
    return static_cast<double>(ns_) * 1e-6;
  }
  [[nodiscard]] constexpr bool is_zero() const { return ns_ == 0; }
  [[nodiscard]] constexpr bool is_negative() const { return ns_ < 0; }

  constexpr auto operator<=>(const SimTime&) const = default;

  constexpr SimTime& operator+=(SimTime rhs) {
    ns_ += rhs.ns_;
    return *this;
  }
  constexpr SimTime& operator-=(SimTime rhs) {
    ns_ -= rhs.ns_;
    return *this;
  }
  friend constexpr SimTime operator+(SimTime a, SimTime b) { return a += b; }
  friend constexpr SimTime operator-(SimTime a, SimTime b) { return a -= b; }
  friend constexpr SimTime operator*(SimTime a, std::int64_t k) {
    return SimTime(a.ns_ * k);
  }
  friend constexpr SimTime operator*(std::int64_t k, SimTime a) { return a * k; }
  friend constexpr SimTime operator/(SimTime a, std::int64_t k) {
    return SimTime(a.ns_ / k);
  }
  /// Ratio of two durations (e.g. utilisation computations).
  friend constexpr double operator/(SimTime a, SimTime b) {
    return static_cast<double>(a.ns_) / static_cast<double>(b.ns_);
  }

 private:
  explicit constexpr SimTime(std::int64_t ns) : ns_(ns) {}
  std::int64_t ns_ = 0;
};

std::ostream& operator<<(std::ostream& os, SimTime t);

/// Scales a duration by a real factor, rounding to the nearest nanosecond.
[[nodiscard]] constexpr SimTime scale(SimTime t, double factor) {
  const double scaled = static_cast<double>(t.ns()) * factor;
  return SimTime::nanoseconds(
      static_cast<std::int64_t>(scaled + (scaled >= 0 ? 0.5 : -0.5)));
}

}  // namespace tmc::sim
