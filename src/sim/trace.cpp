#include "sim/trace.h"

#include <iomanip>

namespace tmc::sim {
namespace {
std::string_view category_name(TraceCategory cat) {
  switch (cat) {
    case TraceCategory::kKernel: return "kernel";
    case TraceCategory::kCpu: return "cpu";
    case TraceCategory::kNetwork: return "net";
    case TraceCategory::kMemory: return "mem";
    case TraceCategory::kScheduler: return "sched";
    case TraceCategory::kProcess: return "proc";
    case TraceCategory::kAll: return "all";
  }
  return "?";
}
}  // namespace

void Tracer::emit(SimTime now, TraceCategory cat, std::string_view component,
                  std::string_view message) const {
  if (!enabled(cat) || !sink_) return;
  std::ostringstream os;
  os << std::fixed << std::setprecision(6) << now.to_seconds() << " ["
     << category_name(cat) << "] " << component << ": " << message;
  sink_(os.str());
}

}  // namespace tmc::sim
