#include "sim/trace.h"

namespace tmc::sim {

std::string_view trace_category_name(TraceCategory cat) {
  switch (cat) {
    case TraceCategory::kKernel: return "kernel";
    case TraceCategory::kCpu: return "cpu";
    case TraceCategory::kNetwork: return "net";
    case TraceCategory::kMemory: return "mem";
    case TraceCategory::kScheduler: return "sched";
    case TraceCategory::kProcess: return "proc";
    case TraceCategory::kAll: return "all";
  }
  return "?";
}

void Tracer::emit(SimTime now, TraceCategory cat, std::string_view component,
                  std::string_view message) const {
  if (struct_sink_ && (struct_mask_ & static_cast<unsigned>(cat)) != 0) {
    struct_sink_(now, cat, component, message);
  }
  if (!sink_ || (mask_ & static_cast<unsigned>(cat)) == 0) return;
  // Reused per-thread line buffer: the prefix format ("<sec> [cat] comp: ")
  // matches the historic ostringstream output byte for byte.
  thread_local std::string line;
  line.clear();
  char head[32];
  const int n = std::snprintf(head, sizeof head, "%.6f", now.to_seconds());
  if (n > 0) line.append(head, static_cast<std::size_t>(n));
  line.append(" [");
  line.append(trace_category_name(cat));
  line.append("] ");
  line.append(component);
  line.append(": ");
  line.append(message);
  sink_(line);
}

}  // namespace tmc::sim
