// tmcsim -- lightweight event tracing.
//
// Tracing is off by default and has negligible cost when disabled (a branch
// on an enum). Components emit category-tagged lines; the experiment harness
// can route them to stderr or a file for debugging runs.
#pragma once

#include <functional>
#include <sstream>
#include <string>
#include <string_view>

#include "sim/time.h"

namespace tmc::sim {

enum class TraceCategory : unsigned {
  kKernel = 1u << 0,
  kCpu = 1u << 1,
  kNetwork = 1u << 2,
  kMemory = 1u << 3,
  kScheduler = 1u << 4,
  kProcess = 1u << 5,
  kAll = ~0u,
};

/// Per-simulation trace sink. Disabled (mask 0) unless configured.
class Tracer {
 public:
  using Sink = std::function<void(std::string_view line)>;

  /// A null sink cannot consume lines, so it forces the mask to 0: enabled()
  /// stays false, components skip building trace strings, and emit() stays
  /// a no-op instead of invoking an empty std::function.
  void enable(unsigned mask, Sink sink) {
    mask_ = sink ? mask : 0;
    sink_ = std::move(sink);
  }
  void disable() {
    mask_ = 0;
    sink_ = nullptr;
  }

  [[nodiscard]] bool enabled(TraceCategory cat) const {
    return (mask_ & static_cast<unsigned>(cat)) != 0;
  }

  void emit(SimTime now, TraceCategory cat, std::string_view component,
            std::string_view message) const;

 private:
  unsigned mask_ = 0;
  Sink sink_;
};

/// Convenience macro: evaluates the message expression only when the
/// category is live.
#define TMC_TRACE(tracer, now, cat, component, expr)            \
  do {                                                          \
    if ((tracer).enabled(cat)) {                                \
      std::ostringstream tmc_trace_os;                          \
      tmc_trace_os << expr;                                     \
      (tracer).emit((now), (cat), (component), tmc_trace_os.str()); \
    }                                                           \
  } while (0)

}  // namespace tmc::sim
