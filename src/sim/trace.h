// tmcsim -- lightweight event tracing.
//
// Tracing is off by default and has negligible cost when disabled (a branch
// on an enum). Components emit category-tagged lines; the experiment harness
// can route them to stderr or a file for debugging runs, and/or to a
// structured sink (the obs timeline) that receives the raw pieces instead of
// a formatted line.
//
// The hot path allocates nothing: TMC_TRACE formats into a thread-local
// scratch buffer via TraceLine (integers through std::to_chars, doubles
// through snprintf) instead of a per-line std::ostringstream.
#pragma once

#include <charconv>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <string>
#include <string_view>
#include <type_traits>

#include "sim/time.h"

namespace tmc::sim {

enum class TraceCategory : unsigned {
  kKernel = 1u << 0,
  kCpu = 1u << 1,
  kNetwork = 1u << 2,
  kMemory = 1u << 3,
  kScheduler = 1u << 4,
  kProcess = 1u << 5,
  kAll = ~0u,
};

/// Short lowercase name ("cpu", "net", ...) for a single category bit.
[[nodiscard]] std::string_view trace_category_name(TraceCategory cat);

/// Append-only formatter over a borrowed std::string. Supports the stream
/// idiom (`line << "p" << id << " took " << ms << "ms"`) without ostream
/// machinery: integrals go through std::to_chars, doubles through snprintf
/// with ostream-default precision, so existing trace output is unchanged.
class TraceLine {
 public:
  explicit TraceLine(std::string& buf) : buf_(&buf) {}

  /// A TraceLine over a cleared thread-local scratch buffer -- the TMC_TRACE
  /// fast path. The buffer is reused by the next scratch() call on the same
  /// thread, so consume view() before then.
  static TraceLine scratch() {
    thread_local std::string buf;
    buf.clear();
    return TraceLine(buf);
  }

  [[nodiscard]] std::string_view view() const { return *buf_; }

  TraceLine& operator<<(std::string_view s) {
    buf_->append(s);
    return *this;
  }
  TraceLine& operator<<(const char* s) {
    buf_->append(s);
    return *this;
  }
  TraceLine& operator<<(const std::string& s) {
    buf_->append(s);
    return *this;
  }
  TraceLine& operator<<(char c) {
    buf_->push_back(c);
    return *this;
  }
  TraceLine& operator<<(bool v) {
    buf_->append(v ? "true" : "false");
    return *this;
  }
  template <typename T,
            typename = std::enable_if_t<std::is_integral_v<T> &&
                                        !std::is_same_v<T, bool> &&
                                        !std::is_same_v<T, char>>>
  TraceLine& operator<<(T v) {
    char tmp[24];
    const auto [ptr, ec] = std::to_chars(tmp, tmp + sizeof tmp, v);
    buf_->append(tmp, static_cast<std::size_t>(ptr - tmp));
    return *this;
  }
  TraceLine& operator<<(double v) {
    char tmp[32];
    const int n = std::snprintf(tmp, sizeof tmp, "%g", v);
    if (n > 0) buf_->append(tmp, static_cast<std::size_t>(n));
    return *this;
  }

 private:
  std::string* buf_;
};

/// Per-simulation trace sink. Disabled (mask 0) unless configured. Two
/// independent outputs share the emit path: a line sink (formatted text) and
/// a structured sink (raw fields -- used by obs to turn legacy trace lines
/// into timeline records). enabled() is the union, so call sites build the
/// message whenever either consumer wants the category.
class Tracer {
 public:
  using Sink = std::function<void(std::string_view line)>;
  using StructuredSink = std::function<void(
      SimTime now, TraceCategory cat, std::string_view component,
      std::string_view message)>;

  /// A null sink cannot consume lines, so it forces the mask to 0: enabled()
  /// stays false, components skip building trace strings, and emit() stays
  /// a no-op instead of invoking an empty std::function.
  void enable(unsigned mask, Sink sink) {
    mask_ = sink ? mask : 0;
    sink_ = std::move(sink);
  }
  void disable() {
    mask_ = 0;
    sink_ = nullptr;
  }

  /// Same contract for the structured consumer (independent mask).
  void enable_structured(unsigned mask, StructuredSink sink) {
    struct_mask_ = sink ? mask : 0;
    struct_sink_ = std::move(sink);
  }
  void disable_structured() {
    struct_mask_ = 0;
    struct_sink_ = nullptr;
  }

  [[nodiscard]] bool enabled(TraceCategory cat) const {
    return ((mask_ | struct_mask_) & static_cast<unsigned>(cat)) != 0;
  }

  void emit(SimTime now, TraceCategory cat, std::string_view component,
            std::string_view message) const;

 private:
  unsigned mask_ = 0;
  unsigned struct_mask_ = 0;
  Sink sink_;
  StructuredSink struct_sink_;
};

/// Convenience macro: evaluates the message expression only when the
/// category is live, formatting into a thread-local scratch buffer.
#define TMC_TRACE(tracer, now, cat, component, expr)                  \
  do {                                                                \
    if ((tracer).enabled(cat)) {                                      \
      ::tmc::sim::TraceLine tmc_trace_line =                          \
          ::tmc::sim::TraceLine::scratch();                           \
      tmc_trace_line << expr;                                         \
      (tracer).emit((now), (cat), (component), tmc_trace_line.view()); \
    }                                                                 \
  } while (0)

}  // namespace tmc::sim
