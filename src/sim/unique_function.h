// tmcsim -- move-only type-erased callable with small-buffer optimization.
//
// Event callbacks and allocation grants frequently capture RAII resources
// (e.g. mem::Block), which are move-only; std::function requires copyable
// callables and std::move_only_function is C++23. This is the minimal
// move-only equivalent we need.
//
// The event kernel constructs and destroys one of these per scheduled event,
// so typical lambdas (a few pointers of captured state) must not touch the
// heap: callables up to kInlineSize bytes that are nothrow-move-constructible
// live in an inline buffer; larger (or throwing-move) callables fall back to
// a heap allocation. Dispatch is a three-entry vtable of plain function
// pointers rather than a virtual base, so the inline case is a single
// indirect call with no allocation anywhere.
#pragma once

#include <cstddef>
#include <cstring>
#include <functional>
#include <new>
#include <type_traits>
#include <utility>

namespace tmc::sim {

template <typename Signature>
class UniqueFunction;

template <typename R, typename... Args>
class UniqueFunction<R(Args...)> {
 public:
  /// Callables at most this large (and at most kInlineAlign-aligned) with a
  /// non-throwing move constructor are stored inline; 48 bytes covers the
  /// kernel's event lambdas (a handful of pointers/ids) with room to spare
  /// while keeping the whole object inside one cache line.
  static constexpr std::size_t kInlineSize = 48;
  static constexpr std::size_t kInlineAlign = alignof(std::max_align_t);

  UniqueFunction() = default;
  UniqueFunction(std::nullptr_t) {}  // NOLINT(google-explicit-constructor)

  template <typename F>
    requires(!std::is_same_v<std::decay_t<F>, UniqueFunction> &&
             std::is_invocable_r_v<R, std::decay_t<F>&, Args...>)
  UniqueFunction(F&& f) {  // NOLINT(google-explicit-constructor)
    using D = std::decay_t<F>;
    if constexpr (stores_inline<D>()) {
      ::new (static_cast<void*>(storage_.inline_bytes)) D(std::forward<F>(f));
      vtable_ = &InlineOps<D>::vtable;
    } else {
      storage_.heap = new D(std::forward<F>(f));
      vtable_ = &HeapOps<D>::vtable;
    }
  }

  UniqueFunction(UniqueFunction&& other) noexcept { move_from(other); }
  UniqueFunction& operator=(UniqueFunction&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }
  UniqueFunction(const UniqueFunction&) = delete;
  UniqueFunction& operator=(const UniqueFunction&) = delete;

  ~UniqueFunction() { reset(); }

  R operator()(Args... args) {
    return vtable_->call(storage_, std::forward<Args>(args)...);
  }

  explicit operator bool() const { return vtable_ != nullptr; }

  /// True if the held callable lives in the inline buffer (no heap block).
  /// Empty functions hold nothing and report false.
  [[nodiscard]] bool uses_inline_storage() const {
    return vtable_ != nullptr && vtable_->inline_storage;
  }

  /// Whether a callable of type F would be stored inline.
  template <typename F>
  [[nodiscard]] static constexpr bool stores_inline() {
    return sizeof(F) <= kInlineSize && alignof(F) <= kInlineAlign &&
           std::is_nothrow_move_constructible_v<F>;
  }

 private:
  union Storage {
    alignas(kInlineAlign) std::byte inline_bytes[kInlineSize];
    void* heap;
  };
  struct VTable {
    R (*call)(Storage&, Args&&...);
    /// Move-constructs dst's payload from src's and destroys src's payload.
    /// Null when a raw memcpy of Storage is equivalent (trivially copyable
    /// payloads and heap pointers), so bulk moves -- e.g. the event kernel's
    /// slot pool regrowing -- skip the indirect call entirely.
    void (*relocate)(Storage& dst, Storage& src) noexcept;
    /// Null when destruction is a no-op (trivially destructible payloads).
    void (*destroy)(Storage&) noexcept;
    bool inline_storage;
  };

  template <typename F>
  static F& inline_ref(Storage& s) {
    return *std::launder(reinterpret_cast<F*>(s.inline_bytes));
  }

  template <typename F>
  struct InlineOps {
    static R call(Storage& s, Args&&... args) {
      return std::invoke(inline_ref<F>(s), std::forward<Args>(args)...);
    }
    static void relocate(Storage& dst, Storage& src) noexcept {
      ::new (static_cast<void*>(dst.inline_bytes))
          F(std::move(inline_ref<F>(src)));
      inline_ref<F>(src).~F();
    }
    static void destroy(Storage& s) noexcept { inline_ref<F>(s).~F(); }
    static constexpr VTable vtable{
        &call, std::is_trivially_copyable_v<F> ? nullptr : &relocate,
        std::is_trivially_destructible_v<F> ? nullptr : &destroy, true};
  };

  template <typename F>
  struct HeapOps {
    static F& ref(Storage& s) { return *static_cast<F*>(s.heap); }
    static R call(Storage& s, Args&&... args) {
      return std::invoke(ref(s), std::forward<Args>(args)...);
    }
    static void destroy(Storage& s) noexcept { delete static_cast<F*>(s.heap); }
    // Relocation is just the pointer changing hands: memcpy covers it.
    static constexpr VTable vtable{&call, nullptr, &destroy, false};
  };

  void move_from(UniqueFunction& other) noexcept {
    vtable_ = other.vtable_;
    if (vtable_ != nullptr) {
      if (vtable_->relocate == nullptr) {
        std::memcpy(&storage_, &other.storage_, sizeof(Storage));
      } else {
        vtable_->relocate(storage_, other.storage_);
      }
      other.vtable_ = nullptr;
    }
  }

  void reset() noexcept {
    if (vtable_ != nullptr) {
      if (vtable_->destroy != nullptr) vtable_->destroy(storage_);
      vtable_ = nullptr;
    }
  }

  const VTable* vtable_ = nullptr;
  Storage storage_;
};

}  // namespace tmc::sim
