// tmcsim -- move-only type-erased callable.
//
// Event callbacks and allocation grants frequently capture RAII resources
// (e.g. mem::Block), which are move-only; std::function requires copyable
// callables and std::move_only_function is C++23. This is the minimal
// move-only equivalent we need.
#pragma once

#include <functional>
#include <memory>
#include <type_traits>
#include <utility>

namespace tmc::sim {

template <typename Signature>
class UniqueFunction;

template <typename R, typename... Args>
class UniqueFunction<R(Args...)> {
 public:
  UniqueFunction() = default;
  UniqueFunction(std::nullptr_t) {}  // NOLINT(google-explicit-constructor)

  template <typename F>
    requires(!std::is_same_v<std::decay_t<F>, UniqueFunction> &&
             std::is_invocable_r_v<R, std::decay_t<F>&, Args...>)
  UniqueFunction(F&& f)  // NOLINT(google-explicit-constructor)
      : impl_(std::make_unique<Impl<std::decay_t<F>>>(std::forward<F>(f))) {}

  UniqueFunction(UniqueFunction&&) noexcept = default;
  UniqueFunction& operator=(UniqueFunction&&) noexcept = default;
  UniqueFunction(const UniqueFunction&) = delete;
  UniqueFunction& operator=(const UniqueFunction&) = delete;

  R operator()(Args... args) {
    return impl_->call(std::forward<Args>(args)...);
  }

  explicit operator bool() const { return impl_ != nullptr; }

 private:
  struct Base {
    virtual ~Base() = default;
    virtual R call(Args&&... args) = 0;
  };
  template <typename F>
  struct Impl final : Base {
    explicit Impl(F fn) : f(std::move(fn)) {}
    R call(Args&&... args) override {
      return std::invoke(f, std::forward<Args>(args)...);
    }
    F f;
  };

  std::unique_ptr<Base> impl_;
};

}  // namespace tmc::sim
