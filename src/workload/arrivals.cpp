#include "workload/arrivals.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numbers>
#include <sstream>
#include <stdexcept>

#include "workload/synthetic.h"

namespace tmc::workload {

double ServiceModel::draw(sim::Rng& rng) const {
  double demand_s;
  switch (kind) {
    case Kind::kFixed:
      demand_s = mean_s;
      break;
    case Kind::kExponential:
      demand_s = rng.exponential(mean_s);
      break;
    case Kind::kHyperexponential:
      demand_s = rng.hyperexponential(mean_s, shape);
      break;
    case Kind::kWeibull: {
      // Scale chosen so the distribution mean is mean_s:
      // E[Weibull(k, lambda)] = lambda * Gamma(1 + 1/k).
      const double scale = mean_s / std::tgamma(1.0 + 1.0 / shape);
      demand_s = rng.weibull(shape, scale);
      break;
    }
    case Kind::kPareto: {
      // Minimum chosen so the mean is mean_s: E = alpha*xm/(alpha-1).
      assert(shape > 1.0);
      const double xm = mean_s * (shape - 1.0) / shape;
      demand_s = rng.pareto(shape, xm);
      break;
    }
    default:
      demand_s = mean_s;
      break;
  }
  if (cap_s > 0.0 && demand_s > cap_s) demand_s = cap_s;
  // Floor of 0.1 ms: the heavy-tail inverses can produce demands below any
  // schedulable quantum, which would make stretch denominators meaningless.
  return std::max(demand_s, 1e-4);
}

std::string_view to_string(ServiceModel::Kind kind) {
  switch (kind) {
    case ServiceModel::Kind::kFixed:
      return "fixed";
    case ServiceModel::Kind::kExponential:
      return "exponential";
    case ServiceModel::Kind::kHyperexponential:
      return "hyperexponential";
    case ServiceModel::Kind::kWeibull:
      return "weibull";
    case ServiceModel::Kind::kPareto:
      return "pareto";
  }
  return "?";
}

double ArrivalProcess::mean_rate_per_s() const {
  switch (kind) {
    case Kind::kPoisson:
      return rate_per_s;
    case Kind::kMmpp: {
      // Stationary state probabilities are proportional to mean sojourns.
      const double total = base_sojourn_s + burst_sojourn_s;
      return (rate_per_s * base_sojourn_s + burst_rate_per_s * burst_sojourn_s) /
             total;
    }
    case Kind::kDiurnal:
      return rate_per_s;  // the sinusoid integrates to zero over a period
    case Kind::kTrace:
      return 0.0;
  }
  return 0.0;
}

std::string_view to_string(ArrivalProcess::Kind kind) {
  switch (kind) {
    case ArrivalProcess::Kind::kPoisson:
      return "poisson";
    case ArrivalProcess::Kind::kMmpp:
      return "mmpp";
    case ArrivalProcess::Kind::kDiurnal:
      return "diurnal";
    case ArrivalProcess::Kind::kTrace:
      return "trace";
  }
  return "?";
}

ArrivalStream::ArrivalStream(ArrivalProcess process,
                             std::vector<JobClass> classes, std::uint64_t seed)
    : process_(std::move(process)),
      classes_(std::move(classes)),
      rng_(seed) {
  if (classes_.empty()) {
    throw std::invalid_argument("arrival stream needs at least one job class");
  }
  double total = 0.0;
  for (const JobClass& cls : classes_) {
    if (cls.weight <= 0.0) {
      throw std::invalid_argument("job class weights must be positive");
    }
    total += cls.weight;
  }
  cumulative_.reserve(classes_.size());
  double acc = 0.0;
  for (const JobClass& cls : classes_) {
    acc += cls.weight;
    cumulative_.push_back(acc / total);
  }
  if (process_.kind != ArrivalProcess::Kind::kTrace &&
      process_.rate_per_s <= 0.0) {
    throw std::invalid_argument("arrival rate must be positive");
  }
  if (process_.kind == ArrivalProcess::Kind::kDiurnal &&
      (process_.amplitude < 0.0 || process_.amplitude >= 1.0)) {
    throw std::invalid_argument("diurnal amplitude must be in [0, 1)");
  }
  if (process_.kind == ArrivalProcess::Kind::kTrace) {
    trace_.open(process_.trace_path);
    if (!trace_) {
      throw std::runtime_error("cannot open arrival trace: " +
                               process_.trace_path);
    }
  }
}

std::size_t ArrivalStream::draw_class() {
  const double u = rng_.uniform01();
  for (std::size_t i = 0; i + 1 < cumulative_.size(); ++i) {
    if (u < cumulative_[i]) return i;
  }
  return cumulative_.size() - 1;
}

double ArrivalStream::draw_interarrival() {
  switch (process_.kind) {
    case ArrivalProcess::Kind::kPoisson:
      return rng_.exponential(1.0 / process_.rate_per_s);
    case ArrivalProcess::Kind::kMmpp: {
      if (!mmpp_started_) {
        mmpp_started_ = true;
        mmpp_sojourn_left_s_ = rng_.exponential(process_.base_sojourn_s);
      }
      double gap = 0.0;
      for (;;) {
        const double rate = mmpp_state_ == 0 ? process_.rate_per_s
                                             : process_.burst_rate_per_s;
        const double candidate = rng_.exponential(1.0 / rate);
        if (candidate <= mmpp_sojourn_left_s_) {
          mmpp_sojourn_left_s_ -= candidate;
          return gap + candidate;
        }
        // The state flips before the candidate arrival: discard it (the
        // exponential is memoryless) and redraw at the new rate.
        gap += mmpp_sojourn_left_s_;
        mmpp_state_ = 1 - mmpp_state_;
        mmpp_sojourn_left_s_ = rng_.exponential(
            mmpp_state_ == 0 ? process_.base_sojourn_s
                             : process_.burst_sojourn_s);
      }
    }
    case ArrivalProcess::Kind::kDiurnal: {
      // Thinning (Lewis & Shedler): generate at the peak rate, accept a
      // candidate at time t with probability rate(t)/peak.
      const double peak = process_.rate_per_s * (1.0 + process_.amplitude);
      double gap = 0.0;
      for (;;) {
        gap += rng_.exponential(1.0 / peak);
        const double t = clock_s_ + gap;
        const double rate =
            process_.rate_per_s *
            (1.0 + process_.amplitude *
                       std::sin(2.0 * std::numbers::pi * t /
                                process_.period_s));
        if (rng_.uniform01() * peak < rate) return gap;
      }
    }
    case ArrivalProcess::Kind::kTrace:
      break;  // handled by next_trace
  }
  return 0.0;
}

bool ArrivalStream::next_trace(Arrival& out) {
  std::string line;
  while (std::getline(trace_, line)) {
    ++trace_line_;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::istringstream fields(line);
    double at_s;
    std::size_t cls;
    if (!(fields >> at_s)) continue;  // blank / comment-only line
    const auto fail = [this](const char* what) {
      throw std::runtime_error("arrival trace " + process_.trace_path +
                               " line " + std::to_string(trace_line_) + ": " +
                               what);
    };
    if (!(fields >> cls)) fail("missing class index");
    if (cls >= classes_.size()) fail("class index out of range");
    if (at_s < clock_s_) fail("arrival instants must be non-decreasing");
    double demand_s;
    if (fields >> demand_s) {
      if (demand_s <= 0.0) fail("demand must be positive");
    } else {
      demand_s = classes_[cls].service.draw(rng_);
    }
    clock_s_ = at_s;
    out.at_s = at_s;
    out.job_class = cls;
    out.demand_s = demand_s;
    return true;
  }
  return false;
}

bool ArrivalStream::next(Arrival& out) {
  if (process_.kind == ArrivalProcess::Kind::kTrace) return next_trace(out);
  // Fixed draw order -- class, service, interarrival -- see header.
  out.job_class = draw_class();
  out.demand_s = classes_[out.job_class].service.draw(rng_);
  clock_s_ += draw_interarrival();
  out.at_s = clock_s_;
  return true;
}

sched::JobSpec make_arrival_job(const JobClass& cls, const Arrival& arrival) {
  SyntheticParams params;
  params.mean_demand = sim::SimTime::nanoseconds(
      static_cast<std::int64_t>(cls.service.theoretical_mean() * 1e9));
  params.arch = cls.arch;
  params.fixed_processes = cls.processes;
  params.message_bytes = cls.message_bytes;
  params.skew = cls.skew;
  sched::JobSpec spec = make_synthetic_job(
      params, sim::SimTime::nanoseconds(
                  static_cast<std::int64_t>(arrival.demand_s * 1e9)));
  spec.app = cls.name;
  return spec;
}

}  // namespace tmc::workload
