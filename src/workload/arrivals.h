// tmcsim -- open-arrival traffic generation (sustained serving).
//
// The paper runs closed 16-job batches; the serving experiments drive the
// machine with an *open* stream: jobs arrive according to a stochastic
// process, belong to one of several tenant classes, and draw their service
// demand from a per-class distribution. This library owns all of that:
//
//  * ServiceModel -- per-class service-demand distributions, from the
//    paper's fixed sizes through exponential up to the heavy-tailed
//    Weibull (shape < 1) and truncated Pareto mixes of the DFRS workload
//    literature (Casanova et al., arXiv:1106.4985).
//  * JobClass -- a tenant class: mix weight, service model, software
//    architecture and fork/join process shape.
//  * ArrivalProcess -- when jobs arrive: stationary Poisson, a 2-state
//    MMPP (bursty), a diurnal sinusoidal rate (thinning), or replay of a
//    trace file (streamed line at a time, O(1) memory).
//  * ArrivalStream -- the deterministic generator: one seeded Rng, a
//    strict per-arrival draw order (class, then service, then
//    interarrival) so refactored callers reproduce their historical
//    streams bit for bit.
//
// bench A10's Poisson harness (core/open_arrivals.cpp) and the sustained
// serving loop (core/serve.cpp) both sit on top of this.
#pragma once

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "sched/job.h"
#include "sim/rng.h"

namespace tmc::workload {

/// Per-class service-demand distribution. `draw` consumes exactly one
/// uniform for every stochastic kind and none for kFixed -- callers rely
/// on that for reproducible stream refactors.
struct ServiceModel {
  enum class Kind {
    kFixed,             // always mean_s; consumes no randomness
    kExponential,       // mean mean_s
    kHyperexponential,  // mean mean_s, coefficient of variation `shape`
    kWeibull,           // mean mean_s, Weibull shape `shape` (< 1 heavy tail)
    kPareto,            // mean mean_s, tail index `shape` (must be > 1)
  };

  Kind kind = Kind::kFixed;
  double mean_s = 1.0;
  /// Shape parameter, meaning depends on kind (see above). Unused by
  /// kFixed / kExponential.
  double shape = 1.0;
  /// Truncation: draws are clamped to [0, cap_s] when cap_s > 0. Pareto
  /// tails with alpha <= 2 have infinite variance; capping keeps single
  /// draws from dominating a finite run.
  double cap_s = 0.0;

  /// One service demand in seconds (kHyperexponential may consume two
  /// uniforms via the branch draw; all other stochastic kinds exactly one).
  [[nodiscard]] double draw(sim::Rng& rng) const;

  /// Mean of the *untruncated* distribution (== mean_s by construction).
  [[nodiscard]] double theoretical_mean() const { return mean_s; }
};

[[nodiscard]] std::string_view to_string(ServiceModel::Kind kind);

/// A tenant job class in a multi-class mix.
struct JobClass {
  std::string name;
  /// Relative mix weight; an arrival belongs to class i with probability
  /// weight_i / sum(weights).
  double weight = 1.0;
  ServiceModel service{};
  sched::SoftwareArch arch = sched::SoftwareArch::kAdaptive;
  /// Process count when arch == kFixed; ignored for kAdaptive (the
  /// partition size decides).
  int processes = 16;
  /// Fork/join message size of the generated synthetic jobs.
  std::size_t message_bytes = 1024;
  /// Intra-job imbalance of the generated jobs (SyntheticParams::skew):
  /// rank 0 becomes a straggler, total demand preserved. 0 = even split.
  double skew = 0.0;
};

/// The arrival-instant process (class and service draws are orthogonal).
struct ArrivalProcess {
  enum class Kind {
    kPoisson,  // stationary, rate rate_per_s
    kMmpp,     // 2-state Markov-modulated Poisson: base + burst states
    kDiurnal,  // sinusoidal rate, thinning against the peak
    kTrace,    // replay arrival instants (and classes) from a file
  };

  Kind kind = Kind::kPoisson;
  /// Mean rate (kPoisson), base-state rate (kMmpp), mean rate (kDiurnal).
  double rate_per_s = 1.0;

  // --- kMmpp ------------------------------------------------------------
  double burst_rate_per_s = 4.0;
  /// Mean sojourn in the base / burst state, seconds.
  double base_sojourn_s = 60.0;
  double burst_sojourn_s = 10.0;

  // --- kDiurnal ---------------------------------------------------------
  /// rate(t) = rate_per_s * (1 + amplitude * sin(2 pi t / period_s)),
  /// amplitude in [0, 1).
  double period_s = 86400.0;
  double amplitude = 0.5;

  // --- kTrace -----------------------------------------------------------
  /// Whitespace-separated lines: `arrival_s class_index [demand_s]`.
  /// Arrival instants must be non-decreasing; a missing demand column
  /// falls back to the class's service model. '#' starts a comment.
  std::string trace_path;

  /// Long-run mean arrival rate of the configured process (trace: 0; the
  /// caller measures instead).
  [[nodiscard]] double mean_rate_per_s() const;
};

[[nodiscard]] std::string_view to_string(ArrivalProcess::Kind kind);

/// One generated arrival.
struct Arrival {
  double at_s = 0.0;          // absolute arrival instant (simulated seconds)
  std::size_t job_class = 0;  // index into the stream's class vector
  double demand_s = 0.0;      // drawn service demand (mean_s for kFixed)
};

/// Deterministic arrival generator. Per arrival the Rng is consumed in a
/// fixed order -- (1) class selection, one uniform via cumulative weights;
/// (2) service draw per the class's model; (3) interarrival draw(s) -- so
/// a caller that previously hand-rolled `bernoulli(class); exponential(gap)`
/// reproduces its historical stream exactly (bench A10's golden table).
class ArrivalStream {
 public:
  ArrivalStream(ArrivalProcess process, std::vector<JobClass> classes,
                std::uint64_t seed);

  /// Generates the next arrival. Returns false at end of stream (only
  /// trace replay ends; the stochastic processes are infinite).
  [[nodiscard]] bool next(Arrival& out);

  [[nodiscard]] const std::vector<JobClass>& classes() const {
    return classes_;
  }
  [[nodiscard]] const JobClass& job_class(std::size_t i) const {
    return classes_[i];
  }
  [[nodiscard]] const ArrivalProcess& process() const { return process_; }

 private:
  [[nodiscard]] std::size_t draw_class();
  [[nodiscard]] double draw_interarrival();
  [[nodiscard]] bool next_trace(Arrival& out);

  ArrivalProcess process_;
  std::vector<JobClass> classes_;
  std::vector<double> cumulative_;  // cumulative class probabilities
  sim::Rng rng_;
  double clock_s_ = 0.0;

  // MMPP state: 0 = base, 1 = burst.
  int mmpp_state_ = 0;
  double mmpp_sojourn_left_s_ = 0.0;
  bool mmpp_started_ = false;

  std::ifstream trace_;
  std::size_t trace_line_ = 0;
};

/// Builds the fork/join job spec of one arrival of class `cls` (wraps the
/// synthetic workload builder; demand from Arrival::demand_s).
[[nodiscard]] sched::JobSpec make_arrival_job(const JobClass& cls,
                                              const Arrival& arrival);

}  // namespace tmc::workload
