#include "workload/batch.h"

#include <stdexcept>

namespace tmc::workload {

std::string_view to_string(App app) {
  switch (app) {
    case App::kMatMul: return "matmul";
    case App::kSort: return "sort";
  }
  return "?";
}

std::string_view to_string(BatchOrder order) {
  switch (order) {
    case BatchOrder::kInterleaved: return "interleaved";
    case BatchOrder::kSmallestFirst: return "smallest-first";
    case BatchOrder::kLargestFirst: return "largest-first";
  }
  return "?";
}

BatchParams default_batch(App app, sched::SoftwareArch arch) {
  BatchParams params;
  params.app = app;
  params.arch = arch;
  if (app == App::kMatMul) {
    params.small_size = 60;
    params.large_size = 120;
  } else {
    params.small_size = 6000;
    params.large_size = 14000;
  }
  return params;
}

namespace {

sched::JobSpec make_spec(const BatchParams& params, bool large) {
  const std::size_t size = large ? params.large_size : params.small_size;
  if (size == 0) throw std::invalid_argument("batch job size not set");
  switch (params.app) {
    case App::kMatMul: {
      MatMulParams mm;
      mm.n = size;
      mm.arch = params.arch;
      mm.fixed_processes = params.fixed_processes;
      mm.broadcast = params.matmul_broadcast;
      mm.costs = params.costs;
      return make_matmul_job(mm, large);
    }
    case App::kSort: {
      SortParams sp;
      sp.elements = size;
      sp.arch = params.arch;
      sp.fixed_processes = params.fixed_processes;
      sp.skew = params.sort_skew;
      sp.costs = params.costs;
      return make_sort_job(sp, large);
    }
  }
  throw std::invalid_argument("unknown app");
}

/// Size-class sequence for the requested order.
std::vector<bool> class_sequence(const BatchParams& params, BatchOrder order) {
  std::vector<bool> large;
  switch (order) {
    case BatchOrder::kSmallestFirst:
      large.assign(static_cast<std::size_t>(params.small_count), false);
      large.insert(large.end(), static_cast<std::size_t>(params.large_count),
                   true);
      break;
    case BatchOrder::kLargestFirst:
      large.assign(static_cast<std::size_t>(params.large_count), true);
      large.insert(large.end(), static_cast<std::size_t>(params.small_count),
                   false);
      break;
    case BatchOrder::kInterleaved: {
      // One large job at the end of every stride of total/large jobs
      // (positions 3, 7, 11, 15 for the paper's 12+4 batch).
      large.assign(static_cast<std::size_t>(params.total()), false);
      if (params.large_count > 0) {
        const int stride = params.total() / params.large_count;
        int placed = 0;
        for (int i = stride - 1; i < params.total() && placed < params.large_count;
             i += stride, ++placed) {
          large[static_cast<std::size_t>(i)] = true;
        }
        // Counts that do not divide evenly: fill from the back.
        for (int i = params.total() - 1; placed < params.large_count; --i) {
          if (!large[static_cast<std::size_t>(i)]) {
            large[static_cast<std::size_t>(i)] = true;
            ++placed;
          }
        }
      }
      break;
    }
  }
  return large;
}

}  // namespace

std::vector<sched::JobSpec> make_batch(const BatchParams& params,
                                       BatchOrder order) {
  std::vector<sched::JobSpec> specs;
  specs.reserve(static_cast<std::size_t>(params.total()));
  for (bool large : class_sequence(params, order)) {
    specs.push_back(make_spec(params, large));
  }
  return specs;
}

}  // namespace tmc::workload
