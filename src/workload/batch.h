// tmcsim -- batch construction (paper section 5.1).
//
// Every experiment runs a batch of 16 applications: 12 small and 4 large
// jobs, introducing variance in service demand. For the static policy the
// paper reports the average of the best ordering (small jobs first) and the
// worst (large jobs first); the default interleaved order spreads the large
// jobs evenly, which is also how time-sharing deals them over partitions.
#pragma once

#include <vector>

#include "sched/job.h"
#include "workload/costs.h"
#include "workload/matmul.h"
#include "workload/sort.h"

namespace tmc::workload {

enum class App { kMatMul, kSort };

[[nodiscard]] std::string_view to_string(App app);

enum class BatchOrder {
  kInterleaved,    // large jobs spread evenly through the batch
  kSmallestFirst,  // static policy's best case
  kLargestFirst,   // static policy's worst case
};

[[nodiscard]] std::string_view to_string(BatchOrder order);

struct BatchParams {
  App app = App::kMatMul;
  sched::SoftwareArch arch = sched::SoftwareArch::kFixed;
  int small_count = 12;
  int large_count = 4;
  /// Problem sizes per class (matmul: matrix dimension; sort: elements).
  std::size_t small_size = 0;  // 0 = app default
  std::size_t large_size = 0;
  int fixed_processes = 16;
  /// Work-distribution algorithm for matmul jobs (extension bench A8).
  MatMulParams::Broadcast matmul_broadcast =
      MatMulParams::Broadcast::kPointToPoint;
  /// Pivot skew of the sort divide tree (SortParams::skew); matmul ignores
  /// it. 0 = the paper's balanced tree.
  double sort_skew = 0.0;
  Costs costs{};

  [[nodiscard]] int total() const { return small_count + large_count; }
};

/// Paper defaults: matmul 50/100, sort 6000/14000.
[[nodiscard]] BatchParams default_batch(App app, sched::SoftwareArch arch);

/// Builds the batch's job specs in the requested submission order.
[[nodiscard]] std::vector<sched::JobSpec> make_batch(const BatchParams& params,
                                                     BatchOrder order);

}  // namespace tmc::workload
