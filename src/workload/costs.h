// tmcsim -- calibrated application operation costs.
//
// The T805 runs at 25 MHz (~10 MIPS integer, on-chip FPU). The constants
// below set the simulated cost of one inner-loop step of each application
// kernel; they reproduce the time scale of the paper's testbed (a large
// 14000-element selection sort ~ tens of seconds serial). The *shape* of
// the results does not depend on their exact values -- bench A4/A5 sweep the
// scheduling constants, and the experiment harness lets callers override
// these too.
#pragma once

#include <cstddef>

#include "sim/time.h"

namespace tmc::workload {

struct Costs {
  /// One multiply-accumulate step of the matmul inner loop (loads, 64-bit
  /// FP multiply-add on the on-chip FPU, index update): the T805 sustains
  /// roughly 0.5 Mmadd/s in compiled inner loops.
  sim::SimTime t_madd = sim::SimTime::nanoseconds(2000);
  /// One selection-sort inner-loop iteration (compare + conditional index
  /// update), ~10 integer instructions at ~10 MIPS.
  sim::SimTime t_compare = sim::SimTime::nanoseconds(1000);
  /// Per-element cost of the divide phase (scan/copy into the outgoing
  /// sub-array).
  sim::SimTime t_divide = sim::SimTime::nanoseconds(250);
  /// Per-element cost of the two-way merge of sorted sub-arrays.
  sim::SimTime t_merge = sim::SimTime::nanoseconds(500);
  /// Array/matrix element size: 64-bit doubles (the T805 FPU is a 64-bit
  /// unit). Together with the batch sizes this puts multiprogramming level
  /// 16 close to the 4 MB/node limit -- the paper's footnote says the job
  /// sizes were restricted by exactly that constraint.
  std::size_t element_bytes = 8;
  /// Resident cost of one process beyond its arrays: code copy, workspace,
  /// stack, channel descriptors. Each job loads its program onto every node
  /// it uses, so high multiprogramming levels (and the fixed architecture's
  /// 16 processes per job) pay for it 16-fold per node -- one of the
  /// reasons the paper's fixed architecture loses on matmul.
  std::size_t process_overhead_bytes = 64 * 1024;
};

}  // namespace tmc::workload
