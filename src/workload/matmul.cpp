#include "workload/matmul.h"

#include <algorithm>
#include <cassert>

#include "sched/stealing/stealing.h"

namespace tmc::workload {
namespace {

constexpr int kTagWork = 1;
constexpr int kTagResult = 2;

/// Rows of A handled by `rank` when n rows are banded over `procs` ranks.
std::size_t rows_of(std::size_t n, int procs, int rank) {
  const auto p = static_cast<std::size_t>(procs);
  const auto r = static_cast<std::size_t>(rank);
  return n / p + (r < n % p ? 1 : 0);
}

/// First row of `rank`'s band (bands are contiguous in rank order).
std::size_t row_start(std::size_t n, int procs, int rank) {
  const auto p = static_cast<std::size_t>(procs);
  const auto r = static_cast<std::size_t>(rank);
  return r * (n / p) + std::min(r, n % p);
}

/// Rows covered by ranks [first, first+count).
std::size_t rows_of_range(std::size_t n, int procs, int first, int count) {
  return row_start(n, procs, first + count) - row_start(n, procs, first);
}

/// Work tag for the parcel addressed to `rank` under tree distribution.
int tree_tag(int rank) { return 100 + rank; }

struct TreeSend {
  int child;
  std::size_t bytes;
};

/// Binomial-tree distribution plan: rank r repeatedly peels the upper half
/// of its responsibility range [r, r+span) off to a child, which recurses.
/// Every non-root rank receives exactly one bundle (B + the A-bands of its
/// whole subtree) and forwards sub-bundles before computing.
std::vector<std::vector<TreeSend>> plan_tree(const MatMulParams& params,
                                             int procs) {
  const std::size_t n = params.n;
  const std::size_t esz = params.costs.element_bytes;
  std::vector<int> span(static_cast<std::size_t>(procs), 0);
  span[0] = procs;
  std::vector<std::vector<TreeSend>> sends(static_cast<std::size_t>(procs));
  for (int r = 0; r < procs; ++r) {
    int s = span[static_cast<std::size_t>(r)];
    while (s > 1) {
      const int half = s / 2;
      const int keep = s - half;
      const int child = r + keep;
      span[static_cast<std::size_t>(child)] = half;
      const std::size_t bundle =
          n * n * esz + rows_of_range(n, procs, child, half) * n * esz;
      sends[static_cast<std::size_t>(r)].push_back(TreeSend{child, bundle});
      s = keep;
    }
  }
  return sends;
}

}  // namespace

sim::SimTime matmul_serial_demand(const MatMulParams& params) {
  const auto n = static_cast<std::int64_t>(params.n);
  return params.costs.t_madd * (n * n * n);
}

std::vector<node::Program> build_matmul_programs(const MatMulParams& params,
                                                 sched::JobId job,
                                                 int partition_size) {
  // Only the adaptive architecture molds itself to the partition; fixed and
  // stealing both bake in the compile-time process count (stealing falls
  // back to this very script when the machine has no steal engine).
  const int procs = params.arch == sched::SoftwareArch::kAdaptive
                        ? partition_size
                        : params.fixed_processes;
  assert(procs >= 1);
  const std::size_t n = params.n;
  const std::size_t esz = params.costs.element_bytes;
  const std::size_t matrix_bytes = n * n * esz;

  std::vector<node::Program> programs(static_cast<std::size_t>(procs));

  const auto band_compute = [&](int rank) {
    return params.costs.t_madd *
           (static_cast<std::int64_t>(rows_of(n, procs, rank)) *
            static_cast<std::int64_t>(n) * static_cast<std::int64_t>(n));
  };

  if (params.broadcast == MatMulParams::Broadcast::kTree) {
    const auto plan = plan_tree(params, procs);
    for (int rank = 0; rank < procs; ++rank) {
      node::Program& prog = programs[static_cast<std::size_t>(rank)];
      const std::size_t rows = rows_of(n, procs, rank);
      // alloc + optional receive + subtree forwards + compute + result
      // phase (gather at rank 0, one send elsewhere) + exit.
      prog.reserve(3 + plan[static_cast<std::size_t>(rank)].size() +
                   (rank == 0 ? static_cast<std::size_t>(procs) - 1 : 2));
      prog.alloc(params.costs.process_overhead_bytes +
                 (rank == 0 ? 3 * matrix_bytes
                            : matrix_bytes + 2 * rows * n * esz));
      if (rank != 0) prog.receive(tree_tag(rank));
      // Forward the subtree bundles before computing: distribution is on
      // the critical path of every descendant.
      for (const auto& send : plan[static_cast<std::size_t>(rank)]) {
        prog.send(sched::endpoint_of(job, send.child), tree_tag(send.child),
                  send.bytes);
      }
      prog.compute(band_compute(rank));
      if (rank == 0) {
        for (int other = 1; other < procs; ++other) prog.receive(kTagResult);
      } else {
        prog.send(sched::endpoint_of(job, 0), kTagResult, rows * n * esz);
      }
      prog.exit();
    }
    return programs;
  }

  // Paper's algorithm: the coordinator ships every worker's parcel itself.
  // The (P-1)-send broadcast here is pure script: its simultaneous dispatch
  // pumps are batched at admission (PartitionScheduler::admit) and its
  // buffer grants by the MMU's bulk-inserting pump.
  node::Program& coord = programs[0];
  coord.reserve(2 * static_cast<std::size_t>(procs) + 1);
  coord.alloc(params.costs.process_overhead_bytes + 3 * matrix_bytes);
  for (int rank = 1; rank < procs; ++rank) {
    const std::size_t rows = rows_of(n, procs, rank);
    // Work parcel: all of B plus this worker's band of A.
    coord.send(sched::endpoint_of(job, rank), kTagWork,
               matrix_bytes + rows * n * esz);
  }
  coord.compute(band_compute(0));
  for (int rank = 1; rank < procs; ++rank) coord.receive(kTagResult);
  coord.exit();

  // Workers: receive the parcel, compute their band of C, return it.
  for (int rank = 1; rank < procs; ++rank) {
    const std::size_t rows = rows_of(n, procs, rank);
    node::Program& worker = programs[static_cast<std::size_t>(rank)];
    worker.reserve(5);
    // Working set: code + workspace, copy of B, band of A, band of C.
    worker.alloc(params.costs.process_overhead_bytes + matrix_bytes +
                 2 * rows * n * esz);
    worker.receive(kTagWork);
    worker.compute(band_compute(rank));
    worker.send(sched::endpoint_of(job, 0), kTagResult, rows * n * esz);
    worker.exit();
  }
  return programs;
}

sched::stealing::JobWork decompose_matmul(
    const MatMulParams& params, int procs,
    const sched::stealing::StealParams& steal) {
  assert(procs >= 1);
  const std::size_t n = params.n;
  const std::size_t esz = params.costs.element_bytes;
  const std::size_t matrix_bytes = n * n * esz;

  sched::stealing::JobWork work;
  work.workers.resize(static_cast<std::size_t>(procs));

  // Row bands of C become tasklets under the configured self-scheduling
  // chunk schedule, dealt round-robin so every worker starts with a spread
  // of sizes. A migrating tasklet carries its band of A on the grant and
  // ships its band of C home.
  const auto chunks = sched::stealing::chunk_sizes(
      n, procs, steal.chunking, steal.chunks_per_worker);
  for (std::size_t i = 0; i < chunks.size(); ++i) {
    const std::size_t rows = chunks[i];
    sched::stealing::Tasklet t;
    t.cost = params.costs.t_madd * (static_cast<std::int64_t>(rows) *
                                    static_cast<std::int64_t>(n) *
                                    static_cast<std::int64_t>(n));
    t.migrate_bytes = rows * n * esz;
    t.result_bytes = rows * n * esz;
    auto& w = work.workers[i % static_cast<std::size_t>(procs)];
    w.deque.push_back(t);
  }

  for (int r = 0; r < procs; ++r) {
    auto& w = work.workers[static_cast<std::size_t>(r)];
    std::size_t band = 0;
    for (const auto& t : w.deque) band += t.migrate_bytes;
    // Same working sets as the fixed script: the coordinator holds all
    // three matrices, a worker holds B plus its A and C bands.
    w.alloc_bytes = params.costs.process_overhead_bytes +
                    (r == 0 ? 3 * matrix_bytes : matrix_bytes + 2 * band);
    w.init_bytes = matrix_bytes + band;  // work parcel: B + the A band
  }
  return work;
}

sched::JobSpec make_matmul_job(const MatMulParams& params, bool large) {
  sched::JobSpec spec;
  spec.app = "matmul";
  spec.problem_size = params.n;
  spec.large = large;
  spec.arch = params.arch;
  spec.demand_estimate = matmul_serial_demand(params);
  spec.builder = [params](const sched::Job& job, int partition_size) {
    return build_matmul_programs(params, job.id(), partition_size);
  };
  if (params.arch == sched::SoftwareArch::kStealing) {
    spec.tasklet_builder = [params](const sched::Job&, int,
                                    const sched::stealing::StealParams& sp) {
      return decompose_matmul(params, params.fixed_processes, sp);
    };
  }
  return spec;
}

}  // namespace tmc::workload
