// tmcsim -- the matrix-multiplication workload (paper section 4.1).
//
// Fork-and-join structure: a coordinator (rank 0) distributes matrix B to
// every worker plus a band of rows of A, computes its own band, then joins
// by collecting result bands. Workers never talk to each other -- this is
// the paper's low-communication representative.
#pragma once

#include "sched/job.h"
#include "workload/costs.h"

namespace tmc::workload {

struct MatMulParams {
  /// Matrix dimension (n x n). Defaults follow the batch generator's
  /// memory-limited sizes: 60 (small), 120 (large).
  std::size_t n = 60;
  sched::SoftwareArch arch = sched::SoftwareArch::kFixed;
  /// Process count under the fixed architecture (16 in the paper).
  int fixed_processes = 16;
  /// Work distribution. The paper's algorithm has the coordinator send B
  /// plus an A-band to every worker point-to-point, which serialises the
  /// broadcast on the coordinator's links. The tree variant (extension
  /// bench A8) ships bundles down a binary tree so intermediate workers
  /// forward to their subtrees -- log-depth distribution.
  enum class Broadcast { kPointToPoint, kTree };
  Broadcast broadcast = Broadcast::kPointToPoint;
  Costs costs{};
};

/// Serial service demand of an n x n multiplication (for job ordering).
[[nodiscard]] sim::SimTime matmul_serial_demand(const MatMulParams& params);

/// Builds a JobSpec whose builder emits the fork/join scripts.
[[nodiscard]] sched::JobSpec make_matmul_job(const MatMulParams& params,
                                             bool large);

/// Exposed for unit tests: the per-rank scripts for a job id and partition
/// size (rank 0 = coordinator).
[[nodiscard]] std::vector<node::Program> build_matmul_programs(
    const MatMulParams& params, sched::JobId job, int partition_size);

/// Work-stealing decomposition: row bands of C as migratable tasklets under
/// the configured chunk schedule, dealt round-robin over `procs` workers.
[[nodiscard]] sched::stealing::JobWork decompose_matmul(
    const MatMulParams& params, int procs,
    const sched::stealing::StealParams& steal);

}  // namespace tmc::workload
