#include "workload/random_workload.h"

#include <algorithm>
#include <cassert>
#include <vector>

namespace tmc::workload {
namespace {

sim::SimTime draw_time(sim::Rng& rng, sim::SimTime lo, sim::SimTime hi) {
  return sim::SimTime::nanoseconds(rng.uniform_int(lo.ns(), hi.ns()));
}

std::size_t draw_size(sim::Rng& rng, std::size_t lo, std::size_t hi) {
  return static_cast<std::size_t>(rng.uniform_int(
      static_cast<std::int64_t>(lo), static_cast<std::int64_t>(hi)));
}

std::vector<node::Program> build(const RandomWorkloadParams& params,
                                 std::uint64_t seed, sched::JobId job,
                                 int partition_size) {
  // The structure must be a pure function of (seed, partition size) so the
  // adaptive architecture redraws deterministically.
  sim::Rng rng(seed * 0x9e3779b97f4a7c15ULL + 1);

  int procs;
  // Everything but the adaptive architecture bakes in its own count.
  if (params.arch != sched::SoftwareArch::kAdaptive) {
    procs = static_cast<int>(
        rng.uniform_int(params.min_processes, params.max_processes));
  } else {
    procs = std::clamp(partition_size, 1, params.max_processes);
  }
  const int phases =
      static_cast<int>(rng.uniform_int(params.min_phases, params.max_phases));

  std::vector<node::Program> programs(static_cast<std::size_t>(procs));
  for (auto& prog : programs) {
    prog.alloc(draw_size(rng, params.min_footprint, params.max_footprint));
  }

  // Phase structure: compute, emit this phase's sends (async), then consume
  // this phase's inbound messages. Sends never depend on receives within a
  // phase, so any fair scheduler makes progress regardless of interleaving.
  int tag_seq = 1;
  for (int phase = 0; phase < phases; ++phase) {
    struct Edge {
      int src;
      int dst;
      int tag;
      std::size_t bytes;
    };
    std::vector<Edge> edges;
    if (procs > 1) {
      for (int src = 0; src < procs; ++src) {
        // Poisson-ish count around messages_per_process.
        int count = static_cast<int>(params.messages_per_process);
        const double frac =
            params.messages_per_process - static_cast<double>(count);
        if (rng.bernoulli(frac)) ++count;
        for (int m = 0; m < count; ++m) {
          int dst = static_cast<int>(rng.uniform(
              static_cast<std::uint64_t>(procs - 1)));
          if (dst >= src) ++dst;  // any process but self
          edges.push_back(Edge{src, dst, tag_seq++,
                               draw_size(rng, params.min_message,
                                         params.max_message)});
        }
      }
    }
    for (int p = 0; p < procs; ++p) {
      programs[static_cast<std::size_t>(p)].compute(
          draw_time(rng, params.min_compute, params.max_compute));
    }
    for (const auto& edge : edges) {
      programs[static_cast<std::size_t>(edge.src)].send(
          sched::endpoint_of(job, edge.dst), edge.tag, edge.bytes);
    }
    for (const auto& edge : edges) {
      programs[static_cast<std::size_t>(edge.dst)].receive(edge.tag);
    }
  }
  for (auto& prog : programs) prog.exit();
  return programs;
}

}  // namespace

sched::JobSpec make_random_job(const RandomWorkloadParams& params,
                               std::uint64_t seed) {
  sched::JobSpec spec;
  spec.app = "random";
  spec.problem_size = static_cast<std::size_t>(seed);
  spec.arch = params.arch;
  // Estimate demand from a representative draw (exact for fixed arch at
  // any partition; adaptive redraws can differ slightly).
  spec.builder = [params, seed](const sched::Job& job, int partition_size) {
    return build(params, seed, job.id(), partition_size);
  };
  const auto programs = build(params, seed, 0xffffu, params.max_processes);
  sim::SimTime total;
  for (const auto& prog : programs) total += prog.total_compute();
  spec.demand_estimate = total;
  spec.large = false;
  return spec;
}

}  // namespace tmc::workload
