// tmcsim -- randomized structured workloads (property/fuzz testing).
//
// Generates random but *deadlock-free-by-construction* parallel programs:
// a random communication DAG over the job's processes where every send is
// matched by exactly one receive and all message edges point forward in a
// global phase order, so any fair scheduler can always make progress. Used
// by the system fuzz tests to hammer the scheduler/network/memory stack
// with shapes the hand-written workloads never produce.
#pragma once

#include <cstdint>

#include "sched/job.h"
#include "sim/rng.h"
#include "workload/costs.h"

namespace tmc::workload {

struct RandomWorkloadParams {
  /// Process-count bounds (inclusive); actual count drawn per job.
  int min_processes = 2;
  int max_processes = 16;
  /// Phases of the DAG; each phase computes then exchanges messages.
  int min_phases = 1;
  int max_phases = 5;
  /// Per-process compute per phase, drawn uniform in [min, max].
  sim::SimTime min_compute = sim::SimTime::microseconds(100);
  sim::SimTime max_compute = sim::SimTime::milliseconds(20);
  /// Message-size bounds (bytes).
  std::size_t min_message = 16;
  std::size_t max_message = 64 * 1024;
  /// Expected messages per process per phase.
  double messages_per_process = 1.0;
  /// Per-process resident allocation bounds.
  std::size_t min_footprint = 1024;
  std::size_t max_footprint = 128 * 1024;
  /// Architecture: adaptive jobs redraw their structure per partition size
  /// (deterministically from the job's own seed).
  sched::SoftwareArch arch = sched::SoftwareArch::kFixed;
};

/// Builds one random job; `seed` fully determines its structure.
[[nodiscard]] sched::JobSpec make_random_job(const RandomWorkloadParams& params,
                                             std::uint64_t seed);

}  // namespace tmc::workload
