#include "workload/sort.h"

#include <algorithm>
#include <bit>
#include <cassert>
#include <functional>
#include <vector>

#include "sched/stealing/stealing.h"

namespace tmc::workload {
namespace {

/// Tag of the work parcel sent to `child` / the sorted result it returns.
int tag_work(int child) { return 1000 + child; }
int tag_result(int child) { return 2000 + child; }

sim::SimTime selection_sort_cost(const Costs& costs, std::size_t len) {
  // len*(len-1)/2 compare/update steps.
  const auto l = static_cast<std::int64_t>(len);
  return costs.t_compare * (l * (l - 1) / 2);
}

/// Elements the parent keeps at a divide step. skew == 0 takes the exact
/// integer halving of the historical builder (golden identity); a skewed
/// pivot keeps the larger share, clamped so both sides stay non-empty.
std::size_t keep_of(std::size_t len, double skew) {
  if (skew <= 0.0 || len < 2) return len / 2;
  const auto keep = static_cast<std::size_t>(
      static_cast<double>(len) * (0.5 + skew));
  return std::clamp<std::size_t>(keep, 1, len - 1);
}

struct TreeBuilder {
  const SortParams& params;
  sched::JobId job;
  int procs;    // power of two
  int levels;   // log2(procs)
  std::vector<node::Program> programs;
  std::vector<std::size_t> entry_len;  // segment size each rank receives

  /// Emits the ops of the subtree rooted at `rank` holding `len` elements
  /// at `depth`. Appends to the rank's (and descendants') programs in
  /// execution order.
  void emit(int rank, int depth, std::size_t len) {
    auto& prog = programs[static_cast<std::size_t>(rank)];
    if (depth == levels) {
      prog.compute(selection_sort_cost(params.costs, len));
      return;
    }
    const int child = rank + (procs >> (depth + 1));
    const std::size_t keep = keep_of(len, params.skew);
    const std::size_t give = len - keep;
    const std::size_t esz = params.costs.element_bytes;

    // Divide: split the segment and ship the second half down the tree.
    prog.compute(params.costs.t_divide * static_cast<std::int64_t>(len));
    prog.send(sched::endpoint_of(job, child), tag_work(child), give * esz);
    entry_len[static_cast<std::size_t>(child)] = give;
    programs[static_cast<std::size_t>(child)].receive(tag_work(child));

    // Conquer both halves (the coordinator keeps playing worker below).
    emit(rank, depth + 1, keep);
    emit(child, depth + 1, give);

    // Child returns its sorted half; parent merges.
    programs[static_cast<std::size_t>(child)].send(
        sched::endpoint_of(job, rank), tag_result(child), give * esz);
    prog.receive(tag_result(child));
    prog.compute(params.costs.t_merge * static_cast<std::int64_t>(len));
  }
};

}  // namespace

sim::SimTime sort_serial_demand(const SortParams& params) {
  return selection_sort_cost(params.costs, params.elements);
}

std::vector<node::Program> build_sort_programs(const SortParams& params,
                                               sched::JobId job,
                                               int partition_size) {
  // Fixed and stealing both bake in the compile-time process count; only
  // adaptive molds itself to the partition (stealing falls back to this
  // script on machines without a steal engine).
  int procs = params.arch == sched::SoftwareArch::kAdaptive
                  ? partition_size
                  : params.fixed_processes;
  assert(procs >= 1);
  // The divide tree needs a power-of-two process count.
  procs = static_cast<int>(std::bit_floor(static_cast<unsigned>(procs)));
  const int levels = std::countr_zero(static_cast<unsigned>(procs));

  TreeBuilder builder{params, job, procs, levels,
                      std::vector<node::Program>(static_cast<std::size_t>(procs)),
                      std::vector<std::size_t>(static_cast<std::size_t>(procs), 0)};
  builder.entry_len[0] = params.elements;
  builder.emit(0, 0, params.elements);

  // Prepend working-set allocations (segment + merge scratch) and append
  // exits now that entry lengths are known.
  for (int rank = 0; rank < procs; ++rank) {
    auto& prog = builder.programs[static_cast<std::size_t>(rank)];
    const std::size_t bytes =
        params.costs.process_overhead_bytes +
        2 * builder.entry_len[static_cast<std::size_t>(rank)] *
            params.costs.element_bytes;
    prog.ops.insert(prog.ops.begin(),
                    node::Op{node::AllocOp{std::max<std::size_t>(bytes, 1)}});
    prog.exit();
  }
  return builder.programs;
}

sched::stealing::JobWork decompose_sort(
    const SortParams& params, int procs,
    const sched::stealing::StealParams& steal) {
  assert(procs >= 1);
  const std::size_t esz = params.costs.element_bytes;

  // Split to at least procs*chunks_per_worker leaves with the same skewed
  // pivot the tree builder uses: a skewed run makes some leaves quadratic
  // monsters, and the contiguous deal parks them on the low ranks.
  const auto target = static_cast<unsigned>(
      std::max(2, procs * std::max(1, steal.chunks_per_worker)));
  const int levels = static_cast<int>(std::bit_width(target - 1));
  std::vector<std::size_t> leaves;
  const std::function<void(std::size_t, int)> split =
      [&](std::size_t len, int depth) {
        if (depth == levels || len < 2) {
          leaves.push_back(len);
          return;
        }
        const std::size_t keep = keep_of(len, params.skew);
        split(keep, depth + 1);
        split(len - keep, depth + 1);
      };
  split(params.elements, 0);

  sched::stealing::JobWork work;
  work.workers.resize(static_cast<std::size_t>(procs));
  const std::size_t count = leaves.size();
  for (std::size_t i = 0; i < count; ++i) {
    sched::stealing::Tasklet t;
    t.cost = selection_sort_cost(params.costs, leaves[i]);
    t.migrate_bytes = leaves[i] * esz;
    t.result_bytes = leaves[i] * esz;
    const auto owner = std::min(i * static_cast<std::size_t>(procs) / count,
                                static_cast<std::size_t>(procs) - 1);
    work.workers[owner].deque.push_back(t);
  }

  for (int r = 0; r < procs; ++r) {
    auto& w = work.workers[static_cast<std::size_t>(r)];
    std::size_t seg = 0;
    for (const auto& t : w.deque) seg += t.migrate_bytes;
    w.alloc_bytes = std::max<std::size_t>(
        params.costs.process_overhead_bytes + 2 * seg, 1);
    w.init_bytes = seg;
  }
  // The divide phase is serialised up front; the final merge folds the
  // sorted leaves back together, one merge level per split level.
  work.init_cost =
      params.costs.t_divide * static_cast<std::int64_t>(params.elements);
  work.finish_cost = params.costs.t_merge *
                     (static_cast<std::int64_t>(params.elements) * levels);
  return work;
}

sched::JobSpec make_sort_job(const SortParams& params, bool large) {
  sched::JobSpec spec;
  spec.app = "sort";
  spec.problem_size = params.elements;
  spec.large = large;
  spec.arch = params.arch;
  spec.demand_estimate = sort_serial_demand(params);
  spec.builder = [params](const sched::Job& job, int partition_size) {
    return build_sort_programs(params, job.id(), partition_size);
  };
  if (params.arch == sched::SoftwareArch::kStealing) {
    spec.tasklet_builder = [params](const sched::Job&, int,
                                    const sched::stealing::StealParams& sp) {
      return decompose_sort(params, params.fixed_processes, sp);
    };
  }
  return spec;
}

}  // namespace tmc::workload
