#include "workload/sort.h"

#include <bit>
#include <cassert>
#include <vector>

namespace tmc::workload {
namespace {

/// Tag of the work parcel sent to `child` / the sorted result it returns.
int tag_work(int child) { return 1000 + child; }
int tag_result(int child) { return 2000 + child; }

sim::SimTime selection_sort_cost(const Costs& costs, std::size_t len) {
  // len*(len-1)/2 compare/update steps.
  const auto l = static_cast<std::int64_t>(len);
  return costs.t_compare * (l * (l - 1) / 2);
}

struct TreeBuilder {
  const SortParams& params;
  sched::JobId job;
  int procs;    // power of two
  int levels;   // log2(procs)
  std::vector<node::Program> programs;
  std::vector<std::size_t> entry_len;  // segment size each rank receives

  /// Emits the ops of the subtree rooted at `rank` holding `len` elements
  /// at `depth`. Appends to the rank's (and descendants') programs in
  /// execution order.
  void emit(int rank, int depth, std::size_t len) {
    auto& prog = programs[static_cast<std::size_t>(rank)];
    if (depth == levels) {
      prog.compute(selection_sort_cost(params.costs, len));
      return;
    }
    const int child = rank + (procs >> (depth + 1));
    const std::size_t keep = len / 2;
    const std::size_t give = len - keep;
    const std::size_t esz = params.costs.element_bytes;

    // Divide: split the segment and ship the second half down the tree.
    prog.compute(params.costs.t_divide * static_cast<std::int64_t>(len));
    prog.send(sched::endpoint_of(job, child), tag_work(child), give * esz);
    entry_len[static_cast<std::size_t>(child)] = give;
    programs[static_cast<std::size_t>(child)].receive(tag_work(child));

    // Conquer both halves (the coordinator keeps playing worker below).
    emit(rank, depth + 1, keep);
    emit(child, depth + 1, give);

    // Child returns its sorted half; parent merges.
    programs[static_cast<std::size_t>(child)].send(
        sched::endpoint_of(job, rank), tag_result(child), give * esz);
    prog.receive(tag_result(child));
    prog.compute(params.costs.t_merge * static_cast<std::int64_t>(len));
  }
};

}  // namespace

sim::SimTime sort_serial_demand(const SortParams& params) {
  return selection_sort_cost(params.costs, params.elements);
}

std::vector<node::Program> build_sort_programs(const SortParams& params,
                                               sched::JobId job,
                                               int partition_size) {
  int procs = params.arch == sched::SoftwareArch::kFixed
                  ? params.fixed_processes
                  : partition_size;
  assert(procs >= 1);
  // The divide tree needs a power-of-two process count.
  procs = static_cast<int>(std::bit_floor(static_cast<unsigned>(procs)));
  const int levels = std::countr_zero(static_cast<unsigned>(procs));

  TreeBuilder builder{params, job, procs, levels,
                      std::vector<node::Program>(static_cast<std::size_t>(procs)),
                      std::vector<std::size_t>(static_cast<std::size_t>(procs), 0)};
  builder.entry_len[0] = params.elements;
  builder.emit(0, 0, params.elements);

  // Prepend working-set allocations (segment + merge scratch) and append
  // exits now that entry lengths are known.
  for (int rank = 0; rank < procs; ++rank) {
    auto& prog = builder.programs[static_cast<std::size_t>(rank)];
    const std::size_t bytes =
        params.costs.process_overhead_bytes +
        2 * builder.entry_len[static_cast<std::size_t>(rank)] *
            params.costs.element_bytes;
    prog.ops.insert(prog.ops.begin(),
                    node::Op{node::AllocOp{std::max<std::size_t>(bytes, 1)}});
    prog.exit();
  }
  return builder.programs;
}

sched::JobSpec make_sort_job(const SortParams& params, bool large) {
  sched::JobSpec spec;
  spec.app = "sort";
  spec.problem_size = params.elements;
  spec.large = large;
  spec.arch = params.arch;
  spec.demand_estimate = sort_serial_demand(params);
  spec.builder = [params](const sched::Job& job, int partition_size) {
    return build_sort_programs(params, job.id(), partition_size);
  };
  return spec;
}

}  // namespace tmc::workload
