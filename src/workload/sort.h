// tmcsim -- the sorting workload (paper sections 4.2 and 5.3).
//
// Divide-and-conquer structure over a binary tree of processes: a
// coordinator splits its array, ships one half down the tree, recursively
// sorts its own half, then merges the sorted half returned by the child.
// Leaves sort their chunk with *selection sort* (O(n^2)), exactly as the
// paper does -- that quadratic worker phase is what makes the fixed
// architecture (16 small chunks) dramatically faster than the adaptive one
// on small partitions (section 5.3).
#pragma once

#include "sched/job.h"
#include "workload/costs.h"

namespace tmc::workload {

struct SortParams {
  /// Array length. Paper sizes: 6000 (small), 14000 (large).
  std::size_t elements = 6000;
  sched::SoftwareArch arch = sched::SoftwareArch::kFixed;
  /// Process count under the fixed architecture (must be a power of two).
  int fixed_processes = 16;
  Costs costs{};
};

/// Serial selection-sort demand of the whole array (for job ordering).
[[nodiscard]] sim::SimTime sort_serial_demand(const SortParams& params);

[[nodiscard]] sched::JobSpec make_sort_job(const SortParams& params,
                                           bool large);

/// Exposed for unit tests: per-rank scripts for a given partition size.
/// The process count is rounded down to a power of two of the partition
/// size under the adaptive architecture.
[[nodiscard]] std::vector<node::Program> build_sort_programs(
    const SortParams& params, sched::JobId job, int partition_size);

}  // namespace tmc::workload
