// tmcsim -- the sorting workload (paper sections 4.2 and 5.3).
//
// Divide-and-conquer structure over a binary tree of processes: a
// coordinator splits its array, ships one half down the tree, recursively
// sorts its own half, then merges the sorted half returned by the child.
// Leaves sort their chunk with *selection sort* (O(n^2)), exactly as the
// paper does -- that quadratic worker phase is what makes the fixed
// architecture (16 small chunks) dramatically faster than the adaptive one
// on small partitions (section 5.3).
#pragma once

#include "sched/job.h"
#include "workload/costs.h"

namespace tmc::workload {

struct SortParams {
  /// Array length. Paper sizes: 6000 (small), 14000 (large).
  std::size_t elements = 6000;
  sched::SoftwareArch arch = sched::SoftwareArch::kFixed;
  /// Process count under the fixed architecture (must be a power of two).
  int fixed_processes = 16;
  /// Pivot skew: each divide keeps a len*(0.5+skew) fraction instead of an
  /// even split (0 = the paper's balanced tree, bit-exact historical
  /// behaviour). Skewed trees concentrate the quadratic leaf sorts on the
  /// keep-side ranks -- the imbalance regime where work stealing pays.
  /// Range [0, 0.5).
  double skew = 0.0;
  Costs costs{};
};

/// Serial selection-sort demand of the whole array (for job ordering).
[[nodiscard]] sim::SimTime sort_serial_demand(const SortParams& params);

[[nodiscard]] sched::JobSpec make_sort_job(const SortParams& params,
                                           bool large);

/// Exposed for unit tests: per-rank scripts for a given partition size.
/// The process count is rounded down to a power of two of the partition
/// size under the adaptive architecture.
[[nodiscard]] std::vector<node::Program> build_sort_programs(
    const SortParams& params, sched::JobId job, int partition_size);

/// Work-stealing decomposition: the array is split (with the configured
/// pivot skew) to ~procs*chunks_per_worker leaf segments, each a migratable
/// selection-sort tasklet; leaves are dealt contiguously so a skewed tree
/// loads the low ranks, which is exactly what stealing redistributes.
[[nodiscard]] sched::stealing::JobWork decompose_sort(
    const SortParams& params, int procs,
    const sched::stealing::StealParams& steal);

}  // namespace tmc::workload
