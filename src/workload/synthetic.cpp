#include "workload/synthetic.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace tmc::workload {
namespace {

constexpr int kTagWork = 1;
constexpr int kTagResult = 2;

std::vector<node::Program> build(const SyntheticParams& params,
                                 sim::SimTime demand, sched::JobId job,
                                 int partition_size) {
  const int procs = params.arch == sched::SoftwareArch::kFixed
                        ? params.fixed_processes
                        : partition_size;
  assert(procs >= 1);
  const sim::SimTime share =
      sim::SimTime::nanoseconds(demand.ns() / procs);
  std::vector<node::Program> programs(static_cast<std::size_t>(procs));

  node::Program& coord = programs[0];
  coord.alloc(std::max<std::size_t>(params.message_bytes, 1));
  for (int rank = 1; rank < procs; ++rank) {
    coord.send(sched::endpoint_of(job, rank), kTagWork, params.message_bytes);
  }
  coord.compute(share);
  for (int rank = 1; rank < procs; ++rank) coord.receive(kTagResult);
  coord.exit();

  for (int rank = 1; rank < procs; ++rank) {
    node::Program& worker = programs[static_cast<std::size_t>(rank)];
    worker.alloc(std::max<std::size_t>(params.message_bytes, 1));
    worker.receive(kTagWork);
    worker.compute(share);
    worker.send(sched::endpoint_of(job, 0), kTagResult, params.message_bytes);
    worker.exit();
  }
  return programs;
}

}  // namespace

sched::JobSpec make_synthetic_job(const SyntheticParams& params,
                                  sim::SimTime demand) {
  sched::JobSpec spec;
  spec.app = "synthetic";
  spec.problem_size = static_cast<std::size_t>(demand.ns());
  spec.large = demand > params.mean_demand;
  spec.arch = params.arch;
  spec.demand_estimate = demand;
  spec.builder = [params, demand](const sched::Job& job, int partition_size) {
    return build(params, demand, job.id(), partition_size);
  };
  return spec;
}

std::vector<sched::JobSpec> make_synthetic_batch(const SyntheticParams& params,
                                                 int count, sim::Rng& rng) {
  std::vector<sched::JobSpec> specs;
  specs.reserve(static_cast<std::size_t>(count));
  const double mean_s = params.mean_demand.to_seconds();
  for (int i = 0; i < count; ++i) {
    double demand_s;
    if (params.cv >= 1.0) {
      demand_s = rng.hyperexponential(mean_s, params.cv);
    } else if (params.cv <= 0.0) {
      demand_s = mean_s;
    } else {
      // Two-point mix at mean*(1 +/- cv): exact mean and cv, low variance.
      demand_s = rng.bernoulli(0.5) ? mean_s * (1.0 + params.cv)
                                    : mean_s * (1.0 - params.cv);
    }
    demand_s = std::max(demand_s, 1e-3);
    specs.push_back(make_synthetic_job(
        params, sim::SimTime::nanoseconds(
                    static_cast<std::int64_t>(demand_s * 1e9))));
  }
  return specs;
}

}  // namespace tmc::workload
