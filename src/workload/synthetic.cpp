#include "workload/synthetic.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "sched/stealing/stealing.h"

namespace tmc::workload {
namespace {

constexpr int kTagWork = 1;
constexpr int kTagResult = 2;

/// Rank `rank`'s compute share of `demand` over `procs` ranks. skew == 0 is
/// the historical even integer split (golden identity); skew > 0 inflates
/// rank 0 into a straggler and deflates everyone else, preserving the
/// total.
sim::SimTime share_of(const SyntheticParams& params, sim::SimTime demand,
                      int procs, int rank) {
  const std::int64_t base = demand.ns() / procs;
  if (params.skew <= 0.0) return sim::SimTime::nanoseconds(base);
  const double factor = rank == 0
                            ? 1.0 + params.skew * static_cast<double>(procs - 1)
                            : 1.0 - params.skew;
  return sim::SimTime::nanoseconds(
      static_cast<std::int64_t>(static_cast<double>(base) * factor));
}

std::vector<node::Program> build(const SyntheticParams& params,
                                 sim::SimTime demand, sched::JobId job,
                                 int partition_size) {
  // Adaptive molds itself to the partition; fixed and stealing bake in the
  // compile-time count (stealing falls back here without a steal engine).
  const int procs = params.arch == sched::SoftwareArch::kAdaptive
                        ? partition_size
                        : params.fixed_processes;
  assert(procs >= 1);
  std::vector<node::Program> programs(static_cast<std::size_t>(procs));

  node::Program& coord = programs[0];
  coord.alloc(std::max<std::size_t>(params.message_bytes, 1));
  for (int rank = 1; rank < procs; ++rank) {
    coord.send(sched::endpoint_of(job, rank), kTagWork, params.message_bytes);
  }
  coord.compute(share_of(params, demand, procs, 0));
  for (int rank = 1; rank < procs; ++rank) coord.receive(kTagResult);
  coord.exit();

  for (int rank = 1; rank < procs; ++rank) {
    node::Program& worker = programs[static_cast<std::size_t>(rank)];
    worker.alloc(std::max<std::size_t>(params.message_bytes, 1));
    worker.receive(kTagWork);
    worker.compute(share_of(params, demand, procs, rank));
    worker.send(sched::endpoint_of(job, 0), kTagResult, params.message_bytes);
    worker.exit();
  }
  return programs;
}

/// Stealing decomposition: each rank's share splits into chunks_per_worker
/// equal tasklets (token migrate/result bytes). The initial deal follows
/// the skewed shares, so the straggler's surplus is exactly what thieves
/// drain.
sched::stealing::JobWork decompose(const SyntheticParams& params,
                                   sim::SimTime demand, int procs,
                                   const sched::stealing::StealParams& steal) {
  sched::stealing::JobWork work;
  work.workers.resize(static_cast<std::size_t>(procs));
  const int per = std::max(1, steal.chunks_per_worker);
  for (int r = 0; r < procs; ++r) {
    auto& w = work.workers[static_cast<std::size_t>(r)];
    const std::int64_t share = share_of(params, demand, procs, r).ns();
    for (int c = 0; c < per; ++c) {
      sched::stealing::Tasklet t;
      // Largest-remainder split of the share's nanoseconds.
      t.cost = sim::SimTime::nanoseconds(share / per +
                                         (c < share % per ? 1 : 0));
      t.migrate_bytes = params.message_bytes;
      t.result_bytes = params.message_bytes;
      w.deque.push_back(t);
    }
    w.alloc_bytes = std::max<std::size_t>(params.message_bytes, 1);
    w.init_bytes = params.message_bytes;
  }
  return work;
}

}  // namespace

sched::JobSpec make_synthetic_job(const SyntheticParams& params,
                                  sim::SimTime demand) {
  sched::JobSpec spec;
  spec.app = "synthetic";
  spec.problem_size = static_cast<std::size_t>(demand.ns());
  spec.large = demand > params.mean_demand;
  spec.arch = params.arch;
  spec.demand_estimate = demand;
  spec.builder = [params, demand](const sched::Job& job, int partition_size) {
    return build(params, demand, job.id(), partition_size);
  };
  if (params.arch == sched::SoftwareArch::kStealing) {
    spec.tasklet_builder = [params, demand](
                               const sched::Job&, int,
                               const sched::stealing::StealParams& sp) {
      return decompose(params, demand, params.fixed_processes, sp);
    };
  }
  return spec;
}

std::vector<sched::JobSpec> make_synthetic_batch(const SyntheticParams& params,
                                                 int count, sim::Rng& rng) {
  std::vector<sched::JobSpec> specs;
  specs.reserve(static_cast<std::size_t>(count));
  const double mean_s = params.mean_demand.to_seconds();
  for (int i = 0; i < count; ++i) {
    double demand_s;
    if (params.cv >= 1.0) {
      demand_s = rng.hyperexponential(mean_s, params.cv);
    } else if (params.cv <= 0.0) {
      demand_s = mean_s;
    } else {
      // Two-point mix at mean*(1 +/- cv): exact mean and cv, low variance.
      demand_s = rng.bernoulli(0.5) ? mean_s * (1.0 + params.cv)
                                    : mean_s * (1.0 - params.cv);
    }
    demand_s = std::max(demand_s, 1e-3);
    specs.push_back(make_synthetic_job(
        params, sim::SimTime::nanoseconds(
                    static_cast<std::int64_t>(demand_s * 1e9))));
  }
  return specs;
}

}  // namespace tmc::workload
