// tmcsim -- synthetic variance-controlled workload (ablation bench A1).
//
// The paper observes that its batches have too little service-demand
// variance to favour time-sharing, and points to the companion technical
// report for high-variance results where the ranking flips. This workload
// reproduces that study: fork/join jobs whose total demand is drawn from a
// hyperexponential distribution with a configurable coefficient of
// variation, and only token-sized messages so scheduling (not
// communication) dominates.
#pragma once

#include <vector>

#include "sched/job.h"
#include "sim/rng.h"
#include "workload/costs.h"

namespace tmc::workload {

struct SyntheticParams {
  /// Mean total service demand per job.
  sim::SimTime mean_demand = sim::SimTime::seconds(4);
  /// Coefficient of variation of the demand distribution (>= 0).
  /// cv < 1 uses a deterministic two-point mix; cv >= 1 hyperexponential.
  double cv = 1.0;
  sched::SoftwareArch arch = sched::SoftwareArch::kFixed;
  int fixed_processes = 16;
  /// Token message size for the fork and join phases.
  std::size_t message_bytes = 1024;
  /// Intra-job imbalance: rank 0's compute share grows to
  /// base*(1 + skew*(procs-1)) while every other rank shrinks to
  /// base*(1-skew); total demand is preserved. 0 = the historical even
  /// split, bit-exact. A skewed fork/join job has a built-in straggler --
  /// the regime where work stealing redistributes and wins. Range [0, 1).
  double skew = 0.0;
};

/// Builds one fork/join job with the given total demand.
[[nodiscard]] sched::JobSpec make_synthetic_job(const SyntheticParams& params,
                                                sim::SimTime demand);

/// Draws `count` jobs whose demands follow the configured distribution.
[[nodiscard]] std::vector<sched::JobSpec> make_synthetic_batch(
    const SyntheticParams& params, int count, sim::Rng& rng);

}  // namespace tmc::workload
