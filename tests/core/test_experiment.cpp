#include "core/experiment.h"

#include <gtest/gtest.h>

namespace tmc::core {
namespace {

/// Shrinks the paper's batch to test-sized problems (full-size batches are
/// exercised by the bench harness).
ExperimentConfig tiny_config(workload::App app, sched::SoftwareArch arch,
                             sched::PolicyKind policy, int partition_size,
                             net::TopologyKind topology) {
  auto config = figure_point(app, arch, policy, partition_size, topology);
  if (app == workload::App::kMatMul) {
    config.batch.small_size = 16;
    config.batch.large_size = 32;
  } else {
    config.batch.small_size = 256;
    config.batch.large_size = 512;
  }
  return config;
}

TEST(Experiment, BatchCompletesAllSixteenJobs) {
  const auto result =
      run_batch(tiny_config(workload::App::kMatMul,
                            sched::SoftwareArch::kAdaptive,
                            sched::PolicyKind::kHybrid, 4,
                            net::TopologyKind::kMesh),
                workload::BatchOrder::kInterleaved);
  EXPECT_EQ(result.jobs.size(), 16u);
  EXPECT_EQ(result.response_all.count(), 16u);
  EXPECT_EQ(result.response_small.count(), 12u);
  EXPECT_EQ(result.response_large.count(), 4u);
  EXPECT_GT(result.mean_response_s(), 0.0);
}

TEST(Experiment, RunsAreDeterministic) {
  const auto config = tiny_config(
      workload::App::kSort, sched::SoftwareArch::kFixed,
      sched::PolicyKind::kTimeSharing, 16, net::TopologyKind::kLinear);
  const auto a = run_batch(config, workload::BatchOrder::kInterleaved);
  const auto b = run_batch(config, workload::BatchOrder::kInterleaved);
  EXPECT_DOUBLE_EQ(a.mean_response_s(), b.mean_response_s());
  EXPECT_DOUBLE_EQ(a.makespan_s, b.makespan_s);
  EXPECT_EQ(a.machine.events, b.machine.events);
  EXPECT_EQ(a.machine.messages, b.machine.messages);
  for (std::size_t i = 0; i < a.jobs.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.jobs[i].response_s, b.jobs[i].response_s);
  }
}

TEST(Experiment, StaticResultAveragesBestAndWorstOrders) {
  const auto config = tiny_config(
      workload::App::kMatMul, sched::SoftwareArch::kAdaptive,
      sched::PolicyKind::kStatic, 4, net::TopologyKind::kMesh);
  const auto result = run_experiment(config);
  ASSERT_TRUE(result.worst.has_value());
  EXPECT_EQ(result.primary.order, workload::BatchOrder::kSmallestFirst);
  EXPECT_EQ(result.worst->order, workload::BatchOrder::kLargestFirst);
  EXPECT_DOUBLE_EQ(result.mean_response_s,
                   0.5 * (result.primary.mean_response_s() +
                          result.worst->mean_response_s()));
}

TEST(Experiment, SmallestFirstBeatsLargestFirstUnderStatic) {
  const auto config = tiny_config(
      workload::App::kMatMul, sched::SoftwareArch::kAdaptive,
      sched::PolicyKind::kStatic, 8, net::TopologyKind::kMesh);
  const auto result = run_experiment(config);
  // SJF-ordered batch must not have a worse mean response than LJF.
  EXPECT_LE(result.primary.mean_response_s(),
            result.worst->mean_response_s());
}

TEST(Experiment, TimeSharingResultUsesInterleavedOrder) {
  const auto config = tiny_config(
      workload::App::kMatMul, sched::SoftwareArch::kFixed,
      sched::PolicyKind::kHybrid, 8, net::TopologyKind::kRing);
  const auto result = run_experiment(config);
  EXPECT_FALSE(result.worst.has_value());
  EXPECT_EQ(result.primary.order, workload::BatchOrder::kInterleaved);
  EXPECT_DOUBLE_EQ(result.mean_response_s,
                   result.primary.mean_response_s());
}

TEST(Experiment, SingletonPartitionsMakePoliciesEquivalent) {
  // Paper section 5.2: with 16 one-processor partitions there is no
  // communication and both policies run one job per processor -- identical
  // behaviour. (Adaptive architecture: one process per job.)
  const auto s = run_experiment(
      tiny_config(workload::App::kMatMul, sched::SoftwareArch::kAdaptive,
                  sched::PolicyKind::kStatic, 1, net::TopologyKind::kLinear));
  const auto h = run_experiment(
      tiny_config(workload::App::kMatMul, sched::SoftwareArch::kAdaptive,
                  sched::PolicyKind::kHybrid, 1, net::TopologyKind::kLinear));
  EXPECT_NEAR(s.mean_response_s, h.mean_response_s,
              1e-6 + 0.01 * s.mean_response_s);
  EXPECT_EQ(s.primary.machine.messages, 0u);
  EXPECT_EQ(h.primary.machine.messages, 0u);
}

TEST(Experiment, MakespanIsAtLeastLargestResponse) {
  const auto result =
      run_batch(tiny_config(workload::App::kSort, sched::SoftwareArch::kFixed,
                            sched::PolicyKind::kHybrid, 4,
                            net::TopologyKind::kHypercube),
                workload::BatchOrder::kInterleaved);
  for (const auto& job : result.jobs) {
    EXPECT_LE(job.response_s, result.makespan_s + 1e-12);
  }
  EXPECT_DOUBLE_EQ(result.makespan_s, result.response_all.max());
}

TEST(Experiment, WaitTimeIsZeroUnderPureTimeSharing) {
  // Pure TS dispatches the whole batch at arrival.
  const auto result = run_batch(
      tiny_config(workload::App::kMatMul, sched::SoftwareArch::kFixed,
                  sched::PolicyKind::kTimeSharing, 16,
                  net::TopologyKind::kMesh),
      workload::BatchOrder::kInterleaved);
  for (const auto& job : result.jobs) {
    EXPECT_DOUBLE_EQ(job.wait_s, 0.0);
  }
}

TEST(Experiment, StaticLargeJobsWaitInSmallestFirstOrder) {
  const auto config = tiny_config(
      workload::App::kMatMul, sched::SoftwareArch::kAdaptive,
      sched::PolicyKind::kStatic, 16, net::TopologyKind::kMesh);
  const auto run = run_batch(config, workload::BatchOrder::kSmallestFirst);
  // One 16-CPU partition: only the first job starts immediately.
  int zero_wait = 0;
  for (const auto& job : run.jobs) {
    zero_wait += job.wait_s == 0.0 ? 1 : 0;
  }
  EXPECT_EQ(zero_wait, 1);
}

TEST(Experiment, FigurePointNamesConfiguration) {
  const auto config = figure_point(
      workload::App::kSort, sched::SoftwareArch::kFixed,
      sched::PolicyKind::kStatic, 8, net::TopologyKind::kRing);
  EXPECT_EQ(config.name, "sort/fixed/static/8R");
  EXPECT_EQ(config.machine.policy.partition_size, 8);
}

TEST(Experiment, CpuTimeRecordedPerJob) {
  const auto result =
      run_batch(tiny_config(workload::App::kMatMul,
                            sched::SoftwareArch::kAdaptive,
                            sched::PolicyKind::kStatic, 4,
                            net::TopologyKind::kMesh),
                workload::BatchOrder::kSmallestFirst);
  for (const auto& job : result.jobs) {
    EXPECT_GT(job.cpu_s, 0.0);
    // CPU time can exceed the pure compute demand (copy costs) but must be
    // bounded by response x partition width.
    EXPECT_LE(job.cpu_s, job.response_s * 4 + 1e-9);
  }
}

}  // namespace
}  // namespace tmc::core
