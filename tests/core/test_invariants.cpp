// System-wide property tests: every policy x partition x topology x
// application x architecture combination must satisfy the structural
// invariants of the modelled machine.
#include <gtest/gtest.h>

#include <tuple>

#include "core/experiment.h"

namespace tmc::core {
namespace {

using Grid = std::tuple<sched::PolicyKind, int, net::TopologyKind,
                        workload::App, sched::SoftwareArch>;

class SystemInvariants : public ::testing::TestWithParam<Grid> {
 protected:
  static ExperimentConfig config_for(const Grid& grid) {
    const auto [policy, partition, topology, app, arch] = grid;
    auto config = figure_point(app, arch, policy, partition, topology);
    // Tiny problems: these runs check structure, not performance.
    if (app == workload::App::kMatMul) {
      config.batch.small_size = 12;
      config.batch.large_size = 20;
    } else {
      config.batch.small_size = 128;
      config.batch.large_size = 384;
    }
    return config;
  }
};

TEST_P(SystemInvariants, BatchRunsCleanly) {
  const auto config = config_for(GetParam());

  Multicomputer machine(config.machine);
  auto specs = workload::make_batch(config.batch,
                                    workload::BatchOrder::kInterleaved);
  std::vector<std::unique_ptr<sched::Job>> jobs;
  sched::JobId id = 1;
  for (auto& spec : specs) {
    jobs.push_back(std::make_unique<sched::Job>(id++, std::move(spec)));
    machine.submit(*jobs.back());
  }
  machine.run_to_completion();

  // Every job completed, with sane timestamps.
  double max_completion = 0;
  for (const auto& job : jobs) {
    EXPECT_TRUE(job->completed());
    EXPECT_GE(job->dispatch_time(), job->arrival());
    EXPECT_GT(job->completion_time(), job->dispatch_time());
    EXPECT_GT(job->consumed_cpu(), sim::SimTime::zero());
    max_completion =
        std::max(max_completion, job->completion_time().to_seconds());
  }

  // All memory returned: no leaked buffers or job data anywhere.
  for (int node = 0; node < machine.config().processors; ++node) {
    EXPECT_EQ(machine.mmu(node).bytes_used(), 0u) << "node " << node;
    EXPECT_EQ(machine.mmu(node).pending_requests(), 0u) << "node " << node;
  }

  // Network drained and conserved.
  EXPECT_EQ(machine.network().in_flight(), 0u);
  EXPECT_EQ(machine.comm().deliveries(), machine.comm().sends());

  // All endpoints unregistered.
  for (const auto& job : jobs) {
    EXPECT_EQ(machine.comm().find(sched::endpoint_of(job->id(), 0)), nullptr);
  }

  // CPU accounting is physical.
  const auto stats = machine.stats();
  EXPECT_GT(stats.avg_cpu_utilization, 0.0);
  EXPECT_LE(stats.avg_cpu_utilization, 1.0 + 1e-9);
  EXPECT_LE(stats.max_link_utilization, 1.0 + 1e-9);
  EXPECT_LE(stats.peak_node_memory, machine.config().memory_per_node);

  // The simulation is quiescent.
  EXPECT_TRUE(machine.sim().idle());
  EXPECT_GE(machine.sim().now().to_seconds(), max_completion);
}

std::string grid_name(const ::testing::TestParamInfo<Grid>& info) {
  const auto [policy, partition, topology, app, arch] = info.param;
  std::string name;
  switch (policy) {
    case sched::PolicyKind::kStatic: name += "Static"; break;
    case sched::PolicyKind::kTimeSharing: name += "TS"; break;
    case sched::PolicyKind::kHybrid: name += "Hybrid"; break;
  }
  name += std::to_string(partition);
  name += net::topology_letter(topology);
  name += app == workload::App::kMatMul ? "mm" : "st";
  name += arch == sched::SoftwareArch::kFixed ? "F" : "A";
  return name;
}

INSTANTIATE_TEST_SUITE_P(
    PolicyGrid, SystemInvariants,
    ::testing::Combine(
        ::testing::Values(sched::PolicyKind::kStatic,
                          sched::PolicyKind::kHybrid),
        ::testing::Values(1, 4, 16),
        ::testing::Values(net::TopologyKind::kLinear,
                          net::TopologyKind::kHypercube),
        ::testing::Values(workload::App::kMatMul, workload::App::kSort),
        ::testing::Values(sched::SoftwareArch::kFixed,
                          sched::SoftwareArch::kAdaptive)),
    grid_name);

// Pure time-sharing and the remaining topologies, on one workload each.
INSTANTIATE_TEST_SUITE_P(
    ExtraCoverage, SystemInvariants,
    ::testing::Combine(
        ::testing::Values(sched::PolicyKind::kTimeSharing),
        ::testing::Values(16),
        ::testing::Values(net::TopologyKind::kRing, net::TopologyKind::kMesh),
        ::testing::Values(workload::App::kMatMul, workload::App::kSort),
        ::testing::Values(sched::SoftwareArch::kFixed,
                          sched::SoftwareArch::kAdaptive)),
    grid_name);

}  // namespace
}  // namespace tmc::core
