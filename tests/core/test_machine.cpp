#include "core/machine.h"

#include <gtest/gtest.h>

namespace tmc::core {
namespace {

using sim::SimTime;

TEST(Machine, DefaultConfigBuildsSixteenNodes) {
  Multicomputer machine{MachineConfig{}};
  EXPECT_EQ(machine.topology().node_count(), 16);
  EXPECT_EQ(machine.partition_count(), 1);
  EXPECT_EQ(machine.mmu(0).capacity(), std::size_t{4} << 20);
}

TEST(Machine, PartitioningCreatesOneSchedulerPerPartition) {
  MachineConfig cfg;
  cfg.policy.kind = sched::PolicyKind::kStatic;
  cfg.policy.partition_size = 4;
  Multicomputer machine(cfg);
  EXPECT_EQ(machine.partition_count(), 4);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(machine.partition_scheduler(i).partition().size(), 4);
  }
}

TEST(Machine, TimeSharingForcesOnePartition) {
  MachineConfig cfg;
  cfg.policy.kind = sched::PolicyKind::kTimeSharing;
  cfg.policy.partition_size = 4;  // ignored for pure TS
  Multicomputer machine(cfg);
  EXPECT_EQ(machine.partition_count(), 1);
  EXPECT_EQ(machine.config().policy.partition_size, 16);
}

TEST(Machine, TopologyIsTiledPerPartition) {
  MachineConfig cfg;
  cfg.topology = net::TopologyKind::kRing;
  cfg.policy.kind = sched::PolicyKind::kHybrid;
  cfg.policy.partition_size = 8;
  Multicomputer machine(cfg);
  // Two disjoint 8-rings.
  EXPECT_EQ(machine.topology().link_count(),
            2 * net::Topology::ring(8).link_count());
}

TEST(Machine, InvalidPartitionSizeThrows) {
  MachineConfig cfg;
  cfg.policy.partition_size = 3;
  EXPECT_THROW(Multicomputer{cfg}, std::invalid_argument);
  cfg.policy.partition_size = 0;
  EXPECT_THROW(Multicomputer{cfg}, std::invalid_argument);
}

TEST(Machine, LabelMatchesPaperNotation) {
  MachineConfig cfg;
  cfg.topology = net::TopologyKind::kLinear;
  cfg.policy.partition_size = 8;
  EXPECT_EQ(cfg.label(), "8L");
}

TEST(Machine, IdleMachineHasCleanStats) {
  Multicomputer machine{MachineConfig{}};
  const auto stats = machine.stats();
  EXPECT_EQ(stats.messages, 0u);
  EXPECT_EQ(stats.context_switches, 0u);
  EXPECT_EQ(stats.peak_node_memory, 0u);
  EXPECT_DOUBLE_EQ(stats.avg_cpu_utilization, 0.0);
}

TEST(Machine, RunToCompletionThrowsOnStuckJob) {
  Multicomputer machine{MachineConfig{}};
  sched::JobSpec spec;
  spec.builder = [](const sched::Job&, int) {
    std::vector<node::Program> programs(1);
    programs[0].receive(42).exit();  // nobody will ever send tag 42
    return programs;
  };
  sched::Job job(1, std::move(spec));
  machine.submit(job);
  EXPECT_THROW(machine.run_to_completion(), std::runtime_error);
}

TEST(Machine, WormholeConfigUsesWormholeTransport) {
  MachineConfig cfg;
  cfg.wormhole = true;
  Multicomputer machine(cfg);
  EXPECT_NE(dynamic_cast<net::WormholeNetwork*>(&machine.network()), nullptr);
  MachineConfig sf;
  Multicomputer machine2(sf);
  EXPECT_NE(dynamic_cast<net::StoreForwardNetwork*>(&machine2.network()),
            nullptr);
}

TEST(Machine, CustomProcessorCount) {
  MachineConfig cfg;
  cfg.processors = 8;
  cfg.policy.partition_size = 2;
  Multicomputer machine(cfg);
  EXPECT_EQ(machine.topology().node_count(), 8);
  EXPECT_EQ(machine.partition_count(), 4);
}

}  // namespace
}  // namespace tmc::core
