#include "core/node_array.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <utility>

namespace tmc::core {
namespace {

/// Non-movable element with construction/destruction accounting -- the
/// shape NodeArray exists for (Mmu/Transputer hand out references).
struct Pinned {
  Pinned(int id, int* live) : id(id), live(live) { ++*live; }
  ~Pinned() { --*live; }
  Pinned(const Pinned&) = delete;
  Pinned& operator=(const Pinned&) = delete;

  int id;
  int* live;
};

TEST(NodeArray, EmplacesInReservedContiguousStorage) {
  int live = 0;
  {
    NodeArray<Pinned> arr(4);
    EXPECT_TRUE(arr.empty());
    EXPECT_EQ(arr.capacity(), 4u);
    Pinned& first = arr.emplace_back(10, &live);
    arr.emplace_back(11, &live);
    arr.emplace_back(12, &live);
    EXPECT_EQ(arr.size(), 3u);
    EXPECT_EQ(live, 3);
    // Elements are adjacent in one block and references stay stable.
    EXPECT_EQ(&arr[1], &arr[0] + 1);
    EXPECT_EQ(&arr[2], &arr[0] + 2);
    EXPECT_EQ(&first, &arr[0]);
    EXPECT_EQ(arr[2].id, 12);
    int sum = 0;
    for (const Pinned& p : arr) sum += p.id;
    EXPECT_EQ(sum, 33);
  }
  EXPECT_EQ(live, 0);
}

TEST(NodeArray, ResetDestroysAndAllowsResize) {
  int live = 0;
  NodeArray<Pinned> arr(2);
  arr.emplace_back(1, &live);
  arr.emplace_back(2, &live);
  arr.reset();
  EXPECT_EQ(live, 0);
  EXPECT_EQ(arr.capacity(), 0u);
  // After reset the array is empty again, so it may be re-reserved.
  arr.reserve(3);
  arr.emplace_back(3, &live);
  EXPECT_EQ(live, 1);
  EXPECT_EQ(arr[0].id, 3);
}

TEST(NodeArray, MoveTransfersOwnership) {
  int live = 0;
  NodeArray<Pinned> src(2);
  src.emplace_back(7, &live);
  NodeArray<Pinned> dst(std::move(src));
  EXPECT_EQ(src.size(), 0u);
  EXPECT_EQ(dst.size(), 1u);
  EXPECT_EQ(dst[0].id, 7);
  NodeArray<Pinned> other(1);
  other.emplace_back(8, &live);
  other = std::move(dst);
  EXPECT_EQ(live, 1);  // move-assign destroyed the old element
  EXPECT_EQ(other[0].id, 7);
}

TEST(NodeArray, ZeroCapacityIsWellFormed) {
  NodeArray<std::string> arr(0);
  EXPECT_TRUE(arr.empty());
  EXPECT_EQ(arr.begin(), arr.end());
}

TEST(NodeArray, HoldsThousandElementsContiguously) {
  // The scaling use case: 1024 per-node components in one block.
  NodeArray<std::uint64_t> arr(1024);
  for (std::uint64_t i = 0; i < 1024; ++i) arr.emplace_back(i * i);
  EXPECT_EQ(arr.size(), 1024u);
  EXPECT_EQ(&arr[1023], &arr[0] + 1023);
  EXPECT_EQ(arr[1000], 1000000u);
}

}  // namespace
}  // namespace tmc::core
