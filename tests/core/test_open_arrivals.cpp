#include "core/open_arrivals.h"

#include <gtest/gtest.h>

namespace tmc::core {
namespace {

OpenArrivalConfig tiny_config(double rate, std::uint64_t seed = 1) {
  OpenArrivalConfig config;
  config.machine.topology = net::TopologyKind::kMesh;
  config.machine.policy.kind = sched::PolicyKind::kStatic;
  config.machine.policy.partition_size = 4;
  config.mix = workload::default_batch(workload::App::kMatMul,
                                       sched::SoftwareArch::kAdaptive);
  config.mix.small_size = 16;
  config.mix.large_size = 32;
  config.arrivals_per_second = rate;
  config.warmup_jobs = 4;
  config.measured_jobs = 24;
  config.seed = seed;
  return config;
}

TEST(OpenArrivals, MeasuresExactlyTheMeasuredWindow) {
  const auto result = run_open_arrivals(tiny_config(10.0));
  EXPECT_EQ(result.response_all.count(), 24u);
  EXPECT_EQ(result.response_small.count() + result.response_large.count(),
            24u);
  EXPECT_EQ(result.queue_at_arrival.count(), 28u);  // every arrival observed
  EXPECT_GT(result.horizon_s, 0.0);
}

TEST(OpenArrivals, DeterministicGivenSeed) {
  const auto a = run_open_arrivals(tiny_config(20.0, 7));
  const auto b = run_open_arrivals(tiny_config(20.0, 7));
  EXPECT_DOUBLE_EQ(a.response_all.mean(), b.response_all.mean());
  EXPECT_DOUBLE_EQ(a.horizon_s, b.horizon_s);
  EXPECT_EQ(a.machine.events, b.machine.events);
}

TEST(OpenArrivals, SeedsChangeTheStream) {
  const auto a = run_open_arrivals(tiny_config(20.0, 1));
  const auto b = run_open_arrivals(tiny_config(20.0, 2));
  EXPECT_NE(a.response_all.mean(), b.response_all.mean());
}

TEST(OpenArrivals, LightLoadResponsesAreLoneJobSpans) {
  // At a very low rate jobs rarely overlap: queue length at arrival ~ 0.
  const auto result = run_open_arrivals(tiny_config(0.5));
  EXPECT_LT(result.queue_at_arrival.mean(), 0.2);
  EXPECT_LT(result.offered_load, 0.05);
}

TEST(OpenArrivals, ResponseGrowsWithLoad) {
  const auto light = run_open_arrivals(tiny_config(2.0));
  const auto heavy = run_open_arrivals(tiny_config(200.0));
  EXPECT_GT(heavy.response_all.mean(), light.response_all.mean());
  EXPECT_GT(heavy.queue_at_arrival.mean(), light.queue_at_arrival.mean());
}

TEST(OpenArrivals, OfferedLoadScalesWithRate) {
  const auto slow = run_open_arrivals(tiny_config(2.0, 3));
  const auto fast = run_open_arrivals(tiny_config(4.0, 3));
  EXPECT_NEAR(fast.offered_load / slow.offered_load, 2.0, 1e-9);
}

TEST(OpenArrivals, WorksWithAdaptivePolicy) {
  auto config = tiny_config(10.0);
  config.machine.policy.kind = sched::PolicyKind::kAdaptiveStatic;
  const auto result = run_open_arrivals(config);
  EXPECT_EQ(result.response_all.count(), 24u);
}

TEST(OpenArrivals, WorksWithSortMix) {
  auto config = tiny_config(5.0);
  config.mix = workload::default_batch(workload::App::kSort,
                                       sched::SoftwareArch::kFixed);
  config.mix.small_size = 200;
  config.mix.large_size = 400;
  const auto result = run_open_arrivals(config);
  EXPECT_EQ(result.response_all.count(), 24u);
}

TEST(OpenArrivals, RejectsNonPositiveRate) {
  auto config = tiny_config(1.0);
  config.arrivals_per_second = 0.0;
  EXPECT_THROW((void)run_open_arrivals(config), std::invalid_argument);
}

TEST(OpenArrivals, SaturationTripsWatchdog) {
  auto config = tiny_config(10'000.0);
  config.mix.small_size = 64;   // real work per job
  config.mix.large_size = 128;
  config.machine.max_sim_time = sim::SimTime::seconds(2);
  EXPECT_THROW((void)run_open_arrivals(config), std::runtime_error);
}

}  // namespace
}  // namespace tmc::core
