// Fuzz-style system tests: randomized (but deadlock-free-by-construction)
// communication DAGs hammered through every policy. These catch scheduler,
// network and allocator interactions the structured workloads never hit.
#include <gtest/gtest.h>

#include <memory>
#include <tuple>
#include <vector>

#include "core/machine.h"
#include "workload/random_workload.h"

namespace tmc::core {
namespace {

using Param = std::tuple<sched::PolicyKind, int, std::uint64_t>;

class RandomWorkloadFuzz : public ::testing::TestWithParam<Param> {};

TEST_P(RandomWorkloadFuzz, BatchRunsCleanly) {
  const auto [policy, partition, seed] = GetParam();

  MachineConfig cfg;
  cfg.topology = net::TopologyKind::kMesh;
  cfg.policy.kind = policy;
  cfg.policy.partition_size = partition;
  cfg.policy.basic_quantum = sim::SimTime::milliseconds(10);
  Multicomputer machine(cfg);

  workload::RandomWorkloadParams params;
  params.arch = seed % 2 == 0 ? sched::SoftwareArch::kFixed
                              : sched::SoftwareArch::kAdaptive;
  params.max_message = 32 * 1024;

  std::vector<std::unique_ptr<sched::Job>> jobs;
  for (sched::JobId i = 1; i <= 10; ++i) {
    jobs.push_back(std::make_unique<sched::Job>(
        i, workload::make_random_job(params, seed * 100 + i)));
    machine.submit(*jobs.back());
  }
  machine.run_to_completion();

  for (const auto& job : jobs) {
    EXPECT_TRUE(job->completed());
    EXPECT_GT(job->consumed_cpu(), sim::SimTime::zero());
  }
  for (int node = 0; node < cfg.processors; ++node) {
    EXPECT_EQ(machine.mmu(node).bytes_used(), 0u) << "node " << node;
    EXPECT_EQ(machine.mmu(node).pending_requests(), 0u);
  }
  EXPECT_EQ(machine.network().in_flight(), 0u);
  EXPECT_EQ(machine.comm().deliveries(), machine.comm().sends());
  EXPECT_TRUE(machine.sim().idle());
}

std::string fuzz_name(const ::testing::TestParamInfo<Param>& info) {
  const auto [policy, partition, seed] = info.param;
  std::string name;
  switch (policy) {
    case sched::PolicyKind::kStatic: name = "Static"; break;
    case sched::PolicyKind::kTimeSharing: name = "TS"; break;
    case sched::PolicyKind::kHybrid: name = "Hybrid"; break;
    case sched::PolicyKind::kAdaptiveStatic: name = "Adaptive"; break;
  }
  return name + "p" + std::to_string(partition) + "s" + std::to_string(seed);
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, RandomWorkloadFuzz,
    ::testing::Combine(::testing::Values(sched::PolicyKind::kStatic,
                                         sched::PolicyKind::kHybrid,
                                         sched::PolicyKind::kTimeSharing,
                                         sched::PolicyKind::kAdaptiveStatic),
                       ::testing::Values(4, 16),
                       ::testing::Values(1u, 2u, 3u, 4u, 5u)),
    fuzz_name);

TEST(RandomWorkload, StructureIsDeterministicPerSeed) {
  workload::RandomWorkloadParams params;
  const auto a = workload::make_random_job(params, 42);
  const auto b = workload::make_random_job(params, 42);
  sched::Job ja(1, a), jb(1, b);
  const auto pa = a.builder(ja, 8);
  const auto pb = b.builder(jb, 8);
  ASSERT_EQ(pa.size(), pb.size());
  for (std::size_t i = 0; i < pa.size(); ++i) {
    EXPECT_EQ(pa[i].size(), pb[i].size());
    EXPECT_EQ(pa[i].total_compute(), pb[i].total_compute());
    EXPECT_EQ(pa[i].total_send_bytes(), pb[i].total_send_bytes());
  }
}

TEST(RandomWorkload, SeedsProduceDifferentStructures) {
  workload::RandomWorkloadParams params;
  const auto a = workload::make_random_job(params, 1);
  const auto b = workload::make_random_job(params, 2);
  EXPECT_NE(a.demand_estimate, b.demand_estimate);
}

TEST(RandomWorkload, SendsAndReceivesAreMatched) {
  workload::RandomWorkloadParams params;
  params.messages_per_process = 2.0;
  const auto spec = workload::make_random_job(params, 9);
  sched::Job job(1, spec);
  const auto programs = spec.builder(job, 16);
  int sends = 0, recvs = 0;
  for (const auto& prog : programs) {
    for (const auto& op : prog.ops) {
      sends += std::holds_alternative<node::SendOp>(op) ? 1 : 0;
      recvs += std::holds_alternative<node::ReceiveOp>(op) ? 1 : 0;
    }
  }
  EXPECT_EQ(sends, recvs);
  EXPECT_GT(sends, 0);
}

TEST(RandomWorkload, AdaptiveWidthFollowsPartition) {
  workload::RandomWorkloadParams params;
  params.arch = sched::SoftwareArch::kAdaptive;
  const auto spec = workload::make_random_job(params, 3);
  sched::Job job(1, spec);
  EXPECT_EQ(spec.builder(job, 4).size(), 4u);
  EXPECT_EQ(spec.builder(job, 16).size(), 16u);
}

}  // namespace
}  // namespace tmc::core
