#include "core/report.h"

#include <gtest/gtest.h>

#include <sstream>

namespace tmc::core {
namespace {

TEST(Report, TablePrintsAlignedColumns) {
  Table table({"name", "value"});
  table.add_row({"a", "1.0"});
  table.add_row({"long-name", "2.0"});
  std::ostringstream os;
  table.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("long-name"), std::string::npos);
  // Header, separator, two rows.
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 4);
}

TEST(Report, CsvIsCommaSeparated) {
  Table table({"a", "b"});
  table.add_row({"1", "2"});
  std::ostringstream os;
  table.csv(os);
  EXPECT_EQ(os.str(), "a,b\n1,2\n");
}

TEST(Report, MismatchedRowThrows) {
  Table table({"a", "b"});
  EXPECT_THROW(table.add_row({"only-one"}), std::invalid_argument);
}

TEST(Report, RowCount) {
  Table table({"x"});
  EXPECT_EQ(table.rows(), 0u);
  table.add_row({"1"}).add_row({"2"});
  EXPECT_EQ(table.rows(), 2u);
}

TEST(Report, FormatHelpers) {
  EXPECT_EQ(fmt_seconds(1.23456), "1.235");
  EXPECT_EQ(fmt_seconds(0.0), "0.000");
  EXPECT_EQ(fmt_ratio(0.666), "0.67");
}

TEST(Report, BannerContainsTitle) {
  std::ostringstream os;
  banner(os, "Figure 3");
  EXPECT_NE(os.str().find("Figure 3"), std::string::npos);
}

}  // namespace
}  // namespace tmc::core
