// core::run_sustained -- the long-lived open-arrival serving loop.
//
// The million-job acceptance run lives in bench/serve_sustained and the
// soak binary; these tests pin the loop's contracts at a few thousand jobs:
// exact determinism (same config, same result, twice), conservation
// (offered = admitted + shed, completed = admitted, per-class sums match
// totals), admission shedding under a tight backlog bound, checkpoint
// monotonicity (the soak test's foundation), and warmup exclusion.
#include "core/serve.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

namespace tmc::core {
namespace {

std::vector<workload::JobClass> two_class_mix() {
  workload::JobClass interactive;
  interactive.name = "interactive";
  interactive.weight = 3.0;
  interactive.service.kind = workload::ServiceModel::Kind::kExponential;
  interactive.service.mean_s = 0.05;
  interactive.arch = sched::SoftwareArch::kAdaptive;

  workload::JobClass batch;
  batch.name = "batch";
  batch.weight = 1.0;
  batch.service.kind = workload::ServiceModel::Kind::kWeibull;
  batch.service.mean_s = 0.3;
  batch.service.shape = 0.7;
  batch.arch = sched::SoftwareArch::kAdaptive;
  return {interactive, batch};
}

ServeConfig small_config(std::uint64_t jobs = 2000) {
  ServeConfig config;
  config.machine.policy.kind = sched::PolicyKind::kHybrid;
  config.machine.policy.partition_size = 4;
  config.process.kind = workload::ArrivalProcess::Kind::kPoisson;
  config.process.rate_per_s = 25.0;
  config.classes = two_class_mix();
  config.total_jobs = jobs;
  config.warmup_jobs = 200;
  config.seed = 7;
  return config;
}

TEST(RunSustained, DeterministicRunToRun) {
  const ServeResult a = run_sustained(small_config());
  const ServeResult b = run_sustained(small_config());
  EXPECT_EQ(a.offered, b.offered);
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.machine.events, b.machine.events);
  EXPECT_DOUBLE_EQ(a.horizon_s, b.horizon_s);
  EXPECT_DOUBLE_EQ(a.response_s.mean(), b.response_s.mean());
  EXPECT_DOUBLE_EQ(a.response_q.p99.value(), b.response_q.p99.value());
  ASSERT_EQ(a.classes.size(), b.classes.size());
  for (std::size_t i = 0; i < a.classes.size(); ++i) {
    EXPECT_EQ(a.classes[i].completed, b.classes[i].completed);
    EXPECT_DOUBLE_EQ(a.classes[i].response_s.mean(),
                     b.classes[i].response_s.mean());
    EXPECT_EQ(a.classes[i].response_sample.sorted_values(),
              b.classes[i].response_sample.sorted_values());
  }
}

TEST(RunSustained, ConservesEveryArrival) {
  const ServeResult r = run_sustained(small_config());
  EXPECT_EQ(r.offered, 2000u);
  EXPECT_EQ(r.offered, r.admitted + r.shed);
  EXPECT_EQ(r.completed, r.admitted);
  // Per-class `offered` counts every arrival of the class, shed included.
  std::uint64_t class_offered = 0, class_completed = 0, class_measured = 0;
  for (const ClassServeStats& cls : r.classes) {
    class_offered += cls.offered;
    class_completed += cls.completed;
    class_measured += cls.measured;
    EXPECT_EQ(cls.response_s.count(), cls.measured);
    EXPECT_EQ(cls.response_q.count(), cls.measured);
  }
  EXPECT_EQ(class_offered, r.offered);
  EXPECT_EQ(class_completed, r.completed);
  EXPECT_EQ(class_measured, r.measured);
  // Warmup exclusion: exactly the post-warmup admitted jobs are measured.
  EXPECT_EQ(r.measured, r.response_s.count());
  EXPECT_LE(r.measured, r.completed);
  EXPECT_GE(r.horizon_s, 0.0);
  EXPECT_GT(r.peak_live_jobs, 0u);
}

TEST(RunSustained, TightBacklogShedsButStaysConsistent) {
  ServeConfig config = small_config(1000);
  config.process.rate_per_s = 2000.0;  // far above service capacity
  config.max_backlog = 5;
  const ServeResult r = run_sustained(config);
  EXPECT_GT(r.shed, 0u);
  EXPECT_EQ(r.offered, r.admitted + r.shed);
  EXPECT_EQ(r.completed, r.admitted);
  std::uint64_t class_shed = 0;
  for (const ClassServeStats& cls : r.classes) class_shed += cls.shed;
  EXPECT_EQ(class_shed, r.shed);
}

TEST(RunSustained, CheckpointsAreMonotone) {
  ServeConfig config = small_config();
  config.checkpoint_every = 100;
  std::vector<ServeCheckpoint> checkpoints;
  config.checkpoint = [&checkpoints](const ServeCheckpoint& cp) {
    checkpoints.push_back(cp);
  };
  const ServeResult r = run_sustained(config);
  ASSERT_GE(checkpoints.size(), 10u);
  for (std::size_t i = 1; i < checkpoints.size(); ++i) {
    // Simulated time and the completion counter never move backwards; the
    // soak binary leans on this to claim forward progress.
    EXPECT_GE(checkpoints[i].now_s, checkpoints[i - 1].now_s);
    EXPECT_GT(checkpoints[i].completed, checkpoints[i - 1].completed);
    EXPECT_LE(checkpoints[i].offered, r.offered);
  }
  // Live jobs at every checkpoint stay within the recorded high-water mark.
  for (const ServeCheckpoint& cp : checkpoints) {
    EXPECT_LE(cp.live_jobs, r.peak_live_jobs);
  }
}

TEST(RunSustained, WindowRateReflectsThroughput) {
  ServeConfig config = small_config(4000);
  config.window_s = 5.0;
  const ServeResult r = run_sustained(config);
  // 25 jobs/s offered, everything admitted and completed: the per-window
  // completion rate must average near the arrival rate.
  EXPECT_GT(r.window_rate.count(), 10u);
  EXPECT_NEAR(r.window_rate.mean(), 25.0, 2.5);
}

TEST(RunSustained, ValidatesConfig) {
  ServeConfig config = small_config();
  config.total_jobs = 0;
  EXPECT_THROW((void)run_sustained(config), std::invalid_argument);
  config = small_config();
  config.classes.clear();
  EXPECT_THROW((void)run_sustained(config), std::invalid_argument);
  config = small_config();
  config.slo_targets = {{"analytics", 0.05, 0.99}};  // no such class
  EXPECT_THROW((void)run_sustained(config), std::invalid_argument);
}

TEST(RunSustained, SloSummaryCountsMeasuredCompletions) {
  ServeConfig config = small_config();
  config.slo_targets = {{"interactive", 0.25, 0.99}, {"batch", 2.0, 0.95}};
  const ServeResult r = run_sustained(config);
  ASSERT_EQ(r.slo.size(), 2u);
  for (std::size_t t = 0; t < r.slo.size(); ++t) {
    const auto& cls = r.slo.classes()[t];
    // SLO accounting covers exactly the measured (post-warmup) completions
    // of the targeted class.
    const int c = t == 0 ? 0 : 1;
    EXPECT_EQ(cls.completed, r.classes[static_cast<std::size_t>(c)].measured);
    EXPECT_LE(cls.met, cls.completed);
    EXPECT_GE(r.slo.attainment(t), 0.0);
    EXPECT_LE(r.slo.attainment(t), 1.0);
    EXPECT_GE(r.slo.budget_burn(t), 0.0);
    // The tracker's stretch quantiles stream the same samples as the class
    // stats; the p50s must agree (both are P^2 over the identical stream).
    EXPECT_DOUBLE_EQ(
        cls.stretch_q.p50.value(),
        r.classes[static_cast<std::size_t>(c)].stretch_q.p50.value());
  }
}

TEST(RunSustained, SloSummaryIdenticalWithAndWithoutTargets) {
  // Adding SLO targets must not disturb the simulation: every other
  // statistic stays bit-identical.
  const ServeResult plain = run_sustained(small_config());
  ServeConfig config = small_config();
  config.slo_targets = {{"interactive", 0.25, 0.99}};
  const ServeResult tracked = run_sustained(config);
  EXPECT_EQ(plain.machine.events, tracked.machine.events);
  EXPECT_DOUBLE_EQ(plain.horizon_s, tracked.horizon_s);
  EXPECT_DOUBLE_EQ(plain.response_s.mean(), tracked.response_s.mean());
  EXPECT_EQ(plain.completed, tracked.completed);
  EXPECT_EQ(plain.slo.size(), 0u);
  ASSERT_EQ(tracked.slo.size(), 1u);
  EXPECT_GT(tracked.slo.classes()[0].completed, 0u);
}

}  // namespace
}  // namespace tmc::core
