#include "core/sweep_runner.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <stdexcept>
#include <vector>

#include "core/experiment.h"

namespace tmc::core {
namespace {

TEST(SweepRunner, ResolveThreadsPassesPositiveThrough) {
  EXPECT_EQ(SweepRunner::resolve_threads(1), 1);
  EXPECT_EQ(SweepRunner::resolve_threads(7), 7);
  EXPECT_GE(SweepRunner::resolve_threads(0), 1);  // auto: hardware count
}

TEST(SweepRunner, MapReturnsResultsInSubmissionOrder) {
  SweepRunner runner(4);
  const auto results =
      runner.map(100, [](std::size_t i) { return i * i; });
  ASSERT_EQ(results.size(), 100u);
  for (std::size_t i = 0; i < results.size(); ++i) {
    EXPECT_EQ(results[i], i * i);
  }
}

TEST(SweepRunner, SingleThreadRunsInline) {
  SweepRunner runner(1);
  EXPECT_EQ(runner.thread_count(), 1);
  const auto results = runner.map(5, [](std::size_t i) { return i + 1; });
  EXPECT_EQ(results, (std::vector<std::size_t>{1, 2, 3, 4, 5}));
}

TEST(SweepRunner, ProgressIsMonotoneAndEndsAtTotal) {
  SweepRunner runner(4);
  std::vector<std::size_t> reports;
  (void)runner.map(
      17, [](std::size_t i) { return i; },
      [&](std::size_t done, std::size_t total) {
        EXPECT_EQ(total, 17u);
        reports.push_back(done);
      });
  ASSERT_FALSE(reports.empty());
  for (std::size_t i = 1; i < reports.size(); ++i) {
    EXPECT_GT(reports[i], reports[i - 1]);
  }
  EXPECT_EQ(reports.back(), 17u);
}

TEST(SweepRunner, ExceptionsRethrowLowestIndexAfterBatchSettles) {
  SweepRunner runner(4);
  std::atomic<int> completed{0};
  try {
    (void)runner.map(20, [&](std::size_t i) {
      if (i == 3 || i == 11) {
        throw std::runtime_error("boom " + std::to_string(i));
      }
      ++completed;
      return i;
    });
    FAIL() << "expected map to rethrow";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "boom 3");
  }
  EXPECT_EQ(completed.load(), 18);  // every non-throwing task still ran
}

TEST(SweepRunner, NestedMapRunsInlineWithoutDeadlock) {
  SweepRunner runner(2);
  const auto results = runner.map(4, [&](std::size_t i) {
    const auto inner =
        runner.map(3, [i](std::size_t j) { return i * 10 + j; });
    return inner[0] + inner[1] + inner[2];
  });
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(results[i], i * 30 + 3);
  }
}

// The satellite regression test: one figure point swept at 1 thread and at
// 4 threads must produce bit-identical RunResult numbers. Any shared RNG,
// ordering, or accumulation leak into the parallel path shows up here.
TEST(SweepRunner, FigurePointIsBitIdenticalAcrossThreadCounts) {
  // A reduced batch keeps the test fast; the code path is the full one.
  auto config = figure_point(workload::App::kMatMul,
                             sched::SoftwareArch::kAdaptive,
                             sched::PolicyKind::kHybrid, 4,
                             net::TopologyKind::kMesh);
  config.batch.small_size = 12;
  config.batch.large_size = 20;

  const auto sweep = [&config](int threads) {
    SweepRunner runner(threads);
    return runner.map(4, [&config](std::size_t i) {
      auto point = config;
      point.machine.policy.partition_size = 1 << i;  // 1, 2, 4, 8
      return run_batch(point, workload::BatchOrder::kInterleaved);
    });
  };

  const auto serial = sweep(1);
  const auto parallel = sweep(4);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    // Exact equality on purpose: determinism means identical bits, not
    // "close enough".
    EXPECT_EQ(serial[i].mean_response_s(), parallel[i].mean_response_s());
    EXPECT_EQ(serial[i].makespan_s, parallel[i].makespan_s);
    EXPECT_EQ(serial[i].response_small.mean(),
              parallel[i].response_small.mean());
    EXPECT_EQ(serial[i].response_large.mean(),
              parallel[i].response_large.mean());
    ASSERT_EQ(serial[i].jobs.size(), parallel[i].jobs.size());
    for (std::size_t j = 0; j < serial[i].jobs.size(); ++j) {
      EXPECT_EQ(serial[i].jobs[j].response_s, parallel[i].jobs[j].response_s);
      EXPECT_EQ(serial[i].jobs[j].wait_s, parallel[i].jobs[j].wait_s);
    }
  }
}

// Same property through run_experiment's farmed best/worst orders.
TEST(SweepRunner, ExperimentIsBitIdenticalWithAndWithoutRunner) {
  auto config = figure_point(workload::App::kSort,
                             sched::SoftwareArch::kAdaptive,
                             sched::PolicyKind::kStatic, 4,
                             net::TopologyKind::kMesh);
  config.batch.small_size = 192;
  config.batch.large_size = 384;

  const auto serial = run_experiment(config);
  SweepRunner runner(4);
  const auto parallel = run_experiment(config, &runner);
  EXPECT_EQ(serial.mean_response_s, parallel.mean_response_s);
  EXPECT_EQ(serial.primary.mean_response_s(),
            parallel.primary.mean_response_s());
  ASSERT_TRUE(serial.worst.has_value());
  ASSERT_TRUE(parallel.worst.has_value());
  EXPECT_EQ(serial.worst->mean_response_s(), parallel.worst->mean_response_s());
}

}  // namespace
}  // namespace tmc::core
