// Tests for the deterministic fault-injection subsystem: CLI parsing,
// FaultManager episode mechanics, the Mmu owner-cancel hook a crashing node
// relies on, and the end-to-end recovery invariants of a sustained serving
// run under crashes, link flaps and message drops.
#include "fault/fault.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/machine.h"
#include "core/serve.h"
#include "mem/mmu.h"
#include "net/topology.h"
#include "sim/simulation.h"
#include "sim/time.h"

namespace {

using namespace tmc;

// --- CLI parsing -----------------------------------------------------------

/// Runs every argv token through parse_cli_flag the way the benches do.
fault::FaultConfig parse_all(std::vector<const char*> argv, bool& seen,
                             std::string& error) {
  fault::FaultConfig config;
  const int argc = static_cast<int>(argv.size());
  for (int i = 0; i < argc; ++i) {
    EXPECT_TRUE(fault::parse_cli_flag(
        argc, const_cast<char**>(argv.data()), i, config, seen, error))
        << "flag not recognised: " << argv[static_cast<std::size_t>(i)];
    if (!error.empty()) break;
  }
  return config;
}

TEST(FaultCli, ParsesEveryFlag) {
  bool seen = false;
  std::string error;
  const fault::FaultConfig config = parse_all(
      {"--fault-rate", "0.5", "--fault-dist", "weibull", "--fault-shape",
       "1.5", "--fault-mttr", "3", "--fault-link-rate", "0.1",
       "--fault-link-mttr", "0.5", "--fault-drop", "0.01", "--heartbeat",
       "0.1", "--retry-budget", "4", "--retry-backoff", "0.01",
       "--fault-restart-budget", "2", "--fault-seed", "7"},
      seen, error);
  EXPECT_TRUE(error.empty()) << error;
  EXPECT_TRUE(seen);
  EXPECT_DOUBLE_EQ(config.node_rate, 0.5);
  EXPECT_EQ(config.node_dist, fault::FaultDist::kWeibull);
  EXPECT_DOUBLE_EQ(config.node_weibull_shape, 1.5);
  EXPECT_DOUBLE_EQ(config.node_mttr_s, 3.0);
  EXPECT_DOUBLE_EQ(config.link_rate, 0.1);
  EXPECT_DOUBLE_EQ(config.link_mttr_s, 0.5);
  EXPECT_DOUBLE_EQ(config.drop_prob, 0.01);
  EXPECT_DOUBLE_EQ(config.heartbeat_s, 0.1);
  EXPECT_EQ(config.retry_budget, 4);
  EXPECT_DOUBLE_EQ(config.retry_backoff_s, 0.01);
  EXPECT_EQ(config.restart_budget, 2);
  EXPECT_EQ(config.seed, 7u);
  EXPECT_TRUE(config.enabled());
}

TEST(FaultCli, RejectsMalformedValues) {
  for (const auto& bad : std::vector<std::vector<const char*>>{
           {"--fault-rate", "nope"},
           {"--fault-rate", "-1"},
           {"--fault-dist", "gaussian"},
           {"--fault-drop", "1.5"},
           {"--retry-budget", "-2"},
           {"--fault-rate"},  // missing value
       }) {
    fault::FaultConfig config;
    bool seen = false;
    std::string error;
    int i = 0;
    EXPECT_TRUE(fault::parse_cli_flag(static_cast<int>(bad.size()),
                                      const_cast<char**>(bad.data()), i,
                                      config, seen, error));
    EXPECT_FALSE(error.empty()) << "accepted: " << bad[0];
  }
}

TEST(FaultCli, IgnoresUnrelatedFlags) {
  const char* argv[] = {"--jobs", "100"};
  fault::FaultConfig config;
  bool seen = false;
  std::string error;
  int i = 0;
  EXPECT_FALSE(fault::parse_cli_flag(2, const_cast<char**>(argv), i, config,
                                     seen, error));
  EXPECT_FALSE(seen);
  EXPECT_TRUE(error.empty());
  EXPECT_FALSE(config.enabled());
}

// --- FaultManager episode mechanics ---------------------------------------

struct EpisodeCounts {
  int crashes = 0;
  int repairs = 0;
  int down_detected = 0;
  int up_detected = 0;
  int link_edges = 0;
  int alive_at_end = 0;
  fault::FaultStats stats;
};

EpisodeCounts run_episodes(const fault::FaultConfig& config, double horizon_s) {
  sim::Simulation sim;
  const net::Topology topo = net::Topology::mesh(16);
  fault::FaultManager fm(sim, topo, config);
  EpisodeCounts out;
  fault::FaultCallbacks cb;
  cb.node_crash = [&](net::NodeId) { ++out.crashes; };
  cb.node_repair = [&](net::NodeId) { ++out.repairs; };
  cb.node_detected = [&](net::NodeId, bool down) {
    if (down) {
      ++out.down_detected;
    } else {
      ++out.up_detected;
    }
  };
  cb.link_changed = [&](net::LinkId, bool) { ++out.link_edges; };
  fm.set_callbacks(std::move(cb));
  fm.start();
  const std::size_t pending = fm.pending_events();
  EXPECT_GT(pending, 0u);
  while (sim.step_until(sim::SimTime::seconds(horizon_s))) {
  }
  EXPECT_EQ(fm.pending_events(), pending);  // chains self-perpetuate
  out.alive_at_end = fm.alive_nodes();
  out.stats = fm.stats();
  return out;
}

fault::FaultConfig busy_config() {
  fault::FaultConfig config;
  config.node_rate = 1.0;  // MTBF 1 s/node: lots of episodes in 30 s
  config.node_mttr_s = 0.2;
  config.link_rate = 0.5;
  config.link_mttr_s = 0.1;
  config.heartbeat_s = 0.05;
  return config;
}

TEST(FaultManager, CrashRepairEpisodesBalance) {
  const EpisodeCounts out = run_episodes(busy_config(), 30.0);
  EXPECT_GT(out.crashes, 0);
  EXPECT_GT(out.repairs, 0);
  EXPECT_GT(out.link_edges, 0);
  // Each node strictly alternates crash -> repair, so globally crashes can
  // lead repairs by at most the node count, and the live census reconciles.
  EXPECT_GE(out.crashes, out.repairs);
  EXPECT_LE(out.crashes - out.repairs, 16);
  EXPECT_EQ(out.alive_at_end, 16 - (out.crashes - out.repairs));
  // Heartbeat detection lags ground truth and may miss episodes shorter
  // than one period, but per node downs lead ups.
  EXPECT_GT(out.down_detected, 0);
  EXPECT_LE(out.down_detected, out.crashes);
  EXPECT_LE(out.up_detected, out.repairs);
  EXPECT_GE(out.down_detected, out.up_detected);
  // Injection-side counters agree with the callback edges.
  EXPECT_EQ(out.stats.crashes, static_cast<std::uint64_t>(out.crashes));
  EXPECT_EQ(out.stats.repairs, static_cast<std::uint64_t>(out.repairs));
  EXPECT_EQ(out.stats.link_downs + out.stats.link_ups,
            static_cast<std::uint64_t>(out.link_edges));
  EXPECT_GT(out.stats.mtbf_observed_s, 0.0);
  EXPECT_GT(out.stats.mttr_observed_s, 0.0);
}

TEST(FaultManager, ReplayIsBitIdentical) {
  const EpisodeCounts a = run_episodes(busy_config(), 30.0);
  const EpisodeCounts b = run_episodes(busy_config(), 30.0);
  EXPECT_EQ(a.crashes, b.crashes);
  EXPECT_EQ(a.repairs, b.repairs);
  EXPECT_EQ(a.down_detected, b.down_detected);
  EXPECT_EQ(a.link_edges, b.link_edges);
  EXPECT_EQ(a.stats.mtbf_observed_s, b.stats.mtbf_observed_s);
  EXPECT_EQ(a.stats.mttr_observed_s, b.stats.mttr_observed_s);
}

TEST(FaultManager, DifferentSeedsDiverge) {
  fault::FaultConfig other = busy_config();
  other.seed = 1234;
  const EpisodeCounts a = run_episodes(busy_config(), 30.0);
  const EpisodeCounts b = run_episodes(other, 30.0);
  EXPECT_NE(a.stats.mtbf_observed_s, b.stats.mtbf_observed_s);
}

TEST(FaultManager, JitterIsSeededUnitInterval) {
  sim::Simulation sim;
  const net::Topology topo = net::Topology::mesh(4);
  fault::FaultConfig config;
  config.node_rate = 0.1;
  fault::FaultManager a(sim, topo, config);
  fault::FaultManager b(sim, topo, config);
  for (int i = 0; i < 100; ++i) {
    const double x = a.jitter();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
    EXPECT_EQ(x, b.jitter());  // same seed, same stream
  }
}

// --- Mmu::cancel_owner (crashed node retracting dead requests) -------------

TEST(MmuCancelOwner, DropsQueuedRequestsWithoutCallbacks) {
  sim::Simulation sim;
  mem::Mmu mmu(sim, 1024);
  auto hog = mmu.try_alloc(1024);
  ASSERT_TRUE(hog.has_value());
  int owner_a = 0, owner_b = 0;  // addresses used as tags
  int granted_a = 0, granted_b = 0;
  mmu.request(512, [&](mem::Block b) { ++granted_a; b.release(); }, &owner_a);
  mmu.request(256, [&](mem::Block b) { ++granted_b; b.release(); }, &owner_b);
  EXPECT_EQ(mmu.pending_requests(), 2u);
  EXPECT_EQ(mmu.cancel_owner(&owner_a), 1u);
  EXPECT_EQ(mmu.pending_requests(), 1u);
  hog->release();
  while (sim.step_until(sim::SimTime::seconds(1))) {
  }
  EXPECT_EQ(granted_a, 0);
  EXPECT_EQ(granted_b, 1);
  EXPECT_EQ(mmu.bytes_used(), 0u);
}

TEST(MmuCancelOwner, ReclaimsGrantedButUndeliveredAllocations) {
  sim::Simulation sim;
  mem::Mmu mmu(sim, 1024);
  int owner = 0;
  int granted = 0;
  // Memory is free, so the grant is already carved and parked behind an
  // event; cancelling before the event fires must return the bytes without
  // running the callback.
  mmu.request(512, [&](mem::Block b) { ++granted; b.release(); }, &owner);
  EXPECT_EQ(mmu.cancel_owner(&owner), 1u);
  while (sim.step_until(sim::SimTime::seconds(1))) {
  }
  EXPECT_EQ(granted, 0);
  EXPECT_EQ(mmu.bytes_used(), 0u);
}

// --- End-to-end recovery invariants ----------------------------------------

core::ServeConfig faulty_serve_config() {
  core::ServeConfig config;
  config.machine.topology = net::TopologyKind::kMesh;
  config.machine.policy.kind = sched::PolicyKind::kStatic;
  config.machine.policy.partition_size = 4;
  config.machine.faults.node_rate = 0.2;  // MTBF 5 s/node
  config.machine.faults.node_mttr_s = 0.5;
  config.machine.faults.link_rate = 0.02;
  config.machine.faults.link_mttr_s = 0.2;
  config.machine.faults.drop_prob = 0.01;
  config.machine.faults.heartbeat_s = 0.1;
  config.process.rate_per_s = 25.0;
  workload::JobClass cls;
  cls.name = "small";
  cls.service.kind = workload::ServiceModel::Kind::kExponential;
  cls.service.mean_s = 0.05;
  config.classes = {cls};
  config.total_jobs = 600;
  config.warmup_jobs = 50;
  config.seed = 1;
  return config;
}

TEST(ServeFaults, EveryAdmittedJobFinishesOrExhaustsItsBudget) {
  const core::ServeResult r = core::run_sustained(faulty_serve_config());
  // Conservation: nothing vanishes. Every admitted job retires its slot --
  // by finishing, or by exhausting its restart budget (counted in lost).
  EXPECT_EQ(r.completed, r.admitted);
  EXPECT_EQ(r.offered, r.admitted + r.shed);
  std::uint64_t class_lost = 0;
  for (const auto& cls : r.classes) class_lost += cls.lost;
  EXPECT_EQ(class_lost, r.jobs_lost);
  EXPECT_EQ(r.jobs_lost, r.machine.faults.jobs_failed);
  EXPECT_LE(r.jobs_lost, r.completed);
  // The run actually exercised the machinery.
  EXPECT_GT(r.machine.faults.crashes, 0u);
  EXPECT_GT(r.machine.faults.repairs, 0u);
  EXPECT_GT(r.machine.faults.drops, 0u);
  EXPECT_GT(r.machine.faults.retries, 0u);
  EXPECT_GT(r.machine.faults.job_restarts + r.machine.faults.jobs_failed, 0u);
}

TEST(ServeFaults, FaultyReplayIsBitIdentical) {
  const core::ServeResult a = core::run_sustained(faulty_serve_config());
  const core::ServeResult b = core::run_sustained(faulty_serve_config());
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.jobs_lost, b.jobs_lost);
  EXPECT_EQ(a.machine.faults.crashes, b.machine.faults.crashes);
  EXPECT_EQ(a.machine.faults.retries, b.machine.faults.retries);
  EXPECT_EQ(a.machine.faults.job_restarts, b.machine.faults.job_restarts);
  EXPECT_EQ(a.response_s.mean(), b.response_s.mean());  // bit-identical
  EXPECT_EQ(a.horizon_s, b.horizon_s);
}

TEST(ServeFaults, ZeroRestartBudgetFailsAbortedJobsInsteadOfHanging) {
  core::ServeConfig config = faulty_serve_config();
  config.machine.faults.restart_budget = 0;
  const core::ServeResult r = core::run_sustained(config);
  EXPECT_EQ(r.completed, r.admitted);
  EXPECT_GT(r.jobs_lost, 0u);
  EXPECT_EQ(r.machine.faults.job_restarts, 0u);
}

TEST(ServeFaults, LossesAreExcludedFromResponseStats) {
  core::ServeConfig config = faulty_serve_config();
  config.machine.faults.restart_budget = 0;
  const core::ServeResult r = core::run_sustained(config);
  // measured counts successful post-warmup completions only, and lost jobs
  // are never measured, so the two partitions of completed never overlap.
  EXPECT_LE(r.measured + r.jobs_lost, r.completed);
  EXPECT_GT(r.response_s.mean(), 0.0);
}

TEST(ServeFaults, DisabledConfigBuildsNoManager) {
  core::MachineConfig config;
  EXPECT_FALSE(config.faults.enabled());
  core::Multicomputer machine(config);
  EXPECT_EQ(machine.fault_manager(), nullptr);
}

}  // namespace
