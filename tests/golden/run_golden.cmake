# Golden-figure regression runner, invoked by ctest:
#
#   cmake -DBENCH=<binary> -DTHREADS=<n> -DGOLDEN=<expected.txt>
#         -P run_golden.cmake
#
# Runs the bench and fails unless its stdout is byte-identical to the
# checked-in table. The figure pipeline is deterministic by design -- same
# seeds, same event order, same formatting -- at ANY --threads value, so the
# comparison is an exact string match, not a tolerance diff. Regenerate a
# golden file by running the bench with --threads 1 and committing the
# output alongside the change that moved the numbers.
#
# Optional -DEXTRA_ARGS="--metrics=... --timeline=..." appends flags to the
# invocation; the observability variants use this to prove that attaching
# the metrics registry and interval sampler leaves the table untouched.
foreach(var BENCH THREADS GOLDEN)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "run_golden.cmake: -D${var}=... is required")
  endif()
endforeach()

set(extra_list "")
if(DEFINED EXTRA_ARGS)
  separate_arguments(extra_list UNIX_COMMAND "${EXTRA_ARGS}")
endif()

execute_process(
  COMMAND "${BENCH}" --threads "${THREADS}" ${extra_list}
  OUTPUT_VARIABLE actual
  RESULT_VARIABLE rc
)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR
    "${BENCH} --threads ${THREADS} ${EXTRA_ARGS} exited with ${rc}")
endif()

file(READ "${GOLDEN}" expected)
if(NOT actual STREQUAL expected)
  get_filename_component(name "${GOLDEN}" NAME)
  file(WRITE "${GOLDEN}.actual" "${actual}")
  message(FATAL_ERROR
    "figure table drifted from ${name} (threads=${THREADS}); "
    "fresh output written to ${GOLDEN}.actual -- diff it against the "
    "golden file, and re-commit the golden only if the change is intended")
endif()
