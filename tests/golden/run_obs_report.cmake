# Job-tracing pipeline regression, invoked by ctest:
#
#   cmake -DBENCH=<serve_sustained> -DPYTHON=<python3> -DTOOLS=<tools dir>
#         -DWORK=<scratch dir> -DGOLDEN=<expected report>
#         -P run_obs_report.cmake
#
# Drives the full consumer chain the README documents: record a job-traced
# timeline from a quick serving run, validate the flow/span contracts with
# check_obs_json.py --flows, fold it into the per-class response breakdown
# with obs_report.py, and byte-diff the table against the checked-in golden.
# The simulation is deterministic, the trace is deterministic, so the
# report is too; regenerate the golden with the same three commands.
foreach(var BENCH PYTHON TOOLS WORK GOLDEN)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "run_obs_report.cmake: -D${var}=... is required")
  endif()
endforeach()

set(timeline "${WORK}/obs_report_timeline.json")
set(report "${WORK}/obs_report_actual.txt")

execute_process(
  COMMAND "${BENCH}" --quick --threads 1 --policy hybrid
          --slo interactive=250ms,batch=2s@95 "--timeline=${timeline}"
  OUTPUT_QUIET
  RESULT_VARIABLE rc
)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "serve_sustained --timeline exited with ${rc}")
endif()

execute_process(
  COMMAND "${PYTHON}" "${TOOLS}/check_obs_json.py" --flows "${timeline}"
  RESULT_VARIABLE rc
)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "check_obs_json.py --flows rejected the trace (${rc})")
endif()

execute_process(
  COMMAND "${PYTHON}" "${TOOLS}/obs_report.py" "${timeline}" --out "${report}"
  RESULT_VARIABLE rc
)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "obs_report.py failed (${rc}) -- the per-job spans "
                      "no longer decompose response time")
endif()

file(READ "${GOLDEN}" expected)
file(READ "${report}" actual)
if(NOT actual STREQUAL expected)
  file(WRITE "${GOLDEN}.actual" "${actual}")
  message(FATAL_ERROR
    "obs_report breakdown drifted from the golden; fresh output written "
    "to ${GOLDEN}.actual -- diff and re-commit only if intended")
endif()

file(REMOVE "${timeline}")
