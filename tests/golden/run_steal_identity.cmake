# Differential identity runner, invoked by ctest:
#
#   cmake -DBENCH=<fig7 binary> -DTHREADS=<n> -DGOLDEN=<fig3_quick.txt>
#         -P run_steal_identity.cmake
#
# Runs the stealing-architecture figure bench with --steal-rate 0 and
# requires its result TABLE to be byte-identical to figure 3's checked-in
# golden. With the rate at zero no engine is built and every kStealing job
# runs its fallback fixed-architecture script, so the third architecture
# must collapse onto the first exactly -- same events, same numbers, same
# formatting -- at any thread count. Only the table block is compared (the
# banner title and the trailing prose legitimately name different figures).
foreach(var BENCH THREADS GOLDEN)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "run_steal_identity.cmake: -D${var}=... is required")
  endif()
endforeach()

# The table block: the "config ..." header, the dash rule, then every
# non-empty row up to the first blank line.
function(extract_table text label out)
  string(REGEX MATCH "config[^\n]*\n-+\n([^\n]+\n)*" table "${text}")
  if(table STREQUAL "")
    message(FATAL_ERROR "run_steal_identity.cmake: no result table in ${label}")
  endif()
  set(${out} "${table}" PARENT_SCOPE)
endfunction()

execute_process(
  COMMAND "${BENCH}" --threads "${THREADS}" --quick --steal-rate 0
  OUTPUT_VARIABLE actual
  RESULT_VARIABLE rc
)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR
    "${BENCH} --threads ${THREADS} --quick --steal-rate 0 exited with ${rc}")
endif()

file(READ "${GOLDEN}" expected)
extract_table("${actual}" "steal-rate-0 output" actual_table)
extract_table("${expected}" "${GOLDEN}" expected_table)
if(NOT actual_table STREQUAL expected_table)
  message(FATAL_ERROR
    "stealing architecture with --steal-rate 0 diverged from the fixed "
    "golden (threads=${THREADS}):\n--- expected (${GOLDEN})\n"
    "${expected_table}\n--- actual\n${actual_table}")
endif()
