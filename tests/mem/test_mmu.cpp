#include "mem/mmu.h"

#include <gtest/gtest.h>

#include <optional>
#include <vector>

#include "sim/simulation.h"

namespace tmc::mem {
namespace {

using sim::SimTime;

class MmuTest : public ::testing::Test {
 protected:
  sim::Simulation sim;
};

TEST_F(MmuTest, TryAllocCarvesFromArena) {
  Mmu mmu(sim, 1024);
  auto block = mmu.try_alloc(100);
  ASSERT_TRUE(block.has_value());
  EXPECT_EQ(block->size(), 100u);
  EXPECT_EQ(mmu.bytes_used(), 100u);
  EXPECT_EQ(mmu.bytes_free(), 924u);
}

TEST_F(MmuTest, BlockReleaseReturnsMemory) {
  Mmu mmu(sim, 1024);
  {
    auto block = mmu.try_alloc(512);
    ASSERT_TRUE(block.has_value());
  }  // RAII release
  EXPECT_EQ(mmu.bytes_used(), 0u);
  EXPECT_EQ(mmu.bytes_free(), 1024u);
}

TEST_F(MmuTest, ExplicitReleaseIsIdempotent) {
  Mmu mmu(sim, 1024);
  auto block = mmu.try_alloc(64);
  block->release();
  block->release();
  EXPECT_EQ(mmu.bytes_used(), 0u);
  EXPECT_FALSE(block->valid());
}

TEST_F(MmuTest, TryAllocFailsWhenFull) {
  Mmu mmu(sim, 100);
  auto a = mmu.try_alloc(80);
  ASSERT_TRUE(a.has_value());
  EXPECT_FALSE(mmu.try_alloc(30).has_value());
  EXPECT_TRUE(mmu.try_alloc(20).has_value());
}

TEST_F(MmuTest, RequestGrantsThroughEventQueue) {
  Mmu mmu(sim, 1024);
  bool granted = false;
  mmu.request(128, [&](Block b) {
    granted = true;
    EXPECT_EQ(b.size(), 128u);
  });
  EXPECT_FALSE(granted);  // never synchronous
  sim.run();
  EXPECT_TRUE(granted);
  EXPECT_EQ(mmu.bytes_used(), 0u);  // block dropped at end of callback
}

TEST_F(MmuTest, ServiceTimeDelaysGrant) {
  Mmu mmu(sim, 1024, SimTime::microseconds(5));
  SimTime granted_at;
  mmu.request(128, [&](Block) { granted_at = sim.now(); });
  sim.run();
  EXPECT_EQ(granted_at, SimTime::microseconds(5));
}

TEST_F(MmuTest, ExhaustedRequestsBlockUntilFree) {
  Mmu mmu(sim, 100);
  std::optional<Block> held;
  mmu.request(100, [&](Block b) { held = std::move(b); });
  bool second_granted = false;
  mmu.request(50, [&](Block) { second_granted = true; });
  sim.run();
  EXPECT_TRUE(held.has_value());
  EXPECT_FALSE(second_granted);
  EXPECT_EQ(mmu.pending_requests(), 1u);

  sim.schedule(SimTime::seconds(1), [&] { held->release(); });
  sim.run();
  EXPECT_TRUE(second_granted);
  EXPECT_EQ(mmu.pending_requests(), 0u);
}

TEST_F(MmuTest, BlockedRequestsGrantInFifoOrder) {
  Mmu mmu(sim, 100);
  std::optional<Block> held;
  mmu.request(100, [&](Block b) { held = std::move(b); });
  std::vector<int> order;
  mmu.request(10, [&](Block) { order.push_back(1); });
  mmu.request(10, [&](Block) { order.push_back(2); });
  mmu.request(10, [&](Block) { order.push_back(3); });
  sim.run();
  sim.schedule(SimTime::zero(), [&] { held->release(); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST_F(MmuTest, FifoHeadOfLineBlockingHoldsSmallerRequests) {
  Mmu mmu(sim, 100, SimTime::zero(), MmuDiscipline::kFifo);
  auto big = mmu.try_alloc(60);
  ASSERT_TRUE(big.has_value());
  bool huge_granted = false, small_granted = false;
  mmu.request(80, [&](Block) { huge_granted = true; });   // cannot fit yet
  mmu.request(10, [&](Block) { small_granted = true; });  // could fit, waits
  sim.run();
  EXPECT_FALSE(huge_granted);
  EXPECT_FALSE(small_granted);
}

TEST_F(MmuTest, FirstFitLetsSmallRequestsBypassBlockedLarge) {
  Mmu mmu(sim, 100);  // default discipline: first-fit scan
  auto big = mmu.try_alloc(60);
  ASSERT_TRUE(big.has_value());
  bool huge_granted = false, small_granted = false;
  std::optional<Block> small_block;
  mmu.request(80, [&](Block) { huge_granted = true; });
  mmu.request(10, [&](Block b) {
    small_granted = true;
    small_block = std::move(b);
  });
  sim.run();
  EXPECT_FALSE(huge_granted);
  EXPECT_TRUE(small_granted);  // bypassed the blocked 80-byte head
  big->release();
  sim.run();
  EXPECT_FALSE(huge_granted);  // only 90 bytes free while the small is held
  small_block->release();
  sim.run();
  EXPECT_TRUE(huge_granted);
}

TEST_F(MmuTest, FirstFitGrantsOldestFittingFirst) {
  Mmu mmu(sim, 100);
  auto hog = mmu.try_alloc(100);
  std::vector<int> order;
  std::optional<Block> held90;
  mmu.request(90, [&](Block b) {
    order.push_back(90);
    held90 = std::move(b);
  });
  mmu.request(30, [&](Block) { order.push_back(30); });
  mmu.request(20, [&](Block) { order.push_back(20); });
  hog->release();
  sim.run();
  // The oldest request (90) is granted first and, while it is held, the
  // remaining 10 bytes fit neither younger request.
  EXPECT_EQ(order, (std::vector<int>{90}));
  EXPECT_EQ(mmu.pending_requests(), 2u);
  held90->release();
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{90, 30, 20}));
}

TEST_F(MmuTest, CoalescingAllowsFullReuse) {
  Mmu mmu(sim, 300);
  auto a = mmu.try_alloc(100);
  auto b = mmu.try_alloc(100);
  auto c = mmu.try_alloc(100);
  ASSERT_TRUE(a && b && c);
  EXPECT_EQ(mmu.largest_free_range(), 0u);
  // Free out of order; neighbours must coalesce back into one range.
  b->release();
  a->release();
  c->release();
  EXPECT_EQ(mmu.free_range_count(), 1u);
  EXPECT_EQ(mmu.largest_free_range(), 300u);
}

TEST_F(MmuTest, FragmentationLimitsLargestRange) {
  Mmu mmu(sim, 300);
  auto a = mmu.try_alloc(100);
  auto b = mmu.try_alloc(100);
  auto c = mmu.try_alloc(100);
  ASSERT_TRUE(a && b && c);
  a->release();
  c->release();
  // 200 bytes free but split by b.
  EXPECT_EQ(mmu.bytes_free(), 200u);
  EXPECT_EQ(mmu.largest_free_range(), 100u);
  EXPECT_EQ(mmu.free_range_count(), 2u);
  EXPECT_FALSE(mmu.try_alloc(150).has_value());
}

TEST_F(MmuTest, HighWatermarkTracksPeak) {
  Mmu mmu(sim, 1000);
  auto a = mmu.try_alloc(700);
  a->release();
  auto b = mmu.try_alloc(100);
  EXPECT_EQ(mmu.high_watermark(), 700u);
}

TEST_F(MmuTest, OversizedRequestThrows) {
  Mmu mmu(sim, 100);
  EXPECT_THROW(mmu.request(101, [](Block) {}), std::invalid_argument);
  EXPECT_THROW(mmu.request(0, [](Block) {}), std::invalid_argument);
}

TEST_F(MmuTest, ZeroCapacityThrows) {
  EXPECT_THROW(Mmu(sim, 0), std::invalid_argument);
}

TEST_F(MmuTest, FifoTryAllocFailsWhileQueueNonEmpty) {
  Mmu mmu(sim, 100, SimTime::zero(), MmuDiscipline::kFifo);
  auto held = mmu.try_alloc(60);
  mmu.request(70, [](Block) {});
  EXPECT_FALSE(mmu.try_alloc(10).has_value());  // FIFO: no overtaking
  held->release();
  sim.run();  // queued request granted
  EXPECT_TRUE(mmu.try_alloc(10).has_value());
}

TEST_F(MmuTest, FirstFitTryAllocBypassesQueue) {
  Mmu mmu(sim, 100);
  auto held = mmu.try_alloc(60);
  mmu.request(70, [](Block) {});
  EXPECT_TRUE(mmu.try_alloc(10).has_value());
}

TEST_F(MmuTest, BlockTimeAccounted) {
  Mmu mmu(sim, 100);
  std::optional<Block> held;
  mmu.request(100, [&](Block b) { held = std::move(b); });
  mmu.request(10, [](Block) {});
  sim.run();
  sim.schedule(SimTime::seconds(2), [&] { held->release(); });
  sim.run();
  EXPECT_EQ(mmu.total_block_time(), SimTime::seconds(2));
  EXPECT_EQ(mmu.blocked_count(), 1u);
}

TEST_F(MmuTest, MoveTransfersBlockOwnership) {
  Mmu mmu(sim, 100);
  auto a = mmu.try_alloc(50);
  Block b = std::move(*a);
  EXPECT_FALSE(a->valid());
  EXPECT_TRUE(b.valid());
  b.release();
  EXPECT_EQ(mmu.bytes_used(), 0u);
}

TEST_F(MmuTest, AverageBytesUsedIsTimeWeighted) {
  Mmu mmu(sim, 1000);
  std::optional<Block> block;
  mmu.request(500, [&](Block b) { block = std::move(b); });
  sim.run();
  sim.schedule(SimTime::seconds(1), [&] { block->release(); });
  sim.run();
  sim.run_until(SimTime::seconds(2));
  // 500 bytes for 1s out of 2s observed.
  EXPECT_NEAR(mmu.average_bytes_used(), 250.0, 1.0);
}

// First-fit behaviour: a freed low-offset hole is reused in preference to
// the tail of the arena.
TEST_F(MmuTest, FirstFitPrefersLowestOffset) {
  Mmu mmu(sim, 1000);
  auto a = mmu.try_alloc(100);
  auto b = mmu.try_alloc(100);
  const std::size_t a_offset = a->offset();
  a->release();
  auto c = mmu.try_alloc(50);
  EXPECT_EQ(c->offset(), a_offset);
}

}  // namespace
}  // namespace tmc::mem
