// Tests of store-and-forward packet fragmentation (NetworkParams::packet_bytes).
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "mem/mmu.h"
#include "net/network.h"
#include "sim/simulation.h"

namespace tmc::net {
namespace {

using sim::SimTime;

/// Linear 4-node wiring; per_byte 1 us, hop latency 10 us, header 16 B.
class FragmentationTest : public ::testing::Test {
 protected:
  FragmentationTest() : topo(Topology::linear(4)) {
    params.per_byte = SimTime::microseconds(1);
    params.per_hop_latency = SimTime::microseconds(10);
    params.header_bytes = 16;
    for (int i = 0; i < 4; ++i) {
      mmus.push_back(std::make_unique<mem::Mmu>(sim, 1 << 20));
      mmu_ptrs.push_back(mmus.back().get());
    }
  }

  std::unique_ptr<StoreForwardNetwork> make_network(std::size_t packet_bytes) {
    params.packet_bytes = packet_bytes;
    auto net = std::make_unique<StoreForwardNetwork>(sim, topo, mmu_ptrs, params);
    net->set_delivery_handler([this](const Message& msg, mem::Block buffer) {
      delivered_bytes.push_back(buffer.size());
      delivered_at.push_back(sim.now());
      last_msg = msg;
      buffer.release();
    });
    return net;
  }

  Message make_msg(NodeId src, NodeId dst, std::size_t bytes) {
    Message msg;
    msg.id = next_id++;
    msg.src_node = src;
    msg.dst_node = dst;
    msg.bytes = bytes;
    return msg;
  }

  mem::Block buffer_at(NodeId node, std::size_t bytes) {
    auto block = mmus[static_cast<std::size_t>(node)]->try_alloc(bytes);
    EXPECT_TRUE(block.has_value());
    return std::move(*block);
  }

  sim::Simulation sim;
  Topology topo;
  NetworkParams params;
  std::vector<std::unique_ptr<mem::Mmu>> mmus;
  std::vector<mem::Mmu*> mmu_ptrs;
  std::vector<std::size_t> delivered_bytes;
  std::vector<SimTime> delivered_at;
  Message last_msg;
  std::uint64_t next_id = 1;
};

TEST_F(FragmentationTest, SmallMessagesAreNotFragmented) {
  auto net = make_network(1024);
  net->send(make_msg(0, 3, 100), buffer_at(0, 100));
  sim.run();
  ASSERT_EQ(delivered_bytes.size(), 1u);
  // Delivered in the per-hop buffer (payload + header), as unfragmented.
  EXPECT_EQ(delivered_bytes[0], 116u);
  EXPECT_EQ(net->messages_delivered(), 1u);
}

TEST_F(FragmentationTest, FragmentedMessageReassemblesOnce) {
  auto net = make_network(1000);
  net->send(make_msg(0, 3, 4000), buffer_at(0, 4000));
  sim.run();
  ASSERT_EQ(delivered_bytes.size(), 1u);  // one delivery, not four
  EXPECT_EQ(delivered_bytes[0], 4016u);   // full message buffer
  EXPECT_EQ(net->messages_delivered(), 1u);
  EXPECT_EQ(net->messages_sent(), 1u);
  for (const auto& mmu : mmus) EXPECT_EQ(mmu->bytes_used(), 0u);
}

TEST_F(FragmentationTest, PipeliningBeatsWholeMessageForwarding) {
  // 4000 B over 3 hops: whole-message = 3 x (10 + 4016) us ~ 12.1 ms;
  // 1000-B packets pipeline: ~ first packet 3 hops + 3 more on the last
  // link ~ 6.1 ms.
  auto whole = make_network(0);
  whole->send(make_msg(0, 3, 4000), buffer_at(0, 4000));
  sim.run();
  const SimTime whole_time = delivered_at.at(0);

  delivered_at.clear();
  auto packet = make_network(1000);
  packet->send(make_msg(0, 3, 4000), buffer_at(0, 4000));
  sim.run();
  const SimTime packet_time = delivered_at.at(0) - whole_time;

  EXPECT_LT(packet_time.ns(), whole_time.ns() * 2 / 3);
}

TEST_F(FragmentationTest, IntermediateNodesHoldOnlyPackets) {
  auto net = make_network(1000);
  net->send(make_msg(0, 3, 8000), buffer_at(0, 8000));
  sim.run();
  // Receive buffers are pre-posted per packet, so the first-hop node can
  // transiently hold all packet buffers (message + per-packet headers) but
  // downstream nodes only see the pipelined few.
  EXPECT_LE(mmus[1]->high_watermark(), 8000u + 8 * 16);
  EXPECT_LT(mmus[2]->high_watermark(), 8000u);
  // The destination did (reassembly buffer).
  EXPECT_GE(mmus[3]->high_watermark(), 8016u);
}

TEST_F(FragmentationTest, UnevenTailPacketCarriesRemainder) {
  auto net = make_network(1000);
  net->send(make_msg(0, 1, 2500), buffer_at(0, 2500));  // 1000+1000+500
  sim.run();
  ASSERT_EQ(delivered_bytes.size(), 1u);
  EXPECT_EQ(delivered_bytes[0], 2516u);
  EXPECT_EQ(net->total_hops(), 3u);  // three packets, one hop each
}

TEST_F(FragmentationTest, SelfSendSkipsFragmentation) {
  auto net = make_network(64);
  net->send(make_msg(2, 2, 4000), buffer_at(2, 4000));
  sim.run();
  ASSERT_EQ(delivered_bytes.size(), 1u);
  EXPECT_EQ(delivered_at[0], SimTime::zero());
  EXPECT_EQ(net->total_hops(), 0u);
}

TEST_F(FragmentationTest, ManyFragmentedMessagesInterleaveCorrectly) {
  auto net = make_network(500);
  for (int i = 0; i < 6; ++i) {
    net->send(make_msg(0, 3, 1600 + static_cast<std::size_t>(i) * 100),
              buffer_at(0, 1600 + static_cast<std::size_t>(i) * 100));
  }
  sim.run();
  EXPECT_EQ(delivered_bytes.size(), 6u);
  EXPECT_EQ(net->messages_delivered(), 6u);
  for (const auto& mmu : mmus) EXPECT_EQ(mmu->bytes_used(), 0u);
}

TEST_F(FragmentationTest, ProgressGateParksIndividualPackets) {
  auto net = make_network(1000);
  bool frozen = false;
  net->set_progress_gate([&frozen](const Message&) { return !frozen; });
  net->send(make_msg(0, 3, 4000), buffer_at(0, 4000));
  // Freeze mid-flight: some packets park, the rest wait.
  sim.schedule(SimTime::milliseconds(2), [&] { frozen = true; });
  sim.run();
  EXPECT_TRUE(delivered_bytes.empty());
  EXPECT_GT(net->parked_messages(), 0u);
  frozen = false;
  net->kick();
  sim.run();
  ASSERT_EQ(delivered_bytes.size(), 1u);
  EXPECT_EQ(delivered_bytes[0], 4016u);
}

}  // namespace
}  // namespace tmc::net
