#include "net/link.h"

#include <gtest/gtest.h>

namespace tmc::net {
namespace {

using sim::SimTime;

TEST(Link, IdleLinkStartsImmediately) {
  Link link;
  const auto done =
      link.reserve(SimTime::seconds(5), SimTime::seconds(2), 100);
  EXPECT_EQ(done, SimTime::seconds(7));
  EXPECT_EQ(link.busy_until(), SimTime::seconds(7));
}

TEST(Link, BusyLinkQueuesFifo) {
  Link link;
  link.reserve(SimTime::seconds(0), SimTime::seconds(3), 10);
  const auto done =
      link.reserve(SimTime::seconds(1), SimTime::seconds(2), 10);
  EXPECT_EQ(done, SimTime::seconds(5));  // waits for first transfer
  EXPECT_EQ(link.queueing_time(), SimTime::seconds(2));
}

TEST(Link, CountsTransfersAndBytes) {
  Link link;
  link.reserve(SimTime::zero(), SimTime::seconds(1), 100);
  link.reserve(SimTime::zero(), SimTime::seconds(1), 200);
  EXPECT_EQ(link.transfers(), 2u);
  EXPECT_EQ(link.bytes_carried(), 300u);
}

TEST(Link, UtilizationCountsOnlyElapsedBusyTime) {
  Link link;
  link.reserve(SimTime::seconds(0), SimTime::seconds(2), 10);
  // At t=4: busy 2 of 4 seconds.
  EXPECT_DOUBLE_EQ(link.utilization(SimTime::seconds(4)), 0.5);
  // A reservation stretching past `now` only counts its elapsed part.
  link.reserve(SimTime::seconds(4), SimTime::seconds(4), 10);
  EXPECT_DOUBLE_EQ(link.utilization(SimTime::seconds(6)), 4.0 / 6.0);
}

TEST(Link, ZeroTimeUtilizationIsZero) {
  Link link;
  EXPECT_DOUBLE_EQ(link.utilization(SimTime::zero()), 0.0);
}

TEST(Link, GapsBetweenTransfersStayIdle) {
  Link link;
  link.reserve(SimTime::seconds(0), SimTime::seconds(1), 10);
  link.reserve(SimTime::seconds(9), SimTime::seconds(1), 10);
  EXPECT_DOUBLE_EQ(link.utilization(SimTime::seconds(10)), 0.2);
  EXPECT_EQ(link.queueing_time(), SimTime::zero());
}

}  // namespace
}  // namespace tmc::net
