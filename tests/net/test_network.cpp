#include "net/network.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "mem/mmu.h"
#include "sim/simulation.h"

namespace tmc::net {
namespace {

using sim::SimTime;

struct Delivery {
  Message msg;
  SimTime at;
};

/// Four nodes in a linear array with small, observable parameters:
/// per_byte = 1 us, per_hop_latency = 10 us, header = 16 bytes.
/// A 100-byte message therefore needs 126 us per hop.
class NetworkTest : public ::testing::Test {
 protected:
  NetworkTest() : topo(Topology::linear(4)) {
    params.per_byte = SimTime::microseconds(1);
    params.per_hop_latency = SimTime::microseconds(10);
    params.header_bytes = 16;
    for (int i = 0; i < 4; ++i) {
      mmus.push_back(std::make_unique<mem::Mmu>(sim, 10'000));
      mmu_ptrs.push_back(mmus.back().get());
    }
  }

  template <typename Net>
  std::unique_ptr<Net> make_network() {
    auto net = std::make_unique<Net>(sim, topo, mmu_ptrs, params);
    net->set_delivery_handler([this](const Message& msg, mem::Block buffer) {
      deliveries.push_back({msg, sim.now()});
      buffer.release();
    });
    net->set_hop_hook([this](NodeId node, const Message&, std::size_t) {
      hop_nodes.push_back(node);
    });
    return net;
  }

  Message make_msg(NodeId src, NodeId dst, std::size_t bytes) {
    Message msg;
    msg.id = 1;
    msg.src_node = src;
    msg.dst_node = dst;
    msg.tag = 7;
    msg.bytes = bytes;
    return msg;
  }

  mem::Block source_buffer(NodeId src, std::size_t bytes) {
    auto block = mmus[static_cast<std::size_t>(src)]->try_alloc(bytes);
    EXPECT_TRUE(block.has_value());
    return std::move(*block);
  }

  sim::Simulation sim;
  Topology topo;
  NetworkParams params;
  std::vector<std::unique_ptr<mem::Mmu>> mmus;
  std::vector<mem::Mmu*> mmu_ptrs;
  std::vector<Delivery> deliveries;
  std::vector<NodeId> hop_nodes;
};

TEST_F(NetworkTest, SingleHopDeliveryTiming) {
  auto net = make_network<StoreForwardNetwork>();
  net->send(make_msg(0, 1, 100), source_buffer(0, 100));
  sim.run();
  ASSERT_EQ(deliveries.size(), 1u);
  EXPECT_EQ(deliveries[0].at, SimTime::microseconds(126));
  EXPECT_EQ(deliveries[0].msg.bytes, 100u);
  EXPECT_EQ(net->messages_delivered(), 1u);
  EXPECT_EQ(net->in_flight(), 0u);
}

TEST_F(NetworkTest, MultiHopIsSequentialStoreAndForward) {
  auto net = make_network<StoreForwardNetwork>();
  net->send(make_msg(0, 3, 100), source_buffer(0, 100));
  sim.run();
  ASSERT_EQ(deliveries.size(), 1u);
  // Three hops, each fully buffered before the next: 3 x 126 us.
  EXPECT_EQ(deliveries[0].at, SimTime::microseconds(378));
  EXPECT_EQ(net->total_hops(), 3u);
  // Hop hook fires at every arrival node: 1, 2, 3.
  EXPECT_EQ(hop_nodes, (std::vector<NodeId>{1, 2, 3}));
}

TEST_F(NetworkTest, SelfSendBypassesLinks) {
  auto net = make_network<StoreForwardNetwork>();
  net->send(make_msg(2, 2, 100), source_buffer(2, 100));
  sim.run();
  ASSERT_EQ(deliveries.size(), 1u);
  EXPECT_EQ(deliveries[0].at, SimTime::zero());
  EXPECT_EQ(net->total_hops(), 0u);
  EXPECT_TRUE(hop_nodes.empty());
}

TEST_F(NetworkTest, BuffersAreReturnedEverywhere) {
  auto net = make_network<StoreForwardNetwork>();
  net->send(make_msg(0, 3, 500), source_buffer(0, 500));
  sim.run();
  for (const auto& mmu : mmus) {
    EXPECT_EQ(mmu->bytes_used(), 0u);
  }
  // Intermediate nodes really buffered the message (store-and-forward).
  EXPECT_EQ(mmus[1]->high_watermark(), 500u + params.header_bytes);
  EXPECT_EQ(mmus[2]->high_watermark(), 500u + params.header_bytes);
}

TEST_F(NetworkTest, LinkContentionSerialisesTransfers) {
  auto net = make_network<StoreForwardNetwork>();
  auto msg_a = make_msg(0, 1, 100);
  auto msg_b = make_msg(0, 1, 100);
  msg_b.id = 2;
  net->send(msg_a, source_buffer(0, 100));
  net->send(msg_b, source_buffer(0, 100));
  sim.run();
  ASSERT_EQ(deliveries.size(), 2u);
  EXPECT_EQ(deliveries[0].at, SimTime::microseconds(126));
  EXPECT_EQ(deliveries[1].at, SimTime::microseconds(252));
}

TEST_F(NetworkTest, OppositeDirectionsDoNotContend) {
  auto net = make_network<StoreForwardNetwork>();
  auto msg_b = make_msg(1, 0, 100);
  msg_b.id = 2;
  net->send(make_msg(0, 1, 100), source_buffer(0, 100));
  net->send(msg_b, source_buffer(1, 100));
  sim.run();
  ASSERT_EQ(deliveries.size(), 2u);
  EXPECT_EQ(deliveries[0].at, SimTime::microseconds(126));
  EXPECT_EQ(deliveries[1].at, SimTime::microseconds(126));
}

TEST_F(NetworkTest, MemoryPressureDelaysForwarding) {
  auto net = make_network<StoreForwardNetwork>();
  // Fill node 1 so the first hop's buffer request must wait.
  auto hog = mmus[1]->try_alloc(9'950);
  ASSERT_TRUE(hog.has_value());
  net->send(make_msg(0, 1, 100), source_buffer(0, 100));
  sim.run();
  EXPECT_TRUE(deliveries.empty());  // stuck behind memory pressure
  sim.schedule(SimTime::milliseconds(5), [&] { hog->release(); });
  sim.run();
  ASSERT_EQ(deliveries.size(), 1u);
  EXPECT_EQ(deliveries[0].at,
            SimTime::milliseconds(5) + SimTime::microseconds(126));
}

TEST_F(NetworkTest, LinkStatsAccumulate) {
  auto net = make_network<StoreForwardNetwork>();
  net->send(make_msg(0, 1, 100), source_buffer(0, 100));
  sim.run();
  const auto link_id = topo.link_between(0, 1);
  ASSERT_TRUE(link_id.has_value());
  EXPECT_EQ(net->link(*link_id).transfers(), 1u);
  EXPECT_EQ(net->link(*link_id).bytes_carried(), 116u);
  EXPECT_GT(net->max_link_utilization(sim.now()), 0.0);
}

TEST_F(NetworkTest, WormholePipelinesAcrossHops) {
  auto net = make_network<WormholeNetwork>();
  net->send(make_msg(0, 3, 100), source_buffer(0, 100));
  sim.run();
  ASSERT_EQ(deliveries.size(), 1u);
  // 3 router hops + one pipelined payload stream: 30 us + 116 us.
  EXPECT_EQ(deliveries[0].at, SimTime::microseconds(146));
}

TEST_F(NetworkTest, WormholeUsesNoIntermediateBuffers) {
  auto net = make_network<WormholeNetwork>();
  net->send(make_msg(0, 3, 500), source_buffer(0, 500));
  sim.run();
  EXPECT_EQ(mmus[1]->high_watermark(), 0u);
  EXPECT_EQ(mmus[2]->high_watermark(), 0u);
  EXPECT_EQ(mmus[3]->high_watermark(), 500u + params.header_bytes);
  for (const auto& mmu : mmus) EXPECT_EQ(mmu->bytes_used(), 0u);
}

TEST_F(NetworkTest, WormholeSelfSendDeliversDirectly) {
  auto net = make_network<WormholeNetwork>();
  net->send(make_msg(1, 1, 64), source_buffer(1, 64));
  sim.run();
  ASSERT_EQ(deliveries.size(), 1u);
  EXPECT_EQ(deliveries[0].at, SimTime::zero());
}

TEST_F(NetworkTest, WormholeHoldsWholePathAsCircuit) {
  auto net = make_network<WormholeNetwork>();
  auto msg_b = make_msg(1, 2, 100);
  msg_b.id = 2;
  net->send(make_msg(0, 3, 100), source_buffer(0, 100));
  net->send(msg_b, source_buffer(1, 100));
  sim.run();
  ASSERT_EQ(deliveries.size(), 2u);
  // First worm holds links 0-1, 1-2, 2-3 for its whole 146 us; the second
  // message needs 1-2 and must wait for the circuit to clear.
  EXPECT_EQ(deliveries[0].at, SimTime::microseconds(146));
  EXPECT_EQ(deliveries[1].at,
            SimTime::microseconds(146) + SimTime::microseconds(126));
}

TEST_F(NetworkTest, MismatchedMmuCountThrows) {
  std::vector<mem::Mmu*> short_list(mmu_ptrs.begin(), mmu_ptrs.end() - 1);
  EXPECT_THROW(StoreForwardNetwork(sim, topo, short_list, params),
               std::invalid_argument);
  EXPECT_THROW(WormholeNetwork(sim, topo, short_list, params),
               std::invalid_argument);
}

}  // namespace
}  // namespace tmc::net
