// Tests of the network progress gate: messages of descheduled jobs park in
// place, pinning their buffers, until kicked.
#include <gtest/gtest.h>

#include <memory>
#include <unordered_set>
#include <vector>

#include "mem/mmu.h"
#include "net/network.h"
#include "sim/simulation.h"

namespace tmc::net {
namespace {

using sim::SimTime;

class ProgressGateTest : public ::testing::Test {
 protected:
  ProgressGateTest() : topo(Topology::linear(4)) {
    for (int i = 0; i < 4; ++i) {
      mmus.push_back(std::make_unique<mem::Mmu>(sim, 1 << 20));
      mmu_ptrs.push_back(mmus.back().get());
    }
    net = std::make_unique<StoreForwardNetwork>(sim, topo, mmu_ptrs);
    net->set_delivery_handler([this](const Message& msg, mem::Block buffer) {
      delivered.push_back(msg.id);
      buffer.release();
    });
    net->set_progress_gate([this](const Message& msg) {
      return !frozen.contains(msg.job);
    });
  }

  Message make_msg(std::uint32_t job, NodeId src, NodeId dst,
                   std::size_t bytes = 100) {
    Message msg;
    msg.id = next_id++;
    msg.job = job;
    msg.src_node = src;
    msg.dst_node = dst;
    msg.bytes = bytes;
    return msg;
  }

  mem::Block buffer_at(NodeId node, std::size_t bytes) {
    auto block = mmus[static_cast<std::size_t>(node)]->try_alloc(bytes);
    EXPECT_TRUE(block.has_value());
    return std::move(*block);
  }

  sim::Simulation sim;
  Topology topo;
  std::vector<std::unique_ptr<mem::Mmu>> mmus;
  std::vector<mem::Mmu*> mmu_ptrs;
  std::unique_ptr<StoreForwardNetwork> net;
  std::unordered_set<std::uint32_t> frozen;
  std::vector<std::uint64_t> delivered;
  std::uint64_t next_id = 1;
};

TEST_F(ProgressGateTest, FrozenJobParksAtSource) {
  frozen.insert(7);
  net->send(make_msg(7, 0, 3), buffer_at(0, 100));
  sim.run();
  EXPECT_TRUE(delivered.empty());
  EXPECT_EQ(net->parked_messages(), 1u);
  // The source buffer stays pinned while parked.
  EXPECT_EQ(mmus[0]->bytes_used(), 100u);
}

TEST_F(ProgressGateTest, KickReleasesThawedMessages) {
  frozen.insert(7);
  net->send(make_msg(7, 0, 3), buffer_at(0, 100));
  sim.run();
  frozen.erase(7);
  net->kick();
  sim.run();
  EXPECT_EQ(delivered.size(), 1u);
  EXPECT_EQ(net->parked_messages(), 0u);
  for (const auto& mmu : mmus) EXPECT_EQ(mmu->bytes_used(), 0u);
}

TEST_F(ProgressGateTest, KickReparksStillFrozenMessages) {
  frozen.insert(7);
  net->send(make_msg(7, 0, 3), buffer_at(0, 100));
  sim.run();
  net->kick();  // still frozen
  sim.run();
  EXPECT_TRUE(delivered.empty());
  EXPECT_EQ(net->parked_messages(), 1u);
}

TEST_F(ProgressGateTest, FreezeMidRouteParksAtIntermediateNode) {
  // Freeze while the second hop is in flight (one hop of a 100-byte
  // message takes ~72 us): the message completes that hop, then parks at
  // node 2, pinning its buffer there -- not at the source or destination.
  net->send(make_msg(7, 0, 3), buffer_at(0, 100));
  sim.schedule(SimTime::microseconds(80), [&] { frozen.insert(7); });
  sim.run();
  EXPECT_TRUE(delivered.empty());
  EXPECT_EQ(net->parked_messages(), 1u);
  EXPECT_EQ(mmus[0]->bytes_used(), 0u);  // source freed after its hop
  EXPECT_GT(mmus[2]->bytes_used(), 0u);  // pinned at the intermediate
  EXPECT_EQ(mmus[3]->bytes_used(), 0u);  // never reached the destination
  frozen.clear();
  net->kick();
  sim.run();
  EXPECT_EQ(delivered.size(), 1u);
}

TEST_F(ProgressGateTest, UnrelatedJobsFlowPastFrozenOnes) {
  frozen.insert(7);
  net->send(make_msg(7, 0, 3), buffer_at(0, 100));
  net->send(make_msg(8, 0, 3), buffer_at(0, 100));
  sim.run();
  ASSERT_EQ(delivered.size(), 1u);
  EXPECT_EQ(delivered[0], 2u);  // job 8's message
  EXPECT_EQ(net->parked_messages(), 1u);
}

TEST_F(ProgressGateTest, NoGateMeansFreeFlow) {
  net->set_progress_gate(nullptr);
  frozen.insert(7);  // irrelevant without a gate
  net->send(make_msg(7, 0, 3), buffer_at(0, 100));
  sim.run();
  EXPECT_EQ(delivered.size(), 1u);
}

TEST_F(ProgressGateTest, WormholeGateParksBeforeLaunch) {
  WormholeNetwork worm(sim, topo, mmu_ptrs);
  std::vector<std::uint64_t> worm_delivered;
  worm.set_delivery_handler([&](const Message& msg, mem::Block buffer) {
    worm_delivered.push_back(msg.id);
    buffer.release();
  });
  worm.set_progress_gate(
      [this](const Message& msg) { return !frozen.contains(msg.job); });
  frozen.insert(9);
  worm.send(make_msg(9, 0, 3), buffer_at(0, 100));
  sim.run();
  EXPECT_TRUE(worm_delivered.empty());
  frozen.clear();
  worm.kick();
  sim.run();
  EXPECT_EQ(worm_delivered.size(), 1u);
}

}  // namespace
}  // namespace tmc::net
