#include "net/routing.h"

#include <gtest/gtest.h>

#include <tuple>

namespace tmc::net {
namespace {

TEST(Routing, SelfRouteIsTrivial) {
  const auto topo = Topology::ring(8);
  const RoutingTable table(topo);
  EXPECT_EQ(table.distance(3, 3), 0);
  EXPECT_EQ(table.next_hop(3, 3), 3);
  EXPECT_EQ(table.route(3, 3), std::vector<NodeId>{3});
}

TEST(Routing, LinearDistancesAreManhattans) {
  const auto topo = Topology::linear(16);
  const RoutingTable table(topo);
  EXPECT_EQ(table.distance(0, 15), 15);
  EXPECT_EQ(table.distance(4, 7), 3);
  EXPECT_EQ(table.next_hop(4, 7), 5);
  EXPECT_EQ(table.next_hop(7, 4), 6);
}

TEST(Routing, RingTakesShorterDirection) {
  const auto topo = Topology::ring(16);
  const RoutingTable table(topo);
  EXPECT_EQ(table.distance(0, 15), 1);
  EXPECT_EQ(table.next_hop(0, 15), 15);
  EXPECT_EQ(table.distance(0, 8), 8);
}

TEST(Routing, HypercubeDistanceIsHammingWeight) {
  const auto topo = Topology::hypercube(16);
  const RoutingTable table(topo);
  for (NodeId u = 0; u < 16; ++u) {
    for (NodeId v = 0; v < 16; ++v) {
      EXPECT_EQ(table.distance(u, v),
                std::popcount(static_cast<unsigned>(u ^ v)));
    }
  }
}

TEST(Routing, MeshDistanceIsManhattan) {
  const auto topo = Topology::mesh(16);  // 4x4, row-major
  const RoutingTable table(topo);
  const auto manhattan = [](NodeId a, NodeId b) {
    return std::abs(a / 4 - b / 4) + std::abs(a % 4 - b % 4);
  };
  for (NodeId u = 0; u < 16; ++u) {
    for (NodeId v = 0; v < 16; ++v) {
      EXPECT_EQ(table.distance(u, v), manhattan(u, v));
    }
  }
}

TEST(Routing, DeterministicAcrossRebuilds) {
  const auto topo = Topology::mesh(16);
  const RoutingTable a(topo), b(topo);
  for (NodeId u = 0; u < 16; ++u) {
    for (NodeId v = 0; v < 16; ++v) {
      EXPECT_EQ(a.next_hop(u, v), b.next_hop(u, v));
    }
  }
}

TEST(Routing, TiledTopologyRoutesWithinPartitions) {
  const auto topo = Topology::tiled(TopologyKind::kLinear, 4, 4);
  const RoutingTable table(topo);
  EXPECT_EQ(table.distance(0, 3), 3);
  EXPECT_EQ(table.distance(4, 7), 3);
  EXPECT_EQ(table.distance(12, 15), 3);
}

/// Property sweep: every route in every paper topology is a valid shortest
/// path along physical links.
class RoutingGrid
    : public ::testing::TestWithParam<std::tuple<TopologyKind, int>> {};

TEST_P(RoutingGrid, RoutesAreValidShortestPaths) {
  const auto [kind, n] = GetParam();
  const auto topo = Topology::make(kind, n);
  const RoutingTable table(topo);
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = 0; v < n; ++v) {
      const auto path = table.route(u, v);
      ASSERT_GE(path.size(), 1u);
      EXPECT_EQ(path.front(), u);
      EXPECT_EQ(path.back(), v);
      EXPECT_EQ(static_cast<int>(path.size()) - 1, table.distance(u, v));
      // Symmetric distances in an undirected graph.
      EXPECT_EQ(table.distance(u, v), table.distance(v, u));
      // Every consecutive pair is physically adjacent.
      for (std::size_t i = 0; i + 1 < path.size(); ++i) {
        EXPECT_TRUE(topo.link_between(path[i], path[i + 1]).has_value())
            << path[i] << " -> " << path[i + 1];
      }
      // Triangle inequality against every intermediate node.
      for (const NodeId w : path) {
        EXPECT_EQ(table.distance(u, w) + table.distance(w, v),
                  table.distance(u, v));
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    PaperGrid, RoutingGrid,
    ::testing::Combine(::testing::Values(TopologyKind::kLinear,
                                         TopologyKind::kRing,
                                         TopologyKind::kMesh,
                                         TopologyKind::kHypercube,
                                         TopologyKind::kTorus,
                                         TopologyKind::kTree),
                       ::testing::Values(1, 2, 4, 8, 16)),
    [](const auto& info) {
      return std::string(1, topology_letter(std::get<0>(info.param))) +
             std::to_string(std::get<1>(info.param));
    });

}  // namespace
}  // namespace tmc::net
