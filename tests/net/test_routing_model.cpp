// Differential model check: Router (closed-form) vs RoutingTable (BFS).
//
// The golden tables pin the simulation's routes to the BFS table's choices,
// so the algorithmic router is only correct if it is bit-identical -- same
// next hop, same distance, same link path -- on every pair the machine can
// route. This suite exhaustively compares the two implementations on every
// topology kind at every size 1..64 (powers of two only for the hypercube),
// and on tiled machines across every within-partition pair.
#include <algorithm>
#include <string>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "net/router.h"
#include "net/routing.h"
#include "net/topology.h"

namespace tmc::net {
namespace {

/// Compares router vs table on every reachable (src, dst) pair of `topo`.
/// `tile` limits pairs to a common partition (cross-tile pairs are
/// unreachable by construction and asserted against in both
/// implementations).
void expect_identical_routes(const Topology& topo) {
  const RoutingTable table(topo);
  const Router router(topo);
  ASSERT_TRUE(router.algorithmic());
  EXPECT_EQ(router.storage_bytes(), 0u);

  const int tile = topo.tile_size();
  std::vector<LinkId> path;
  for (NodeId src = 0; src < topo.node_count(); ++src) {
    for (NodeId dst = 0; dst < topo.node_count(); ++dst) {
      if (src / tile != dst / tile) continue;  // unreachable by design
      ASSERT_EQ(router.distance(src, dst), table.distance(src, dst))
          << topo.label() << " " << src << "->" << dst;
      ASSERT_EQ(router.next_hop(src, dst), table.next_hop(src, dst))
          << topo.label() << " " << src << "->" << dst;
      router.link_path(src, dst, path);
      const auto ref = table.link_path(src, dst);
      ASSERT_EQ(path.size(), ref.size())
          << topo.label() << " " << src << "->" << dst;
      for (std::size_t i = 0; i < path.size(); ++i) {
        ASSERT_EQ(path[i], ref[i])
            << topo.label() << " " << src << "->" << dst << " hop " << i;
      }
      ASSERT_EQ(router.route(src, dst), table.route(src, dst))
          << topo.label() << " " << src << "->" << dst;
    }
  }
}

bool is_power_of_two(int n) { return n >= 1 && (n & (n - 1)) == 0; }

class RoutingModelKind : public ::testing::TestWithParam<TopologyKind> {};

TEST_P(RoutingModelKind, MatchesBfsTableAtEverySizeUpTo64) {
  const auto kind = GetParam();
  for (int n = 1; n <= 64; ++n) {
    if (kind == TopologyKind::kHypercube && !is_power_of_two(n)) continue;
    SCOPED_TRACE("n=" + std::to_string(n));
    expect_identical_routes(Topology::make(kind, n));
  }
}

TEST_P(RoutingModelKind, MatchesBfsTableOnTiledMachines) {
  const auto kind = GetParam();
  // The Multicomputer's standard wiring: `copies` disjoint partitions of
  // `tile` nodes each. Exercises the id-decomposition path of the router.
  for (const auto [tile, copies] :
       {std::pair{4, 4}, std::pair{8, 4}, std::pair{16, 4}, std::pair{1, 8}}) {
    SCOPED_TRACE("tile=" + std::to_string(tile) +
                 " copies=" + std::to_string(copies));
    expect_identical_routes(Topology::tiled(kind, tile, copies));
  }
}

INSTANTIATE_TEST_SUITE_P(AllKinds, RoutingModelKind,
                         ::testing::Values(TopologyKind::kLinear,
                                           TopologyKind::kRing,
                                           TopologyKind::kMesh,
                                           TopologyKind::kHypercube,
                                           TopologyKind::kTorus,
                                           TopologyKind::kTree),
                         [](const auto& info) {
                           return std::string(topology_name(info.param));
                         });

// The known-hard tie cases that refuted the naive "lowest-numbered closer
// neighbour" rule -- kept as named regressions so a future tie-break change
// fails loudly rather than deep inside the sweep above.
TEST(RoutingModel, RingAntipodalTieMatchesBfs) {
  const auto topo = Topology::ring(8);
  const RoutingTable table(topo);
  const Router router(topo);
  // 1 -> 5 is distance 4 both ways round; BFS discovers via node 2.
  EXPECT_EQ(table.next_hop(1, 5), 2);
  EXPECT_EQ(router.next_hop(1, 5), 2);
}

TEST(RoutingModel, TorusCrossDimensionTieMatchesBfs) {
  const auto topo = Topology::torus(64);  // 8x8, both wraps
  const RoutingTable table(topo);
  const Router router(topo);
  // (0,0) -> (5,1) [id 41]: stepping to (7,0) [id 56] and (0,1) [id 1] are
  // both closer; BFS discovery order prefers 56 even though 1 < 56.
  EXPECT_EQ(table.next_hop(0, 41), 56);
  EXPECT_EQ(router.next_hop(0, 41), 56);
}

// The BFS table stays available behind Mode::kTable and must agree with
// itself through the Router facade (fallback path for irregular wirings).
TEST(RoutingModel, TableModeDelegatesToBfs) {
  const auto topo = Topology::mesh(12);
  const RoutingTable table(topo);
  const Router router(topo, Router::Mode::kTable);
  EXPECT_FALSE(router.algorithmic());
  EXPECT_EQ(router.storage_bytes(), table.storage_bytes());
  EXPECT_GT(router.storage_bytes(), 0u);
  std::vector<LinkId> path;
  for (NodeId src = 0; src < topo.node_count(); ++src) {
    for (NodeId dst = 0; dst < topo.node_count(); ++dst) {
      EXPECT_EQ(router.distance(src, dst), table.distance(src, dst));
      EXPECT_EQ(router.next_hop(src, dst), table.next_hop(src, dst));
      router.link_path(src, dst, path);
      const auto ref = table.link_path(src, dst);
      EXPECT_TRUE(std::equal(path.begin(), path.end(), ref.begin(), ref.end()));
    }
  }
}

// next_hop_link is the store-and-forward fast path: the hop it returns must
// be the same node next_hop reports, over the directed link the topology
// records for that edge.
TEST(RoutingModel, NextHopLinkAgreesWithNextHopAndTopology) {
  for (const auto kind : {TopologyKind::kRing, TopologyKind::kTorus,
                          TopologyKind::kHypercube, TopologyKind::kTree}) {
    const auto topo = Topology::make(kind, 16);
    const Router router(topo);
    for (NodeId src = 0; src < topo.node_count(); ++src) {
      for (NodeId dst = 0; dst < topo.node_count(); ++dst) {
        if (src == dst) continue;
        const auto hop = router.next_hop_link(src, dst);
        EXPECT_EQ(hop.node, router.next_hop(src, dst));
        EXPECT_EQ(hop.link, topo.link_between(src, hop.node));
      }
    }
  }
}

// Routing memory is the scaling story: O(N^2)+ for the table, zero for the
// closed form.
TEST(RoutingModel, AlgorithmicRoutingHoldsNoPerPairState) {
  const auto topo = Topology::mesh(256);
  const Router algo(topo);
  const Router table(topo, Router::Mode::kTable);
  EXPECT_EQ(algo.storage_bytes(), 0u);
  // 256^2 pairs x (next-hop + distance) alone is > 512 KB.
  EXPECT_GT(table.storage_bytes(), 512u * 1024u);
}

}  // namespace
}  // namespace tmc::net
