#include "net/topology.h"

#include <gtest/gtest.h>

#include <set>

namespace tmc::net {
namespace {

TEST(Topology, LinearLinkCount) {
  // n-1 wires, two directed links each.
  EXPECT_EQ(Topology::linear(1).link_count(), 0);
  EXPECT_EQ(Topology::linear(8).link_count(), 14);
  EXPECT_EQ(Topology::linear(16).link_count(), 30);
}

TEST(Topology, RingLinkCount) {
  EXPECT_EQ(Topology::ring(1).link_count(), 0);
  EXPECT_EQ(Topology::ring(2).link_count(), 2);  // single wire, no duplicate
  EXPECT_EQ(Topology::ring(8).link_count(), 16);
  EXPECT_EQ(Topology::ring(16).link_count(), 32);
}

TEST(Topology, MeshLinkCount) {
  // 4x4 mesh: 2 * 4 * 3 = 24 wires.
  EXPECT_EQ(Topology::mesh(16).link_count(), 48);
  // 2x2: 4 wires.
  EXPECT_EQ(Topology::mesh(4).link_count(), 8);
  // 2x4: 4*1 + 2*3 = 10 wires.
  EXPECT_EQ(Topology::mesh(8).link_count(), 20);
}

TEST(Topology, HypercubeLinkCount) {
  // n * log2(n) / 2 wires.
  EXPECT_EQ(Topology::hypercube(2).link_count(), 2);
  EXPECT_EQ(Topology::hypercube(8).link_count(), 24);
  EXPECT_EQ(Topology::hypercube(16).link_count(), 64);
}

TEST(Topology, Diameters) {
  EXPECT_EQ(Topology::linear(16).diameter(), 15);
  EXPECT_EQ(Topology::ring(16).diameter(), 8);
  EXPECT_EQ(Topology::mesh(16).diameter(), 6);  // 4x4
  EXPECT_EQ(Topology::hypercube(16).diameter(), 4);
  EXPECT_EQ(Topology::linear(1).diameter(), 0);
}

TEST(Topology, DegreeBoundsRespectTransputerLinks) {
  for (int n : {1, 2, 4, 8, 16}) {
    EXPECT_TRUE(Topology::linear(n).transputer_feasible());
    EXPECT_TRUE(Topology::ring(n).transputer_feasible());
    EXPECT_TRUE(Topology::mesh(n).transputer_feasible());
    EXPECT_TRUE(Topology::hypercube(n).transputer_feasible());
  }
  // A 32-node hypercube would need 5 links per node.
  EXPECT_FALSE(Topology::hypercube(32).transputer_feasible());
}

TEST(Topology, RejectsInvalidSizes) {
  // Any n >= 1 is legal except for the hypercube, which needs a power of
  // two. (Sizes used to be restricted to powers of two in [1, 16]; the
  // scaling work lifted that.)
  EXPECT_THROW(Topology::linear(0), std::invalid_argument);
  EXPECT_THROW(Topology::ring(0), std::invalid_argument);
  EXPECT_THROW(Topology::mesh(-1), std::invalid_argument);
  EXPECT_THROW(Topology::hypercube(-4), std::invalid_argument);
  EXPECT_THROW(Topology::hypercube(12), std::invalid_argument);
  EXPECT_NO_THROW(Topology::linear(3));
  EXPECT_NO_THROW(Topology::ring(7));
  EXPECT_NO_THROW(Topology::mesh(12));
  EXPECT_NO_THROW(Topology::torus(48));
  EXPECT_NO_THROW(Topology::tree(1000));
  EXPECT_NO_THROW(Topology::hypercube(1024));
}

TEST(Topology, MeshShapeIsMostSquareFactoring) {
  // Historical power-of-two shapes are preserved exactly.
  EXPECT_EQ(Topology::mesh_shape(1), (std::pair<int, int>{1, 1}));
  EXPECT_EQ(Topology::mesh_shape(4), (std::pair<int, int>{2, 2}));
  EXPECT_EQ(Topology::mesh_shape(8), (std::pair<int, int>{2, 4}));
  EXPECT_EQ(Topology::mesh_shape(16), (std::pair<int, int>{4, 4}));
  EXPECT_EQ(Topology::mesh_shape(32), (std::pair<int, int>{4, 8}));
  // General sizes pick the most-square divisor pair, rows <= cols.
  EXPECT_EQ(Topology::mesh_shape(12), (std::pair<int, int>{3, 4}));
  EXPECT_EQ(Topology::mesh_shape(48), (std::pair<int, int>{6, 8}));
  EXPECT_EQ(Topology::mesh_shape(1024), (std::pair<int, int>{32, 32}));
  // Primes degrade to a 1 x n chain rather than throwing.
  EXPECT_EQ(Topology::mesh_shape(13), (std::pair<int, int>{1, 13}));
}

TEST(Topology, LargeNonSquareMeshIsWellFormed) {
  // 96 = 8 x 12: the factoring guard must produce a connected grid whose
  // recorded shape matches the link structure.
  const auto topo = Topology::mesh(96);
  EXPECT_EQ(topo.tile_rows(), 8);
  EXPECT_EQ(topo.tile_cols(), 12);
  // rows*(cols-1) + cols*(rows-1) wires, two directed links each.
  EXPECT_EQ(topo.link_count(), 2 * (8 * 11 + 12 * 7));
  EXPECT_EQ(topo.diameter(), 7 + 11);
  for (NodeId u = 0; u < topo.node_count(); ++u) {
    EXPECT_GE(topo.degree(u), 2);
    EXPECT_LE(topo.degree(u), 4);
  }
}

TEST(Topology, LargeTorusKeepsTransputerDegree) {
  const auto torus = Topology::torus(96);  // 8 x 12, both wraps
  EXPECT_EQ(torus.max_degree(), 4);
  EXPECT_TRUE(torus.transputer_feasible());
  EXPECT_EQ(torus.diameter(), 4 + 6);
  // Wrap links at the far edges of both dimensions.
  EXPECT_TRUE(torus.link_between(11, 0).has_value());
  EXPECT_TRUE(torus.link_between(84, 0).has_value());
}

TEST(Topology, TileMetadataForFlatAndTiledMachines) {
  const auto flat = Topology::mesh(16);
  EXPECT_EQ(flat.tile_size(), 16);
  EXPECT_EQ(flat.tile_copies(), 1);
  const auto tiled = Topology::tiled(TopologyKind::kMesh, 4, 4);
  EXPECT_EQ(tiled.tile_size(), 4);
  EXPECT_EQ(tiled.tile_copies(), 4);
  EXPECT_EQ(tiled.tile_rows(), 2);
  EXPECT_EQ(tiled.tile_cols(), 2);
}

TEST(Topology, StorageIsLinearInNodes) {
  // CSR adjacency: bytes per node must stay roughly flat as the machine
  // grows (degree is bounded by the four Transputer links).
  const auto small = Topology::mesh(64);
  const auto large = Topology::mesh(1024);
  const double small_per_node =
      static_cast<double>(small.storage_bytes()) / 64;
  const double large_per_node =
      static_cast<double>(large.storage_bytes()) / 1024;
  EXPECT_LT(large_per_node, 2.0 * small_per_node);
}

TEST(Topology, NeighborsAreSortedAndSymmetric) {
  const auto topo = Topology::hypercube(16);
  for (NodeId u = 0; u < topo.node_count(); ++u) {
    const auto& nbs = topo.neighbors(u);
    for (std::size_t i = 1; i < nbs.size(); ++i) {
      EXPECT_LT(nbs[i - 1].node, nbs[i].node);
    }
    for (const auto& nb : nbs) {
      EXPECT_TRUE(topo.link_between(nb.node, u).has_value());
    }
  }
}

TEST(Topology, LinkEndsMatchAdjacency) {
  const auto topo = Topology::mesh(8);
  for (NodeId u = 0; u < topo.node_count(); ++u) {
    for (const auto& nb : topo.neighbors(u)) {
      const auto ends = topo.link_ends(nb.link);
      EXPECT_EQ(ends.from, u);
      EXPECT_EQ(ends.to, nb.node);
    }
  }
}

TEST(Topology, LinkBetweenNonAdjacentIsEmpty) {
  const auto topo = Topology::linear(16);
  EXPECT_FALSE(topo.link_between(0, 5).has_value());
  EXPECT_TRUE(topo.link_between(0, 1).has_value());
}

TEST(Topology, LabelsMatchPaperNotation) {
  EXPECT_EQ(Topology::linear(8).label(), "8L");
  EXPECT_EQ(Topology::ring(16).label(), "16R");
  EXPECT_EQ(Topology::mesh(4).label(), "4M");
  EXPECT_EQ(Topology::hypercube(2).label(), "2H");
}

TEST(Topology, HypercubeNeighborsDifferByOneBit) {
  const auto topo = Topology::hypercube(16);
  for (NodeId u = 0; u < 16; ++u) {
    for (const auto& nb : topo.neighbors(u)) {
      const unsigned diff =
          static_cast<unsigned>(u) ^ static_cast<unsigned>(nb.node);
      EXPECT_EQ(diff & (diff - 1), 0u) << u << "<->" << nb.node;
    }
  }
}

TEST(Topology, TiledBuildsDisjointCopies) {
  const auto topo = Topology::tiled(TopologyKind::kRing, 4, 4);
  EXPECT_EQ(topo.node_count(), 16);
  EXPECT_EQ(topo.link_count(), 4 * Topology::ring(4).link_count());
  // No link crosses a partition boundary.
  for (LinkId id = 0; id < topo.link_count(); ++id) {
    const auto ends = topo.link_ends(id);
    EXPECT_EQ(ends.from / 4, ends.to / 4);
  }
}

TEST(Topology, TiledSingletonPartitionsHaveNoLinks) {
  const auto topo = Topology::tiled(TopologyKind::kMesh, 1, 16);
  EXPECT_EQ(topo.node_count(), 16);
  EXPECT_EQ(topo.link_count(), 0);
}

TEST(Topology, TiledOneCopyEqualsBase) {
  const auto tiled = Topology::tiled(TopologyKind::kHypercube, 8, 1);
  const auto base = Topology::hypercube(8);
  EXPECT_EQ(tiled.link_count(), base.link_count());
  EXPECT_EQ(tiled.diameter(), base.diameter());
}

TEST(Topology, TorusProperties) {
  const auto torus = Topology::torus(16);  // 4x4 with both wraps
  EXPECT_EQ(torus.link_count(), 64);       // 32 wires
  EXPECT_EQ(torus.diameter(), 4);
  EXPECT_EQ(torus.max_degree(), 4);
  EXPECT_TRUE(torus.transputer_feasible());
  // Wrap links exist.
  EXPECT_TRUE(torus.link_between(3, 0).has_value());
  EXPECT_TRUE(torus.link_between(12, 0).has_value());
}

TEST(Topology, TorusSkipsDegenerateWraps) {
  // 2x4 shape: row wrap (4 columns) exists; column wrap (2 rows) would
  // duplicate the existing wire and is skipped.
  const auto torus = Topology::torus(8);
  EXPECT_TRUE(torus.link_between(3, 0).has_value());
  // Only one physical wire between vertical neighbours.
  int count = 0;
  for (const auto& nb : torus.neighbors(0)) count += nb.node == 4 ? 1 : 0;
  EXPECT_EQ(count, 1);
  EXPECT_TRUE(torus.transputer_feasible());
}

TEST(Topology, TreeProperties) {
  const auto tree = Topology::tree(16);
  EXPECT_EQ(tree.link_count(), 30);  // n-1 wires
  EXPECT_EQ(tree.max_degree(), 3);
  EXPECT_TRUE(tree.transputer_feasible());
  EXPECT_TRUE(tree.link_between(0, 1).has_value());
  EXPECT_TRUE(tree.link_between(1, 3).has_value());
  EXPECT_FALSE(tree.link_between(1, 2).has_value());
  // Leaves 7..14 sit at depth 3; 15 at depth 4 under node 7.
  EXPECT_EQ(tree.diameter(), 7);  // 15 -> root -> 14
}

TEST(Topology, KindLettersRoundTrip) {
  EXPECT_EQ(topology_letter(TopologyKind::kLinear), 'L');
  EXPECT_EQ(topology_letter(TopologyKind::kRing), 'R');
  EXPECT_EQ(topology_letter(TopologyKind::kMesh), 'M');
  EXPECT_EQ(topology_letter(TopologyKind::kHypercube), 'H');
  EXPECT_EQ(topology_letter(TopologyKind::kTorus), 'T');
  EXPECT_EQ(topology_letter(TopologyKind::kTree), 'B');
  EXPECT_EQ(topology_name(TopologyKind::kMesh), "mesh");
  EXPECT_EQ(topology_name(TopologyKind::kTorus), "torus");
  EXPECT_EQ(topology_name(TopologyKind::kTree), "tree");
}

/// Property sweep over the paper's topology grid.
class TopologyGrid
    : public ::testing::TestWithParam<std::tuple<TopologyKind, int>> {};

TEST_P(TopologyGrid, WellFormed) {
  const auto [kind, n] = GetParam();
  const auto topo = Topology::make(kind, n);
  EXPECT_EQ(topo.node_count(), n);
  EXPECT_EQ(topo.kind(), kind);
  EXPECT_TRUE(topo.transputer_feasible());
  // Directed links come in pairs and never self-loop.
  EXPECT_EQ(topo.link_count() % 2, 0);
  std::multiset<std::pair<NodeId, NodeId>> edges;
  for (LinkId id = 0; id < topo.link_count(); ++id) {
    const auto ends = topo.link_ends(id);
    EXPECT_NE(ends.from, ends.to);
    edges.insert({ends.from, ends.to});
  }
  for (const auto& [from, to] : edges) {
    EXPECT_EQ(edges.count({to, from}), edges.count({from, to}));
  }
  // Connected: diameter computation reaches everything (spot check via
  // neighbor reachability is covered by the routing tests; here just check
  // nonzero degree for n > 1).
  if (n > 1) {
    for (NodeId u = 0; u < n; ++u) EXPECT_GE(topo.degree(u), 1);
  }
}

INSTANTIATE_TEST_SUITE_P(
    PaperGrid, TopologyGrid,
    ::testing::Combine(::testing::Values(TopologyKind::kLinear,
                                         TopologyKind::kRing,
                                         TopologyKind::kMesh,
                                         TopologyKind::kHypercube,
                                         TopologyKind::kTorus,
                                         TopologyKind::kTree),
                       ::testing::Values(1, 2, 4, 8, 16)),
    [](const auto& info) {
      return std::string(1, topology_letter(std::get<0>(info.param))) +
             std::to_string(std::get<1>(info.param));
    });

}  // namespace
}  // namespace tmc::net
