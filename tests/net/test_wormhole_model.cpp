// Differential model check of the pooled wormhole engine.
//
// WormholeNetwork keeps in-flight state in a generation-tagged slot pool and
// walks precomputed link paths -- all machinery in service of a simple
// contract: circuit-style occupancy of every link on the (deterministic)
// route for the pipelined transfer duration, destination-only buffering,
// FIFO links. The reference model here implements that contract the naive
// way -- one heap-allocated record per in-flight message, paths rebuilt
// hop-by-hop from the routing table, links in a std::map -- and both engines
// are driven through identical scripted workloads on identical (separate)
// simulations. Delivery times, delivery order, per-link statistics and
// aggregate counters must match exactly.
#include "net/network.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <random>
#include <utility>
#include <vector>

#include "mem/mmu.h"
#include "net/routing.h"
#include "net/topology.h"
#include "sim/simulation.h"
#include "sim/time.h"

namespace tmc::net {
namespace {

using sim::SimTime;

/// Allocation-per-message wormhole with the same observable semantics as
/// WormholeNetwork: the executable specification the pooled engine is
/// checked against.
class ReferenceWormhole {
 public:
  using DeliveryHandler = std::function<void(const Message&, mem::Block)>;
  using ProgressGate = std::function<bool(const Message&)>;

  ReferenceWormhole(sim::Simulation& sim, const Topology& topo,
                    std::vector<mem::Mmu*> mmus, NetworkParams params)
      : sim_(sim),
        topo_(topo),
        routing_(topo),
        mmus_(std::move(mmus)),
        params_(params) {}

  void set_delivery_handler(DeliveryHandler handler) {
    deliver_ = std::move(handler);
  }
  void set_progress_gate(ProgressGate gate) { gate_ = std::move(gate); }

  void send(Message msg, mem::Block payload) {
    ++messages_;
    payload_bytes_ += msg.bytes;
    launch(msg, std::move(payload));
  }

  void kick() {
    std::vector<Pending> retry;
    retry.swap(parked_);
    for (auto& p : retry) launch(p.msg, std::move(p.payload));
  }

  [[nodiscard]] std::uint64_t messages_sent() const { return messages_; }
  [[nodiscard]] std::uint64_t messages_delivered() const { return delivered_; }
  [[nodiscard]] std::uint64_t bytes_sent() const { return payload_bytes_; }
  [[nodiscard]] std::uint64_t total_hops() const { return hops_; }
  [[nodiscard]] std::size_t parked_messages() const { return parked_.size(); }

  /// Per-link transfer counts and bytes in LinkId order, for comparison
  /// against the production engine's links.
  [[nodiscard]] std::map<LinkId, std::pair<std::uint64_t, std::uint64_t>>
  link_stats() const {
    std::map<LinkId, std::pair<std::uint64_t, std::uint64_t>> out;
    for (const auto& [id, link] : links_) {
      out[id] = {link.transfers(), link.bytes_carried()};
    }
    return out;
  }

 private:
  struct Pending {
    Message msg;
    mem::Block payload;
  };
  struct Flight {
    Message msg;
    mem::Block src;
    mem::Block dst;
  };

  std::vector<LinkId> walk_path(NodeId src, NodeId dst) {
    std::vector<LinkId> path;
    NodeId cur = src;
    while (cur != dst) {
      const NodeId nxt = routing_.next_hop(cur, dst);
      const auto lid = topo_.link_between(cur, nxt);
      EXPECT_TRUE(lid.has_value());
      path.push_back(*lid);
      cur = nxt;
    }
    return path;
  }

  void launch(Message msg, mem::Block payload) {
    if (msg.src_node == msg.dst_node) {
      ++delivered_;
      deliver_(msg, std::move(payload));
      return;
    }
    if (gate_ && !gate_(msg)) {
      parked_.push_back(Pending{msg, std::move(payload)});
      return;
    }
    auto flight = std::make_shared<Flight>();
    flight->msg = msg;
    flight->src = std::move(payload);
    mmus_[static_cast<std::size_t>(msg.dst_node)]->request(
        msg.bytes + params_.header_bytes,
        [this, flight](mem::Block dst_buf) {
          flight->dst = std::move(dst_buf);
          transmit(flight);
        });
  }

  void transmit(const std::shared_ptr<Flight>& flight) {
    const Message& msg = flight->msg;
    const std::vector<LinkId> path = walk_path(msg.src_node, msg.dst_node);
    SimTime start = sim_.now();
    for (const LinkId id : path) {
      start = std::max(start, links_[id].busy_until());
    }
    const auto unit = msg.bytes + params_.header_bytes;
    const SimTime duration =
        params_.per_hop_latency * static_cast<std::int64_t>(path.size()) +
        params_.per_byte * static_cast<std::int64_t>(unit);
    for (const LinkId id : path) {
      links_[id].reserve(start, duration, unit);
    }
    hops_ += path.size();
    sim_.schedule_at(start + duration, [this, flight] {
      ++delivered_;
      flight->src.release();
      deliver_(flight->msg, std::move(flight->dst));
    });
  }

  sim::Simulation& sim_;
  const Topology& topo_;
  RoutingTable routing_;
  std::vector<mem::Mmu*> mmus_;
  NetworkParams params_;
  std::map<LinkId, Link> links_;
  std::vector<Pending> parked_;
  DeliveryHandler deliver_;
  ProgressGate gate_;
  std::uint64_t messages_ = 0;
  std::uint64_t delivered_ = 0;
  std::uint64_t payload_bytes_ = 0;
  std::uint64_t hops_ = 0;
};

struct SendSpec {
  SimTime at;
  NodeId src;
  NodeId dst;
  std::size_t bytes;
  std::uint32_t job = 0;
};

struct DeliveryRecord {
  std::int64_t at_ns;
  std::uint64_t msg_id;
  NodeId dst;
  std::size_t bytes;
  bool operator==(const DeliveryRecord&) const = default;
};

/// Runs one engine (production or reference) against a script on a fresh
/// simulation with per-node MMUs, returning the delivery log.
template <typename Net>
struct EngineRun {
  explicit EngineRun(const Topology& topo, NetworkParams params,
                     std::size_t node_memory)
      : topo_(topo), params_(params) {
    for (int i = 0; i < topo_.node_count(); ++i) {
      mmus_.push_back(std::make_unique<mem::Mmu>(sim_, node_memory));
      mmu_ptrs_.push_back(mmus_.back().get());
    }
    net_ = std::make_unique<Net>(sim_, topo_, mmu_ptrs_, params_);
    net_->set_delivery_handler([this](const Message& msg, mem::Block buffer) {
      log_.push_back(
          DeliveryRecord{sim_.now().ns(), msg.id, msg.dst_node, msg.bytes});
      buffer.release();
    });
  }

  void play(const std::vector<SendSpec>& script) {
    std::uint64_t next_id = 1;
    for (const SendSpec& spec : script) {
      sim_.schedule_at(spec.at, [this, spec, id = next_id++] {
        auto payload = mmus_[static_cast<std::size_t>(spec.src)]->try_alloc(1);
        ASSERT_TRUE(payload.has_value());
        Message msg;
        msg.id = id;
        msg.src_node = spec.src;
        msg.dst_node = spec.dst;
        msg.job = spec.job;
        msg.bytes = spec.bytes;
        net_->send(msg, std::move(*payload));
      });
    }
    sim_.run();
  }

  sim::Simulation sim_;
  const Topology& topo_;
  NetworkParams params_;
  std::vector<std::unique_ptr<mem::Mmu>> mmus_;
  std::vector<mem::Mmu*> mmu_ptrs_;
  std::unique_ptr<Net> net_;
  std::vector<DeliveryRecord> log_;
};

std::vector<SendSpec> random_script(const Topology& topo, std::uint64_t seed,
                                    int count) {
  std::mt19937_64 rng(seed);
  const int n = topo.node_count();
  std::uniform_int_distribution<int> node(0, n - 1);
  std::uniform_int_distribution<std::size_t> size(1, 2000);
  std::uniform_int_distribution<std::int64_t> when(0, 5'000'000);
  std::vector<SendSpec> script;
  for (int i = 0; i < count; ++i) {
    SendSpec spec;
    spec.at = SimTime::nanoseconds(when(rng));
    spec.src = static_cast<NodeId>(node(rng));
    spec.dst = static_cast<NodeId>(node(rng));  // may equal src: self-send
    spec.bytes = size(rng);
    script.push_back(spec);
  }
  return script;
}

void expect_equivalent(const Topology& topo, const std::vector<SendSpec>& script,
                       std::size_t node_memory = std::size_t{1} << 20) {
  NetworkParams params;  // production defaults: realistic T805 timings
  EngineRun<WormholeNetwork> pooled(topo, params, node_memory);
  EngineRun<ReferenceWormhole> reference(topo, params, node_memory);
  pooled.play(script);
  reference.play(script);

  EXPECT_EQ(pooled.log_, reference.log_);
  EXPECT_EQ(pooled.net_->messages_sent(), reference.net_->messages_sent());
  EXPECT_EQ(pooled.net_->messages_delivered(),
            reference.net_->messages_delivered());
  EXPECT_EQ(pooled.net_->bytes_sent(), reference.net_->bytes_sent());
  EXPECT_EQ(pooled.net_->total_hops(), reference.net_->total_hops());
  // Every message released its slot when its tail flit left the path.
  EXPECT_EQ(pooled.net_->worms_in_flight(), 0u);
  // Link-level agreement: same transfers and bytes on every physical link.
  for (const auto& [id, stats] : reference.net_->link_stats()) {
    const Link& link = pooled.net_->link(id);
    EXPECT_EQ(link.transfers(), stats.first) << "link " << id;
    EXPECT_EQ(link.bytes_carried(), stats.second) << "link " << id;
  }
}

TEST(WormholeModel, RandomTrafficOnRing) {
  const Topology topo = Topology::ring(8);
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    expect_equivalent(topo, random_script(topo, seed, 80));
  }
}

TEST(WormholeModel, RandomTrafficOnMesh) {
  const Topology topo = Topology::mesh(16);
  for (std::uint64_t seed = 10; seed <= 17; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    expect_equivalent(topo, random_script(topo, seed, 80));
  }
}

TEST(WormholeModel, RandomTrafficOnHypercube) {
  const Topology topo = Topology::hypercube(8);
  for (std::uint64_t seed = 20; seed <= 27; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    expect_equivalent(topo, random_script(topo, seed, 80));
  }
}

TEST(WormholeModel, FanInContention) {
  // Every node floods node 0 at the same instant: the final links serialise
  // and the FIFO service order decides delivery times. Both engines must
  // produce the identical schedule.
  const Topology topo = Topology::linear(8);
  std::vector<SendSpec> script;
  for (int round = 0; round < 5; ++round) {
    for (int src = 1; src < 8; ++src) {
      script.push_back(SendSpec{SimTime::microseconds(round * 50),
                                static_cast<NodeId>(src), 0, 500});
    }
  }
  expect_equivalent(topo, script);
}

TEST(WormholeModel, MemoryPressureBlocksIdentically) {
  // Node memory fits only a couple of destination buffers, so transfers
  // queue in the destination MMU; grant order (FIFO) must drive both
  // engines to the same serialisation.
  const Topology topo = Topology::ring(8);
  std::vector<SendSpec> script;
  for (int i = 0; i < 30; ++i) {
    script.push_back(SendSpec{SimTime::microseconds(i % 3),
                              static_cast<NodeId>(1 + (i % 7)), 0, 1500});
  }
  expect_equivalent(topo, script, /*node_memory=*/5'000);
}

TEST(WormholeModel, ProgressGateParksAndKickResumes) {
  // Job 7's traffic is frozen mid-run and thawed later; both engines must
  // park the same messages (holding no worm slot) and deliver the same
  // final schedule after the kick.
  const Topology topo = Topology::linear(4);
  NetworkParams params;
  EngineRun<WormholeNetwork> pooled(topo, params, std::size_t{1} << 20);
  EngineRun<ReferenceWormhole> reference(topo, params, std::size_t{1} << 20);

  auto drive = [](auto& run) {
    auto active = std::make_shared<bool>(false);
    run.net_->set_progress_gate([active](const Message& msg) {
      return msg.job != 7 || *active;
    });
    std::vector<SendSpec> script;
    for (int i = 0; i < 6; ++i) {
      SendSpec spec{SimTime::microseconds(10 * i), 0, 3, 200, 7};
      script.push_back(spec);
    }
    // Thaw at t = 200us.
    run.sim_.schedule_at(SimTime::microseconds(200), [&run, active] {
      *active = true;
      run.net_->kick();
    });
    run.play(script);
  };
  drive(pooled);
  drive(reference);

  EXPECT_EQ(pooled.log_, reference.log_);
  EXPECT_EQ(pooled.log_.size(), 6u);
  EXPECT_EQ(pooled.net_->parked_messages(), 0u);
  EXPECT_EQ(reference.net_->parked_messages(), 0u);
  // No delivery can predate the thaw.
  for (const auto& d : pooled.log_) {
    EXPECT_GE(d.at_ns, SimTime::microseconds(200).ns());
  }
}

TEST(WormholeModel, SelfSendsBypassTheNetwork) {
  const Topology topo = Topology::mesh(16);
  std::vector<SendSpec> script;
  for (int i = 0; i < 12; ++i) {
    script.push_back(SendSpec{SimTime::microseconds(i),
                              static_cast<NodeId>(i % 16),
                              static_cast<NodeId>(i % 16), 64});
  }
  NetworkParams params;
  EngineRun<WormholeNetwork> pooled(topo, params, std::size_t{1} << 20);
  pooled.play(script);
  EXPECT_EQ(pooled.log_.size(), 12u);
  EXPECT_EQ(pooled.net_->total_hops(), 0u);
  EXPECT_EQ(pooled.net_->peak_worms_in_flight(), 0u);  // no slot ever taken
  // Self-sends deliver at the send instant: the buffered path costs CPU
  // (charged by the node layer), not network time.
  for (std::size_t i = 0; i < pooled.log_.size(); ++i) {
    EXPECT_EQ(pooled.log_[i].at_ns,
              SimTime::microseconds(static_cast<std::int64_t>(i)).ns());
  }
}

TEST(WormholeModel, LinkPathsMatchHopByHopWalk) {
  // The precomputed link paths the engine transmits over must equal the
  // next_hop walk the reference performs, pair by pair.
  for (const auto& topo :
       {Topology::linear(8), Topology::ring(8), Topology::mesh(16),
        Topology::hypercube(8), Topology::tiled(TopologyKind::kMesh, 4, 2)}) {
    RoutingTable routing(topo);
    const int n = topo.node_count();
    for (NodeId src = 0; src < n; ++src) {
      for (NodeId dst = 0; dst < n; ++dst) {
        if (src == dst) continue;
        if (routing.distance(src, dst) < 0) {
          // Disconnected pair (tiled forests): no precomputed path either.
          EXPECT_TRUE(routing.link_path(src, dst).empty());
          continue;
        }
        std::vector<LinkId> walked;
        NodeId cur = src;
        while (cur != dst) {
          const NodeId nxt = routing.next_hop(cur, dst);
          walked.push_back(*topo.link_between(cur, nxt));
          cur = nxt;
        }
        const std::span<const LinkId> precomputed = routing.link_path(src, dst);
        ASSERT_EQ(precomputed.size(), walked.size());
        for (std::size_t i = 0; i < walked.size(); ++i) {
          EXPECT_EQ(precomputed[i], walked[i]);
        }
      }
    }
  }
}

}  // namespace
}  // namespace tmc::net
