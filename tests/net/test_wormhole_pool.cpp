// Worm-slot pool tests, built as their own binary with a counting global
// allocator.
//
// The pooled wormhole engine's headline guarantee is *zero heap allocations
// on the flit-advance path*: once the pool and the kernel's slot pool are
// warm, launching, transmitting and completing a message never touch the
// allocator. A claim like that cannot be tested by inspection -- this binary
// replaces global operator new/delete with counting versions and asserts the
// count stays flat across whole simulated transfers. The remaining tests pin
// the pool mechanics the guarantee rests on: pre-reservation, exhaustion
// regrowth, O(1) tail-flit release, slot reuse, and the no-slot cases
// (parked and self-send messages).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <memory>
#include <new>
#include <vector>

#include "mem/mmu.h"
#include "net/network.h"
#include "net/topology.h"
#include "sim/simulation.h"
#include "sim/time.h"

namespace {

std::atomic<std::uint64_t> g_allocations{0};

}  // namespace

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc{};
}

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}

namespace tmc::net {
namespace {

using sim::SimTime;

/// Heap allocations performed by `fn`.
template <typename Fn>
std::uint64_t allocations_during(Fn&& fn) {
  const std::uint64_t before = g_allocations.load(std::memory_order_relaxed);
  fn();
  return g_allocations.load(std::memory_order_relaxed) - before;
}

class WormholePoolTest : public ::testing::Test {
 protected:
  explicit WormholePoolTest(Topology topo = Topology::linear(4))
      : topo_(std::move(topo)) {
    for (int i = 0; i < topo_.node_count(); ++i) {
      mmus_.push_back(std::make_unique<mem::Mmu>(sim_, std::size_t{4} << 20));
      mmu_ptrs_.push_back(mmus_.back().get());
    }
    net_ = std::make_unique<WormholeNetwork>(sim_, topo_, mmu_ptrs_,
                                             NetworkParams{});
    deliveries_.reserve(1024);
    net_->set_delivery_handler([this](const Message& msg, mem::Block buffer) {
      deliveries_.push_back(msg.id);
      buffer.release();
    });
  }

  void send(NodeId src, NodeId dst, std::size_t bytes, std::uint32_t job = 0) {
    auto payload = mmus_[static_cast<std::size_t>(src)]->try_alloc(1);
    ASSERT_TRUE(payload.has_value());
    Message msg;
    msg.id = next_id_++;
    msg.src_node = src;
    msg.dst_node = dst;
    msg.job = job;
    msg.bytes = bytes;
    net_->send(msg, std::move(*payload));
  }

  /// Full transfers end to end touching every node as source and
  /// destination, to warm every pool on the path (worm slots, event-kernel
  /// slots, MMU grant records, delivery vector).
  void warm_up() {
    const int n = topo_.node_count();
    for (int i = 0; i < 8; ++i) {
      send(0, static_cast<NodeId>(n - 1), 256);
    }
    for (int i = 0; i < n; ++i) {
      send(static_cast<NodeId>(i), static_cast<NodeId>((i + 1) % n), 64);
    }
    sim_.run();
    ASSERT_EQ(net_->worms_in_flight(), 0u);
  }

  sim::Simulation sim_;
  Topology topo_;
  std::vector<std::unique_ptr<mem::Mmu>> mmus_;
  std::vector<mem::Mmu*> mmu_ptrs_;
  std::unique_ptr<WormholeNetwork> net_;
  std::vector<std::uint64_t> deliveries_;
  std::uint64_t next_id_ = 1;
};

TEST_F(WormholePoolTest, FlitAdvancePathAllocatesNothingOnceWarm) {
  warm_up();
  // Multi-hop transfers, contention included: two messages share links.
  const std::size_t warm = deliveries_.size();
  const std::uint64_t allocs = allocations_during([this] {
    send(0, 3, 512);
    send(1, 3, 512);
    send(0, 2, 128);
    sim_.run();
  });
  EXPECT_EQ(allocs, 0u) << "flit-advance path reached the heap";
  EXPECT_EQ(deliveries_.size(), warm + 3);
  EXPECT_EQ(net_->worms_in_flight(), 0u);
}

TEST_F(WormholePoolTest, SteadyStateTrafficAllocatesNothing) {
  warm_up();
  const std::uint64_t allocs = allocations_during([this] {
    for (int round = 0; round < 50; ++round) {
      send(static_cast<NodeId>(round % 4),
           static_cast<NodeId>((round + 3) % 4), 64 + round);
      sim_.run();
    }
  });
  EXPECT_EQ(allocs, 0u);
  EXPECT_EQ(net_->worm_pool_growths(), 0u);
}

TEST_F(WormholePoolTest, PoolIsPreReservedPerTopology) {
  // Reservation covers at least four in-flight messages per node, before
  // any traffic: no growth (hence no slot relocation) in normal operation.
  EXPECT_GE(net_->worm_pool_capacity(),
            static_cast<std::size_t>(topo_.node_count()) * 4);
  EXPECT_EQ(net_->worm_pool_growths(), 0u);
  EXPECT_EQ(net_->worms_in_flight(), 0u);
}

TEST_F(WormholePoolTest, TailFlitDepartureReleasesTheSlot) {
  send(0, 3, 1000);
  // The slot is taken at launch, before the destination buffer is granted.
  EXPECT_EQ(net_->worms_in_flight(), 1u);
  sim_.run();
  EXPECT_EQ(net_->worms_in_flight(), 0u);
  EXPECT_EQ(net_->peak_worms_in_flight(), 1u);
  EXPECT_EQ(deliveries_.size(), 1u);
}

TEST_F(WormholePoolTest, SequentialTrafficReusesOneSlot) {
  for (int i = 0; i < 40; ++i) {
    send(0, 3, 200);
    sim_.run();  // complete before the next send
  }
  EXPECT_EQ(deliveries_.size(), 40u);
  // Forty messages, one slot: tail-flit release returned it each time.
  EXPECT_EQ(net_->peak_worms_in_flight(), 1u);
  EXPECT_EQ(net_->worm_pool_growths(), 0u);
}

TEST_F(WormholePoolTest, ExhaustionGrowsThePoolAndRecovers) {
  // Far more concurrent transfers than the per-topology reservation: the
  // pool must regrow (observable), stay correct, and drain back to zero.
  const std::size_t reserved = net_->worm_pool_capacity();
  const int burst = static_cast<int>(reserved) * 3;
  for (int i = 0; i < burst; ++i) {
    send(0, 3, 2000);
  }
  EXPECT_GT(net_->peak_worms_in_flight(), reserved);
  EXPECT_GT(net_->worm_pool_growths(), 0u);
  sim_.run();
  EXPECT_EQ(deliveries_.size(), static_cast<std::size_t>(burst));
  EXPECT_EQ(net_->worms_in_flight(), 0u);
  // The grown capacity is retained for the rest of the run.
  EXPECT_GE(net_->worm_pool_capacity(), static_cast<std::size_t>(burst));
}

TEST_F(WormholePoolTest, ParkedMessagesHoldNoSlot) {
  bool active = false;
  net_->set_progress_gate(
      [&active](const Message& msg) { return msg.job != 9 || active; });
  send(0, 3, 300, /*job=*/9);
  send(0, 3, 300, /*job=*/9);
  sim_.run();
  EXPECT_EQ(net_->parked_messages(), 2u);
  EXPECT_EQ(net_->worms_in_flight(), 0u);
  EXPECT_EQ(net_->peak_worms_in_flight(), 0u);
  EXPECT_TRUE(deliveries_.empty());

  active = true;
  net_->kick();
  sim_.run();
  EXPECT_EQ(net_->parked_messages(), 0u);
  EXPECT_EQ(deliveries_.size(), 2u);
  EXPECT_EQ(net_->worms_in_flight(), 0u);
}

TEST_F(WormholePoolTest, KickPathAllocatesNothingOnceWarm) {
  bool active = false;
  net_->set_progress_gate(
      [&active](const Message& msg) { return msg.job != 9 || active; });
  // Warm cycle: park, kick, deliver.
  send(0, 3, 300, 9);
  sim_.run();
  active = true;
  net_->kick();
  sim_.run();
  ASSERT_EQ(deliveries_.size(), 1u);

  active = false;
  const std::uint64_t allocs = allocations_during([this, &active] {
    send(0, 3, 300, 9);
    sim_.run();
    EXPECT_EQ(net_->parked_messages(), 1u);
    active = true;
    net_->kick();
    sim_.run();
  });
  EXPECT_EQ(allocs, 0u) << "park/kick cycle reached the heap";
  EXPECT_EQ(deliveries_.size(), 2u);
}

TEST_F(WormholePoolTest, SelfSendsBypassThePool) {
  warm_up();
  const std::size_t warm = deliveries_.size();
  const std::uint64_t warm_hops = net_->total_hops();
  const std::uint64_t allocs = allocations_during([this] {
    send(2, 2, 100);
    sim_.run();
  });
  EXPECT_EQ(allocs, 0u);
  EXPECT_EQ(deliveries_.size(), warm + 1);
  EXPECT_EQ(net_->total_hops(), warm_hops);  // self-send crossed no link
}

class WormholePoolMeshTest : public WormholePoolTest {
 protected:
  WormholePoolMeshTest() : WormholePoolTest(Topology::mesh(16)) {}
};

TEST_F(WormholePoolMeshTest, ZeroAllocAcrossTopologies) {
  warm_up();
  const std::uint64_t allocs = allocations_during([this] {
    for (int i = 0; i < 16; ++i) {
      send(static_cast<NodeId>(i), static_cast<NodeId>(15 - i), 256);
    }
    sim_.run();
  });
  EXPECT_EQ(allocs, 0u);
  EXPECT_EQ(net_->worms_in_flight(), 0u);
}

}  // namespace
}  // namespace tmc::net
