#include "node/comm.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "net/network.h"
#include "sim/simulation.h"

namespace tmc::node {
namespace {

using sim::SimTime;

/// Full two-node stack: linear wiring, store-and-forward transport,
/// mailbox communication system.
class CommTest : public ::testing::Test {
 protected:
  CommTest() : topo(net::Topology::linear(2)) {
    for (int i = 0; i < 2; ++i) {
      mmus.push_back(std::make_unique<mem::Mmu>(sim, 1 << 20));
    }
    for (int i = 0; i < 2; ++i) {
      cpus.push_back(
          std::make_unique<Transputer>(sim, i, *mmus[static_cast<std::size_t>(i)]));
    }
    network = std::make_unique<net::StoreForwardNetwork>(
        sim, topo, std::vector<mem::Mmu*>{mmus[0].get(), mmus[1].get()});
    comm = std::make_unique<CommSystem>(
        sim, *network,
        std::vector<Transputer*>{cpus[0].get(), cpus[1].get()});
  }

  std::unique_ptr<Process> spawn(net::EndpointId id, net::NodeId node,
                                 Program prog) {
    auto p = std::make_unique<Process>(id, 1, std::move(prog));
    p->bind_to_node(node);
    comm->register_process(*p);
    cpus[static_cast<std::size_t>(node)]->make_ready(*p);
    return p;
  }

  sim::Simulation sim;
  net::Topology topo;
  std::vector<std::unique_ptr<mem::Mmu>> mmus;
  std::vector<std::unique_ptr<Transputer>> cpus;
  std::unique_ptr<net::StoreForwardNetwork> network;
  std::unique_ptr<CommSystem> comm;
};

TEST_F(CommTest, RemoteSendReachesReceiver) {
  Program sender, receiver;
  sender.send(2, 5, 1000).exit();
  receiver.receive(5).exit();
  auto ps = spawn(1, 0, std::move(sender));
  auto pr = spawn(2, 1, std::move(receiver));
  sim.run();
  EXPECT_TRUE(ps->done());
  EXPECT_TRUE(pr->done());
  EXPECT_EQ(comm->sends(), 1u);
  EXPECT_EQ(comm->deliveries(), 1u);
  EXPECT_EQ(comm->self_sends(), 0u);
  EXPECT_EQ(network->messages_delivered(), 1u);
}

TEST_F(CommTest, SelfSendUsesSameBufferedPath) {
  Program sender, receiver;
  sender.send(2, 5, 1000).exit();
  receiver.receive(5).exit();
  auto ps = spawn(1, 0, std::move(sender));
  auto pr = spawn(2, 0, std::move(receiver));  // same node
  sim.run();
  EXPECT_TRUE(ps->done());
  EXPECT_TRUE(pr->done());
  EXPECT_EQ(comm->self_sends(), 1u);
  EXPECT_EQ(network->total_hops(), 0u);  // no link was used
}

TEST_F(CommTest, DeliveryChargesDaemonCpuAtDestination) {
  Program sender, receiver;
  sender.send(2, 5, 100).exit();
  receiver.receive(5).exit();
  auto ps = spawn(1, 0, std::move(sender));
  auto pr = spawn(2, 1, std::move(receiver));
  sim.run();
  // The mailbox-deposit charge ran in node 1's comm-daemon domain.
  EXPECT_GE(cpus[1]->service_items(), 1u);
  EXPECT_GT(cpus[1]->service_time(), sim::SimTime::zero());
}

TEST_F(CommTest, SendToUnregisteredEndpointThrows) {
  Program sender;
  sender.send(99, 1, 10).exit();
  auto ps = spawn(1, 0, std::move(sender));
  EXPECT_THROW(sim.run(), std::logic_error);
}

TEST_F(CommTest, UnregisterRemovesEndpoint) {
  Program idle;
  idle.exit();
  auto p = spawn(7, 0, std::move(idle));
  EXPECT_EQ(comm->find(7), p.get());
  comm->unregister_process(7);
  EXPECT_EQ(comm->find(7), nullptr);
}

TEST_F(CommTest, DuplicateRegistrationThrows) {
  Program idle;
  idle.exit();
  auto p = spawn(7, 0, std::move(idle));
  Process clone(7, 2, Program{}.exit());
  clone.bind_to_node(1);
  EXPECT_THROW(comm->register_process(clone), std::logic_error);
}

TEST_F(CommTest, MessagesBetweenPairFifoPerTag) {
  // Two messages with the same tag must be received in send order.
  Program sender, receiver;
  sender.send(2, 5, 100).send(2, 5, 200).exit();
  receiver.receive(5).receive(5).exit();
  auto ps = spawn(1, 0, std::move(sender));
  auto pr = spawn(2, 1, std::move(receiver));
  sim.run();
  EXPECT_TRUE(pr->done());
  EXPECT_EQ(comm->deliveries(), 2u);
}

TEST_F(CommTest, RequestReplyRoundTrip) {
  Program client, server;
  client.send(2, 1, 100).receive(2).exit();
  server.receive(1).compute(SimTime::milliseconds(1)).send(1, 2, 400).exit();
  auto pc = spawn(1, 0, std::move(client));
  auto psrv = spawn(2, 1, std::move(server));
  sim.run();
  EXPECT_TRUE(pc->done());
  EXPECT_TRUE(psrv->done());
  EXPECT_EQ(comm->sends(), 2u);
  // All buffers returned on both nodes.
  EXPECT_EQ(mmus[0]->bytes_used(), 0u);
  EXPECT_EQ(mmus[1]->bytes_used(), 0u);
}

TEST_F(CommTest, RegistryWindowGrowsAcrossRanks) {
  // The registry stores processes in per-job {offset, cap} windows into one
  // flat arena; registering ever-higher ranks forces repeated relocation to
  // the arena tail. Every earlier endpoint must survive each move.
  constexpr net::EndpointId kJob = 3;
  std::vector<std::unique_ptr<Process>> procs;
  for (std::uint64_t rank = 0; rank < 40; ++rank) {
    const net::EndpointId id = (kJob << net::kEndpointRankBits) | rank;
    auto p = std::make_unique<Process>(id, kJob, Program{}.exit());
    p->bind_to_node(static_cast<net::NodeId>(rank % 2));
    comm->register_process(*p);
    procs.push_back(std::move(p));
    for (std::uint64_t r = 0; r <= rank; ++r) {
      const net::EndpointId probe = (kJob << net::kEndpointRankBits) | r;
      ASSERT_EQ(comm->find(probe), procs[r].get()) << "after rank " << rank;
    }
  }
  // The abandoned blocks must not alias live processes: unregistering one
  // endpoint removes exactly that endpoint.
  const net::EndpointId victim = (kJob << net::kEndpointRankBits) | 7;
  comm->unregister_process(victim);
  EXPECT_EQ(comm->find(victim), nullptr);
  EXPECT_EQ(comm->find((kJob << net::kEndpointRankBits) | 6), procs[6].get());
  EXPECT_EQ(comm->find((kJob << net::kEndpointRankBits) | 8), procs[8].get());
}

TEST_F(CommTest, RegistryKeepsJobsIndependent) {
  // Growth of one job's window must not disturb another's entries.
  auto make = [&](net::EndpointId job, std::uint64_t rank) {
    const net::EndpointId id = (job << net::kEndpointRankBits) | rank;
    auto p = std::make_unique<Process>(id, static_cast<JobId>(job),
                                       Program{}.exit());
    p->bind_to_node(0);
    comm->register_process(*p);
    return p;
  };
  auto a0 = make(1, 0);
  auto b0 = make(2, 0);
  auto a9 = make(1, 9);  // grows job 1's window past job 2's block
  EXPECT_EQ(comm->find((net::EndpointId{2} << net::kEndpointRankBits) | 0),
            b0.get());
  EXPECT_EQ(comm->find((net::EndpointId{1} << net::kEndpointRankBits) | 0),
            a0.get());
  EXPECT_EQ(comm->find((net::EndpointId{1} << net::kEndpointRankBits) | 9),
            a9.get());
  // Unknown jobs and out-of-window ranks resolve to null, not garbage.
  EXPECT_EQ(comm->find((net::EndpointId{5} << net::kEndpointRankBits) | 0),
            nullptr);
  EXPECT_EQ(comm->find((net::EndpointId{1} << net::kEndpointRankBits) | 100),
            nullptr);
}

TEST_F(CommTest, ManyMessagesAllArrive) {
  constexpr int kCount = 20;
  Program sender, receiver;
  for (int i = 0; i < kCount; ++i) sender.send(2, 5, 64);
  sender.exit();
  for (int i = 0; i < kCount; ++i) receiver.receive(5);
  receiver.exit();
  auto ps = spawn(1, 0, std::move(sender));
  auto pr = spawn(2, 1, std::move(receiver));
  sim.run();
  EXPECT_TRUE(pr->done());
  EXPECT_EQ(comm->deliveries(), static_cast<std::uint64_t>(kCount));
}

}  // namespace
}  // namespace tmc::node
