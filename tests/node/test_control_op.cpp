// ControlOp: the interpreter's escape hatch for runtime-driven scripts
// (the work-stealing engine decides each next op only when the previous
// one finishes). These tests pin the contract the engine leans on: the
// action runs exactly once per ControlOp, after the pc has advanced, in
// normal op context only -- never on the preemption or force-exit paths --
// and appends are safe even when they reallocate the op vector.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "mem/mmu.h"
#include "node/transputer.h"
#include "sim/simulation.h"

namespace tmc::node {
namespace {

using sim::SimTime;

class ControlOpTest : public ::testing::Test {
 protected:
  ControlOpTest() : mmu(sim, 64 * 1024), cpu(sim, 0, mmu) {}

  std::unique_ptr<Process> make_process(net::EndpointId id, Program prog) {
    auto p = std::make_unique<Process>(id, 1, std::move(prog));
    p->bind_to_node(0);
    p->set_on_exit(
        [this](Process& self) { exit_ids.push_back(self.id()); });
    return p;
  }

  sim::Simulation sim;
  mem::Mmu mmu;
  Transputer cpu;
  std::vector<net::EndpointId> exit_ids;
};

constexpr auto kCtx = SimTime::microseconds(10);

TEST_F(ControlOpTest, ActionAppendsNextOpsAndCostIsCharged) {
  int fired = 0;
  Program prog;
  prog.control(SimTime::microseconds(5), [&](Process& self) {
    ++fired;
    self.mutable_program().compute(SimTime::milliseconds(2)).exit();
  });
  auto p = make_process(1, std::move(prog));
  cpu.make_ready(*p);
  sim.run();
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(p->done());
  // Context switch + control cost + appended compute.
  EXPECT_EQ(sim.now(),
            kCtx + SimTime::microseconds(5) + SimTime::milliseconds(2));
}

TEST_F(ControlOpTest, ChainedControlOpsEachFireOnce) {
  // A self-extending script: each action appends the next ControlOp until
  // five have run, then exits. This is exactly the stealing runtime's
  // shape (decide, run, decide again).
  int fired = 0;
  std::function<void(Process&)> step = [&](Process& self) {
    if (++fired < 5) {
      self.mutable_program().control(SimTime::microseconds(1), step);
    } else {
      self.mutable_program().exit();
    }
  };
  Program prog;
  prog.control(SimTime::microseconds(1), step);
  auto p = make_process(1, std::move(prog));
  cpu.make_ready(*p);
  sim.run();
  EXPECT_EQ(fired, 5);
  EXPECT_TRUE(p->done());
  EXPECT_EQ(sim.now(), kCtx + 5 * SimTime::microseconds(1));
}

TEST_F(ControlOpTest, ReallocatingAppendIsSafe) {
  // The action appends enough ops to force the op vector to regrow; the
  // interpreter must not hold references across the callback.
  Program prog;
  prog.control(SimTime::microseconds(1), [](Process& self) {
    for (int i = 0; i < 64; ++i) {
      self.mutable_program().compute(SimTime::microseconds(10));
    }
    self.mutable_program().exit();
  });
  auto p = make_process(1, std::move(prog));
  cpu.make_ready(*p);
  sim.run();
  EXPECT_TRUE(p->done());
  EXPECT_EQ(p->cpu_time(),
            SimTime::microseconds(1) + 64 * SimTime::microseconds(10));
}

TEST_F(ControlOpTest, PreemptedControlOpFiresActionExactlyOnce) {
  // Control cost longer than the 2 ms quantum with a competitor ready:
  // the op is preempted mid-charge, resumes later, and the action still
  // runs exactly once, when the charge completes.
  int fired = 0;
  Program prog;
  prog.control(SimTime::milliseconds(5), [&](Process& self) {
    ++fired;
    self.mutable_program().exit();
  });
  Program rival;
  rival.compute(SimTime::milliseconds(5)).exit();
  auto p = make_process(1, std::move(prog));
  auto q = make_process(2, std::move(rival));
  cpu.make_ready(*p);
  cpu.make_ready(*q);
  sim.run();
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(p->done());
  EXPECT_TRUE(q->done());
}

TEST_F(ControlOpTest, ForceExitNeverRunsTheAction) {
  // Tear the process down while its ControlOp is still charging: the
  // action must not fire (the stealing runtime may already be gone).
  int fired = 0;
  Program prog;
  prog.control(SimTime::milliseconds(10), [&](Process& self) {
    ++fired;
    self.mutable_program().exit();
  });
  auto p = make_process(1, std::move(prog));
  cpu.make_ready(*p);
  sim.schedule_at(SimTime::milliseconds(1), [&] { cpu.force_exit(*p); });
  sim.run();
  EXPECT_EQ(fired, 0);
  EXPECT_TRUE(p->done());
  // force_exit is the scheduler unwinding the job itself: it must not see
  // a completion, so the exit handler is skipped too.
  EXPECT_TRUE(exit_ids.empty());
}

}  // namespace
}  // namespace tmc::node
