// Tests of the Transputer's suspend/resume interface (the mechanism under
// the partition scheduler's gang rotation).
#include <gtest/gtest.h>

#include "mem/mmu.h"
#include "node/transputer.h"
#include "sim/simulation.h"

namespace tmc::node {
namespace {

using sim::SimTime;

class GangTest : public ::testing::Test {
 protected:
  GangTest() : mmu(sim, 64 * 1024), cpu(sim, 0, mmu) {}

  std::unique_ptr<Process> make_process(net::EndpointId id, Program prog) {
    auto p = std::make_unique<Process>(id, 1, std::move(prog));
    p->bind_to_node(0);
    p->set_on_exit([this](Process& self) {
      exit_times.emplace_back(self.id(), sim.now());
    });
    return p;
  }

  sim::Simulation sim;
  mem::Mmu mmu;
  Transputer cpu;
  std::vector<std::pair<net::EndpointId, SimTime>> exit_times;
};

TEST_F(GangTest, SuspendedReadyProcessLeavesQueue) {
  Program prog;
  prog.compute(SimTime::milliseconds(5)).exit();
  auto p = make_process(1, std::move(prog));
  cpu.suspend(*p);
  cpu.make_ready(*p);
  EXPECT_EQ(p->state(), ProcessState::kSuspended);
  EXPECT_EQ(cpu.ready_count(), 0u);
  sim.run();
  EXPECT_FALSE(p->done());  // nothing ran
  cpu.resume(*p);
  sim.run();
  EXPECT_TRUE(p->done());
}

TEST_F(GangTest, SuspendPreemptsRunningProcess) {
  Program prog;
  prog.compute(SimTime::milliseconds(10)).exit();
  auto p = make_process(1, std::move(prog));
  cpu.make_ready(*p);
  sim.schedule(SimTime::milliseconds(4), [&] { cpu.suspend(*p); });
  sim.run();
  EXPECT_EQ(p->state(), ProcessState::kSuspended);
  // Partial progress was accounted (~4 ms minus the context switch).
  EXPECT_GE(p->cpu_time(), SimTime::milliseconds(3));
  EXPECT_LT(p->cpu_time(), SimTime::milliseconds(5));
  cpu.resume(*p);
  sim.run();
  EXPECT_TRUE(p->done());
  EXPECT_EQ(p->cpu_time(), SimTime::milliseconds(10));
}

TEST_F(GangTest, SuspendIsIdempotent) {
  Program prog;
  prog.compute(SimTime::milliseconds(1)).exit();
  auto p = make_process(1, std::move(prog));
  cpu.suspend(*p);
  cpu.suspend(*p);
  cpu.make_ready(*p);
  cpu.suspend(*p);
  EXPECT_EQ(p->state(), ProcessState::kSuspended);
  cpu.resume(*p);
  cpu.resume(*p);
  sim.run();
  EXPECT_TRUE(p->done());
}

TEST_F(GangTest, WakeWhileSuspendedParks) {
  Program prog;
  prog.receive(7).exit();
  auto p = make_process(1, std::move(prog));
  cpu.make_ready(*p);
  sim.run();
  EXPECT_EQ(p->state(), ProcessState::kBlockedRecv);
  cpu.suspend(*p);  // blocked and now suspended

  net::Message msg;
  msg.tag = 7;
  msg.bytes = 10;
  auto buffer = mmu.try_alloc(10);
  cpu.deliver(*p, msg, std::move(*buffer));
  sim.run();
  // Woken, but parked: must not run until resumed.
  EXPECT_EQ(p->state(), ProcessState::kSuspended);
  cpu.resume(*p);
  sim.run();
  EXPECT_TRUE(p->done());
}

TEST_F(GangTest, SuspendedBlockedProcessStaysBlocked) {
  Program prog;
  prog.receive(7).exit();
  auto p = make_process(1, std::move(prog));
  cpu.make_ready(*p);
  sim.run();
  cpu.suspend(*p);
  EXPECT_EQ(p->state(), ProcessState::kBlockedRecv);
  cpu.resume(*p);  // no message yet: stays blocked
  sim.run();
  EXPECT_EQ(p->state(), ProcessState::kBlockedRecv);
}

TEST_F(GangTest, SuspensionFreesCpuForOthers) {
  Program a, b;
  a.compute(SimTime::milliseconds(100)).exit();
  b.compute(SimTime::milliseconds(5)).exit();
  auto pa = make_process(1, std::move(a));
  auto pb = make_process(2, std::move(b));
  cpu.make_ready(*pa);
  cpu.make_ready(*pb);
  sim.schedule(SimTime::milliseconds(1), [&] { cpu.suspend(*pa); });
  sim.run();
  // With A suspended at 1 ms, B gets the CPU to itself and finishes fast.
  EXPECT_TRUE(pb->done());
  EXPECT_LT(exit_times.at(0).second, SimTime::milliseconds(8));
  EXPECT_FALSE(pa->done());
}

TEST_F(GangTest, MemGrantWhileSuspendedParks) {
  auto hog = mmu.try_alloc(60 * 1024);
  Program prog;
  prog.alloc(10 * 1024).exit();
  auto p = make_process(1, std::move(prog));
  cpu.make_ready(*p);
  sim.run();
  EXPECT_EQ(p->state(), ProcessState::kBlockedMem);
  cpu.suspend(*p);
  hog->release();  // grant arrives while suspended
  sim.run();
  EXPECT_EQ(p->state(), ProcessState::kSuspended);
  EXPECT_EQ(p->held_bytes(), 10u * 1024);  // allocation did complete
  cpu.resume(*p);
  sim.run();
  EXPECT_TRUE(p->done());
}

}  // namespace
}  // namespace tmc::node
