#include "node/mailbox.h"

#include <gtest/gtest.h>

#include "sim/simulation.h"

namespace tmc::node {
namespace {

net::Message msg_with_tag(int tag, std::size_t bytes = 10) {
  net::Message m;
  m.tag = tag;
  m.bytes = bytes;
  return m;
}

class MailboxTest : public ::testing::Test {
 protected:
  MailboxTest() : mmu(sim, 4096) {}
  mem::Block block(std::size_t bytes) {
    auto b = mmu.try_alloc(bytes);
    EXPECT_TRUE(b.has_value());
    return std::move(*b);
  }
  sim::Simulation sim;
  mem::Mmu mmu;
  Mailbox box;
};

TEST_F(MailboxTest, StartsEmpty) {
  EXPECT_TRUE(box.empty());
  EXPECT_FALSE(box.has(kAnyTag));
  EXPECT_FALSE(box.take(kAnyTag).has_value());
}

TEST_F(MailboxTest, DepositAndTakeByTag) {
  box.deposit(msg_with_tag(5), block(10));
  EXPECT_TRUE(box.has(5));
  EXPECT_FALSE(box.has(6));
  auto taken = box.take(5);
  ASSERT_TRUE(taken.has_value());
  EXPECT_EQ(taken->message.tag, 5);
  EXPECT_TRUE(box.empty());
}

TEST_F(MailboxTest, AnyTagMatchesEverything) {
  box.deposit(msg_with_tag(9), block(10));
  EXPECT_TRUE(box.has(kAnyTag));
  EXPECT_TRUE(box.take(kAnyTag).has_value());
}

TEST_F(MailboxTest, FifoWithinTag) {
  auto first = msg_with_tag(3);
  first.id = 1;
  auto second = msg_with_tag(3);
  second.id = 2;
  box.deposit(first, block(10));
  box.deposit(second, block(10));
  EXPECT_EQ(box.take(3)->message.id, 1u);
  EXPECT_EQ(box.take(3)->message.id, 2u);
}

TEST_F(MailboxTest, TagFilterSkipsNonMatching) {
  auto a = msg_with_tag(1);
  a.id = 1;
  auto b = msg_with_tag(2);
  b.id = 2;
  box.deposit(a, block(10));
  box.deposit(b, block(10));
  EXPECT_EQ(box.take(2)->message.id, 2u);
  EXPECT_EQ(box.size(), 1u);
  EXPECT_EQ(box.take(kAnyTag)->message.id, 1u);
}

TEST_F(MailboxTest, BufferedBytesTracksPinnedMemory) {
  box.deposit(msg_with_tag(1), block(100));
  box.deposit(msg_with_tag(2), block(200));
  EXPECT_EQ(box.buffered_bytes(), 300u);
  EXPECT_EQ(mmu.bytes_used(), 300u);
  box.take(1)->buffer.release();
  EXPECT_EQ(box.buffered_bytes(), 200u);
  EXPECT_EQ(mmu.bytes_used(), 200u);
}

TEST_F(MailboxTest, TakeTransfersBufferOwnership) {
  box.deposit(msg_with_tag(1), block(64));
  {
    auto taken = box.take(1);
    ASSERT_TRUE(taken.has_value());
  }  // buffer destroyed here
  EXPECT_EQ(mmu.bytes_used(), 0u);
}

}  // namespace
}  // namespace tmc::node
