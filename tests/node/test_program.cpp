#include "node/program.h"

#include <gtest/gtest.h>

namespace tmc::node {
namespace {

using sim::SimTime;

TEST(Program, BuilderChainsOps) {
  Program p;
  p.alloc(64)
      .receive(3)
      .compute(SimTime::milliseconds(5))
      .send(42, 7, 128)
      .exit();
  ASSERT_EQ(p.size(), 5u);
  EXPECT_TRUE(std::holds_alternative<AllocOp>(p.ops[0]));
  EXPECT_TRUE(std::holds_alternative<ReceiveOp>(p.ops[1]));
  EXPECT_TRUE(std::holds_alternative<ComputeOp>(p.ops[2]));
  EXPECT_TRUE(std::holds_alternative<SendOp>(p.ops[3]));
  EXPECT_TRUE(std::holds_alternative<ExitOp>(p.ops[4]));
}

TEST(Program, TotalComputeSumsBursts) {
  Program p;
  p.compute(SimTime::milliseconds(2))
      .send(1, 1, 10)
      .compute(SimTime::milliseconds(3))
      .exit();
  EXPECT_EQ(p.total_compute(), SimTime::milliseconds(5));
}

TEST(Program, TotalSendBytes) {
  Program p;
  p.send(1, 1, 100).send(2, 1, 250).exit();
  EXPECT_EQ(p.total_send_bytes(), 350u);
}

TEST(Program, EmptyProgram) {
  Program p;
  EXPECT_TRUE(p.empty());
  EXPECT_EQ(p.total_compute(), SimTime::zero());
  EXPECT_EQ(p.total_send_bytes(), 0u);
}

TEST(Program, SendOpCarriesAddressing) {
  Program p;
  p.send(99, 5, 4096);
  const auto& op = std::get<SendOp>(p.ops[0]);
  EXPECT_EQ(op.dst, 99u);
  EXPECT_EQ(op.tag, 5);
  EXPECT_EQ(op.bytes, 4096u);
}

TEST(Program, ReceiveDefaultsToAnyTag) {
  Program p;
  p.receive();
  EXPECT_EQ(std::get<ReceiveOp>(p.ops[0]).tag, kAnyTag);
}

}  // namespace
}  // namespace tmc::node
