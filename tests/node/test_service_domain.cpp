// Tests of the comm-daemon (service) domain of the Transputer: low-priority
// system work that time-shares with application processes.
#include <gtest/gtest.h>

#include "mem/mmu.h"
#include "node/transputer.h"
#include "sim/simulation.h"

namespace tmc::node {
namespace {

using sim::SimTime;

class ServiceDomainTest : public ::testing::Test {
 protected:
  ServiceDomainTest() : mmu(sim, 64 * 1024), cpu(sim, 0, mmu) {}

  std::unique_ptr<Process> make_process(net::EndpointId id, Program prog) {
    auto p = std::make_unique<Process>(id, 1, std::move(prog));
    p->bind_to_node(0);
    p->set_on_exit([this](Process& self) {
      exit_times.emplace_back(self.id(), sim.now());
    });
    return p;
  }

  sim::Simulation sim;
  mem::Mmu mmu;
  Transputer cpu;
  std::vector<std::pair<net::EndpointId, SimTime>> exit_times;
};

TEST_F(ServiceDomainTest, ServiceRunsOnIdleCpu) {
  SimTime done;
  cpu.post_service(SimTime::milliseconds(3), [&] { done = sim.now(); });
  sim.run();
  EXPECT_EQ(done, SimTime::milliseconds(3));
  EXPECT_EQ(cpu.service_items(), 1u);
  EXPECT_EQ(cpu.service_time(), SimTime::milliseconds(3));
}

TEST_F(ServiceDomainTest, ServiceQueueDrainsFifo) {
  std::vector<int> order;
  cpu.post_service(SimTime::milliseconds(1), [&] { order.push_back(1); });
  cpu.post_service(SimTime::milliseconds(1), [&] { order.push_back(2); });
  cpu.post_service(SimTime::milliseconds(1), [&] { order.push_back(3); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST_F(ServiceDomainTest, ServiceDoesNotPreemptButInterleaves) {
  // A compute-bound process and daemon work share the CPU; both finish
  // later than they would alone, and the total equals the summed demand.
  Program prog;
  prog.compute(SimTime::milliseconds(20)).exit();
  auto p = make_process(1, std::move(prog));
  cpu.make_ready(*p);
  SimTime service_done;
  cpu.post_service(SimTime::milliseconds(10), [&] { service_done = sim.now(); });
  sim.run();
  const SimTime app_done = exit_times.at(0).second;
  // Work conservation: everything finishes by ~30 ms (plus context switch).
  EXPECT_GE(app_done, SimTime::milliseconds(20));
  EXPECT_LE(app_done, SimTime::milliseconds(31));
  EXPECT_GE(service_done, SimTime::milliseconds(10));
  EXPECT_LE(service_done, SimTime::milliseconds(31));
  // The daemon was not starved until the app finished, nor vice versa.
  EXPECT_LT(service_done, app_done + SimTime::milliseconds(1));
}

TEST_F(ServiceDomainTest, HighPriorityPreemptsService) {
  SimTime high_done, service_done;
  cpu.post_service(SimTime::milliseconds(10), [&] { service_done = sim.now(); });
  sim.schedule(SimTime::milliseconds(2), [&] {
    cpu.post_high(SimTime::milliseconds(1), [&] { high_done = sim.now(); });
  });
  sim.run();
  EXPECT_EQ(high_done, SimTime::milliseconds(3));  // ran immediately
  EXPECT_EQ(service_done, SimTime::milliseconds(11));  // paused for 1 ms
}

TEST_F(ServiceDomainTest, ServiceAccountingSurvivesPreemption) {
  cpu.post_service(SimTime::milliseconds(10), nullptr);
  sim.schedule(SimTime::milliseconds(4), [&] {
    cpu.post_high(SimTime::milliseconds(2), nullptr);
  });
  sim.run();
  EXPECT_EQ(cpu.service_time(), SimTime::milliseconds(10));
}

TEST_F(ServiceDomainTest, BlockedProcessLeavesCpuToDaemon) {
  Program prog;
  prog.receive(9).exit();  // blocks forever
  auto p = make_process(1, std::move(prog));
  cpu.make_ready(*p);
  SimTime service_done;
  cpu.post_service(SimTime::milliseconds(5), [&] { service_done = sim.now(); });
  sim.run();
  // The receiver blocks at ~ctx time; daemon then runs unimpeded.
  EXPECT_LE(service_done, SimTime::milliseconds(6));
}

TEST_F(ServiceDomainTest, DaemonSharesRoughlyFairlyUnderLoad) {
  // App with 40 ms of compute vs daemon with 40 ms of queued work: neither
  // should finish more than ~quantum+item ahead of the other.
  Program prog;
  prog.compute(SimTime::milliseconds(40)).exit();
  auto p = make_process(1, std::move(prog));
  cpu.make_ready(*p);
  SimTime last_service;
  for (int i = 0; i < 20; ++i) {
    cpu.post_service(SimTime::milliseconds(2), [&] { last_service = sim.now(); });
  }
  sim.run();
  const SimTime app_done = exit_times.at(0).second;
  EXPECT_GE(app_done, SimTime::milliseconds(60));  // genuinely shared
  EXPECT_GE(last_service, SimTime::milliseconds(60));
}

}  // namespace
}  // namespace tmc::node
