#include "node/transputer.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "mem/mmu.h"
#include "sim/simulation.h"

namespace tmc::node {
namespace {

using sim::SimTime;

/// One CPU with 64 KB of memory and round parameters:
/// context switch 10 us, send/recv setup 50 us, copy 40 ns/byte,
/// default process quantum 2 ms.
class TransputerTest : public ::testing::Test {
 protected:
  TransputerTest() : mmu(sim, 64 * 1024), cpu(sim, 0, mmu) {}

  std::unique_ptr<Process> make_process(net::EndpointId id, Program prog) {
    auto p = std::make_unique<Process>(id, 1, std::move(prog));
    p->bind_to_node(0);
    p->set_on_exit([this](Process& self) { exit_times.emplace_back(self.id(), sim.now()); });
    return p;
  }

  SimTime exit_time(net::EndpointId id) const {
    for (const auto& [pid, t] : exit_times) {
      if (pid == id) return t;
    }
    ADD_FAILURE() << "process " << id << " did not exit";
    return SimTime::max();
  }

  sim::Simulation sim;
  mem::Mmu mmu;
  Transputer cpu;
  std::vector<std::pair<net::EndpointId, SimTime>> exit_times;
};

constexpr auto kCtx = SimTime::microseconds(10);

TEST_F(TransputerTest, ComputeRunsForExactCost) {
  Program prog;
  prog.compute(SimTime::milliseconds(5)).exit();
  auto p = make_process(1, std::move(prog));
  cpu.make_ready(*p);
  sim.run();
  EXPECT_TRUE(p->done());
  EXPECT_EQ(exit_time(1), kCtx + SimTime::milliseconds(5));
  EXPECT_EQ(p->cpu_time(), SimTime::milliseconds(5));
}

TEST_F(TransputerTest, SequentialJobsPayContextSwitchEach) {
  Program a, b;
  a.compute(SimTime::milliseconds(1)).exit();
  b.compute(SimTime::milliseconds(1)).exit();
  auto pa = make_process(1, std::move(a));
  auto pb = make_process(2, std::move(b));
  cpu.make_ready(*pa);
  cpu.make_ready(*pb);
  sim.run();
  EXPECT_EQ(exit_time(1), kCtx + SimTime::milliseconds(1));
  EXPECT_EQ(exit_time(2), 2 * kCtx + SimTime::milliseconds(2));
  EXPECT_EQ(cpu.context_switches(), 2u);
}

TEST_F(TransputerTest, RoundRobinInterleavesEqualProcesses) {
  Program a, b;
  a.compute(SimTime::milliseconds(4)).exit();
  b.compute(SimTime::milliseconds(4)).exit();
  auto pa = make_process(1, std::move(a));
  auto pb = make_process(2, std::move(b));
  cpu.make_ready(*pa);
  cpu.make_ready(*pb);
  sim.run();
  // Time-shared with 2 ms quanta: A at ~6 ms, B at ~8 ms -- not serial
  // (A at 4 ms) and in submission order.
  EXPECT_GT(exit_time(1), SimTime::milliseconds(6));
  EXPECT_LT(exit_time(1), SimTime::milliseconds(7));
  EXPECT_GT(exit_time(2), SimTime::milliseconds(8));
  EXPECT_LT(exit_time(2), SimTime::milliseconds(9));
  EXPECT_GE(cpu.quantum_expiries(), 2u);
}

TEST_F(TransputerTest, LargerQuantumWinsMoreCpuShare) {
  Program a, b;
  a.compute(SimTime::milliseconds(8)).exit();
  b.compute(SimTime::milliseconds(8)).exit();
  auto pa = make_process(1, std::move(a));
  auto pb = make_process(2, std::move(b));
  pa->set_quantum(SimTime::milliseconds(6));
  pb->set_quantum(SimTime::milliseconds(2));
  cpu.make_ready(*pa);
  cpu.make_ready(*pb);
  sim.run();
  // A: 6 ms, B: 2 ms, A: 2 ms (done ~10 ms), then B runs out its 6 ms.
  EXPECT_LT(exit_time(1), exit_time(2));
}

TEST_F(TransputerTest, AloneOnCpuQuantumRenewsWithoutRequeue) {
  Program prog;
  prog.compute(SimTime::milliseconds(10)).exit();
  auto p = make_process(1, std::move(prog));
  cpu.make_ready(*p);
  sim.run();
  EXPECT_EQ(exit_time(1), kCtx + SimTime::milliseconds(10));
  // No other process: expiries happen but only one context switch.
  EXPECT_EQ(cpu.context_switches(), 1u);
  EXPECT_GE(cpu.quantum_expiries(), 4u);
}

TEST_F(TransputerTest, HighPriorityWorkPreemptsImmediately) {
  Program prog;
  prog.compute(SimTime::milliseconds(10)).exit();
  auto p = make_process(1, std::move(prog));
  cpu.make_ready(*p);

  SimTime high_done;
  sim.schedule(SimTime::milliseconds(1), [&] {
    cpu.post_high(SimTime::microseconds(500), [&] { high_done = sim.now(); });
  });
  sim.run();
  // High work completes right after its cost, not after the low process.
  EXPECT_EQ(high_done, SimTime::milliseconds(1) + SimTime::microseconds(500));
  // The low process pays the detour.
  EXPECT_EQ(exit_time(1),
            kCtx + SimTime::milliseconds(10) + SimTime::microseconds(500));
  EXPECT_EQ(cpu.high_preemptions(), 1u);
  EXPECT_EQ(p->preemptions(), 1u);
}

TEST_F(TransputerTest, HighWorkOnIdleCpuRunsAlone) {
  SimTime done;
  cpu.post_high(SimTime::microseconds(100), [&] { done = sim.now(); });
  sim.run();
  EXPECT_EQ(done, SimTime::microseconds(100));
  EXPECT_EQ(cpu.high_preemptions(), 0u);
  EXPECT_EQ(cpu.high_items(), 1u);
}

TEST_F(TransputerTest, HighQueueDrainsFifo) {
  std::vector<int> order;
  cpu.post_high(SimTime::microseconds(10), [&] { order.push_back(1); });
  cpu.post_high(SimTime::microseconds(10), [&] { order.push_back(2); });
  cpu.post_high(SimTime::microseconds(10), [&] { order.push_back(3); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST_F(TransputerTest, RecvBlocksUntilDelivery) {
  Program prog;
  prog.receive(7).exit();
  auto p = make_process(1, std::move(prog));
  cpu.make_ready(*p);
  sim.run();
  EXPECT_FALSE(p->done());
  EXPECT_EQ(p->state(), ProcessState::kBlockedRecv);

  net::Message msg;
  msg.tag = 7;
  msg.bytes = 100;
  auto buffer = mmu.try_alloc(100);
  ASSERT_TRUE(buffer.has_value());
  cpu.deliver(*p, msg, std::move(*buffer));
  sim.run();
  EXPECT_TRUE(p->done());
  EXPECT_EQ(mmu.bytes_used(), 0u);  // consumed buffer was freed
}

TEST_F(TransputerTest, RecvIgnoresWrongTag) {
  Program prog;
  prog.receive(7).exit();
  auto p = make_process(1, std::move(prog));
  cpu.make_ready(*p);
  sim.run();

  net::Message wrong;
  wrong.tag = 8;
  wrong.bytes = 10;
  auto buffer = mmu.try_alloc(10);
  cpu.deliver(*p, wrong, std::move(*buffer));
  sim.run();
  EXPECT_FALSE(p->done());  // still waiting for tag 7
  EXPECT_EQ(p->mailbox().size(), 1u);

  net::Message right;
  right.tag = 7;
  right.bytes = 10;
  auto buffer2 = mmu.try_alloc(10);
  cpu.deliver(*p, right, std::move(*buffer2));
  sim.run();
  EXPECT_TRUE(p->done());
}

TEST_F(TransputerTest, RecvCostsSetupPlusCopy) {
  Program prog;
  prog.receive(7).exit();
  auto p = make_process(1, std::move(prog));
  net::Message msg;
  msg.tag = 7;
  msg.bytes = 1000;
  auto buffer = mmu.try_alloc(1000);
  cpu.deliver(*p, msg, std::move(*buffer));  // already waiting in mailbox
  cpu.make_ready(*p);
  sim.run();
  // ctx + recv_setup(50us) + 1000 * 40ns.
  EXPECT_EQ(exit_time(1),
            kCtx + SimTime::microseconds(50) + SimTime::microseconds(40));
}

TEST_F(TransputerTest, SendStagesBufferAndDispatches) {
  struct Sent {
    SendOp op;
    std::size_t buffer_size;
    SimTime at;
  };
  std::vector<Sent> sent;
  cpu.set_send_dispatcher([&](Process&, const SendOp& op, mem::Block block) {
    sent.push_back({op, block.size(), sim.now()});
  });
  Program prog;
  prog.send(42, 3, 500).exit();
  auto p = make_process(1, std::move(prog));
  cpu.make_ready(*p);
  sim.run();
  ASSERT_EQ(sent.size(), 1u);
  EXPECT_EQ(sent[0].op.dst, 42u);
  EXPECT_EQ(sent[0].op.bytes, 500u);
  EXPECT_EQ(sent[0].buffer_size, 500u);
  // ctx + send_setup(50us) + 500 * 40ns = 10 + 50 + 20 us.
  EXPECT_EQ(sent[0].at, SimTime::microseconds(80));
  EXPECT_TRUE(p->done());
}

TEST_F(TransputerTest, SendBlocksOnMemoryPressure) {
  bool dispatched = false;
  cpu.set_send_dispatcher(
      [&](Process&, const SendOp&, mem::Block) { dispatched = true; });
  auto hog = mmu.try_alloc(64 * 1024 - 100);
  ASSERT_TRUE(hog.has_value());
  Program prog;
  prog.send(42, 3, 500).exit();
  auto p = make_process(1, std::move(prog));
  cpu.make_ready(*p);
  sim.run();
  EXPECT_FALSE(dispatched);
  EXPECT_EQ(p->state(), ProcessState::kBlockedMem);
  sim.schedule(SimTime::milliseconds(1), [&] { hog->release(); });
  sim.run();
  EXPECT_TRUE(dispatched);
  EXPECT_TRUE(p->done());
}

TEST_F(TransputerTest, AllocHoldsMemoryUntilExit) {
  Program prog;
  prog.alloc(1000).compute(SimTime::milliseconds(2)).exit();
  auto p = make_process(1, std::move(prog));
  cpu.make_ready(*p);
  sim.run_until(SimTime::milliseconds(1));
  EXPECT_EQ(mmu.bytes_used(), 1000u);
  EXPECT_EQ(p->held_bytes(), 1000u);
  sim.run();
  EXPECT_TRUE(p->done());
  EXPECT_EQ(mmu.bytes_used(), 0u);
}

TEST_F(TransputerTest, AllocBlocksUntilMemoryAvailable) {
  auto hog = mmu.try_alloc(60 * 1024);
  Program prog;
  prog.alloc(10 * 1024).exit();
  auto p = make_process(1, std::move(prog));
  cpu.make_ready(*p);
  sim.run();
  EXPECT_EQ(p->state(), ProcessState::kBlockedMem);
  hog->release();
  sim.run();
  EXPECT_TRUE(p->done());
}

TEST_F(TransputerTest, BlockedProcessYieldsCpuToOthers) {
  Program blocked, runner;
  blocked.receive(1).exit();
  runner.compute(SimTime::milliseconds(1)).exit();
  auto pb = make_process(1, std::move(blocked));
  auto pr = make_process(2, std::move(runner));
  cpu.make_ready(*pb);
  cpu.make_ready(*pr);
  sim.run();
  // Receiver blocks immediately; runner is not delayed by it.
  EXPECT_EQ(exit_time(2), 2 * kCtx + SimTime::milliseconds(1));
}

TEST_F(TransputerTest, UtilizationReflectsBusyTime) {
  Program prog;
  prog.compute(SimTime::milliseconds(8)).exit();
  auto p = make_process(1, std::move(prog));
  cpu.make_ready(*p);
  sim.run();
  EXPECT_FALSE(cpu.busy());
  EXPECT_NEAR(cpu.utilization(), 1.0, 0.01);
}

TEST_F(TransputerTest, DispatchCountsAccumulate) {
  Program a, b;
  a.compute(SimTime::milliseconds(4)).exit();
  b.compute(SimTime::milliseconds(4)).exit();
  auto pa = make_process(1, std::move(a));
  auto pb = make_process(2, std::move(b));
  cpu.make_ready(*pa);
  cpu.make_ready(*pb);
  sim.run();
  EXPECT_GE(pa->dispatches(), 2u);
  EXPECT_GE(pb->dispatches(), 2u);
}

TEST_F(TransputerTest, ZeroCostComputeCompletes) {
  Program prog;
  prog.compute(SimTime::zero()).compute(SimTime::zero()).exit();
  auto p = make_process(1, std::move(prog));
  cpu.make_ready(*p);
  sim.run();
  EXPECT_TRUE(p->done());
  EXPECT_EQ(exit_time(1), kCtx);
}

}  // namespace
}  // namespace tmc::node
