#include "obs/hub.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace tmc::obs {
namespace {

/// Runs parse_cli_flag over a whole argv the way the binaries do; returns
/// the indices it did NOT consume.
std::vector<std::string> parse_all(std::vector<const char*> args,
                                   Options& options, std::string& error) {
  args.insert(args.begin(), "prog");
  std::vector<std::string> rest;
  const int argc = static_cast<int>(args.size());
  for (int i = 1; i < argc; ++i) {
    if (parse_cli_flag(argc, const_cast<char**>(args.data()), i, options,
                       error)) {
      if (!error.empty()) return rest;
      continue;
    }
    rest.emplace_back(args[static_cast<std::size_t>(i)]);
  }
  return rest;
}

TEST(HubCli, MetricsFlagWithAndWithoutPath) {
  Options options;
  std::string error;
  auto rest = parse_all({"--metrics", "--other"}, options, error);
  EXPECT_TRUE(error.empty());
  EXPECT_TRUE(options.metrics);
  EXPECT_TRUE(options.metrics_path.empty());
  ASSERT_EQ(rest.size(), 1u);
  EXPECT_EQ(rest[0], "--other");

  Options with_path;
  parse_all({"--metrics=out.csv"}, with_path, error);
  EXPECT_TRUE(with_path.metrics);
  EXPECT_EQ(with_path.metrics_path, "out.csv");
}

TEST(HubCli, TimelineTakesPathInBothForms) {
  Options options;
  std::string error;
  parse_all({"--timeline=trace.json"}, options, error);
  EXPECT_EQ(options.timeline_path, "trace.json");

  Options spaced;
  parse_all({"--timeline", "t.json"}, spaced, error);
  EXPECT_TRUE(error.empty());
  EXPECT_EQ(spaced.timeline_path, "t.json");

  Options missing;
  parse_all({"--timeline"}, missing, error);
  EXPECT_FALSE(error.empty());
}

TEST(HubCli, SampleIntervalValidatesMilliseconds) {
  Options options;
  std::string error;
  parse_all({"--sample-interval", "2.5"}, options, error);
  EXPECT_TRUE(error.empty());
  EXPECT_EQ(options.sample_interval, sim::SimTime::microseconds(2500));

  Options bad;
  parse_all({"--sample-interval=-1"}, bad, error);
  EXPECT_FALSE(error.empty());
  error.clear();
  parse_all({"--sample-interval=zoom"}, bad, error);
  EXPECT_FALSE(error.empty());
}

TEST(HubCli, UnrelatedFlagsAreNotConsumed) {
  Options options;
  std::string error;
  const auto rest =
      parse_all({"--threads", "4", "--metricsx"}, options, error);
  EXPECT_FALSE(options.metrics);
  EXPECT_EQ(rest.size(), 3u);
}

TEST(Hub, AnyReflectsRequestedOutputs) {
  EXPECT_FALSE(Options{}.any());
  Options metrics;
  metrics.metrics = true;
  EXPECT_TRUE(metrics.any());
  Options timeline;
  timeline.timeline_path = "t.json";
  EXPECT_TRUE(timeline.any());
}

TEST(Hub, TimelineOnlyExistsWhenRequested) {
  Options options;
  options.metrics = true;
  Hub metrics_only(options);
  EXPECT_EQ(metrics_only.timeline(), nullptr);

  options.timeline_path = "t.json";
  Hub with_timeline(options);
  EXPECT_NE(with_timeline.timeline(), nullptr);
}

TEST(Hub, FinishRunFreezesProbes) {
  Options options;
  options.metrics = true;
  Hub hub(options);
  double level = 1.0;
  hub.registry().probe("level", [&level] { return level; });
  level = 8.0;
  hub.finish_run(sim::SimTime::seconds(1));
  level = -1.0;
  EXPECT_DOUBLE_EQ(hub.registry().snapshot()[0].value, 8.0);
}

}  // namespace
}  // namespace tmc::obs
