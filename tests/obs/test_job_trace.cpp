// Unit: the per-job lifecycle tracer's async span discipline.
//
// Every begin must pair with an end of the same name and id, phases must
// nest inside the "job" envelope, and the phase durations must decompose
// the envelope exactly -- that identity is what tools/obs_report.py audits
// on real traces, so it is pinned here at the source.
#include "obs/job_trace.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "obs/timeline.h"

namespace tmc::obs {
namespace {

using sim::SimTime;

SimTime us(std::int64_t n) { return SimTime::microseconds(n); }

struct Ev {
  RecordKind kind;
  std::string name;
  std::uint64_t id;
  std::int64_t t_us;
};

std::vector<Ev> async_events(const Timeline& tl) {
  std::vector<Ev> out;
  for (const auto& r : tl.records()) {
    if (r.kind != RecordKind::kAsyncBegin && r.kind != RecordKind::kAsyncEnd) {
      continue;
    }
    out.push_back({r.kind, std::string(tl.name(r.name)), r.id,
                   r.start_ns / 1000});
  }
  return out;
}

TEST(JobTracer, GangLifecycleDecomposesResponseExactly) {
  Timeline tl;
  JobTracer tracer(tl, {"interactive"});

  tracer.arrival(1, 0, us(0));      // job + wait open
  tracer.dispatch(1, us(10));       // wait -> dispatch
  tracer.run_begin(1, us(15));      // dispatch -> run (first gang turn)
  tracer.run_end(1, us(40));        // run -> rotation
  tracer.run_begin(1, us(60));      // rotation -> run
  tracer.completion(1, us(75));     // closes run, closes job

  const auto ev = async_events(tl);
  const std::vector<Ev> want = {
      {RecordKind::kAsyncBegin, "job", 1, 0},
      {RecordKind::kAsyncBegin, "wait", 1, 0},
      {RecordKind::kAsyncEnd, "wait", 1, 10},
      {RecordKind::kAsyncBegin, "dispatch", 1, 10},
      {RecordKind::kAsyncEnd, "dispatch", 1, 15},
      {RecordKind::kAsyncBegin, "run", 1, 15},
      {RecordKind::kAsyncEnd, "run", 1, 40},
      {RecordKind::kAsyncBegin, "rotation", 1, 40},
      {RecordKind::kAsyncEnd, "rotation", 1, 60},
      {RecordKind::kAsyncBegin, "run", 1, 60},
      {RecordKind::kAsyncEnd, "run", 1, 75},
      {RecordKind::kAsyncEnd, "job", 1, 75},
  };
  ASSERT_EQ(ev.size(), want.size());
  std::int64_t wait = 0, dispatch = 0, run = 0, rotation = 0;
  std::int64_t open_at = 0;
  for (std::size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(ev[i].kind, want[i].kind) << "event " << i;
    EXPECT_EQ(ev[i].name, want[i].name) << "event " << i;
    EXPECT_EQ(ev[i].id, want[i].id) << "event " << i;
    EXPECT_EQ(ev[i].t_us, want[i].t_us) << "event " << i;
    if (ev[i].kind == RecordKind::kAsyncBegin) {
      open_at = ev[i].t_us;
    } else if (ev[i].name == "wait") {
      wait += ev[i].t_us - open_at;
    } else if (ev[i].name == "dispatch") {
      dispatch += ev[i].t_us - open_at;
    } else if (ev[i].name == "run") {
      run += ev[i].t_us - open_at;
    } else if (ev[i].name == "rotation") {
      rotation += ev[i].t_us - open_at;
    }
  }
  // The decomposition identity obs_report.py relies on.
  EXPECT_EQ(wait + dispatch + run + rotation, 75);
  EXPECT_EQ(wait, 10);
  EXPECT_EQ(dispatch, 5);
  EXPECT_EQ(run, 40);
  EXPECT_EQ(rotation, 20);
}

TEST(JobTracer, CompletionClosesWhateverPhaseIsOpen) {
  Timeline tl;
  JobTracer tracer(tl, {});
  // Completing straight out of a rotation gap (job never re-ran).
  tracer.arrival(1, 0, us(0));
  tracer.dispatch(1, us(1));
  tracer.run_begin(1, us(2));
  tracer.run_end(1, us(3));
  tracer.completion(1, us(4));
  const auto ev = async_events(tl);
  ASSERT_GE(ev.size(), 2u);
  EXPECT_EQ(ev[ev.size() - 2].name, "rotation");
  EXPECT_EQ(ev[ev.size() - 2].kind, RecordKind::kAsyncEnd);
  EXPECT_EQ(ev.back().name, "job");
  // Every begin paired with an end.
  int depth = 0;
  for (const auto& e : ev) {
    depth += e.kind == RecordKind::kAsyncBegin ? 1 : -1;
    EXPECT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
}

TEST(JobTracer, RecycledIdOpensAFreshGroup) {
  Timeline tl;
  JobTracer tracer(tl, {"a", "b"});
  tracer.arrival(1, 0, us(0));
  tracer.dispatch(1, us(1));
  tracer.run_begin(1, us(2));
  tracer.completion(1, us(5));
  // Same id, different class: the serving arena recycles slot 1.
  tracer.arrival(1, 1, us(10));
  tracer.dispatch(1, us(11));
  tracer.run_begin(1, us(12));
  tracer.completion(1, us(20));

  const auto ev = async_events(tl);
  // Two disjoint "job" envelopes on the same id.
  std::vector<std::int64_t> job_edges;
  for (const auto& e : ev) {
    if (e.name == "job") job_edges.push_back(e.t_us);
  }
  ASSERT_EQ(job_edges.size(), 4u);
  EXPECT_EQ(job_edges[0], 0);
  EXPECT_EQ(job_edges[1], 5);
  EXPECT_EQ(job_edges[2], 10);
  EXPECT_EQ(job_edges[3], 20);

  // The second life landed on class b's track, the first on class a's.
  std::vector<TrackId> job_tracks;
  for (const auto& r : tl.records()) {
    if (r.kind == RecordKind::kAsyncBegin &&
        std::string(tl.name(r.name)) == "job") {
      job_tracks.push_back(r.track);
    }
  }
  ASSERT_EQ(job_tracks.size(), 2u);
  EXPECT_NE(job_tracks[0], job_tracks[1]);
}

TEST(JobTracer, EventsForUnknownIdsAreDropped) {
  Timeline tl;
  JobTracer tracer(tl, {});
  // Lifecycle events for a job that never arrived (e.g. a pre-submitted
  // batch job under a harness that only traces serving) must be ignored,
  // not crash or emit unbalanced records.
  tracer.dispatch(7, us(1));
  tracer.run_begin(7, us(2));
  tracer.run_end(7, us(3));
  tracer.completion(7, us(4));
  EXPECT_TRUE(async_events(tl).empty());
}

TEST(JobTracer, OutOfRangeClassClampsToLastTrack) {
  Timeline tl;
  JobTracer tracer(tl, {"only"});
  tracer.arrival(1, 5, us(0));  // class index past the list
  tracer.completion(1, us(1));
  const auto& records = tl.records();
  ASSERT_FALSE(records.empty());
  for (const auto& r : records) {
    EXPECT_EQ(r.track, records.front().track);
  }
}

}  // namespace
}  // namespace tmc::obs
